/// \file inference_server.h
/// \brief The serving runtime: a bounded request queue, dispatcher threads
/// that coalesce compatible requests into micro-batches, admission control,
/// per-request deadlines, and a result cache.
///
/// Request lifecycle:
///
///   Submit ──▶ admission (resolve model, validate input, cache lookup,
///              queue-capacity check — overflow fails fast with
///              kUnavailable) ──▶ bounded queue ──▶ dispatcher pops a
///              leader, coalesces every queued request for the same
///              (model version, request kind) for up to max_wait_us or
///              max_batch_size ──▶ expired requests are cancelled with
///              kDeadlineExceeded before touching the simulator ──▶ one
///              ServableModel::RunBatch executes the whole micro-batch ──▶
///              promises resolve, results enter the cache.
///
/// Batching invariant: a micro-batch only ever contains requests for one
/// servable (one model version) and one request kind, so the whole batch is
/// B parameter bindings of the same compiled circuit (or B points of one
/// CrossFromEncoded call). Dispatchers are dedicated threads — not pool
/// workers — so the batch execution itself still fans out across the shared
/// qdb::ThreadPool.
///
/// Shutdown is a graceful drain: admission stops (new Submits get
/// kUnavailable), dispatchers finish everything already queued, then join.

#ifndef QDB_SERVE_INFERENCE_SERVER_H_
#define QDB_SERVE_INFERENCE_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "serve/model_registry.h"
#include "serve/result_cache.h"
#include "serve/servable.h"

namespace qdb {
namespace serve {

/// \brief Serving-runtime knobs.
struct ServerOptions {
  /// Maximum queued (admitted, not yet executing) requests; Submit beyond
  /// this fails with kUnavailable.
  size_t queue_capacity = 256;
  /// Largest micro-batch a dispatcher will coalesce.
  size_t max_batch_size = 16;
  /// How long a dispatcher holds an under-full batch open waiting for
  /// compatible requests, measured from when the leader was popped.
  long max_wait_us = 200;
  /// Dispatcher threads. One is enough for most workloads (execution fans
  /// out across the ThreadPool regardless); more reduce head-of-line
  /// blocking across models.
  int num_dispatchers = 1;
  /// Result-cache entries; 0 disables the cache.
  size_t result_cache_capacity = 1024;
};

/// \brief One inference request. `version` < 0 serves the latest registered
/// version; `timeout_us` > 0 sets a deadline relative to Submit — a request
/// still queued past it is cancelled with kDeadlineExceeded and never
/// reaches the simulator.
struct InferenceRequest {
  std::string model;
  int version = -1;
  RequestKind kind = RequestKind::kPredict;
  DVector input;
  long timeout_us = 0;
};

/// \brief A completed inference plus serving metadata.
struct InferenceResponse {
  InferenceValue result;
  int model_version = 0;
  bool from_cache = false;
  /// Micro-batch size this request executed in (0 for cache hits).
  size_t batch_size = 0;
  /// Time from admission to dispatch (0 for cache hits).
  long queue_wait_us = 0;
};

/// \brief Dynamic micro-batching inference server over a ModelRegistry.
///
/// Thread-safe: any number of client threads may Submit concurrently.
/// Requests admitted before Start() queue up and execute once started.
class InferenceServer {
 public:
  /// `registry` must outlive the server.
  explicit InferenceServer(ModelRegistry& registry,
                           const ServerOptions& options = {});
  /// Drains and joins (see Shutdown).
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Spawns the dispatcher threads. Fails with kFailedPrecondition if
  /// already started or already shut down.
  Status Start();

  /// Graceful drain: stops admission (subsequent Submits fail with
  /// kUnavailable), lets dispatchers finish every queued request, joins
  /// them. Requests admitted but never started (Start was not called) fail
  /// with kUnavailable. Idempotent.
  void Shutdown();

  /// Admits a request and returns a future for its response. Admission
  /// failures (unknown model, bad input, full queue, shut down) and cache
  /// hits resolve the future immediately.
  std::future<Result<InferenceResponse>> Submit(InferenceRequest request);

  /// Requests currently queued (admitted, not yet dispatched).
  size_t queue_depth() const;

  /// Monotonic serving tallies (process-lifetime metrics live in qdb::obs;
  /// these are per-server and race-free to read in tests).
  struct Stats {
    long submitted = 0;       ///< Admission attempts.
    long completed = 0;       ///< Futures resolved with an executed result.
    long cache_hits = 0;      ///< Resolved from the result cache.
    long rejected = 0;        ///< kUnavailable at admission (overflow/down).
    long expired = 0;         ///< Cancelled with kDeadlineExceeded.
    long batches = 0;         ///< Micro-batches executed.
  };
  Stats stats() const;

  const ResultCache& result_cache() const { return result_cache_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// A queued request: resolved servable + promise + timing.
  struct Pending {
    std::shared_ptr<const ServableModel> servable;
    RequestKind kind = RequestKind::kPredict;
    DVector input;
    std::string cache_key;  ///< Empty when the cache is disabled.
    Clock::time_point admitted;
    Clock::time_point deadline;  ///< Clock::time_point::max() = none.
    std::promise<Result<InferenceResponse>> promise;
  };

  void DispatcherLoop();
  /// Pops a leader and every compatible queued request (same servable, same
  /// kind), holding the batch open up to max_wait_us. Returns an empty
  /// vector when the server is fully drained and stopping.
  std::vector<Pending> NextBatch();
  void ExecuteBatch(std::vector<Pending> batch);

  ModelRegistry& registry_;
  const ServerOptions options_;
  ResultCache result_cache_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool accepting_ = true;
  bool started_ = false;
  bool stopping_ = false;
  bool shut_down_ = false;
  std::vector<std::thread> dispatchers_;

  // Stats tallies (guarded by stats_mu_ so Stats reads are consistent).
  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace serve
}  // namespace qdb

#endif  // QDB_SERVE_INFERENCE_SERVER_H_
