#include "linalg/svd.h"

#include <algorithm>
#include <cmath>

#include "linalg/eigen.h"

namespace qdb {

Matrix SvdResult::Reconstruct() const {
  CVector sigma(singular_values.size());
  for (size_t i = 0; i < sigma.size(); ++i) {
    sigma[i] = Complex(singular_values[i], 0.0);
  }
  return u * Matrix::Diagonal(sigma) * v.Adjoint();
}

Result<SvdResult> Svd(const Matrix& a, double tol) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("SVD of an empty matrix");
  }
  // Eigen-decompose the smaller Gram matrix for stability and speed.
  const bool tall = a.rows() >= a.cols();
  const Matrix gram = tall ? a.Adjoint() * a : a * a.Adjoint();
  QDB_ASSIGN_OR_RETURN(EigenDecomposition eig, HermitianEigen(gram));

  const size_t k = gram.rows();
  double lambda_max = 0.0;
  for (double lambda : eig.eigenvalues) {
    lambda_max = std::max(lambda_max, lambda);
  }
  // Two floors on λ = σ²: the caller's relative σ tolerance, and the
  // eigensolver's numerical noise floor (the Gram-matrix route squares the
  // condition number, so λ carries ~1e-13·λ_max of noise).
  const double cutoff_lambda =
      std::max({tol * tol * lambda_max, 1e-13 * lambda_max, 1e-300});

  // Eigenvalues ascend; walk from the back for descending σ.
  SvdResult out;
  std::vector<size_t> keep;
  for (size_t i = k; i-- > 0;) {
    if (eig.eigenvalues[i] > cutoff_lambda) {
      keep.push_back(i);
      out.singular_values.push_back(std::sqrt(eig.eigenvalues[i]));
    }
  }
  const size_t r = keep.size();
  if (r == 0) {
    // The zero matrix: return an empty decomposition with rank 0.
    out.u = Matrix(a.rows(), 0);
    out.v = Matrix(a.cols(), 0);
    return out;
  }

  if (tall) {
    // gram = A†A: eigenvectors are V; U = A V Σ⁻¹.
    out.v = Matrix(a.cols(), r);
    for (size_t c = 0; c < r; ++c) {
      for (size_t i = 0; i < a.cols(); ++i) {
        out.v(i, c) = eig.eigenvectors(i, keep[c]);
      }
    }
    Matrix av = a * out.v;
    out.u = Matrix(a.rows(), r);
    for (size_t c = 0; c < r; ++c) {
      for (size_t i = 0; i < a.rows(); ++i) {
        out.u(i, c) = av(i, c) / out.singular_values[c];
      }
    }
  } else {
    // gram = AA†: eigenvectors are U; V = A†U Σ⁻¹.
    out.u = Matrix(a.rows(), r);
    for (size_t c = 0; c < r; ++c) {
      for (size_t i = 0; i < a.rows(); ++i) {
        out.u(i, c) = eig.eigenvectors(i, keep[c]);
      }
    }
    Matrix atu = a.Adjoint() * out.u;
    out.v = Matrix(a.cols(), r);
    for (size_t c = 0; c < r; ++c) {
      for (size_t i = 0; i < a.cols(); ++i) {
        out.v(i, c) = atu(i, c) / out.singular_values[c];
      }
    }
  }
  return out;
}

Result<SvdResult> TruncatedSvd(const Matrix& a, size_t max_rank,
                               double* discarded_weight, double tol) {
  if (max_rank == 0) {
    return Status::InvalidArgument("max_rank must be positive");
  }
  QDB_ASSIGN_OR_RETURN(SvdResult full, Svd(a, tol));
  double discarded = 0.0;
  if (full.rank() > max_rank) {
    for (size_t i = max_rank; i < full.rank(); ++i) {
      discarded += full.singular_values[i] * full.singular_values[i];
    }
    full.singular_values.resize(max_rank);
    Matrix u(full.u.rows(), max_rank);
    Matrix v(full.v.rows(), max_rank);
    for (size_t c = 0; c < max_rank; ++c) {
      for (size_t i = 0; i < u.rows(); ++i) u(i, c) = full.u(i, c);
      for (size_t i = 0; i < v.rows(); ++i) v(i, c) = full.v(i, c);
    }
    full.u = std::move(u);
    full.v = std::move(v);
  }
  if (discarded_weight != nullptr) *discarded_weight = discarded;
  return full;
}

}  // namespace qdb
