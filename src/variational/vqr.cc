#include "variational/vqr.h"

#include <cmath>

#include "autodiff/adjoint.h"
#include "autodiff/expectation.h"
#include "autodiff/parameter_shift.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "obs/trace.h"
#include "variational/ansatz.h"

namespace qdb {

Result<VqrRegressor> VqrRegressor::Train(const std::vector<DVector>& features,
                                         const DVector& targets,
                                         const VqrOptions& options) {
  if (features.size() < 2) {
    return Status::InvalidArgument("VQR needs at least two training samples");
  }
  if (targets.size() != features.size()) {
    return Status::InvalidArgument("feature/target count mismatch");
  }
  for (double y : targets) {
    if (y < -1.0 - 1e-9 || y > 1.0 + 1e-9) {
      return Status::InvalidArgument(
          StrCat("targets must lie in [-1, 1], got ", y));
    }
  }
  if (options.ansatz_layers < 1) {
    return Status::InvalidArgument("ansatz_layers must be >= 1");
  }
  const int d = static_cast<int>(features.front().size());
  for (const auto& x : features) {
    if (static_cast<int>(x.size()) != d) {
      return Status::InvalidArgument("inconsistent feature dimensions");
    }
  }

  QDB_TRACE_SCOPE("VqrRegressor::Train", "train");
  VqrRegressor model;
  model.options_ = options;
  model.num_features_ = d;

  const PauliSum observable =
      PauliSum(d).Add(1.0, PauliString::Single(d, 0, PauliOp::kZ));
  std::vector<ExpectationFunction> sample_fns;
  sample_fns.reserve(features.size());
  for (const auto& x : features) {
    sample_fns.emplace_back(
        DataReuploadingCircuit(x, options.ansatz_layers,
                               options.feature_scale),
        observable);
  }
  const int num_params = sample_fns.front().num_parameters();

  // Samples are independent, so the loss and gradient fan out across the
  // shared ThreadPool; accumulation stays serial and in sample order,
  // keeping results thread-count independent.
  const size_t num_samples = sample_fns.size();
  const double inv_n = 1.0 / static_cast<double>(features.size());
  Objective loss = [&](const DVector& theta) -> Result<double> {
    std::vector<double> values(num_samples, 0.0);
    std::vector<Status> statuses(num_samples);
    ThreadPool::Global().RunTasks(num_samples, [&](size_t i) {
      Result<double> r = sample_fns[i].Evaluate(theta);
      if (r.ok()) values[i] = r.value();
      statuses[i] = r.status();
    });
    double acc = 0.0;
    for (size_t i = 0; i < num_samples; ++i) {
      QDB_RETURN_IF_ERROR(statuses[i]);
      const double diff = values[i] - targets[i];
      acc += diff * diff;
    }
    return acc * inv_n;
  };
  GradientFn grad = [&](const DVector& theta) -> Result<DVector> {
    std::vector<double> values(num_samples, 0.0);
    std::vector<DVector> grads(num_samples);
    std::vector<Status> statuses(num_samples);
    ThreadPool::Global().RunTasks(num_samples, [&](size_t i) {
      if (options.gradient == GradientMethod::kAdjoint) {
        Result<AdjointResult> r =
            AdjointGradient(sample_fns[i].circuit(), observable, theta);
        if (r.ok()) {
          values[i] = r.value().value;
          grads[i] = std::move(r.value().gradient);
        }
        statuses[i] = r.status();
      } else {
        Result<double> value = sample_fns[i].Evaluate(theta);
        statuses[i] = value.status();
        if (!value.ok()) return;
        values[i] = value.value();
        Result<DVector> g = ParameterShiftGradient(sample_fns[i], theta);
        if (g.ok()) grads[i] = std::move(g).value();
        statuses[i] = g.status();
      }
    });
    DVector total(theta.size(), 0.0);
    for (size_t i = 0; i < num_samples; ++i) {
      QDB_RETURN_IF_ERROR(statuses[i]);
      const double coeff = 2.0 * (values[i] - targets[i]) * inv_n;
      for (size_t k = 0; k < total.size(); ++k) {
        total[k] += coeff * grads[i][k];
      }
    }
    return total;
  };

  Rng rng(options.seed);
  DVector initial =
      rng.UniformVector(num_params, -options.init_scale, options.init_scale);
  QDB_ASSIGN_OR_RETURN(OptimizeResult opt,
                       MinimizeAdam(loss, grad, initial, options.adam));

  model.params_ = std::move(opt.params);
  model.loss_history_ = std::move(opt.history);
  model.gradient_norm_history_ = std::move(opt.gradient_norm_history);
  for (const auto& fn : sample_fns) {
    model.circuit_evaluations_ += fn.evaluation_count();
  }
  return model;
}

Result<double> VqrRegressor::Predict(const DVector& x) const {
  if (static_cast<int>(x.size()) != num_features_) {
    return Status::InvalidArgument("feature dimension mismatch");
  }
  const PauliSum observable =
      PauliSum(num_features_)
          .Add(1.0, PauliString::Single(num_features_, 0, PauliOp::kZ));
  ExpectationFunction fn(
      DataReuploadingCircuit(x, options_.ansatz_layers,
                             options_.feature_scale),
      observable);
  return fn.Evaluate(params_);
}

}  // namespace qdb
