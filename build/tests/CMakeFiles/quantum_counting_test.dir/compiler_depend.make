# Empty compiler generated dependencies file for quantum_counting_test.
# This may be replaced when dependencies are built.
