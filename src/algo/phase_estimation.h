/// \file phase_estimation.h
/// \brief Quantum Fourier transform and quantum phase estimation — the
/// eigenvalue-extraction building block behind the "quantum linear algebra"
/// speedups surveyed in the tutorial's foundations.

#ifndef QDB_ALGO_PHASE_ESTIMATION_H_
#define QDB_ALGO_PHASE_ESTIMATION_H_

#include <cstdint>

#include "circuit/circuit.h"
#include "common/result.h"
#include "common/rng.h"

namespace qdb {

/// \brief QFT on `num_qubits` qubits (with the final qubit-reversal swaps).
Circuit QftCircuit(int num_qubits);

/// \brief Inverse QFT.
Circuit InverseQftCircuit(int num_qubits);

/// \brief Phase-estimation circuit for the single-qubit unitary
/// U = P(2πφ) acting on its |1⟩ eigenstate: `precision_qubits` ancillas,
/// one target (the last qubit), controlled-U^{2^k} powers, inverse QFT.
Result<Circuit> PhaseEstimationCircuit(double phase, int precision_qubits);

/// \brief Outcome of a sampled phase-estimation run.
struct PhaseEstimate {
  double estimated_phase = 0.0;  ///< Most frequent reading / 2^t.
  uint64_t raw_outcome = 0;      ///< That reading.
  double top_probability = 0.0;  ///< Its empirical frequency.
};

/// \brief Runs phase estimation with `shots` samples and returns the modal
/// estimate; the error is ≤ 2^{−t} with high probability.
Result<PhaseEstimate> EstimatePhase(double phase, int precision_qubits,
                                    int shots, Rng& rng);

}  // namespace qdb

#endif  // QDB_ALGO_PHASE_ESTIMATION_H_
