/// \file random_unitary.h
/// \brief Haar-distributed random unitaries and random states / Hermitians.

#ifndef QDB_LINALG_RANDOM_UNITARY_H_
#define QDB_LINALG_RANDOM_UNITARY_H_

#include "common/rng.h"
#include "linalg/matrix.h"
#include "linalg/types.h"

namespace qdb {

/// \brief Returns an n x n Haar-random unitary (Ginibre matrix + QR with
/// phase correction, Mezzadri's algorithm).
Matrix RandomUnitary(size_t n, Rng& rng);

/// \brief Returns a Haar-random pure state of dimension n (unit norm).
CVector RandomState(size_t n, Rng& rng);

/// \brief Returns an n x n random Hermitian matrix with Gaussian entries
/// (GUE-like, not normalized).
Matrix RandomHermitian(size_t n, Rng& rng);

}  // namespace qdb

#endif  // QDB_LINALG_RANDOM_UNITARY_H_
