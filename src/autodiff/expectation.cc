#include "autodiff/expectation.h"

#include "common/strings.h"

namespace qdb {

ExpectationFunction::ExpectationFunction(Circuit circuit, PauliSum observable)
    : circuit_(std::move(circuit)), observable_(std::move(observable)) {
  QDB_CHECK_EQ(circuit_.num_qubits(), observable_.num_qubits());
}

void ExpectationFunction::set_initial_state(StateVector state) {
  QDB_CHECK_EQ(state.num_qubits(), circuit_.num_qubits());
  initial_state_ = std::move(state);
}

Result<double> ExpectationFunction::RunAndMeasure(const Circuit& circuit,
                                                  const DVector& params) const {
  StateVector state =
      initial_state_ ? *initial_state_ : StateVector(circuit.num_qubits());
  QDB_RETURN_IF_ERROR(simulator_.RunInPlace(circuit, state, params));
  ++evaluations_;
  return Expectation(state, observable_);
}

Result<double> ExpectationFunction::Evaluate(const DVector& params) const {
  return RunAndMeasure(circuit_, params);
}

Result<double> ExpectationFunction::EvaluateWithShift(const DVector& params,
                                                      size_t gate_index,
                                                      size_t slot,
                                                      double delta) const {
  if (gate_index >= circuit_.size()) {
    return Status::OutOfRange(StrCat("gate index ", gate_index, " out of range"));
  }
  // Rebuild with the single slot's offset shifted. Circuit exposes no
  // mutable gate access by design, so reconstruct.
  Circuit rebuilt(circuit_.num_qubits());
  for (size_t i = 0; i < circuit_.gates().size(); ++i) {
    Gate g = circuit_.gates()[i];
    if (i == gate_index) {
      if (slot >= g.params.size()) {
        return Status::OutOfRange(StrCat("slot ", slot, " out of range"));
      }
      g.params[slot].offset += delta;
    }
    rebuilt.Append(g);
  }
  return RunAndMeasure(rebuilt, params);
}

}  // namespace qdb
