file(REMOVE_RECURSE
  "CMakeFiles/qasm_test.dir/qasm_test.cc.o"
  "CMakeFiles/qasm_test.dir/qasm_test.cc.o.d"
  "qasm_test"
  "qasm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qasm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
