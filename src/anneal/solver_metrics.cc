#include "anneal/solver_metrics.h"

#include "common/strings.h"
#include "obs/obs.h"

namespace qdb {

void RecordSolveMetrics(const char* solver, const SolveResult& result) {
  const std::string prefix = StrCat("anneal.", solver);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter(prefix + ".sweeps")->Increment(result.sweeps);
  registry.GetCounter(prefix + ".moves_accepted")
      ->Increment(result.moves_accepted);
  registry.GetCounter(prefix + ".moves_rejected")
      ->Increment(result.moves_rejected);
  registry.GetGauge(prefix + ".best_energy")->Set(result.best_energy);
  registry.GetGauge(prefix + ".acceptance_ratio")
      ->Set(result.acceptance_ratio());
}

}  // namespace qdb
