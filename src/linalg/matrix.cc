#include "linalg/matrix.h"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace qdb {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, Complex(0.0, 0.0)) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<Complex>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    QDB_CHECK_EQ(row.size(), cols_) << "ragged initializer list";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = Complex(1.0, 0.0);
  return m;
}

Matrix Matrix::Zero(size_t rows, size_t cols) { return Matrix(rows, cols); }

Matrix Matrix::Diagonal(const CVector& diag) {
  Matrix m(diag.size(), diag.size());
  for (size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

Matrix Matrix::operator+(const Matrix& other) const {
  QDB_CHECK_EQ(rows_, other.rows_);
  QDB_CHECK_EQ(cols_, other.cols_);
  Matrix out = *this;
  out += other;
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  QDB_CHECK_EQ(rows_, other.rows_);
  QDB_CHECK_EQ(cols_, other.cols_);
  Matrix out = *this;
  out -= other;
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  QDB_CHECK_EQ(rows_, other.rows_);
  QDB_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  QDB_CHECK_EQ(rows_, other.rows_);
  QDB_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(Complex scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

Matrix Matrix::operator*(Complex scalar) const {
  Matrix out = *this;
  out *= scalar;
  return out;
}

Matrix Matrix::operator*(const Matrix& other) const {
  QDB_CHECK_EQ(cols_, other.rows_) << "matmul shape mismatch";
  Matrix out(rows_, other.cols_);
  // ikj loop order: streams through `other` rows for cache friendliness.
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const Complex a = data_[i * cols_ + k];
      if (a == Complex(0.0, 0.0)) continue;
      const Complex* brow = &other.data_[k * other.cols_];
      Complex* orow = &out.data_[i * other.cols_];
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

CVector Matrix::Apply(const CVector& v) const {
  QDB_CHECK_EQ(cols_, v.size());
  CVector out(rows_, Complex(0.0, 0.0));
  for (size_t i = 0; i < rows_; ++i) {
    Complex acc(0.0, 0.0);
    const Complex* row = &data_[i * cols_];
    for (size_t j = 0; j < cols_; ++j) acc += row[j] * v[j];
    out[i] = acc;
  }
  return out;
}

Matrix Matrix::Adjoint() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i)
    for (size_t j = 0; j < cols_; ++j) out(j, i) = std::conj(data_[i * cols_ + j]);
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i)
    for (size_t j = 0; j < cols_; ++j) out(j, i) = data_[i * cols_ + j];
  return out;
}

Matrix Matrix::Conjugate() const {
  Matrix out = *this;
  for (auto& v : out.data_) v = std::conj(v);
  return out;
}

Matrix Matrix::Kron(const Matrix& other) const {
  Matrix out(rows_ * other.rows_, cols_ * other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      const Complex a = data_[i * cols_ + j];
      if (a == Complex(0.0, 0.0)) continue;
      for (size_t k = 0; k < other.rows_; ++k) {
        for (size_t l = 0; l < other.cols_; ++l) {
          out(i * other.rows_ + k, j * other.cols_ + l) = a * other(k, l);
        }
      }
    }
  }
  return out;
}

Complex Matrix::Trace() const {
  QDB_CHECK_EQ(rows_, cols_) << "trace of non-square matrix";
  Complex acc(0.0, 0.0);
  for (size_t i = 0; i < rows_; ++i) acc += data_[i * cols_ + i];
  return acc;
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (const auto& v : data_) acc += std::norm(v);
  return std::sqrt(acc);
}

bool Matrix::IsUnitary(double tol) const {
  if (rows_ != cols_ || rows_ == 0) return false;
  Matrix product = Adjoint() * (*this);
  return product.ApproxEqual(Identity(rows_), tol);
}

bool Matrix::IsHermitian(double tol) const {
  if (rows_ != cols_) return false;
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = i; j < cols_; ++j) {
      if (std::abs(data_[i * cols_ + j] - std::conj(data_[j * cols_ + i])) > tol)
        return false;
    }
  }
  return true;
}

bool Matrix::ApproxEqual(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

bool Matrix::EqualUpToGlobalPhase(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  // Find the largest-magnitude entry to fix the phase reference.
  size_t ref = 0;
  double best = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    double mag = std::abs(data_[i]);
    if (mag > best) {
      best = mag;
      ref = i;
    }
  }
  if (best < tol) return other.FrobeniusNorm() < tol * data_.size();
  if (std::abs(other.data_[ref]) < tol) return false;
  Complex phase = data_[ref] / other.data_[ref];
  double phase_mag = std::abs(phase);
  if (std::abs(phase_mag - 1.0) > tol) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - phase * other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision);
  for (size_t i = 0; i < rows_; ++i) {
    os << "[ ";
    for (size_t j = 0; j < cols_; ++j) {
      const Complex& v = data_[i * cols_ + j];
      os << "(" << v.real() << (v.imag() >= 0 ? "+" : "") << v.imag() << "i) ";
    }
    os << "]\n";
  }
  return os.str();
}

}  // namespace qdb
