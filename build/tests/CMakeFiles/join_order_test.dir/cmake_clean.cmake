file(REMOVE_RECURSE
  "CMakeFiles/join_order_test.dir/join_order_test.cc.o"
  "CMakeFiles/join_order_test.dir/join_order_test.cc.o.d"
  "join_order_test"
  "join_order_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
