/// \file model_hamiltonians.h
/// \brief Standard spin-model Hamiltonians (transverse-field Ising,
/// Heisenberg XXZ) — the VQE workloads of the tutorial's foundations
/// section, with known exact small-system energies for validation.

#ifndef QDB_OPS_MODEL_HAMILTONIANS_H_
#define QDB_OPS_MODEL_HAMILTONIANS_H_

#include "common/result.h"
#include "ops/pauli.h"

namespace qdb {

/// \brief Transverse-field Ising model
/// H = −J Σ Z_i Z_{i+1} − h Σ X_i on a chain (periodic optional).
Result<PauliSum> TransverseFieldIsing(int num_qubits, double j, double h,
                                      bool periodic = false);

/// \brief Heisenberg XXZ chain
/// H = Σ [J_xy (X_iX_{i+1} + Y_iY_{i+1}) + J_z Z_iZ_{i+1}].
Result<PauliSum> HeisenbergXXZ(int num_qubits, double j_xy, double j_z,
                               bool periodic = false);

}  // namespace qdb

#endif  // QDB_OPS_MODEL_HAMILTONIANS_H_
