#include "fault/circuit_breaker.h"

#include <algorithm>

#include "common/strings.h"
#include "obs/labels.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace qdb {
namespace fault {

namespace {

/// Shared fault.breaker.* handles (the per-breaker state gauge is looked up
/// per instance in the constructor).
struct BreakerMetrics {
  obs::Counter* opened = obs::GetCounter("fault.breaker.opened");
  obs::Counter* closed = obs::GetCounter("fault.breaker.closed");
  obs::Counter* shed = obs::GetCounter("fault.breaker.shed");
  obs::Histogram* open_duration_us = obs::GetHistogram(
      "fault.breaker.open_duration_us",
      {1000, 10000, 50000, 100000, 500000, 1e6, 5e6});
  /// Dimensional view alongside the unlabeled aggregates above (which tests
  /// and dashboards already key on): which breaker moved where.
  obs::CounterFamily* transitions =
      obs::MetricsRegistry::Global().GetCounterFamily(
          "fault.breaker.transitions", {"breaker", "to"});
  obs::CounterFamily* shed_by_breaker =
      obs::MetricsRegistry::Global().GetCounterFamily(
          "fault.breaker.shed_total", {"breaker"});
};

BreakerMetrics& Metrics() {
  static BreakerMetrics metrics;
  return metrics;
}

double StateValue(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return 0.0;
    case BreakerState::kOpen: return 1.0;
    case BreakerState::kHalfOpen: return 2.0;
  }
  return 0.0;
}

}  // namespace

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "closed";
}

CircuitBreaker::CircuitBreaker(std::string name,
                               const CircuitBreakerOptions& options)
    : name_(std::move(name)),
      options_(options),
      state_gauge_(obs::GetGauge(StrCat("fault.breaker.state.", name_))),
      window_(options.window == 0 ? 1 : options.window, 0) {
  state_gauge_->Set(StateValue(state_));
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  const Clock::time_point now = Clock::now();
  switch (state_) {
    case BreakerState::kClosed:
      ++stats_.allowed;
      return true;
    case BreakerState::kOpen:
      if (now - opened_at_ >=
          std::chrono::microseconds(options_.open_duration_us)) {
        HalfOpenLocked(now);
        ++stats_.allowed;
        return true;  // First probe.
      }
      ++stats_.shed;
      Metrics().shed->Increment();
      Metrics().shed_by_breaker->With(name_)->Increment();
      return false;
    case BreakerState::kHalfOpen:
      // Probes are rate-limited rather than counted in flight: a probe
      // whose outcome never comes back (expired in queue, resolved from
      // cache) cannot wedge the breaker — the next one is due an interval
      // later.
      if (now >= next_probe_at_) {
        next_probe_at_ =
            now + std::chrono::microseconds(options_.probe_interval_us);
        ++stats_.allowed;
        return true;
      }
      ++stats_.shed;
      Metrics().shed->Increment();
      Metrics().shed_by_breaker->With(name_)->Increment();
      return false;
  }
  return true;
}

void CircuitBreaker::RecordSuccess(long latency_us) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool slow = options_.latency_threshold_us > 0 &&
                    latency_us > options_.latency_threshold_us;
  const Clock::time_point now = Clock::now();
  if (state_ == BreakerState::kHalfOpen) {
    if (slow) {
      OpenLocked(now);
      return;
    }
    if (++probe_successes_ >= options_.half_open_probes) CloseLocked(now);
    return;
  }
  PushOutcomeLocked(slow);
  if (state_ == BreakerState::kClosed && window_count_ >= options_.min_samples &&
      static_cast<double>(window_failures_) >=
          options_.failure_threshold * static_cast<double>(window_count_)) {
    OpenLocked(now);
  }
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  const Clock::time_point now = Clock::now();
  if (state_ == BreakerState::kHalfOpen) {
    OpenLocked(now);  // The dependency is still sick: back to shedding.
    return;
  }
  PushOutcomeLocked(true);
  if (state_ == BreakerState::kClosed && window_count_ >= options_.min_samples &&
      static_cast<double>(window_failures_) >=
          options_.failure_threshold * static_cast<double>(window_count_)) {
    OpenLocked(now);
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

CircuitBreaker::Stats CircuitBreaker::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void CircuitBreaker::OpenLocked(Clock::time_point now) {
  QDB_TRACE_SCOPE("CircuitBreaker::Open", "fault");
  state_ = BreakerState::kOpen;
  opened_at_ = now;
  probe_successes_ = 0;
  ++stats_.opened;
  Metrics().opened->Increment();
  Metrics().transitions->With(name_, "open")->Increment();
  state_gauge_->Set(StateValue(state_));
}

void CircuitBreaker::CloseLocked(Clock::time_point now) {
  QDB_TRACE_SCOPE("CircuitBreaker::Close", "fault");
  Metrics().open_duration_us->Observe(
      static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(
                              now - opened_at_)
                              .count()));
  state_ = BreakerState::kClosed;
  probe_successes_ = 0;
  ResetWindowLocked();
  ++stats_.closed;
  Metrics().closed->Increment();
  Metrics().transitions->With(name_, "closed")->Increment();
  state_gauge_->Set(StateValue(state_));
}

void CircuitBreaker::HalfOpenLocked(Clock::time_point now) {
  QDB_TRACE_SCOPE("CircuitBreaker::HalfOpen", "fault");
  state_ = BreakerState::kHalfOpen;
  probe_successes_ = 0;
  next_probe_at_ =
      now + std::chrono::microseconds(options_.probe_interval_us);
  Metrics().transitions->With(name_, "half_open")->Increment();
  state_gauge_->Set(StateValue(state_));
}

void CircuitBreaker::PushOutcomeLocked(bool failure) {
  if (window_count_ == window_.size()) {
    window_failures_ -= window_[window_pos_];
  } else {
    ++window_count_;
  }
  window_[window_pos_] = failure ? 1 : 0;
  window_failures_ += failure ? 1 : 0;
  window_pos_ = (window_pos_ + 1) % window_.size();
}

void CircuitBreaker::ResetWindowLocked() {
  std::fill(window_.begin(), window_.end(), 0);
  window_pos_ = 0;
  window_count_ = 0;
  window_failures_ = 0;
}

}  // namespace fault
}  // namespace qdb
