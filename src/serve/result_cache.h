/// \file result_cache.h
/// \brief LRU cache of inference results keyed by (model name, version,
/// request kind, bit-exact input fingerprint).
///
/// Simulation is deterministic and served models are immutable once
/// registered, so a cached response is exactly the response the simulator
/// would produce — the cache is a pure latency/throughput win for workloads
/// with repeated queries (e.g. a cardinality model probed with the same
/// predicate templates). Keys hash the raw bytes of the input doubles, so
/// only bit-identical inputs hit.

#ifndef QDB_SERVE_RESULT_CACHE_H_
#define QDB_SERVE_RESULT_CACHE_H_

#include <chrono>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "linalg/types.h"
#include "serve/servable.h"

namespace qdb {
namespace serve {

/// \brief Bounded, thread-safe LRU map from request identity to
/// InferenceValue. Capacity 0 disables caching entirely (every lookup
/// misses, inserts are dropped).
class ResultCache {
 public:
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  /// Bit-exact cache key for a request.
  static std::string MakeKey(const std::string& model, int version,
                             RequestKind kind, const DVector& input);

  /// Returns the cached value and refreshes its LRU position, or nullopt.
  /// A positive `ttl_us` treats entries older than it as misses on this
  /// fresh-serving path — the entry stays in place (no LRU refresh) so the
  /// degraded path can still serve it stale; ttl_us == 0 never expires.
  std::optional<InferenceValue> Lookup(const std::string& key,
                                       long ttl_us = 0);

  /// Degraded-path lookup: returns the entry regardless of the fresh TTL as
  /// long as it is at most `max_age_us` old (0 = any age). Counts a stale
  /// hit, refreshes nothing.
  std::optional<InferenceValue> LookupStale(const std::string& key,
                                            long max_age_us);

  /// Inserts (or refreshes) a value, evicting the least-recently-used
  /// entry beyond capacity.
  void Insert(const std::string& key, const InferenceValue& value);

  struct Stats {
    long hits = 0;
    long misses = 0;
    long stale_hits = 0;
    long evictions = 0;
    size_t size = 0;
    size_t capacity = 0;
  };
  Stats stats() const;

  void Clear();

 private:
  using Clock = std::chrono::steady_clock;

  mutable std::mutex mu_;
  size_t capacity_;
  long hits_ = 0;
  long misses_ = 0;
  long stale_hits_ = 0;
  long evictions_ = 0;
  /// Most-recently-used key at the front.
  std::list<std::string> lru_;
  struct Entry {
    InferenceValue value;
    std::list<std::string>::iterator lru_pos;
    Clock::time_point inserted;
  };
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace serve
}  // namespace qdb

#endif  // QDB_SERVE_RESULT_CACHE_H_
