// Selectivity estimation two ways: (1) quantum counting — amplitude
// estimation over a predicate oracle — against classical sampling at the
// same oracle budget, and (2) a learned variational quantum regressor
// against the textbook attribute-independence estimator on correlated data.

#include <cmath>
#include <cstdio>

#include "algo/quantum_counting.h"
#include "db/cardinality.h"
#include "variational/vqr.h"

int main() {
  using namespace qdb;

  // ---- Part 1: COUNT(*) via quantum counting --------------------------
  const int n = 8;  // A 256-key table.
  std::vector<uint64_t> matching;
  for (int i = 0; i < 24; ++i) matching.push_back((97 * i + 13) % 256);
  const double truth = matching.size() / 256.0;
  std::printf("Predicate matches %zu of 256 keys (selectivity %.4f)\n\n",
              matching.size(), truth);

  std::printf("%22s %10s %12s %12s\n", "method", "budget", "estimate",
              "rel.error");
  Rng rng(17);
  for (int t : {4, 6, 8}) {
    CountEstimate qae =
        EstimateMarkedCount(n, matching, t, /*shots=*/64, rng).ValueOrDie();
    const int budget = (1 << t) - 1;
    std::printf("%22s %10d %12.4f %12.4f\n", "quantum counting", budget,
                qae.estimated_fraction,
                std::abs(qae.estimated_fraction - truth) / truth);
    const double classical = ClassicalSampledFraction(n, matching, budget, rng);
    std::printf("%22s %10d %12.4f %12.4f\n", "classical sampling", budget,
                classical, std::abs(classical - truth) / truth);
  }

  // ---- Part 2: learned cardinality estimation -------------------------
  std::printf("\nLearned estimator on 95%%-correlated columns:\n");
  Rng data_rng(71);
  SyntheticTable table = MakeCorrelatedTable(4000, 2, 0.95, data_rng);
  std::vector<DVector> features;
  DVector targets;
  std::vector<RangeQuery> train;
  for (int i = 0; i < 48; ++i) {
    RangeQuery q = RandomRangeQuery(2, data_rng, 0.05);
    train.push_back(q);
    features.push_back(q.ToFeatures());
    targets.push_back(SelectivityToTarget(q.TrueSelectivity(table)));
  }
  VqrOptions options;
  options.ansatz_layers = 3;
  options.feature_scale = M_PI;
  options.adam.max_iterations = 120;
  options.adam.learning_rate = 0.12;
  VqrRegressor model = VqrRegressor::Train(features, targets, options)
                           .ValueOrDie();
  IndependenceEstimator histograms = IndependenceEstimator::Build(table, 32);

  std::printf("%34s %12s %12s %12s\n", "query", "truth", "vqr",
              "independence");
  for (int i = 0; i < 5; ++i) {
    RangeQuery q = RandomRangeQuery(2, data_rng, 0.05);
    const double t_sel = q.TrueSelectivity(table);
    const double vqr_sel =
        TargetToSelectivity(model.Predict(q.ToFeatures()).ValueOrDie());
    const double ind_sel = histograms.Estimate(q);
    std::printf("[%.2f,%.2f)x[%.2f,%.2f)%14.4f %12.4f %12.4f\n", q.lo[0],
                q.hi[0], q.lo[1], q.hi[1], t_sel, vqr_sel, ind_sel);
  }
  std::printf("(q-error comparisons across correlations: bench_cardinality)\n");
  return 0;
}
