// Tests for StateVector: construction, kernels, measurement, sampling.

#include <gtest/gtest.h>

#include <cmath>

#include "common/thread_pool.h"
#include "sim/state_vector.h"
#include "sim/statevector_simulator.h"

namespace qdb {
namespace {

constexpr double kInvSqrt2 = 0.70710678118654752440;

TEST(StateVectorTest, InitializesToAllZeros) {
  StateVector s(3);
  EXPECT_EQ(s.num_qubits(), 3);
  EXPECT_EQ(s.dim(), 8u);
  EXPECT_EQ(s.amplitude(0), Complex(1, 0));
  for (uint64_t i = 1; i < 8; ++i) EXPECT_EQ(s.amplitude(i), Complex(0, 0));
}

TEST(StateVectorTest, BasisState) {
  StateVector s = StateVector::BasisState(2, 3);
  EXPECT_EQ(s.amplitude(3), Complex(1, 0));
  EXPECT_EQ(s.amplitude(0), Complex(0, 0));
}

TEST(StateVectorTest, FromAmplitudesValidation) {
  EXPECT_FALSE(StateVector::FromAmplitudes({}).ok());
  EXPECT_FALSE(
      StateVector::FromAmplitudes({{1, 0}, {0, 0}, {0, 0}}).ok());  // size 3
  EXPECT_FALSE(StateVector::FromAmplitudes({{2, 0}, {0, 0}}).ok());  // norm 2
  auto ok = StateVector::FromAmplitudes({{kInvSqrt2, 0}, {0, kInvSqrt2}});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().num_qubits(), 1);
}

TEST(StateVectorTest, FromAmplitudesRejectsSingleAmplitude) {
  // Regression: a length-1 vector is a power of two and has unit norm, but
  // zero qubits means dim() = 2 while only one amplitude is stored — every
  // kernel would then read past the end of the buffer.
  auto r = StateVector::FromAmplitudes({{1, 0}});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(StateVectorTest, SampleOnceMatchesSampleCountsWhenSubNormalized) {
  // Regression: SampleOnce used to draw the target against a unit mass while
  // the CDF only summed to |ψ|² < 1, skewing (or never terminating) draws on
  // sub-normalized states. Both samplers must agree on the renormalized
  // distribution P(i) = |a_i|²/Σ|a_j|².
  const double a0 = std::sqrt(0.5), a1 = 0.4;  // Σ|a|² = 0.66.
  auto r = StateVector::FromAmplitudes({{a0, 0}, {a1, 0}}, /*norm_tol=*/0.5);
  ASSERT_TRUE(r.ok());
  const StateVector& s = r.value();
  const double p0 = (a0 * a0) / (a0 * a0 + a1 * a1);  // ≈ 0.7576.

  Rng rng_once(11);
  int zeros = 0;
  const int shots = 20000;
  for (int i = 0; i < shots; ++i) zeros += (s.SampleOnce(rng_once) == 0);
  EXPECT_NEAR(zeros / static_cast<double>(shots), p0, 0.02);

  Rng rng_counts(13);
  auto counts = s.SampleCounts(rng_counts, shots);
  EXPECT_NEAR(counts[0] / static_cast<double>(shots), p0, 0.02);
}

TEST(StateVectorTest, HadamardOnQubitZero) {
  StateVector s(2);
  const Matrix h = GateMatrix(GateType::kH, {});
  s.Apply1Q(0, h);
  // Qubit 0 is the high bit: |00⟩ → (|00⟩ + |10⟩)/√2 = indices 0 and 2.
  EXPECT_NEAR(s.amplitude(0).real(), kInvSqrt2, 1e-12);
  EXPECT_NEAR(s.amplitude(2).real(), kInvSqrt2, 1e-12);
  EXPECT_NEAR(std::abs(s.amplitude(1)), 0.0, 1e-12);
}

TEST(StateVectorTest, BellStateConstruction) {
  StateVector s(2);
  s.Apply1Q(0, GateMatrix(GateType::kH, {}));
  s.ApplyControlled1Q(0, 1, {0, 0}, {1, 0}, {1, 0}, {0, 0});  // CX
  EXPECT_NEAR(s.Probability(0), 0.5, 1e-12);
  EXPECT_NEAR(s.Probability(3), 0.5, 1e-12);
  EXPECT_NEAR(s.Probability(1), 0.0, 1e-12);
  EXPECT_NEAR(s.Probability(2), 0.0, 1e-12);
}

TEST(StateVectorTest, DiagonalKernelsMatchDense) {
  StateVector a(2), b(2);
  a.Apply1Q(0, GateMatrix(GateType::kH, {}));
  b.Apply1Q(0, GateMatrix(GateType::kH, {}));
  const double theta = 0.9;
  a.ApplyDiagonal1Q(1, std::exp(Complex(0, -theta / 2)),
                    std::exp(Complex(0, theta / 2)));
  b.Apply1Q(1, GateMatrix(GateType::kRZ, {theta}));
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::abs(a.amplitude(i) - b.amplitude(i)), 0.0, 1e-12);
  }
}

TEST(StateVectorTest, SwapExchangesQubits) {
  StateVector s = StateVector::BasisState(3, 0b100);  // qubit 0 = 1.
  s.ApplySwap(0, 2);
  EXPECT_EQ(s.amplitude(0b001), Complex(1, 0));  // qubit 2 = 1 now.
}

TEST(StateVectorTest, Apply2QGenericMatchesKron) {
  // Apply a 4x4 on (0, 1) of a 2-qubit register: equals direct matvec.
  const Matrix u = GateMatrix(GateType::kRXX, {0.8});
  StateVector s(2);
  s.Apply1Q(0, GateMatrix(GateType::kH, {}));
  s.Apply1Q(1, GateMatrix(GateType::kRY, {0.4}));
  CVector direct = u.Apply(s.ToAmplitudes());
  s.Apply2Q(0, 1, u);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::abs(s.amplitude(i) - direct[i]), 0.0, 1e-12);
  }
}

TEST(StateVectorTest, Apply2QReversedOperandsMatchesSwappedKron) {
  // Gate on (1, 0): conjugate the matrix by SWAP and compare.
  const Matrix u = GateMatrix(GateType::kCX, {});
  const Matrix swap = GateMatrix(GateType::kSwap, {});
  StateVector s(2);
  s.Apply1Q(0, GateMatrix(GateType::kH, {}));
  s.Apply1Q(1, GateMatrix(GateType::kH, {}));
  s.Apply1Q(1, GateMatrix(GateType::kT, {}));
  CVector direct = (swap * u * swap).Apply(s.ToAmplitudes());
  s.Apply2Q(1, 0, u);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::abs(s.amplitude(i) - direct[i]), 0.0, 1e-12);
  }
}

TEST(StateVectorTest, MCXFlipsOnlyWhenAllControlsSet) {
  StateVector s = StateVector::BasisState(3, 0b110);
  s.ApplyMCX({0, 1}, 2);
  EXPECT_EQ(s.amplitude(0b111), Complex(1, 0));
  StateVector t = StateVector::BasisState(3, 0b100);
  t.ApplyMCX({0, 1}, 2);
  EXPECT_EQ(t.amplitude(0b100), Complex(1, 0));  // Unchanged.
}

TEST(StateVectorTest, MCZPhasesAllOnesOnly) {
  StateVector s(2);
  s.Apply1Q(0, GateMatrix(GateType::kH, {}));
  s.Apply1Q(1, GateMatrix(GateType::kH, {}));
  s.ApplyMCZ({0}, 1);
  EXPECT_NEAR(s.amplitude(3).real(), -0.5, 1e-12);
  EXPECT_NEAR(s.amplitude(0).real(), 0.5, 1e-12);
}

TEST(StateVectorTest, ApplyKQMatchesDenseOnThreeQubits) {
  const Matrix ccx = GateMatrix(GateType::kCCX, {});
  StateVector s(3);
  s.Apply1Q(0, GateMatrix(GateType::kH, {}));
  s.Apply1Q(1, GateMatrix(GateType::kH, {}));
  s.Apply1Q(2, GateMatrix(GateType::kRY, {0.3}));
  CVector direct = ccx.Apply(s.ToAmplitudes());
  s.ApplyKQ({0, 1, 2}, ccx);
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(std::abs(s.amplitude(i) - direct[i]), 0.0, 1e-12);
  }
}

TEST(StateVectorTest, ProbabilityOfOne) {
  StateVector s(2);
  s.Apply1Q(1, GateMatrix(GateType::kRY, {M_PI / 2}));
  EXPECT_NEAR(s.ProbabilityOfOne(1), 0.5, 1e-12);
  EXPECT_NEAR(s.ProbabilityOfOne(0), 0.0, 1e-12);
}

TEST(StateVectorTest, MeasureQubitCollapses) {
  Rng rng(3);
  StateVector s(2);
  s.Apply1Q(0, GateMatrix(GateType::kH, {}));
  const int outcome = s.MeasureQubit(0, rng);
  EXPECT_NEAR(s.ProbabilityOfOne(0), outcome, 1e-12);
  EXPECT_NEAR(s.NormValue(), 1.0, 1e-12);
}

TEST(StateVectorTest, MeasureAllCollapsesToBasisState) {
  Rng rng(5);
  StateVector s(3);
  for (int q = 0; q < 3; ++q) s.Apply1Q(q, GateMatrix(GateType::kH, {}));
  const uint64_t outcome = s.MeasureAll(rng);
  EXPECT_EQ(s.amplitude(outcome), Complex(1, 0));
  EXPECT_NEAR(s.NormValue(), 1.0, 1e-12);
}

TEST(StateVectorTest, SamplingMatchesProbabilities) {
  Rng rng(7);
  StateVector s(1);
  s.Apply1Q(0, GateMatrix(GateType::kRY, {2.0 * std::acos(std::sqrt(0.7))}));
  // P(0) = 0.7 by construction.
  auto counts = s.SampleCounts(rng, 20000);
  EXPECT_NEAR(counts[0] / 20000.0, 0.7, 0.02);
}

TEST(StateVectorTest, SampleCountsTotalsShots) {
  Rng rng(9);
  StateVector s(3);
  for (int q = 0; q < 3; ++q) s.Apply1Q(q, GateMatrix(GateType::kH, {}));
  auto counts = s.SampleCounts(rng, 1000);
  int total = 0;
  for (const auto& [_, c] : counts) total += c;
  EXPECT_EQ(total, 1000);
}

TEST(StateVectorTest, SampleOnceMatchesLinearScanReference) {
  // Regression: SampleOnce used an O(2^n) linear scan per draw. It now shares
  // the prefix-sum CDF + upper_bound path with SampleCounts; for the same Rng
  // stream the sampled outcomes must be identical to the old scan's
  // ("first index with target < running sum", falling back to dim()-1).
  StateVector s(6);
  for (int q = 0; q < 6; ++q) {
    s.Apply1Q(q, GateMatrix(GateType::kH, {}));
    s.Apply1Q(q, GateMatrix(GateType::kRY, {0.3 + 0.17 * q}));
  }
  DVector probs = s.Probabilities();
  double total = 0.0;
  for (double p : probs) total += p;

  Rng rng_cdf(12345), rng_ref(12345);
  for (int t = 0; t < 500; ++t) {
    const uint64_t got = s.SampleOnce(rng_cdf);
    const double target = rng_ref.Uniform() * total;
    double acc = 0.0;
    uint64_t expected = s.dim() - 1;
    for (uint64_t i = 0; i < s.dim(); ++i) {
      acc += probs[i];
      if (target < acc) {
        expected = i;
        break;
      }
    }
    ASSERT_EQ(got, expected) << "draw " << t;
  }
}

TEST(StateVectorTest, MeasureQubitSerialParallelBitIdentical) {
  // Regression: the fused collapse + norm pass must give bit-identical
  // results at every thread width (deterministic chunking), at a size above
  // kParallelAmplitudeThreshold so the parallel path actually engages.
  const int n = 15;  // 2^15 amplitudes > threshold of 2^14.
  auto prepare = [&] {
    StateVector s(n);
    for (int q = 0; q < n; ++q) {
      s.Apply1Q(q, GateMatrix(GateType::kH, {}));
      s.Apply1Q(q, GateMatrix(GateType::kRY, {0.1 + 0.05 * q}));
      s.Apply1Q(q, GateMatrix(GateType::kRZ, {0.2 + 0.03 * q}));
    }
    return s;
  };

  ThreadPool::SetGlobalThreads(1);
  StateVector serial = prepare();
  Rng rng_serial(77);
  const int outcome_serial = serial.MeasureQubit(3, rng_serial);

  ThreadPool::SetGlobalThreads(4);
  StateVector parallel = prepare();
  Rng rng_parallel(77);
  const int outcome_parallel = parallel.MeasureQubit(3, rng_parallel);
  ThreadPool::SetGlobalThreads(1);

  ASSERT_EQ(outcome_serial, outcome_parallel);
  const double* sr = serial.reals();
  const double* si = serial.imags();
  const double* pr = parallel.reals();
  const double* pi = parallel.imags();
  for (uint64_t i = 0; i < serial.dim(); ++i) {
    ASSERT_EQ(sr[i], pr[i]) << "re mismatch at " << i;
    ASSERT_EQ(si[i], pi[i]) << "im mismatch at " << i;
  }
}

TEST(StateVectorTest, BitStringRendering) {
  StateVector s(4);
  EXPECT_EQ(s.BitString(0b1010), "1010");
  EXPECT_EQ(s.BitString(0), "0000");
}

TEST(StateVectorTest, InnerProductWith) {
  StateVector a(1);
  StateVector b(1);
  b.Apply1Q(0, GateMatrix(GateType::kH, {}));
  EXPECT_NEAR(std::abs(a.InnerProductWith(b)), kInvSqrt2, 1e-12);
}

TEST(ExpectationTest, SingleQubitZ) {
  StateVector s(1);
  EXPECT_NEAR(ExpectationZ(s, 0), 1.0, 1e-12);
  s.Apply1Q(0, GateMatrix(GateType::kX, {}));
  EXPECT_NEAR(ExpectationZ(s, 0), -1.0, 1e-12);
}

TEST(ExpectationTest, PauliStringOnBellState) {
  StateVector s(2);
  s.Apply1Q(0, GateMatrix(GateType::kH, {}));
  s.ApplyControlled1Q(0, 1, {0, 0}, {1, 0}, {1, 0}, {0, 0});
  // Bell state: ⟨XX⟩ = ⟨ZZ⟩ = 1, ⟨YY⟩ = −1, ⟨ZI⟩ = 0.
  EXPECT_NEAR(Expectation(s, PauliString::Parse("XX").value()), 1.0, 1e-12);
  EXPECT_NEAR(Expectation(s, PauliString::Parse("ZZ").value()), 1.0, 1e-12);
  EXPECT_NEAR(Expectation(s, PauliString::Parse("YY").value()), -1.0, 1e-12);
  EXPECT_NEAR(Expectation(s, PauliString::Parse("ZI").value()), 0.0, 1e-12);
}

TEST(ExpectationTest, PauliSumCombinesTerms) {
  StateVector s(2);
  PauliSum h(2);
  h.Add(0.5, "ZI").Add(-2.0, "IZ").Add(3.0, "II");
  // |00⟩: ⟨ZI⟩ = ⟨IZ⟩ = 1 → 0.5 − 2 + 3 = 1.5.
  EXPECT_NEAR(Expectation(s, h), 1.5, 1e-12);
}

}  // namespace
}  // namespace qdb
