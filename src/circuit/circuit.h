/// \file circuit.h
/// \brief The quantum circuit IR: an ordered gate list over n qubits with a
/// symbolic parameter table.
///
/// Circuits are built fluently (`c.H(0).CX(0, 1).RY(1, ParamExpr::Variable(0))`),
/// can be appended, inverted, bound to concrete parameter values, and
/// rendered as OpenQASM-flavoured text. Simulation lives in sim/.

#ifndef QDB_CIRCUIT_CIRCUIT_H_
#define QDB_CIRCUIT_CIRCUIT_H_

#include <string>
#include <vector>

#include "circuit/gate.h"
#include "common/result.h"
#include "linalg/types.h"

namespace qdb {

/// \brief An ordered sequence of gates on a fixed-width qubit register.
class Circuit {
 public:
  /// Creates an empty circuit on `num_qubits` qubits (> 0).
  explicit Circuit(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  const std::vector<Gate>& gates() const { return gates_; }
  size_t size() const { return gates_.size(); }
  bool empty() const { return gates_.empty(); }

  /// Number of distinct symbolic parameters referenced (max index + 1).
  int num_parameters() const { return num_parameters_; }

  // ---- Fixed 1-qubit gates -------------------------------------------------
  Circuit& I(int q) { return Add1Q(GateType::kI, q); }
  Circuit& X(int q) { return Add1Q(GateType::kX, q); }
  Circuit& Y(int q) { return Add1Q(GateType::kY, q); }
  Circuit& Z(int q) { return Add1Q(GateType::kZ, q); }
  Circuit& H(int q) { return Add1Q(GateType::kH, q); }
  Circuit& S(int q) { return Add1Q(GateType::kS, q); }
  Circuit& Sdg(int q) { return Add1Q(GateType::kSdg, q); }
  Circuit& T(int q) { return Add1Q(GateType::kT, q); }
  Circuit& Tdg(int q) { return Add1Q(GateType::kTdg, q); }
  Circuit& SX(int q) { return Add1Q(GateType::kSX, q); }

  // ---- Parameterized 1-qubit gates (constant or symbolic angles) -----------
  Circuit& RX(int q, double theta) { return RX(q, ParamExpr::Constant(theta)); }
  Circuit& RY(int q, double theta) { return RY(q, ParamExpr::Constant(theta)); }
  Circuit& RZ(int q, double theta) { return RZ(q, ParamExpr::Constant(theta)); }
  Circuit& P(int q, double lambda) { return P(q, ParamExpr::Constant(lambda)); }
  Circuit& RX(int q, ParamExpr theta);
  Circuit& RY(int q, ParamExpr theta);
  Circuit& RZ(int q, ParamExpr theta);
  Circuit& P(int q, ParamExpr lambda);
  Circuit& U(int q, ParamExpr theta, ParamExpr phi, ParamExpr lambda);

  // ---- 2-qubit gates --------------------------------------------------------
  Circuit& CX(int control, int target) { return Add2Q(GateType::kCX, control, target); }
  Circuit& CY(int control, int target) { return Add2Q(GateType::kCY, control, target); }
  Circuit& CZ(int control, int target) { return Add2Q(GateType::kCZ, control, target); }
  Circuit& CH(int control, int target) { return Add2Q(GateType::kCH, control, target); }
  Circuit& Swap(int a, int b) { return Add2Q(GateType::kSwap, a, b); }
  Circuit& CRX(int c, int t, ParamExpr theta);
  Circuit& CRY(int c, int t, ParamExpr theta);
  Circuit& CRZ(int c, int t, ParamExpr theta);
  Circuit& CP(int c, int t, ParamExpr lambda);
  Circuit& CRX(int c, int t, double v) { return CRX(c, t, ParamExpr::Constant(v)); }
  Circuit& CRY(int c, int t, double v) { return CRY(c, t, ParamExpr::Constant(v)); }
  Circuit& CRZ(int c, int t, double v) { return CRZ(c, t, ParamExpr::Constant(v)); }
  Circuit& CP(int c, int t, double v) { return CP(c, t, ParamExpr::Constant(v)); }
  Circuit& RXX(int a, int b, ParamExpr theta);
  Circuit& RYY(int a, int b, ParamExpr theta);
  Circuit& RZZ(int a, int b, ParamExpr theta);
  Circuit& RXX(int a, int b, double v) { return RXX(a, b, ParamExpr::Constant(v)); }
  Circuit& RYY(int a, int b, double v) { return RYY(a, b, ParamExpr::Constant(v)); }
  Circuit& RZZ(int a, int b, double v) { return RZZ(a, b, ParamExpr::Constant(v)); }

  // ---- 3-qubit and variadic gates -------------------------------------------
  Circuit& CCX(int c1, int c2, int target);
  Circuit& CSwap(int control, int a, int b);
  /// Multi-controlled X: flips `target` when all `controls` are |1⟩.
  Circuit& MCX(const std::vector<int>& controls, int target);
  /// Multi-controlled Z: phase −1 on the all-ones subspace of
  /// controls ∪ {target}.
  Circuit& MCZ(const std::vector<int>& controls, int target);

  /// Appends a raw gate (validated).
  Circuit& Append(const Gate& gate);

  /// Appends every gate of `other` (widths must match).
  Circuit& Append(const Circuit& other);

  /// Appends `other` with its qubit k mapped to `mapping[k]`.
  Circuit& AppendMapped(const Circuit& other, const std::vector<int>& mapping);

  /// Returns the adjoint circuit: gates reversed, each inverted. Exact for
  /// every gate type in the IR.
  Circuit Inverse() const;

  /// Returns a copy with every symbolic parameter replaced by its value
  /// under `params` (the copy has num_parameters() == 0).
  Circuit Bind(const DVector& params) const;

  /// Evaluates the angle values of gate `gate_index` under `params`.
  DVector EvaluateAngles(size_t gate_index, const DVector& params) const;

  /// Total number of 2-qubit (and wider) gates — the standard NISQ cost
  /// metric.
  int TwoQubitGateCount() const;

  /// Circuit depth: length of the longest qubit-dependency chain.
  int Depth() const;

  /// OpenQASM-flavoured rendering, one gate per line.
  std::string ToString() const;

  /// Byte-exact structural encoding of the circuit: width plus, per gate,
  /// the type, operand qubits, and raw parameter expressions (index,
  /// multiplier, offset with bit-exact doubles). Two circuits share a
  /// fingerprint iff they are gate-for-gate identical — the key the
  /// compilation cache is built on.
  std::string StructuralFingerprint() const;

 private:
  Circuit& Add1Q(GateType type, int q);
  Circuit& Add2Q(GateType type, int a, int b);
  Circuit& AddGate(GateType type, std::vector<int> qubits,
                   std::vector<ParamExpr> params);
  void ValidateQubits(const std::vector<int>& qubits) const;
  void TrackParams(const std::vector<ParamExpr>& params);

  int num_qubits_;
  int num_parameters_ = 0;
  std::vector<Gate> gates_;
};

}  // namespace qdb

#endif  // QDB_CIRCUIT_CIRCUIT_H_
