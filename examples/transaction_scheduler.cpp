// Conflict-aware transaction scheduling via QUBO + annealing, with the
// gate-model QAOA path shown on a reduced instance (the E9 pipeline).

#include <cstdio>

#include "anneal/simulated_annealing.h"
#include "common/strings.h"
#include "db/transactions.h"
#include "variational/qaoa.h"

int main() {
  using namespace qdb;

  // 10 transactions, 4 slots, 30% pairwise conflict density.
  Rng rng(13);
  TxnScheduleInstance instance = RandomTxnInstance(10, 4, 0.3, rng);
  std::printf("%d transactions, %d slots, %zu conflict pairs\n",
              instance.num_transactions, instance.num_slots,
              instance.conflicts.size());

  // Greedy first-fit baseline.
  std::vector<int> greedy = GreedyFirstFitSchedule(instance);
  std::printf("greedy : slots [%s], violations %d, makespan %d\n",
              StrJoin(greedy, ", ").c_str(),
              instance.ConflictViolations(greedy), instance.Makespan(greedy));

  // QUBO + simulated annealing.
  TxnScheduleQubo qubo = TxnScheduleQubo::Create(instance).ValueOrDie();
  SaOptions options;
  options.num_sweeps = 2000;
  options.num_restarts = 4;
  SolveResult solved =
      SimulatedAnnealing(qubo.qubo().ToIsing(), options).ValueOrDie();
  std::vector<int> schedule = qubo.Decode(SpinsToBits(solved.best_spins));
  std::printf("anneal : slots [%s], violations %d, makespan %d\n",
              StrJoin(schedule, ", ").c_str(),
              instance.ConflictViolations(schedule),
              instance.Makespan(schedule));

  // The same formulation runs on the gate model via QAOA — shown on a
  // 3-transaction, 2-slot sub-instance (6 qubits).
  TxnScheduleInstance small;
  small.num_transactions = 3;
  small.num_slots = 2;
  small.conflicts = {{0, 1}};
  TxnScheduleQubo small_qubo = TxnScheduleQubo::Create(small).ValueOrDie();
  Qaoa qaoa(small_qubo.qubo().ToIsing(), /*layers=*/2);
  QaoaOptions qaoa_options;
  qaoa_options.restarts = 4;
  QaoaResult qaoa_result = qaoa.Optimize(qaoa_options).ValueOrDie();
  std::vector<int> qaoa_schedule =
      small_qubo.Decode(SpinsToBits(qaoa_result.best_spins));
  std::printf(
      "QAOA (3 txns / 2 slots): slots [%s], violations %d "
      "(energy %.2f after %ld circuit evals)\n",
      StrJoin(qaoa_schedule, ", ").c_str(),
      small.ConflictViolations(qaoa_schedule), qaoa_result.best_energy,
      qaoa_result.circuit_evaluations);
  return 0;
}
