// E14 — NISQ noise impact on variational workloads.
//
// Regenerates the noise-robustness figure: on the density-matrix
// simulator, (a) QAOA expected cut quality vs depolarizing noise rate and
// depth, and (b) Bell/GHZ observable fidelity vs noise — the reason the
// tutorial tempers near-term expectations. Expected shape: observable
// quality decays roughly exponentially in (noise rate × 2-qubit gate
// count), so deeper QAOA loses its depth advantage beyond a noise-dependent
// crossover.

#include <benchmark/benchmark.h>

#include <cmath>

#include "mitigation/zne.h"
#include "ops/graph_hamiltonians.h"
#include "sim/density_simulator.h"
#include "variational/qaoa.h"

namespace qdb {
namespace {

void BM_NoisyGhzFidelity(benchmark::State& state) {
  // ⟨Z⊗n⟩-style witness: ⟨X X ... X⟩ on a GHZ state vs noise.
  const double noise_pct = static_cast<double>(state.range(0)) / 10.0;
  const int n = 4;
  Circuit ghz(n);
  ghz.H(0);
  for (int q = 0; q + 1 < n; ++q) ghz.CX(q, q + 1);
  PauliSum witness(n);
  PauliString all_x(n);
  for (int q = 0; q < n; ++q) all_x.set_op(q, PauliOp::kX);
  witness.Add(1.0, all_x);

  double value = 0.0, purity = 0.0;
  for (auto _ : state) {
    auto noise = NoiseModel::Depolarizing(noise_pct / 100.0,
                                          2.0 * noise_pct / 100.0);
    if (!noise.ok()) {
      state.SkipWithError(noise.status().ToString().c_str());
      return;
    }
    auto rho = DensitySimulator(noise.value()).Run(ghz);
    if (!rho.ok()) {
      state.SkipWithError(rho.status().ToString().c_str());
      return;
    }
    value = rho.value().ExpectationOf(witness);
    purity = rho.value().Purity();
  }
  state.counters["noise_pct"] = noise_pct;
  state.counters["ghz_witness"] = value;  // 1.0 when noiseless.
  state.counters["purity"] = purity;
}

BENCHMARK(BM_NoisyGhzFidelity)
    ->Arg(0)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Arg(50)
    ->Arg(100)  // range is noise in 0.1% units: 0%…10%.
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_NoisyQaoaCutQuality(benchmark::State& state) {
  // Evaluate noiselessly-optimized QAOA parameters under hardware noise:
  // the expected cut ratio as a function of noise rate and depth p.
  const int p = static_cast<int>(state.range(0));
  const double noise_pct = static_cast<double>(state.range(1)) / 10.0;
  WeightedGraph ring = RingGraph(6);
  IsingModel ising = MaxCutIsing(ring);
  const double optimal = MaxCutBruteForce(ring);

  Qaoa qaoa(ising, p);
  QaoaOptions opts;
  opts.restarts = 3;
  opts.seed = 11 + p;
  opts.nelder_mead.max_iterations = 300;
  auto trained = qaoa.Optimize(opts);
  if (!trained.ok()) {
    state.SkipWithError(trained.status().ToString().c_str());
    return;
  }

  double noisy_ratio = 0.0;
  for (auto _ : state) {
    auto noise = NoiseModel::Depolarizing(noise_pct / 100.0,
                                          2.0 * noise_pct / 100.0);
    if (!noise.ok()) {
      state.SkipWithError(noise.status().ToString().c_str());
      return;
    }
    auto rho =
        DensitySimulator(noise.value()).Run(qaoa.circuit(),
                                            trained.value().params);
    if (!rho.ok()) {
      state.SkipWithError(rho.status().ToString().c_str());
      return;
    }
    const double energy = rho.value().ExpectationOf(ising.ToPauliSum());
    noisy_ratio = (ring.TotalWeight() - energy) / 2.0 / optimal;
  }
  state.counters["p"] = p;
  state.counters["noise_pct"] = noise_pct;
  state.counters["noiseless_ratio"] =
      (ring.TotalWeight() - trained.value().expected_energy) / 2.0 / optimal;
  state.counters["noisy_ratio"] = noisy_ratio;
  state.counters["two_qubit_gates"] = qaoa.circuit().TwoQubitGateCount();
}

BENCHMARK(BM_NoisyQaoaCutQuality)
    ->ArgsProduct({{1, 2, 3}, {0, 5, 10, 20, 40}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

void BM_ZneMitigatedGhz(benchmark::State& state) {
  // Error-mitigation extension: the GHZ witness with and without
  // zero-noise extrapolation across noise rates. Expected: ZNE recovers
  // most of the witness until the noise is strong enough that the
  // scale-5 folding destroys the signal.
  const double noise_pct = static_cast<double>(state.range(0)) / 10.0;
  const int n = 4;
  Circuit ghz(n);
  ghz.H(0);
  for (int q = 0; q + 1 < n; ++q) ghz.CX(q, q + 1);
  PauliSum witness(n);
  PauliString all_x(n);
  for (int q = 0; q < n; ++q) all_x.set_op(q, PauliOp::kX);
  witness.Add(1.0, all_x);

  double mitigated = 0.0, unmitigated = 0.0;
  for (auto _ : state) {
    auto noise = NoiseModel::Depolarizing(noise_pct / 100.0,
                                          2.0 * noise_pct / 100.0);
    if (!noise.ok()) {
      state.SkipWithError(noise.status().ToString().c_str());
      return;
    }
    DensitySimulator sim(noise.value());
    auto zne = ZeroNoiseExtrapolate(ghz, witness, sim);
    if (!zne.ok()) {
      state.SkipWithError(zne.status().ToString().c_str());
      return;
    }
    mitigated = zne.value().mitigated;
    unmitigated = zne.value().unmitigated;
  }
  state.counters["noise_pct"] = noise_pct;
  state.counters["raw_witness"] = unmitigated;
  state.counters["zne_witness"] = mitigated;  // Ideal value: 1.0.
}

BENCHMARK(BM_ZneMitigatedGhz)
    ->Arg(2)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_DensitySimulatorCost(benchmark::State& state) {
  // O(4^n) cost wall of exact noisy simulation.
  const int n = static_cast<int>(state.range(0));
  Circuit c(n);
  for (int q = 0; q < n; ++q) c.H(q);
  for (int q = 0; q + 1 < n; ++q) c.CX(q, q + 1);
  auto noise = NoiseModel::Depolarizing(0.01, 0.02).ValueOrDie();
  DensitySimulator sim(noise);
  for (auto _ : state) {
    auto rho = sim.Run(c);
    benchmark::DoNotOptimize(rho);
  }
  state.counters["qubits"] = n;
}

BENCHMARK(BM_DensitySimulatorCost)
    ->DenseRange(2, 8, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qdb

BENCHMARK_MAIN();
