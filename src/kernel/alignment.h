/// \file alignment.h
/// \brief Kernel quality diagnostics: kernel–target alignment and kernel
/// centering (used by E3/E13 to explain which encodings suit which data).

#ifndef QDB_KERNEL_ALIGNMENT_H_
#define QDB_KERNEL_ALIGNMENT_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace qdb {

/// \brief Kernel–target alignment A(K, yyᵀ) = ⟨K, yyᵀ⟩_F / (‖K‖_F·‖yyᵀ‖_F)
/// ∈ [−1, 1]; higher means the kernel geometry matches the labels better.
Result<double> KernelTargetAlignment(const Matrix& gram,
                                     const std::vector<int>& labels);

/// \brief Centered variant (Cortes et al.): both K and yyᵀ are centered by
/// H = I − 11ᵀ/n before aligning — removes the constant-offset component.
Result<double> CenteredKernelAlignment(const Matrix& gram,
                                       const std::vector<int>& labels);

/// \brief Returns H K H with H = I − 11ᵀ/n (feature-space mean removal).
Result<Matrix> CenterKernel(const Matrix& gram);

}  // namespace qdb

#endif  // QDB_KERNEL_ALIGNMENT_H_
