# Empty dependencies file for model_hamiltonians_test.
# This may be replaced when dependencies are built.
