#!/usr/bin/env bash
# Serving saturation sweep (E20): runs bench_serve_scale across the
# (shards, dispatchers, clients) grid, writes BENCH_serve_scale.json at the
# repo root, and charts aggregate throughput and client-observed p99 vs
# client count (single-queue baseline vs fully sharded) and vs shard count
# at fixed load.
#
#   ./scripts/serve_sweep.sh
#
# Like bench_snapshot.sh, the sweep refuses to record from a non-Release
# build (set QDB_BENCH_ALLOW_DEBUG=1 to write a tagged, untrusted file for
# local experiments).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . -DQDB_BUILD_BENCHMARKS=ON -DCMAKE_BUILD_TYPE=Release \
  >/dev/null
build_type=$(grep -E '^CMAKE_BUILD_TYPE:' build/CMakeCache.txt |
  cut -d= -f2)
if [[ "${build_type}" != "Release" ]]; then
  if [[ "${QDB_BENCH_ALLOW_DEBUG:-0}" != "1" ]]; then
    echo "ERROR: build/ is configured as '${build_type:-unset}', not Release." >&2
    echo "Sweep snapshots from non-Release builds are not comparable;" >&2
    echo "reconfigure with -DCMAKE_BUILD_TYPE=Release (or set" >&2
    echo "QDB_BENCH_ALLOW_DEBUG=1 to record a tagged, untrusted snapshot)." >&2
    exit 1
  fi
  tag="UNTRUSTED-${build_type}-"
else
  tag=""
fi

cmake --build build -j --target bench_serve_scale

out="${tag}BENCH_serve_scale.json"
echo "== bench_serve_scale -> ${out} =="
./build/bench/bench_serve_scale \
  --benchmark_format=json \
  --benchmark_out="${out}" \
  --benchmark_out_format=json \
  --benchmark_min_time="${QDB_SWEEP_MIN_TIME:-0.2}"

python3 - "${out}" "${build_type}" << 'PYEOF'
import json, sys

path, build_type = sys.argv[1], sys.argv[2]
with open(path) as f:
    doc = json.load(f)
# Stamp the verified qdb build type (context.library_build_type describes
# the installed google-benchmark library, not this repo).
doc.setdefault("context", {})["qdb_build_type"] = build_type
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")

rows = {}
for b in doc.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    key = (int(b["shards"]), int(b["dispatchers"]), int(b["clients"]))
    rows[key] = {"rps": b["req_per_s"], "p99": b["p99_us"],
                 "p50": b["p50_us"], "steals": b.get("steals", 0)}

def bar(value, peak, width=40):
    n = 0 if peak <= 0 else int(round(width * value / peak))
    return "#" * max(n, 1 if value > 0 else 0)

clients = sorted({c for (_, _, c) in rows})
configs = [(1, 1), (8, 8)]
peak_rps = max(r["rps"] for r in rows.values())
peak_p99 = max(r["p99"] for r in rows.values())

print()
print("throughput (req/s) vs clients")
for c in clients:
    for s, d in configs:
        r = rows.get((s, d, c))
        if r is None:
            continue
        print(f"  {s}sx{d}d {c:>4} clients {r['rps']:>10.0f} "
              f"{bar(r['rps'], peak_rps)}")
print()
print("client-observed p99 (us) vs clients")
for c in clients:
    for s, d in configs:
        r = rows.get((s, d, c))
        if r is None:
            continue
        print(f"  {s}sx{d}d {c:>4} clients {r['p99']:>10.0f} "
              f"{bar(r['p99'], peak_p99)}")
print()
print("throughput (req/s) vs shard count @ 64 clients")
for (s, d, c) in sorted(rows):
    if c != 64 or s != d:
        continue
    r = rows[(s, d, c)]
    print(f"  {s} shards {r['rps']:>10.0f} {bar(r['rps'], peak_rps)}"
          f"  (p99={r['p99']:.0f}us steals={r['steals']:.0f})")

# E20 acceptance gates (DESIGN.md "Sharded serving & multi-tenancy").
failures = []
sharded = [rows.get((s, s, 64)) for s in (1, 2, 4, 8)]
if all(sharded):
    rps = [r["rps"] for r in sharded]
    if not all(a < b for a, b in zip(rps, rps[1:])):
        failures.append(
            f"throughput not increasing with shard count @64 clients: {rps}")
single, full = rows.get((1, 1, 256)), rows.get((8, 8, 256))
if single and full:
    ratio = single["p99"] / full["p99"]
    print(f"\np99 @256 clients: 1x1={single['p99']:.0f}us "
          f"8x8={full['p99']:.0f}us ({ratio:.1f}x better)")
    if ratio < 2.0:
        failures.append(f"p99 @256 clients only {ratio:.1f}x better (< 2x)")
for f in failures:
    print(f"SWEEP GATE FAILED: {f}", file=sys.stderr)
if failures:
    sys.exit(1)
print("sweep gates passed")
PYEOF

echo "sweep written: ${out}"
