/// \file qubo.h
/// \brief Quadratic Unconstrained Binary Optimization model — the lingua
/// franca between database optimization problems and annealing hardware.
///
/// A QUBO instance is min_x Σ_i q_i x_i + Σ_{i<j} q_ij x_i x_j + c over
/// x ∈ {0,1}^n. The database formulations (join ordering, MQO, transaction
/// scheduling, index selection) all lower to this form, which the annealers
/// in src/anneal/ consume either directly or via the Ising conversion.

#ifndef QDB_OPS_QUBO_H_
#define QDB_OPS_QUBO_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "linalg/types.h"

namespace qdb {

class IsingModel;

/// \brief A QUBO instance with dense linear terms and sparse quadratic terms.
class Qubo {
 public:
  /// Creates a zero objective over `num_vars` binary variables.
  explicit Qubo(int num_vars);

  int num_vars() const { return static_cast<int>(linear_.size()); }

  /// Adds `value` to the linear coefficient of x_i.
  void AddLinear(int i, double value);

  /// Adds `value` to the coefficient of x_i·x_j (i ≠ j; stored canonically
  /// with i < j). Adding with i == j folds into the linear term since
  /// x² = x for binaries.
  void AddQuadratic(int i, int j, double value);

  /// Adds `value` to the constant offset.
  void AddOffset(double value);

  double linear(int i) const;
  double offset() const { return offset_; }

  /// Sparse map {(i, j) → coefficient}, i < j.
  const std::map<std::pair<int, int>, double>& quadratic() const {
    return quadratic_;
  }

  /// Objective value of an assignment (bits.size() == num_vars, entries 0/1).
  double Energy(const std::vector<uint8_t>& bits) const;

  /// Change in energy from flipping bit `i` of `bits` (O(degree) via the
  /// adjacency index, used by the annealers' inner loops).
  double FlipDelta(const std::vector<uint8_t>& bits, int i) const;

  /// Neighbors of variable i with their coupling coefficients.
  const std::vector<std::pair<int, double>>& Neighbors(int i) const;

  /// Equivalent Ising model under x_i = (1 + s_i) / 2.
  IsingModel ToIsing() const;

  /// Human-readable listing of non-zero terms.
  std::string ToString() const;

 private:
  DVector linear_;
  std::map<std::pair<int, int>, double> quadratic_;
  double offset_ = 0.0;
  // Adjacency index kept in sync with quadratic_ for O(degree) flip deltas.
  std::vector<std::vector<std::pair<int, double>>> adjacency_;
};

}  // namespace qdb

#endif  // QDB_OPS_QUBO_H_
