#include "db/index_selection.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "common/strings.h"

namespace qdb {

double IndexSelectionInstance::BenefitOf(
    const std::vector<uint8_t>& selection) const {
  QDB_CHECK_EQ(static_cast<int>(selection.size()), num_candidates());
  double total = 0.0;
  for (int i = 0; i < num_candidates(); ++i) {
    if (selection[i]) total += benefits[i];
  }
  for (const auto& inter : interactions) {
    if (selection[inter.i] && selection[inter.j]) total += inter.delta;
  }
  return total;
}

double IndexSelectionInstance::SizeOf(
    const std::vector<uint8_t>& selection) const {
  QDB_CHECK_EQ(static_cast<int>(selection.size()), num_candidates());
  double total = 0.0;
  for (int i = 0; i < num_candidates(); ++i) {
    if (selection[i]) total += sizes[i];
  }
  return total;
}

bool IndexSelectionInstance::Feasible(
    const std::vector<uint8_t>& selection) const {
  return SizeOf(selection) <= budget + 1e-9;
}

IndexSelectionInstance RandomIndexInstance(int num_candidates,
                                           double budget_fraction,
                                           double interaction_probability,
                                           Rng& rng) {
  QDB_CHECK_GE(num_candidates, 1);
  QDB_CHECK_GT(budget_fraction, 0.0);
  IndexSelectionInstance instance;
  instance.benefits.resize(num_candidates);
  instance.sizes.resize(num_candidates);
  double total_size = 0.0;
  for (int i = 0; i < num_candidates; ++i) {
    instance.benefits[i] = rng.Uniform(10.0, 100.0);
    instance.sizes[i] = std::round(rng.Uniform(1.0, 20.0));
    total_size += instance.sizes[i];
  }
  instance.budget = std::round(budget_fraction * total_size);
  for (int i = 0; i < num_candidates; ++i) {
    for (int j = i + 1; j < num_candidates; ++j) {
      if (rng.Bernoulli(interaction_probability)) {
        // Redundant index pair: keeping both loses part of the benefit.
        const double smaller =
            std::min(instance.benefits[i], instance.benefits[j]);
        instance.interactions.push_back({i, j, -rng.Uniform(0.2, 0.8) * smaller});
      }
    }
  }
  return instance;
}

Result<IndexSelectionQubo> IndexSelectionQubo::Create(
    const IndexSelectionInstance& instance, double penalty_weight) {
  const int n = instance.num_candidates();
  if (n < 1) {
    return Status::InvalidArgument("instance has no candidate indexes");
  }
  if (instance.budget <= 0.0) {
    return Status::InvalidArgument("budget must be positive");
  }
  for (int i = 0; i < n; ++i) {
    if (instance.benefits[i] <= 0.0 || instance.sizes[i] <= 0.0) {
      return Status::InvalidArgument("benefits and sizes must be positive");
    }
  }
  // Slack bits cover [0, budget]: Σ size·x + slack = budget at feasible,
  // fully-used-slack points; the squared penalty then vanishes exactly.
  int slack_bits = 1;
  while ((double)((uint64_t{1} << slack_bits) - 1) < instance.budget) {
    ++slack_bits;
    if (slack_bits > 24) {
      return Status::InvalidArgument("budget too large for slack encoding");
    }
  }
  double total_benefit = 0.0;
  for (double b : instance.benefits) total_benefit += b;
  const double penalty =
      penalty_weight > 0.0 ? penalty_weight : total_benefit + 1.0;

  const int total_vars = n + slack_bits;
  Qubo qubo(total_vars);

  // Objective: maximize benefit ⇒ minimize −benefit.
  for (int i = 0; i < n; ++i) qubo.AddLinear(i, -instance.benefits[i]);
  for (const auto& inter : instance.interactions) {
    if (inter.i < 0 || inter.i >= n || inter.j < 0 || inter.j >= n ||
        inter.i == inter.j) {
      return Status::InvalidArgument("bad interaction pair");
    }
    qubo.AddQuadratic(inter.i, inter.j, -inter.delta);
  }

  // Budget: P·(Σ a_k v_k − budget)² over index vars (a = size) and slack
  // vars (a = 2^k). Expansion: P·(Σ a_k² v_k + 2Σ_{k<l} a_k a_l v_k v_l −
  // 2·budget·Σ a_k v_k + budget²).
  DVector coeff(total_vars);
  for (int i = 0; i < n; ++i) coeff[i] = instance.sizes[i];
  for (int k = 0; k < slack_bits; ++k) {
    coeff[n + k] = static_cast<double>(uint64_t{1} << k);
  }
  qubo.AddOffset(penalty * instance.budget * instance.budget);
  for (int k = 0; k < total_vars; ++k) {
    qubo.AddLinear(k, penalty * coeff[k] * (coeff[k] - 2.0 * instance.budget));
    for (int l = k + 1; l < total_vars; ++l) {
      qubo.AddQuadratic(k, l, 2.0 * penalty * coeff[k] * coeff[l]);
    }
  }
  return IndexSelectionQubo(instance, std::move(qubo), slack_bits);
}

std::vector<uint8_t> IndexSelectionQubo::Decode(
    const std::vector<uint8_t>& bits) const {
  QDB_CHECK_EQ(static_cast<int>(bits.size()), qubo_.num_vars());
  const int n = instance_.num_candidates();
  std::vector<uint8_t> selection(bits.begin(), bits.begin() + n);
  // Repair budget overflow: drop the worst benefit/size candidates first.
  while (!instance_.Feasible(selection)) {
    int worst = -1;
    double worst_ratio = std::numeric_limits<double>::infinity();
    for (int i = 0; i < n; ++i) {
      if (!selection[i]) continue;
      const double ratio = instance_.benefits[i] / instance_.sizes[i];
      if (ratio < worst_ratio) {
        worst_ratio = ratio;
        worst = i;
      }
    }
    QDB_CHECK_GE(worst, 0);
    selection[worst] = 0;
  }
  return selection;
}

std::vector<uint8_t> GreedyIndexSelection(
    const IndexSelectionInstance& instance) {
  const int n = instance.num_candidates();
  std::vector<uint8_t> selection(n, 0);
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return instance.benefits[a] / instance.sizes[a] >
           instance.benefits[b] / instance.sizes[b];
  });
  double used = 0.0;
  double current_benefit = 0.0;
  for (int i : order) {
    if (used + instance.sizes[i] > instance.budget + 1e-9) continue;
    selection[i] = 1;
    const double benefit = instance.BenefitOf(selection);
    // Interactions can make an addition net-negative; skip those.
    if (benefit <= current_benefit) {
      selection[i] = 0;
      continue;
    }
    current_benefit = benefit;
    used += instance.sizes[i];
  }
  return selection;
}

Result<double> ExhaustiveIndexBenefit(const IndexSelectionInstance& instance) {
  const int n = instance.num_candidates();
  if (n > 24) {
    return Status::InvalidArgument("exhaustive search limited to 24 candidates");
  }
  double best = 0.0;
  std::vector<uint8_t> selection(n);
  const uint64_t total = uint64_t{1} << n;
  for (uint64_t mask = 0; mask < total; ++mask) {
    for (int i = 0; i < n; ++i) selection[i] = (mask >> i) & 1;
    if (!instance.Feasible(selection)) continue;
    best = std::max(best, instance.BenefitOf(selection));
  }
  return best;
}

}  // namespace qdb
