/// \file qaoa.h
/// \brief Quantum Approximate Optimization Algorithm over Ising cost
/// Hamiltonians — the gate-model route from QUBO-encoded database problems
/// to solutions.

#ifndef QDB_VARIATIONAL_QAOA_H_
#define QDB_VARIATIONAL_QAOA_H_

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "common/result.h"
#include "common/rng.h"
#include "ops/ising.h"
#include "optimize/nelder_mead.h"

namespace qdb {

/// \brief Configuration for QAOA optimization.
struct QaoaOptions {
  int restarts = 3;           ///< Independent Nelder–Mead starts.
  uint64_t seed = 17;         ///< Seed for restarts and sampling.
  int sample_shots = 512;     ///< Shots when extracting the best solution.
  NelderMeadOptions nelder_mead;
};

/// \brief Outcome of a QAOA run.
struct QaoaResult {
  DVector params;             ///< Best (γ_0..γ_{p−1}, β_0..β_{p−1}).
  double expected_energy = 0;  ///< ⟨H_C⟩ at the best parameters.
  double best_energy = 0;     ///< Energy of the best sampled configuration.
  std::vector<int8_t> best_spins;  ///< That configuration.
  /// ⟨H_C⟩ per optimizer iteration of the winning restart.
  DVector history;
  long circuit_evaluations = 0;
};

/// \brief QAOA driver for one Ising instance.
///
/// The parameter layout is γ_k = θ[k] and β_k = θ[p + k]. The circuit is
/// H⊗n, then per layer the cost separator exp(−iγ_k H_C) (RZ / RZZ gates
/// with angles 2γ_k·h and 2γ_k·J) and the mixer exp(−iβ_k Σ X) (RX(2β_k)).
class Qaoa {
 public:
  /// `layers` is the QAOA depth p ≥ 1.
  Qaoa(IsingModel cost, int layers);

  const IsingModel& cost() const { return cost_; }
  int layers() const { return layers_; }

  /// The parameterized QAOA circuit (2p symbolic parameters).
  const Circuit& circuit() const { return circuit_; }

  /// ⟨ψ(γ,β)|H_C|ψ(γ,β)⟩, offset included.
  Result<double> Energy(const DVector& params) const;

  /// Optimizes (γ, β) with restarted Nelder–Mead, then samples `shots`
  /// configurations at the optimum and reports the best one found.
  Result<QaoaResult> Optimize(const QaoaOptions& options = {}) const;

  /// Samples configurations at `params` and returns the lowest-energy one.
  Result<std::vector<int8_t>> SampleBest(const DVector& params, int shots,
                                         Rng& rng) const;

 private:
  Circuit Build() const;

  IsingModel cost_;
  int layers_;
  PauliSum cost_observable_;
  Circuit circuit_;
};

}  // namespace qdb

#endif  // QDB_VARIATIONAL_QAOA_H_
