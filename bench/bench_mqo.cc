// E8 — Multi-query optimization on the annealing substrate.
//
// Regenerates the Trummer & Koch (SIGMOD'16) style comparison: solution
// quality (cost ratio to the exhaustive optimum) of SA, SQA, and tabu
// search on the MQO QUBO, against the sharing-blind greedy baseline, as
// instance size grows. Expected shape: all annealers stay within a few
// percent of optimal on small instances; greedy leaves sharing savings on
// the table and its gap widens with sharing density.

#include <benchmark/benchmark.h>

#include "anneal/quantum_annealing.h"
#include "anneal/simulated_annealing.h"
#include "anneal/tabu.h"
#include "db/mqo.h"

namespace qdb {
namespace {

struct Instance {
  MqoInstance mqo;
  double optimal;
};

Instance MakeInstance(int queries, int plans, double sharing, uint64_t seed) {
  Rng rng(seed);
  MqoInstance inst = RandomMqoInstance(queries, plans, sharing, rng);
  double optimal = MqoExhaustiveCost(inst).ValueOrDie();
  return {std::move(inst), optimal};
}

enum Solver { kSa = 0, kSqa = 1, kTabu = 2 };

const char* SolverName(int solver) {
  switch (solver) {
    case kSa: return "sa";
    case kSqa: return "sqa";
    default: return "tabu";
  }
}

void BM_MqoSolver(benchmark::State& state) {
  const int solver = static_cast<int>(state.range(0));
  const int queries = static_cast<int>(state.range(1));
  const int plans = 3;
  Instance inst = MakeInstance(queries, plans, 0.15, 200 + queries);
  auto qubo = MqoQubo::Create(inst.mqo).ValueOrDie();
  IsingModel ising = qubo.qubo().ToIsing();

  double ratio = 0.0;
  for (auto _ : state) {
    Result<SolveResult> solved = Status::Internal("unset");
    switch (solver) {
      case kSa: {
        SaOptions opts;
        opts.num_sweeps = 2000;
        opts.num_restarts = 4;
        solved = SimulatedAnnealing(ising, opts);
        break;
      }
      case kSqa: {
        SqaOptions opts;
        opts.num_sweeps = 800;
        opts.num_replicas = 16;
        opts.num_restarts = 2;
        solved = SimulatedQuantumAnnealing(ising, opts);
        break;
      }
      default: {
        TabuOptions opts;
        opts.max_iterations = 3000;
        opts.num_restarts = 4;
        solved = TabuSearch(ising, opts);
        break;
      }
    }
    if (!solved.ok()) {
      state.SkipWithError(solved.status().ToString().c_str());
      return;
    }
    std::vector<int> selection =
        qubo.Decode(SpinsToBits(solved.value().best_spins));
    ratio = inst.mqo.SelectionCost(selection) / inst.optimal;
  }
  state.SetLabel(SolverName(solver));
  state.counters["queries"] = queries;
  state.counters["qubo_vars"] = queries * plans;
  state.counters["cost_ratio_vs_optimal"] = ratio;
}

BENCHMARK(BM_MqoSolver)
    ->ArgsProduct({{kSa, kSqa, kTabu}, {3, 5, 7, 9}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_MqoGreedy(benchmark::State& state) {
  const int queries = static_cast<int>(state.range(0));
  Instance inst = MakeInstance(queries, 3, 0.15, 200 + queries);
  double ls_ratio = 0.0, cheapest_ratio = 0.0;
  for (auto _ : state) {
    ls_ratio = MqoGreedyCost(inst.mqo) / inst.optimal;
    cheapest_ratio = MqoCheapestPlanCost(inst.mqo) / inst.optimal;
  }
  state.SetLabel("greedy");
  state.counters["queries"] = queries;
  state.counters["cost_ratio_vs_optimal"] = ls_ratio;
  state.counters["cheapest_plan_ratio"] = cheapest_ratio;
}

BENCHMARK(BM_MqoGreedy)
    ->Arg(3)
    ->Arg(5)
    ->Arg(7)
    ->Arg(9)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_MqoSharingDensitySweep(benchmark::State& state) {
  // Ablation: the annealed-vs-greedy gap as sharing density rises.
  const double sharing = static_cast<double>(state.range(0)) / 100.0;
  Instance inst = MakeInstance(6, 3, sharing, 777);
  auto qubo = MqoQubo::Create(inst.mqo).ValueOrDie();
  double sa_ratio = 0.0, greedy_ratio = 0.0;
  for (auto _ : state) {
    SaOptions opts;
    opts.num_sweeps = 2000;
    opts.num_restarts = 4;
    auto solved = SimulatedAnnealing(qubo.qubo().ToIsing(), opts);
    if (!solved.ok()) {
      state.SkipWithError(solved.status().ToString().c_str());
      return;
    }
    sa_ratio = inst.mqo.SelectionCost(
                   qubo.Decode(SpinsToBits(solved.value().best_spins))) /
               inst.optimal;
    greedy_ratio = MqoGreedyCost(inst.mqo) / inst.optimal;
  }
  state.counters["sharing_pct"] = sharing * 100.0;
  state.counters["sa_ratio"] = sa_ratio;
  state.counters["greedy_ratio"] = greedy_ratio;
  state.counters["cheapest_plan_ratio"] =
      MqoCheapestPlanCost(inst.mqo) / inst.optimal;
}

BENCHMARK(BM_MqoSharingDensitySweep)
    ->Arg(5)
    ->Arg(15)
    ->Arg(30)
    ->Arg(50)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qdb

BENCHMARK_MAIN();
