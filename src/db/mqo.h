/// \file mqo.h
/// \brief Multi-query optimization as QUBO (after Trummer & Koch, SIGMOD'16
/// — the first DB problem run on quantum annealers, E8): pick one plan per
/// query to minimize total cost minus inter-plan sharing savings.

#ifndef QDB_DB_MQO_H_
#define QDB_DB_MQO_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "linalg/types.h"
#include "ops/qubo.h"

namespace qdb {

/// \brief One MQO problem instance.
struct MqoInstance {
  /// plan_costs[q][p]: execution cost of plan p for query q.
  std::vector<DVector> plan_costs;
  /// Sharing opportunity: picking plan (q1, p1) together with (q2, p2)
  /// saves `saving` (q1 ≠ q2).
  struct Sharing {
    int query1, plan1;
    int query2, plan2;
    double saving;
  };
  std::vector<Sharing> sharings;

  int num_queries() const { return static_cast<int>(plan_costs.size()); }

  /// Total cost of a plan selection (selection[q] = chosen plan index).
  double SelectionCost(const std::vector<int>& selection) const;
};

/// \brief Random instance: costs uniform in [10, 100]; each cross-query
/// plan pair shares with probability `sharing_probability`, saving uniform
/// in [5, 40] (bounded below the smaller plan cost is not enforced —
/// savings model common subexpressions).
MqoInstance RandomMqoInstance(int num_queries, int plans_per_query,
                              double sharing_probability, Rng& rng);

/// \brief QUBO over q·p variables x_{q,p} with one-hot penalties per query.
class MqoQubo {
 public:
  static Result<MqoQubo> Create(const MqoInstance& instance,
                                double penalty_weight = -1.0);

  const Qubo& qubo() const { return qubo_; }
  int VarIndex(int query, int plan) const;

  /// Decodes bits into a plan selection (repairing empty/multiple picks to
  /// the cheapest plan of the affected query).
  std::vector<int> Decode(const std::vector<uint8_t>& bits) const;

 private:
  MqoQubo(MqoInstance instance, Qubo qubo, std::vector<int> plans_per_query)
      : instance_(std::move(instance)),
        qubo_(std::move(qubo)),
        plans_per_query_(std::move(plans_per_query)) {}

  MqoInstance instance_;
  Qubo qubo_;
  std::vector<int> plans_per_query_;
};

/// \brief Exact optimum by enumerating all plan combinations (product of
/// plan counts ≤ 2·10⁶ enforced).
Result<double> MqoExhaustiveCost(const MqoInstance& instance);

/// \brief Pure greedy baseline: the cheapest plan per query, ignoring
/// sharing entirely (Trummer & Koch's naive baseline).
double MqoCheapestPlanCost(const MqoInstance& instance);

/// \brief Greedy baseline: cheapest plan per query ignoring sharing,
/// followed by single-query local improvement to a fixpoint.
double MqoGreedyCost(const MqoInstance& instance);

}  // namespace qdb

#endif  // QDB_DB_MQO_H_
