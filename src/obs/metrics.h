/// \file metrics.h
/// \brief Process-wide metrics: named atomic counters, gauges, and
/// fixed-bucket histograms with text / JSON export.
///
/// Hot paths increment metrics through pointers obtained once from the
/// registry (a mutex-guarded name lookup); the increments themselves are
/// relaxed atomics, so instrumented loops pay a handful of nanoseconds per
/// update and never contend on a lock.

#ifndef QDB_OBS_METRICS_H_
#define QDB_OBS_METRICS_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace qdb {
namespace obs {

template <typename M>
class LabeledFamily;  // labels.h

/// \brief Monotonically increasing count (gate applications, sweeps, …).
class Counter {
 public:
  void Increment(long delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  long Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long> value_{0};
};

/// \brief Last-written double value (best energy, current loss, …).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Fixed-bucket histogram with Prometheus "le" semantics: a sample v
/// lands in the first bucket whose upper bound satisfies v <= bound; values
/// above the last bound land in the implicit overflow bucket.
class Histogram {
 public:
  /// `bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  /// Adds `other`'s buckets, total, and sum into this histogram. Both must
  /// have identical bounds. Concurrent Observe calls on either side merge
  /// without loss (per-bucket relaxed adds), though the merged snapshot is
  /// only instantaneously consistent if the other histogram is quiescent.
  void Merge(const Histogram& other);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket i; i == bounds().size() is the overflow bucket.
  long CountInBucket(size_t i) const;
  /// Samples above the last bound. When this is non-zero, every quantile
  /// whose rank falls in the overflow bucket is clamped to bounds().back()
  /// and understates the true value — exported so dashboards can flag it.
  long OverflowCount() const { return CountInBucket(bounds_.size()); }
  /// Approximate `q`-quantile (q in [0, 1]) by linear interpolation inside
  /// the bucket holding the target rank (Prometheus histogram_quantile
  /// semantics). Samples in the overflow bucket clamp to the last bound.
  /// Returns 0 when the histogram is empty.
  double ApproxQuantile(double q) const;
  long TotalCount() const { return total_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<long>> counts_;  // bounds_.size() + 1 entries.
  std::atomic<long> total_{0};
  std::atomic<double> sum_{0.0};
};

/// \brief Thread-safe name → metric registry (process singleton).
///
/// Get* returns a stable pointer: metrics are never deleted, so callers may
/// cache the pointer (function-local static) and skip the lookup afterwards.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Returns the existing histogram if `name` is already registered (the
  /// bounds argument is then ignored).
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = DefaultBounds());

  /// Labeled (dimensional) families — see labels.h. As with Get*, the
  /// first call registers the family (later calls ignore keys / bounds /
  /// cap and return the existing one) and the pointer is process-stable.
  LabeledFamily<Counter>* GetCounterFamily(
      const std::string& name, std::vector<std::string> keys,
      size_t max_cardinality = 0 /* 0 = kDefaultLabelCardinality */);
  LabeledFamily<Gauge>* GetGaugeFamily(const std::string& name,
                                       std::vector<std::string> keys,
                                       size_t max_cardinality = 0);
  LabeledFamily<Histogram>* GetHistogramFamily(
      const std::string& name, std::vector<std::string> keys,
      std::vector<double> bounds = DefaultBounds(),
      size_t max_cardinality = 0);

  /// One metric per line, sorted by name: "name value" /
  /// "name{le="b"} count"; labeled children render their label sets inside
  /// the braces ("name{model="m",outcome="ok"} 42").
  std::string ExportText() const;
  /// {"counters":{...},"gauges":{...},"histograms":{...},"families":{...}}.
  std::string ExportJson() const;

  /// Zeroes every registered metric, including every labeled child
  /// (pointers stay valid). Test helper — fixes cross-test metric bleed
  /// without relative-delta bookkeeping.
  void ResetAll();
  /// Alias for ResetAll(), the name tests reach for.
  void Reset() { ResetAll(); }

  /// Default latency-style bucket bounds (microseconds, 1 … 1e6).
  static std::vector<double> DefaultBounds();

 private:
  MetricsRegistry();
  ~MetricsRegistry();  // Defined where LabeledFamily is complete.

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<LabeledFamily<Counter>>>
      counter_families_;
  std::map<std::string, std::unique_ptr<LabeledFamily<Gauge>>>
      gauge_families_;
  std::map<std::string, std::unique_ptr<LabeledFamily<Histogram>>>
      histogram_families_;
};

}  // namespace obs
}  // namespace qdb

#endif  // QDB_OBS_METRICS_H_
