#include "serve/model_artifact.h"

#include <sstream>
#include <string_view>

#include "common/strings.h"
#include "serve/servable.h"
#include "store/binary_format.h"

namespace qdb {
namespace serve {

namespace {

constexpr const char* kMagic = "qdb-model-artifact";
constexpr int kFormatVersion = 1;

std::string FormatDouble(double v) { return StrFormat("%.17g", v); }

const char* EncodingName(VqcEncoding e) {
  switch (e) {
    case VqcEncoding::kAngle: return "angle";
    case VqcEncoding::kZZFeatureMap: return "zz";
    case VqcEncoding::kReuploading: return "reuploading";
  }
  return "angle";
}

const char* EntanglementName(Entanglement e) {
  switch (e) {
    case Entanglement::kLinear: return "linear";
    case Entanglement::kCircular: return "circular";
    case Entanglement::kFull: return "full";
  }
  return "linear";
}

const char* KernelEncodingName(KernelEncodingKind k) {
  switch (k) {
    case KernelEncodingKind::kAngle: return "angle";
    case KernelEncodingKind::kZZFeatureMap: return "zz";
  }
  return "angle";
}

Result<VqcEncoding> ParseEncoding(const std::string& s) {
  if (s == "angle") return VqcEncoding::kAngle;
  if (s == "zz") return VqcEncoding::kZZFeatureMap;
  if (s == "reuploading") return VqcEncoding::kReuploading;
  return Status::InvalidArgument(StrCat("unknown encoding '", s, "'"));
}

Result<Entanglement> ParseEntanglement(const std::string& s) {
  if (s == "linear") return Entanglement::kLinear;
  if (s == "circular") return Entanglement::kCircular;
  if (s == "full") return Entanglement::kFull;
  return Status::InvalidArgument(StrCat("unknown entanglement '", s, "'"));
}

Result<KernelEncodingKind> ParseKernelEncoding(const std::string& s) {
  if (s == "angle") return KernelEncodingKind::kAngle;
  if (s == "zz") return KernelEncodingKind::kZZFeatureMap;
  return Status::InvalidArgument(StrCat("unknown kernel encoding '", s, "'"));
}

/// Line-cursor over the artifact body with typed field readers. Every
/// reader validates the expected key, so a reordered or truncated file
/// fails fast with the offending key in the message.
class LineReader {
 public:
  explicit LineReader(std::vector<std::string> lines)
      : lines_(std::move(lines)) {}

  bool done() const { return pos_ >= lines_.size(); }

  Result<std::string> NextLine() {
    if (done()) {
      return Status::InvalidArgument("artifact truncated: unexpected end");
    }
    return lines_[pos_++];
  }

  /// "key value..." → the raw value string (rest of line after one space).
  Result<std::string> ReadRaw(const std::string& key) {
    QDB_ASSIGN_OR_RETURN(std::string line, NextLine());
    if (line.rfind(key + " ", 0) != 0) {
      return Status::InvalidArgument(
          StrCat("artifact corrupted: expected field '", key, "', got '",
                 line.substr(0, 32), "'"));
    }
    return line.substr(key.size() + 1);
  }

  Result<std::string> ReadToken(const std::string& key) {
    QDB_ASSIGN_OR_RETURN(std::string raw, ReadRaw(key));
    if (raw.find(' ') != std::string::npos) {
      return Status::InvalidArgument(
          StrCat("artifact corrupted: field '", key, "' has trailing data"));
    }
    return raw;
  }

  Result<long long> ReadInt(const std::string& key) {
    QDB_ASSIGN_OR_RETURN(std::string raw, ReadToken(key));
    std::istringstream is(raw);
    long long v = 0;
    if (!(is >> v) || !is.eof()) {
      return Status::InvalidArgument(
          StrCat("artifact corrupted: field '", key, "' is not an integer"));
    }
    return v;
  }

  Result<double> ReadDouble(const std::string& key) {
    QDB_ASSIGN_OR_RETURN(std::string raw, ReadToken(key));
    std::istringstream is(raw);
    double v = 0;
    if (!(is >> v) || !is.eof()) {
      return Status::InvalidArgument(
          StrCat("artifact corrupted: field '", key, "' is not a number"));
    }
    return v;
  }

  Result<uint64_t> ReadHex(const std::string& key) {
    QDB_ASSIGN_OR_RETURN(std::string raw, ReadToken(key));
    std::istringstream is(raw);
    uint64_t v = 0;
    if (!(is >> std::hex >> v) || !is.eof()) {
      return Status::InvalidArgument(
          StrCat("artifact corrupted: field '", key, "' is not hex"));
    }
    return v;
  }

  /// "key n" then one line of n space-separated doubles.
  Result<DVector> ReadVector(const std::string& key) {
    QDB_ASSIGN_OR_RETURN(long long n, ReadInt(key));
    if (n < 0 || n > (1 << 24)) {
      return Status::InvalidArgument(
          StrCat("artifact corrupted: implausible ", key, " count ", n));
    }
    QDB_ASSIGN_OR_RETURN(std::string line, NextLine());
    std::istringstream is(line);
    DVector out(static_cast<size_t>(n));
    for (auto& v : out) {
      if (!(is >> v)) {
        return Status::InvalidArgument(
            StrCat("artifact corrupted: short ", key, " row"));
      }
    }
    double extra;
    if (is >> extra) {
      return Status::InvalidArgument(
          StrCat("artifact corrupted: long ", key, " row"));
    }
    return out;
  }

 private:
  std::vector<std::string> lines_;
  size_t pos_ = 0;
};

void AppendVector(std::string& out, const std::string& key, const DVector& v) {
  out += StrCat(key, " ", v.size(), "\n");
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) out += " ";
    out += FormatDouble(v[i]);
  }
  out += "\n";
}

}  // namespace

const char* ModelTypeName(ModelType type) {
  switch (type) {
    case ModelType::kVqcClassifier: return "vqc";
    case ModelType::kVqrRegressor: return "vqr";
    case ModelType::kKernelSvm: return "kernel_svm";
    case ModelType::kQuboConfig: return "qubo_config";
  }
  return "vqc";
}

uint64_t Fnv1a64(const std::string& bytes) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string ModelArtifact::Serialize() const {
  std::string body = StrCat(kMagic, " format ", kFormatVersion, "\n");
  body += StrCat("type ", ModelTypeName(type), "\n");
  body += StrCat("name ", name, "\n");
  body += StrCat("version ", version, "\n");
  body += StrCat("num_features ", num_features, "\n");
  switch (type) {
    case ModelType::kVqcClassifier:
      body += StrCat("encoding ", EncodingName(encoding), "\n");
      body += StrCat("ansatz_layers ", ansatz_layers, "\n");
      body += StrCat("entanglement ", EntanglementName(entanglement), "\n");
      body += StrCat("feature_scale ", FormatDouble(feature_scale), "\n");
      body += StrCat("circuit_fingerprint ",
                     StrFormat("%016llx",
                               static_cast<unsigned long long>(
                                   circuit_fingerprint)), "\n");
      AppendVector(body, "params", params);
      break;
    case ModelType::kVqrRegressor:
      body += StrCat("ansatz_layers ", ansatz_layers, "\n");
      body += StrCat("feature_scale ", FormatDouble(feature_scale), "\n");
      body += StrCat("circuit_fingerprint ",
                     StrFormat("%016llx",
                               static_cast<unsigned long long>(
                                   circuit_fingerprint)), "\n");
      AppendVector(body, "params", params);
      break;
    case ModelType::kKernelSvm:
      body += StrCat("kernel_encoding ",
                     KernelEncodingName(kernel_encoding), "\n");
      body += StrCat("kernel_scale ", FormatDouble(kernel_scale), "\n");
      body += StrCat("kernel_reps ", kernel_reps, "\n");
      body += StrCat("bias ", FormatDouble(bias), "\n");
      body += StrCat("support_vectors ", support_vectors.size(), "\n");
      for (const auto& sv : support_vectors) {
        body += FormatDouble(sv.coeff);
        for (double f : sv.features) body += StrCat(" ", FormatDouble(f));
        body += "\n";
      }
      break;
    case ModelType::kQuboConfig:
      body += StrCat("config ", config.size(), "\n");
      for (const auto& [key, value] : config) {
        body += StrCat(key, " ", value, "\n");
      }
      break;
  }
  body += "end\n";
  return StrCat(body, "checksum ",
                StrFormat("%016llx",
                          static_cast<unsigned long long>(Fnv1a64(body))),
                "\n");
}

Result<ModelArtifact> ModelArtifact::Deserialize(const std::string& text) {
  // One streaming pass: the final line must be the checksum record, and the
  // body hash is folded while the body is split into lines — the body is
  // never copied or re-scanned. The last *line* (not the last occurrence of
  // "checksum ", which a config key or model name could forge) is the only
  // place the record is accepted, so a file cut mid-section always fails
  // with kInvalidArgument here instead of misparsing.
  constexpr const char kChecksumKey[] = "checksum ";
  constexpr size_t kChecksumKeyLen = sizeof(kChecksumKey) - 1;
  if (text.size() < kChecksumKeyLen + 2 || text.back() != '\n') {
    return Status::InvalidArgument("artifact corrupted: missing checksum");
  }
  const size_t prev_newline = text.rfind('\n', text.size() - 2);
  const size_t final_start =
      prev_newline == std::string::npos ? 0 : prev_newline + 1;
  // The checksum record, without its trailing newline.
  const std::string_view final_line(text.data() + final_start,
                                    text.size() - 1 - final_start);
  if (final_line.substr(0, kChecksumKeyLen) != kChecksumKey) {
    return Status::InvalidArgument("artifact corrupted: missing checksum");
  }
  uint64_t stored = 0;
  {
    const std::string_view hex = final_line.substr(kChecksumKeyLen);
    size_t digits = 0;
    for (; digits < hex.size() && digits <= 16; ++digits) {
      const char c = hex[digits];
      int nibble;
      if (c >= '0' && c <= '9') {
        nibble = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        nibble = c - 'a' + 10;
      } else if (c >= 'A' && c <= 'F') {
        nibble = c - 'A' + 10;
      } else {
        break;
      }
      stored = stored << 4 | static_cast<uint64_t>(nibble);
    }
    if (digits == 0 || digits > 16) {
      return Status::InvalidArgument("artifact corrupted: unreadable checksum");
    }
  }

  // Hash and line-split the body [0, final_start) in a single walk.
  std::vector<std::string> lines;
  uint64_t hash = 1469598103934665603ull;
  size_t line_start = 0;
  for (size_t i = 0; i < final_start; ++i) {
    const unsigned char c = static_cast<unsigned char>(text[i]);
    hash ^= c;
    hash *= 1099511628211ull;
    if (c == '\n') {
      lines.emplace_back(text, line_start, i - line_start);
      line_start = i + 1;
    }
  }
  if (stored != hash) {
    return Status::InvalidArgument(
        "artifact corrupted: checksum mismatch (file damaged or edited)");
  }
  LineReader reader(std::move(lines));

  // Header: magic + format version.
  {
    QDB_ASSIGN_OR_RETURN(std::string header, reader.NextLine());
    std::istringstream is(header);
    std::string magic, kw;
    int format = 0;
    if (!(is >> magic >> kw >> format) || magic != kMagic || kw != "format") {
      return Status::InvalidArgument(
          "not a qdb model artifact (bad magic header)");
    }
    if (format != kFormatVersion) {
      return Status::Unimplemented(
          StrCat("unsupported artifact format version ", format,
                 " (this build reads format ", kFormatVersion, ")"));
    }
  }

  ModelArtifact a;
  QDB_ASSIGN_OR_RETURN(std::string type_name, reader.ReadToken("type"));
  if (type_name == "vqc") {
    a.type = ModelType::kVqcClassifier;
  } else if (type_name == "vqr") {
    a.type = ModelType::kVqrRegressor;
  } else if (type_name == "kernel_svm") {
    a.type = ModelType::kKernelSvm;
  } else if (type_name == "qubo_config") {
    a.type = ModelType::kQuboConfig;
  } else {
    return Status::InvalidArgument(
        StrCat("unknown artifact type '", type_name, "'"));
  }
  QDB_ASSIGN_OR_RETURN(a.name, reader.ReadRaw("name"));
  QDB_ASSIGN_OR_RETURN(long long version, reader.ReadInt("version"));
  a.version = static_cast<int>(version);
  QDB_ASSIGN_OR_RETURN(long long nf, reader.ReadInt("num_features"));
  a.num_features = static_cast<int>(nf);

  switch (a.type) {
    case ModelType::kVqcClassifier: {
      QDB_ASSIGN_OR_RETURN(std::string enc, reader.ReadToken("encoding"));
      QDB_ASSIGN_OR_RETURN(a.encoding, ParseEncoding(enc));
      QDB_ASSIGN_OR_RETURN(long long layers, reader.ReadInt("ansatz_layers"));
      a.ansatz_layers = static_cast<int>(layers);
      QDB_ASSIGN_OR_RETURN(std::string ent, reader.ReadToken("entanglement"));
      QDB_ASSIGN_OR_RETURN(a.entanglement, ParseEntanglement(ent));
      QDB_ASSIGN_OR_RETURN(a.feature_scale, reader.ReadDouble("feature_scale"));
      QDB_ASSIGN_OR_RETURN(a.circuit_fingerprint,
                           reader.ReadHex("circuit_fingerprint"));
      QDB_ASSIGN_OR_RETURN(a.params, reader.ReadVector("params"));
      break;
    }
    case ModelType::kVqrRegressor: {
      QDB_ASSIGN_OR_RETURN(long long layers, reader.ReadInt("ansatz_layers"));
      a.ansatz_layers = static_cast<int>(layers);
      QDB_ASSIGN_OR_RETURN(a.feature_scale, reader.ReadDouble("feature_scale"));
      QDB_ASSIGN_OR_RETURN(a.circuit_fingerprint,
                           reader.ReadHex("circuit_fingerprint"));
      QDB_ASSIGN_OR_RETURN(a.params, reader.ReadVector("params"));
      break;
    }
    case ModelType::kKernelSvm: {
      QDB_ASSIGN_OR_RETURN(std::string enc,
                           reader.ReadToken("kernel_encoding"));
      QDB_ASSIGN_OR_RETURN(a.kernel_encoding, ParseKernelEncoding(enc));
      QDB_ASSIGN_OR_RETURN(a.kernel_scale, reader.ReadDouble("kernel_scale"));
      QDB_ASSIGN_OR_RETURN(long long reps, reader.ReadInt("kernel_reps"));
      a.kernel_reps = static_cast<int>(reps);
      QDB_ASSIGN_OR_RETURN(a.bias, reader.ReadDouble("bias"));
      QDB_ASSIGN_OR_RETURN(long long m, reader.ReadInt("support_vectors"));
      if (m < 0 || m > (1 << 24)) {
        return Status::InvalidArgument(
            "artifact corrupted: implausible support-vector count");
      }
      a.support_vectors.reserve(static_cast<size_t>(m));
      for (long long i = 0; i < m; ++i) {
        QDB_ASSIGN_OR_RETURN(std::string line, reader.NextLine());
        std::istringstream is(line);
        SupportVector sv;
        if (!(is >> sv.coeff)) {
          return Status::InvalidArgument(
              "artifact corrupted: unreadable support-vector row");
        }
        double f;
        while (is >> f) sv.features.push_back(f);
        if (static_cast<int>(sv.features.size()) != a.num_features) {
          return Status::InvalidArgument(
              StrCat("artifact corrupted: support vector has ",
                     sv.features.size(), " features, expected ",
                     a.num_features));
        }
        a.support_vectors.push_back(std::move(sv));
      }
      break;
    }
    case ModelType::kQuboConfig: {
      QDB_ASSIGN_OR_RETURN(long long n, reader.ReadInt("config"));
      if (n < 0 || n > (1 << 20)) {
        return Status::InvalidArgument(
            "artifact corrupted: implausible config count");
      }
      for (long long i = 0; i < n; ++i) {
        QDB_ASSIGN_OR_RETURN(std::string line, reader.NextLine());
        const size_t space = line.find(' ');
        if (space == std::string::npos || space == 0) {
          return Status::InvalidArgument(
              "artifact corrupted: config line is not 'key value'");
        }
        a.config.emplace_back(line.substr(0, space), line.substr(space + 1));
      }
      break;
    }
  }
  QDB_ASSIGN_OR_RETURN(std::string tail, reader.NextLine());
  if (tail != "end" || !reader.done()) {
    return Status::InvalidArgument(
        "artifact corrupted: trailing data before checksum");
  }
  return a;
}

Status ModelArtifact::SaveToFile(const std::string& path) const {
  // Text format for API compatibility; the storage tier's binary writer is
  // store::SaveArtifact. Both share the crash-safe tmp+rename path and its
  // "artifact.save" fault point.
  return store::AtomicWriteFile(path, Serialize(), name);
}

Result<ModelArtifact> ModelArtifact::LoadFromFile(const std::string& path) {
  // Sniffs the on-disk format, so files written by either writer load
  // transparently through every existing call site.
  return store::LoadArtifact(path);
}

ModelArtifact MakeVqcArtifact(const VqcClassifier& model, std::string name) {
  ModelArtifact a;
  a.type = ModelType::kVqcClassifier;
  a.name = std::move(name);
  a.num_features = model.num_features();
  a.encoding = model.options().encoding;
  a.ansatz_layers = model.options().ansatz_layers;
  a.entanglement = model.options().entanglement;
  a.feature_scale = model.options().feature_scale;
  a.params = model.params();
  a.circuit_fingerprint = ArtifactCircuitFingerprint(a);
  return a;
}

ModelArtifact MakeVqrArtifact(const VqrRegressor& model, std::string name) {
  ModelArtifact a;
  a.type = ModelType::kVqrRegressor;
  a.name = std::move(name);
  a.num_features = model.num_features();
  a.ansatz_layers = model.options().ansatz_layers;
  a.feature_scale = model.options().feature_scale;
  a.params = model.params();
  a.circuit_fingerprint = ArtifactCircuitFingerprint(a);
  return a;
}

ModelArtifact MakeKernelSvmArtifact(const Svm& svm, const Dataset& train,
                                    KernelEncodingKind encoding,
                                    double kernel_scale, int kernel_reps,
                                    std::string name) {
  QDB_CHECK_EQ(svm.alphas().size(), train.size());
  ModelArtifact a;
  a.type = ModelType::kKernelSvm;
  a.name = std::move(name);
  a.num_features = train.num_features();
  a.kernel_encoding = encoding;
  a.kernel_scale = kernel_scale;
  a.kernel_reps = kernel_reps;
  a.bias = svm.bias();
  for (size_t i = 0; i < train.size(); ++i) {
    if (svm.alphas()[i] <= 0.0) continue;
    SupportVector sv;
    sv.coeff = svm.alphas()[i] * train.labels[i];
    sv.features = train.features[i];
    a.support_vectors.push_back(std::move(sv));
  }
  return a;
}

ModelArtifact MakeQuboConfigArtifact(
    std::vector<std::pair<std::string, std::string>> config,
    std::string name) {
  ModelArtifact a;
  a.type = ModelType::kQuboConfig;
  a.name = std::move(name);
  a.config = std::move(config);
  return a;
}

}  // namespace serve
}  // namespace qdb
