#include "anneal/quantum_annealing.h"

#include <cmath>
#include <limits>

#include "anneal/solver_metrics.h"
#include "common/rng.h"
#include "obs/trace.h"

namespace qdb {

Result<SolveResult> SimulatedQuantumAnnealing(const IsingModel& model,
                                              const SqaOptions& options) {
  if (options.num_replicas < 2) {
    return Status::InvalidArgument("SQA needs at least two Trotter replicas");
  }
  if (options.num_sweeps < 1 || options.num_restarts < 1) {
    return Status::InvalidArgument("sweeps and restarts must be >= 1");
  }
  if (options.gamma_initial <= options.gamma_final ||
      options.gamma_final <= 0.0) {
    return Status::InvalidArgument(
        "need gamma_initial > gamma_final > 0 for an annealing ramp");
  }
  if (options.beta <= 0.0) {
    return Status::InvalidArgument("beta must be positive");
  }

  const int n = model.num_spins();
  const int p = options.num_replicas;
  const double scale = options.scale_to_coefficients
                           ? std::max(model.MaxAbsCoefficient(), 1e-12)
                           : 1.0;
  const double beta = options.beta / scale;
  const double gamma0 = options.gamma_initial * scale;
  const double gamma1 = options.gamma_final * scale;

  QDB_TRACE_SCOPE("SimulatedQuantumAnnealing", "anneal");
  Rng rng(options.seed);
  SolveResult result;
  result.best_energy = std::numeric_limits<double>::infinity();

  for (int restart = 0; restart < options.num_restarts; ++restart) {
    // replicas[k][i]: spin i in Trotter slice k.
    std::vector<std::vector<int8_t>> replicas(p, std::vector<int8_t>(n));
    for (auto& slice : replicas) {
      for (auto& s : slice) s = rng.Bernoulli(0.5) ? 1 : -1;
    }
    std::vector<double> energies(p);
    for (int k = 0; k < p; ++k) energies[k] = model.Energy(replicas[k]);

    for (int sweep = 0; sweep < options.num_sweeps; ++sweep) {
      // Linear Γ ramp; J⊥ = ½ ln coth(βΓ/P) (dimensionless action form).
      const double t = options.num_sweeps > 1
                           ? static_cast<double>(sweep) / (options.num_sweeps - 1)
                           : 1.0;
      const double gamma = gamma0 + t * (gamma1 - gamma0);
      const double arg = beta * gamma / p;
      const double j_perp = 0.5 * std::log(1.0 / std::tanh(arg));

      // Local moves: flip spin i in slice k.
      for (int k = 0; k < p; ++k) {
        const int up = (k + 1) % p;
        const int down = (k + p - 1) % p;
        for (int i = 0; i < n; ++i) {
          const double de_classical = model.FlipDelta(replicas[k], i);
          const double neighbor_sum =
              replicas[up][i] + replicas[down][i];
          // Action change: (β/P)·ΔE_cl + 2·J⊥·s_i^k·(s_i^{k−1}+s_i^{k+1}).
          const double d_action = (beta / p) * de_classical +
                                  2.0 * j_perp * replicas[k][i] * neighbor_sum;
          if (d_action <= 0.0 || rng.Uniform() < std::exp(-d_action)) {
            replicas[k][i] = -replicas[k][i];
            energies[k] += de_classical;
            ++result.moves_accepted;
          } else {
            ++result.moves_rejected;
          }
        }
      }
      // Global moves: flip spin i across every slice (inter-slice coupling
      // is invariant, so only the classical action changes).
      if (options.global_moves) {
        for (int i = 0; i < n; ++i) {
          double d_classical_total = 0.0;
          for (int k = 0; k < p; ++k) {
            d_classical_total += model.FlipDelta(replicas[k], i);
          }
          const double d_action = (beta / p) * d_classical_total;
          if (d_action <= 0.0 || rng.Uniform() < std::exp(-d_action)) {
            for (int k = 0; k < p; ++k) {
              energies[k] += model.FlipDelta(replicas[k], i);
              replicas[k][i] = -replicas[k][i];
            }
            ++result.moves_accepted;
          } else {
            ++result.moves_rejected;
          }
        }
      }
      ++result.sweeps;
      for (int k = 0; k < p; ++k) {
        if (energies[k] < result.best_energy) {
          result.best_energy = energies[k];
          result.best_spins = replicas[k];
        }
      }
    }
  }
  RecordSolveMetrics("sqa", result);
  return result;
}

}  // namespace qdb
