#include "obs/trace.h"

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <thread>

#include "common/strings.h"

namespace qdb {
namespace obs {

namespace {

std::atomic<bool> g_tracing_enabled{false};

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

uint64_t CurrentThreadId() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

/// Id stream: one relaxed fetch_add per id, diffused through SplitMix64 so
/// ids are unique, non-zero, and well spread without any clock reads. The
/// sequence is deterministic in allocation order, which keeps seeded test
/// runs reproducible modulo thread interleaving.
std::atomic<uint64_t> g_id_sequence{1};

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t NextId() {
  uint64_t id =
      SplitMix64(g_id_sequence.fetch_add(1, std::memory_order_relaxed));
  return id != 0 ? id : 1;  // 0 is the "no context" sentinel.
}

/// The thread's ambient request context. Plain thread_local PODs: reading
/// and writing them costs a TLS access, paid only when tracing is enabled.
thread_local RequestContext t_ambient_context;

}  // namespace

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void EnableTracing() {
  TraceEpoch();  // Pin the epoch no later than the first enable.
  g_tracing_enabled.store(true, std::memory_order_relaxed);
}

void DisableTracing() {
  g_tracing_enabled.store(false, std::memory_order_relaxed);
}

void InitTracingFromEnv() {
  const char* value = std::getenv("QDB_TRACE");
  if (value != nullptr && value[0] != '\0' &&
      !(value[0] == '0' && value[1] == '\0')) {
    EnableTracing();
  }
}

int64_t TraceNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

RequestContext RequestContext::NewRoot() {
  RequestContext context;
  context.trace_id = NextId();
  context.span_id = NextId();
  return context;
}

uint64_t NewSpanId() { return NextId(); }

RequestContext CurrentContext() { return t_ambient_context; }

ContextGuard::ContextGuard(const RequestContext& context)
    : previous_(t_ambient_context) {
  t_ambient_context = context;
}

ContextGuard::~ContextGuard() { t_ambient_context = previous_; }

void RecordSpan(const char* name, const char* category, int64_t start_us,
                int64_t duration_us, uint64_t trace_id, uint64_t span_id,
                uint64_t parent_span_id, uint64_t link_trace_id) {
  if (!TracingEnabled()) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.thread_id = CurrentThreadId();
  event.start_us = start_us;
  event.duration_us = duration_us;
  event.trace_id = trace_id;
  event.span_id = span_id;
  event.parent_span_id = parent_span_id;
  event.link_trace_id = link_trace_id;
  TraceLog::Global().Record(event);
}

TraceSpan::TraceSpan(const char* name, const char* category)
    : name_(name), category_(category), active_(TracingEnabled()) {
  if (!active_) return;
  start_us_ = TraceNowMicros();
  const RequestContext ambient = t_ambient_context;
  trace_id_ = ambient.trace_id;
  parent_span_id_ = ambient.span_id;
  span_id_ = NextId();
  // Become the innermost ambient span so nested spans parent under us.
  // Installed even when trace_id_ == 0: unscoped spans still form a local
  // parent/child chain, and a ContextGuard deeper in the stack overrides.
  t_ambient_context = RequestContext{trace_id_, span_id_};
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  t_ambient_context = RequestContext{trace_id_, parent_span_id_};
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.thread_id = CurrentThreadId();
  event.start_us = start_us_;
  event.duration_us = TraceNowMicros() - start_us_;
  event.trace_id = trace_id_;
  event.span_id = span_id_;
  event.parent_span_id = parent_span_id_;
  TraceLog::Global().Record(event);
}

TraceLog::TraceLog() : capacity_(1 << 16) { ring_.resize(capacity_); }

TraceLog& TraceLog::Global() {
  static TraceLog* log = new TraceLog();
  return *log;
}

void TraceLog::Record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_[next_] = event;
  next_ = (next_ + 1) % capacity_;
  if (count_ < capacity_) {
    ++count_;
  } else {
    ++dropped_;
  }
}

std::vector<TraceEvent> TraceLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(count_);
  const size_t first = (next_ + capacity_ - count_) % capacity_;
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(first + i) % capacity_]);
  }
  return out;
}

size_t TraceLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

size_t TraceLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  next_ = 0;
  count_ = 0;
  dropped_ = 0;
}

void TraceLog::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity > 0 ? capacity : 1;
  ring_.assign(capacity_, TraceEvent{});
  next_ = 0;
  count_ = 0;
  dropped_ = 0;
}

std::string TraceLog::ChromeTraceJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  // Renumber thread-id hashes as small consecutive tids for readability.
  std::map<uint64_t, int> tids;
  for (const auto& e : events) {
    tids.emplace(e.thread_id, static_cast<int>(tids.size()) + 1);
  }
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events) {
    if (!first) out += ",";
    first = false;
    out += StrFormat(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%lld,"
        "\"dur\":%lld,\"pid\":1,\"tid\":%d",
        e.name, e.category, static_cast<long long>(e.start_us),
        static_cast<long long>(e.duration_us), tids.at(e.thread_id));
    if (e.trace_id != 0 || e.span_id != 0) {
      out += StrFormat(
          ",\"args\":{\"trace\":\"%016llx\",\"span\":\"%016llx\","
          "\"parent\":\"%016llx\"",
          static_cast<unsigned long long>(e.trace_id),
          static_cast<unsigned long long>(e.span_id),
          static_cast<unsigned long long>(e.parent_span_id));
      if (e.link_trace_id != 0) {
        out += StrFormat(",\"link\":\"%016llx\"",
                         static_cast<unsigned long long>(e.link_trace_id));
      }
      out += "}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status TraceLog::WriteChromeTrace(const std::string& path) const {
  const std::string json = ChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument(StrCat("cannot open ", path, " for write"));
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::Internal(StrCat("short write to ", path));
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace qdb
