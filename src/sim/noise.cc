#include "sim/noise.h"

#include <cmath>

#include "common/strings.h"
#include "ops/pauli.h"

namespace qdb {

Result<KrausChannel> KrausChannel::Create(std::vector<Matrix> kraus_ops,
                                          double tol) {
  if (kraus_ops.empty()) {
    return Status::InvalidArgument("Kraus channel needs at least one operator");
  }
  const size_t dim = kraus_ops.front().rows();
  if (dim == 0 || (dim & (dim - 1)) != 0) {
    return Status::InvalidArgument("Kraus operator dimension must be 2^k");
  }
  Matrix completeness(dim, dim);
  for (const auto& k : kraus_ops) {
    if (k.rows() != dim || k.cols() != dim) {
      return Status::InvalidArgument("Kraus operators must share a square shape");
    }
    completeness += k.Adjoint() * k;
  }
  if (!completeness.ApproxEqual(Matrix::Identity(dim), tol)) {
    return Status::InvalidArgument(
        "Kraus operators do not satisfy the completeness relation");
  }
  int num_qubits = 0;
  while ((size_t{1} << num_qubits) < dim) ++num_qubits;
  return KrausChannel(std::move(kraus_ops), num_qubits);
}

namespace {

Status ValidateProbability(double p, const char* name) {
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument(
        StrCat(name, " must be in [0, 1], got ", p));
  }
  return Status::OK();
}

}  // namespace

Result<KrausChannel> DepolarizingChannel(double p) {
  QDB_RETURN_IF_ERROR(ValidateProbability(p, "depolarizing probability"));
  const double k0 = std::sqrt(1.0 - 3.0 * p / 4.0);
  const double kp = std::sqrt(p / 4.0);
  std::vector<Matrix> ops;
  ops.push_back(Matrix::Identity(2) * Complex(k0, 0.0));
  ops.push_back(PauliMatrix(PauliOp::kX) * Complex(kp, 0.0));
  ops.push_back(PauliMatrix(PauliOp::kY) * Complex(kp, 0.0));
  ops.push_back(PauliMatrix(PauliOp::kZ) * Complex(kp, 0.0));
  return KrausChannel::Create(std::move(ops));
}

Result<KrausChannel> AmplitudeDampingChannel(double gamma) {
  QDB_RETURN_IF_ERROR(ValidateProbability(gamma, "damping gamma"));
  Matrix k0(2, 2);
  k0(0, 0) = Complex(1.0, 0.0);
  k0(1, 1) = Complex(std::sqrt(1.0 - gamma), 0.0);
  Matrix k1(2, 2);
  k1(0, 1) = Complex(std::sqrt(gamma), 0.0);
  return KrausChannel::Create({k0, k1});
}

Result<KrausChannel> PhaseDampingChannel(double lambda) {
  QDB_RETURN_IF_ERROR(ValidateProbability(lambda, "damping lambda"));
  Matrix k0(2, 2);
  k0(0, 0) = Complex(1.0, 0.0);
  k0(1, 1) = Complex(std::sqrt(1.0 - lambda), 0.0);
  Matrix k1(2, 2);
  k1(1, 1) = Complex(std::sqrt(lambda), 0.0);
  return KrausChannel::Create({k0, k1});
}

Result<KrausChannel> BitFlipChannel(double p) {
  QDB_RETURN_IF_ERROR(ValidateProbability(p, "bit-flip probability"));
  std::vector<Matrix> ops;
  ops.push_back(Matrix::Identity(2) * Complex(std::sqrt(1.0 - p), 0.0));
  ops.push_back(PauliMatrix(PauliOp::kX) * Complex(std::sqrt(p), 0.0));
  return KrausChannel::Create(std::move(ops));
}

Result<KrausChannel> PhaseFlipChannel(double p) {
  QDB_RETURN_IF_ERROR(ValidateProbability(p, "phase-flip probability"));
  std::vector<Matrix> ops;
  ops.push_back(Matrix::Identity(2) * Complex(std::sqrt(1.0 - p), 0.0));
  ops.push_back(PauliMatrix(PauliOp::kZ) * Complex(std::sqrt(p), 0.0));
  return KrausChannel::Create(std::move(ops));
}

Result<NoiseModel> NoiseModel::Depolarizing(double p1, double p2, double r) {
  QDB_RETURN_IF_ERROR(ValidateProbability(r, "readout flip probability"));
  NoiseModel model;
  if (p1 > 0.0) {
    QDB_ASSIGN_OR_RETURN(KrausChannel c1, DepolarizingChannel(p1));
    model.after_1q.push_back(std::move(c1));
  }
  if (p2 > 0.0) {
    QDB_ASSIGN_OR_RETURN(KrausChannel c2, DepolarizingChannel(p2));
    model.after_2q.push_back(std::move(c2));
  }
  model.readout_flip_probability = r;
  return model;
}

}  // namespace qdb
