/// \file quantum_kernel.h
/// \brief Fidelity quantum kernel k(x, y) = |⟨φ(x)|φ(y)⟩|² for an arbitrary
/// encoding circuit — feeds precomputed-kernel SVMs (the quantum-kernel
/// method of the tutorial's techniques section).

#ifndef QDB_KERNEL_QUANTUM_KERNEL_H_
#define QDB_KERNEL_QUANTUM_KERNEL_H_

#include <functional>
#include <vector>

#include "circuit/circuit.h"
#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/types.h"
#include "sim/statevector_simulator.h"

namespace qdb {

/// \brief Computes fidelity-kernel entries by simulating the encoding
/// circuit once per data point and overlapping the resulting states (the
/// exact-simulation analogue of the swap/inversion test on hardware).
class FidelityQuantumKernel {
 public:
  /// Maps a feature vector to its encoding circuit; all circuits produced
  /// must share one width.
  using EncodingFn = std::function<Circuit(const DVector&)>;

  explicit FidelityQuantumKernel(EncodingFn encoder);

  /// Execution-mode override for the underlying simulator. Encoding
  /// circuits bake data into constant angles, so Gram/Cross fills win from
  /// fusion; kInterpreted opts a workload out of compilation entirely.
  void set_execution_mode(ExecutionMode mode) {
    simulator_.set_execution_mode(mode);
  }

  /// |φ(x)⟩ as an amplitude vector.
  Result<CVector> EncodedState(const DVector& x) const;

  /// k(x, y) = |⟨φ(x)|φ(y)⟩|² ∈ [0, 1].
  Result<double> Evaluate(const DVector& x, const DVector& y) const;

  /// Symmetric Gram matrix K_ij = k(x_i, x_j); unit diagonal by
  /// construction. Each point is encoded exactly once; encoding circuits
  /// run as one StateVectorSimulator::RunBatch and the O(m²) fidelity fill
  /// fans out row-wise across the shared ThreadPool.
  Result<Matrix> GramMatrix(const std::vector<DVector>& xs) const;

  /// Rectangular kernel K_ij = k(test_i, train_j) for prediction; batched
  /// and parallelized like GramMatrix.
  Result<Matrix> CrossMatrix(const std::vector<DVector>& test,
                             const std::vector<DVector>& train) const;

  /// Encodes every point in one parallel batch; all states share one width.
  /// Public so long-lived consumers (the serving layer's kernel models) can
  /// encode a fixed reference set once and reuse it across requests.
  Result<std::vector<CVector>> EncodedStates(
      const std::vector<DVector>& xs) const;

  /// CrossMatrix against pre-encoded reference states: encodes only `test`
  /// and fills K_ij = |⟨φ(test_i)|ref_j⟩|². This is the serving hot path —
  /// a request batch of B points costs B encoding circuits instead of
  /// B + |ref| as the plain CrossMatrix does.
  Result<Matrix> CrossFromEncoded(const std::vector<DVector>& test,
                                  const std::vector<CVector>& ref_states) const;

 private:
  EncodingFn encoder_;
  StateVectorSimulator simulator_;
};

/// Convenience factories for the standard encodings of E3/E13.
FidelityQuantumKernel MakeAngleKernel(double scale = 1.0);
FidelityQuantumKernel MakeZZFeatureMapKernel(int reps = 2);
FidelityQuantumKernel MakeAmplitudeKernel();

}  // namespace qdb

#endif  // QDB_KERNEL_QUANTUM_KERNEL_H_
