// Tests for join query graphs and topology generators.

#include <gtest/gtest.h>

#include "db/query_graph.h"

namespace qdb {
namespace {

TEST(QueryGraphTest, CreateValidation) {
  EXPECT_FALSE(JoinQueryGraph::Create({100.0}).ok());
  EXPECT_FALSE(JoinQueryGraph::Create({100.0, -1.0}).ok());
  EXPECT_TRUE(JoinQueryGraph::Create({100.0, 200.0}).ok());
}

TEST(QueryGraphTest, AddJoinValidation) {
  auto g = JoinQueryGraph::Create({10, 20, 30}).value();
  EXPECT_TRUE(g.AddJoin(0, 1, 0.1).ok());
  EXPECT_EQ(g.AddJoin(0, 1, 0.2).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(g.AddJoin(1, 0, 0.2).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(g.AddJoin(1, 1, 0.2).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.AddJoin(0, 5, 0.2).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.AddJoin(0, 2, 0.0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.AddJoin(0, 2, 1.1).code(), StatusCode::kInvalidArgument);
}

TEST(QueryGraphTest, SelectivityLookup) {
  auto g = JoinQueryGraph::Create({10, 20, 30}).value();
  ASSERT_TRUE(g.AddJoin(0, 2, 0.05).ok());
  EXPECT_EQ(g.Selectivity(0, 2), 0.05);
  EXPECT_EQ(g.Selectivity(2, 0), 0.05);
  EXPECT_EQ(g.Selectivity(0, 1), 1.0);  // No predicate: cross product.
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_FALSE(g.HasEdge(0, 1));
}

TEST(QueryGraphTest, Connectivity) {
  auto g = JoinQueryGraph::Create({10, 20, 30}).value();
  EXPECT_FALSE(g.IsConnected());
  ASSERT_TRUE(g.AddJoin(0, 1, 0.1).ok());
  EXPECT_FALSE(g.IsConnected());
  ASSERT_TRUE(g.AddJoin(1, 2, 0.1).ok());
  EXPECT_TRUE(g.IsConnected());
}

TEST(QueryGraphTest, Neighbors) {
  auto g = JoinQueryGraph::Create({10, 20, 30, 40}).value();
  ASSERT_TRUE(g.AddJoin(1, 0, 0.1).ok());
  ASSERT_TRUE(g.AddJoin(1, 2, 0.1).ok());
  auto n = g.NeighborsOf(1);
  EXPECT_EQ(n.size(), 2u);
  EXPECT_TRUE(g.NeighborsOf(3).empty());
}

class ShapeGeneratorTest : public ::testing::TestWithParam<QueryShape> {};

TEST_P(ShapeGeneratorTest, GeneratesConnectedGraphWithExpectedEdges) {
  Rng rng(21);
  const int n = 7;
  auto g = RandomQuery(GetParam(), n, rng);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_TRUE(g.value().IsConnected());
  size_t expected_edges = 0;
  switch (GetParam()) {
    case QueryShape::kChain: expected_edges = n - 1; break;
    case QueryShape::kStar: expected_edges = n - 1; break;
    case QueryShape::kCycle: expected_edges = n; break;
    case QueryShape::kClique: expected_edges = n * (n - 1) / 2; break;
  }
  EXPECT_EQ(g.value().edges().size(), expected_edges);
  for (int r = 0; r < n; ++r) {
    EXPECT_GE(g.value().cardinality(r), 100.0);
    EXPECT_LE(g.value().cardinality(r), 100000.0);
  }
  for (const auto& e : g.value().edges()) {
    EXPECT_GT(e.selectivity, 0.0);
    EXPECT_LE(e.selectivity, 0.5);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapeGeneratorTest,
                         ::testing::Values(QueryShape::kChain,
                                           QueryShape::kStar,
                                           QueryShape::kCycle,
                                           QueryShape::kClique));

TEST(ShapeGeneratorTest, StarCenterIsRelationZero) {
  Rng rng(23);
  auto g = RandomQuery(QueryShape::kStar, 6, rng);
  ASSERT_TRUE(g.ok());
  for (const auto& e : g.value().edges()) {
    EXPECT_EQ(e.a, 0);  // Canonical edge order puts the center first.
  }
}

TEST(ShapeGeneratorTest, Validation) {
  Rng rng(1);
  EXPECT_FALSE(RandomQuery(QueryShape::kChain, 1, rng).ok());
  EXPECT_FALSE(RandomQuery(QueryShape::kCycle, 2, rng).ok());
  EXPECT_FALSE(RandomQuery(QueryShape::kChain, 4, rng, 0.5, 0.1).ok());
  EXPECT_FALSE(RandomQuery(QueryShape::kChain, 4, rng, 0.0, 0.1).ok());
}

TEST(ShapeGeneratorTest, ShapeNames) {
  EXPECT_STREQ(QueryShapeName(QueryShape::kChain), "chain");
  EXPECT_STREQ(QueryShapeName(QueryShape::kClique), "clique");
}

}  // namespace
}  // namespace qdb
