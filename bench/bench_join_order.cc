// E7 — QUBO join ordering on a (simulated) quantum annealer.
//
// Regenerates the join-ordering comparison the tutorial points the SIGMOD
// audience at (Schönberger/Trummer line of work): C_out cost ratio to the
// optimal left-deep DP plan for (a) the SA-annealed QUBO, (b) the
// SQA-annealed QUBO (quantum-annealer stand-in), and (c) greedy GOO-style
// ordering — across chain/star/cycle/clique query graphs of 4–12
// relations. Expected shape: DP is optimal by construction; the annealed
// QUBO tracks it closely on small instances and degrades gracefully as n²
// variables grow; greedy is fast but can be orders of magnitude off on
// adversarial stars/cliques.

#include <benchmark/benchmark.h>

#include "anneal/quantum_annealing.h"
#include "anneal/simulated_annealing.h"
#include "db/join_order_dp.h"
#include "db/join_order_greedy.h"
#include "db/join_order_qubo.h"

namespace qdb {
namespace {

struct Instance {
  JoinQueryGraph graph;
  double optimal_cost;
};

Instance MakeInstance(QueryShape shape, int n, uint64_t seed) {
  Rng rng(seed);
  JoinQueryGraph graph = RandomQuery(shape, n, rng).ValueOrDie();
  double optimal = OptimalLeftDeepPlan(graph).ValueOrDie().cost;
  return {std::move(graph), optimal};
}

void BM_JoinOrderSaQubo(benchmark::State& state) {
  const QueryShape shape = static_cast<QueryShape>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Instance inst = MakeInstance(shape, n, 100 + n);
  auto enc = JoinOrderQubo::Create(inst.graph).ValueOrDie();

  double raw_ratio = 0.0, polished_ratio = 0.0;
  for (auto _ : state) {
    SaOptions opts;
    opts.num_sweeps = 1500;
    opts.num_restarts = 4;
    // Penalty terms dominate the coefficient range of this QUBO; a colder
    // final temperature is needed to resolve the objective terms under the
    // max-coefficient schedule normalization.
    opts.beta_final = 50.0;
    opts.seed = 7;
    auto solved = SimulatedAnnealing(enc.qubo().ToIsing(), opts);
    if (!solved.ok()) {
      state.SkipWithError(solved.status().ToString().c_str());
      return;
    }
    std::vector<int> order =
        enc.Decode(SpinsToBits(solved.value().best_spins));
    raw_ratio = CostOfLeftDeepOrder(inst.graph, order).ValueOrDie() /
                inst.optimal_cost;
    std::vector<int> polished =
        ImproveOrderBySwaps(inst.graph, order).ValueOrDie();
    polished_ratio = CostOfLeftDeepOrder(inst.graph, polished).ValueOrDie() /
                     inst.optimal_cost;
  }
  state.SetLabel(QueryShapeName(shape));
  state.counters["relations"] = n;
  state.counters["qubo_vars"] = n * n;
  state.counters["cost_ratio_vs_dp"] = raw_ratio;
  state.counters["polished_ratio"] = polished_ratio;
}

void BM_JoinOrderSqaQubo(benchmark::State& state) {
  const QueryShape shape = static_cast<QueryShape>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Instance inst = MakeInstance(shape, n, 100 + n);
  auto enc = JoinOrderQubo::Create(inst.graph).ValueOrDie();

  double raw_ratio = 0.0, polished_ratio = 0.0;
  for (auto _ : state) {
    SqaOptions opts;
    opts.num_sweeps = 600;
    opts.num_replicas = 16;
    opts.num_restarts = 2;
    opts.seed = 7;
    auto solved = SimulatedQuantumAnnealing(enc.qubo().ToIsing(), opts);
    if (!solved.ok()) {
      state.SkipWithError(solved.status().ToString().c_str());
      return;
    }
    std::vector<int> order =
        enc.Decode(SpinsToBits(solved.value().best_spins));
    raw_ratio = CostOfLeftDeepOrder(inst.graph, order).ValueOrDie() /
                inst.optimal_cost;
    std::vector<int> polished =
        ImproveOrderBySwaps(inst.graph, order).ValueOrDie();
    polished_ratio = CostOfLeftDeepOrder(inst.graph, polished).ValueOrDie() /
                     inst.optimal_cost;
  }
  state.SetLabel(QueryShapeName(shape));
  state.counters["relations"] = n;
  state.counters["cost_ratio_vs_dp"] = raw_ratio;
  state.counters["polished_ratio"] = polished_ratio;
}

void BM_JoinOrderGreedy(benchmark::State& state) {
  const QueryShape shape = static_cast<QueryShape>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Instance inst = MakeInstance(shape, n, 100 + n);
  double ratio = 0.0;
  for (auto _ : state) {
    auto greedy = GreedyLeftDeepPlan(inst.graph);
    if (!greedy.ok()) {
      state.SkipWithError(greedy.status().ToString().c_str());
      return;
    }
    ratio = greedy.value().cost / inst.optimal_cost;
  }
  state.SetLabel(QueryShapeName(shape));
  state.counters["relations"] = n;
  state.counters["cost_ratio_vs_dp"] = ratio;
}

void BM_JoinOrderDp(benchmark::State& state) {
  // The exact baseline's own cost: exponential DP time vs n.
  const QueryShape shape = static_cast<QueryShape>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Instance inst = MakeInstance(shape, n, 100 + n);
  for (auto _ : state) {
    auto dp = OptimalLeftDeepPlan(inst.graph);
    benchmark::DoNotOptimize(dp);
  }
  state.SetLabel(QueryShapeName(shape));
  state.counters["relations"] = n;
}

const std::vector<int64_t> kShapes = {
    static_cast<int64_t>(QueryShape::kChain),
    static_cast<int64_t>(QueryShape::kStar),
    static_cast<int64_t>(QueryShape::kCycle),
    static_cast<int64_t>(QueryShape::kClique)};
const std::vector<int64_t> kSizes = {4, 6, 8, 10, 12};

BENCHMARK(BM_JoinOrderSaQubo)
    ->ArgsProduct({kShapes, kSizes})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JoinOrderSqaQubo)
    ->ArgsProduct({kShapes, kSizes})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JoinOrderGreedy)
    ->ArgsProduct({kShapes, kSizes})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JoinOrderDp)
    ->ArgsProduct({kShapes, {8, 12, 16}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qdb

BENCHMARK_MAIN();
