/// \file join_order_greedy.h
/// \brief Greedy join-ordering heuristics: GOO (greedy operator ordering,
/// bushy) and min-cardinality left-deep — the cheap classical baselines.

#ifndef QDB_DB_JOIN_ORDER_GREEDY_H_
#define QDB_DB_JOIN_ORDER_GREEDY_H_

#include <vector>

#include "common/result.h"
#include "db/query_graph.h"

namespace qdb {

/// \brief Greedy left-deep order: start from the smallest relation, then
/// repeatedly append the relation minimizing the next intermediate
/// cardinality. Returns the order and its C_out.
struct GreedyPlanResult {
  double cost = 0.0;
  std::vector<int> order;
};

Result<GreedyPlanResult> GreedyLeftDeepPlan(const JoinQueryGraph& graph);

/// \brief GOO (Fegaras): repeatedly merge the pair of partial results whose
/// join has the smallest cardinality; returns the bushy plan's C_out.
Result<double> GreedyOperatorOrderingCost(const JoinQueryGraph& graph);

/// \brief Polishes a left-deep order by best-improvement pairwise swaps in
/// true C_out space until a local optimum — the standard post-processing
/// after annealing a surrogate QUBO objective. `order` must be a valid
/// permutation.
Result<std::vector<int>> ImproveOrderBySwaps(const JoinQueryGraph& graph,
                                             std::vector<int> order);

}  // namespace qdb

#endif  // QDB_DB_JOIN_ORDER_GREEDY_H_
