file(REMOVE_RECURSE
  "CMakeFiles/join_order_quantum.dir/join_order_quantum.cpp.o"
  "CMakeFiles/join_order_quantum.dir/join_order_quantum.cpp.o.d"
  "join_order_quantum"
  "join_order_quantum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_order_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
