# Empty compiler generated dependencies file for bench_annealers.
# This may be replaced when dependencies are built.
