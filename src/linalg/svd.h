/// \file svd.h
/// \brief Singular value decomposition (via the Hermitian eigensolver on
/// A†A) — the workhorse of the MPS simulator's bond truncation.

#ifndef QDB_LINALG_SVD_H_
#define QDB_LINALG_SVD_H_

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/types.h"

namespace qdb {

/// \brief A = U · diag(σ) · V†, with σ descending and U, V having
/// orthonormal columns (thin decomposition: rank columns only).
struct SvdResult {
  Matrix u;                 ///< m × r.
  DVector singular_values;  ///< r values, descending, > tol.
  Matrix v;                 ///< n × r (so A ≈ U Σ V†).

  size_t rank() const { return singular_values.size(); }

  /// Reconstructs U Σ V† (for tests and error measurement).
  Matrix Reconstruct() const;
};

/// \brief Thin SVD of an arbitrary complex matrix. Singular values below
/// `tol` (relative to the largest) are dropped.
Result<SvdResult> Svd(const Matrix& a, double tol = 1e-12);

/// \brief Thin SVD truncated to at most `max_rank` singular values;
/// `discarded_weight`, when non-null, receives Σ of the squared dropped
/// singular values (the truncation error measure used by MPS).
Result<SvdResult> TruncatedSvd(const Matrix& a, size_t max_rank,
                               double* discarded_weight = nullptr,
                               double tol = 1e-12);

}  // namespace qdb

#endif  // QDB_LINALG_SVD_H_
