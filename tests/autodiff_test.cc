// Tests for expectation functions and parameter-shift gradients.

#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/parameter_shift.h"
#include "common/rng.h"
#include "variational/ansatz.h"

namespace qdb {
namespace {

PauliSum ZObservable(int n, int qubit = 0) {
  PauliSum obs(n);
  obs.Add(1.0, PauliString::Single(n, qubit, PauliOp::kZ));
  return obs;
}

TEST(ExpectationFunctionTest, SingleRotationCosineLaw) {
  Circuit c(1);
  c.RX(0, ParamExpr::Variable(0));
  ExpectationFunction f(c, ZObservable(1));
  for (double theta : {0.0, 0.5, 1.7, M_PI}) {
    auto e = f.Evaluate({theta});
    ASSERT_TRUE(e.ok());
    EXPECT_NEAR(e.value(), std::cos(theta), 1e-12);
  }
}

TEST(ExpectationFunctionTest, CountsEvaluations) {
  Circuit c(1);
  c.RY(0, ParamExpr::Variable(0));
  ExpectationFunction f(c, ZObservable(1));
  EXPECT_EQ(f.evaluation_count(), 0);
  (void)f.Evaluate({0.1});
  (void)f.Evaluate({0.2});
  EXPECT_EQ(f.evaluation_count(), 2);
  f.reset_evaluation_count();
  EXPECT_EQ(f.evaluation_count(), 0);
}

TEST(ExpectationFunctionTest, InitialStateOverride) {
  Circuit c(1);  // Empty circuit.
  ExpectationFunction f(c, ZObservable(1));
  StateVector one = StateVector::BasisState(1, 1);
  f.set_initial_state(one);
  auto e = f.Evaluate({});
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e.value(), -1.0, 1e-12);
}

TEST(ExpectationFunctionTest, ShiftErrorsOutOfRange) {
  Circuit c(1);
  c.RX(0, ParamExpr::Variable(0));
  ExpectationFunction f(c, ZObservable(1));
  EXPECT_FALSE(f.EvaluateWithShift({0.1}, 5, 0, 0.1).ok());
  EXPECT_FALSE(f.EvaluateWithShift({0.1}, 0, 3, 0.1).ok());
}

TEST(ParameterShiftTest, AnalyticGradientOfRx) {
  Circuit c(1);
  c.RX(0, ParamExpr::Variable(0));
  ExpectationFunction f(c, ZObservable(1));
  for (double theta : {0.0, 0.4, 1.3, 2.9}) {
    auto grad = ParameterShiftGradient(f, {theta});
    ASSERT_TRUE(grad.ok());
    EXPECT_NEAR(grad.value()[0], -std::sin(theta), 1e-12);
  }
}

TEST(ParameterShiftTest, ChainRuleThroughMultiplier) {
  // E = cos(2θ) ⇒ dE/dθ = −2 sin(2θ).
  Circuit c(1);
  c.RX(0, ParamExpr::Affine(0, 2.0, 0.0));
  ExpectationFunction f(c, ZObservable(1));
  const double theta = 0.6;
  auto grad = ParameterShiftGradient(f, {theta});
  ASSERT_TRUE(grad.ok());
  EXPECT_NEAR(grad.value()[0], -2.0 * std::sin(2.0 * theta), 1e-12);
}

TEST(ParameterShiftTest, SharedParameterAccumulates) {
  // Two RX(θ) on the same qubit: E = cos(2θ).
  Circuit c(1);
  c.RX(0, ParamExpr::Variable(0)).RX(0, ParamExpr::Variable(0));
  ExpectationFunction f(c, ZObservable(1));
  const double theta = 0.8;
  auto grad = ParameterShiftGradient(f, {theta});
  ASSERT_TRUE(grad.ok());
  EXPECT_NEAR(grad.value()[0], -2.0 * std::sin(2.0 * theta), 1e-12);
}

class GradientAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GradientAgreementTest, MatchesFiniteDifferenceOnRandomAnsatz) {
  // Property: parameter-shift equals central finite differences on
  // EfficientSU2 ansatz circuits with random parameters.
  Rng rng(GetParam());
  Circuit ansatz = EfficientSU2Ansatz(3, 2, Entanglement::kLinear);
  PauliSum obs(3);
  obs.Add(0.8, "ZII").Add(-0.5, "IXY").Add(0.3, "ZZZ");
  ExpectationFunction f(ansatz, obs);
  DVector params = rng.UniformVector(ansatz.num_parameters(), -M_PI, M_PI);

  auto analytic = ParameterShiftGradient(f, params);
  auto numeric = FiniteDifferenceGradient(f, params, 1e-6);
  ASSERT_TRUE(analytic.ok());
  ASSERT_TRUE(numeric.ok());
  for (size_t k = 0; k < params.size(); ++k) {
    EXPECT_NEAR(analytic.value()[k], numeric.value()[k], 1e-6) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GradientAgreementTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(ParameterShiftTest, ControlledRotationFourTermRule) {
  // CRY gradient (generator eigenvalues {0, ±1/2}) vs finite differences.
  Circuit c(2);
  c.H(0).CRY(0, 1, ParamExpr::Variable(0)).CRX(0, 1, ParamExpr::Variable(1));
  PauliSum obs(2);
  obs.Add(1.0, "IZ").Add(0.5, "ZZ");
  ExpectationFunction f(c, obs);
  const DVector params = {0.9, -0.4};
  auto analytic = ParameterShiftGradient(f, params);
  auto numeric = FiniteDifferenceGradient(f, params, 1e-6);
  ASSERT_TRUE(analytic.ok()) << analytic.status();
  ASSERT_TRUE(numeric.ok());
  EXPECT_NEAR(analytic.value()[0], numeric.value()[0], 1e-6);
  EXPECT_NEAR(analytic.value()[1], numeric.value()[1], 1e-6);
}

TEST(ParameterShiftTest, PhaseAndCPhaseGates) {
  Circuit c(2);
  c.H(0).H(1).P(0, ParamExpr::Variable(0)).CP(0, 1, ParamExpr::Variable(1));
  PauliSum obs(2);
  obs.Add(1.0, "XI").Add(0.7, "XX");
  ExpectationFunction f(c, obs);
  const DVector params = {1.2, 0.5};
  auto analytic = ParameterShiftGradient(f, params);
  auto numeric = FiniteDifferenceGradient(f, params, 1e-6);
  ASSERT_TRUE(analytic.ok()) << analytic.status();
  ASSERT_TRUE(numeric.ok());
  EXPECT_NEAR(analytic.value()[0], numeric.value()[0], 1e-6);
  EXPECT_NEAR(analytic.value()[1], numeric.value()[1], 1e-6);
}

TEST(ParameterShiftTest, TwoQubitRotations) {
  Circuit c(2);
  c.H(0).RXX(0, 1, ParamExpr::Variable(0)).RYY(0, 1, ParamExpr::Variable(1))
      .RZZ(0, 1, ParamExpr::Variable(2));
  PauliSum obs(2);
  obs.Add(1.0, "ZI").Add(-0.6, "XY");
  ExpectationFunction f(c, obs);
  const DVector params = {0.3, 1.1, -0.8};
  auto analytic = ParameterShiftGradient(f, params);
  auto numeric = FiniteDifferenceGradient(f, params, 1e-6);
  ASSERT_TRUE(analytic.ok());
  ASSERT_TRUE(numeric.ok());
  for (int k = 0; k < 3; ++k) {
    EXPECT_NEAR(analytic.value()[k], numeric.value()[k], 1e-6);
  }
}

TEST(ParameterShiftTest, SymbolicUGateUnimplemented) {
  Circuit c(1);
  c.U(0, ParamExpr::Variable(0), ParamExpr::Constant(0.0),
      ParamExpr::Constant(0.0));
  ExpectationFunction f(c, ZObservable(1));
  auto grad = ParameterShiftGradient(f, {0.5});
  ASSERT_FALSE(grad.ok());
  EXPECT_EQ(grad.status().code(), StatusCode::kUnimplemented);
  // The finite-difference fallback still works.
  EXPECT_TRUE(FiniteDifferenceGradient(f, {0.5}).ok());
}

TEST(ParameterShiftTest, ConstantGatesContributeNothing) {
  Circuit c(1);
  c.RX(0, 0.3).RY(0, ParamExpr::Variable(0));
  ExpectationFunction f(c, ZObservable(1));
  auto grad = ParameterShiftGradient(f, {0.0});
  ASSERT_TRUE(grad.ok());
  EXPECT_EQ(grad.value().size(), 1u);
}

TEST(FiniteDifferenceTest, RejectsBadEpsilon) {
  Circuit c(1);
  c.RX(0, ParamExpr::Variable(0));
  ExpectationFunction f(c, ZObservable(1));
  EXPECT_FALSE(FiniteDifferenceGradient(f, {0.1}, 0.0).ok());
  EXPECT_FALSE(FiniteDifferenceGradient(f, {0.1}, -1e-3).ok());
}

TEST(ParameterShiftTest, EvaluationBudgetIsTwoPerParameterOccurrence) {
  Circuit c = RealAmplitudesAnsatz(2, 1);  // 4 parameters, one gate each.
  ExpectationFunction f(c, ZObservable(2));
  DVector params(c.num_parameters(), 0.1);
  f.reset_evaluation_count();
  ASSERT_TRUE(ParameterShiftGradient(f, params).ok());
  EXPECT_EQ(f.evaluation_count(), 2 * c.num_parameters());
}

}  // namespace
}  // namespace qdb
