// E10 — Index selection under a storage budget via QUBO.
//
// Regenerates the index-advisor comparison: benefit ratio to the
// exhaustive optimum for the annealed QUBO vs benefit/size greedy, across
// candidate-set sizes and interaction densities. Expected shape: with no
// interactions greedy is near-optimal (plain knapsack); once redundancy
// interactions appear, greedy over-commits to overlapping indexes and the
// annealed QUBO pulls ahead.

#include <benchmark/benchmark.h>

#include "anneal/quantum_annealing.h"
#include "anneal/simulated_annealing.h"
#include "db/index_selection.h"

namespace qdb {
namespace {

struct Instance {
  IndexSelectionInstance inst;
  double optimal;
};

Instance MakeInstance(int candidates, double interaction, uint64_t seed) {
  Rng rng(seed);
  IndexSelectionInstance inst =
      RandomIndexInstance(candidates, 0.4, interaction, rng);
  double optimal = ExhaustiveIndexBenefit(inst).ValueOrDie();
  return {std::move(inst), optimal};
}

void BM_IndexSelectionSa(benchmark::State& state) {
  const int candidates = static_cast<int>(state.range(0));
  const double interaction = static_cast<double>(state.range(1)) / 100.0;
  Instance inst = MakeInstance(candidates, interaction, 400 + candidates);
  auto qubo = IndexSelectionQubo::Create(inst.inst).ValueOrDie();

  double ratio = 0.0, feasible = 0.0;
  for (auto _ : state) {
    SaOptions opts;
    opts.num_sweeps = 2500;
    opts.num_restarts = 4;
    auto solved = SimulatedAnnealing(qubo.qubo().ToIsing(), opts);
    if (!solved.ok()) {
      state.SkipWithError(solved.status().ToString().c_str());
      return;
    }
    std::vector<uint8_t> selection =
        qubo.Decode(SpinsToBits(solved.value().best_spins));
    feasible = inst.inst.Feasible(selection) ? 1.0 : 0.0;
    ratio = inst.optimal > 0 ? inst.inst.BenefitOf(selection) / inst.optimal
                             : 1.0;
  }
  state.SetLabel("sa-qubo");
  state.counters["candidates"] = candidates;
  state.counters["interaction_pct"] = interaction * 100;
  state.counters["benefit_ratio"] = ratio;
  state.counters["feasible"] = feasible;
}

void BM_IndexSelectionSqa(benchmark::State& state) {
  const int candidates = static_cast<int>(state.range(0));
  const double interaction = static_cast<double>(state.range(1)) / 100.0;
  Instance inst = MakeInstance(candidates, interaction, 400 + candidates);
  auto qubo = IndexSelectionQubo::Create(inst.inst).ValueOrDie();

  double ratio = 0.0;
  for (auto _ : state) {
    SqaOptions opts;
    opts.num_sweeps = 900;
    opts.num_replicas = 16;
    opts.num_restarts = 2;
    auto solved = SimulatedQuantumAnnealing(qubo.qubo().ToIsing(), opts);
    if (!solved.ok()) {
      state.SkipWithError(solved.status().ToString().c_str());
      return;
    }
    std::vector<uint8_t> selection =
        qubo.Decode(SpinsToBits(solved.value().best_spins));
    ratio = inst.optimal > 0 ? inst.inst.BenefitOf(selection) / inst.optimal
                             : 1.0;
  }
  state.SetLabel("sqa-qubo");
  state.counters["candidates"] = candidates;
  state.counters["interaction_pct"] = interaction * 100;
  state.counters["benefit_ratio"] = ratio;
}

void BM_IndexSelectionGreedy(benchmark::State& state) {
  const int candidates = static_cast<int>(state.range(0));
  const double interaction = static_cast<double>(state.range(1)) / 100.0;
  Instance inst = MakeInstance(candidates, interaction, 400 + candidates);
  double ratio = 0.0;
  for (auto _ : state) {
    std::vector<uint8_t> selection = GreedyIndexSelection(inst.inst);
    ratio = inst.optimal > 0 ? inst.inst.BenefitOf(selection) / inst.optimal
                             : 1.0;
  }
  state.SetLabel("greedy-ratio");
  state.counters["candidates"] = candidates;
  state.counters["interaction_pct"] = interaction * 100;
  state.counters["benefit_ratio"] = ratio;
}

const std::vector<std::vector<int64_t>> kGrid = {{6, 10, 14, 18},
                                                 {0, 20, 40}};

BENCHMARK(BM_IndexSelectionSa)
    ->ArgsProduct(kGrid)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IndexSelectionSqa)
    ->ArgsProduct(kGrid)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IndexSelectionGreedy)
    ->ArgsProduct(kGrid)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qdb

BENCHMARK_MAIN();
