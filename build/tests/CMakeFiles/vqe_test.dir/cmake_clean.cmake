file(REMOVE_RECURSE
  "CMakeFiles/vqe_test.dir/vqe_test.cc.o"
  "CMakeFiles/vqe_test.dir/vqe_test.cc.o.d"
  "vqe_test"
  "vqe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
