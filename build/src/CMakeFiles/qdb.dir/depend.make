# Empty dependencies file for qdb.
# This may be replaced when dependencies are built.
