/// \file knn.h
/// \brief k-nearest-neighbor classifier (instance-based baseline; the
/// classical counterpart of the quantum nearest-neighbor discussion).

#ifndef QDB_CLASSICAL_KNN_H_
#define QDB_CLASSICAL_KNN_H_

#include "classical/dataset.h"
#include "common/result.h"
#include "linalg/types.h"

namespace qdb {

/// \brief Stores the training set and classifies by majority vote among the
/// k nearest points (Euclidean metric; ties break toward the closer class).
class KnnClassifier {
 public:
  static Result<KnnClassifier> Create(Dataset training_data, int k);

  int k() const { return k_; }

  /// Majority ±1 label among the k nearest training points.
  Result<int> Predict(const DVector& x) const;

 private:
  KnnClassifier(Dataset data, int k) : data_(std::move(data)), k_(k) {}

  Dataset data_;
  int k_;
};

}  // namespace qdb

#endif  // QDB_CLASSICAL_KNN_H_
