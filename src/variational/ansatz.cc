#include "variational/ansatz.h"

#include "common/check.h"
#include "common/rng.h"
#include "obs/trace.h"

namespace qdb {
namespace {

void AppendEntanglers(Circuit& circuit, Entanglement entanglement) {
  const int n = circuit.num_qubits();
  switch (entanglement) {
    case Entanglement::kLinear:
      for (int q = 0; q + 1 < n; ++q) circuit.CX(q, q + 1);
      break;
    case Entanglement::kCircular:
      for (int q = 0; q + 1 < n; ++q) circuit.CX(q, q + 1);
      if (n > 2) circuit.CX(n - 1, 0);
      break;
    case Entanglement::kFull:
      for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) circuit.CX(i, j);
      }
      break;
  }
}

}  // namespace

Circuit RealAmplitudesAnsatz(int num_qubits, int layers,
                             Entanglement entanglement, int first_param) {
  QDB_CHECK_GT(num_qubits, 0);
  QDB_CHECK_GE(layers, 0);
  QDB_CHECK_GE(first_param, 0);
  Circuit c(num_qubits);
  int p = first_param;
  for (int q = 0; q < num_qubits; ++q) c.RY(q, ParamExpr::Variable(p++));
  for (int layer = 0; layer < layers; ++layer) {
    if (num_qubits > 1) AppendEntanglers(c, entanglement);
    for (int q = 0; q < num_qubits; ++q) c.RY(q, ParamExpr::Variable(p++));
  }
  return c;
}

Circuit EfficientSU2Ansatz(int num_qubits, int layers, Entanglement entanglement,
                           int first_param) {
  QDB_CHECK_GT(num_qubits, 0);
  QDB_CHECK_GE(layers, 0);
  QDB_CHECK_GE(first_param, 0);
  Circuit c(num_qubits);
  int p = first_param;
  auto rotation_layer = [&] {
    for (int q = 0; q < num_qubits; ++q) c.RY(q, ParamExpr::Variable(p++));
    for (int q = 0; q < num_qubits; ++q) c.RZ(q, ParamExpr::Variable(p++));
  };
  rotation_layer();
  for (int layer = 0; layer < layers; ++layer) {
    if (num_qubits > 1) AppendEntanglers(c, entanglement);
    rotation_layer();
  }
  return c;
}

Circuit RandomHardwareEfficientAnsatz(int num_qubits, int layers,
                                      uint64_t axis_seed, int first_param) {
  QDB_CHECK_GT(num_qubits, 0);
  QDB_CHECK_GE(layers, 1);
  Rng rng(axis_seed);
  Circuit c(num_qubits);
  // Initial RY(π/4) layer breaks the computational-basis symmetry, as in
  // the McClean et al. barren-plateau construction.
  for (int q = 0; q < num_qubits; ++q) c.RY(q, M_PI / 4.0);
  int p = first_param;
  for (int layer = 0; layer < layers; ++layer) {
    for (int q = 0; q < num_qubits; ++q) {
      switch (rng.UniformInt(uint64_t{3})) {
        case 0: c.RX(q, ParamExpr::Variable(p++)); break;
        case 1: c.RY(q, ParamExpr::Variable(p++)); break;
        default: c.RZ(q, ParamExpr::Variable(p++)); break;
      }
    }
    for (int q = 0; q + 1 < num_qubits; ++q) c.CZ(q, q + 1);
  }
  return c;
}

Circuit DataReuploadingCircuit(const DVector& features, int layers,
                               double feature_scale) {
  QDB_CHECK(!features.empty());
  QDB_CHECK_GE(layers, 1);
  QDB_TRACE_SCOPE("DataReuploadingCircuit", "encoding");
  const int n = static_cast<int>(features.size());
  Circuit c(n);
  int p = 0;
  for (int layer = 0; layer < layers; ++layer) {
    for (int q = 0; q < n; ++q) c.RY(q, feature_scale * features[q]);
    for (int q = 0; q < n; ++q) c.RY(q, ParamExpr::Variable(p++));
    for (int q = 0; q < n; ++q) c.RZ(q, ParamExpr::Variable(p++));
    if (n > 1) {
      for (int q = 0; q + 1 < n; ++q) c.CX(q, q + 1);
    }
  }
  return c;
}

int RealAmplitudesParamCount(int num_qubits, int layers) {
  return (layers + 1) * num_qubits;
}

int EfficientSU2ParamCount(int num_qubits, int layers) {
  return 2 * (layers + 1) * num_qubits;
}

}  // namespace qdb
