#include "circuit/circuit.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/strings.h"

namespace qdb {

Circuit::Circuit(int num_qubits) : num_qubits_(num_qubits) {
  QDB_CHECK_GT(num_qubits, 0);
}

void Circuit::ValidateQubits(const std::vector<int>& qubits) const {
  QDB_CHECK(!qubits.empty());
  for (size_t i = 0; i < qubits.size(); ++i) {
    QDB_CHECK_GE(qubits[i], 0);
    QDB_CHECK_LT(qubits[i], num_qubits_);
    for (size_t j = i + 1; j < qubits.size(); ++j) {
      QDB_CHECK_NE(qubits[i], qubits[j]) << "duplicate qubit operand";
    }
  }
}

void Circuit::TrackParams(const std::vector<ParamExpr>& params) {
  for (const auto& p : params) {
    if (p.index >= 0) num_parameters_ = std::max(num_parameters_, p.index + 1);
  }
}

Circuit& Circuit::AddGate(GateType type, std::vector<int> qubits,
                          std::vector<ParamExpr> params) {
  ValidateQubits(qubits);
  int arity = GateArity(type);
  if (arity > 0) QDB_CHECK_EQ(static_cast<int>(qubits.size()), arity);
  QDB_CHECK_EQ(static_cast<int>(params.size()), GateParamCount(type));
  TrackParams(params);
  gates_.push_back(Gate{type, std::move(qubits), std::move(params)});
  return *this;
}

Circuit& Circuit::Add1Q(GateType type, int q) { return AddGate(type, {q}, {}); }

Circuit& Circuit::Add2Q(GateType type, int a, int b) {
  return AddGate(type, {a, b}, {});
}

Circuit& Circuit::RX(int q, ParamExpr theta) {
  return AddGate(GateType::kRX, {q}, {theta});
}
Circuit& Circuit::RY(int q, ParamExpr theta) {
  return AddGate(GateType::kRY, {q}, {theta});
}
Circuit& Circuit::RZ(int q, ParamExpr theta) {
  return AddGate(GateType::kRZ, {q}, {theta});
}
Circuit& Circuit::P(int q, ParamExpr lambda) {
  return AddGate(GateType::kPhase, {q}, {lambda});
}
Circuit& Circuit::U(int q, ParamExpr theta, ParamExpr phi, ParamExpr lambda) {
  return AddGate(GateType::kU, {q}, {theta, phi, lambda});
}
Circuit& Circuit::CRX(int c, int t, ParamExpr theta) {
  return AddGate(GateType::kCRX, {c, t}, {theta});
}
Circuit& Circuit::CRY(int c, int t, ParamExpr theta) {
  return AddGate(GateType::kCRY, {c, t}, {theta});
}
Circuit& Circuit::CRZ(int c, int t, ParamExpr theta) {
  return AddGate(GateType::kCRZ, {c, t}, {theta});
}
Circuit& Circuit::CP(int c, int t, ParamExpr lambda) {
  return AddGate(GateType::kCPhase, {c, t}, {lambda});
}
Circuit& Circuit::RXX(int a, int b, ParamExpr theta) {
  return AddGate(GateType::kRXX, {a, b}, {theta});
}
Circuit& Circuit::RYY(int a, int b, ParamExpr theta) {
  return AddGate(GateType::kRYY, {a, b}, {theta});
}
Circuit& Circuit::RZZ(int a, int b, ParamExpr theta) {
  return AddGate(GateType::kRZZ, {a, b}, {theta});
}
Circuit& Circuit::CCX(int c1, int c2, int target) {
  return AddGate(GateType::kCCX, {c1, c2, target}, {});
}
Circuit& Circuit::CSwap(int control, int a, int b) {
  return AddGate(GateType::kCSwap, {control, a, b}, {});
}

Circuit& Circuit::MCX(const std::vector<int>& controls, int target) {
  std::vector<int> qubits = controls;
  qubits.push_back(target);
  return AddGate(GateType::kMCX, std::move(qubits), {});
}

Circuit& Circuit::MCZ(const std::vector<int>& controls, int target) {
  std::vector<int> qubits = controls;
  qubits.push_back(target);
  return AddGate(GateType::kMCZ, std::move(qubits), {});
}

Circuit& Circuit::Append(const Gate& gate) {
  return AddGate(gate.type, gate.qubits, gate.params);
}

Circuit& Circuit::Append(const Circuit& other) {
  QDB_CHECK_EQ(num_qubits_, other.num_qubits_);
  for (const auto& g : other.gates_) Append(g);
  return *this;
}

Circuit& Circuit::AppendMapped(const Circuit& other,
                               const std::vector<int>& mapping) {
  QDB_CHECK_EQ(mapping.size(), static_cast<size_t>(other.num_qubits_));
  for (const auto& g : other.gates_) {
    Gate mapped = g;
    for (auto& q : mapped.qubits) q = mapping[q];
    Append(mapped);
  }
  return *this;
}

Circuit Circuit::Inverse() const {
  Circuit inv(num_qubits_);
  for (auto it = gates_.rbegin(); it != gates_.rend(); ++it) {
    const Gate& g = *it;
    switch (g.type) {
      case GateType::kS:
      case GateType::kSdg:
      case GateType::kT:
      case GateType::kTdg: {
        Gate adj = g;
        adj.type = AdjointType(g.type);
        inv.Append(adj);
        break;
      }
      case GateType::kSX:
        // SX† = SX³ exactly (SX⁴ = I including global phase).
        inv.SX(g.qubits[0]).SX(g.qubits[0]).SX(g.qubits[0]);
        break;
      case GateType::kU: {
        // U(θ, φ, λ)† = U(−θ, −λ, −φ): negate all and swap φ ↔ λ.
        Gate adj = g.WithNegatedParams();
        std::swap(adj.params[1], adj.params[2]);
        inv.Append(adj);
        break;
      }
      default:
        if (GateParamCount(g.type) > 0) {
          inv.Append(g.WithNegatedParams());
        } else {
          inv.Append(g);  // Self-inverse fixed gates (X, H, CX, CCX, ...).
        }
        break;
    }
  }
  return inv;
}

Circuit Circuit::Bind(const DVector& params) const {
  QDB_CHECK_GE(params.size(), static_cast<size_t>(num_parameters_));
  Circuit bound(num_qubits_);
  for (const auto& g : gates_) {
    Gate b = g;
    for (auto& p : b.params) p = ParamExpr::Constant(p.Evaluate(params));
    bound.Append(b);
  }
  return bound;
}

DVector Circuit::EvaluateAngles(size_t gate_index, const DVector& params) const {
  QDB_CHECK_LT(gate_index, gates_.size());
  const Gate& g = gates_[gate_index];
  DVector out;
  out.reserve(g.params.size());
  for (const auto& p : g.params) out.push_back(p.Evaluate(params));
  return out;
}

int Circuit::TwoQubitGateCount() const {
  int count = 0;
  for (const auto& g : gates_) {
    if (g.qubits.size() >= 2) ++count;
  }
  return count;
}

int Circuit::Depth() const {
  std::vector<int> frontier(num_qubits_, 0);
  for (const auto& g : gates_) {
    int level = 0;
    for (int q : g.qubits) level = std::max(level, frontier[q]);
    ++level;
    for (int q : g.qubits) frontier[q] = level;
  }
  return *std::max_element(frontier.begin(), frontier.end());
}

std::string Circuit::ToString() const {
  std::ostringstream os;
  os << "// qdb circuit: " << num_qubits_ << " qubits, " << gates_.size()
     << " gates, " << num_parameters_ << " parameters\n";
  for (const auto& g : gates_) {
    os << GateTypeName(g.type);
    if (!g.params.empty()) {
      os << "(";
      for (size_t i = 0; i < g.params.size(); ++i) {
        if (i > 0) os << ", ";
        const ParamExpr& p = g.params[i];
        if (p.is_constant()) {
          os << ToStringPrecise(p.offset, 6);
        } else {
          if (p.multiplier != 1.0) os << ToStringPrecise(p.multiplier, 6) << "*";
          os << "t" << p.index;
          if (p.offset != 0.0)
            os << (p.offset > 0 ? "+" : "") << ToStringPrecise(p.offset, 6);
        }
      }
      os << ")";
    }
    os << " ";
    for (size_t i = 0; i < g.qubits.size(); ++i) {
      if (i > 0) os << ", ";
      os << "q[" << g.qubits[i] << "]";
    }
    os << ";\n";
  }
  return os.str();
}

std::string Circuit::StructuralFingerprint() const {
  std::string key;
  key.reserve(16 + gates_.size() * 24);
  auto put_i32 = [&key](int32_t v) {
    char buf[sizeof(v)];
    std::memcpy(buf, &v, sizeof(v));
    key.append(buf, sizeof(v));
  };
  auto put_f64 = [&key](double v) {
    char buf[sizeof(v)];
    std::memcpy(buf, &v, sizeof(v));
    key.append(buf, sizeof(v));
  };
  put_i32(num_qubits_);
  put_i32(static_cast<int32_t>(gates_.size()));
  for (const Gate& g : gates_) {
    key.push_back(static_cast<char>(g.type));
    key.push_back(static_cast<char>(g.qubits.size()));
    for (int q : g.qubits) put_i32(q);
    key.push_back(static_cast<char>(g.params.size()));
    for (const ParamExpr& p : g.params) {
      put_i32(p.index);
      put_f64(p.multiplier);
      put_f64(p.offset);
    }
  }
  return key;
}

}  // namespace qdb
