/// \file adam.h
/// \brief Adam optimizer (Kingma & Ba) — the default trainer for VQC/VQE.

#ifndef QDB_OPTIMIZE_ADAM_H_
#define QDB_OPTIMIZE_ADAM_H_

#include "optimize/optimizer.h"

namespace qdb {

/// \brief Configuration for Adam.
struct AdamOptions {
  double learning_rate = 0.05;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  int max_iterations = 200;
  double gradient_tolerance = 1e-6;  ///< Stop when ‖∇f‖∞ falls below this.
};

/// \brief Minimizes `objective` from `initial` using `gradient` with Adam
/// updates and bias correction.
Result<OptimizeResult> MinimizeAdam(const Objective& objective,
                                    const GradientFn& gradient,
                                    const DVector& initial,
                                    const AdamOptions& options = {});

}  // namespace qdb

#endif  // QDB_OPTIMIZE_ADAM_H_
