/// \file fault_injector.h
/// \brief Deterministic fault injection: a registry of named fault points
/// that production code declares with QDB_FAULT_POINT and chaos tests arm
/// programmatically or via the QDB_FAULTS environment variable.
///
/// A fault point is a name ("serve.dispatch", "artifact.save", ...) plus an
/// optional scope string (e.g. the model name) so one point can target a
/// single servable. Disarmed points cost one relaxed atomic load and a
/// predicted branch — they are compiled into hot paths permanently, like
/// trace spans. Armed points draw from a per-point xoshiro stream derived
/// with Rng::Split from the spec's seed, so a chaos run with a fixed
/// QDB_FAULTS string is bit-reproducible: the k-th evaluation of a point
/// fires (or not) identically across runs.
///
/// Spec string grammar (comma-separated list):
///
///   point:kind:probability:seed[:value][:target]
///
///   kind   = error | latency | torn_write | spurious_wake | kill
///   value  = status-code number for `error` (default 9 = unavailable),
///            microseconds for `latency` (default 1000),
///            kept byte fraction in [0,1] for `torn_write` (default 0.5),
///            kept byte fraction in [0,1] for `kill` at write-site points
///            (default 0.5; elsewhere the process dies before the operation)
///   target = scope filter; the fault only fires at call sites whose scope
///            string matches exactly (empty = fire everywhere)
///
/// Example: QDB_FAULTS="serve.dispatch:error:0.2:1337,artifact.save:torn_write:1:7:0.4"
///
/// ArmFromEnv cross-checks each spec's point name against the registry of
/// points compiled into this binary (IsKnownFaultPoint): a typo'd name is
/// still armed, but warned about on stderr and counted in
/// fault.unknown_point, instead of silently never firing.

#ifndef QDB_FAULT_FAULT_INJECTOR_H_
#define QDB_FAULT_FAULT_INJECTOR_H_

#include <atomic>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace qdb {
namespace fault {

/// What an armed fault point does when it fires.
enum class FaultKind {
  kError,         ///< Return a non-OK Status (default kUnavailable).
  kLatency,       ///< Sleep for latency_us, then proceed normally.
  kTornWrite,     ///< Writers persist only keep_fraction of their payload.
  kSpuriousWake,  ///< Condition waits return early without a real signal.
  kKill,          ///< SIGKILL the process — a real crash, not a simulated
                  ///< one. Write sites first persist keep_fraction of their
                  ///< payload, so the kill lands mid-write like a power cut.
};

const char* FaultKindName(FaultKind kind);
Result<FaultKind> ParseFaultKind(const std::string& name);

/// Dies by SIGKILL — no atexit handlers, no flushes, no destructors — so a
/// kill fault is indistinguishable from `kill -9` to the recovery path.
[[noreturn]] void KillProcess();

/// True when `point` names a fault point compiled into this binary. The
/// call sites declare points as string literals; this registry is the
/// authoritative list ArmFromEnv validates spec names against.
bool IsKnownFaultPoint(const std::string& point);

/// Adds `point` to the known-point registry (for out-of-tree call sites
/// that declare their own points). Idempotent.
void RegisterFaultPoint(const std::string& point);

/// \brief One armed fault: what to inject, how often, and where.
struct FaultSpec {
  FaultKind kind = FaultKind::kError;
  /// Per-evaluation fire probability, clamped to [0, 1].
  double probability = 1.0;
  /// Seed of the point's private Rng stream (bit-reproducible draws).
  uint64_t seed = 0;
  /// Status code injected by kError faults.
  StatusCode error_code = StatusCode::kUnavailable;
  /// Sleep injected by kLatency faults.
  long latency_us = 1000;
  /// Fraction of the payload a kTornWrite fault lets reach the file.
  double keep_fraction = 0.5;
  /// Exact-match scope filter; empty fires at every call site of the point.
  std::string target;
};

/// \brief Process-wide fault-point registry (singleton).
///
/// Thread-safe: Arm/Disarm/Sample take an internal lock; enabled() is a
/// relaxed load so disarmed hot paths never contend.
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Arms (or re-arms, resetting the Rng stream and tallies) one point.
  void Arm(const std::string& point, const FaultSpec& spec);
  /// Disarms one point; returns false when it was not armed.
  bool Disarm(const std::string& point);
  void DisarmAll();

  /// Parses and arms a spec-string list (see file comment for the grammar).
  Status ArmFromSpecString(const std::string& specs);
  /// Arms from the QDB_FAULTS environment variable; OK no-op when unset.
  /// Call sites opt in explicitly (tests, demos, chaos harnesses) — library
  /// code never arms faults on its own. Specs naming a point this binary
  /// never registered are still armed, but warned about on stderr and
  /// counted in fault.unknown_point (see IsKnownFaultPoint).
  Status ArmFromEnv();

  /// True when at least one point is armed (one relaxed atomic load).
  bool enabled() const {
    return armed_points_.load(std::memory_order_relaxed) > 0;
  }

  /// Evaluates `point` for `scope`: returns the armed spec when the fault
  /// fires this time, nullopt when disarmed / filtered / not fired. Each
  /// matching evaluation consumes exactly one Bernoulli draw from the
  /// point's stream (scope mismatches consume none), so draw sequences are
  /// reproducible for a fixed evaluation order.
  std::optional<FaultSpec> Sample(const char* point,
                                  const std::string& scope = std::string());

  /// Full handling for error/latency faults: sleeps on latency and returns
  /// OK, returns the injected Status on error, returns OK for the kinds a
  /// call site must interpret itself (torn writes, spurious wakeups).
  Status Inject(const char* point, const std::string& scope = std::string());

  /// Per-point evaluation/fire tallies since the point was (re-)armed.
  struct PointStats {
    long evaluations = 0;
    long fired = 0;
  };
  PointStats stats(const std::string& point) const;
  std::vector<std::string> ArmedPoints() const;

  /// One armed point's spec plus its tallies, for introspection pages
  /// (InferenceServer::Statusz renders these as its fault block).
  struct ArmedPointStatus {
    std::string point;
    FaultSpec spec;
    long evaluations = 0;
    long fired = 0;
  };
  /// Every armed point, sorted by name, with a consistent tally snapshot.
  std::vector<ArmedPointStatus> SnapshotArmed() const;

 private:
  struct ArmedPoint {
    FaultSpec spec;
    Rng rng{0};
    long evaluations = 0;
    long fired = 0;
  };

  FaultInjector() = default;

  std::atomic<int> armed_points_{0};
  mutable std::mutex mu_;
  std::map<std::string, ArmedPoint> points_;
};

/// Fast-path helper: one relaxed load when nothing is armed.
inline Status MaybeInject(const char* point) {
  FaultInjector& injector = FaultInjector::Global();
  if (!injector.enabled()) return Status::OK();
  return injector.Inject(point);
}
inline Status MaybeInject(const char* point, const std::string& scope) {
  FaultInjector& injector = FaultInjector::Global();
  if (!injector.enabled()) return Status::OK();
  return injector.Inject(point, scope);
}

/// True when a spurious-wakeup fault fires at `point` — condition-wait
/// loops use this to exercise their wakeup-safety deterministically.
inline bool SpuriousWake(const char* point) {
  FaultInjector& injector = FaultInjector::Global();
  if (!injector.enabled()) return false;
  std::optional<FaultSpec> fired = injector.Sample(point);
  return fired.has_value() && fired->kind == FaultKind::kSpuriousWake;
}

/// Declares a fault point in a function returning Status or Result<T>:
/// propagates an injected error, sleeps through an injected latency spike,
/// and costs one relaxed load + branch when nothing is armed.
#define QDB_FAULT_POINT(point) \
  QDB_RETURN_IF_ERROR(::qdb::fault::MaybeInject(point))

/// Scoped variant: the armed spec's `target` filter is matched against
/// `scope` (e.g. a model name), so chaos runs can poison one servable.
#define QDB_FAULT_POINT_SCOPED(point, scope) \
  QDB_RETURN_IF_ERROR(::qdb::fault::MaybeInject(point, scope))

}  // namespace fault
}  // namespace qdb

#endif  // QDB_FAULT_FAULT_INJECTOR_H_
