/// \file catalog.h
/// \brief Minimal relational catalog: tables, cardinalities, and join
/// selectivities — the statistics layer the optimizers consume.

#ifndef QDB_DB_CATALOG_H_
#define QDB_DB_CATALOG_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "db/query_graph.h"

namespace qdb {

/// \brief Statistics for one base table.
struct TableStats {
  std::string name;
  double cardinality = 0.0;  ///< Estimated row count (> 0).
};

/// \brief A name-keyed collection of table statistics plus pairwise join
/// selectivities (defaulting to 1.0 — a cross product — when unset).
class Catalog {
 public:
  Catalog() = default;

  /// Registers a table; fails on duplicates or non-positive cardinality.
  Status AddTable(const std::string& name, double cardinality);

  /// Sets the selectivity of joining `a` with `b` (symmetric, in (0, 1]).
  Status SetSelectivity(const std::string& a, const std::string& b,
                        double selectivity);

  Result<TableStats> GetTable(const std::string& name) const;

  /// Selectivity between two registered tables (1.0 when unset).
  Result<double> GetSelectivity(const std::string& a,
                                const std::string& b) const;

  size_t num_tables() const { return tables_.size(); }
  const std::vector<TableStats>& tables() const { return tables_; }

  /// Index of a table in tables(), or NotFound.
  Result<int> TableIndex(const std::string& name) const;

  /// \brief Builds the join query graph over all registered tables, with
  /// one join edge per (a, b) pair in `joins`, using this catalog's
  /// cardinalities and selectivities — the bridge from schema statistics
  /// to the optimizers in db/join_order_*.
  Result<JoinQueryGraph> BuildJoinGraph(
      const std::vector<std::pair<std::string, std::string>>& joins) const;

 private:
  std::vector<TableStats> tables_;
  std::map<std::string, int> index_;
  std::map<std::pair<int, int>, double> selectivities_;  ///< Keyed (min, max).
};

}  // namespace qdb

#endif  // QDB_DB_CATALOG_H_
