/// \file exhaustive.h
/// \brief Exact ground states by exhaustive enumeration — the ground truth
/// for solution-quality ratios in E7–E10 and E12.

#ifndef QDB_ANNEAL_EXHAUSTIVE_H_
#define QDB_ANNEAL_EXHAUSTIVE_H_

#include "anneal/types.h"
#include "common/result.h"
#include "ops/ising.h"
#include "ops/qubo.h"

namespace qdb {

/// \brief Exact minimum of an Ising instance (n ≤ 26 enforced).
Result<SolveResult> ExhaustiveSolve(const IsingModel& model);

/// \brief Exact minimum of a QUBO instance (n ≤ 26); best_spins holds the
/// algebraic spin image (s = 2x − 1) of the optimal bits.
Result<SolveResult> ExhaustiveSolveQubo(const Qubo& qubo);

}  // namespace qdb

#endif  // QDB_ANNEAL_EXHAUSTIVE_H_
