/// \file nelder_mead.h
/// \brief Nelder–Mead downhill simplex (derivative-free local search).

#ifndef QDB_OPTIMIZE_NELDER_MEAD_H_
#define QDB_OPTIMIZE_NELDER_MEAD_H_

#include "optimize/optimizer.h"

namespace qdb {

/// \brief Configuration for Nelder–Mead.
struct NelderMeadOptions {
  double initial_step = 0.5;   ///< Offset of initial simplex vertices.
  double reflection = 1.0;
  double expansion = 2.0;
  double contraction = 0.5;
  double shrink = 0.5;
  int max_iterations = 500;
  /// Stop when the simplex value spread falls below this.
  double value_tolerance = 1e-9;
};

/// \brief Minimizes `objective` from `initial` with the downhill simplex.
Result<OptimizeResult> MinimizeNelderMead(const Objective& objective,
                                          const DVector& initial,
                                          const NelderMeadOptions& options = {});

}  // namespace qdb

#endif  // QDB_OPTIMIZE_NELDER_MEAD_H_
