# Empty compiler generated dependencies file for tfim_phase_scan.
# This may be replaced when dependencies are built.
