#include "obs/trace.h"

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <thread>

#include "common/strings.h"

namespace qdb {
namespace obs {

namespace {

std::atomic<bool> g_tracing_enabled{false};

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

uint64_t CurrentThreadId() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

}  // namespace

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void EnableTracing() {
  TraceEpoch();  // Pin the epoch no later than the first enable.
  g_tracing_enabled.store(true, std::memory_order_relaxed);
}

void DisableTracing() {
  g_tracing_enabled.store(false, std::memory_order_relaxed);
}

void InitTracingFromEnv() {
  const char* value = std::getenv("QDB_TRACE");
  if (value != nullptr && value[0] != '\0' &&
      !(value[0] == '0' && value[1] == '\0')) {
    EnableTracing();
  }
}

int64_t TraceNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.thread_id = CurrentThreadId();
  event.start_us = start_us_;
  event.duration_us = TraceNowMicros() - start_us_;
  TraceLog::Global().Record(event);
}

TraceLog::TraceLog() : capacity_(1 << 16) { ring_.resize(capacity_); }

TraceLog& TraceLog::Global() {
  static TraceLog* log = new TraceLog();
  return *log;
}

void TraceLog::Record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_[next_] = event;
  next_ = (next_ + 1) % capacity_;
  if (count_ < capacity_) {
    ++count_;
  } else {
    ++dropped_;
  }
}

std::vector<TraceEvent> TraceLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(count_);
  const size_t first = (next_ + capacity_ - count_) % capacity_;
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(first + i) % capacity_]);
  }
  return out;
}

size_t TraceLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

size_t TraceLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  next_ = 0;
  count_ = 0;
  dropped_ = 0;
}

void TraceLog::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity > 0 ? capacity : 1;
  ring_.assign(capacity_, TraceEvent{});
  next_ = 0;
  count_ = 0;
  dropped_ = 0;
}

std::string TraceLog::ChromeTraceJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  // Renumber thread-id hashes as small consecutive tids for readability.
  std::map<uint64_t, int> tids;
  for (const auto& e : events) {
    tids.emplace(e.thread_id, static_cast<int>(tids.size()) + 1);
  }
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events) {
    if (!first) out += ",";
    first = false;
    out += StrFormat(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%lld,"
        "\"dur\":%lld,\"pid\":1,\"tid\":%d}",
        e.name, e.category, static_cast<long long>(e.start_us),
        static_cast<long long>(e.duration_us), tids.at(e.thread_id));
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status TraceLog::WriteChromeTrace(const std::string& path) const {
  const std::string json = ChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument(StrCat("cannot open ", path, " for write"));
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::Internal(StrCat("short write to ", path));
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace qdb
