/// \file dataset.h
/// \brief Binary-classification datasets and generators (moons, circles,
/// XOR, Gaussian blobs) shared by the quantum and classical learners.

#ifndef QDB_CLASSICAL_DATASET_H_
#define QDB_CLASSICAL_DATASET_H_

#include <utility>
#include <vector>

#include "common/rng.h"
#include "linalg/types.h"

namespace qdb {

/// \brief A labelled dataset: feature rows with ±1 labels.
struct Dataset {
  std::vector<DVector> features;
  std::vector<int> labels;  ///< Entries are +1 or −1.

  size_t size() const { return features.size(); }
  int num_features() const {
    return features.empty() ? 0 : static_cast<int>(features.front().size());
  }
};

/// Two interleaving half-moons (2 features). `noise` is the Gaussian jitter
/// standard deviation.
Dataset MakeMoons(int samples, double noise, Rng& rng);

/// Two concentric circles; `factor` ∈ (0, 1) is the inner radius ratio.
Dataset MakeCircles(int samples, double noise, double factor, Rng& rng);

/// XOR pattern: four Gaussian clusters at (±1, ±1) with XOR labels — not
/// linearly separable, the canonical quantum-kernel showcase.
Dataset MakeXor(int samples, double noise, Rng& rng);

/// Two Gaussian blobs in `num_features` dimensions, centers ±`separation`/2
/// along every axis — an easy linearly separable control.
Dataset MakeBlobs(int samples, int num_features, double separation,
                  double stddev, Rng& rng);

/// Shuffles and splits into (train, test); test gets ⌈fraction·n⌉ samples.
std::pair<Dataset, Dataset> TrainTestSplit(const Dataset& data,
                                           double test_fraction, Rng& rng);

/// Rescales each feature linearly onto [lo, hi] using the ranges of
/// `reference` (fit on train, apply to test). Constant features map to lo.
void MinMaxScale(const Dataset& reference, Dataset& data, double lo,
                 double hi);

}  // namespace qdb

#endif  // QDB_CLASSICAL_DATASET_H_
