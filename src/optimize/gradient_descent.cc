#include "optimize/gradient_descent.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"

namespace qdb {

Result<OptimizeResult> MinimizeGradientDescent(
    const Objective& objective, const GradientFn& gradient,
    const DVector& initial, const GradientDescentOptions& options) {
  if (options.learning_rate <= 0.0) {
    return Status::InvalidArgument("learning rate must be positive");
  }
  if (options.momentum < 0.0 || options.momentum >= 1.0) {
    return Status::InvalidArgument("momentum must be in [0, 1)");
  }
  QDB_TRACE_SCOPE("GradientDescent::Minimize", "optimize");
  OptimizeResult result;
  result.params = initial;
  DVector velocity(initial.size(), 0.0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    QDB_ASSIGN_OR_RETURN(DVector grad, gradient(result.params));
    double grad_inf = 0.0;
    double grad_sq = 0.0;
    for (double g : grad) {
      grad_inf = std::max(grad_inf, std::abs(g));
      grad_sq += g * g;
    }
    if (grad_inf < options.gradient_tolerance) {
      result.converged = true;
      break;
    }
    result.gradient_norm_history.push_back(std::sqrt(grad_sq));
    for (size_t k = 0; k < result.params.size(); ++k) {
      velocity[k] = options.momentum * velocity[k] -
                    options.learning_rate * (k < grad.size() ? grad[k] : 0.0);
      result.params[k] += velocity[k];
    }
    ++result.iterations;
    QDB_ASSIGN_OR_RETURN(double value, objective(result.params));
    result.history.push_back(value);
  }
  QDB_ASSIGN_OR_RETURN(result.value, objective(result.params));
  return result;
}

}  // namespace qdb
