/// \file types.h
/// \brief Shared result type for the Ising/QUBO solvers in src/anneal/.

#ifndef QDB_ANNEAL_TYPES_H_
#define QDB_ANNEAL_TYPES_H_

#include <cstdint>
#include <vector>

namespace qdb {

/// \brief Best configuration found by a heuristic or exact solver.
struct SolveResult {
  std::vector<int8_t> best_spins;  ///< Entries ±1.
  double best_energy = 0.0;        ///< Ising energy of best_spins.
  long sweeps = 0;                 ///< Sweeps / iterations performed.
};

}  // namespace qdb

#endif  // QDB_ANNEAL_TYPES_H_
