// Tests for the HHL linear-system solver.

#include <gtest/gtest.h>

#include <cmath>

#include "algo/hhl.h"
#include "common/rng.h"
#include "linalg/random_unitary.h"

namespace qdb {
namespace {

TEST(ClassicalSolveTest, KnownSystem) {
  // A = diag(2, 4), b = (1, 1): x ∝ (1/2, 1/4) ∝ (2, 1)/√5.
  Matrix a = Matrix::Diagonal({Complex(2, 0), Complex(4, 0)});
  auto x = ClassicalSolveNormalized(a, {{1, 0}, {1, 0}});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(std::abs(x.value()[0]), 2.0 / std::sqrt(5.0), 1e-10);
  EXPECT_NEAR(std::abs(x.value()[1]), 1.0 / std::sqrt(5.0), 1e-10);
}

TEST(ClassicalSolveTest, RejectsSingular) {
  Matrix a = Matrix::Diagonal({Complex(1, 0), Complex(0, 0)});
  EXPECT_FALSE(ClassicalSolveNormalized(a, {{1, 0}, {1, 0}}).ok());
}

TEST(HhlTest, InputValidation) {
  Matrix a = Matrix::Diagonal({Complex(1, 0), Complex(2, 0)});
  CVector b = {{1, 0}, {0, 0}};
  EXPECT_FALSE(HhlSolve(Matrix(3, 3), {{1, 0}, {1, 0}, {1, 0}}).ok());  // Dim 3.
  EXPECT_FALSE(HhlSolve(a, {{1, 0}}).ok());  // b wrong size.
  Matrix non_herm{{{1, 0}, {1, 0}}, {{0, 0}, {1, 0}}};
  EXPECT_FALSE(HhlSolve(non_herm, b).ok());
  EXPECT_FALSE(HhlSolve(a, {{0, 0}, {0, 0}}).ok());  // Zero b.
  HhlOptions bad;
  bad.clock_qubits = 1;
  EXPECT_FALSE(HhlSolve(a, b, bad).ok());
  Matrix singular = Matrix::Diagonal({Complex(1, 0), Complex(0, 0)});
  EXPECT_FALSE(HhlSolve(singular, b).ok());
}

TEST(HhlTest, DiagonalSystemHighFidelity) {
  // Eigenvalues exactly representable on the phase grid: near-exact HHL.
  Matrix a = Matrix::Diagonal({Complex(1, 0), Complex(2, 0)});
  CVector b = {{1.0 / std::sqrt(2.0), 0}, {1.0 / std::sqrt(2.0), 0}};
  HhlOptions opts;
  opts.clock_qubits = 6;
  opts.evolution_time = M_PI / 2.0;  // λt₀/2π ∈ {1/4, 1/2}·... exact grid.
  auto result = HhlSolve(a, b, opts);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result.value().fidelity, 0.999);
  EXPECT_GT(result.value().success_probability, 1e-4);
}

TEST(HhlTest, NegativeEigenvaluesHandled) {
  // A = Z (eigenvalues ±1): the phase wrap-around branch must engage.
  Matrix a{{{1, 0}, {0, 0}}, {{0, 0}, {-1, 0}}};
  CVector b = {{0.6, 0}, {0.8, 0}};
  HhlOptions opts;
  opts.clock_qubits = 6;
  auto result = HhlSolve(a, b, opts);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result.value().fidelity, 0.99);
}

class HhlRandomSystemTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HhlRandomSystemTest, WellConditionedSystemsSolveAccurately) {
  // Random well-conditioned Hermitian 4x4 systems: fidelity ≥ 0.98 with an
  // 8-bit clock (finite phase resolution is the only error source).
  Rng rng(GetParam());
  // Build A with controlled spectrum: λ ∈ [1, 3].
  Matrix v = RandomUnitary(4, rng);
  CVector diag(4);
  for (int i = 0; i < 4; ++i) diag[i] = Complex(rng.Uniform(1.0, 3.0), 0.0);
  Matrix a = v * Matrix::Diagonal(diag) * v.Adjoint();
  // Hermitize against roundoff.
  a = (a + a.Adjoint()) * Complex(0.5, 0.0);
  CVector b = RandomState(4, rng);

  HhlOptions opts;
  opts.clock_qubits = 8;
  auto result = HhlSolve(a, b, opts);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result.value().fidelity, 0.98) << "seed " << GetParam();
  EXPECT_EQ(result.value().total_qubits, 1 + 8 + 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HhlRandomSystemTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(HhlTest, MorePrecisionImprovesFidelity) {
  Rng rng(11);
  Matrix v = RandomUnitary(2, rng);
  Matrix a = v * Matrix::Diagonal({Complex(1.3, 0), Complex(2.7, 0)}) *
             v.Adjoint();
  a = (a + a.Adjoint()) * Complex(0.5, 0.0);
  CVector b = RandomState(2, rng);
  HhlOptions coarse;
  coarse.clock_qubits = 3;
  HhlOptions fine;
  fine.clock_qubits = 9;
  auto lo = HhlSolve(a, b, coarse);
  auto hi = HhlSolve(a, b, fine);
  ASSERT_TRUE(lo.ok());
  ASSERT_TRUE(hi.ok());
  EXPECT_GE(hi.value().fidelity, lo.value().fidelity - 1e-6);
  EXPECT_GT(hi.value().fidelity, 0.99);
}

}  // namespace
}  // namespace qdb
