// Tests for the Jacobi Hermitian eigensolver.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/eigen.h"
#include "linalg/random_unitary.h"

namespace qdb {
namespace {

TEST(EigenTest, DiagonalMatrixIsItsOwnDecomposition) {
  Matrix d = Matrix::Diagonal({Complex(3, 0), Complex(-1, 0), Complex(2, 0)});
  auto result = HermitianEigen(d);
  ASSERT_TRUE(result.ok()) << result.status();
  const auto& decomp = result.value();
  EXPECT_NEAR(decomp.eigenvalues[0], -1.0, 1e-10);
  EXPECT_NEAR(decomp.eigenvalues[1], 2.0, 1e-10);
  EXPECT_NEAR(decomp.eigenvalues[2], 3.0, 1e-10);
}

TEST(EigenTest, PauliXEigenvalues) {
  Matrix x{{{0, 0}, {1, 0}}, {{1, 0}, {0, 0}}};
  auto result = HermitianEigen(x);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().eigenvalues[0], -1.0, 1e-10);
  EXPECT_NEAR(result.value().eigenvalues[1], 1.0, 1e-10);
}

TEST(EigenTest, PauliYComplexEntries) {
  Matrix y{{{0, 0}, {0, -1}}, {{0, 1}, {0, 0}}};
  auto result = HermitianEigen(y);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().eigenvalues[0], -1.0, 1e-10);
  EXPECT_NEAR(result.value().eigenvalues[1], 1.0, 1e-10);
}

TEST(EigenTest, RejectsNonHermitian) {
  Matrix m{{{1, 0}, {2, 0}}, {{3, 0}, {4, 0}}};
  EXPECT_FALSE(HermitianEigen(m).ok());
}

TEST(EigenTest, RejectsNonSquare) {
  EXPECT_FALSE(HermitianEigen(Matrix(2, 3)).ok());
  EXPECT_FALSE(HermitianEigen(Matrix()).ok());
}

TEST(EigenTest, EigenvectorsAreOrthonormal) {
  Rng rng(5);
  Matrix a = RandomHermitian(6, rng);
  auto result = HermitianEigen(a);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().eigenvectors.IsUnitary(1e-8));
}

class EigenReconstructionTest : public ::testing::TestWithParam<int> {};

TEST_P(EigenReconstructionTest, ReconstructsInput) {
  // Property: V diag(λ) V† = A for random Hermitian matrices of varying n.
  Rng rng(100 + GetParam());
  const size_t n = GetParam();
  Matrix a = RandomHermitian(n, rng);
  auto result = HermitianEigen(a);
  ASSERT_TRUE(result.ok()) << result.status();
  const auto& [values, vectors] = result.value();

  CVector diag(n);
  for (size_t i = 0; i < n; ++i) diag[i] = Complex(values[i], 0.0);
  Matrix reconstructed =
      vectors * Matrix::Diagonal(diag) * vectors.Adjoint();
  EXPECT_TRUE(reconstructed.ApproxEqual(a, 1e-8))
      << "n=" << n << "\nA=\n" << a.ToString() << "\nrec=\n"
      << reconstructed.ToString();
}

TEST_P(EigenReconstructionTest, EigenvaluesSortedAscending) {
  Rng rng(200 + GetParam());
  Matrix a = RandomHermitian(GetParam(), rng);
  auto result = HermitianEigen(a);
  ASSERT_TRUE(result.ok());
  const auto& values = result.value().eigenvalues;
  for (size_t i = 1; i < values.size(); ++i) {
    EXPECT_LE(values[i - 1], values[i] + 1e-12);
  }
}

TEST_P(EigenReconstructionTest, TraceEqualsEigenvalueSum) {
  Rng rng(300 + GetParam());
  Matrix a = RandomHermitian(GetParam(), rng);
  auto result = HermitianEigen(a);
  ASSERT_TRUE(result.ok());
  double sum = 0.0;
  for (double v : result.value().eigenvalues) sum += v;
  EXPECT_NEAR(sum, a.Trace().real(), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenReconstructionTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 16));

TEST(EigenTest, MinEigenvalueOfKnownMatrix) {
  // ZZ has eigenvalues {+1, −1, −1, +1}.
  Matrix z{{{1, 0}, {0, 0}}, {{0, 0}, {-1, 0}}};
  Matrix zz = z.Kron(z);
  auto min_eig = MinEigenvalue(zz);
  ASSERT_TRUE(min_eig.ok());
  EXPECT_NEAR(min_eig.value(), -1.0, 1e-10);
}

TEST(EigenTest, PsdDetection) {
  Rng rng(7);
  Matrix g = RandomHermitian(4, rng);
  Matrix psd = g * g.Adjoint();  // Gram form is always PSD.
  auto is_psd = IsPositiveSemidefinite(psd);
  ASSERT_TRUE(is_psd.ok());
  EXPECT_TRUE(is_psd.value());

  Matrix negative = Matrix::Identity(3) * Complex(-1.0, 0.0);
  auto not_psd = IsPositiveSemidefinite(negative);
  ASSERT_TRUE(not_psd.ok());
  EXPECT_FALSE(not_psd.value());
}

}  // namespace
}  // namespace qdb
