/// \file tabu.h
/// \brief Tabu search over Ising instances — the strong classical
/// local-search baseline used alongside SA/SQA in E8.

#ifndef QDB_ANNEAL_TABU_H_
#define QDB_ANNEAL_TABU_H_

#include "anneal/types.h"
#include "common/result.h"
#include "ops/ising.h"

namespace qdb {

/// \brief Tabu-search budget and tenure.
struct TabuOptions {
  int max_iterations = 2000;  ///< Single-flip moves per restart.
  int tenure = 10;            ///< Iterations a reversed move stays tabu.
  int num_restarts = 1;
  uint64_t seed = 47;
};

/// \brief Best-improvement tabu search with aspiration (a tabu move is
/// allowed when it would beat the incumbent best).
Result<SolveResult> TabuSearch(const IsingModel& model,
                               const TabuOptions& options = {});

}  // namespace qdb

#endif  // QDB_ANNEAL_TABU_H_
