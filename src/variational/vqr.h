/// \file vqr.h
/// \brief Variational Quantum Regressor: a data re-uploading circuit whose
/// ⟨Z_0⟩ ∈ [−1, 1] readout is trained against continuous targets — the
/// learned-model component of the quantum cardinality-estimation
/// experiment (E16).

#ifndef QDB_VARIATIONAL_VQR_H_
#define QDB_VARIATIONAL_VQR_H_

#include <vector>

#include "circuit/circuit.h"
#include "common/result.h"
#include "linalg/types.h"
#include "optimize/adam.h"
#include "variational/gradient_method.h"

namespace qdb {

/// \brief VQR hyperparameters.
struct VqrOptions {
  int ansatz_layers = 3;
  double feature_scale = 1.0;  ///< Multiplier on encoded feature angles.
  AdamOptions adam;
  GradientMethod gradient = GradientMethod::kAdjoint;
  uint64_t seed = 61;
  double init_scale = 0.3;
};

/// \brief A trained variational regressor with range [−1, 1].
class VqrRegressor {
 public:
  /// Trains on (features[i] → targets[i]); every target must lie in
  /// [−1, 1] (scale your labels; see db/cardinality.h for the selectivity
  /// mapping). Minimizes mean squared error via parameter-shift + Adam.
  static Result<VqrRegressor> Train(const std::vector<DVector>& features,
                                    const DVector& targets,
                                    const VqrOptions& options = {});

  /// ⟨Z_0⟩ of the trained circuit on x.
  Result<double> Predict(const DVector& x) const;

  const DVector& params() const { return params_; }
  /// Trained hyperparameters (see VqcClassifier::options — same role: they
  /// let the serving layer reconstruct the inference circuit).
  const VqrOptions& options() const { return options_; }
  int num_features() const { return num_features_; }
  const DVector& loss_history() const { return loss_history_; }
  /// ‖∇L‖₂ per training iteration.
  const DVector& gradient_norm_history() const {
    return gradient_norm_history_;
  }
  /// Circuit executions through the expectation path (see the note on
  /// VqcClassifier::circuit_evaluations about the adjoint backend).
  long circuit_evaluations() const { return circuit_evaluations_; }

 private:
  VqrRegressor() = default;

  VqrOptions options_;
  int num_features_ = 0;
  DVector params_;
  DVector loss_history_;
  DVector gradient_norm_history_;
  long circuit_evaluations_ = 0;
};

}  // namespace qdb

#endif  // QDB_VARIATIONAL_VQR_H_
