# Empty dependencies file for classical_models_test.
# This may be replaced when dependencies are built.
