// Tests for the parallel-tempering (replica exchange) solver.

#include <gtest/gtest.h>

#include "anneal/exhaustive.h"
#include "anneal/parallel_tempering.h"
#include "common/rng.h"

namespace qdb {
namespace {

IsingModel RandomSpinGlass(int n, Rng& rng) {
  IsingModel m(n);
  for (int i = 0; i < n; ++i) m.AddField(i, rng.Uniform(-0.5, 0.5));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(0.5)) m.AddCoupling(i, j, rng.Uniform(-1.0, 1.0));
    }
  }
  return m;
}

class PtGroundStateTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PtGroundStateTest, FindsGroundStateOfSmallGlass) {
  Rng rng(GetParam());
  IsingModel m = RandomSpinGlass(9, rng);
  auto exact = ExhaustiveSolve(m);
  ASSERT_TRUE(exact.ok());
  PtOptions opts;
  opts.num_sweeps = 400;
  opts.seed = GetParam() * 7 + 1;
  auto pt = ParallelTempering(m, opts);
  ASSERT_TRUE(pt.ok());
  EXPECT_NEAR(pt.value().best_energy, exact.value().best_energy, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PtGroundStateTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(PtTest, DeterministicBySeed) {
  Rng rng(3);
  IsingModel m = RandomSpinGlass(10, rng);
  PtOptions opts;
  opts.num_sweeps = 100;
  auto a = ParallelTempering(m, opts);
  auto b = ParallelTempering(m, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().best_spins, b.value().best_spins);
  EXPECT_EQ(a.value().best_energy, b.value().best_energy);
}

TEST(PtTest, ValidatesOptions) {
  IsingModel m(3);
  m.AddCoupling(0, 1, -1.0);
  PtOptions bad_replicas;
  bad_replicas.num_replicas = 1;
  EXPECT_FALSE(ParallelTempering(m, bad_replicas).ok());
  PtOptions bad_betas;
  bad_betas.beta_min = 5.0;
  bad_betas.beta_max = 1.0;
  EXPECT_FALSE(ParallelTempering(m, bad_betas).ok());
  PtOptions bad_sweeps;
  bad_sweeps.num_sweeps = 0;
  EXPECT_FALSE(ParallelTempering(m, bad_sweeps).ok());
}

TEST(PtTest, SolvesFrustratedInstance) {
  // Frustrated triangles chained together: many degenerate local optima.
  IsingModel m(9);
  for (int t = 0; t < 3; ++t) {
    const int base = 3 * t;
    m.AddCoupling(base, base + 1, 1.0);
    m.AddCoupling(base + 1, base + 2, 1.0);
    m.AddCoupling(base, base + 2, 1.0);
    if (t > 0) m.AddCoupling(base - 1, base, -2.0);
  }
  auto exact = ExhaustiveSolve(m);
  ASSERT_TRUE(exact.ok());
  PtOptions opts;
  opts.num_sweeps = 600;
  auto pt = ParallelTempering(m, opts);
  ASSERT_TRUE(pt.ok());
  EXPECT_NEAR(pt.value().best_energy, exact.value().best_energy, 1e-9);
}

}  // namespace
}  // namespace qdb
