#include "algo/grover.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "sim/statevector_simulator.h"

namespace qdb {
namespace {

/// Phase-flips the all-ones state via MCZ; X-conjugation retargets it to
/// an arbitrary basis state.
void AppendMarkedStateFlip(Circuit& circuit, uint64_t index) {
  const int n = circuit.num_qubits();
  std::vector<int> zero_bits;
  for (int q = 0; q < n; ++q) {
    if (!(index & (uint64_t{1} << (n - 1 - q)))) zero_bits.push_back(q);
  }
  for (int q : zero_bits) circuit.X(q);
  if (n == 1) {
    circuit.Z(0);
  } else {
    std::vector<int> controls;
    for (int q = 0; q + 1 < n; ++q) controls.push_back(q);
    circuit.MCZ(controls, n - 1);
  }
  for (int q : zero_bits) circuit.X(q);
}

}  // namespace

void AppendPhaseOracle(Circuit& circuit, const std::vector<uint64_t>& marked) {
  for (uint64_t m : marked) AppendMarkedStateFlip(circuit, m);
}

void AppendDiffusion(Circuit& circuit) {
  const int n = circuit.num_qubits();
  for (int q = 0; q < n; ++q) circuit.H(q);
  // 2|0⟩⟨0| − I = X⊗n · MCZ · X⊗n (up to global phase).
  AppendMarkedStateFlip(circuit, 0);
  for (int q = 0; q < n; ++q) circuit.H(q);
}

Result<Circuit> GroverCircuit(int num_qubits,
                              const std::vector<uint64_t>& marked,
                              int iterations) {
  if (num_qubits < 1 || num_qubits > 24) {
    return Status::InvalidArgument(
        StrCat("num_qubits must be in [1, 24], got ", num_qubits));
  }
  if (marked.empty()) {
    return Status::InvalidArgument("need at least one marked state");
  }
  const uint64_t dim = uint64_t{1} << num_qubits;
  for (uint64_t m : marked) {
    if (m >= dim) {
      return Status::OutOfRange(StrCat("marked index ", m, " >= ", dim));
    }
  }
  if (iterations < 0) {
    return Status::InvalidArgument("iterations must be non-negative");
  }
  Circuit c(num_qubits);
  for (int q = 0; q < num_qubits; ++q) c.H(q);
  for (int it = 0; it < iterations; ++it) {
    AppendPhaseOracle(c, marked);
    AppendDiffusion(c);
  }
  return c;
}

int OptimalGroverIterations(int num_qubits, int num_marked) {
  QDB_CHECK_GE(num_qubits, 1);
  QDB_CHECK_GE(num_marked, 1);
  const double n = static_cast<double>(uint64_t{1} << num_qubits);
  const int k = static_cast<int>(
      std::floor(M_PI / 4.0 * std::sqrt(n / num_marked)));
  return std::max(k, 1);
}

Result<double> GroverSuccessProbability(int num_qubits,
                                        const std::vector<uint64_t>& marked,
                                        int iterations) {
  QDB_ASSIGN_OR_RETURN(Circuit c,
                       GroverCircuit(num_qubits, marked, iterations));
  StateVectorSimulator sim;
  QDB_ASSIGN_OR_RETURN(StateVector state, sim.Run(c));
  double p = 0.0;
  for (uint64_t m : marked) p += state.Probability(m);
  return p;
}

Result<GroverResult> GroverSearch(int num_qubits,
                                  const std::vector<uint64_t>& marked,
                                  Rng& rng, int iterations) {
  const int iters = iterations >= 0
                        ? iterations
                        : OptimalGroverIterations(
                              num_qubits, static_cast<int>(marked.size()));
  QDB_ASSIGN_OR_RETURN(Circuit c, GroverCircuit(num_qubits, marked, iters));
  StateVectorSimulator sim;
  QDB_ASSIGN_OR_RETURN(StateVector state, sim.Run(c));
  GroverResult result;
  result.iterations = iters;
  result.measured = state.SampleOnce(rng);
  result.found = std::find(marked.begin(), marked.end(), result.measured) !=
                 marked.end();
  return result;
}

}  // namespace qdb
