#include "sim/density_simulator.h"

#include "common/strings.h"

namespace qdb {

Result<DensityMatrix> DensitySimulator::Run(const Circuit& circuit,
                                            const DVector& params) const {
  DensityMatrix rho(circuit.num_qubits());
  QDB_RETURN_IF_ERROR(RunInPlace(circuit, rho, params));
  return rho;
}

Status DensitySimulator::RunInPlace(const Circuit& circuit, DensityMatrix& rho,
                                    const DVector& params) const {
  if (rho.num_qubits() != circuit.num_qubits()) {
    return Status::InvalidArgument(
        StrCat("state has ", rho.num_qubits(), " qubits but circuit has ",
               circuit.num_qubits()));
  }
  if (static_cast<int>(params.size()) < circuit.num_parameters()) {
    return Status::InvalidArgument(
        StrCat("circuit references ", circuit.num_parameters(),
               " parameters but only ", params.size(), " were bound"));
  }
  for (size_t i = 0; i < circuit.gates().size(); ++i) {
    const Gate& gate = circuit.gates()[i];
    DVector angles = circuit.EvaluateAngles(i, params);
    QDB_RETURN_IF_ERROR(ApplyGateWithNoise(gate, angles, rho));
  }
  return Status::OK();
}

Status DensitySimulator::ApplyGateWithNoise(const Gate& gate,
                                            const DVector& angles,
                                            DensityMatrix& rho) const {
  switch (gate.type) {
    case GateType::kMCX: {
      std::vector<int> controls(gate.qubits.begin(), gate.qubits.end() - 1);
      rho.ApplyMCX(controls, gate.qubits.back());
      break;
    }
    case GateType::kMCZ: {
      std::vector<int> controls(gate.qubits.begin(), gate.qubits.end() - 1);
      rho.ApplyMCZ(controls, gate.qubits.back());
      break;
    }
    default:
      rho.ApplyUnitary(gate.qubits, GateMatrix(gate.type, angles));
      break;
  }
  const auto& channels =
      gate.qubits.size() == 1 ? noise_.after_1q : noise_.after_2q;
  for (const auto& channel : channels) {
    if (channel.num_qubits() != 1) {
      return Status::Unimplemented(
          "NoiseModel currently supports only 1-qubit attached channels");
    }
    for (int q : gate.qubits) {
      rho.ApplyKraus({q}, channel.operators());
    }
  }
  return Status::OK();
}

}  // namespace qdb
