// Tests for the sharded serving runtime: deterministic shard routing,
// per-shard queue depths and health, work-stealing dispatch (whole
// coalescible batches, per-stream FIFO order intact), per-tenant
// token-bucket quotas (deterministic refill via an injected clock, the
// quota_rejected terminal bucket, quota/breaker isolation), and the stats
// identity under concurrent multi-shard load. Runs under TSan in tier1.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/strings.h"
#include "serve/inference_server.h"
#include "serve/model_artifact.h"
#include "serve/model_registry.h"
#include "serve/servable.h"
#include "serve/tenant_quota.h"
#include "variational/ansatz.h"

namespace qdb {
namespace serve {
namespace {

// A hand-built angle-encoded classifier artifact (no training needed).
ModelArtifact TinyVqcArtifact(const std::string& name) {
  ModelArtifact a;
  a.type = ModelType::kVqcClassifier;
  a.name = name;
  a.num_features = 2;
  a.encoding = VqcEncoding::kAngle;
  a.ansatz_layers = 1;
  a.entanglement = Entanglement::kLinear;
  a.feature_scale = 0.8;
  const int count =
      RealAmplitudesParamCount(a.num_features, a.ansatz_layers);
  for (int i = 0; i < count; ++i) {
    a.params.push_back(0.3 + 0.17 * static_cast<double>(i));
  }
  return a;
}

InferenceRequest Request(const std::string& model, double x0, double x1,
                         const std::string& tenant = "") {
  InferenceRequest request;
  request.model = model;
  request.input = {x0, x1};
  request.tenant = tenant;
  return request;
}

/// Model names hashing to `count` distinct shards of a `num_shards`-way
/// server, found through the public routing function.
std::vector<std::string> NamesOnDistinctShards(size_t num_shards,
                                               size_t count) {
  std::vector<std::string> names;
  std::set<size_t> used;
  for (int candidate = 0; names.size() < count; ++candidate) {
    const std::string name = StrCat("shard-model-", candidate);
    const size_t shard = InferenceServer::ShardFor(name, 1, num_shards);
    if (used.insert(shard).second) names.push_back(name);
  }
  return names;
}

// ---- Tenant token buckets ---------------------------------------------------

TEST(TenantQuotaTest, RefillIsDeterministicUnderInjectedClock) {
  int64_t now_us = 0;
  TenantQuotaOptions options;
  options.default_spec.rate_per_s = 10.0;  // One token per 100ms.
  options.default_spec.burst = 2.0;
  TenantQuotaManager quotas(options, [&now_us] { return now_us; });

  // A fresh bucket starts full: exactly `burst` admissions, then empty.
  EXPECT_TRUE(quotas.TryAcquire("t"));
  EXPECT_TRUE(quotas.TryAcquire("t"));
  EXPECT_FALSE(quotas.TryAcquire("t"));

  // 50ms: half a token — still rejected.
  now_us += 50'000;
  EXPECT_FALSE(quotas.TryAcquire("t"));
  // +100ms more: ~1.5 tokens accrued (comfortably past 1.0 — refill math
  // is floating point, so the test never sits on the exact boundary),
  // spendable once.
  now_us += 100'000;
  EXPECT_TRUE(quotas.TryAcquire("t"));
  EXPECT_FALSE(quotas.TryAcquire("t"));

  // A long sleep clamps at burst, not unbounded accumulation.
  now_us += 10'000'000;
  EXPECT_TRUE(quotas.TryAcquire("t"));
  EXPECT_TRUE(quotas.TryAcquire("t"));
  EXPECT_FALSE(quotas.TryAcquire("t"));

  const auto states = quotas.Snapshot();
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states[0].tenant, "t");
  EXPECT_EQ(states[0].admitted, 5);
  EXPECT_EQ(states[0].rejected, 4);
}

TEST(TenantQuotaTest, UnmeteredAndPerTenantSpecs) {
  int64_t now_us = 0;
  TenantQuotaOptions options;
  options.default_spec.rate_per_s = 0.0;  // Default-open: unmetered.
  options.per_tenant["noisy"] = {5.0, 1.0};
  TenantQuotaManager quotas(options, [&now_us] { return now_us; });

  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(quotas.TryAcquire("anyone"));
  }
  EXPECT_TRUE(quotas.TryAcquire("noisy"));   // Burst of 1.
  EXPECT_FALSE(quotas.TryAcquire("noisy"));  // Empty until refill.
  now_us += 400'000;  // 2 tokens at 5/s, clamped to the burst of 1.
  EXPECT_TRUE(quotas.TryAcquire("noisy"));
  EXPECT_EQ(quotas.tenant_count(), 2u);
}

TEST(TenantQuotaTest, TenantCardinalityCapSharesOverflowBucket) {
  int64_t now_us = 0;
  TenantQuotaOptions options;
  options.default_spec.rate_per_s = 1.0;
  options.default_spec.burst = 1.0;
  options.max_tenants = 2;
  TenantQuotaManager quotas(options, [&now_us] { return now_us; });

  EXPECT_TRUE(quotas.TryAcquire("a"));
  EXPECT_TRUE(quotas.TryAcquire("b"));
  // Tenants past the cap share one overflow bucket: the first stranger
  // drains its single token, the next stranger is rejected even though it
  // has never been seen before.
  EXPECT_TRUE(quotas.TryAcquire("stranger-1"));
  EXPECT_FALSE(quotas.TryAcquire("stranger-2"));
  EXPECT_EQ(quotas.tenant_count(), 2u);  // Overflow does not count.

  bool saw_overflow = false;
  for (const auto& state : quotas.Snapshot()) {
    saw_overflow |= state.tenant == TenantQuotaManager::kOverflowTenant;
  }
  EXPECT_TRUE(saw_overflow);
}

// ---- Shard routing ----------------------------------------------------------

TEST(ShardRoutingTest, DeterministicAndVersionSensitive) {
  // Same (model, version) → same shard, every call.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(InferenceServer::ShardFor("m", 1, 8),
              InferenceServer::ShardFor("m", 1, 8));
  }
  // Single shard degenerates to 0 without hashing.
  EXPECT_EQ(InferenceServer::ShardFor("anything", 3, 1), 0u);
  // Distinct models spread: at least half the shards of an 8-way server
  // see traffic from 64 distinct names (FNV-1a would have to be badly
  // broken to fail this).
  std::set<size_t> hit;
  for (int i = 0; i < 64; ++i) {
    hit.insert(InferenceServer::ShardFor(StrCat("model-", i), 1, 8));
  }
  EXPECT_GE(hit.size(), 4u);
}

// ---- Sharded server ---------------------------------------------------------

class ServeScaleTest : public ::testing::Test {
 protected:
  void Register(const std::string& name) {
    auto servable = registry_.Register(TinyVqcArtifact(name));
    ASSERT_TRUE(servable.ok()) << servable.status();
  }

  ModelRegistry registry_;
};

TEST_F(ServeScaleTest, QueueDepthReportsSumAndMaxAcrossShards) {
  // Two models on distinct shards of a 4-shard server that is never
  // started: submissions sit in their shard queues where depth accounting
  // is observable.
  const auto names = NamesOnDistinctShards(4, 2);
  Register(names[0]);
  Register(names[1]);
  ServerOptions opts;
  opts.num_shards = 4;
  opts.result_cache_capacity = 0;
  InferenceServer server(registry_, opts);

  std::vector<std::future<Result<InferenceResponse>>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(server.Submit(Request(names[0], 0.1 * i, 0.2)));
  }
  futures.push_back(server.Submit(Request(names[1], 0.5, 0.6)));

  EXPECT_EQ(server.queue_depth(), 4u);      // Sum across shards.
  EXPECT_EQ(server.max_shard_depth(), 3u);  // The deepest single shard.
  size_t total = 0, deepest = 0, nonzero = 0;
  for (size_t depth : server.shard_depths()) {
    total += depth;
    deepest = std::max(deepest, depth);
    nonzero += depth > 0 ? 1 : 0;
  }
  EXPECT_EQ(total, 4u);
  EXPECT_EQ(deepest, 3u);
  EXPECT_EQ(nonzero, 2u);  // Exactly the two routed shards.

  server.Shutdown();  // Orphans resolve as rejected.
  for (auto& f : futures) EXPECT_FALSE(f.get().ok());
}

TEST_F(ServeScaleTest, HealthzDegradesWhenOneShardIsFull) {
  // A 4-shard server whose ONLY dispatcher camps on shard 0 with a very
  // long steal poll: filling a model's shard elsewhere is deterministic
  // because nothing drains it within the poll window. Healthz must flip
  // on that single full shard even though the total backlog (2 of 8)
  // looks fine.
  std::string off_home;
  for (int candidate = 0;; ++candidate) {
    off_home = StrCat("off-home-", candidate);
    if (InferenceServer::ShardFor(off_home, 1, 4) != 0) break;
  }
  Register(off_home);
  ServerOptions opts;
  opts.num_shards = 4;
  opts.num_dispatchers = 1;       // Home shard 0 only.
  opts.steal_poll_us = 60'000'000;  // Steals effectively off until drain.
  opts.queue_capacity = 8;        // ceil(8 / 4) = 2 per shard.
  opts.result_cache_capacity = 0;
  opts.enable_slo = false;
  InferenceServer server(registry_, opts);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.Healthz().ok());

  auto f1 = server.Submit(Request(off_home, 0.1, 0.2));
  auto f2 = server.Submit(Request(off_home, 0.3, 0.4));
  const Status health = server.Healthz();
  ASSERT_FALSE(health.ok());
  EXPECT_EQ(health.code(), StatusCode::kUnavailable);
  EXPECT_NE(health.message().find("shard"), std::string::npos) << health;
  EXPECT_NE(health.message().find("at capacity"), std::string::npos);

  // The third submission overflows the shard and fails fast, naming the
  // *shard* bound rather than the global capacity.
  auto f3 = server.Submit(Request(off_home, 0.5, 0.6));
  ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const auto overflow = f3.get();
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(overflow.status().message().find("shard"), std::string::npos)
      << overflow.status();

  // Shutdown's drain path scans every shard regardless of the steal poll,
  // so the two queued requests still complete.
  server.Shutdown();
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f2.get().ok());
  const auto stats = server.stats();
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.fifo_violations, 0);
}

TEST_F(ServeScaleTest, UnstartedFullShardReportsShardCapacityAndHealth) {
  const auto names = NamesOnDistinctShards(4, 1);
  Register(names[0]);
  ServerOptions opts;
  opts.num_shards = 4;
  opts.queue_capacity = 8;  // 2 per shard.
  opts.result_cache_capacity = 0;
  InferenceServer server(registry_, opts);
  // Not started: submissions queue, the third into one shard fails fast.
  auto f1 = server.Submit(Request(names[0], 0.1, 0.2));
  auto f2 = server.Submit(Request(names[0], 0.3, 0.4));
  auto f3 = server.Submit(Request(names[0], 0.5, 0.6));
  ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const auto overflow = f3.get();
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(overflow.status().message().find("shard"), std::string::npos)
      << overflow.status();
  EXPECT_EQ(server.max_shard_depth(), 2u);
  // Statusz renders the per-shard ladder.
  const std::string statusz = server.Statusz();
  EXPECT_NE(statusz.find("shard 0"), std::string::npos) << statusz;
  EXPECT_NE(statusz.find("max_shard_depth"), std::string::npos);
  server.Shutdown();
  (void)f1.get();
  (void)f2.get();
}

TEST_F(ServeScaleTest, WorkStealingDrainsShardsWithoutHomeDispatchers) {
  // 4 shards, ONE dispatcher (home shard 0): every model living on shards
  // 1–3 is served exclusively by steals. All requests must complete and
  // the per-stream FIFO audit must stay clean.
  const auto names = NamesOnDistinctShards(4, 4);
  for (const auto& name : names) Register(name);
  ServerOptions opts;
  opts.num_shards = 4;
  opts.num_dispatchers = 1;
  opts.steal_poll_us = 100;
  opts.max_wait_us = 100;
  opts.result_cache_capacity = 0;
  opts.enable_slo = false;
  InferenceServer server(registry_, opts);
  ASSERT_TRUE(server.Start().ok());

  std::vector<std::future<Result<InferenceResponse>>> futures;
  for (int round = 0; round < 8; ++round) {
    for (const auto& name : names) {
      futures.push_back(
          server.Submit(Request(name, 0.05 * round, 0.3)));
    }
  }
  int ok_count = 0;
  for (auto& f : futures) ok_count += f.get().ok() ? 1 : 0;
  const auto stats = server.stats();
  server.Shutdown();

  EXPECT_EQ(ok_count, 32);
  EXPECT_EQ(stats.completed, 32);
  // Three shards have no home dispatcher; their traffic can only have
  // arrived via steals.
  EXPECT_GT(stats.steals, 0);
  EXPECT_EQ(stats.fifo_violations, 0);
}

TEST_F(ServeScaleTest, ConcurrentMultiShardLoadKeepsStatsIdentityAndFifo) {
  // The TSan-relevant stress: many client threads, models on every shard,
  // quotas on (some rejections), several dispatchers stealing. Afterwards
  // every submission must land in exactly one terminal bucket and the
  // FIFO audit must be clean.
  const auto names = NamesOnDistinctShards(4, 4);
  for (const auto& name : names) Register(name);
  ServerOptions opts;
  opts.num_shards = 4;
  opts.num_dispatchers = 4;
  opts.steal_poll_us = 50;
  opts.max_wait_us = 100;
  opts.queue_capacity = 64;
  opts.result_cache_capacity = 0;
  opts.enable_slo = false;
  opts.enable_quotas = true;
  opts.quota.default_spec.rate_per_s = 0.0;  // Most tenants unmetered…
  opts.quota.per_tenant["throttled"] = {1.0, 2.0};  // …one is squeezed.
  InferenceServer server(registry_, opts);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 24;
  std::atomic<int> ok_count{0}, quota_rejected{0}, other{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string tenant =
            t == 0 ? "throttled" : StrCat("tenant-", t);
        auto result = server
                          .Submit(Request(names[(t + i) % names.size()],
                                          0.01 * i, 0.4, tenant))
                          .get();
        if (result.ok()) {
          ok_count.fetch_add(1);
        } else if (result.status().code() ==
                   StatusCode::kResourceExhausted) {
          quota_rejected.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto stats = server.stats();
  server.Shutdown();

  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  EXPECT_EQ(stats.submitted,
            stats.completed + stats.cache_hits + stats.degraded +
                stats.rejected + stats.quota_rejected + stats.expired +
                stats.failed)
      << "every request must land in exactly one terminal bucket";
  EXPECT_EQ(stats.fifo_violations, 0);
  // The throttled tenant (burst 2 + ~0 refill over the test) must have
  // been shed at least once, and client-observed outcomes must agree with
  // server-side tallies.
  EXPECT_GT(stats.quota_rejected, 0);
  EXPECT_EQ(stats.quota_rejected, quota_rejected.load());
  EXPECT_EQ(stats.completed + stats.cache_hits + stats.degraded,
            ok_count.load());
}

TEST_F(ServeScaleTest, QuotaRejectionsNeverTouchBreakers) {
  Register("quota-iso");
  ServerOptions opts;
  opts.num_shards = 2;
  opts.enable_quotas = true;
  opts.quota.default_spec.rate_per_s = 0.001;  // Effectively no refill.
  opts.quota.default_spec.burst = 1.0;
  opts.result_cache_capacity = 0;
  InferenceServer server(registry_, opts);
  ASSERT_TRUE(server.Start().ok());

  // One admission spends the only token (and lazily creates the breaker);
  // the storm after it is shed by quota, before the breaker sees anything.
  ASSERT_TRUE(server.Submit(Request("quota-iso", 0.1, 0.2, "t")).get().ok());
  const auto* breaker = server.breaker("quota-iso", 1);
  ASSERT_NE(breaker, nullptr);
  const auto before = breaker->stats();
  for (int i = 0; i < 50; ++i) {
    auto result = server.Submit(Request("quota-iso", 0.1, 0.2, "t")).get();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  }
  const auto after = breaker->stats();
  server.Shutdown();
  // The breaker neither allowed nor shed nor recorded anything for the
  // quota storm: quota rejections are invisible to it.
  EXPECT_EQ(after.allowed, before.allowed);
  EXPECT_EQ(after.shed, before.shed);
  const auto stats = server.stats();
  EXPECT_EQ(stats.quota_rejected, 50);
  EXPECT_EQ(stats.rejected, 0);
}

TEST_F(ServeScaleTest, StatuszReportsTenantBuckets) {
  Register("statusz-model");
  ServerOptions opts;
  opts.num_shards = 2;
  opts.enable_quotas = true;
  opts.quota.default_spec.rate_per_s = 100.0;
  opts.quota.default_spec.burst = 8.0;
  InferenceServer server(registry_, opts);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(
      server.Submit(Request("statusz-model", 0.1, 0.2, "acme")).get().ok());
  const std::string statusz = server.Statusz();
  EXPECT_NE(statusz.find("tenants: 1"), std::string::npos) << statusz;
  EXPECT_NE(statusz.find("acme"), std::string::npos);
  EXPECT_NE(statusz.find("quota_rejected=0"), std::string::npos);
  server.Shutdown();
}

TEST_F(ServeScaleTest, SingleShardMatchesLegacyBehavior) {
  // num_shards = 1 (the default) must behave exactly like the pre-sharding
  // server: same capacity bound, same overflow status message semantics,
  // no steals ever.
  Register("legacy");
  ServerOptions opts;
  opts.queue_capacity = 2;
  opts.result_cache_capacity = 0;
  InferenceServer server(registry_, opts);  // Never started.
  auto f1 = server.Submit(Request("legacy", 0.1, 0.2));
  auto f2 = server.Submit(Request("legacy", 0.3, 0.4));
  auto f3 = server.Submit(Request("legacy", 0.5, 0.6));
  auto overflow = f3.get();
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(server.queue_depth(), 2u);
  EXPECT_EQ(server.max_shard_depth(), 2u);
  EXPECT_EQ(server.shard_depths().size(), 1u);
  server.Shutdown();
  (void)f1.get();
  (void)f2.get();
  const auto stats = server.stats();
  EXPECT_EQ(stats.steals, 0);
  EXPECT_EQ(stats.fifo_violations, 0);
}

}  // namespace
}  // namespace serve
}  // namespace qdb
