// E6 — QAOA on MaxCut: approximation ratio vs depth.
//
// Regenerates the canonical QAOA figure: approximation ratio (expected
// cut / optimal cut, and best-sampled cut / optimal cut) on Erdős–Rényi
// and ring graphs as the number of layers p grows, with the classical
// greedy cut as the baseline. Expected shape: the ratio increases
// monotonically with p (≈0.69 at p=1 on 3-regular-like instances, → 1 for
// small graphs by p≈3–5), and the best sampled cut reaches the optimum
// before the expectation does.

#include <benchmark/benchmark.h>

#include "ops/graph_hamiltonians.h"
#include "variational/qaoa.h"

namespace qdb {
namespace {

enum GraphKind { kRing = 0, kErdosRenyi = 1 };

WeightedGraph MakeGraph(int kind, int n, uint64_t seed) {
  if (kind == kRing) return RingGraph(n);
  Rng rng(seed);
  return ErdosRenyiGraph(n, 0.5, rng);
}

void BM_QaoaMaxCut(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const int p = static_cast<int>(state.range(2));
  WeightedGraph graph = MakeGraph(kind, n, 31);
  const double optimal = MaxCutBruteForce(graph);
  const double greedy = MaxCutGreedy(graph);
  IsingModel ising = MaxCutIsing(graph);

  double expected_ratio = 0.0, best_ratio = 0.0;
  long evals = 0;
  for (auto _ : state) {
    Qaoa qaoa(ising, p);
    QaoaOptions opts;
    opts.restarts = 4;
    opts.seed = 7 + p;
    opts.sample_shots = 512;
    opts.nelder_mead.max_iterations = 350;
    auto result = qaoa.Optimize(opts);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    const double expected_cut =
        (graph.TotalWeight() - result.value().expected_energy) / 2.0;
    const double best_cut = graph.CutValue(result.value().best_spins);
    expected_ratio = expected_cut / optimal;
    best_ratio = best_cut / optimal;
    evals = result.value().circuit_evaluations;
  }
  state.SetLabel(kind == kRing ? "ring" : "erdos-renyi");
  state.counters["n"] = n;
  state.counters["p"] = p;
  state.counters["expected_ratio"] = expected_ratio;
  state.counters["best_sample_ratio"] = best_ratio;
  state.counters["greedy_ratio"] = greedy / optimal;
  state.counters["circuit_evals"] = static_cast<double>(evals);
}

BENCHMARK(BM_QaoaMaxCut)
    ->ArgsProduct({{kRing}, {8}, {1, 2, 3, 4, 5}})
    ->ArgsProduct({{kErdosRenyi}, {8}, {1, 2, 3, 4, 5}})
    ->ArgsProduct({{kErdosRenyi}, {6, 10, 12}, {2}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace
}  // namespace qdb

BENCHMARK_MAIN();
