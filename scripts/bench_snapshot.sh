#!/usr/bin/env bash
# Benchmark snapshot: runs the simulator-stack benchmarks that exercise the
# ThreadPool (E1 simulator, E3 quantum kernel, E4 gradients) and writes one
# JSON file per suite at the repo root, for before/after comparison across
# PRs and QDB_THREADS settings:
#
#   ./scripts/bench_snapshot.sh                 # default pool width
#   QDB_THREADS=1 ./scripts/bench_snapshot.sh   # serial baseline
#
# Output: BENCH_simulator.json, BENCH_qkernel.json, BENCH_gradients.json.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . -DQDB_BUILD_BENCHMARKS=ON >/dev/null
cmake --build build -j --target bench_simulator --target bench_qkernel \
  --target bench_gradients

for suite in simulator qkernel gradients; do
  echo "== bench_${suite} -> BENCH_${suite}.json =="
  "./build/bench/bench_${suite}" \
    --benchmark_format=json \
    --benchmark_out="BENCH_${suite}.json" \
    --benchmark_out_format=json
done

echo
echo "snapshot written: BENCH_simulator.json BENCH_qkernel.json BENCH_gradients.json"
