// E2 — Variational quantum classification vs classical baselines.
//
// Regenerates the accuracy table of the tutorial's VQC demonstration:
// train/test accuracy of the variational classifier against logistic
// regression (linear baseline) and an RBF SVM (kernel baseline) on moons,
// circles, and XOR. Expected shape: logistic regression fails on the
// non-linearly-separable sets; VQC with re-uploading and the RBF SVM both
// solve them, with the SVM slightly ahead (it is a convex method).

#include <benchmark/benchmark.h>

#include <cmath>

#include "classical/logistic.h"
#include "classical/metrics.h"
#include "classical/svm.h"
#include "variational/vqc.h"

namespace qdb {
namespace {

enum DatasetKind { kMoons = 0, kCircles = 1, kXor = 2 };

const char* DatasetName(int kind) {
  switch (kind) {
    case kMoons: return "moons";
    case kCircles: return "circles";
    default: return "xor";
  }
}

Dataset MakeData(int kind, int samples, Rng& rng) {
  switch (kind) {
    case kMoons: return MakeMoons(samples, 0.12, rng);
    case kCircles: return MakeCircles(samples, 0.08, 0.5, rng);
    default: return MakeXor(samples, 0.15, rng);
  }
}

struct SplitData {
  Dataset train;
  Dataset test;
};

SplitData PrepareSplit(int kind, uint64_t seed) {
  Rng rng(seed);
  Dataset all = MakeData(kind, 48, rng);
  auto [train, test] = TrainTestSplit(all, 0.25, rng);
  MinMaxScale(train, test, 0.0, M_PI);
  MinMaxScale(train, train, 0.0, M_PI);
  return {std::move(train), std::move(test)};
}

template <typename PredictFn>
double AccuracyOf(const Dataset& data, PredictFn&& predict) {
  std::vector<int> preds;
  preds.reserve(data.size());
  for (const auto& x : data.features) preds.push_back(predict(x));
  return Accuracy(data.labels, preds);
}

void BM_VqcClassifier(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  SplitData data = PrepareSplit(kind, 7);
  VqcOptions opts;
  opts.encoding = VqcEncoding::kReuploading;
  opts.ansatz_layers = 3;
  opts.adam.max_iterations = 100;
  opts.adam.learning_rate = 0.15;
  opts.seed = 5;

  double train_acc = 0.0, test_acc = 0.0;
  long evals = 0;
  for (auto _ : state) {
    auto model = VqcClassifier::Train(data.train, opts);
    if (!model.ok()) {
      state.SkipWithError(model.status().ToString().c_str());
      return;
    }
    train_acc = AccuracyOf(data.train, [&](const DVector& x) {
      return model.value().Predict(x).ValueOrDie();
    });
    test_acc = AccuracyOf(data.test, [&](const DVector& x) {
      return model.value().Predict(x).ValueOrDie();
    });
    evals = model.value().circuit_evaluations();
  }
  state.SetLabel(DatasetName(kind));
  state.counters["train_acc"] = train_acc;
  state.counters["test_acc"] = test_acc;
  state.counters["circuit_evals"] = static_cast<double>(evals);
}

BENCHMARK(BM_VqcClassifier)
    ->Arg(kMoons)
    ->Arg(kCircles)
    ->Arg(kXor)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

void BM_LogisticBaseline(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  SplitData data = PrepareSplit(kind, 7);
  double train_acc = 0.0, test_acc = 0.0;
  for (auto _ : state) {
    auto model = LogisticRegression::Train(data.train);
    if (!model.ok()) {
      state.SkipWithError(model.status().ToString().c_str());
      return;
    }
    train_acc = AccuracyOf(data.train, [&](const DVector& x) {
      return model.value().Predict(x);
    });
    test_acc = AccuracyOf(data.test, [&](const DVector& x) {
      return model.value().Predict(x);
    });
  }
  state.SetLabel(DatasetName(kind));
  state.counters["train_acc"] = train_acc;
  state.counters["test_acc"] = test_acc;
}

BENCHMARK(BM_LogisticBaseline)
    ->Arg(kMoons)
    ->Arg(kCircles)
    ->Arg(kXor)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_RbfSvmBaseline(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  SplitData data = PrepareSplit(kind, 7);
  SvmOptions opts;
  opts.kernel = SvmKernel::kRbf;
  opts.gamma = 2.0;
  opts.c = 10.0;
  double train_acc = 0.0, test_acc = 0.0;
  for (auto _ : state) {
    auto model = Svm::Train(data.train, opts);
    if (!model.ok()) {
      state.SkipWithError(model.status().ToString().c_str());
      return;
    }
    train_acc = AccuracyOf(data.train, [&](const DVector& x) {
      return model.value().Predict(x).ValueOrDie();
    });
    test_acc = AccuracyOf(data.test, [&](const DVector& x) {
      return model.value().Predict(x).ValueOrDie();
    });
  }
  state.SetLabel(DatasetName(kind));
  state.counters["train_acc"] = train_acc;
  state.counters["test_acc"] = test_acc;
}

BENCHMARK(BM_RbfSvmBaseline)
    ->Arg(kMoons)
    ->Arg(kCircles)
    ->Arg(kXor)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qdb

BENCHMARK_MAIN();
