#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace qdb {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& lane : state_) lane = SplitMix64(s);
  // All-zero state is a fixed point of xoshiro; SplitMix64 cannot produce
  // four zero outputs in a row, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9E3779B97F4A7C15ull;
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // Top 53 bits → [0, 1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  QDB_CHECK_GT(n, 0u);
  // Lemire's multiply-shift with rejection for exact uniformity.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t threshold = -n % n;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  QDB_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] avoids log(0).
  double u1 = 1.0 - Uniform();
  double u2 = Uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

std::vector<double> Rng::UniformVector(size_t count, double lo, double hi) {
  std::vector<double> out(count);
  for (auto& v : out) v = Uniform(lo, hi);
  return out;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  QDB_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    QDB_CHECK_GE(w, 0.0);
    total += w;
  }
  QDB_CHECK_GT(total, 0.0);
  double target = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;  // Floating-point edge: fall to the last bin.
}

Rng Rng::Split() { return Rng(Next()); }

}  // namespace qdb
