#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/strings.h"

namespace qdb {
namespace {

/// Sum of squared magnitudes of strictly-upper-triangular entries.
double OffDiagonalNormSq(const Matrix& a) {
  double acc = 0.0;
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t j = i + 1; j < a.cols(); ++j) acc += std::norm(a(i, j));
  return acc;
}

/// Applies the complex Jacobi rotation J on the (p, q) plane to both the
/// working matrix (A ← J† A J) and the accumulated eigenvector matrix
/// (V ← V J). J is the identity except
///   J(p,p) = c, J(p,q) = s, J(q,p) = -s·e^{-iα}, J(q,q) = c·e^{-iα},
/// where α = arg A(p,q); the phase factor makes the pivot real so the
/// classical real-rotation angle formulas apply.
void Rotate(Matrix& a, Matrix& v, size_t p, size_t q) {
  const Complex apq = a(p, q);
  const double mag = std::abs(apq);
  if (mag == 0.0) return;
  const Complex phase = apq / mag;  // e^{iα}
  const double app = a(p, p).real();
  const double aqq = a(q, q).real();

  const double tau = (aqq - app) / (2.0 * mag);
  const double t = (tau >= 0.0 ? 1.0 : -1.0) /
                   (std::abs(tau) + std::sqrt(1.0 + tau * tau));
  const double c = 1.0 / std::sqrt(1.0 + t * t);
  const double s = t * c;

  const Complex jqp = -s * std::conj(phase);
  const Complex jqq = c * std::conj(phase);
  const size_t n = a.rows();

  // Column update: M[:,p] ← M[:,p]·c + M[:,q]·jqp ; M[:,q] ← M[:,p]·s + M[:,q]·jqq.
  for (size_t i = 0; i < n; ++i) {
    const Complex aip = a(i, p);
    const Complex aiq = a(i, q);
    a(i, p) = aip * c + aiq * jqp;
    a(i, q) = aip * s + aiq * jqq;
  }
  // Row update with J†: row p ← c·row p + conj(jqp)·row q, etc.
  for (size_t j = 0; j < n; ++j) {
    const Complex apj = a(p, j);
    const Complex aqj = a(q, j);
    a(p, j) = c * apj + std::conj(jqp) * aqj;
    a(q, j) = s * apj + std::conj(jqq) * aqj;
  }
  // Enforce exact zero at the pivot and real diagonal to stop error creep.
  a(p, q) = Complex(0.0, 0.0);
  a(q, p) = Complex(0.0, 0.0);
  a(p, p) = Complex(a(p, p).real(), 0.0);
  a(q, q) = Complex(a(q, q).real(), 0.0);

  for (size_t i = 0; i < n; ++i) {
    const Complex vip = v(i, p);
    const Complex viq = v(i, q);
    v(i, p) = vip * c + viq * jqp;
    v(i, q) = vip * s + viq * jqq;
  }
}

}  // namespace

Result<EigenDecomposition> HermitianEigen(const Matrix& a, double tol,
                                          int max_sweeps) {
  if (a.rows() != a.cols() || a.rows() == 0) {
    return Status::InvalidArgument(
        StrCat("HermitianEigen requires a square non-empty matrix, got ",
               a.rows(), "x", a.cols()));
  }
  if (!a.IsHermitian(1e-9)) {
    return Status::InvalidArgument("HermitianEigen: matrix is not Hermitian");
  }
  const size_t n = a.rows();
  Matrix work = a;
  Matrix v = Matrix::Identity(n);

  bool converged = false;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (OffDiagonalNormSq(work) <= tol * tol) {
      converged = true;
      break;
    }
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        if (std::abs(work(p, q)) > tol / (n * n)) Rotate(work, v, p, q);
      }
    }
  }
  if (!converged && OffDiagonalNormSq(work) > tol * tol) {
    return Status::NotConverged(
        StrCat("Jacobi eigensolver did not converge in ", max_sweeps,
               " sweeps; off-diagonal norm ",
               std::sqrt(OffDiagonalNormSq(work))));
  }

  // Sort ascending and permute eigenvector columns to match.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t i, size_t j) {
    return work(i, i).real() < work(j, j).real();
  });

  EigenDecomposition out;
  out.eigenvalues.resize(n);
  out.eigenvectors = Matrix(n, n);
  for (size_t k = 0; k < n; ++k) {
    out.eigenvalues[k] = work(order[k], order[k]).real();
    for (size_t i = 0; i < n; ++i) out.eigenvectors(i, k) = v(i, order[k]);
  }
  return out;
}

Result<double> MinEigenvalue(const Matrix& a) {
  QDB_ASSIGN_OR_RETURN(EigenDecomposition decomp, HermitianEigen(a));
  return decomp.eigenvalues.front();
}

Result<bool> IsPositiveSemidefinite(const Matrix& a, double tol) {
  QDB_ASSIGN_OR_RETURN(double min_eig, MinEigenvalue(a));
  return min_eig >= -tol;
}

}  // namespace qdb
