/// \file density_matrix.h
/// \brief Mixed-state representation via the vectorization trick.
///
/// ρ (2^n x 2^n) is stored row-major as the amplitude vector of a 2n-qubit
/// StateVector: the first n "qubits" index rows, the last n index columns.
/// A unitary U on circuit qubits then acts as U on the row qubits and
/// conj(U) on the column qubits, so every StateVector gate kernel is reused
/// verbatim. The vector is not L2-normalized — Tr(ρ) = 1 is the invariant.

#ifndef QDB_SIM_DENSITY_MATRIX_H_
#define QDB_SIM_DENSITY_MATRIX_H_

#include <map>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "linalg/matrix.h"
#include "ops/pauli.h"
#include "sim/state_vector.h"

namespace qdb {

/// \brief An n-qubit density matrix with in-place gate and channel kernels.
class DensityMatrix {
 public:
  /// Initializes the pure state |0...0⟩⟨0...0|.
  explicit DensityMatrix(int num_qubits);

  /// Builds ρ = |ψ⟩⟨ψ| from a pure state.
  static DensityMatrix FromStateVector(const StateVector& psi);

  int num_qubits() const { return num_qubits_; }
  uint64_t dim() const { return uint64_t{1} << num_qubits_; }

  /// Entry ρ(row, col).
  Complex Element(uint64_t row, uint64_t col) const;

  /// Tr(ρ) — should be 1 for a valid state.
  double TraceValue() const;

  /// Tr(ρ²) ∈ (0, 1]; equals 1 exactly for pure states.
  double Purity() const;

  /// Diagonal of ρ: basis-state probabilities.
  DVector Probabilities() const;

  /// Probability that measuring `qubit` yields 1.
  double ProbabilityOfOne(int qubit) const;

  /// Tr(ρ P) for a Pauli string (real for valid states).
  double ExpectationOf(const PauliString& pauli) const;

  /// Tr(ρ H) for a Pauli-sum observable.
  double ExpectationOf(const PauliSum& observable) const;

  /// Applies a unitary gate's matrix on the given qubits: ρ → UρU†.
  void ApplyUnitary(const std::vector<int>& qubits, const Matrix& u);

  /// Applies a Kraus channel on the given qubits: ρ → Σ K ρ K†.
  void ApplyKraus(const std::vector<int>& qubits,
                  const std::vector<Matrix>& kraus_ops);

  /// Multi-controlled X/Z fast paths (real matrices: row/col sides match).
  void ApplyMCX(const std::vector<int>& controls, int target);
  void ApplyMCZ(const std::vector<int>& controls, int target);

  /// Samples `shots` measurement outcomes from the diagonal; applies a
  /// symmetric per-bit readout flip with probability `readout_flip`.
  std::map<uint64_t, int> SampleCounts(Rng& rng, int shots,
                                       double readout_flip = 0.0) const;

  /// Dense matrix copy (for tests and diagnostics).
  Matrix ToMatrix() const;

 private:
  /// Row-side qubit q of the circuit ↔ vectorized qubit q.
  /// Column-side ↔ vectorized qubit q + n.
  int num_qubits_;
  StateVector vec_;  ///< 2n-qubit vectorized ρ (unnormalized in L2).
};

}  // namespace qdb

#endif  // QDB_SIM_DENSITY_MATRIX_H_
