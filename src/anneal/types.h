/// \file types.h
/// \brief Shared result type for the Ising/QUBO solvers in src/anneal/.

#ifndef QDB_ANNEAL_TYPES_H_
#define QDB_ANNEAL_TYPES_H_

#include <cstdint>
#include <vector>

namespace qdb {

/// \brief Best configuration found by a heuristic or exact solver.
struct SolveResult {
  std::vector<int8_t> best_spins;  ///< Entries ±1.
  double best_energy = 0.0;        ///< Ising energy of best_spins.
  long sweeps = 0;                 ///< Sweeps / iterations performed.
  /// Move statistics for convergence diagnostics. A "move" is one proposed
  /// spin flip (or candidate flip, for tabu search); exhaustive enumeration
  /// proposes no moves and leaves both at zero.
  long moves_accepted = 0;
  long moves_rejected = 0;

  /// Fraction of proposed moves accepted over the whole run (0 if none).
  double acceptance_ratio() const {
    const long total = moves_accepted + moves_rejected;
    return total > 0 ? static_cast<double>(moves_accepted) / total : 0.0;
  }
};

}  // namespace qdb

#endif  // QDB_ANNEAL_TYPES_H_
