#include "sim/shot_estimator.h"

#include <cmath>

#include "circuit/circuit.h"
#include "sim/statevector_simulator.h"

namespace qdb {

void AppendMeasurementBasisChange(Circuit& circuit, const PauliString& pauli) {
  QDB_CHECK_EQ(circuit.num_qubits(), pauli.num_qubits());
  for (int q = 0; q < pauli.num_qubits(); ++q) {
    switch (pauli.op(q)) {
      case PauliOp::kI:
      case PauliOp::kZ:
        break;
      case PauliOp::kX:
        circuit.H(q);
        break;
      case PauliOp::kY:
        // Y = (S H)† Z (S H): measure Y by applying S† then H.
        circuit.Sdg(q);
        circuit.H(q);
        break;
    }
  }
}

Result<double> EstimatePauliExpectation(const StateVector& state,
                                        const PauliString& pauli, int shots,
                                        Rng& rng) {
  if (shots < 1) {
    return Status::InvalidArgument("shots must be >= 1");
  }
  if (pauli.num_qubits() != state.num_qubits()) {
    return Status::InvalidArgument("observable width mismatch");
  }
  if (pauli.Weight() == 0) return 1.0;  // ⟨I⟩ = 1 exactly.

  // Rotate a copy into the measurement basis.
  StateVector rotated = state;
  Circuit basis_change(state.num_qubits());
  AppendMeasurementBasisChange(basis_change, pauli);
  StateVectorSimulator sim;
  QDB_RETURN_IF_ERROR(sim.RunInPlace(basis_change, rotated));

  // Support mask: qubits where the string is non-identity.
  const int n = state.num_qubits();
  uint64_t support = 0;
  for (int q = 0; q < n; ++q) {
    if (pauli.op(q) != PauliOp::kI) {
      support |= uint64_t{1} << (n - 1 - q);
    }
  }
  auto counts = rotated.SampleCounts(rng, shots);
  long acc = 0;
  for (const auto& [outcome, count] : counts) {
    const int parity = __builtin_popcountll(outcome & support) & 1;
    acc += static_cast<long>(count) * (parity ? -1 : 1);
  }
  return static_cast<double>(acc) / shots;
}

std::vector<std::vector<size_t>> GroupQubitWiseCommuting(
    const PauliSum& observable) {
  const int n = observable.num_qubits();
  std::vector<std::vector<size_t>> groups;
  std::vector<PauliString> bases;  // The merged basis of each group.
  for (size_t t = 0; t < observable.terms().size(); ++t) {
    const PauliString& term = observable.terms()[t].pauli;
    if (term.Weight() == 0) continue;  // Identity: exact, no measurement.
    bool placed = false;
    for (size_t g = 0; g < groups.size() && !placed; ++g) {
      bool compatible = true;
      for (int q = 0; q < n && compatible; ++q) {
        const PauliOp a = term.op(q);
        const PauliOp b = bases[g].op(q);
        compatible = a == PauliOp::kI || b == PauliOp::kI || a == b;
      }
      if (compatible) {
        groups[g].push_back(t);
        for (int q = 0; q < n; ++q) {
          if (term.op(q) != PauliOp::kI) bases[g].set_op(q, term.op(q));
        }
        placed = true;
      }
    }
    if (!placed) {
      groups.push_back({t});
      bases.push_back(term);
    }
  }
  return groups;
}

Result<ShotEstimate> EstimateExpectationGrouped(const StateVector& state,
                                                const PauliSum& observable,
                                                int shots_per_group,
                                                Rng& rng) {
  if (shots_per_group < 2) {
    return Status::InvalidArgument("need at least 2 shots per group");
  }
  if (observable.num_qubits() != state.num_qubits()) {
    return Status::InvalidArgument("observable width mismatch");
  }
  const int n = state.num_qubits();
  ShotEstimate estimate;
  // Identity terms contribute exactly.
  for (const auto& term : observable.terms()) {
    if (term.pauli.Weight() == 0) estimate.value += term.coefficient;
  }

  double variance_sum = 0.0;
  StateVectorSimulator sim;
  for (const auto& group : GroupQubitWiseCommuting(observable)) {
    // Merge the group's basis and rotate once.
    PauliString basis(n);
    for (size_t t : group) {
      const PauliString& term = observable.terms()[t].pauli;
      for (int q = 0; q < n; ++q) {
        if (term.op(q) != PauliOp::kI) basis.set_op(q, term.op(q));
      }
    }
    StateVector rotated = state;
    Circuit change(n);
    AppendMeasurementBasisChange(change, basis);
    QDB_RETURN_IF_ERROR(sim.RunInPlace(change, rotated));
    auto counts = rotated.SampleCounts(rng, shots_per_group);
    estimate.total_shots += shots_per_group;

    for (size_t t : group) {
      const auto& term = observable.terms()[t];
      uint64_t support = 0;
      for (int q = 0; q < n; ++q) {
        if (term.pauli.op(q) != PauliOp::kI) {
          support |= uint64_t{1} << (n - 1 - q);
        }
      }
      long acc = 0;
      for (const auto& [outcome, count] : counts) {
        const int parity = __builtin_popcountll(outcome & support) & 1;
        acc += static_cast<long>(count) * (parity ? -1 : 1);
      }
      const double mean = static_cast<double>(acc) / shots_per_group;
      estimate.value += term.coefficient * mean;
      const double sample_var = std::max(0.0, 1.0 - mean * mean);
      variance_sum +=
          term.coefficient * term.coefficient * sample_var / shots_per_group;
    }
  }
  estimate.standard_error = std::sqrt(variance_sum);
  return estimate;
}

Result<ShotEstimate> EstimateExpectation(const StateVector& state,
                                         const PauliSum& observable,
                                         int shots_per_term, Rng& rng) {
  if (shots_per_term < 2) {
    return Status::InvalidArgument("need at least 2 shots per term");
  }
  if (observable.num_qubits() != state.num_qubits()) {
    return Status::InvalidArgument("observable width mismatch");
  }
  ShotEstimate estimate;
  double variance_sum = 0.0;
  for (const auto& term : observable.terms()) {
    if (term.pauli.Weight() == 0) {
      estimate.value += term.coefficient;
      continue;
    }
    QDB_ASSIGN_OR_RETURN(
        double mean,
        EstimatePauliExpectation(state, term.pauli, shots_per_term, rng));
    estimate.value += term.coefficient * mean;
    estimate.total_shots += shots_per_term;
    // ±1-valued samples: Var = 1 − mean²; standard error of the mean.
    const double sample_var = std::max(0.0, 1.0 - mean * mean);
    variance_sum +=
        term.coefficient * term.coefficient * sample_var / shots_per_term;
  }
  estimate.standard_error = std::sqrt(variance_sum);
  return estimate;
}

}  // namespace qdb
