/// \file grover.h
/// \brief Grover search over an unstructured key space — the "quantum
/// database search" primitive (E11), including circuit construction,
/// success-probability analysis, and sampled end-to-end search.

#ifndef QDB_ALGO_GROVER_H_
#define QDB_ALGO_GROVER_H_

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "common/result.h"
#include "common/rng.h"

namespace qdb {

/// \brief Appends a phase oracle flipping the sign of every |m⟩, m ∈ marked.
void AppendPhaseOracle(Circuit& circuit, const std::vector<uint64_t>& marked);

/// \brief Appends the Grover diffusion operator 2|s⟩⟨s| − I.
void AppendDiffusion(Circuit& circuit);

/// \brief Full Grover circuit: H⊗n, then `iterations` oracle+diffusion
/// rounds. All marked indices must be < 2^num_qubits.
Result<Circuit> GroverCircuit(int num_qubits,
                              const std::vector<uint64_t>& marked,
                              int iterations);

/// \brief ⌊(π/4)·√(N/M)⌋ — the optimal iteration count for M marked items
/// among N = 2^num_qubits (at least 1).
int OptimalGroverIterations(int num_qubits, int num_marked = 1);

/// \brief Exact probability that measuring after `iterations` rounds yields
/// a marked index (analysis of E11's success curve).
Result<double> GroverSuccessProbability(int num_qubits,
                                        const std::vector<uint64_t>& marked,
                                        int iterations);

/// \brief Outcome of a sampled Grover run.
struct GroverResult {
  uint64_t measured = 0;
  bool found = false;   ///< measured ∈ marked.
  int iterations = 0;
};

/// \brief End-to-end search: builds the circuit with the optimal iteration
/// count (or `iterations` if ≥ 0), runs it, and measures once.
Result<GroverResult> GroverSearch(int num_qubits,
                                  const std::vector<uint64_t>& marked,
                                  Rng& rng, int iterations = -1);

}  // namespace qdb

#endif  // QDB_ALGO_GROVER_H_
