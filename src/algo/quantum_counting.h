/// \file quantum_counting.h
/// \brief Quantum counting: amplitude estimation over the Grover operator,
/// i.e. quantum COUNT(*)/selectivity estimation for an oracle predicate —
/// the database-flavoured quadratic speedup (estimation error ~1/calls vs
/// the classical sampling ~1/√calls).

#ifndef QDB_ALGO_QUANTUM_COUNTING_H_
#define QDB_ALGO_QUANTUM_COUNTING_H_

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "common/result.h"
#include "common/rng.h"

namespace qdb {

/// \brief Builds the quantum-counting circuit: `precision_qubits` ancillas
/// running phase estimation on the Grover iterate G of the marked set over
/// an n-qubit uniform superposition. G's eigenphases ±2θ satisfy
/// sin²θ = M/N.
///
/// Controlled-G^(2^k) is realized by repetition of controlled-G, where the
/// control distributes onto the oracle/diffusion MCZ cores (conjugating
/// layers commute with the control).
Result<Circuit> QuantumCountingCircuit(int num_qubits,
                                       const std::vector<uint64_t>& marked,
                                       int precision_qubits);

/// \brief Outcome of a counting run.
struct CountEstimate {
  double estimated_count = 0.0;     ///< M̂ = N·sin²(π·y/2^t).
  double estimated_fraction = 0.0;  ///< M̂ / N (the predicate selectivity).
  uint64_t raw_reading = 0;         ///< Modal ancilla value y.
  long oracle_calls = 0;            ///< Total controlled-G applications.
};

/// \brief Runs quantum counting with `shots` samples and returns the modal
/// estimate. Error in the fraction is O(√(M/N)/2^t + 1/4^t).
Result<CountEstimate> EstimateMarkedCount(int num_qubits,
                                          const std::vector<uint64_t>& marked,
                                          int precision_qubits, int shots,
                                          Rng& rng);

/// \brief Classical baseline with the same oracle budget: draw `samples`
/// uniform keys, query the oracle for each, return the hit fraction.
double ClassicalSampledFraction(int num_qubits,
                                const std::vector<uint64_t>& marked,
                                int samples, Rng& rng);

}  // namespace qdb

#endif  // QDB_ALGO_QUANTUM_COUNTING_H_
