file(REMOVE_RECURSE
  "CMakeFiles/model_hamiltonians_test.dir/model_hamiltonians_test.cc.o"
  "CMakeFiles/model_hamiltonians_test.dir/model_hamiltonians_test.cc.o.d"
  "model_hamiltonians_test"
  "model_hamiltonians_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_hamiltonians_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
