/// \file retry.h
/// \brief Retry(policy, fn): exponential backoff with decorrelated jitter,
/// a retryable-StatusCode predicate, and deadline awareness.
///
/// Jitter is drawn from an explicit Rng seeded by the policy, so retry
/// schedules are deterministic for a fixed seed — chaos runs that combine
/// injected faults (fault/fault_injector.h) with retries replay bit-for-bit.
/// A deadline cuts the loop short *before* the attempt or sleep that cannot
/// finish in time: callers get kDeadlineExceeded immediately instead of
/// burning simulator work on a result nobody will wait for.

#ifndef QDB_COMMON_RETRY_H_
#define QDB_COMMON_RETRY_H_

#include <chrono>
#include <functional>
#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace qdb {

/// \brief Backoff/retry knobs. The defaults suit transient kUnavailable
/// failures from an overloaded or fault-injected backend.
struct RetryPolicy {
  /// Total attempts including the first (1 = no retry).
  int max_attempts = 4;
  long initial_backoff_us = 500;
  double backoff_multiplier = 2.0;
  long max_backoff_us = 50000;
  /// Decorrelated jitter (AWS style): each delay is uniform in
  /// [initial, prev * 3], capped at max. Off = pure exponential.
  bool decorrelated_jitter = true;
  /// Seed for the jitter stream when no Rng is supplied to Retry.
  uint64_t jitter_seed = 0x5EEDBACCull;
  /// Which failures are worth retrying; null means "kUnavailable only".
  std::function<bool(const Status&)> retryable;
  /// Sleep hook for tests (microseconds); null sleeps for real.
  std::function<void(long)> sleep_us;
  /// Operation label for dimensional retry metrics: when non-empty, every
  /// loop exit also lands in fault.retry.attempts{op="..."} (and retries /
  /// giveups / deadline cuts in fault.retry.outcomes{op,outcome}), so one
  /// noisy backend is attributable in the export.
  std::string op;

  bool IsRetryable(const Status& status) const;
};

/// \brief Deterministic backoff-delay sequence for one retry loop.
class Backoff {
 public:
  Backoff(const RetryPolicy& policy, Rng rng);

  /// Delay before the next attempt, advancing the jitter stream.
  long NextDelayUs();

 private:
  long initial_us_;
  long max_us_;
  double multiplier_;
  bool jitter_;
  long prev_us_ = 0;
  Rng rng_;
};

using RetryClock = std::chrono::steady_clock;

/// Runs fn(attempt) — attempt counts from 1 — until it returns OK, a
/// non-retryable status, max_attempts is exhausted, or `deadline` would be
/// crossed by the next backoff sleep (then kDeadlineExceeded, immediately).
/// Observes the fault.retry.attempts histogram on every exit.
Status Retry(const RetryPolicy& policy, Rng& rng,
             const std::function<Status(int)>& fn,
             RetryClock::time_point deadline = RetryClock::time_point::max());

/// Convenience overload: jitter Rng seeded from policy.jitter_seed.
Status Retry(const RetryPolicy& policy, const std::function<Status(int)>& fn,
             RetryClock::time_point deadline = RetryClock::time_point::max());

/// Result-returning variant: the value of the first successful attempt, or
/// the terminal status of the loop.
template <typename T>
Result<T> RetryResult(
    const RetryPolicy& policy, Rng& rng,
    const std::function<Result<T>(int)>& fn,
    RetryClock::time_point deadline = RetryClock::time_point::max()) {
  std::optional<T> value;
  Status final_status = Retry(
      policy, rng,
      [&](int attempt) {
        Result<T> result = fn(attempt);
        if (!result.ok()) return result.status();
        value = std::move(result).value();
        return Status::OK();
      },
      deadline);
  if (!final_status.ok()) return final_status;
  return std::move(*value);
}

template <typename T>
Result<T> RetryResult(
    const RetryPolicy& policy, const std::function<Result<T>(int)>& fn,
    RetryClock::time_point deadline = RetryClock::time_point::max()) {
  Rng rng(policy.jitter_seed);
  return RetryResult<T>(policy, rng, fn, deadline);
}

}  // namespace qdb

#endif  // QDB_COMMON_RETRY_H_
