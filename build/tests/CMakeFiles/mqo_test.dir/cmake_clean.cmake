file(REMOVE_RECURSE
  "CMakeFiles/mqo_test.dir/mqo_test.cc.o"
  "CMakeFiles/mqo_test.dir/mqo_test.cc.o.d"
  "mqo_test"
  "mqo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
