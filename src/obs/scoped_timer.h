/// \file scoped_timer.h
/// \brief RAII latency recorder: observes the enclosing scope's duration
/// (in microseconds) into a Histogram on destruction. Unlike TraceSpan this
/// is always on — use it where an aggregate latency distribution is wanted
/// regardless of whether a trace is being captured.

#ifndef QDB_OBS_SCOPED_TIMER_H_
#define QDB_OBS_SCOPED_TIMER_H_

#include "common/timer.h"
#include "obs/metrics.h"

namespace qdb {
namespace obs {

/// \brief Observes scope duration (µs) into `histogram` at scope exit.
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram* histogram)
      : histogram_(histogram) {}
  ~ScopedHistogramTimer() {
    if (histogram_ != nullptr) histogram_->Observe(timer_.Micros());
  }

  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

 private:
  Histogram* histogram_;
  Timer timer_;
};

}  // namespace obs
}  // namespace qdb

#endif  // QDB_OBS_SCOPED_TIMER_H_
