#include "serve/model_registry.h"

#include <algorithm>
#include <chrono>

#include "common/strings.h"
#include "fault/fault_injector.h"
#include "obs/obs.h"

namespace qdb {
namespace serve {

namespace {

obs::Gauge* RegisteredGauge() {
  static obs::Gauge* gauge = obs::GetGauge("serve.registry_models");
  return gauge;
}

obs::Gauge* ResidentBytesGauge() {
  static obs::Gauge* gauge = obs::GetGauge("store.resident_bytes");
  return gauge;
}

obs::Gauge* BudgetBytesGauge() {
  static obs::Gauge* gauge = obs::GetGauge("store.budget_bytes");
  return gauge;
}

obs::Gauge* ResidentModelsGauge() {
  static obs::Gauge* gauge = obs::GetGauge("store.resident_models");
  return gauge;
}

obs::Counter* EvictionsCounter() {
  static obs::Counter* counter = obs::GetCounter("store.evictions");
  return counter;
}

obs::Counter* ReloadsCounter() {
  static obs::Counter* counter = obs::GetCounter("store.reloads");
  return counter;
}

/// Cold-start latency (µs): artifact read + parse + servable build when a
/// Lookup hits a paged-out model.
obs::Histogram* ColdStartHistogram() {
  static obs::Histogram* histogram = obs::GetHistogram(
      "store.cold_start_us",
      {50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000,
       250000, 1000000});
  return histogram;
}

/// Warm-restart latency (µs): journal replay + entry-table rebuild in the
/// recovery constructor (prefetch time is separate — see StartWarmup).
obs::Histogram* RecoveryHistogram() {
  static obs::Histogram* histogram = obs::GetHistogram(
      "store.recovery_us",
      {100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000,
       1000000, 5000000});
  return histogram;
}

std::string EntryKey(const std::string& name, int version) {
  return StrCat(name, ":", version);
}

/// Inverse of EntryKey. The version is everything after the *last* colon,
/// so model names containing ':' survive the round trip.
void SplitEntryKey(const std::string& key, std::string& name, int& version) {
  const size_t colon = key.rfind(':');
  name = key.substr(0, colon);
  version = std::stoi(key.substr(colon + 1));
}

}  // namespace

RetryPolicy DefaultArtifactLoadRetry() {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_us = 1000;
  policy.max_backoff_us = 20000;
  // A torn read of a file being rewritten surfaces as kInvalidArgument
  // ("artifact corrupted") or kNotFound (tmp not yet renamed), not just
  // kUnavailable — all three are worth one more look.
  policy.retryable = [](const Status& status) {
    return status.code() == StatusCode::kUnavailable ||
           status.code() == StatusCode::kNotFound ||
           status.code() == StatusCode::kInvalidArgument;
  };
  return policy;
}

ModelRegistry::ModelRegistry(const RegistryOptions& options)
    : options_(options) {
  options_.num_slices = std::max(1, options_.num_slices);
  const size_t n = static_cast<size_t>(options_.num_slices);
  // Each slice enforces an equal share of the budget independently, so
  // slices never take each other's locks. A nonzero budget smaller than
  // the slice count still budgets each slice (1 byte ≠ unlimited).
  const size_t per_slice =
      options_.store_budget_bytes == 0
          ? 0
          : std::max<size_t>(1, options_.store_budget_bytes / n);
  slices_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    slices_.push_back(std::make_unique<Slice>(per_slice));
  }
  BudgetBytesGauge()->Set(static_cast<double>(options_.store_budget_bytes));
  // Register the cold-start and recovery histograms with their µs bounds
  // now, before any later GetHistogram call (e.g. Statusz) could claim the
  // names with default bounds.
  ColdStartHistogram();
  RecoveryHistogram();
  if (!options_.journal_dir.empty()) RecoverFromJournal();
}

Result<std::unique_ptr<ModelRegistry>> ModelRegistry::OpenJournaled(
    const RegistryOptions& options) {
  if (options.journal_dir.empty()) {
    return Status::InvalidArgument(
        "OpenJournaled requires options.journal_dir");
  }
  auto registry = std::make_unique<ModelRegistry>(options);
  if (!registry->recovery_.journaled) return registry->recovery_.open_status;
  return registry;
}

void ModelRegistry::RecoverFromJournal() {
  const auto start = std::chrono::steady_clock::now();
  store::JournalOptions journal_options;
  journal_options.compact_every = options_.journal_compact_every;
  Result<std::unique_ptr<store::RegistryJournal>> opened =
      store::RegistryJournal::Open(options_.journal_dir, journal_options);
  if (!opened.ok()) {
    recovery_.open_status = opened.status();
    return;
  }
  journal_ = std::move(opened).value();
  recovery_.journaled = true;
  const store::JournalRecoveryStats& replay = journal_->recovery_stats();
  recovery_.replayed_records = replay.replayed_records;
  recovery_.stale_records = replay.stale_records;
  recovery_.tail_truncated = replay.tail_truncated;
  recovery_.snapshot_sequence = replay.snapshot_sequence;

  // Rebuild durable entries as file-backed page-outs: servable == nullptr,
  // reload-on-Lookup, exactly as if the budget had paged them out moments
  // ago. The constructor runs single-threaded, but taking the slice locks
  // costs nothing and keeps the invariants uniform.
  std::vector<store::ManifestEntry> dropped;
  for (const store::ManifestEntry& m : journal_->Manifest()) {
    const bool valid_type =
        m.model_type <= static_cast<uint32_t>(ModelType::kQuboConfig);
    if (m.artifact_path.empty() || !valid_type) {
      // Registered but never promoted (or undecodable): there is no durable
      // artifact to rebuild from. Dropping it here is the no-phantom
      // guarantee — an entry that cannot be served must not exist.
      ++recovery_.dropped_nondurable;
      dropped.push_back(m);
      continue;
    }
    Slice& slice = SliceFor(m.name);
    std::lock_guard<std::mutex> lock(slice.mu);
    Entry entry;
    entry.type = static_cast<ModelType>(m.model_type);
    entry.num_features = m.num_features;
    entry.artifact_path = m.artifact_path;
    entry.file_name = m.file_name;
    entry.file_version = m.file_version;
    entry.pinned = m.pinned;
    slice.models[m.name][m.version] = std::move(entry);
    ++recovery_.recovered_models;
    if (m.pinned || m.hot) recovered_warm_.emplace_back(m.name, m.version);
  }
  // Prune the dropped entries from the journal's manifest too, or they
  // would ride every future snapshot as zombies and be re-dropped on every
  // recovery. Best-effort: a failed prune just postpones the cleanup.
  for (const store::ManifestEntry& m : dropped) {
    store::JournalRecord record;
    record.event = store::JournalEvent::kRemove;
    record.name = m.name;
    record.version = m.version;
    record.model_type = m.model_type;
    record.num_features = m.num_features;
    (void)journal_->Append(std::move(record));
  }

  recovery_.recovery_us = static_cast<long>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  RecoveryHistogram()->Observe(static_cast<double>(recovery_.recovery_us));
  PublishGauges();
}

Status ModelRegistry::JournalAppend(store::JournalEvent event,
                                    const std::string& name, int version,
                                    ModelType type, int num_features,
                                    const std::string& path,
                                    const std::string& file_name,
                                    int file_version) const {
  if (journal_ == nullptr) return Status::OK();
  store::JournalRecord record;
  record.event = event;
  record.name = name;
  record.version = version;
  record.model_type = static_cast<uint32_t>(type);
  record.num_features = num_features;
  record.artifact_path = path;
  record.file_name = file_name;
  record.file_version = file_version;
  return journal_->Append(std::move(record));
}

ModelRegistry::Slice& ModelRegistry::SliceFor(const std::string& name) const {
  return *slices_[Fnv1a64(name) % slices_.size()];
}

Result<std::shared_ptr<const ServableModel>> ModelRegistry::Register(
    ModelArtifact artifact) {
  if (artifact.name.empty()) {
    return Status::InvalidArgument("artifact has no name");
  }
  if (artifact.version < 0) {
    return Status::InvalidArgument("artifact version must be >= 0");
  }
  Slice& slice = SliceFor(artifact.name);
  // Resolve the version under the lock, but build the servable outside it:
  // Create() simulates support-vector encodings and compiles circuits,
  // which must not serialize against lookups. The slot is re-checked on
  // insert in case of a racing Register on the same name.
  int version = artifact.version;
  if (version == 0) {
    std::lock_guard<std::mutex> lock(slice.mu);
    auto it = slice.models.find(artifact.name);
    version = it == slice.models.end() || it->second.empty()
                  ? 1
                  : it->second.rbegin()->first + 1;
  }
  artifact.version = version;
  QDB_ASSIGN_OR_RETURN(std::shared_ptr<const ServableModel> servable,
                       ServableModel::Create(std::move(artifact)));
  {
    std::lock_guard<std::mutex> lock(slice.mu);
    auto& versions = slice.models[servable->name()];
    Entry entry;
    entry.servable = servable;
    entry.type = servable->type();
    entry.num_features = servable->num_features();
    entry.resident_bytes = servable->ResidentBytes();
    if (!versions.emplace(version, std::move(entry)).second) {
      return Status::AlreadyExists(
          StrCat("model '", servable->name(), "' version ", version,
                 " is already registered"));
    }
    // Write-ahead: the registration is only acknowledged once journaled.
    // On append failure the insert rolls back — a mutation the journal
    // never saw must not survive into a state replay cannot reproduce.
    if (Status journaled = JournalAppend(
            store::JournalEvent::kRegister, servable->name(), version,
            servable->type(), servable->num_features());
        !journaled.ok()) {
      versions.erase(version);
      if (versions.empty()) slice.models.erase(servable->name());
      return journaled;
    }
    const std::string key = EntryKey(servable->name(), version);
    // In-memory registrations have no artifact file to reload from, so
    // they are charged but never paged out (soft budget).
    slice.budget.Add(key, servable->ResidentBytes(), /*evictable=*/false);
    EnforceBudgetLocked(slice, key);
  }
  PublishGauges();
  return servable;
}

Result<std::shared_ptr<const ServableModel>> ModelRegistry::ColdStartLoad(
    const std::string& path, const std::string& name, int version,
    const std::string& file_name, int file_version) const {
  QDB_ASSIGN_OR_RETURN(
      ModelArtifact artifact,
      RetryResult<ModelArtifact>(
          DefaultArtifactLoadRetry(),
          [&path](int) -> Result<ModelArtifact> {
            return store::LoadArtifact(path);
          }));
  // The file must still hold the artifact this entry was registered from.
  // That identity was recorded at MarkFileBacked time and can lag the
  // registered version (reassign_version loads, files stored with version
  // 0); a swapped or repurposed artifact file must not serve under a stale
  // (name, version).
  if (artifact.name != file_name || artifact.version != file_version) {
    return Status::FailedPrecondition(
        StrCat("artifact file '", path, "' now holds '", artifact.name,
               "' v", artifact.version, ", not '", file_name, "' v",
               file_version, " — refusing to serve it as '", name, "' v",
               version));
  }
  // Serve under the registered identity, exactly as Register stamped it.
  artifact.name = name;
  artifact.version = version;
  return ServableModel::Create(std::move(artifact));
}

Result<std::shared_ptr<const ServableModel>> ModelRegistry::Lookup(
    const std::string& name, int version) const {
  Slice& slice = SliceFor(name);
  std::string path, file_name;
  int resolved_version = 0, file_version = 0;
  {
    std::unique_lock<std::mutex> lock(slice.mu);
    for (;;) {
      auto it = slice.models.find(name);
      if (it == slice.models.end() || it->second.empty()) {
        return Status::NotFound(StrCat("no model named '", name, "'"));
      }
      std::map<int, Entry>::iterator vit;
      if (version < 0) {
        vit = std::prev(it->second.end());
      } else {
        vit = it->second.find(version);
        if (vit == it->second.end()) {
          return Status::NotFound(
              StrCat("model '", name, "' has no version ", version));
        }
      }
      Entry& entry = vit->second;
      if (entry.servable != nullptr) {
        slice.budget.Touch(EntryKey(name, vit->first));
        return entry.servable;
      }
      if (entry.artifact_path.empty()) {
        return Status::Internal(
            StrCat("model '", name, "' version ", vit->first,
                   " is paged out but has no artifact path"));
      }
      if (!entry.loading) {
        // Claim the cold start: this thread reloads, off-lock.
        entry.loading = true;
        path = entry.artifact_path;
        file_name = entry.file_name;
        file_version = entry.file_version;
        resolved_version = vit->first;
        break;
      }
      // Another lookup is already reloading this version. Wait for it to
      // settle, then re-resolve from scratch — by the time we wake the
      // entry may be resident, failed (we retry the claim), or erased.
      slice.cv.wait(lock);
    }
  }
  // Cold start: the budget paged this version out. File I/O, retry
  // backoff, and the servable build all run outside the slice lock, so a
  // slow or failing artifact only stalls lookups of this model — the rest
  // of the slice keeps serving. The loading latch above keeps concurrent
  // lookups of the same version from stampeding the file.
  const auto start = std::chrono::steady_clock::now();
  Result<std::shared_ptr<const ServableModel>> result =
      ColdStartLoad(path, name, resolved_version, file_name, file_version);
  {
    std::lock_guard<std::mutex> lock(slice.mu);
    auto it = slice.models.find(name);
    if (it != slice.models.end()) {
      auto vit = it->second.find(resolved_version);
      if (vit != it->second.end()) {
        Entry& entry = vit->second;
        entry.loading = false;
        // Install unless the entry was concurrently erased (Evict) — the
        // caller still gets the servable it loaded either way.
        if (result.ok() && entry.servable == nullptr) {
          entry.servable = result.value();
          entry.resident_bytes = result.value()->ResidentBytes();
          const std::string key = EntryKey(name, resolved_version);
          slice.budget.Add(key, entry.resident_bytes, /*evictable=*/true,
                           entry.pinned);
          slice.reloads++;
          ReloadsCounter()->Increment();
          ColdStartHistogram()->Observe(static_cast<double>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count()));
          EnforceBudgetLocked(slice, key);
        }
      }
    }
  }
  slice.cv.notify_all();
  // Gauges refresh only after a cold start (outside the slice lock —
  // PublishGauges walks every slice); the warm path stays lock-light.
  if (result.ok()) PublishGauges();
  return result;
}

void ModelRegistry::EnforceBudgetLocked(
    Slice& slice, const std::string& protect_key) const {
  for (const std::string& victim : slice.budget.PlanEvictions(protect_key)) {
    std::string name;
    int version = 0;
    SplitEntryKey(victim, name, version);
    auto it = slice.models.find(name);
    if (it == slice.models.end()) continue;
    auto vit = it->second.find(version);
    if (vit == it->second.end()) continue;
    vit->second.servable.reset();
    vit->second.resident_bytes = 0;
    slice.budget.Drop(victim);
    slice.evictions++;
    EvictionsCounter()->Increment();
    // Best-effort residency hint for recovery's prefetch set: a failed
    // append only costs warm-restart freshness, never correctness, so it
    // must not fail the eviction that already happened.
    (void)JournalAppend(store::JournalEvent::kEvictToDisk, name, version,
                        vit->second.type, vit->second.num_features);
  }
}

Status ModelRegistry::Evict(const std::string& name, int version) {
  Slice& slice = SliceFor(name);
  {
    std::lock_guard<std::mutex> lock(slice.mu);
    auto it = slice.models.find(name);
    if (it == slice.models.end() || it->second.empty()) {
      return Status::NotFound(StrCat("no model named '", name, "'"));
    }
    if (version < 0) {
      // Write-ahead: journal the remove before applying it, so a crash
      // between the two replays the remove (an acknowledged removal must
      // not resurrect). The inverse crash — removed in memory but not in
      // the journal — can never happen with this order.
      const Entry& first = it->second.begin()->second;
      QDB_RETURN_IF_ERROR(JournalAppend(store::JournalEvent::kRemove, name,
                                        -1, first.type,
                                        first.num_features));
      for (const auto& [v, entry] : it->second) {
        slice.budget.Drop(EntryKey(name, v));
      }
      slice.models.erase(it);
    } else {
      auto vit = it->second.find(version);
      if (vit == it->second.end()) {
        return Status::NotFound(
            StrCat("model '", name, "' has no version ", version));
      }
      QDB_RETURN_IF_ERROR(JournalAppend(store::JournalEvent::kRemove, name,
                                        version, vit->second.type,
                                        vit->second.num_features));
      it->second.erase(vit);
      slice.budget.Drop(EntryKey(name, version));
      if (it->second.empty()) slice.models.erase(it);
    }
  }
  PublishGauges();
  return Status::OK();
}

Status ModelRegistry::SetPinned(const std::string& name, int version,
                                bool pinned) {
  Slice& slice = SliceFor(name);
  {
    std::lock_guard<std::mutex> lock(slice.mu);
    auto it = slice.models.find(name);
    if (it == slice.models.end()) {
      return Status::NotFound(StrCat("no model named '", name, "'"));
    }
    auto vit = it->second.find(version);
    if (vit == it->second.end()) {
      return Status::NotFound(
          StrCat("model '", name, "' has no version ", version));
    }
    QDB_RETURN_IF_ERROR(JournalAppend(
        pinned ? store::JournalEvent::kPin : store::JournalEvent::kUnpin,
        name, version, vit->second.type, vit->second.num_features));
    vit->second.pinned = pinned;
    slice.budget.SetPinned(EntryKey(name, version), pinned);
    // Unpinning may make an over-budget slice collectable again.
    if (!pinned) EnforceBudgetLocked(slice, "");
  }
  PublishGauges();
  return Status::OK();
}

std::vector<ModelEntry> ModelRegistry::List() const {
  std::vector<ModelEntry> out;
  for (const auto& slice : slices_) {
    std::lock_guard<std::mutex> lock(slice->mu);
    for (const auto& [name, versions] : slice->models) {
      for (const auto& [version, entry] : versions) {
        ModelEntry row;
        row.name = name;
        row.version = version;
        row.type = entry.type;
        row.num_features = entry.num_features;
        row.resident = entry.servable != nullptr;
        row.pinned = entry.pinned;
        out.push_back(std::move(row));
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ModelEntry& a, const ModelEntry& b) {
              return a.name != b.name ? a.name < b.name
                                      : a.version < b.version;
            });
  return out;
}

size_t ModelRegistry::size() const {
  size_t n = 0;
  for (const auto& slice : slices_) {
    std::lock_guard<std::mutex> lock(slice->mu);
    for (const auto& [name, versions] : slice->models) n += versions.size();
  }
  return n;
}

Status ModelRegistry::MarkFileBacked(const std::string& name, int version,
                                     const std::string& path,
                                     const std::string& file_name,
                                     int file_version) const {
  Slice& slice = SliceFor(name);
  std::lock_guard<std::mutex> lock(slice.mu);
  auto it = slice.models.find(name);
  if (it == slice.models.end()) return Status::OK();
  auto vit = it->second.find(version);
  if (vit == it->second.end()) return Status::OK();
  Entry& entry = vit->second;
  // Promote is THE durability point: only journaled-promoted entries are
  // rebuilt on recovery. Write-ahead — a failed append leaves the entry
  // in-memory-only (still servable now, not recoverable later) and the
  // caller's save/load reports the failure.
  QDB_RETURN_IF_ERROR(JournalAppend(store::JournalEvent::kPromote, name,
                                    version, entry.type, entry.num_features,
                                    path, file_name, file_version));
  entry.artifact_path = path;
  entry.file_name = file_name;
  entry.file_version = file_version;
  if (entry.servable != nullptr) {
    const std::string key = EntryKey(name, version);
    slice.budget.Add(key, entry.resident_bytes, /*evictable=*/true,
                     entry.pinned);
    // Now that this entry is reloadable it may be paged out — but not
    // immediately after the save/load that created it.
    EnforceBudgetLocked(slice, key);
  }
  return Status::OK();
}

Status ModelRegistry::SaveModel(const std::string& name, int version,
                                const std::string& path) const {
  QDB_ASSIGN_OR_RETURN(std::shared_ptr<const ServableModel> servable,
                       Lookup(name, version));
  QDB_RETURN_IF_ERROR(
      store::SaveArtifact(servable->artifact(), path, options_.save_format));
  // The file was written from the registered artifact, so the file identity
  // IS the registered identity.
  QDB_RETURN_IF_ERROR(MarkFileBacked(name, servable->version(), path,
                                     servable->name(),
                                     servable->version()));
  PublishGauges();
  return Status::OK();
}

Result<std::shared_ptr<const ServableModel>> ModelRegistry::LoadModel(
    const std::string& path, bool reassign_version,
    const RetryPolicy& retry) {
  QDB_ASSIGN_OR_RETURN(
      ModelArtifact artifact,
      RetryResult<ModelArtifact>(
          retry, [&path](int) -> Result<ModelArtifact> {
            // Fault point "artifact.load" (scoped by path) sits inside the
            // retry loop, so injected transient errors exercise it;
            // store::LoadArtifact adds the lower-level "store.read" point.
            QDB_RETURN_IF_ERROR(
                fault::MaybeInject("artifact.load", path));
            return store::LoadArtifact(path);
          }));
  // Remember the identity the file actually holds *before* Register
  // reassigns or auto-assigns the registered version: reloads after a
  // page-out re-read this same file and must match it as-is on disk.
  const std::string file_name = artifact.name;
  const int file_version = artifact.version;
  if (reassign_version) artifact.version = 0;
  QDB_ASSIGN_OR_RETURN(std::shared_ptr<const ServableModel> servable,
                       Register(std::move(artifact)));
  QDB_RETURN_IF_ERROR(MarkFileBacked(servable->name(), servable->version(),
                                     path, file_name, file_version));
  PublishGauges();
  return servable;
}

StoreStatus ModelRegistry::store_status() const {
  StoreStatus status;
  status.budget_bytes = options_.store_budget_bytes;
  status.num_slices = static_cast<int>(slices_.size());
  for (const auto& slice : slices_) {
    std::lock_guard<std::mutex> lock(slice->mu);
    status.resident_bytes += slice->budget.resident_bytes();
    status.evictions += slice->evictions;
    status.reloads += slice->reloads;
    for (const auto& [name, versions] : slice->models) {
      for (const auto& [version, entry] : versions) {
        status.registered_models++;
        if (entry.servable != nullptr) {
          status.resident_models++;
        } else {
          status.evicted_models++;
        }
      }
    }
  }
  return status;
}

void ModelRegistry::PublishGauges() const {
  const StoreStatus status = store_status();
  RegisteredGauge()->Set(static_cast<double>(status.registered_models));
  ResidentBytesGauge()->Set(static_cast<double>(status.resident_bytes));
  ResidentModelsGauge()->Set(static_cast<double>(status.resident_models));
  BudgetBytesGauge()->Set(static_cast<double>(status.budget_bytes));
}

}  // namespace serve
}  // namespace qdb
