// Tests for the C_out cost model and join trees.

#include <gtest/gtest.h>

#include "db/cost_model.h"

namespace qdb {
namespace {

JoinQueryGraph ThreeChain() {
  // R0 (1000) — R1 (100) — R2 (10); sel(0,1)=0.1, sel(1,2)=0.01.
  auto g = JoinQueryGraph::Create({1000, 100, 10}).value();
  EXPECT_TRUE(g.AddJoin(0, 1, 0.1).ok());
  EXPECT_TRUE(g.AddJoin(1, 2, 0.01).ok());
  return g;
}

TEST(CostModelTest, SubsetCardinalitySingleton) {
  JoinQueryGraph g = ThreeChain();
  EXPECT_NEAR(SubsetCardinality(g, 0b001), 1000.0, 1e-9);
  EXPECT_NEAR(SubsetCardinality(g, 0b100), 10.0, 1e-9);
}

TEST(CostModelTest, SubsetCardinalityWithEdges) {
  JoinQueryGraph g = ThreeChain();
  // {R0, R1}: 1000·100·0.1 = 10000.
  EXPECT_NEAR(SubsetCardinality(g, 0b011), 10000.0, 1e-9);
  // {R0, R2}: no predicate → cross product 1000·10 = 10000.
  EXPECT_NEAR(SubsetCardinality(g, 0b101), 10000.0, 1e-9);
  // All: 1000·100·10·0.1·0.01 = 1000.
  EXPECT_NEAR(SubsetCardinality(g, 0b111), 1000.0, 1e-9);
}

TEST(CostModelTest, LeftDeepOrderCosts) {
  JoinQueryGraph g = ThreeChain();
  // Order (0,1,2): cost = |{0,1}| + |{0,1,2}| = 10000 + 1000.
  auto c012 = CostOfLeftDeepOrder(g, {0, 1, 2});
  ASSERT_TRUE(c012.ok());
  EXPECT_NEAR(c012.value(), 11000.0, 1e-9);
  // Order (2,1,0): |{1,2}| = 100·10·0.01 = 10, then 1000 → 1010.
  auto c210 = CostOfLeftDeepOrder(g, {2, 1, 0});
  ASSERT_TRUE(c210.ok());
  EXPECT_NEAR(c210.value(), 1010.0, 1e-9);
}

TEST(CostModelTest, LeftDeepOrderValidation) {
  JoinQueryGraph g = ThreeChain();
  EXPECT_FALSE(CostOfLeftDeepOrder(g, {0, 1}).ok());        // Too short.
  EXPECT_FALSE(CostOfLeftDeepOrder(g, {0, 1, 1}).ok());     // Repeat.
  EXPECT_FALSE(CostOfLeftDeepOrder(g, {0, 1, 7}).ok());     // Out of range.
}

TEST(CostModelTest, JoinTreeLeafMask) {
  auto tree = JoinTree::Join(JoinTree::Leaf(0),
                             JoinTree::Join(JoinTree::Leaf(2),
                                            JoinTree::Leaf(1)));
  EXPECT_EQ(tree->RelationMask(), 0b111u);
  EXPECT_FALSE(tree->IsLeaf());
  EXPECT_TRUE(JoinTree::Leaf(3)->IsLeaf());
}

TEST(CostModelTest, BushyTreeCostMatchesHandComputation) {
  JoinQueryGraph g = ThreeChain();
  // ((R2 ⋈ R1) ⋈ R0): inner = 10, outer = 1000 → 1010.
  auto tree = JoinTree::Join(
      JoinTree::Join(JoinTree::Leaf(2), JoinTree::Leaf(1)),
      JoinTree::Leaf(0));
  auto cost = CostOfTree(g, *tree);
  ASSERT_TRUE(cost.ok());
  EXPECT_NEAR(cost.value(), 1010.0, 1e-9);
}

TEST(CostModelTest, TreeValidation) {
  JoinQueryGraph g = ThreeChain();
  // Repeated relation.
  auto bad = JoinTree::Join(JoinTree::Leaf(0), JoinTree::Leaf(0));
  EXPECT_FALSE(CostOfTree(g, *bad).ok());
  // Relation outside the graph.
  auto out = JoinTree::Join(JoinTree::Leaf(0), JoinTree::Leaf(9));
  EXPECT_FALSE(CostOfTree(g, *out).ok());
}

TEST(CostModelTest, LeftDeepTreeEqualsOrderCost) {
  JoinQueryGraph g = ThreeChain();
  auto tree = JoinTree::Join(
      JoinTree::Join(JoinTree::Leaf(0), JoinTree::Leaf(1)),
      JoinTree::Leaf(2));
  EXPECT_NEAR(CostOfTree(g, *tree).value(),
              CostOfLeftDeepOrder(g, {0, 1, 2}).value(), 1e-9);
}

}  // namespace
}  // namespace qdb
