/// Scalar reference implementations and the per-level dispatchers.
///
/// This TU is compiled with -ffp-contract=off (see src/CMakeLists.txt) so
/// the compiler cannot fuse a*b+c into an FMA: the AVX2 TU uses explicit
/// mul/add/sub intrinsics, and contraction on either side would break the
/// bit-identity contract documented in kernels.h.

#include "sim/kernels.h"

namespace qdb {
namespace simd {

namespace {

/// One complex 2x2 row update shared by the dense 1Q kernels. Matches the
/// libstdc++ std::complex fast path for finite values: each product is
/// (ar*br - ai*bi, ar*bi + ai*br) and the two products sum left to right.
inline void Update1Q(double* re, double* im, uint64_t i0, uint64_t i1,
                     const double* m) {
  const double a0r = re[i0], a0i = im[i0];
  const double a1r = re[i1], a1i = im[i1];
  re[i0] = (m[0] * a0r - m[1] * a0i) + (m[2] * a1r - m[3] * a1i);
  im[i0] = (m[0] * a0i + m[1] * a0r) + (m[2] * a1i + m[3] * a1r);
  re[i1] = (m[4] * a0r - m[5] * a0i) + (m[6] * a1r - m[7] * a1i);
  im[i1] = (m[4] * a0i + m[5] * a0r) + (m[6] * a1i + m[7] * a1r);
}

/// In-place a[i] *= d for one element; same operand order as the
/// historical `amps_[i] *= d` (std::complex operator*=).
inline void MulInPlace(double* re, double* im, uint64_t i, double dr,
                       double di) {
  const double ar = re[i], ai = im[i];
  re[i] = ar * dr - ai * di;
  im[i] = ar * di + ai * dr;
}

/// Combines the four protocol lanes: (l0 + l1) + (l2 + l3).
inline double CombineLanes(const double lanes[4]) {
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

}  // namespace

// ---- Scalar implementations -------------------------------------------------

void Apply1QRangeScalar(double* re, double* im, uint64_t pb, uint64_t pe,
                        uint64_t stride, const double* m) {
  for (uint64_t p = pb; p < pe; ++p) {
    const uint64_t i0 = ((p & ~(stride - 1)) << 1) | (p & (stride - 1));
    Update1Q(re, im, i0, i0 + stride, m);
  }
}

void Controlled1QRangeScalar(double* re, double* im, uint64_t pb, uint64_t pe,
                             uint64_t stride, uint64_t cmask, const double* m) {
  for (uint64_t p = pb; p < pe; ++p) {
    const uint64_t i0 = ((p & ~(stride - 1)) << 1) | (p & (stride - 1));
    if (!(i0 & cmask)) continue;
    Update1Q(re, im, i0, i0 + stride, m);
  }
}

void Diag1QRangeScalar(double* re, double* im, uint64_t b, uint64_t e,
                       uint64_t mask, const double* d) {
  for (uint64_t i = b; i < e; ++i) {
    if (i & mask) {
      MulInPlace(re, im, i, d[2], d[3]);
    } else {
      MulInPlace(re, im, i, d[0], d[1]);
    }
  }
}

void Diag2QRangeScalar(double* re, double* im, uint64_t b, uint64_t e,
                       uint64_t amask, uint64_t bmask, const double* d) {
  for (uint64_t i = b; i < e; ++i) {
    const int idx = ((i & amask) ? 2 : 0) | ((i & bmask) ? 1 : 0);
    MulInPlace(re, im, i, d[2 * idx], d[2 * idx + 1]);
  }
}

void Apply2QRangeScalar(double* re, double* im, uint64_t gb, uint64_t ge,
                        uint64_t amask, uint64_t bmask, uint64_t lo_keep,
                        uint64_t mid_keep, const double (*mr)[4],
                        const double (*mi)[4]) {
  for (uint64_t g = gb; g < ge; ++g) {
    const uint64_t i = (g & lo_keep) | ((g & mid_keep) << 1) |
                       ((g & ~(lo_keep | mid_keep)) << 2);
    const uint64_t idx[4] = {i, i | bmask, i | amask, i | amask | bmask};
    const double vr[4] = {re[idx[0]], re[idx[1]], re[idx[2]], re[idx[3]]};
    const double vi[4] = {im[idx[0]], im[idx[1]], im[idx[2]], im[idx[3]]};
    for (int r = 0; r < 4; ++r) {
      double out_r = 0.0, out_i = 0.0;
      for (int col = 0; col < 4; ++col) {
        out_r += mr[r][col] * vr[col] - mi[r][col] * vi[col];
        out_i += mr[r][col] * vi[col] + mi[r][col] * vr[col];
      }
      re[idx[r]] = out_r;
      im[idx[r]] = out_i;
    }
  }
}

void NormsRangeScalar(const double* re, const double* im, uint64_t b,
                      uint64_t e, double* out) {
  for (uint64_t i = b; i < e; ++i) {
    out[i] = re[i] * re[i] + im[i] * im[i];
  }
}

double NormSqRangeScalar(const double* re, const double* im, uint64_t b,
                         uint64_t e) {
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  for (uint64_t i = b; i < e; ++i) {
    lanes[(i - b) & 3] += re[i] * re[i] + im[i] * im[i];
  }
  return CombineLanes(lanes);
}

double MaskedNormSqRangeScalar(const double* re, const double* im, uint64_t b,
                               uint64_t e, uint64_t mask) {
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  for (uint64_t i = b; i < e; ++i) {
    const double v =
        ((i & mask) == mask) ? re[i] * re[i] + im[i] * im[i] : 0.0;
    lanes[(i - b) & 3] += v;
  }
  return CombineLanes(lanes);
}

double CollapseRangeScalar(double* re, double* im, uint64_t b, uint64_t e,
                           uint64_t mask, uint64_t keep) {
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  for (uint64_t i = b; i < e; ++i) {
    double v = 0.0;
    if ((i & mask) == keep) {
      v = re[i] * re[i] + im[i] * im[i];
    } else {
      re[i] = 0.0;
      im[i] = 0.0;
    }
    lanes[(i - b) & 3] += v;
  }
  return CombineLanes(lanes);
}

void DivRangeScalar(double* re, double* im, uint64_t b, uint64_t e,
                    double divisor) {
  for (uint64_t i = b; i < e; ++i) {
    re[i] /= divisor;
    im[i] /= divisor;
  }
}

// ---- Dispatchers ------------------------------------------------------------

void Apply1QRange(SimdLevel level, double* re, double* im, uint64_t pb,
                  uint64_t pe, uint64_t stride, const double* m) {
  if (level == SimdLevel::kAvx2) {
    Apply1QRangeAvx2(re, im, pb, pe, stride, m);
  } else {
    Apply1QRangeScalar(re, im, pb, pe, stride, m);
  }
}

void Controlled1QRange(SimdLevel level, double* re, double* im, uint64_t pb,
                       uint64_t pe, uint64_t stride, uint64_t cmask,
                       const double* m) {
  if (level == SimdLevel::kAvx2) {
    Controlled1QRangeAvx2(re, im, pb, pe, stride, cmask, m);
  } else {
    Controlled1QRangeScalar(re, im, pb, pe, stride, cmask, m);
  }
}

void Diag1QRange(SimdLevel level, double* re, double* im, uint64_t b,
                 uint64_t e, uint64_t mask, const double* d) {
  if (level == SimdLevel::kAvx2) {
    Diag1QRangeAvx2(re, im, b, e, mask, d);
  } else {
    Diag1QRangeScalar(re, im, b, e, mask, d);
  }
}

void Diag2QRange(SimdLevel level, double* re, double* im, uint64_t b,
                 uint64_t e, uint64_t amask, uint64_t bmask, const double* d) {
  if (level == SimdLevel::kAvx2) {
    Diag2QRangeAvx2(re, im, b, e, amask, bmask, d);
  } else {
    Diag2QRangeScalar(re, im, b, e, amask, bmask, d);
  }
}

void Apply2QRange(SimdLevel level, double* re, double* im, uint64_t gb,
                  uint64_t ge, uint64_t amask, uint64_t bmask, uint64_t lo_keep,
                  uint64_t mid_keep, const double (*mr)[4],
                  const double (*mi)[4]) {
  if (level == SimdLevel::kAvx2) {
    Apply2QRangeAvx2(re, im, gb, ge, amask, bmask, lo_keep, mid_keep, mr, mi);
  } else {
    Apply2QRangeScalar(re, im, gb, ge, amask, bmask, lo_keep, mid_keep, mr, mi);
  }
}

void NormsRange(SimdLevel level, const double* re, const double* im, uint64_t b,
                uint64_t e, double* out) {
  if (level == SimdLevel::kAvx2) {
    NormsRangeAvx2(re, im, b, e, out);
  } else {
    NormsRangeScalar(re, im, b, e, out);
  }
}

double NormSqRange(SimdLevel level, const double* re, const double* im,
                   uint64_t b, uint64_t e) {
  if (level == SimdLevel::kAvx2) return NormSqRangeAvx2(re, im, b, e);
  return NormSqRangeScalar(re, im, b, e);
}

double MaskedNormSqRange(SimdLevel level, const double* re, const double* im,
                         uint64_t b, uint64_t e, uint64_t mask) {
  if (level == SimdLevel::kAvx2) {
    return MaskedNormSqRangeAvx2(re, im, b, e, mask);
  }
  return MaskedNormSqRangeScalar(re, im, b, e, mask);
}

double CollapseRange(SimdLevel level, double* re, double* im, uint64_t b,
                     uint64_t e, uint64_t mask, uint64_t keep) {
  if (level == SimdLevel::kAvx2) {
    return CollapseRangeAvx2(re, im, b, e, mask, keep);
  }
  return CollapseRangeScalar(re, im, b, e, mask, keep);
}

void DivRange(SimdLevel level, double* re, double* im, uint64_t b, uint64_t e,
              double divisor) {
  if (level == SimdLevel::kAvx2) {
    DivRangeAvx2(re, im, b, e, divisor);
  } else {
    DivRangeScalar(re, im, b, e, divisor);
  }
}

}  // namespace simd
}  // namespace qdb
