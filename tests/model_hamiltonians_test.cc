// Tests for the model-Hamiltonian builders against known exact energies.

#include <gtest/gtest.h>

#include <cmath>

#include "ops/model_hamiltonians.h"
#include "variational/ansatz.h"
#include "variational/vqe.h"

namespace qdb {
namespace {

TEST(TfimTest, TermStructure) {
  auto h = TransverseFieldIsing(4, 1.0, 0.5);
  ASSERT_TRUE(h.ok());
  // 3 ZZ bonds + 4 X fields.
  EXPECT_EQ(h.value().size(), 7u);
  auto periodic = TransverseFieldIsing(4, 1.0, 0.5, true);
  ASSERT_TRUE(periodic.ok());
  EXPECT_EQ(periodic.value().size(), 8u);
}

TEST(TfimTest, ClassicalLimitGroundEnergy) {
  // h = 0: pure ferromagnetic chain, ground energy −J·(n−1).
  auto h = TransverseFieldIsing(4, 2.0, 0.0);
  ASSERT_TRUE(h.ok());
  auto e = ExactGroundStateEnergy(h.value());
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e.value(), -6.0, 1e-8);
}

TEST(TfimTest, ParamagneticLimitGroundEnergy) {
  // J = 0: independent spins in a transverse field, ground energy −h·n.
  auto h = TransverseFieldIsing(3, 0.0, 1.5);
  ASSERT_TRUE(h.ok());
  auto e = ExactGroundStateEnergy(h.value());
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e.value(), -4.5, 1e-8);
}

TEST(TfimTest, TwoSiteCriticalExact) {
  // n = 2, J = h = 1: H = −ZZ − X₁ − X₂; ground energy −√(1+... known:
  // eigenvalues of this 4x4 are ±√5 and ±1; ground = −√5.
  auto h = TransverseFieldIsing(2, 1.0, 1.0);
  ASSERT_TRUE(h.ok());
  auto e = ExactGroundStateEnergy(h.value());
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e.value(), -std::sqrt(5.0), 1e-8);
}

TEST(HeisenbergTest, TermStructure) {
  auto h = HeisenbergXXZ(3, 1.0, 0.7);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h.value().size(), 6u);  // 2 bonds × 3 terms.
}

TEST(HeisenbergTest, TwoSiteSingletEnergy) {
  // Two-site isotropic Heisenberg (J = 1): H = XX + YY + ZZ has singlet
  // ground energy −3.
  auto h = HeisenbergXXZ(2, 1.0, 1.0);
  ASSERT_TRUE(h.ok());
  auto e = ExactGroundStateEnergy(h.value());
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e.value(), -3.0, 1e-8);
}

TEST(HeisenbergTest, ThreeSiteOpenChainExact) {
  // Known: 3-site open isotropic chain ground energy = −4 (in units where
  // H = Σ σ·σ on the two bonds).
  auto h = HeisenbergXXZ(3, 1.0, 1.0);
  ASSERT_TRUE(h.ok());
  auto e = ExactGroundStateEnergy(h.value());
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e.value(), -4.0, 1e-8);
}

TEST(ModelHamiltonianTest, Validation) {
  EXPECT_FALSE(TransverseFieldIsing(1, 1.0, 1.0).ok());
  EXPECT_FALSE(HeisenbergXXZ(1, 1.0, 1.0).ok());
}

TEST(ModelHamiltonianTest, VqeSolvesTfim) {
  auto h = TransverseFieldIsing(3, 1.0, 0.8);
  ASSERT_TRUE(h.ok());
  auto exact = ExactGroundStateEnergy(h.value());
  ASSERT_TRUE(exact.ok());
  Circuit ansatz = EfficientSU2Ansatz(3, 2);
  VqeOptions opts;
  opts.adam.max_iterations = 250;
  opts.adam.learning_rate = 0.1;
  opts.seed = 7;
  auto result = RunVqe(ansatz, h.value(), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().energy, exact.value(), 2e-2);
}

}  // namespace
}  // namespace qdb
