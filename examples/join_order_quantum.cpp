// Join-order optimization on the (simulated) quantum annealer: the E7
// pipeline end-to-end on one star query, with DP and greedy baselines.
//
// Observability: run with QDB_TRACE=1 (or pass --trace-out <path>) to dump a
// Chrome trace-event timeline of the annealing runs for chrome://tracing or
// https://ui.perfetto.dev.

#include <cstdio>
#include <cstring>

#include "anneal/quantum_annealing.h"
#include "anneal/simulated_annealing.h"
#include "common/strings.h"
#include "common/timer.h"
#include "db/join_order_dp.h"
#include "db/join_order_greedy.h"
#include "db/join_order_qubo.h"
#include "obs/obs.h"

namespace {

const char* ParseTraceOut(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      return argv[i + 1];
    }
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      return argv[i] + 12;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qdb;

  obs::InitTracingFromEnv();
  const char* trace_out = ParseTraceOut(argc, argv);
  if (trace_out != nullptr) obs::EnableTracing();

  // A star query over 8 relations (fact table R0 joined to 7 dimensions).
  Rng rng(42);
  JoinQueryGraph query =
      RandomQuery(QueryShape::kStar, 8, rng).ValueOrDie();
  std::printf("%s\n", query.ToString().c_str());

  Timer timer;

  // Classical baselines.
  DpPlanResult dp = OptimalLeftDeepPlan(query).ValueOrDie();
  GreedyPlanResult greedy = GreedyLeftDeepPlan(query).ValueOrDie();
  std::printf("optimal DP   : cost %.0f, order [%s]  (%.1f ms)\n", dp.cost,
              StrJoin(dp.order, ", ").c_str(), timer.LapMillis());
  std::printf("greedy       : cost %.0f (%.2fx optimal)\n", greedy.cost,
              greedy.cost / dp.cost);

  // QUBO encoding: n^2 binary variables with one-hot validity penalties.
  JoinOrderQubo encoding = JoinOrderQubo::Create(query).ValueOrDie();
  std::printf("QUBO         : %d variables, penalty weight %.1f\n",
              encoding.qubo().num_vars(), encoding.penalty_weight());

  // Solve with thermal simulated annealing...
  timer.Lap();
  SaOptions sa_options;
  sa_options.num_sweeps = 2000;
  sa_options.num_restarts = 4;
  SolveResult sa =
      SimulatedAnnealing(encoding.qubo().ToIsing(), sa_options).ValueOrDie();
  const double sa_ms = timer.LapMillis();
  auto sa_order = encoding.Decode(SpinsToBits(sa.best_spins));
  double sa_cost = CostOfLeftDeepOrder(query, sa_order).ValueOrDie();
  std::printf("SA  anneal   : cost %.0f (%.2fx optimal), order [%s]\n",
              sa_cost, sa_cost / dp.cost, StrJoin(sa_order, ", ").c_str());
  std::printf("               %ld sweeps, %.0f%% moves accepted, %.1f ms\n",
              sa.sweeps, 100.0 * sa.acceptance_ratio(), sa_ms);

  // ...and with path-integral simulated *quantum* annealing (the D-Wave
  // stand-in: Trotter replicas coupled by a decaying transverse field).
  SqaOptions sqa_options;
  sqa_options.num_sweeps = 800;
  sqa_options.num_replicas = 16;
  sqa_options.num_restarts = 2;
  SolveResult sqa =
      SimulatedQuantumAnnealing(encoding.qubo().ToIsing(), sqa_options)
          .ValueOrDie();
  const double sqa_ms = timer.LapMillis();
  auto sqa_order = encoding.Decode(SpinsToBits(sqa.best_spins));
  double sqa_cost = CostOfLeftDeepOrder(query, sqa_order).ValueOrDie();
  std::printf("SQA anneal   : cost %.0f (%.2fx optimal), order [%s]\n",
              sqa_cost, sqa_cost / dp.cost, StrJoin(sqa_order, ", ").c_str());
  std::printf("               %ld sweeps, %.0f%% moves accepted, %.1f ms\n",
              sqa.sweeps, 100.0 * sqa.acceptance_ratio(), sqa_ms);

  if (trace_out != nullptr) {
    obs::TraceLog& log = obs::TraceLog::Global();
    Status s = log.WriteChromeTrace(trace_out);
    if (!s.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %zu trace events to %s (%zu dropped)\n", log.size(),
                trace_out, log.dropped());
    std::printf("metrics:\n%s", obs::SummaryText().c_str());
  }
  return 0;
}
