/// \file aligned.h
/// \brief Minimal over-aligned allocator so amplitude planes can live in
/// std::vector while still satisfying SIMD alignment requirements.

#ifndef QDB_COMMON_ALIGNED_H_
#define QDB_COMMON_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace qdb {

/// \brief std::allocator drop-in that over-aligns every allocation to
/// `Alignment` bytes (a power of two >= alignof(T)). Vectors of amplitudes
/// built with this allocator start on a cache-line/SIMD-register boundary,
/// so vector kernels never straddle a line on their first lane.
template <typename T, std::size_t Alignment>
class AlignedAllocator {
 public:
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the type's natural alignment");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// 64-byte-aligned double vector: one amplitude plane (all-real or all-imag)
/// of a structure-of-arrays state.
using AlignedDVector = std::vector<double, AlignedAllocator<double, 64>>;

}  // namespace qdb

#endif  // QDB_COMMON_ALIGNED_H_
