#include "common/retry.h"

#include <algorithm>
#include <thread>

#include "common/strings.h"
#include "obs/labels.h"
#include "obs/obs.h"

namespace qdb {

namespace {

struct RetryMetrics {
  obs::Histogram* attempts = obs::GetHistogram(
      "fault.retry.attempts", {1, 2, 3, 4, 6, 8, 12, 16});
  obs::Counter* retries = obs::GetCounter("fault.retry.retries");
  obs::Counter* giveups = obs::GetCounter("fault.retry.giveups");
  obs::Counter* deadline_cuts = obs::GetCounter("fault.retry.deadline_cuts");
  obs::HistogramFamily* attempts_by_op =
      obs::MetricsRegistry::Global().GetHistogramFamily(
          "fault.retry.attempts", {"op"}, {1, 2, 3, 4, 6, 8, 12, 16});
  obs::CounterFamily* outcomes =
      obs::MetricsRegistry::Global().GetCounterFamily(
          "fault.retry.outcomes", {"op", "outcome"});
};

RetryMetrics& Metrics() {
  static RetryMetrics metrics;
  return metrics;
}

/// One loop exit: the unlabeled aggregates always, the {op} children when
/// the policy names its operation.
void ObserveExit(const RetryPolicy& policy, int attempts,
                 const char* outcome) {
  Metrics().attempts->Observe(static_cast<double>(attempts));
  if (policy.op.empty()) return;
  Metrics().attempts_by_op->With(policy.op)->Observe(
      static_cast<double>(attempts));
  Metrics().outcomes->With(policy.op, outcome)->Increment();
}

void SleepMicros(const RetryPolicy& policy, long us) {
  if (us <= 0) return;
  if (policy.sleep_us) {
    policy.sleep_us(us);
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
}

}  // namespace

bool RetryPolicy::IsRetryable(const Status& status) const {
  if (status.ok()) return false;
  if (retryable) return retryable(status);
  return status.code() == StatusCode::kUnavailable;
}

Backoff::Backoff(const RetryPolicy& policy, Rng rng)
    : initial_us_(std::max<long>(policy.initial_backoff_us, 0)),
      max_us_(std::max<long>(policy.max_backoff_us, 0)),
      multiplier_(policy.backoff_multiplier < 1.0 ? 1.0
                                                  : policy.backoff_multiplier),
      jitter_(policy.decorrelated_jitter),
      rng_(rng) {}

long Backoff::NextDelayUs() {
  long next;
  if (prev_us_ <= 0) {
    next = initial_us_;
  } else if (jitter_) {
    // Decorrelated jitter: uniform in [initial, prev * 3].
    const double hi = static_cast<double>(prev_us_) * 3.0;
    next = static_cast<long>(
        rng_.Uniform(static_cast<double>(initial_us_),
                     std::max(hi, static_cast<double>(initial_us_) + 1.0)));
  } else {
    next = static_cast<long>(static_cast<double>(prev_us_) * multiplier_);
  }
  next = std::min(std::max(next, initial_us_), max_us_);
  prev_us_ = next;
  return next;
}

Status Retry(const RetryPolicy& policy, Rng& rng,
             const std::function<Status(int)>& fn,
             RetryClock::time_point deadline) {
  const int max_attempts = std::max(policy.max_attempts, 1);
  Backoff backoff(policy, rng.Split());
  Status last;
  int attempt = 0;
  while (attempt < max_attempts) {
    if (RetryClock::now() >= deadline) {
      Metrics().deadline_cuts->Increment();
      ObserveExit(policy, attempt, "deadline");
      return Status::DeadlineExceeded(
          attempt == 0
              ? "deadline expired before the first attempt"
              : StrCat("deadline expired after ", attempt, " attempt(s); ",
                       "last error: ", last.ToString()));
    }
    ++attempt;
    last = fn(attempt);
    if (last.ok() || !policy.IsRetryable(last)) {
      if (!last.ok()) Metrics().giveups->Increment();
      ObserveExit(policy, attempt, last.ok() ? "ok" : "giveup");
      return last;
    }
    if (attempt >= max_attempts) break;
    const long delay_us = backoff.NextDelayUs();
    // A sleep that would overshoot the deadline cannot lead to a useful
    // attempt: stop retrying now rather than waking up too late.
    if (deadline != RetryClock::time_point::max() &&
        RetryClock::now() + std::chrono::microseconds(delay_us) >= deadline) {
      Metrics().deadline_cuts->Increment();
      ObserveExit(policy, attempt, "deadline");
      return Status::DeadlineExceeded(
          StrCat("deadline would expire during the ", delay_us,
                 "us backoff after attempt ", attempt,
                 "; last error: ", last.ToString()));
    }
    Metrics().retries->Increment();
    SleepMicros(policy, delay_us);
  }
  Metrics().giveups->Increment();
  ObserveExit(policy, attempt, "giveup");
  return last;
}

Status Retry(const RetryPolicy& policy, const std::function<Status(int)>& fn,
             RetryClock::time_point deadline) {
  Rng rng(policy.jitter_seed);
  return Retry(policy, rng, fn, deadline);
}

}  // namespace qdb
