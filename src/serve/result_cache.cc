#include "serve/result_cache.h"

#include <cstring>

#include "common/strings.h"

namespace qdb {
namespace serve {

std::string ResultCache::MakeKey(const std::string& model, int version,
                                 RequestKind kind, const DVector& input) {
  std::string key = StrCat(model, "\x1f", version, "\x1f",
                           static_cast<int>(kind), "\x1f");
  // Raw double bytes: bit-exact identity, no formatting round-trip.
  const size_t offset = key.size();
  key.resize(offset + input.size() * sizeof(double));
  if (!input.empty()) {
    std::memcpy(key.data() + offset, input.data(),
                input.size() * sizeof(double));
  }
  return key;
}

std::optional<InferenceValue> ResultCache::Lookup(const std::string& key,
                                                  long ttl_us) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  if (ttl_us > 0 &&
      Clock::now() - it->second.inserted > std::chrono::microseconds(ttl_us)) {
    // Too old for the fresh path; left in place (no LRU refresh) so the
    // degradation ladder can still serve it via LookupStale.
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.value;
}

std::optional<InferenceValue> ResultCache::LookupStale(const std::string& key,
                                                       long max_age_us) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  if (max_age_us > 0 && Clock::now() - it->second.inserted >
                            std::chrono::microseconds(max_age_us)) {
    return std::nullopt;  // Beyond the staleness bound even for degradation.
  }
  ++stale_hits_;
  return it->second.value;
}

void ResultCache::Insert(const std::string& key, const InferenceValue& value) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.value = value;
    it->second.inserted = Clock::now();
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  lru_.push_front(key);
  entries_[key] = Entry{value, lru_.begin(), Clock::now()};
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.stale_hits = stale_hits_;
  s.evictions = evictions_;
  s.size = entries_.size();
  s.capacity = capacity_;
  return s;
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  hits_ = misses_ = stale_hits_ = evictions_ = 0;
}

}  // namespace serve
}  // namespace qdb
