/// \file encodings.h
/// \brief Classical-data → quantum-state encodings (the tutorial's "data
/// loading" layer): basis, angle, ZZ/IQP feature maps, and exact amplitude
/// encoding via multiplexed-RY state preparation.

#ifndef QDB_ENCODING_ENCODINGS_H_
#define QDB_ENCODING_ENCODINGS_H_

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "common/result.h"
#include "linalg/types.h"

namespace qdb {

/// \brief Basis encoding: |x⟩ for a bitstring x (X gates on set bits).
Circuit BasisEncoding(const std::vector<uint8_t>& bits);

/// Rotation axis selector for angle encoding.
enum class RotationAxis { kX, kY, kZ };

/// \brief Angle encoding: one qubit per feature, R_axis(scale · x_i) on
/// qubit i. With kZ an H precedes each rotation (otherwise RZ acts trivially
/// on |0⟩).
Circuit AngleEncoding(const DVector& features,
                      RotationAxis axis = RotationAxis::kY,
                      double scale = 1.0);

/// \brief ZZ feature map (IQP-style, Havlíček et al. form): `reps`
/// repetitions of H⊗n followed by P(2x_i) and pairwise
/// RZZ(2(π−x_i)(π−x_j)) over all pairs — classically hard to simulate at
/// scale, the canonical quantum-kernel map.
Circuit ZZFeatureMap(const DVector& features, int reps = 2);

/// \brief Exact amplitude encoding of a real vector: prepares
/// Σ_i (x_i/‖x‖)|i⟩ on ⌈log2 |x|⌉ qubits via a tree of multiplexed RY
/// rotations (Möttönen-style, RY-only since x is real).
///
/// \return InvalidArgument when x is empty or the zero vector.
Result<Circuit> AmplitudeEncoding(const DVector& x);

/// \brief The normalized, zero-padded amplitude vector AmplitudeEncoding
/// prepares (for direct state construction and kernel shortcuts).
Result<CVector> AmplitudeEncodedState(const DVector& x);

/// \brief Multiplexed RY: applies RY(angles[j]) to `target` where j is the
/// value of the `controls` bits (controls[0] = most significant). Requires
/// angles.size() == 2^controls.size(). Exposed for tests and for state-prep
/// construction; appends to `circuit`.
void AppendMultiplexedRY(Circuit& circuit, const std::vector<int>& controls,
                         int target, const DVector& angles);

}  // namespace qdb

#endif  // QDB_ENCODING_ENCODINGS_H_
