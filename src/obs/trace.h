/// \file trace.h
/// \brief RAII trace spans recorded into a process-wide ring buffer, with a
/// Chrome trace-event (chrome://tracing / Perfetto) JSON exporter.
///
/// Tracing is off by default. The enabled check is one relaxed atomic load,
/// so a QDB_TRACE_SCOPE in a hot path costs a single predictable branch when
/// tracing is disabled and records nothing. Span names and categories must
/// be string literals (or otherwise outlive the TraceLog): events store the
/// pointers, not copies.

#ifndef QDB_OBS_TRACE_H_
#define QDB_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace qdb {
namespace obs {

/// \brief One completed span: a Chrome trace-event "X" (complete) event.
struct TraceEvent {
  const char* name = nullptr;      ///< Span name (string literal).
  const char* category = nullptr;  ///< Trace-event category (string literal).
  uint64_t thread_id = 0;          ///< Hash of the recording thread's id.
  int64_t start_us = 0;            ///< µs since the process trace epoch.
  int64_t duration_us = 0;         ///< Span duration in µs.
};

/// True iff spans currently record events (one relaxed atomic load).
bool TracingEnabled();
void EnableTracing();
void DisableTracing();
/// Enables tracing iff the QDB_TRACE environment variable is set to
/// anything other than "" or "0".
void InitTracingFromEnv();

/// \brief Lock-guarded ring buffer of completed spans (process singleton).
///
/// When the buffer is full the oldest events are overwritten; dropped()
/// reports how many were lost so exporters can flag truncation.
class TraceLog {
 public:
  static TraceLog& Global();

  void Record(const TraceEvent& event);

  /// Buffered events, oldest first.
  std::vector<TraceEvent> Snapshot() const;
  size_t size() const;
  /// Events overwritten because the ring was full.
  size_t dropped() const;
  void Clear();

  /// Resizes the ring (discards buffered events). Default: 65536 events.
  void SetCapacity(size_t capacity);

  /// Writes the buffered events as Chrome trace-event JSON
  /// ({"traceEvents":[...]}), loadable in chrome://tracing and Perfetto.
  Status WriteChromeTrace(const std::string& path) const;
  /// The same JSON as a string (exposed for tests and in-process use).
  std::string ChromeTraceJson() const;

 private:
  TraceLog();

  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t capacity_;
  size_t next_ = 0;     ///< Ring write cursor.
  size_t count_ = 0;    ///< Buffered events (<= capacity_).
  size_t dropped_ = 0;  ///< Overwritten events.
};

/// Microseconds since the process trace epoch (first use of the clock).
int64_t TraceNowMicros();

/// \brief Scoped timer: records a TraceEvent from construction to
/// destruction iff tracing was enabled at construction time.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category)
      : name_(name), category_(category), active_(TracingEnabled()) {
    if (active_) start_us_ = TraceNowMicros();
  }
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  bool active_;
  int64_t start_us_ = 0;
};

#define QDB_OBS_CONCAT_INNER(a, b) a##b
#define QDB_OBS_CONCAT(a, b) QDB_OBS_CONCAT_INNER(a, b)

/// Times the enclosing scope as a trace event. `name` and `category` must
/// be string literals. When tracing is disabled this is one relaxed load
/// and a branch.
#define QDB_TRACE_SCOPE(name, category)                              \
  ::qdb::obs::TraceSpan QDB_OBS_CONCAT(qdb_trace_span_, __LINE__) { \
    (name), (category)                                               \
  }

}  // namespace obs
}  // namespace qdb

#endif  // QDB_OBS_TRACE_H_
