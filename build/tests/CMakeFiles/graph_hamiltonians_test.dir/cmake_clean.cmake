file(REMOVE_RECURSE
  "CMakeFiles/graph_hamiltonians_test.dir/graph_hamiltonians_test.cc.o"
  "CMakeFiles/graph_hamiltonians_test.dir/graph_hamiltonians_test.cc.o.d"
  "graph_hamiltonians_test"
  "graph_hamiltonians_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_hamiltonians_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
