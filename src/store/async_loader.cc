#include "store/async_loader.h"

#include <utility>

#include "common/strings.h"
#include "fault/fault_injector.h"
#include "obs/obs.h"

namespace qdb {
namespace store {

namespace {

obs::Counter* PrefetchesCounter() {
  static obs::Counter* counter = obs::GetCounter("store.prefetches");
  return counter;
}

obs::Counter* PrefetchFailuresCounter() {
  static obs::Counter* counter = obs::GetCounter("store.prefetch_failures");
  return counter;
}

obs::Gauge* PrefetchQueueGauge() {
  static obs::Gauge* gauge = obs::GetGauge("store.prefetch_queue");
  return gauge;
}

}  // namespace

AsyncModelLoader::AsyncModelLoader(serve::ModelRegistry& registry,
                                   AsyncLoaderOptions options)
    : registry_(registry), options_(options) {}

AsyncModelLoader::~AsyncModelLoader() { Shutdown(); }

Status AsyncModelLoader::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) {
    return Status::FailedPrecondition("async loader already started");
  }
  started_ = true;
  stopping_ = false;
  worker_ = std::thread([this] { WorkerLoop(); });
  return Status::OK();
}

void AsyncModelLoader::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) {
      // Never started: fail whatever was queued so no future hangs.
      while (!queue_.empty()) {
        queue_.front().promise.set_value(
            Status::Unavailable("async loader shut down before starting"));
        queue_.pop_front();
        stats_.failed++;
      }
      return;
    }
    stopping_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
  PrefetchQueueGauge()->Set(0.0);
}

AsyncModelLoader::LoadFuture AsyncModelLoader::Enqueue(Job job) {
  LoadFuture future = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      stats_.rejected++;
      job.promise.set_value(
          Status::Unavailable("async loader is shutting down"));
      return future;
    }
    if (queue_.size() >= options_.queue_capacity) {
      stats_.rejected++;
      job.promise.set_value(Status::ResourceExhausted(
          StrCat("prefetch queue is full (", options_.queue_capacity, ")")));
      return future;
    }
    queue_.push_back(std::move(job));
    stats_.submitted++;
    PrefetchQueueGauge()->Set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
  return future;
}

AsyncModelLoader::LoadFuture AsyncModelLoader::Prefetch(
    std::string path, bool reassign_version) {
  Job job;
  job.warm = false;
  job.path_or_name = std::move(path);
  job.reassign_version = reassign_version;
  return Enqueue(std::move(job));
}

AsyncModelLoader::LoadFuture AsyncModelLoader::Warm(std::string name,
                                                    int version) {
  Job job;
  job.warm = true;
  job.path_or_name = std::move(name);
  job.version = version;
  return Enqueue(std::move(job));
}

Result<AsyncModelLoader::Servable> AsyncModelLoader::RunJob(Job& job) {
  // Fault point "store.prefetch": chaos profiles stall or fail background
  // loads here without touching the synchronous serving path.
  QDB_RETURN_IF_ERROR(fault::MaybeInject("store.prefetch", job.path_or_name));
  if (job.warm) {
    return registry_.Lookup(job.path_or_name, job.version);
  }
  return registry_.LoadModel(job.path_or_name, job.reassign_version);
}

void AsyncModelLoader::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      job = std::move(queue_.front());
      queue_.pop_front();
      PrefetchQueueGauge()->Set(static_cast<double>(queue_.size()));
    }
    Result<Servable> result = RunJob(job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (result.ok()) {
        stats_.completed++;
        PrefetchesCounter()->Increment();
      } else {
        stats_.failed++;
        PrefetchFailuresCounter()->Increment();
      }
    }
    job.promise.set_value(std::move(result));
  }
}

AsyncModelLoader::Stats AsyncModelLoader::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t AsyncModelLoader::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace store
}  // namespace qdb
