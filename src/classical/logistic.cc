#include "classical/logistic.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "linalg/vector_ops.h"

namespace qdb {
namespace {

double Sigmoid(double z) {
  // Numerically stable in both tails.
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

Result<LogisticRegression> LogisticRegression::Train(
    const Dataset& data, const LogisticOptions& options) {
  const size_t n = data.size();
  if (n == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (data.labels.size() != n) {
    return Status::InvalidArgument("feature/label count mismatch");
  }
  const int d = data.num_features();
  LogisticRegression model;
  model.weights_.assign(d, 0.0);
  model.bias_ = 0.0;

  DVector grad_w(d);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(grad_w.begin(), grad_w.end(), 0.0);
    double grad_b = 0.0;
    for (size_t i = 0; i < n; ++i) {
      // y ∈ {−1, +1}: ∇ of −log σ(y(wᵀx+b)) is −y(1−σ(y z))·x.
      const double z = Dot(model.weights_, data.features[i]) + model.bias_;
      const double y = data.labels[i];
      const double coeff = -y * (1.0 - Sigmoid(y * z));
      for (int j = 0; j < d; ++j) grad_w[j] += coeff * data.features[i][j];
      grad_b += coeff;
    }
    double grad_inf = std::abs(grad_b);
    for (int j = 0; j < d; ++j) {
      grad_w[j] = grad_w[j] / n + options.l2 * model.weights_[j];
      grad_inf = std::max(grad_inf, std::abs(grad_w[j]));
    }
    grad_b /= n;
    if (grad_inf < options.tolerance) break;
    for (int j = 0; j < d; ++j) {
      model.weights_[j] -= options.learning_rate * grad_w[j];
    }
    model.bias_ -= options.learning_rate * grad_b;
  }
  return model;
}

double LogisticRegression::ProbabilityPositive(const DVector& x) const {
  QDB_CHECK_EQ(x.size(), weights_.size());
  return Sigmoid(Dot(weights_, x) + bias_);
}

int LogisticRegression::Predict(const DVector& x) const {
  return ProbabilityPositive(x) >= 0.5 ? 1 : -1;
}

}  // namespace qdb
