#include "anneal/exhaustive.h"

#include <limits>

#include "common/strings.h"

namespace qdb {

Result<SolveResult> ExhaustiveSolve(const IsingModel& model) {
  const int n = model.num_spins();
  if (n > 26) {
    return Status::InvalidArgument(
        StrCat("exhaustive search limited to 26 spins, got ", n));
  }
  SolveResult result;
  result.best_energy = std::numeric_limits<double>::infinity();
  std::vector<int8_t> spins(n);
  const uint64_t total = uint64_t{1} << n;
  for (uint64_t mask = 0; mask < total; ++mask) {
    for (int i = 0; i < n; ++i) {
      spins[i] = (mask >> i) & 1 ? 1 : -1;
    }
    const double e = model.Energy(spins);
    if (e < result.best_energy) {
      result.best_energy = e;
      result.best_spins = spins;
    }
  }
  result.sweeps = static_cast<long>(total);
  return result;
}

Result<SolveResult> ExhaustiveSolveQubo(const Qubo& qubo) {
  const int n = qubo.num_vars();
  if (n > 26) {
    return Status::InvalidArgument(
        StrCat("exhaustive search limited to 26 variables, got ", n));
  }
  SolveResult result;
  result.best_energy = std::numeric_limits<double>::infinity();
  std::vector<uint8_t> bits(n);
  const uint64_t total = uint64_t{1} << n;
  for (uint64_t mask = 0; mask < total; ++mask) {
    for (int i = 0; i < n; ++i) bits[i] = (mask >> i) & 1;
    const double e = qubo.Energy(bits);
    if (e < result.best_energy) {
      result.best_energy = e;
      result.best_spins = BitsToSpins(bits);
    }
  }
  result.sweeps = static_cast<long>(total);
  return result;
}

}  // namespace qdb
