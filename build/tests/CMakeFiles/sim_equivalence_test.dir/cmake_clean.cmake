file(REMOVE_RECURSE
  "CMakeFiles/sim_equivalence_test.dir/sim_equivalence_test.cc.o"
  "CMakeFiles/sim_equivalence_test.dir/sim_equivalence_test.cc.o.d"
  "sim_equivalence_test"
  "sim_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
