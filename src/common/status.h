/// \file status.h
/// \brief Error-handling primitives following the Arrow/RocksDB Status idiom.
///
/// Public qdb APIs that can fail at runtime (bad user input, numerical
/// non-convergence, dimension mismatches discovered from data) return a
/// Status or Result<T> instead of throwing. Programmer errors (violated
/// preconditions) are guarded by QDB_CHECK in check.h and abort.

#ifndef QDB_COMMON_STATUS_H_
#define QDB_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace qdb {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kNotConverged = 6,
  kUnimplemented = 7,
  kInternal = 8,
  kUnavailable = 9,       ///< Transient overload/shutdown; retry may succeed.
  kDeadlineExceeded = 10, ///< The request's deadline expired before completion.
  kResourceExhausted = 11, ///< A quota or budget is spent; retry after refill.
};

/// \brief Returns the canonical lower-case name of a status code
/// (e.g. "invalid argument").
const char* StatusCodeToString(StatusCode code);

/// \brief A success-or-error outcome with a code and a human-readable message.
///
/// Cheap to copy in the OK case (no allocation); the error case carries a
/// heap-allocated message. Statuses are ordinary values: test with ok(),
/// propagate with QDB_RETURN_IF_ERROR.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. An OK code with a
  /// non-empty message is allowed but the message is ignored by ok().
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller.
#define QDB_RETURN_IF_ERROR(expr)             \
  do {                                        \
    ::qdb::Status _qdb_status = (expr);       \
    if (!_qdb_status.ok()) return _qdb_status; \
  } while (false)

}  // namespace qdb

#endif  // QDB_COMMON_STATUS_H_
