#include "sim/state_vector.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "linalg/vector_ops.h"

namespace qdb {

namespace {

/// Runs an element-wise kernel body over [0, range): split across the
/// shared pool when the state holds at least kParallelAmplitudeThreshold
/// amplitudes, serial otherwise. Bodies write disjoint indices, so the
/// split never changes results.
template <typename Body>
void ForKernelRange(uint64_t dim, uint64_t range, Body&& body) {
  if (dim >= kParallelAmplitudeThreshold) {
    ThreadPool::Global().ParallelFor(
        0, range, [&body](uint64_t b, uint64_t e) { body(b, e); });
  } else {
    body(0, range);
  }
}

/// Sums `fn(begin, end)` over [0, range). Above the threshold the pool's
/// fixed chunking applies even at QDB_THREADS=1, so the floating-point
/// combine order — and hence the result — is independent of thread count.
template <typename T, typename Fn>
T SumKernelRange(uint64_t dim, uint64_t range, Fn&& fn) {
  if (dim >= kParallelAmplitudeThreshold) {
    return ParallelSum<T>(ThreadPool::Global(), 0, range, fn);
  }
  return fn(uint64_t{0}, range);
}

}  // namespace

StateVector::StateVector(int num_qubits) : num_qubits_(num_qubits) {
  QDB_CHECK_GT(num_qubits, 0);
  QDB_CHECK_LE(num_qubits, 30);
  amps_.assign(dim(), Complex(0.0, 0.0));
  amps_[0] = Complex(1.0, 0.0);
}

Result<StateVector> StateVector::FromAmplitudes(CVector amplitudes,
                                                double norm_tol) {
  const size_t n = amplitudes.size();
  // A single amplitude (n = 1) passes the power-of-two test but describes a
  // zero-qubit register; accepting it used to leave dim() = 2 over a
  // 1-element vector, so every later read walked off the end.
  if (n < 2 || (n & (n - 1)) != 0) {
    return Status::InvalidArgument(
        StrCat("amplitude vector size must be a power of two >= 2, got ", n));
  }
  double norm = Norm(amplitudes);
  if (std::abs(norm - 1.0) > norm_tol) {
    return Status::InvalidArgument(
        StrCat("amplitude vector norm must be 1, got ", norm));
  }
  int num_qubits = 0;
  while ((size_t{1} << num_qubits) < n) ++num_qubits;
  StateVector out(num_qubits);
  out.amps_ = std::move(amplitudes);
  return out;
}

StateVector StateVector::BasisState(int num_qubits, uint64_t index) {
  StateVector out(num_qubits);
  QDB_CHECK_LT(index, out.dim());
  out.amps_[0] = Complex(0.0, 0.0);
  out.amps_[index] = Complex(1.0, 0.0);
  return out;
}

Complex StateVector::amplitude(uint64_t index) const {
  QDB_CHECK_LT(index, dim());
  return amps_[index];
}

double StateVector::Probability(uint64_t index) const {
  QDB_CHECK_LT(index, dim());
  return std::norm(amps_[index]);
}

DVector StateVector::Probabilities() const {
  DVector out(dim());
  ForKernelRange(dim(), dim(), [&](uint64_t b, uint64_t e) {
    for (uint64_t i = b; i < e; ++i) out[i] = std::norm(amps_[i]);
  });
  return out;
}

double StateVector::ProbabilityOfOne(int qubit) const {
  QDB_CHECK_GE(qubit, 0);
  QDB_CHECK_LT(qubit, num_qubits_);
  const uint64_t mask = uint64_t{1} << BitPos(qubit);
  return SumKernelRange<double>(dim(), dim(), [&](uint64_t b, uint64_t e) {
    double p = 0.0;
    for (uint64_t i = b; i < e; ++i) {
      if (i & mask) p += std::norm(amps_[i]);
    }
    return p;
  });
}

double StateVector::NormValue() const { return Norm(amps_); }

void StateVector::Renormalize() {
  double n = NormValue();
  QDB_CHECK_GT(n, 0.0) << "cannot renormalize the zero vector";
  for (auto& a : amps_) a /= n;
}

Complex StateVector::InnerProductWith(const StateVector& other) const {
  QDB_CHECK_EQ(num_qubits_, other.num_qubits_);
  return InnerProduct(amps_, other.amps_);
}

void StateVector::Apply1Q(int qubit, Complex m00, Complex m01, Complex m10,
                          Complex m11) {
  QDB_CHECK_GE(qubit, 0);
  QDB_CHECK_LT(qubit, num_qubits_);
  const uint64_t stride = uint64_t{1} << BitPos(qubit);
  // Iterate pairs (i0, i0 | stride) where the qubit's bit is 0 in i0: pair
  // index p's low BitPos bits are the offset within a block, the rest the
  // block number, so i0 = (block << (BitPos+1)) | offset.
  ForKernelRange(dim(), dim() / 2, [&](uint64_t pb, uint64_t pe) {
    for (uint64_t p = pb; p < pe; ++p) {
      const uint64_t i0 = ((p & ~(stride - 1)) << 1) | (p & (stride - 1));
      const uint64_t i1 = i0 + stride;
      const Complex a0 = amps_[i0];
      const Complex a1 = amps_[i1];
      amps_[i0] = m00 * a0 + m01 * a1;
      amps_[i1] = m10 * a0 + m11 * a1;
    }
  });
}

void StateVector::Apply1Q(int qubit, const Matrix& u) {
  QDB_CHECK_EQ(u.rows(), 2u);
  QDB_CHECK_EQ(u.cols(), 2u);
  Apply1Q(qubit, u(0, 0), u(0, 1), u(1, 0), u(1, 1));
}

void StateVector::ApplyDiagonal1Q(int qubit, Complex d0, Complex d1) {
  QDB_CHECK_GE(qubit, 0);
  QDB_CHECK_LT(qubit, num_qubits_);
  const uint64_t mask = uint64_t{1} << BitPos(qubit);
  ForKernelRange(dim(), dim(), [&](uint64_t b, uint64_t e) {
    for (uint64_t i = b; i < e; ++i) amps_[i] *= (i & mask) ? d1 : d0;
  });
}

void StateVector::ApplyControlled1Q(int control, int target, Complex m00,
                                    Complex m01, Complex m10, Complex m11) {
  QDB_CHECK_NE(control, target);
  QDB_CHECK_GE(control, 0);
  QDB_CHECK_LT(control, num_qubits_);
  QDB_CHECK_GE(target, 0);
  QDB_CHECK_LT(target, num_qubits_);
  const uint64_t cmask = uint64_t{1} << BitPos(control);
  const uint64_t stride = uint64_t{1} << BitPos(target);
  // Same pair-index walk as Apply1Q, acting only where the control is set.
  ForKernelRange(dim(), dim() / 2, [&](uint64_t pb, uint64_t pe) {
    for (uint64_t p = pb; p < pe; ++p) {
      const uint64_t i0 = ((p & ~(stride - 1)) << 1) | (p & (stride - 1));
      if (!(i0 & cmask)) continue;
      const uint64_t i1 = i0 + stride;
      const Complex a0 = amps_[i0];
      const Complex a1 = amps_[i1];
      amps_[i0] = m00 * a0 + m01 * a1;
      amps_[i1] = m10 * a0 + m11 * a1;
    }
  });
}

void StateVector::Apply2Q(int a, int b, const Matrix& u) {
  QDB_CHECK_EQ(u.rows(), 4u);
  QDB_CHECK_EQ(u.cols(), 4u);
  QDB_CHECK_NE(a, b);
  const uint64_t amask = uint64_t{1} << BitPos(a);
  const uint64_t bmask = uint64_t{1} << BitPos(b);
  // Hoist the 16 entries out of the sweep: Matrix::operator() bounds-checks
  // every access, which would otherwise dominate this (hot, fusion-emitted)
  // kernel's inner loop. Split into real/imag planes so the row updates
  // below are plain double arithmetic — std::complex operator* carries an
  // Annex-G NaN-recovery branch per product that blocks vectorization.
  double mr[4][4], mi[4][4];
  for (int r = 0; r < 4; ++r) {
    for (int col = 0; col < 4; ++col) {
      const Complex entry = u(r, col);
      mr[r][col] = entry.real();
      mi[r][col] = entry.imag();
    }
  }
  // Walk the dim/4 group representatives directly (both operand bits
  // clear): group index g expands to its representative by depositing a
  // zero bit at each operand position, so no loop iteration is wasted on a
  // skipped index. Groups are disjoint, so chunks over g never touch
  // another chunk's amplitudes and results match the serial walk exactly.
  const uint64_t lo_pos = BitPos(a) < BitPos(b) ? BitPos(a) : BitPos(b);
  const uint64_t hi_pos = BitPos(a) < BitPos(b) ? BitPos(b) : BitPos(a);
  const uint64_t lo_keep = (uint64_t{1} << lo_pos) - 1;
  const uint64_t mid_keep = ((uint64_t{1} << (hi_pos - 1)) - 1) & ~lo_keep;
  ForKernelRange(dim(), dim() / 4, [&](uint64_t gb, uint64_t ge) {
    for (uint64_t g = gb; g < ge; ++g) {
      const uint64_t i = (g & lo_keep) | ((g & mid_keep) << 1) |
                         ((g & ~(lo_keep | mid_keep)) << 2);
      const uint64_t i00 = i;
      const uint64_t i01 = i | bmask;
      const uint64_t i10 = i | amask;
      const uint64_t i11 = i | amask | bmask;
      const double vr[4] = {amps_[i00].real(), amps_[i01].real(),
                            amps_[i10].real(), amps_[i11].real()};
      const double vi[4] = {amps_[i00].imag(), amps_[i01].imag(),
                            amps_[i10].imag(), amps_[i11].imag()};
      const uint64_t idx[4] = {i00, i01, i10, i11};
      for (int r = 0; r < 4; ++r) {
        // Same products and left-to-right summation order as the
        // std::complex fast path, so finite results are bit-identical to
        // the previous complex-arithmetic formulation.
        double out_r = 0.0, out_i = 0.0;
        for (int col = 0; col < 4; ++col) {
          out_r += mr[r][col] * vr[col] - mi[r][col] * vi[col];
          out_i += mr[r][col] * vi[col] + mi[r][col] * vr[col];
        }
        amps_[idx[r]] = Complex(out_r, out_i);
      }
    }
  });
}

void StateVector::ApplyDiagonal2Q(int a, int b, Complex d0, Complex d1,
                                  Complex d2, Complex d3) {
  QDB_CHECK_NE(a, b);
  const uint64_t amask = uint64_t{1} << BitPos(a);
  const uint64_t bmask = uint64_t{1} << BitPos(b);
  ForKernelRange(dim(), dim(), [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) {
      const int idx = ((i & amask) ? 2 : 0) | ((i & bmask) ? 1 : 0);
      switch (idx) {
        case 0: amps_[i] *= d0; break;
        case 1: amps_[i] *= d1; break;
        case 2: amps_[i] *= d2; break;
        case 3: amps_[i] *= d3; break;
      }
    }
  });
}

void StateVector::ApplySwap(int a, int b) {
  QDB_CHECK_NE(a, b);
  const uint64_t amask = uint64_t{1} << BitPos(a);
  const uint64_t bmask = uint64_t{1} << BitPos(b);
  for (uint64_t i = 0; i < dim(); ++i) {
    const bool abit = i & amask;
    const bool bbit = i & bmask;
    if (abit && !bbit) {
      const uint64_t j = (i & ~amask) | bmask;
      std::swap(amps_[i], amps_[j]);
    }
  }
}

void StateVector::ApplyKQ(const std::vector<int>& qubits, const Matrix& u) {
  const int k = static_cast<int>(qubits.size());
  QDB_CHECK_GT(k, 0);
  QDB_CHECK_EQ(u.rows(), size_t{1} << k);
  QDB_CHECK_EQ(u.cols(), size_t{1} << k);
  std::vector<uint64_t> masks(k);
  uint64_t all_mask = 0;
  for (int j = 0; j < k; ++j) {
    masks[j] = uint64_t{1} << BitPos(qubits[j]);
    all_mask |= masks[j];
  }
  const uint64_t group = uint64_t{1} << k;
  std::vector<uint64_t> indices(group);
  std::vector<Complex> old_vals(group);
  for (uint64_t i = 0; i < dim(); ++i) {
    if (i & all_mask) continue;  // i is the group representative (all clear).
    for (uint64_t g = 0; g < group; ++g) {
      uint64_t idx = i;
      for (int j = 0; j < k; ++j) {
        if (g & (uint64_t{1} << (k - 1 - j))) idx |= masks[j];
      }
      indices[g] = idx;
      old_vals[g] = amps_[idx];
    }
    for (uint64_t r = 0; r < group; ++r) {
      Complex acc(0.0, 0.0);
      for (uint64_t c = 0; c < group; ++c) acc += u(r, c) * old_vals[c];
      amps_[indices[r]] = acc;
    }
  }
}

void StateVector::ApplyMCX(const std::vector<int>& controls, int target) {
  uint64_t cmask = 0;
  for (int c : controls) {
    QDB_CHECK_NE(c, target);
    cmask |= uint64_t{1} << BitPos(c);
  }
  const uint64_t tmask = uint64_t{1} << BitPos(target);
  for (uint64_t i = 0; i < dim(); ++i) {
    if ((i & cmask) == cmask && !(i & tmask)) {
      std::swap(amps_[i], amps_[i | tmask]);
    }
  }
}

void StateVector::ApplyMCZ(const std::vector<int>& controls, int target) {
  uint64_t mask = uint64_t{1} << BitPos(target);
  for (int c : controls) {
    QDB_CHECK_NE(c, target);
    mask |= uint64_t{1} << BitPos(c);
  }
  for (uint64_t i = 0; i < dim(); ++i) {
    if ((i & mask) == mask) amps_[i] = -amps_[i];
  }
}

uint64_t StateVector::SampleOnce(Rng& rng) const {
  // Scale the draw by the total probability mass, exactly as SampleCounts
  // does: for states whose norm has drifted below 1 an unscaled draw in
  // [0, 1) silently over-weights the last basis state, making single-shot
  // measurement disagree in distribution with SampleCounts.
  double total = 0.0;
  for (uint64_t i = 0; i < dim(); ++i) total += std::norm(amps_[i]);
  const double target = rng.Uniform() * total;
  double acc = 0.0;
  for (uint64_t i = 0; i < dim(); ++i) {
    acc += std::norm(amps_[i]);
    if (target < acc) return i;
  }
  return dim() - 1;  // Floating-point slack: fall to the last state.
}

std::map<uint64_t, int> StateVector::SampleCounts(Rng& rng, int shots) const {
  QDB_CHECK_GE(shots, 0);
  std::map<uint64_t, int> counts;
  // CDF + binary search: O(2^n + shots log 2^n).
  DVector cdf(dim());
  double acc = 0.0;
  for (uint64_t i = 0; i < dim(); ++i) {
    acc += std::norm(amps_[i]);
    cdf[i] = acc;
  }
  for (int s = 0; s < shots; ++s) {
    double target = rng.Uniform() * acc;
    auto it = std::upper_bound(cdf.begin(), cdf.end(), target);
    uint64_t idx = static_cast<uint64_t>(it - cdf.begin());
    if (idx >= dim()) idx = dim() - 1;
    ++counts[idx];
  }
  return counts;
}

int StateVector::MeasureQubit(int qubit, Rng& rng) {
  const double p1 = ProbabilityOfOne(qubit);
  const int outcome = rng.Bernoulli(p1) ? 1 : 0;
  const uint64_t mask = uint64_t{1} << BitPos(qubit);
  for (uint64_t i = 0; i < dim(); ++i) {
    const bool bit = i & mask;
    if (bit != (outcome == 1)) amps_[i] = Complex(0.0, 0.0);
  }
  Renormalize();
  return outcome;
}

uint64_t StateVector::MeasureAll(Rng& rng) {
  const uint64_t outcome = SampleOnce(rng);
  std::fill(amps_.begin(), amps_.end(), Complex(0.0, 0.0));
  amps_[outcome] = Complex(1.0, 0.0);
  return outcome;
}

std::string StateVector::BitString(uint64_t index) const {
  std::string out(num_qubits_, '0');
  for (int q = 0; q < num_qubits_; ++q) {
    if (index & (uint64_t{1} << BitPos(q))) out[q] = '1';
  }
  return out;
}

}  // namespace qdb
