// Tests for the ansatz library and VQE.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/eigen.h"
#include "variational/ansatz.h"
#include "variational/vqe.h"

namespace qdb {
namespace {

TEST(AnsatzTest, RealAmplitudesParameterCount) {
  for (int n : {1, 2, 4}) {
    for (int layers : {0, 1, 3}) {
      Circuit c = RealAmplitudesAnsatz(n, layers);
      EXPECT_EQ(c.num_parameters(), RealAmplitudesParamCount(n, layers));
    }
  }
}

TEST(AnsatzTest, EfficientSU2ParameterCount) {
  Circuit c = EfficientSU2Ansatz(3, 2);
  EXPECT_EQ(c.num_parameters(), EfficientSU2ParamCount(3, 2));
  EXPECT_EQ(c.num_parameters(), 18);
}

TEST(AnsatzTest, FirstParamOffset) {
  Circuit c = RealAmplitudesAnsatz(2, 1, Entanglement::kLinear, 10);
  EXPECT_EQ(c.num_parameters(), 10 + RealAmplitudesParamCount(2, 1));
}

TEST(AnsatzTest, EntanglementPatterns) {
  auto count_cx = [](const Circuit& c) {
    int n = 0;
    for (const auto& g : c.gates()) n += g.type == GateType::kCX;
    return n;
  };
  EXPECT_EQ(count_cx(RealAmplitudesAnsatz(4, 1, Entanglement::kLinear)), 3);
  EXPECT_EQ(count_cx(RealAmplitudesAnsatz(4, 1, Entanglement::kCircular)), 4);
  EXPECT_EQ(count_cx(RealAmplitudesAnsatz(4, 1, Entanglement::kFull)), 6);
}

TEST(AnsatzTest, RandomHardwareEfficientIsSeeded) {
  Circuit a = RandomHardwareEfficientAnsatz(3, 2, 42);
  Circuit b = RandomHardwareEfficientAnsatz(3, 2, 42);
  Circuit c = RandomHardwareEfficientAnsatz(3, 2, 43);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_NE(a.ToString(), c.ToString());
  EXPECT_EQ(a.num_parameters(), 6);
}

TEST(ExactGroundStateTest, DiagonalFastPath) {
  PauliSum h(2);
  h.Add(1.0, "ZZ").Add(0.5, "ZI");
  // Energies over basis states: |00⟩: 1.5, |01⟩: −0.5, |10⟩: −1.5, |11⟩: 0.5.
  auto e = ExactGroundStateEnergy(h);
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e.value(), -1.5, 1e-10);
}

TEST(ExactGroundStateTest, NonDiagonalViaEigensolver) {
  // H = X: ground energy −1.
  PauliSum h(1);
  h.Add(1.0, "X");
  auto e = ExactGroundStateEnergy(h);
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e.value(), -1.0, 1e-8);
}

TEST(VqeTest, FindsGroundStateOfSingleQubitField) {
  // H = Z: ground state |1⟩ with energy −1; RY ansatz can reach it.
  PauliSum h(1);
  h.Add(1.0, "Z");
  Circuit ansatz = RealAmplitudesAnsatz(1, 1);
  VqeOptions opts;
  opts.adam.max_iterations = 150;
  opts.adam.learning_rate = 0.1;
  auto result = RunVqe(ansatz, h, opts);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result.value().energy, -1.0, 1e-3);
  EXPECT_GT(result.value().circuit_evaluations, 0);
}

TEST(VqeTest, TransverseFieldIsingTwoQubits) {
  // H = −ZZ − 0.5(XI + IX): ground energy −sqrt(1 + 0.25)·... compute via
  // exact diagonalization and require VQE to match within 1e-2.
  PauliSum h(2);
  h.Add(-1.0, "ZZ").Add(-0.5, "XI").Add(-0.5, "IX");
  auto exact = ExactGroundStateEnergy(h);
  ASSERT_TRUE(exact.ok());

  Circuit ansatz = EfficientSU2Ansatz(2, 2);
  VqeOptions opts;
  opts.adam.max_iterations = 250;
  opts.adam.learning_rate = 0.1;
  opts.seed = 3;
  auto result = RunVqe(ansatz, h, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().energy, exact.value(), 1e-2);
  EXPECT_GE(result.value().energy, exact.value() - 1e-9);  // Variational bound.
}

TEST(VqeTest, EnergyHistoryDecreasesOverall) {
  PauliSum h(2);
  h.Add(-1.0, "ZZ");
  Circuit ansatz = RealAmplitudesAnsatz(2, 1);
  VqeOptions opts;
  opts.adam.max_iterations = 60;
  auto result = RunVqe(ansatz, h, opts);
  ASSERT_TRUE(result.ok());
  const auto& hist = result.value().history;
  ASSERT_GE(hist.size(), 2u);
  EXPECT_LT(hist.back(), hist.front() + 1e-9);
}

TEST(VqeTest, GradientBackendsConvergeToSameEnergy) {
  PauliSum h(2);
  h.Add(-1.0, "ZZ").Add(-0.4, "XI").Add(-0.4, "IX");
  Circuit ansatz = EfficientSU2Ansatz(2, 1);
  VqeOptions adjoint_opts;
  adjoint_opts.adam.max_iterations = 120;
  adjoint_opts.gradient = GradientMethod::kAdjoint;
  VqeOptions shift_opts = adjoint_opts;
  shift_opts.gradient = GradientMethod::kParameterShift;
  auto via_adjoint = RunVqe(ansatz, h, adjoint_opts);
  auto via_shift = RunVqe(ansatz, h, shift_opts);
  ASSERT_TRUE(via_adjoint.ok());
  ASSERT_TRUE(via_shift.ok());
  // Same seed + exact gradients from both backends ⇒ identical trajectory.
  EXPECT_NEAR(via_adjoint.value().energy, via_shift.value().energy, 1e-9);
}

TEST(VqeTest, RejectsMismatchedWidths) {
  PauliSum h(2);
  h.Add(1.0, "ZZ");
  Circuit ansatz = RealAmplitudesAnsatz(3, 1);
  EXPECT_FALSE(RunVqe(ansatz, h).ok());
}

TEST(VqeTest, RejectsParameterFreeAnsatz) {
  PauliSum h(1);
  h.Add(1.0, "Z");
  Circuit fixed(1);
  fixed.H(0);
  EXPECT_FALSE(RunVqe(fixed, h).ok());
}

TEST(VqeTest, ExactGroundStateRejectsWideSystems) {
  PauliSum h(11);
  h.Add(1.0, PauliString(11));
  EXPECT_FALSE(ExactGroundStateEnergy(h).ok());
}

}  // namespace
}  // namespace qdb
