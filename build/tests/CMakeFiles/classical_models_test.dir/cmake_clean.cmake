file(REMOVE_RECURSE
  "CMakeFiles/classical_models_test.dir/classical_models_test.cc.o"
  "CMakeFiles/classical_models_test.dir/classical_models_test.cc.o.d"
  "classical_models_test"
  "classical_models_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classical_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
