// Tests for the swap-test overlap estimator.

#include <gtest/gtest.h>

#include <cmath>

#include "algo/swap_test.h"
#include "linalg/random_unitary.h"
#include "linalg/vector_ops.h"

namespace qdb {
namespace {

TEST(SwapTestTest, IdenticalStatesGiveUnitOverlap) {
  StateVector psi(2);
  psi.Apply1Q(0, GateMatrix(GateType::kH, {}));
  auto overlap = SwapTestOverlap(psi, psi);
  ASSERT_TRUE(overlap.ok());
  EXPECT_NEAR(overlap.value(), 1.0, 1e-10);
}

TEST(SwapTestTest, OrthogonalStatesGiveZero) {
  StateVector zero = StateVector::BasisState(1, 0);
  StateVector one = StateVector::BasisState(1, 1);
  auto overlap = SwapTestOverlap(zero, one);
  ASSERT_TRUE(overlap.ok());
  EXPECT_NEAR(overlap.value(), 0.0, 1e-10);
}

class SwapTestPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SwapTestPropertyTest, MatchesDirectFidelity) {
  // Property: the swap-test statistic equals |⟨ψ|φ⟩|² for random states of
  // 1–3 qubits.
  Rng rng(GetParam());
  const int n = 1 + static_cast<int>(rng.UniformInt(uint64_t{3}));
  auto psi = StateVector::FromAmplitudes(RandomState(uint64_t{1} << n, rng));
  auto phi = StateVector::FromAmplitudes(RandomState(uint64_t{1} << n, rng));
  ASSERT_TRUE(psi.ok());
  ASSERT_TRUE(phi.ok());
  auto overlap = SwapTestOverlap(psi.value(), phi.value());
  ASSERT_TRUE(overlap.ok());
  const double direct =
      Fidelity(psi.value().ToAmplitudes(), phi.value().ToAmplitudes());
  EXPECT_NEAR(overlap.value(), direct, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwapTestPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(SwapTestTest, SampledEstimateConverges) {
  Rng rng(17);
  StateVector psi(1);
  psi.Apply1Q(0, GateMatrix(GateType::kRY, {0.9}));
  StateVector phi(1);
  const double direct = Fidelity(psi.ToAmplitudes(), phi.ToAmplitudes());
  auto sampled = SwapTestOverlapSampled(psi, phi, 20000, rng);
  ASSERT_TRUE(sampled.ok());
  EXPECT_NEAR(sampled.value(), direct, 0.03);
}

TEST(SwapTestTest, WidthMismatchRejected) {
  StateVector a(1), b(2);
  EXPECT_FALSE(SwapTestOverlap(a, b).ok());
}

TEST(SwapTestTest, ShotValidation) {
  StateVector a(1), b(1);
  Rng rng(1);
  EXPECT_FALSE(SwapTestOverlapSampled(a, b, 0, rng).ok());
}

TEST(SwapTestTest, CircuitShape) {
  Circuit c = SwapTestCircuit(3);
  EXPECT_EQ(c.num_qubits(), 7);
  EXPECT_EQ(c.gates().front().type, GateType::kH);
  EXPECT_EQ(c.gates().back().type, GateType::kH);
  int cswaps = 0;
  for (const auto& g : c.gates()) cswaps += g.type == GateType::kCSwap;
  EXPECT_EQ(cswaps, 3);
}

}  // namespace
}  // namespace qdb
