/// \file expectation.h
/// \brief E(θ) = ⟨ψ(θ)|H|ψ(θ)⟩ as a differentiable objective — the loss
/// plumbing shared by VQE, QAOA, and the variational classifier.

#ifndef QDB_AUTODIFF_EXPECTATION_H_
#define QDB_AUTODIFF_EXPECTATION_H_

#include <optional>

#include "circuit/circuit.h"
#include "common/result.h"
#include "ops/pauli.h"
#include "sim/state_vector.h"
#include "sim/statevector_simulator.h"

namespace qdb {

/// \brief Evaluates (and differentiates, see parameter_shift.h) the
/// expectation of an observable after running a parameterized circuit.
///
/// The circuit starts from |0...0⟩ unless an initial state is set (e.g. an
/// amplitude-encoded data point). Evaluation counts are tracked so benches
/// can report circuit-execution budgets.
class ExpectationFunction {
 public:
  /// The observable width must match the circuit width.
  ExpectationFunction(Circuit circuit, PauliSum observable);

  /// Starts runs from `state` instead of |0...0⟩ (width must match).
  void set_initial_state(StateVector state);

  const Circuit& circuit() const { return circuit_; }
  const PauliSum& observable() const { return observable_; }
  int num_parameters() const { return circuit_.num_parameters(); }

  /// E(θ). Fails if θ binds fewer parameters than the circuit references.
  Result<double> Evaluate(const DVector& params) const;

  /// E(θ) with one gate's angle expression additionally shifted: the
  /// `slot`-th angle of gate `gate_index` gets `delta` added to its offset.
  /// This is the primitive the parameter-shift rule is built on.
  Result<double> EvaluateWithShift(const DVector& params, size_t gate_index,
                                   size_t slot, double delta) const;

  /// Total circuit executions performed through this object.
  long evaluation_count() const { return evaluations_; }
  void reset_evaluation_count() { evaluations_ = 0; }

 private:
  Result<double> RunAndMeasure(const Circuit& circuit,
                               const DVector& params) const;

  Circuit circuit_;
  PauliSum observable_;
  std::optional<StateVector> initial_state_;
  StateVectorSimulator simulator_;
  mutable long evaluations_ = 0;
};

}  // namespace qdb

#endif  // QDB_AUTODIFF_EXPECTATION_H_
