// Tests for the density-matrix simulator and noise channels.

#include <gtest/gtest.h>

#include <cmath>

#include "sim/density_simulator.h"
#include "sim/statevector_simulator.h"

namespace qdb {
namespace {

TEST(DensityMatrixTest, InitialPureState) {
  DensityMatrix rho(2);
  EXPECT_NEAR(rho.TraceValue(), 1.0, 1e-12);
  EXPECT_NEAR(rho.Purity(), 1.0, 1e-12);
  EXPECT_EQ(rho.Element(0, 0), Complex(1, 0));
}

TEST(DensityMatrixTest, FromStateVectorMatchesOuterProduct) {
  StateVector psi(1);
  psi.Apply1Q(0, GateMatrix(GateType::kH, {}));
  DensityMatrix rho = DensityMatrix::FromStateVector(psi);
  EXPECT_NEAR(rho.Element(0, 0).real(), 0.5, 1e-12);
  EXPECT_NEAR(rho.Element(0, 1).real(), 0.5, 1e-12);
  EXPECT_NEAR(rho.Element(1, 0).real(), 0.5, 1e-12);
  EXPECT_NEAR(rho.Element(1, 1).real(), 0.5, 1e-12);
}

class NoiselessAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NoiselessAgreementTest, MatchesStateVectorSimulator) {
  // Property: without noise the density simulator reproduces |ψ⟩⟨ψ| of the
  // state-vector simulator for random circuits.
  Rng rng(GetParam());
  Circuit c(3);
  for (int g = 0; g < 15; ++g) {
    const int q = static_cast<int>(rng.UniformInt(uint64_t{3}));
    int q2 = static_cast<int>(rng.UniformInt(uint64_t{2}));
    if (q2 >= q) ++q2;
    switch (rng.UniformInt(uint64_t{6})) {
      case 0: c.H(q); break;
      case 1: c.RY(q, rng.Uniform(-2.0, 2.0)); break;
      case 2: c.RZ(q, rng.Uniform(-2.0, 2.0)); break;
      case 3: c.CX(q, q2); break;
      case 4: c.RZZ(q, q2, rng.Uniform(-2.0, 2.0)); break;
      default: c.T(q); break;
    }
  }
  StateVectorSimulator sv_sim;
  auto psi = sv_sim.Run(c);
  ASSERT_TRUE(psi.ok());
  DensitySimulator dm_sim;
  auto rho = dm_sim.Run(c);
  ASSERT_TRUE(rho.ok());

  Matrix expected =
      DensityMatrix::FromStateVector(psi.value()).ToMatrix();
  EXPECT_TRUE(rho.value().ToMatrix().ApproxEqual(expected, 1e-10));
  EXPECT_NEAR(rho.value().Purity(), 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoiselessAgreementTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(KrausChannelTest, ValidatesCompleteness) {
  // A lone X/2 operator is not trace preserving.
  std::vector<Matrix> bad = {GateMatrix(GateType::kX, {}) * Complex(0.5, 0)};
  EXPECT_FALSE(KrausChannel::Create(bad).ok());
  auto good = DepolarizingChannel(0.1);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value().num_qubits(), 1);
}

TEST(KrausChannelTest, RejectsBadProbabilities) {
  EXPECT_FALSE(DepolarizingChannel(-0.1).ok());
  EXPECT_FALSE(DepolarizingChannel(1.5).ok());
  EXPECT_FALSE(AmplitudeDampingChannel(2.0).ok());
  EXPECT_FALSE(BitFlipChannel(-1.0).ok());
}

TEST(NoiseTest, FullDepolarizingGivesMaximallyMixed) {
  DensityMatrix rho(1);
  rho.ApplyUnitary({0}, GateMatrix(GateType::kH, {}));
  auto channel = DepolarizingChannel(1.0);
  ASSERT_TRUE(channel.ok());
  rho.ApplyKraus({0}, channel.value().operators());
  EXPECT_NEAR(rho.Element(0, 0).real(), 0.5, 1e-10);
  EXPECT_NEAR(rho.Element(1, 1).real(), 0.5, 1e-10);
  EXPECT_NEAR(std::abs(rho.Element(0, 1)), 0.0, 1e-10);
  EXPECT_NEAR(rho.Purity(), 0.5, 1e-10);
}

TEST(NoiseTest, AmplitudeDampingDecaysExcitedState) {
  DensityMatrix rho(1);
  rho.ApplyUnitary({0}, GateMatrix(GateType::kX, {}));  // |1⟩⟨1|
  auto channel = AmplitudeDampingChannel(0.3);
  ASSERT_TRUE(channel.ok());
  rho.ApplyKraus({0}, channel.value().operators());
  EXPECT_NEAR(rho.Element(1, 1).real(), 0.7, 1e-10);
  EXPECT_NEAR(rho.Element(0, 0).real(), 0.3, 1e-10);
}

TEST(NoiseTest, PhaseDampingKillsCoherencesOnly) {
  DensityMatrix rho(1);
  rho.ApplyUnitary({0}, GateMatrix(GateType::kH, {}));
  auto channel = PhaseDampingChannel(1.0);
  ASSERT_TRUE(channel.ok());
  rho.ApplyKraus({0}, channel.value().operators());
  EXPECT_NEAR(rho.Element(0, 0).real(), 0.5, 1e-10);  // Populations kept.
  EXPECT_NEAR(std::abs(rho.Element(0, 1)), 0.0, 1e-10);  // Coherence gone.
}

TEST(NoiseTest, BitFlipChannelMixesPopulations) {
  DensityMatrix rho(1);  // |0⟩⟨0|
  auto channel = BitFlipChannel(0.25);
  ASSERT_TRUE(channel.ok());
  rho.ApplyKraus({0}, channel.value().operators());
  EXPECT_NEAR(rho.Element(0, 0).real(), 0.75, 1e-10);
  EXPECT_NEAR(rho.Element(1, 1).real(), 0.25, 1e-10);
}

class ChannelPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ChannelPropertyTest, TracePreservedPurityNonIncreasing) {
  // Property: every channel preserves trace and cannot increase purity of
  // the maximally-coherent one-qubit state.
  const auto& [which, p] = GetParam();
  Result<KrausChannel> channel =
      which == 0   ? DepolarizingChannel(p)
      : which == 1 ? AmplitudeDampingChannel(p)
      : which == 2 ? PhaseDampingChannel(p)
      : which == 3 ? BitFlipChannel(p)
                   : PhaseFlipChannel(p);
  ASSERT_TRUE(channel.ok());
  DensityMatrix rho(2);
  rho.ApplyUnitary({0}, GateMatrix(GateType::kH, {}));
  rho.ApplyUnitary({0, 1}, GateMatrix(GateType::kCX, {}));
  const double purity_before = rho.Purity();
  rho.ApplyKraus({1}, channel.value().operators());
  EXPECT_NEAR(rho.TraceValue(), 1.0, 1e-9);
  EXPECT_LE(rho.Purity(), purity_before + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Channels, ChannelPropertyTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(0.0, 0.05, 0.3, 1.0)));

TEST(DensitySimulatorTest, NoisyBellStateLosesCorrelation) {
  Circuit bell(2);
  bell.H(0).CX(0, 1);
  auto noiseless = DensitySimulator().Run(bell);
  ASSERT_TRUE(noiseless.ok());
  auto noise = NoiseModel::Depolarizing(0.05, 0.1);
  ASSERT_TRUE(noise.ok());
  auto noisy = DensitySimulator(noise.value()).Run(bell);
  ASSERT_TRUE(noisy.ok());

  PauliSum zz(2);
  zz.Add(1.0, "ZZ");
  const double clean_corr = noiseless.value().ExpectationOf(zz);
  const double noisy_corr = noisy.value().ExpectationOf(zz);
  EXPECT_NEAR(clean_corr, 1.0, 1e-10);
  EXPECT_LT(noisy_corr, clean_corr);
  EXPECT_GT(noisy_corr, 0.5);  // Mild noise: correlation reduced, not gone.
  EXPECT_NEAR(noisy.value().TraceValue(), 1.0, 1e-9);
}

TEST(DensitySimulatorTest, ExpectationMatchesStateVectorWhenNoiseless) {
  Circuit c(2);
  c.H(0).CRY(0, 1, 0.8).RZZ(0, 1, 0.4);
  StateVectorSimulator sv;
  auto psi = sv.Run(c);
  ASSERT_TRUE(psi.ok());
  auto rho = DensitySimulator().Run(c);
  ASSERT_TRUE(rho.ok());
  PauliSum obs(2);
  obs.Add(0.7, "XY").Add(-1.2, "ZZ").Add(0.3, "IX");
  EXPECT_NEAR(rho.value().ExpectationOf(obs), Expectation(psi.value(), obs),
              1e-10);
}

TEST(DensitySimulatorTest, SamplingWithReadoutError) {
  Circuit c(1);  // Stay in |0⟩.
  auto rho = DensitySimulator().Run(c);
  ASSERT_TRUE(rho.ok());
  Rng rng(11);
  auto counts = rho.value().SampleCounts(rng, 10000, /*readout_flip=*/0.1);
  // ~10% of shots should read |1⟩ purely from readout error.
  EXPECT_NEAR(counts[1] / 10000.0, 0.1, 0.02);
}

TEST(DensitySimulatorTest, ProbabilityOfOneUnderNoise) {
  Circuit c(1);
  c.X(0);
  auto noise = NoiseModel::Depolarizing(0.2, 0.0);
  ASSERT_TRUE(noise.ok());
  auto rho = DensitySimulator(noise.value()).Run(c);
  ASSERT_TRUE(rho.ok());
  // Depolarizing(p) keeps ⟨Z⟩ scaled by (1−p): P(1) = (1 + (1−p)) / 2.
  EXPECT_NEAR(rho.value().ProbabilityOfOne(0), 0.9, 1e-10);
}

}  // namespace
}  // namespace qdb
