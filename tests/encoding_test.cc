// Tests for data encodings, including the multiplexed-RY state preparation.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "encoding/encodings.h"
#include "linalg/vector_ops.h"
#include "sim/statevector_simulator.h"
#include "sim/unitary_simulator.h"

namespace qdb {
namespace {

StateVector RunCircuit(const Circuit& c) {
  StateVectorSimulator sim;
  auto result = sim.Run(c);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.value();
}

TEST(BasisEncodingTest, PreparesBasisState) {
  StateVector s = RunCircuit(BasisEncoding({1, 0, 1}));
  EXPECT_EQ(s.amplitude(0b101), Complex(1, 0));
}

TEST(AngleEncodingTest, RyAnglesGiveExpectedProbabilities) {
  const double theta = 1.1;
  StateVector s = RunCircuit(AngleEncoding({theta}, RotationAxis::kY));
  EXPECT_NEAR(s.ProbabilityOfOne(0), std::sin(theta / 2) * std::sin(theta / 2),
              1e-12);
}

TEST(AngleEncodingTest, ScaleMultipliesAngles) {
  StateVector a = RunCircuit(AngleEncoding({0.5}, RotationAxis::kY, 2.0));
  StateVector b = RunCircuit(AngleEncoding({1.0}, RotationAxis::kY, 1.0));
  EXPECT_NEAR(Fidelity(a.ToAmplitudes(), b.ToAmplitudes()), 1.0, 1e-12);
}

TEST(AngleEncodingTest, AxisVariants) {
  // X-axis rotation also moves population; Z-axis creates phases on |+⟩.
  StateVector x = RunCircuit(AngleEncoding({1.0}, RotationAxis::kX));
  EXPECT_GT(x.ProbabilityOfOne(0), 0.1);
  StateVector z = RunCircuit(AngleEncoding({1.0}, RotationAxis::kZ));
  EXPECT_NEAR(z.ProbabilityOfOne(0), 0.5, 1e-12);  // H then RZ: flat.
  EXPECT_GT(std::abs(std::arg(z.amplitude(1) / z.amplitude(0))), 0.5);
}

TEST(ZZFeatureMapTest, WidthAndDifferentiation) {
  Circuit c = ZZFeatureMap({0.3, 0.8, 1.2}, 2);
  EXPECT_EQ(c.num_qubits(), 3);
  // Different data → different states (the map is injective enough here).
  StateVector a = RunCircuit(ZZFeatureMap({0.3, 0.8}, 2));
  StateVector b = RunCircuit(ZZFeatureMap({0.9, 0.1}, 2));
  EXPECT_LT(Fidelity(a.ToAmplitudes(), b.ToAmplitudes()), 0.999);
}

TEST(ZZFeatureMapTest, SingleFeatureHasNoEntanglers) {
  Circuit c = ZZFeatureMap({0.5}, 1);
  for (const auto& g : c.gates()) {
    EXPECT_LT(g.qubits.size(), 2u);
  }
}

TEST(MultiplexedRyTest, NoControlsIsPlainRy) {
  Circuit c(1);
  AppendMultiplexedRY(c, {}, 0, {0.7});
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.gates()[0].type, GateType::kRY);
}

TEST(MultiplexedRyTest, MatchesBlockDiagonalReference) {
  // Reference: diag(RY(θ0), RY(θ1)) with the control as the high bit.
  const DVector angles = {0.4, -1.3};
  Circuit c(2);
  AppendMultiplexedRY(c, {0}, 1, angles);
  auto u = CircuitUnitary(c);
  ASSERT_TRUE(u.ok());
  Matrix expected(4, 4);
  for (int block = 0; block < 2; ++block) {
    Matrix ry = GateMatrix(GateType::kRY, {angles[block]});
    for (int r = 0; r < 2; ++r) {
      for (int col = 0; col < 2; ++col) {
        expected(2 * block + r, 2 * block + col) = ry(r, col);
      }
    }
  }
  EXPECT_TRUE(u.value().ApproxEqual(expected, 1e-10));
}

TEST(MultiplexedRyTest, TwoControlsBlockStructure) {
  const DVector angles = {0.1, 0.9, -0.4, 2.2};
  Circuit c(3);
  AppendMultiplexedRY(c, {0, 1}, 2, angles);
  auto u = CircuitUnitary(c);
  ASSERT_TRUE(u.ok());
  for (int block = 0; block < 4; ++block) {
    Matrix ry = GateMatrix(GateType::kRY, {angles[block]});
    for (int r = 0; r < 2; ++r) {
      for (int col = 0; col < 2; ++col) {
        EXPECT_NEAR(std::abs(u.value()(2 * block + r, 2 * block + col) -
                             ry(r, col)),
                    0.0, 1e-10)
            << "block " << block;
      }
    }
  }
}

TEST(AmplitudeEncodingTest, RejectsDegenerateInput) {
  EXPECT_FALSE(AmplitudeEncoding({}).ok());
  EXPECT_FALSE(AmplitudeEncoding({0.0, 0.0}).ok());
}

TEST(AmplitudeEncodingTest, PadsToPowerOfTwo) {
  auto state = AmplitudeEncodedState({1.0, 1.0, 1.0});
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state.value().size(), 4u);
  EXPECT_NEAR(std::abs(state.value()[3]), 0.0, 1e-12);
}

class AmplitudeEncodingPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(AmplitudeEncodingPropertyTest, CircuitPreparesNormalizedVector) {
  // Property: for random real vectors (mixed signs), the state-prep circuit
  // produces exactly the normalized amplitudes.
  const auto& [length, seed] = GetParam();
  Rng rng(seed);
  DVector x(length);
  for (auto& v : x) v = rng.Uniform(-1.0, 1.0);
  if (Norm(x) < 1e-6) x[0] = 1.0;

  auto circuit = AmplitudeEncoding(x);
  ASSERT_TRUE(circuit.ok()) << circuit.status();
  auto expected = AmplitudeEncodedState(x);
  ASSERT_TRUE(expected.ok());

  StateVector s = RunCircuit(circuit.value());
  ASSERT_EQ(s.dim(), expected.value().size());
  for (uint64_t i = 0; i < s.dim(); ++i) {
    EXPECT_NEAR(std::abs(s.amplitude(i) - expected.value()[i]), 0.0, 1e-9)
        << "len=" << length << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AmplitudeEncodingPropertyTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 7, 8, 16),
                       ::testing::Values(1u, 2u, 3u)));

TEST(AmplitudeEncodingTest, SingleElementVector) {
  auto circuit = AmplitudeEncoding({5.0});
  ASSERT_TRUE(circuit.ok());
  StateVector s = RunCircuit(circuit.value());
  EXPECT_NEAR(std::abs(s.amplitude(0)), 1.0, 1e-12);
}

TEST(AmplitudeEncodingTest, HandlesNegativeLeadingAmplitude) {
  auto circuit = AmplitudeEncoding({-3.0, 4.0});
  ASSERT_TRUE(circuit.ok());
  StateVector s = RunCircuit(circuit.value());
  EXPECT_NEAR(s.amplitude(0).real(), -0.6, 1e-9);
  EXPECT_NEAR(s.amplitude(1).real(), 0.8, 1e-9);
}

}  // namespace
}  // namespace qdb
