// Tests for Haar-random unitaries, states, and Hermitian matrices.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/random_unitary.h"
#include "linalg/vector_ops.h"

namespace qdb {
namespace {

class RandomUnitaryTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomUnitaryTest, IsUnitary) {
  Rng rng(40 + GetParam());
  Matrix u = RandomUnitary(GetParam(), rng);
  EXPECT_TRUE(u.IsUnitary(1e-9)) << "n=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomUnitaryTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

TEST(RandomUnitaryTest, DeterministicBySeed) {
  Rng a(9), b(9);
  Matrix u1 = RandomUnitary(4, a);
  Matrix u2 = RandomUnitary(4, b);
  EXPECT_TRUE(u1.ApproxEqual(u2, 0.0));
}

TEST(RandomUnitaryTest, HaarFirstMomentVanishes) {
  // E[U_00] = 0 under Haar; the sample mean over many draws should be small.
  Rng rng(77);
  Complex mean(0, 0);
  const int samples = 400;
  for (int s = 0; s < samples; ++s) {
    Matrix u = RandomUnitary(2, rng);
    mean += u(0, 0);
  }
  mean /= static_cast<double>(samples);
  EXPECT_LT(std::abs(mean), 0.08);
}

TEST(RandomStateTest, UnitNorm) {
  Rng rng(13);
  for (int n : {1, 2, 4, 8, 32}) {
    CVector v = RandomState(n, rng);
    EXPECT_NEAR(Norm(v), 1.0, 1e-12);
  }
}

TEST(RandomStateTest, DistinctDraws) {
  Rng rng(15);
  CVector a = RandomState(8, rng);
  CVector b = RandomState(8, rng);
  EXPECT_LT(Fidelity(a, b), 0.999);
}

TEST(RandomHermitianTest, IsHermitian) {
  Rng rng(17);
  for (int n : {1, 2, 5, 9}) {
    EXPECT_TRUE(RandomHermitian(n, rng).IsHermitian(1e-15));
  }
}

}  // namespace
}  // namespace qdb
