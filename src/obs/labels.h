/// \file labels.h
/// \brief Dimensional metrics: a LabeledFamily<M> maps a bounded set of
/// label-value tuples (e.g. {model, outcome}) to child metrics, so
/// per-model / per-outcome counters and latency histograms fall out of the
/// ordinary text / JSON export.
///
/// Cardinality is explicitly capped per family: the first `max_cardinality`
/// distinct label sets get their own child, every later set is routed to a
/// shared overflow child whose label values are all "__overflow__" (and the
/// family counts how many lookups overflowed). A serving tier fed
/// adversarial or unbounded label values (request ids, raw inputs) therefore
/// degrades to one coarse bucket instead of growing the registry without
/// bound — the same containment idea as the bounded request queue.
///
/// Cost model: WithLabels is one mutex-guarded hash lookup — O(1) after the
/// first touch of a label set — and the returned pointer is stable for the
/// process lifetime, so per-servable hot paths resolve their children once
/// and then pay only the relaxed-atomic update of the underlying metric.

#ifndef QDB_OBS_LABELS_H_
#define QDB_OBS_LABELS_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "obs/metrics.h"

namespace qdb {
namespace obs {

/// Default distinct-label-set cap per family; chosen for a serving tier
/// with tens of models times a handful of outcomes.
inline constexpr size_t kDefaultLabelCardinality = 64;

/// Label value assigned to every key of a family's overflow child.
inline constexpr const char* kOverflowLabelValue = "__overflow__";

/// \brief Bounded-cardinality family of labeled child metrics. M is
/// Counter, Gauge, or Histogram. Thread-safe; children are never deleted.
template <typename M>
class LabeledFamily {
 public:
  using Factory = std::function<std::unique_ptr<M>()>;

  /// `keys` are the label names, fixed for the family's lifetime; every
  /// WithLabels call must supply exactly keys().size() values.
  LabeledFamily(std::string name, std::vector<std::string> keys,
                size_t max_cardinality, Factory factory)
      : name_(std::move(name)),
        keys_(std::move(keys)),
        max_cardinality_(max_cardinality > 0 ? max_cardinality : 1),
        factory_(std::move(factory)) {
    QDB_CHECK(!keys_.empty()) << "a labeled family needs at least one key";
  }

  /// The child metric for this label-value tuple, creating it on first
  /// touch. Beyond the cardinality cap, returns the shared overflow child.
  M* WithLabels(const std::vector<std::string>& values) {
    QDB_CHECK(values.size() == keys_.size())
        << "family '" << name_ << "' takes " << keys_.size() << " labels";
    const std::string key = JoinValues(values);
    std::lock_guard<std::mutex> lock(mu_);
    auto it = children_.find(key);
    if (it != children_.end()) return it->second.metric.get();
    if (children_.size() >= max_cardinality_) {
      ++overflowed_;
      return OverflowLocked();
    }
    Child child;
    child.values = values;
    child.metric = factory_();
    M* metric = child.metric.get();
    children_.emplace(key, std::move(child));
    return metric;
  }

  /// Convenience for literal label tuples:
  /// family->With("moons-vqc", "ok")->Increment();
  template <typename... V>
  M* With(const V&... values) {
    return WithLabels(std::vector<std::string>{std::string(values)...});
  }

  const std::string& name() const { return name_; }
  const std::vector<std::string>& keys() const { return keys_; }
  size_t max_cardinality() const { return max_cardinality_; }

  /// Distinct non-overflow label sets seen so far.
  size_t cardinality() const {
    std::lock_guard<std::mutex> lock(mu_);
    return children_.size();
  }

  /// Lookups that were routed to the overflow child.
  long overflowed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return overflowed_;
  }

  /// One exported child: its label values (aligned with keys()) and metric.
  struct ChildView {
    std::vector<std::string> values;
    M* metric;
  };

  /// Stable snapshot of every child (overflow last when present), sorted by
  /// label values so exports are deterministic.
  std::vector<ChildView> Children() const {
    std::vector<ChildView> out;
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(children_.size() + (overflow_ ? 1 : 0));
    for (const auto& [key, child] : children_) {
      out.push_back(ChildView{child.values, child.metric.get()});
    }
    std::sort(out.begin(), out.end(),
              [](const ChildView& a, const ChildView& b) {
                return a.values < b.values;
              });
    if (overflow_) {
      out.push_back(ChildView{
          std::vector<std::string>(keys_.size(), kOverflowLabelValue),
          overflow_.get()});
    }
    return out;
  }

  /// Zeroes every child (pointers stay valid) and the overflow tally; the
  /// children themselves remain registered. Test helper.
  void ResetAll() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [key, child] : children_) child.metric->Reset();
    if (overflow_) overflow_->Reset();
    overflowed_ = 0;
  }

 private:
  struct Child {
    std::vector<std::string> values;
    std::unique_ptr<M> metric;
  };

  static std::string JoinValues(const std::vector<std::string>& values) {
    std::string key;
    for (const auto& v : values) {
      key += v;
      key += '\x1f';  // Unit separator: cannot collide with metric text.
    }
    return key;
  }

  M* OverflowLocked() {
    if (!overflow_) overflow_ = factory_();
    return overflow_.get();
  }

  const std::string name_;
  const std::vector<std::string> keys_;
  const size_t max_cardinality_;
  const Factory factory_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Child> children_;
  std::unique_ptr<M> overflow_;
  long overflowed_ = 0;
};

using CounterFamily = LabeledFamily<Counter>;
using GaugeFamily = LabeledFamily<Gauge>;
using HistogramFamily = LabeledFamily<Histogram>;

/// Renders `{k="v",k2="v2"}` for exports and debugging.
std::string FormatLabels(const std::vector<std::string>& keys,
                         const std::vector<std::string>& values);

}  // namespace obs
}  // namespace qdb

#endif  // QDB_OBS_LABELS_H_
