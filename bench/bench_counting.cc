// E15 — Quantum counting as COUNT(*)/selectivity estimation.
//
// Regenerates the amplitude-estimation comparison: relative error of the
// quantum count estimate vs classical uniform sampling at a *matched
// oracle budget*, sweeping the precision register. Expected shape: QAE
// error falls ~1/budget (one extra ancilla doubles the budget and halves
// the error) while classical sampling falls ~1/√budget — the quadratic
// estimation advantage; at small budgets classical sampling wins on
// constants.

#include <benchmark/benchmark.h>

#include <cmath>

#include "algo/quantum_counting.h"

namespace qdb {
namespace {

struct Workload {
  int num_qubits = 8;          // A 256-key table.
  std::vector<uint64_t> marked;  // The predicate's matching keys.
  double true_fraction = 0.0;
};

Workload MakeWorkload(int num_marked) {
  Workload w;
  for (int i = 0; i < num_marked; ++i) {
    w.marked.push_back((97 * i + 13) % 256);
  }
  w.true_fraction = num_marked / 256.0;
  return w;
}

void BM_QuantumCounting(benchmark::State& state) {
  const int precision = static_cast<int>(state.range(0));
  Workload w = MakeWorkload(24);
  double rel_error = 0.0;
  long oracle_calls = 0;
  for (auto _ : state) {
    Rng rng(31);
    auto est = EstimateMarkedCount(w.num_qubits, w.marked, precision,
                                   /*shots=*/64, rng);
    if (!est.ok()) {
      state.SkipWithError(est.status().ToString().c_str());
      return;
    }
    rel_error = std::abs(est.value().estimated_fraction - w.true_fraction) /
                w.true_fraction;
    oracle_calls = (long{1} << precision) - 1;  // Per estimate (one shot).
  }
  state.SetLabel("quantum (QAE)");
  state.counters["precision_qubits"] = precision;
  state.counters["oracle_budget"] = static_cast<double>(oracle_calls);
  state.counters["rel_error"] = rel_error;
}

BENCHMARK(BM_QuantumCounting)
    ->DenseRange(3, 8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_ClassicalSampling(benchmark::State& state) {
  // Same oracle budgets as the QAE points: 2^t − 1 probes.
  const int precision = static_cast<int>(state.range(0));
  const int budget = (1 << precision) - 1;
  Workload w = MakeWorkload(24);
  double rel_error = 0.0;
  for (auto _ : state) {
    // Average |error| over repetitions (sampling is high-variance).
    Rng rng(37);
    const int reps = 200;
    double total = 0.0;
    for (int r = 0; r < reps; ++r) {
      const double est =
          ClassicalSampledFraction(w.num_qubits, w.marked, budget, rng);
      total += std::abs(est - w.true_fraction) / w.true_fraction;
    }
    rel_error = total / reps;
  }
  state.SetLabel("classical sampling");
  state.counters["precision_qubits"] = precision;
  state.counters["oracle_budget"] = budget;
  state.counters["rel_error"] = rel_error;
}

BENCHMARK(BM_ClassicalSampling)
    ->DenseRange(3, 8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_CountingSelectivitySweep(benchmark::State& state) {
  // Accuracy across predicate selectivities at fixed precision t = 7.
  const int num_marked = static_cast<int>(state.range(0));
  Workload w = MakeWorkload(num_marked);
  double est_fraction = 0.0;
  for (auto _ : state) {
    Rng rng(41);
    auto est = EstimateMarkedCount(w.num_qubits, w.marked, 7, 64, rng);
    if (!est.ok()) {
      state.SkipWithError(est.status().ToString().c_str());
      return;
    }
    est_fraction = est.value().estimated_fraction;
  }
  state.counters["true_fraction"] = w.true_fraction;
  state.counters["estimated_fraction"] = est_fraction;
}

BENCHMARK(BM_CountingSelectivitySweep)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Arg(96)
    ->Arg(192)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qdb

BENCHMARK_MAIN();
