file(REMOVE_RECURSE
  "CMakeFiles/bench_grover.dir/bench_grover.cc.o"
  "CMakeFiles/bench_grover.dir/bench_grover.cc.o.d"
  "bench_grover"
  "bench_grover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
