#include "store/binary_format.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/strings.h"
#include "fault/fault_injector.h"
#include "obs/labels.h"
#include "obs/obs.h"

namespace qdb {
namespace store {

namespace {

using serve::ModelArtifact;
using serve::ModelType;

constexpr char kMagic[8] = {'Q', 'D', 'B', 'S', 'T', 'O', 'R', '1'};
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kHeaderSize = 64;
constexpr size_t kTableEntrySize = 32;
constexpr size_t kAlignment = 64;

// Header field offsets (see binary_format.h for the layout diagram).
constexpr size_t kOffMagic = 0;
constexpr size_t kOffVersion = 8;
constexpr size_t kOffFlags = 12;
constexpr size_t kOffSectionCount = 16;
constexpr size_t kOffFileSize = 24;
constexpr size_t kOffHeaderChecksum = 32;

enum SectionType : uint32_t {
  kSectionMeta = 1,
  kSectionParams = 2,
  kSectionFingerprint = 3,
  kSectionSupportVectors = 4,
  kSectionQuboConfig = 5,
};

// Caps mirror the text reader's plausibility limits so a corrupted count
// can never turn into a giant allocation.
constexpr uint64_t kMaxVectorCount = 1ull << 24;
constexpr uint64_t kMaxConfigCount = 1ull << 20;
constexpr uint64_t kMaxFeatures = 1ull << 20;
constexpr uint32_t kMaxSections = 64;

uint64_t Fnv1a(const char* data, size_t n) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

// --- little-endian scalar append/read (native layout on every platform we
// build for; the format is defined as little-endian) -------------------------

template <typename T>
void Put(std::string& out, T v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void PutAt(std::string& out, size_t offset, T v) {
  std::memcpy(&out[offset], &v, sizeof(T));
}

// Bounds-checked scalar read; false = out of range.
template <typename T>
bool Get(const std::string& bytes, size_t offset, T& v) {
  if (offset + sizeof(T) > bytes.size() || offset + sizeof(T) < offset) {
    return false;
  }
  std::memcpy(&v, bytes.data() + offset, sizeof(T));
  return true;
}

Status Corrupted(const std::string& what) {
  return Status::InvalidArgument(
      StrCat("binary artifact corrupted: ", what));
}

struct Section {
  uint32_t type = 0;
  std::string payload;
};

std::string BuildMetaSection(const ModelArtifact& a) {
  std::string s;
  s.reserve(64 + a.name.size());
  Put<uint32_t>(s, static_cast<uint32_t>(a.type));
  Put<int32_t>(s, a.version);
  Put<int32_t>(s, a.num_features);
  Put<uint32_t>(s, static_cast<uint32_t>(a.encoding));
  Put<int32_t>(s, a.ansatz_layers);
  Put<uint32_t>(s, static_cast<uint32_t>(a.entanglement));
  Put<uint32_t>(s, static_cast<uint32_t>(a.kernel_encoding));
  Put<int32_t>(s, a.kernel_reps);
  Put<double>(s, a.feature_scale);
  Put<double>(s, a.kernel_scale);
  Put<double>(s, a.bias);
  Put<uint32_t>(s, static_cast<uint32_t>(a.name.size()));
  Put<uint32_t>(s, 0u);  // reserved
  s += a.name;
  return s;
}

Status ParseMetaSection(const std::string& s, ModelArtifact& a) {
  constexpr size_t kMetaFixed = 64;
  if (s.size() < kMetaFixed) return Corrupted("meta section too small");
  uint32_t type = 0, encoding = 0, entanglement = 0, kernel_encoding = 0;
  uint32_t name_len = 0, reserved = 0;
  int32_t version = 0, num_features = 0, ansatz_layers = 0, kernel_reps = 0;
  Get(s, 0, type);
  Get(s, 4, version);
  Get(s, 8, num_features);
  Get(s, 12, encoding);
  Get(s, 16, ansatz_layers);
  Get(s, 20, entanglement);
  Get(s, 24, kernel_encoding);
  Get(s, 28, kernel_reps);
  Get(s, 32, a.feature_scale);
  Get(s, 40, a.kernel_scale);
  Get(s, 48, a.bias);
  Get(s, 56, name_len);
  Get(s, 60, reserved);
  if (type > static_cast<uint32_t>(ModelType::kQuboConfig)) {
    return Corrupted("unknown model type");
  }
  if (encoding > static_cast<uint32_t>(VqcEncoding::kReuploading)) {
    return Corrupted("unknown encoding");
  }
  if (entanglement > static_cast<uint32_t>(Entanglement::kFull)) {
    return Corrupted("unknown entanglement");
  }
  if (kernel_encoding >
      static_cast<uint32_t>(serve::KernelEncodingKind::kZZFeatureMap)) {
    return Corrupted("unknown kernel encoding");
  }
  if (reserved != 0) return Corrupted("nonzero meta reserved field");
  if (num_features < 0 ||
      static_cast<uint64_t>(num_features) > kMaxFeatures) {
    return Corrupted("implausible feature count");
  }
  if (name_len != s.size() - kMetaFixed) {
    return Corrupted("meta name length does not match section size");
  }
  a.type = static_cast<ModelType>(type);
  a.version = version;
  a.num_features = num_features;
  a.encoding = static_cast<VqcEncoding>(encoding);
  a.ansatz_layers = ansatz_layers;
  a.entanglement = static_cast<Entanglement>(entanglement);
  a.kernel_encoding = static_cast<serve::KernelEncodingKind>(kernel_encoding);
  a.kernel_reps = kernel_reps;
  a.name = s.substr(kMetaFixed, name_len);
  return Status::OK();
}

std::string BuildParamsSection(const ModelArtifact& a) {
  std::string s;
  s.reserve(8 + a.params.size() * sizeof(double));
  Put<uint64_t>(s, a.params.size());
  s.append(reinterpret_cast<const char*>(a.params.data()),
           a.params.size() * sizeof(double));
  return s;
}

Status ParseParamsSection(const std::string& s, ModelArtifact& a) {
  uint64_t count = 0;
  if (!Get(s, 0, count)) return Corrupted("params section too small");
  if (count > kMaxVectorCount) return Corrupted("implausible params count");
  if (s.size() != 8 + count * sizeof(double)) {
    return Corrupted("params section size does not match its count");
  }
  a.params.resize(static_cast<size_t>(count));
  std::memcpy(a.params.data(), s.data() + 8, count * sizeof(double));
  return Status::OK();
}

// Support vectors are stored SoA — all m coefficients, then the m×d feature
// matrix row-major — so loading is two memcpys instead of m row parses.
std::string BuildSupportVectorSection(const ModelArtifact& a) {
  const size_t m = a.support_vectors.size();
  const size_t d = static_cast<size_t>(a.num_features);
  std::string s;
  s.reserve(8 + m * (d + 1) * sizeof(double));
  Put<uint64_t>(s, m);
  for (const auto& sv : a.support_vectors) Put<double>(s, sv.coeff);
  for (const auto& sv : a.support_vectors) {
    s.append(reinterpret_cast<const char*>(sv.features.data()),
             sv.features.size() * sizeof(double));
  }
  return s;
}

Status ParseSupportVectorSection(const std::string& s, ModelArtifact& a) {
  uint64_t m = 0;
  if (!Get(s, 0, m)) return Corrupted("support-vector section too small");
  if (m > kMaxVectorCount) {
    return Corrupted("implausible support-vector count");
  }
  const uint64_t d = static_cast<uint64_t>(a.num_features);
  if (s.size() != 8 + m * (d + 1) * sizeof(double)) {
    return Corrupted("support-vector section size does not match its count");
  }
  a.support_vectors.resize(static_cast<size_t>(m));
  const char* coeffs = s.data() + 8;
  const char* features = coeffs + m * sizeof(double);
  for (uint64_t i = 0; i < m; ++i) {
    auto& sv = a.support_vectors[static_cast<size_t>(i)];
    std::memcpy(&sv.coeff, coeffs + i * sizeof(double), sizeof(double));
    sv.features.resize(static_cast<size_t>(d));
    std::memcpy(sv.features.data(), features + i * d * sizeof(double),
                d * sizeof(double));
  }
  return Status::OK();
}

std::string BuildQuboConfigSection(const ModelArtifact& a) {
  std::string s;
  Put<uint64_t>(s, a.config.size());
  for (const auto& [key, value] : a.config) {
    Put<uint32_t>(s, static_cast<uint32_t>(key.size()));
    Put<uint32_t>(s, static_cast<uint32_t>(value.size()));
    s += key;
    s += value;
  }
  return s;
}

Status ParseQuboConfigSection(const std::string& s, ModelArtifact& a) {
  uint64_t count = 0;
  if (!Get(s, 0, count)) return Corrupted("config section too small");
  if (count > kMaxConfigCount) return Corrupted("implausible config count");
  size_t cursor = 8;
  a.config.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t klen = 0, vlen = 0;
    if (!Get(s, cursor, klen) || !Get(s, cursor + 4, vlen)) {
      return Corrupted("config entry header out of range");
    }
    cursor += 8;
    if (klen == 0) return Corrupted("config entry has an empty key");
    if (cursor + static_cast<size_t>(klen) + vlen > s.size() ||
        cursor + static_cast<size_t>(klen) + vlen < cursor) {
      return Corrupted("config entry bytes out of range");
    }
    std::string key = s.substr(cursor, klen);
    cursor += klen;
    std::string value = s.substr(cursor, vlen);
    cursor += vlen;
    a.config.emplace_back(std::move(key), std::move(value));
  }
  if (cursor != s.size()) return Corrupted("config section has trailing data");
  return Status::OK();
}

obs::LabeledFamily<obs::Counter>* LoadCounters() {
  static obs::LabeledFamily<obs::Counter>* family =
      obs::MetricsRegistry::Global().GetCounterFamily("store.artifact_loads",
                                                      {"format"});
  return family;
}

}  // namespace

const char* ArtifactFormatName(ArtifactFormat format) {
  switch (format) {
    case ArtifactFormat::kText: return "text";
    case ArtifactFormat::kBinary: return "binary";
  }
  return "text";
}

bool LooksBinary(const std::string& bytes) {
  return bytes.size() >= sizeof(kMagic) &&
         std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0;
}

std::string SerializeBinary(const serve::ModelArtifact& artifact) {
  std::vector<Section> sections;
  sections.push_back({kSectionMeta, BuildMetaSection(artifact)});
  switch (artifact.type) {
    case ModelType::kVqcClassifier:
    case ModelType::kVqrRegressor: {
      sections.push_back({kSectionParams, BuildParamsSection(artifact)});
      std::string fp;
      Put<uint64_t>(fp, artifact.circuit_fingerprint);
      sections.push_back({kSectionFingerprint, std::move(fp)});
      break;
    }
    case ModelType::kKernelSvm:
      sections.push_back(
          {kSectionSupportVectors, BuildSupportVectorSection(artifact)});
      break;
    case ModelType::kQuboConfig:
      sections.push_back({kSectionQuboConfig, BuildQuboConfigSection(artifact)});
      break;
  }

  // Lay out payloads 64-byte aligned after the header + table.
  const size_t table_size = sections.size() * kTableEntrySize;
  size_t cursor = kHeaderSize + table_size;
  std::vector<size_t> offsets(sections.size());
  for (size_t i = 0; i < sections.size(); ++i) {
    cursor = (cursor + kAlignment - 1) / kAlignment * kAlignment;
    offsets[i] = cursor;
    cursor += sections[i].payload.size();
  }
  const size_t file_size = cursor;

  std::string out(kHeaderSize + table_size, '\0');
  std::memcpy(&out[kOffMagic], kMagic, sizeof(kMagic));
  PutAt<uint32_t>(out, kOffVersion, kFormatVersion);
  PutAt<uint32_t>(out, kOffFlags, 0u);
  PutAt<uint32_t>(out, kOffSectionCount,
                  static_cast<uint32_t>(sections.size()));
  PutAt<uint64_t>(out, kOffFileSize, file_size);
  for (size_t i = 0; i < sections.size(); ++i) {
    const size_t entry = kHeaderSize + i * kTableEntrySize;
    PutAt<uint32_t>(out, entry, sections[i].type);
    PutAt<uint32_t>(out, entry + 4, 0u);  // reserved
    PutAt<uint64_t>(out, entry + 8, offsets[i]);
    PutAt<uint64_t>(out, entry + 16, sections[i].payload.size());
    PutAt<uint64_t>(out, entry + 24,
                    Fnv1a(sections[i].payload.data(),
                          sections[i].payload.size()));
  }
  // The header checksum covers the header (checksum field zeroed, padding
  // included) and the section table, so any flipped byte there fails closed.
  PutAt<uint64_t>(out, kOffHeaderChecksum,
                  Fnv1a(out.data(), out.size()));

  out.resize(file_size, '\0');
  for (size_t i = 0; i < sections.size(); ++i) {
    std::memcpy(&out[offsets[i]], sections[i].payload.data(),
                sections[i].payload.size());
  }
  return out;
}

Result<serve::ModelArtifact> DeserializeBinary(const std::string& bytes) {
  if (!LooksBinary(bytes)) {
    return Status::InvalidArgument(
        "not a qdb binary artifact (bad magic header)");
  }
  if (bytes.size() < kHeaderSize) return Corrupted("truncated header");

  uint32_t version = 0, flags = 0, section_count = 0;
  uint64_t file_size = 0, stored_header_checksum = 0;
  Get(bytes, kOffVersion, version);
  Get(bytes, kOffFlags, flags);
  Get(bytes, kOffSectionCount, section_count);
  Get(bytes, kOffFileSize, file_size);
  Get(bytes, kOffHeaderChecksum, stored_header_checksum);

  if (section_count == 0 || section_count > kMaxSections) {
    return Corrupted("implausible section count");
  }
  const size_t table_end =
      kHeaderSize + static_cast<size_t>(section_count) * kTableEntrySize;
  if (bytes.size() < table_end) return Corrupted("truncated section table");

  // Verify the header+table checksum *before* trusting any other field
  // (including format_version): a flipped byte must read as corruption, not
  // as a mysterious future format.
  {
    std::string prefix = bytes.substr(0, table_end);
    PutAt<uint64_t>(prefix, kOffHeaderChecksum, 0ull);
    if (Fnv1a(prefix.data(), prefix.size()) != stored_header_checksum) {
      return Corrupted("header checksum mismatch (file damaged or edited)");
    }
  }
  if (version != kFormatVersion) {
    return Status::Unimplemented(
        StrCat("unsupported binary artifact format version ", version,
               " (this build reads format ", kFormatVersion, ")"));
  }
  if (flags != 0) {
    return Status::Unimplemented(
        StrCat("binary artifact uses unsupported flags ", flags));
  }
  if (file_size != bytes.size()) {
    return Corrupted(StrCat("file is ", bytes.size(), " bytes but the header "
                            "says ", file_size, " (truncated?)"));
  }

  // Validate every table entry and its payload checksum up front.
  struct Entry {
    uint32_t type;
    size_t offset;
    size_t size;
  };
  std::vector<Entry> entries;
  entries.reserve(section_count);
  uint32_t seen_known = 0;  // Bitmask over SectionType.
  for (uint32_t i = 0; i < section_count; ++i) {
    const size_t e = kHeaderSize + i * kTableEntrySize;
    uint32_t type = 0;
    uint64_t offset = 0, size = 0, checksum = 0;
    Get(bytes, e, type);
    Get(bytes, e + 8, offset);
    Get(bytes, e + 16, size);
    Get(bytes, e + 24, checksum);
    if (offset < table_end || offset > bytes.size() ||
        size > bytes.size() - offset) {
      return Corrupted(StrCat("section ", i, " is out of range"));
    }
    if (Fnv1a(bytes.data() + offset, static_cast<size_t>(size)) != checksum) {
      return Corrupted(StrCat("section ", i,
                              " checksum mismatch (file damaged or edited)"));
    }
    // The writer emits each known section at most once. A crafted file that
    // repeats one would append config entries twice or silently overwrite
    // earlier payloads, so duplicates fail closed; only *unknown* types may
    // repeat (forward compatibility).
    if (type >= kSectionMeta && type <= kSectionQuboConfig) {
      const uint32_t bit = 1u << type;
      if (seen_known & bit) {
        return Corrupted(StrCat("duplicate section of type ", type));
      }
      seen_known |= bit;
    }
    entries.push_back({type, static_cast<size_t>(offset),
                       static_cast<size_t>(size)});
  }

  // Meta first (support-vector geometry depends on num_features), then the
  // rest in table order. Unknown section types were checksum-verified above
  // and are skipped for forward compatibility.
  ModelArtifact a;
  bool have_meta = false;
  for (const Entry& e : entries) {
    if (e.type != kSectionMeta) continue;
    QDB_RETURN_IF_ERROR(
        ParseMetaSection(bytes.substr(e.offset, e.size), a));
    have_meta = true;
    break;  // Duplicates were rejected above.
  }
  if (!have_meta) return Corrupted("missing meta section");
  for (const Entry& e : entries) {
    const std::string payload = bytes.substr(e.offset, e.size);
    switch (e.type) {
      case kSectionMeta:
        break;
      case kSectionParams:
        QDB_RETURN_IF_ERROR(ParseParamsSection(payload, a));
        break;
      case kSectionFingerprint:
        if (payload.size() != sizeof(uint64_t)) {
          return Corrupted("fingerprint section has the wrong size");
        }
        Get(payload, 0, a.circuit_fingerprint);
        break;
      case kSectionSupportVectors:
        QDB_RETURN_IF_ERROR(ParseSupportVectorSection(payload, a));
        break;
      case kSectionQuboConfig:
        QDB_RETURN_IF_ERROR(ParseQuboConfigSection(payload, a));
        break;
      default:
        break;  // Forward-compatible skip.
    }
  }
  return a;
}

Status AtomicWriteFile(const std::string& path, const std::string& payload,
                       const std::string& fault_scope) {
  // Fault point "artifact.save": an injected error aborts before any byte
  // is written; a torn write persists only a prefix of the temp file and
  // "crashes" before the rename below, so the destination is never left
  // half-written.
  size_t write_bytes = payload.size();
  bool torn = false;
  bool kill_after_write = false;
  if (fault::FaultInjector::Global().enabled()) {
    if (std::optional<fault::FaultSpec> fired =
            fault::FaultInjector::Global().Sample("artifact.save",
                                                  fault_scope)) {
      switch (fired->kind) {
        case fault::FaultKind::kError:
          return Status(fired->error_code,
                        StrCat("injected fault at 'artifact.save' for '",
                               fault_scope, "'"));
        case fault::FaultKind::kLatency:
          std::this_thread::sleep_for(
              std::chrono::microseconds(fired->latency_us));
          break;
        case fault::FaultKind::kTornWrite:
          torn = true;
          write_bytes = static_cast<size_t>(
              static_cast<double>(payload.size()) * fired->keep_fraction);
          break;
        case fault::FaultKind::kKill:
          // A real crash mid-save: persist keep_fraction of the temp file,
          // then SIGKILL before the rename — the destination must come
          // through either absent or complete, exactly like torn_write but
          // with the whole process actually dying.
          kill_after_write = true;
          write_bytes = static_cast<size_t>(
              static_cast<double>(payload.size()) * fired->keep_fraction);
          break;
        case fault::FaultKind::kSpuriousWake:
          break;
      }
    }
  }

  // Crash-safe save: write everything to <path>.tmp, fsync it, then rename
  // into place. A crash (or torn write) mid-save leaves at worst a stale
  // or partial .tmp file — the destination is either absent or a complete,
  // checksummed artifact. The fsync *before* the rename matters for power
  // loss, not just process crashes: rename-over is only atomic for bytes
  // the disk already has, so without it the destination name could land on
  // unflushed data.
  const std::string tmp = StrCat(path, ".tmp");
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::InvalidArgument(StrCat("cannot open '", tmp,
                                          "' for writing: ",
                                          std::strerror(errno)));
  }
  size_t written = 0;
  while (written < write_bytes) {
    const ssize_t n = ::write(fd, payload.data() + written,
                              write_bytes - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      std::remove(tmp.c_str());
      return Status::Internal(StrCat("failed writing artifact to '", tmp,
                                     "': ", std::strerror(err)));
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    std::remove(tmp.c_str());
    return Status::Internal(StrCat("failed syncing artifact to '", tmp,
                                   "': ", std::strerror(err)));
  }
  if (::close(fd) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    return Status::Internal(StrCat("failed closing artifact '", tmp,
                                   "': ", std::strerror(err)));
  }
  if (kill_after_write) fault::KillProcess();
  if (torn) {
    // Simulated crash between the partial write and the rename: the torn
    // temp file stays on disk, the destination is untouched.
    return Status::Internal(StrCat(
        "injected torn write: only ", write_bytes, " of ", payload.size(),
        " bytes of '", path, "' were persisted before the simulated crash"));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal(StrCat("failed renaming '", tmp, "' into '",
                                   path, "'"));
  }
  // Persist the rename itself: fsync the parent directory so the new
  // directory entry survives power loss. Best-effort — some filesystems
  // refuse fsync on directories, and by this point the data is durable.
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : (slash == 0 ? "/"
                                                     : path.substr(0, slash));
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::OK();
}

Result<std::string> ReadFileBytes(const std::string& path) {
  // Fault point "store.read" (scoped by path): errors fail the read,
  // latency stalls it, and a torn_write spec models a torn *read* — only a
  // keep_fraction prefix of the file makes it into memory, as if the read
  // raced a writer or the page cache lost the tail.
  double keep_fraction = 1.0;
  if (fault::FaultInjector::Global().enabled()) {
    if (std::optional<fault::FaultSpec> fired =
            fault::FaultInjector::Global().Sample("store.read", path)) {
      switch (fired->kind) {
        case fault::FaultKind::kError:
          return Status(fired->error_code,
                        StrCat("injected fault at 'store.read' for '", path,
                               "'"));
        case fault::FaultKind::kLatency:
          std::this_thread::sleep_for(
              std::chrono::microseconds(fired->latency_us));
          break;
        case fault::FaultKind::kTornWrite:
          keep_fraction = fired->keep_fraction;
          break;
        case fault::FaultKind::kKill:
          fault::KillProcess();
        case fault::FaultKind::kSpuriousWake:
          break;
      }
    }
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(StrCat("cannot open artifact file '", path, "'"));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string bytes = buffer.str();
  if (keep_fraction < 1.0) {
    bytes.resize(static_cast<size_t>(
        static_cast<double>(bytes.size()) * keep_fraction));
  }
  return bytes;
}

Result<serve::ModelArtifact> LoadArtifact(const std::string& path) {
  QDB_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  if (LooksBinary(bytes)) {
    QDB_ASSIGN_OR_RETURN(ModelArtifact artifact, DeserializeBinary(bytes));
    LoadCounters()->With("binary")->Increment();
    return artifact;
  }
  QDB_ASSIGN_OR_RETURN(ModelArtifact artifact,
                       ModelArtifact::Deserialize(bytes));
  LoadCounters()->With("text")->Increment();
  return artifact;
}

Status SaveArtifact(const serve::ModelArtifact& artifact,
                    const std::string& path, ArtifactFormat format) {
  const std::string payload = format == ArtifactFormat::kBinary
                                  ? SerializeBinary(artifact)
                                  : artifact.Serialize();
  return AtomicWriteFile(path, payload, artifact.name);
}

}  // namespace store
}  // namespace qdb
