/// \file zne.h
/// \brief Zero-noise extrapolation (ZNE): amplify hardware noise by unitary
/// folding, measure the observable at several noise scales, and Richardson-
/// extrapolate to the zero-noise limit — the error-mitigation technique the
/// NISQ literature leans on while error correction is out of reach.

#ifndef QDB_MITIGATION_ZNE_H_
#define QDB_MITIGATION_ZNE_H_

#include <vector>

#include "circuit/circuit.h"
#include "common/result.h"
#include "ops/pauli.h"
#include "sim/density_simulator.h"

namespace qdb {

/// \brief Global unitary folding: C → C·(C†·C)^k for scale = 2k+1. The
/// folded circuit implements the same unitary but passes through the noise
/// channels `scale` times. The scale must be odd and ≥ 1; symbolic
/// parameters are preserved (the inverse negates them consistently).
Result<Circuit> FoldCircuit(const Circuit& circuit, int scale);

/// \brief ZNE configuration.
struct ZneOptions {
  /// Odd noise-scale factors; at least two distinct values.
  std::vector<int> scale_factors = {1, 3, 5};
};

/// \brief Outcome of a ZNE run.
struct ZneResult {
  double mitigated = 0.0;     ///< Richardson-extrapolated ⟨H⟩ at scale 0.
  DVector raw_values;         ///< ⟨H⟩ at each scale factor (for plots).
  double unmitigated = 0.0;   ///< ⟨H⟩ at scale 1 (the bare noisy value).
};

/// \brief Runs the folded circuits on the (noisy) density simulator and
/// Richardson-extrapolates the expectation to zero noise.
Result<ZneResult> ZeroNoiseExtrapolate(const Circuit& circuit,
                                       const PauliSum& observable,
                                       const DensitySimulator& simulator,
                                       const ZneOptions& options = {},
                                       const DVector& params = {});

/// \brief Richardson extrapolation to x = 0 through the points (x_i, y_i)
/// (Lagrange evaluation; the x_i must be distinct).
Result<double> RichardsonExtrapolate(const DVector& xs, const DVector& ys);

}  // namespace qdb

#endif  // QDB_MITIGATION_ZNE_H_
