/// \file hhl.h
/// \brief HHL quantum linear-system solver: |x⟩ ∝ A⁻¹|b⟩ via phase
/// estimation on e^{iAt₀} and an eigenvalue-conditioned ancilla rotation —
/// the algorithm behind the "exponential speedups for linear algebra"
/// claims the QML literature builds on (least squares, SVMs, regression).
///
/// This implementation runs the full coherent protocol (QPE → conditioned
/// rotation → inverse QPE → post-selection) on the state-vector simulator;
/// the controlled evolutions are dense small-register unitaries, which is
/// exactly what a fault-tolerant device would implement with Hamiltonian
/// simulation.

#ifndef QDB_ALGO_HHL_H_
#define QDB_ALGO_HHL_H_

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/types.h"

namespace qdb {

/// \brief HHL configuration.
struct HhlOptions {
  int clock_qubits = 6;        ///< Phase-estimation precision t.
  /// Evolution time t₀ for U = e^{iAt₀}; ≤ 0 selects 0.8π/‖A‖
  /// automatically (eigenphases stay within ±0.4, clear of the ±1/2
  /// wrap-around collision).
  double evolution_time = -1.0;
  /// Rotation constant C in sin θ = C/λ; ≤ 0 selects the smallest
  /// phase-grid-representable |λ| (resolution-limited, always valid).
  /// Supplying C ≈ λ_min maximizes the post-selection probability.
  double c_constant = -1.0;
};

/// \brief Outcome of an HHL run.
struct HhlResult {
  CVector solution;            ///< Normalized post-selected |x⟩.
  double success_probability = 0.0;  ///< P(ancilla = 1 ∧ clock = 0).
  double fidelity = 0.0;       ///< |⟨x_exact|x⟩|² against the classical solve.
  int total_qubits = 0;        ///< 1 + clock + system.
};

/// \brief Solves A x = b for Hermitian, invertible A of power-of-two
/// dimension ≤ 8 (the coherent register is 1 + t + log₂(dim) qubits).
///
/// \return InvalidArgument for non-Hermitian/singular/mis-sized inputs.
Result<HhlResult> HhlSolve(const Matrix& a, const CVector& b,
                           const HhlOptions& options = {});

/// \brief Classical reference: x = A⁻¹ b via eigendecomposition, normalized
/// (the direction HHL produces).
Result<CVector> ClassicalSolveNormalized(const Matrix& a, const CVector& b);

}  // namespace qdb

#endif  // QDB_ALGO_HHL_H_
