#include "sim/unitary_simulator.h"

#include "common/strings.h"
#include "sim/statevector_simulator.h"

namespace qdb {

Result<Matrix> CircuitUnitary(const Circuit& circuit, const DVector& params) {
  if (circuit.num_qubits() > 12) {
    return Status::InvalidArgument(
        StrCat("CircuitUnitary limited to 12 qubits, got ",
               circuit.num_qubits()));
  }
  const uint64_t dim = uint64_t{1} << circuit.num_qubits();
  Matrix u(dim, dim);
  StateVectorSimulator sim;
  for (uint64_t col = 0; col < dim; ++col) {
    StateVector state = StateVector::BasisState(circuit.num_qubits(), col);
    QDB_RETURN_IF_ERROR(sim.RunInPlace(circuit, state, params));
    for (uint64_t row = 0; row < dim; ++row) u(row, col) = state.amplitude(row);
  }
  return u;
}

}  // namespace qdb
