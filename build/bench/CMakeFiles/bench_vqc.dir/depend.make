# Empty dependencies file for bench_vqc.
# This may be replaced when dependencies are built.
