#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"

namespace qdb {
namespace obs {
namespace {

// --- Minimal JSON validator ------------------------------------------------
// Recursive-descent checker, enough to assert the exporters emit JSON any
// conforming parser accepts. Returns true iff the whole string is one valid
// JSON value.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(
                    static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // Unescaped control character.
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(
                               text_[pos_ - 1]));
  }

  bool Literal(const char* word) {
    const size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// Resets tracing to a known state around each trace test.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DisableTracing();
    TraceLog::Global().SetCapacity(1 << 16);
    TraceLog::Global().Clear();
  }
  void TearDown() override {
    DisableTracing();
    TraceLog::Global().Clear();
  }
};

// --- Counters / gauges -----------------------------------------------------

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42);
  c.Reset();
  EXPECT_EQ(c.Value(), 0);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter* c = GetCounter("obs_test.concurrent_counter");
  c->Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), static_cast<long>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetOverwrites) {
  Gauge* g = GetGauge("obs_test.gauge");
  g->Set(-3.25);
  EXPECT_DOUBLE_EQ(g->Value(), -3.25);
  g->Set(7.0);
  EXPECT_DOUBLE_EQ(g->Value(), 7.0);
}

TEST(RegistryTest, SameNameReturnsSamePointer) {
  Counter* a = GetCounter("obs_test.stable_pointer");
  Counter* b = GetCounter("obs_test.stable_pointer");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, GetCounter("obs_test.stable_pointer2"));
}

// --- Histograms ------------------------------------------------------------

TEST(HistogramTest, BucketBoundariesUseLeSemantics) {
  Histogram h({1.0, 2.0, 5.0});
  // v <= bound lands in the bucket (Prometheus "le"): 1.0 -> bucket 0,
  // 1.5 and 2.0 -> bucket 1, 5.0 -> bucket 2, 5.1 -> overflow.
  h.Observe(0.5);
  h.Observe(1.0);
  h.Observe(1.5);
  h.Observe(2.0);
  h.Observe(5.0);
  h.Observe(5.1);
  EXPECT_EQ(h.CountInBucket(0), 2);
  EXPECT_EQ(h.CountInBucket(1), 2);
  EXPECT_EQ(h.CountInBucket(2), 1);
  EXPECT_EQ(h.CountInBucket(3), 1);  // Overflow bucket.
  EXPECT_EQ(h.TotalCount(), 6);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5 + 1.0 + 1.5 + 2.0 + 5.0 + 5.1);
}

TEST(HistogramTest, ConcurrentObservationsAreLossless) {
  Histogram* h = GetHistogram("obs_test.concurrent_hist", {10.0, 100.0});
  h->Reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h] {
      for (int i = 0; i < kPerThread; ++i) h->Observe(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h->TotalCount(), static_cast<long>(kThreads) * kPerThread);
  EXPECT_EQ(h->CountInBucket(0), static_cast<long>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h->Sum(), static_cast<double>(kThreads) * kPerThread);
}

TEST(HistogramTest, ApproxQuantileInterpolatesWithinBuckets) {
  Histogram h({10.0, 20.0, 40.0});
  EXPECT_DOUBLE_EQ(h.ApproxQuantile(0.5), 0.0);  // Empty histogram.
  // 10 samples in (0, 10], 10 in (10, 20].
  for (int i = 0; i < 10; ++i) h.Observe(5.0);
  for (int i = 0; i < 10; ++i) h.Observe(15.0);
  // Median rank sits at the boundary of bucket 0; p75 is midway through
  // bucket 1 (linear interpolation inside the bucket).
  EXPECT_DOUBLE_EQ(h.ApproxQuantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.ApproxQuantile(0.75), 15.0);
  EXPECT_DOUBLE_EQ(h.ApproxQuantile(1.0), 20.0);
  EXPECT_DOUBLE_EQ(h.ApproxQuantile(0.0), 0.0);  // Clamped.
}

TEST(HistogramTest, ApproxQuantileClampsOverflowToLastBound) {
  Histogram h({1.0, 2.0});
  h.Observe(100.0);  // Overflow bucket.
  EXPECT_DOUBLE_EQ(h.ApproxQuantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.ApproxQuantile(0.99), 2.0);
}

TEST(HistogramTest, OverflowCountTracksSamplesAboveLastBound) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.OverflowCount(), 0);
  h.Observe(0.5);
  h.Observe(2.0);  // le="2" bucket, not overflow.
  EXPECT_EQ(h.OverflowCount(), 0);
  h.Observe(2.5);
  h.Observe(100.0);
  EXPECT_EQ(h.OverflowCount(), 2);
  h.Reset();
  EXPECT_EQ(h.OverflowCount(), 0);
}

TEST(RegistryTest, ExportsSurfaceHistogramOverflow) {
  Histogram* h = GetHistogram("obs_test.overflow_hist", {1.0, 2.0});
  h->Reset();
  h->Observe(0.5);
  h->Observe(7.0);  // Overflow: quantiles for this histogram are clamped.
  h->Observe(9.0);

  const std::string text = MetricsRegistry::Global().ExportText();
  EXPECT_NE(text.find("obs_test.overflow_hist_overflow 2"), std::string::npos)
      << text;

  const std::string json = MetricsRegistry::Global().ExportJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"obs_test.overflow_hist\":{"), std::string::npos);
  EXPECT_NE(json.find(",\"overflow\":2"), std::string::npos) << json;
}

TEST(HistogramTest, ScopedTimerObservesOnce) {
  Histogram* h = GetHistogram("obs_test.scoped_timer_hist");
  h->Reset();
  { ScopedHistogramTimer timer(h); }
  EXPECT_EQ(h->TotalCount(), 1);
  EXPECT_GE(h->Sum(), 0.0);
}

TEST(RegistryTest, ExportsAreValidJsonAndListMetrics) {
  GetCounter("obs_test.export_counter")->Increment(3);
  GetGauge("obs_test.export_gauge")->Set(1.5);
  GetHistogram("obs_test.export_hist", {1.0, 2.0})->Observe(1.0);

  const std::string json = MetricsRegistry::Global().ExportJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"obs_test.export_counter\":3"), std::string::npos);
  EXPECT_NE(json.find("obs_test.export_gauge"), std::string::npos);
  EXPECT_NE(json.find("obs_test.export_hist"), std::string::npos);

  const std::string text = MetricsRegistry::Global().ExportText();
  EXPECT_NE(text.find("obs_test.export_counter 3"), std::string::npos);
  EXPECT_NE(text.find("obs_test.export_hist{le=\"1\"} 1"), std::string::npos);
}

// --- Trace spans -----------------------------------------------------------

TEST_F(TraceTest, DisabledModeRecordsNothing) {
  ASSERT_FALSE(TracingEnabled());
  {
    QDB_TRACE_SCOPE("should_not_record", "test");
  }
  EXPECT_EQ(TraceLog::Global().size(), 0u);
}

TEST_F(TraceTest, SpanRecordsNameCategoryAndDuration) {
  EnableTracing();
  {
    QDB_TRACE_SCOPE("outer_span", "test");
  }
  const std::vector<TraceEvent> events = TraceLog::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "outer_span");
  EXPECT_STREQ(events[0].category, "test");
  EXPECT_GE(events[0].duration_us, 0);
  EXPECT_GE(events[0].start_us, 0);
}

TEST_F(TraceTest, NestedSpansAreContained) {
  EnableTracing();
  {
    QDB_TRACE_SCOPE("outer", "test");
    {
      QDB_TRACE_SCOPE("inner", "test");
    }
  }
  const std::vector<TraceEvent> events = TraceLog::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Spans finish innermost-first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_EQ(inner.thread_id, outer.thread_id);
  // The inner interval must lie within the outer one.
  EXPECT_GE(inner.start_us, outer.start_us);
  EXPECT_LE(inner.start_us + inner.duration_us,
            outer.start_us + outer.duration_us);
}

TEST_F(TraceTest, RingOverwritesOldestAndCountsDropped) {
  TraceLog::Global().SetCapacity(4);
  EnableTracing();
  for (int i = 0; i < 10; ++i) {
    QDB_TRACE_SCOPE("ring_span", "test");
  }
  EXPECT_EQ(TraceLog::Global().size(), 4u);
  EXPECT_EQ(TraceLog::Global().dropped(), 6u);
  const std::vector<TraceEvent> events = TraceLog::Global().Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first: start times must be non-decreasing.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_us, events[i - 1].start_us);
  }
}

TEST_F(TraceTest, ChromeTraceJsonIsValidAndNamesSpans) {
  EnableTracing();
  {
    QDB_TRACE_SCOPE("json_outer", "cat_a");
    QDB_TRACE_SCOPE("json_inner", "cat_b");
  }
  const std::string json = TraceLog::Global().ChromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"json_outer\""), std::string::npos);
  EXPECT_NE(json.find("\"json_inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"cat_a\""), std::string::npos);
}

TEST_F(TraceTest, WriteChromeTraceRejectsBadPath) {
  EnableTracing();
  {
    QDB_TRACE_SCOPE("span", "test");
  }
  EXPECT_FALSE(
      TraceLog::Global().WriteChromeTrace("/nonexistent-dir/trace.json").ok());
}

TEST_F(TraceTest, ConcurrentSpansFromManyThreads) {
  EnableTracing();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        QDB_TRACE_SCOPE("mt_span", "test");
      }
    });
  }
  for (auto& t : threads) t.join();
  const TraceLog& log = TraceLog::Global();
  EXPECT_EQ(log.size() + log.dropped(),
            static_cast<size_t>(kThreads) * kPerThread);
  // Events from all threads interleave; each must still be well-formed.
  std::map<uint64_t, int> per_thread;
  for (const TraceEvent& e : log.Snapshot()) {
    EXPECT_STREQ(e.name, "mt_span");
    ++per_thread[e.thread_id];
  }
  EXPECT_GE(per_thread.size(), 2u);
}

TEST_F(TraceTest, SpansStartedWhileDisabledDoNotRecordAfterEnable) {
  ASSERT_FALSE(TracingEnabled());
  {
    TraceSpan span("enabled_mid_span", "test");
    EnableTracing();
  }  // Span was constructed while disabled: must not record.
  EXPECT_EQ(TraceLog::Global().size(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace qdb
