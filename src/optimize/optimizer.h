/// \file optimizer.h
/// \brief Shared types for the classical optimizers that drive variational
/// quantum algorithms (minimization convention throughout).

#ifndef QDB_OPTIMIZE_OPTIMIZER_H_
#define QDB_OPTIMIZE_OPTIMIZER_H_

#include <functional>

#include "common/result.h"
#include "linalg/types.h"

namespace qdb {

/// Objective to minimize; may fail (e.g. simulator error) and the failure
/// propagates out of the optimizer.
using Objective = std::function<Result<double>(const DVector&)>;

/// Gradient oracle matching the objective.
using GradientFn = std::function<Result<DVector>(const DVector&)>;

/// \brief Outcome of an optimization run.
struct OptimizeResult {
  DVector params;        ///< Best parameters found.
  double value = 0.0;    ///< Objective at `params`.
  int iterations = 0;    ///< Iterations actually executed.
  bool converged = false;  ///< True if the stopping tolerance was met.
  /// Objective value after each iteration (for convergence plots).
  DVector history;
  /// ‖∇f‖₂ per iteration, for gradient-based optimizers (empty for the
  /// derivative-free ones; SPSA records its stochastic two-point estimate).
  DVector gradient_norm_history;
};

}  // namespace qdb

#endif  // QDB_OPTIMIZE_OPTIMIZER_H_
