/// \file ansatz.h
/// \brief Parameterized ansatz circuits for variational algorithms:
/// hardware-efficient, RealAmplitudes-style, and EfficientSU2-style
/// families with configurable entanglement.

#ifndef QDB_VARIATIONAL_ANSATZ_H_
#define QDB_VARIATIONAL_ANSATZ_H_

#include "circuit/circuit.h"

namespace qdb {

/// CX-entangler topology within an ansatz layer.
enum class Entanglement {
  kLinear,    ///< CX(i, i+1) chain.
  kCircular,  ///< chain plus CX(n−1, 0).
  kFull,      ///< CX(i, j) for all i < j.
};

/// \brief RY-rotation layers with CX entanglers (RealAmplitudes style:
/// real-valued statevector). Parameters: (layers + 1) · n, indices starting
/// at `first_param`.
Circuit RealAmplitudesAnsatz(int num_qubits, int layers,
                             Entanglement entanglement = Entanglement::kLinear,
                             int first_param = 0);

/// \brief RY+RZ rotation layers with CX entanglers (EfficientSU2 style).
/// Parameters: 2 · (layers + 1) · n.
Circuit EfficientSU2Ansatz(int num_qubits, int layers,
                           Entanglement entanglement = Entanglement::kLinear,
                           int first_param = 0);

/// \brief The random hardware-efficient ansatz of the barren-plateau
/// experiment (McClean et al. style): per layer a uniformly chosen
/// RX/RY/RZ on each qubit followed by a CZ ladder. Gate axes are drawn with
/// `axis_seed`; parameters: layers · n.
Circuit RandomHardwareEfficientAnsatz(int num_qubits, int layers,
                                      uint64_t axis_seed, int first_param = 0);

/// \brief Data re-uploading circuit (Pérez-Salinas et al.): per layer, the
/// features enter as RY(scale·x_q) rotations followed by trainable RY+RZ
/// and a CX chain. Shared by the VQC classifier and the VQR regressor.
/// Parameters: 2 · layers · |features|.
Circuit DataReuploadingCircuit(const DVector& features, int layers,
                               double feature_scale = 1.0);

/// Number of parameters the named ansatz consumes (convenience mirrors).
int RealAmplitudesParamCount(int num_qubits, int layers);
int EfficientSU2ParamCount(int num_qubits, int layers);

}  // namespace qdb

#endif  // QDB_VARIATIONAL_ANSATZ_H_
