/// \file logistic.h
/// \brief L2-regularized logistic regression (the linear classical
/// baseline of E2).

#ifndef QDB_CLASSICAL_LOGISTIC_H_
#define QDB_CLASSICAL_LOGISTIC_H_

#include "classical/dataset.h"
#include "common/result.h"
#include "linalg/types.h"

namespace qdb {

/// \brief Hyperparameters for logistic-regression training.
struct LogisticOptions {
  double learning_rate = 0.5;
  double l2 = 1e-4;         ///< L2 penalty on weights (not the bias).
  int max_iterations = 500;
  double tolerance = 1e-7;  ///< Stop when ‖∇‖∞ drops below this.
};

/// \brief A trained logistic-regression classifier over ±1 labels.
class LogisticRegression {
 public:
  /// Trains by full-batch gradient descent.
  static Result<LogisticRegression> Train(const Dataset& data,
                                          const LogisticOptions& options = {});

  /// P(y = +1 | x).
  double ProbabilityPositive(const DVector& x) const;

  /// sign(wᵀx + b) as ±1.
  int Predict(const DVector& x) const;

  const DVector& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  LogisticRegression() = default;

  DVector weights_;
  double bias_ = 0.0;
};

}  // namespace qdb

#endif  // QDB_CLASSICAL_LOGISTIC_H_
