// Tests for the dense complex matrix and vector operations.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.h"
#include "linalg/vector_ops.h"

namespace qdb {
namespace {

TEST(MatrixTest, ZeroConstruction) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) EXPECT_EQ(m(i, j), Complex(0, 0));
  }
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{{1, 0}, {2, 0}}, {{3, 0}, {4, 0}}};
  EXPECT_EQ(m(0, 1), Complex(2, 0));
  EXPECT_EQ(m(1, 0), Complex(3, 0));
}

TEST(MatrixTest, IdentityAndDiagonal) {
  Matrix id = Matrix::Identity(3);
  EXPECT_EQ(id(1, 1), Complex(1, 0));
  EXPECT_EQ(id(0, 1), Complex(0, 0));
  Matrix d = Matrix::Diagonal({Complex(2, 0), Complex(0, 1)});
  EXPECT_EQ(d(0, 0), Complex(2, 0));
  EXPECT_EQ(d(1, 1), Complex(0, 1));
  EXPECT_EQ(d(0, 1), Complex(0, 0));
}

TEST(MatrixTest, AdditionSubtraction) {
  Matrix a{{{1, 0}, {2, 0}}, {{3, 0}, {4, 0}}};
  Matrix b{{{10, 0}, {20, 0}}, {{30, 0}, {40, 0}}};
  Matrix sum = a + b;
  EXPECT_EQ(sum(1, 1), Complex(44, 0));
  Matrix diff = b - a;
  EXPECT_EQ(diff(0, 0), Complex(9, 0));
}

TEST(MatrixTest, ScalarMultiply) {
  Matrix a{{{1, 0}, {0, 1}}};
  Matrix scaled = a * Complex(0, 1);
  EXPECT_EQ(scaled(0, 0), Complex(0, 1));
  EXPECT_EQ(scaled(0, 1), Complex(-1, 0));
  Matrix scaled2 = Complex(2, 0) * a;
  EXPECT_EQ(scaled2(0, 0), Complex(2, 0));
}

TEST(MatrixTest, MatrixProduct) {
  Matrix a{{{1, 0}, {2, 0}}, {{3, 0}, {4, 0}}};
  Matrix b{{{5, 0}, {6, 0}}, {{7, 0}, {8, 0}}};
  Matrix p = a * b;
  EXPECT_EQ(p(0, 0), Complex(19, 0));
  EXPECT_EQ(p(0, 1), Complex(22, 0));
  EXPECT_EQ(p(1, 0), Complex(43, 0));
  EXPECT_EQ(p(1, 1), Complex(50, 0));
}

TEST(MatrixTest, NonSquareProductShapes) {
  Matrix a(2, 3);
  Matrix b(3, 4);
  Matrix p = a * b;
  EXPECT_EQ(p.rows(), 2u);
  EXPECT_EQ(p.cols(), 4u);
}

TEST(MatrixTest, ApplyVector) {
  Matrix a{{{0, 0}, {1, 0}}, {{1, 0}, {0, 0}}};  // X gate
  CVector v = {Complex(1, 0), Complex(0, 0)};
  CVector out = a.Apply(v);
  EXPECT_EQ(out[0], Complex(0, 0));
  EXPECT_EQ(out[1], Complex(1, 0));
}

TEST(MatrixTest, AdjointConjugatesAndTransposes) {
  Matrix a{{{1, 2}, {3, 4}}, {{5, 6}, {7, 8}}};
  Matrix adj = a.Adjoint();
  EXPECT_EQ(adj(0, 1), Complex(5, -6));
  EXPECT_EQ(adj(1, 0), Complex(3, -4));
}

TEST(MatrixTest, TransposeDoesNotConjugate) {
  Matrix a{{{1, 2}, {3, 4}}, {{5, 6}, {7, 8}}};
  Matrix t = a.Transpose();
  EXPECT_EQ(t(0, 1), Complex(5, 6));
}

TEST(MatrixTest, KroneckerProduct) {
  Matrix x{{{0, 0}, {1, 0}}, {{1, 0}, {0, 0}}};
  Matrix id = Matrix::Identity(2);
  Matrix xi = x.Kron(id);
  // X ⊗ I swaps the two 2x2 blocks.
  EXPECT_EQ(xi.rows(), 4u);
  EXPECT_EQ(xi(0, 2), Complex(1, 0));
  EXPECT_EQ(xi(1, 3), Complex(1, 0));
  EXPECT_EQ(xi(2, 0), Complex(1, 0));
  EXPECT_EQ(xi(0, 0), Complex(0, 0));
}

TEST(MatrixTest, KroneckerAgainstHandComputed) {
  Matrix a{{{1, 0}, {2, 0}}};       // 1x2
  Matrix b{{{3, 0}}, {{4, 0}}};     // 2x1
  Matrix k = a.Kron(b);
  EXPECT_EQ(k.rows(), 2u);
  EXPECT_EQ(k.cols(), 2u);
  EXPECT_EQ(k(0, 0), Complex(3, 0));
  EXPECT_EQ(k(1, 0), Complex(4, 0));
  EXPECT_EQ(k(0, 1), Complex(6, 0));
  EXPECT_EQ(k(1, 1), Complex(8, 0));
}

TEST(MatrixTest, TraceAndNorm) {
  Matrix a{{{1, 0}, {2, 0}}, {{3, 0}, {4, 0}}};
  EXPECT_EQ(a.Trace(), Complex(5, 0));
  EXPECT_NEAR(a.FrobeniusNorm(), std::sqrt(30.0), 1e-12);
}

TEST(MatrixTest, UnitarityChecks) {
  const double s = 1.0 / std::sqrt(2.0);
  Matrix h{{{s, 0}, {s, 0}}, {{s, 0}, {-s, 0}}};
  EXPECT_TRUE(h.IsUnitary());
  Matrix not_unitary{{{1, 0}, {1, 0}}, {{0, 0}, {1, 0}}};
  EXPECT_FALSE(not_unitary.IsUnitary());
  EXPECT_FALSE(Matrix(2, 3).IsUnitary());
}

TEST(MatrixTest, HermiticityChecks) {
  Matrix herm{{{2, 0}, {1, -1}}, {{1, 1}, {3, 0}}};
  EXPECT_TRUE(herm.IsHermitian());
  Matrix not_herm{{{2, 0}, {1, 1}}, {{1, 1}, {3, 0}}};
  EXPECT_FALSE(not_herm.IsHermitian());
}

TEST(MatrixTest, ApproxEqualTolerance) {
  Matrix a = Matrix::Identity(2);
  Matrix b = Matrix::Identity(2);
  b(0, 0) += Complex(1e-12, 0);
  EXPECT_TRUE(a.ApproxEqual(b, 1e-10));
  EXPECT_FALSE(a.ApproxEqual(b, 1e-14));
}

TEST(MatrixTest, EqualUpToGlobalPhase) {
  Matrix a = Matrix::Identity(2);
  Matrix b = a * std::exp(Complex(0, 0.7));
  EXPECT_TRUE(a.EqualUpToGlobalPhase(b));
  Matrix c = a;
  c(1, 1) = Complex(-1, 0);  // Z, not a global phase of I.
  EXPECT_FALSE(a.EqualUpToGlobalPhase(c));
}

TEST(VectorOpsTest, InnerProductConjugatesFirstArg) {
  CVector a = {Complex(0, 1), Complex(1, 0)};
  CVector b = {Complex(0, 1), Complex(1, 0)};
  EXPECT_EQ(InnerProduct(a, b), Complex(2, 0));
}

TEST(VectorOpsTest, NormAndNormalize) {
  CVector v = {Complex(3, 0), Complex(4, 0)};
  EXPECT_NEAR(Norm(v), 5.0, 1e-12);
  Normalize(v);
  EXPECT_NEAR(Norm(v), 1.0, 1e-12);
  CVector zero = {Complex(0, 0)};
  Normalize(zero);  // No-op, no crash.
  EXPECT_EQ(zero[0], Complex(0, 0));
}

TEST(VectorOpsTest, KronOfVectors) {
  CVector a = {Complex(1, 0), Complex(2, 0)};
  CVector b = {Complex(0, 0), Complex(1, 0)};
  CVector k = Kron(a, b);
  ASSERT_EQ(k.size(), 4u);
  EXPECT_EQ(k[1], Complex(1, 0));
  EXPECT_EQ(k[3], Complex(2, 0));
}

TEST(VectorOpsTest, FidelityOfOrthogonalAndEqualStates) {
  CVector zero = {Complex(1, 0), Complex(0, 0)};
  CVector one = {Complex(0, 0), Complex(1, 0)};
  EXPECT_NEAR(Fidelity(zero, one), 0.0, 1e-12);
  EXPECT_NEAR(Fidelity(zero, zero), 1.0, 1e-12);
}

TEST(VectorOpsTest, RealVectorHelpers) {
  DVector a = {1.0, 2.0, 3.0};
  DVector b = {4.0, 5.0, 6.0};
  EXPECT_NEAR(Dot(a, b), 32.0, 1e-12);
  EXPECT_EQ(Add(a, b)[2], 9.0);
  EXPECT_EQ(Sub(b, a)[0], 3.0);
  EXPECT_EQ(Scale(2.0, a)[1], 4.0);
  EXPECT_NEAR(MaxAbsDiff(a, b), 3.0, 1e-12);
  EXPECT_NEAR(Norm(a), std::sqrt(14.0), 1e-12);
}

}  // namespace
}  // namespace qdb
