// E9 — Transaction scheduling via QUBO.
//
// Regenerates the Bittner & Groppe style comparison: conflict violations
// and makespan of the annealed schedule QUBO vs greedy first-fit, as the
// number of transactions and the conflict density grow. Expected shape:
// both produce conflict-free schedules when slots suffice; under slot
// pressure the annealer finds feasible colorings greedy misses, and the
// annealer's makespan is never worse on solved instances.

#include <benchmark/benchmark.h>

#include "anneal/quantum_annealing.h"
#include "anneal/simulated_annealing.h"
#include "db/transactions.h"

namespace qdb {
namespace {

void BM_TxnScheduleSa(benchmark::State& state) {
  const int txns = static_cast<int>(state.range(0));
  const int slots = static_cast<int>(state.range(1));
  Rng rng(300 + txns);
  TxnScheduleInstance inst = RandomTxnInstance(txns, slots, 0.3, rng);
  auto qubo = TxnScheduleQubo::Create(inst).ValueOrDie();

  double violations = 0.0, makespan = 0.0;
  for (auto _ : state) {
    SaOptions opts;
    opts.num_sweeps = 1500;
    opts.num_restarts = 3;
    auto solved = SimulatedAnnealing(qubo.qubo().ToIsing(), opts);
    if (!solved.ok()) {
      state.SkipWithError(solved.status().ToString().c_str());
      return;
    }
    std::vector<int> schedule =
        qubo.Decode(SpinsToBits(solved.value().best_spins));
    violations = inst.ConflictViolations(schedule);
    makespan = inst.Makespan(schedule);
  }
  state.SetLabel("sa-qubo");
  state.counters["txns"] = txns;
  state.counters["slots"] = slots;
  state.counters["conflicts"] = static_cast<double>(inst.conflicts.size());
  state.counters["violations"] = violations;
  state.counters["makespan"] = makespan;
}

void BM_TxnScheduleSqa(benchmark::State& state) {
  const int txns = static_cast<int>(state.range(0));
  const int slots = static_cast<int>(state.range(1));
  Rng rng(300 + txns);
  TxnScheduleInstance inst = RandomTxnInstance(txns, slots, 0.3, rng);
  auto qubo = TxnScheduleQubo::Create(inst).ValueOrDie();

  double violations = 0.0, makespan = 0.0;
  for (auto _ : state) {
    SqaOptions opts;
    opts.num_sweeps = 700;
    opts.num_replicas = 16;
    opts.num_restarts = 2;
    auto solved = SimulatedQuantumAnnealing(qubo.qubo().ToIsing(), opts);
    if (!solved.ok()) {
      state.SkipWithError(solved.status().ToString().c_str());
      return;
    }
    std::vector<int> schedule =
        qubo.Decode(SpinsToBits(solved.value().best_spins));
    violations = inst.ConflictViolations(schedule);
    makespan = inst.Makespan(schedule);
  }
  state.SetLabel("sqa-qubo");
  state.counters["txns"] = txns;
  state.counters["slots"] = slots;
  state.counters["violations"] = violations;
  state.counters["makespan"] = makespan;
}

void BM_TxnScheduleGreedy(benchmark::State& state) {
  const int txns = static_cast<int>(state.range(0));
  const int slots = static_cast<int>(state.range(1));
  Rng rng(300 + txns);
  TxnScheduleInstance inst = RandomTxnInstance(txns, slots, 0.3, rng);
  double violations = 0.0, makespan = 0.0;
  for (auto _ : state) {
    std::vector<int> schedule = GreedyFirstFitSchedule(inst);
    violations = inst.ConflictViolations(schedule);
    makespan = inst.Makespan(schedule);
  }
  state.SetLabel("greedy-first-fit");
  state.counters["txns"] = txns;
  state.counters["slots"] = slots;
  state.counters["violations"] = violations;
  state.counters["makespan"] = makespan;
}

const std::vector<std::vector<int64_t>> kGrid = {{8, 12, 16, 24, 40},
                                                 {4, 6}};

BENCHMARK(BM_TxnScheduleSa)
    ->ArgsProduct(kGrid)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TxnScheduleSqa)
    ->ArgsProduct(kGrid)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TxnScheduleGreedy)
    ->ArgsProduct(kGrid)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qdb

BENCHMARK_MAIN();
