file(REMOVE_RECURSE
  "CMakeFiles/mps_test.dir/mps_test.cc.o"
  "CMakeFiles/mps_test.dir/mps_test.cc.o.d"
  "mps_test"
  "mps_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
