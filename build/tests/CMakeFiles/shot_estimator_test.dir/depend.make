# Empty dependencies file for shot_estimator_test.
# This may be replaced when dependencies are built.
