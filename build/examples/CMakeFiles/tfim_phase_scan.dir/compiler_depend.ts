# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tfim_phase_scan.
