#include "variational/vqc.h"

#include <cmath>

#include "autodiff/adjoint.h"
#include "autodiff/expectation.h"
#include "autodiff/parameter_shift.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "encoding/encodings.h"
#include "linalg/vector_ops.h"
#include "obs/trace.h"

namespace qdb {

Circuit VqcClassifier::BuildCircuit(const DVector& x) const {
  QDB_CHECK_EQ(static_cast<int>(x.size()), num_features_);
  const int n = num_features_;
  DVector scaled(x);
  for (auto& v : scaled) v *= options_.feature_scale;

  Circuit c(n);
  switch (options_.encoding) {
    case VqcEncoding::kAngle:
      c.Append(AngleEncoding(scaled, RotationAxis::kY));
      c.Append(RealAmplitudesAnsatz(n, options_.ansatz_layers,
                                    options_.entanglement));
      break;
    case VqcEncoding::kZZFeatureMap:
      c.Append(ZZFeatureMap(scaled, /*reps=*/2));
      c.Append(RealAmplitudesAnsatz(n, options_.ansatz_layers,
                                    options_.entanglement));
      break;
    case VqcEncoding::kReuploading:
      // Features are already scaled above, so the shared circuit gets 1.0.
      c.Append(DataReuploadingCircuit(scaled, options_.ansatz_layers, 1.0));
      break;
  }
  return c;
}

Result<VqcClassifier> VqcClassifier::Train(const Dataset& data,
                                           const VqcOptions& options) {
  if (data.size() < 2) {
    return Status::InvalidArgument("VQC needs at least two training samples");
  }
  if (data.labels.size() != data.size()) {
    return Status::InvalidArgument("feature/label count mismatch");
  }
  for (int y : data.labels) {
    if (y != 1 && y != -1) {
      return Status::InvalidArgument("labels must be +1 or -1");
    }
  }
  if (options.ansatz_layers < 1) {
    return Status::InvalidArgument("ansatz_layers must be >= 1");
  }

  QDB_TRACE_SCOPE("VqcClassifier::Train", "train");
  VqcClassifier model;
  model.options_ = options;
  model.num_features_ = data.num_features();

  // One expectation function per training sample (the data is baked into
  // the circuit as constants; θ stays symbolic).
  const PauliSum observable =
      PauliSum(model.num_features_)
          .Add(1.0, PauliString::Single(model.num_features_, 0, PauliOp::kZ));
  std::vector<ExpectationFunction> sample_fns;
  sample_fns.reserve(data.size());
  for (const auto& x : data.features) {
    sample_fns.emplace_back(model.BuildCircuit(x), observable);
    sample_fns.back().set_execution_mode(options.execution);
  }
  const int num_params = sample_fns.front().num_parameters();
  if (num_params == 0) {
    return Status::Internal("VQC circuit has no trainable parameters");
  }

  // Per-sample evaluations are independent, so both the loss and the
  // gradient fan out across the shared ThreadPool; accumulation stays
  // serial and in sample order, keeping results thread-count independent.
  const size_t num_samples = sample_fns.size();
  const double inv_n = 1.0 / static_cast<double>(data.size());
  Objective loss = [&](const DVector& theta) -> Result<double> {
    std::vector<double> scores(num_samples, 0.0);
    std::vector<Status> statuses(num_samples);
    ThreadPool::Global().RunTasks(num_samples, [&](size_t i) {
      Result<double> r = sample_fns[i].Evaluate(theta);
      if (r.ok()) scores[i] = r.value();
      statuses[i] = r.status();
    });
    double acc = 0.0;
    for (size_t i = 0; i < num_samples; ++i) {
      QDB_RETURN_IF_ERROR(statuses[i]);
      const double diff = scores[i] - data.labels[i];
      acc += diff * diff;
    }
    return acc * inv_n;
  };
  GradientFn grad = [&](const DVector& theta) -> Result<DVector> {
    std::vector<double> scores(num_samples, 0.0);
    std::vector<DVector> grads(num_samples);
    std::vector<Status> statuses(num_samples);
    ThreadPool::Global().RunTasks(num_samples, [&](size_t i) {
      if (options.gradient == GradientMethod::kAdjoint) {
        Result<AdjointResult> r =
            AdjointGradient(sample_fns[i].circuit(), observable, theta);
        if (r.ok()) {
          scores[i] = r.value().value;
          grads[i] = std::move(r.value().gradient);
        }
        statuses[i] = r.status();
      } else {
        Result<double> score = sample_fns[i].Evaluate(theta);
        statuses[i] = score.status();
        if (!score.ok()) return;
        scores[i] = score.value();
        Result<DVector> g = ParameterShiftGradient(sample_fns[i], theta);
        if (g.ok()) grads[i] = std::move(g).value();
        statuses[i] = g.status();
      }
    });
    DVector total(theta.size(), 0.0);
    for (size_t i = 0; i < num_samples; ++i) {
      QDB_RETURN_IF_ERROR(statuses[i]);
      const double coeff = 2.0 * (scores[i] - data.labels[i]) * inv_n;
      for (size_t k = 0; k < total.size(); ++k) {
        total[k] += coeff * grads[i][k];
      }
    }
    return total;
  };

  Rng rng(options.seed);
  DVector initial =
      rng.UniformVector(num_params, -options.init_scale, options.init_scale);
  QDB_ASSIGN_OR_RETURN(OptimizeResult opt,
                       MinimizeAdam(loss, grad, initial, options.adam));

  model.params_ = std::move(opt.params);
  model.loss_history_ = std::move(opt.history);
  model.gradient_norm_history_ = std::move(opt.gradient_norm_history);
  for (const auto& fn : sample_fns) {
    model.circuit_evaluations_ += fn.evaluation_count();
  }
  return model;
}

Result<double> VqcClassifier::Score(const DVector& x) const {
  if (static_cast<int>(x.size()) != num_features_) {
    return Status::InvalidArgument("feature dimension mismatch");
  }
  const PauliSum observable =
      PauliSum(num_features_)
          .Add(1.0, PauliString::Single(num_features_, 0, PauliOp::kZ));
  ExpectationFunction fn(BuildCircuit(x), observable);
  fn.set_execution_mode(options_.execution);
  return fn.Evaluate(params_);
}

Result<int> VqcClassifier::Predict(const DVector& x) const {
  QDB_ASSIGN_OR_RETURN(double score, Score(x));
  return score >= 0.0 ? 1 : -1;
}

}  // namespace qdb
