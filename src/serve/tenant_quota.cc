#include "serve/tenant_quota.h"

#include <algorithm>
#include <chrono>

namespace qdb {
namespace serve {

namespace {

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TenantQuotaManager::TenantQuotaManager(TenantQuotaOptions options,
                                       ClockFn clock)
    : options_(std::move(options)),
      clock_(clock ? std::move(clock) : ClockFn(&SteadyNowMicros)) {}

const TokenBucketSpec& TenantQuotaManager::SpecFor(
    const std::string& tenant) const {
  auto it = options_.per_tenant.find(tenant);
  return it != options_.per_tenant.end() ? it->second : options_.default_spec;
}

void TenantQuotaManager::RefillLocked(Bucket& bucket, int64_t now_us) {
  if (!Metered(bucket.spec)) return;
  const double burst = std::max(bucket.spec.burst, 1.0);
  if (now_us > bucket.last_refill_us) {
    const double elapsed_s =
        static_cast<double>(now_us - bucket.last_refill_us) * 1e-6;
    bucket.tokens =
        std::min(burst, bucket.tokens + elapsed_s * bucket.spec.rate_per_s);
    bucket.last_refill_us = now_us;
  }
}

TenantQuotaManager::Bucket& TenantQuotaManager::BucketForLocked(
    const std::string& tenant, int64_t now_us) {
  auto it = buckets_.find(tenant);
  if (it != buckets_.end()) return it->second;
  // Past the cap, every new tenant id shares one overflow bucket governed
  // by the default spec: an unbounded id stream gets one coarse shared
  // budget, not a map that grows per request.
  std::string key = tenant;
  const TokenBucketSpec* spec = &SpecFor(tenant);
  if (buckets_.size() >= std::max<size_t>(options_.max_tenants, 1)) {
    auto overflow_it = buckets_.find(kOverflowTenant);
    if (overflow_it != buckets_.end()) return overflow_it->second;
    key = kOverflowTenant;
    spec = &options_.default_spec;
  }
  Bucket bucket;
  bucket.spec = *spec;
  bucket.tokens = std::max(bucket.spec.burst, 1.0);
  bucket.last_refill_us = now_us;
  return buckets_.emplace(std::move(key), std::move(bucket)).first->second;
}

bool TenantQuotaManager::TryAcquire(const std::string& tenant) {
  const int64_t now_us = clock_();
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& bucket = BucketForLocked(tenant, now_us);
  if (!Metered(bucket.spec)) {
    ++bucket.admitted;
    return true;
  }
  RefillLocked(bucket, now_us);
  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    ++bucket.admitted;
    return true;
  }
  ++bucket.rejected;
  return false;
}

std::vector<TenantQuotaManager::TenantState> TenantQuotaManager::Snapshot()
    const {
  const int64_t now_us = clock_();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TenantState> out;
  out.reserve(buckets_.size());
  for (const auto& [tenant, bucket] : buckets_) {
    TenantState state;
    state.tenant = tenant;
    state.metered = Metered(bucket.spec);
    state.rate_per_s = bucket.spec.rate_per_s;
    state.burst = std::max(bucket.spec.burst, 1.0);
    if (state.metered) {
      // Report post-refill tokens without mutating the bucket: Statusz must
      // not change admission outcomes.
      const double elapsed_s =
          static_cast<double>(std::max<int64_t>(
              now_us - bucket.last_refill_us, 0)) *
          1e-6;
      state.tokens = std::min(
          state.burst, bucket.tokens + elapsed_s * bucket.spec.rate_per_s);
    }
    state.admitted = bucket.admitted;
    state.rejected = bucket.rejected;
    out.push_back(std::move(state));
  }
  return out;
}

size_t TenantQuotaManager::tenant_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_.size() - buckets_.count(kOverflowTenant);
}

}  // namespace serve
}  // namespace qdb
