/// \file timer.h
/// \brief Wall-clock timing helper for benches and examples.

#ifndef QDB_COMMON_TIMER_H_
#define QDB_COMMON_TIMER_H_

#include <chrono>

namespace qdb {

/// \brief Measures elapsed wall time from construction or the last Reset().
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds, then restarts the window — for timing consecutive
  /// phases with one timer: `t.Lap()` after each phase.
  double Lap() {
    const Clock::time_point now = Clock::now();
    const double elapsed = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return elapsed;
  }

  /// Lap() in milliseconds.
  double LapMillis() { return Lap() * 1e3; }

  /// Elapsed time in seconds.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double Millis() const { return Seconds() * 1e3; }

  /// Elapsed time in microseconds.
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace qdb

#endif  // QDB_COMMON_TIMER_H_
