#include "sim/compiled_circuit.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "obs/labels.h"
#include "obs/obs.h"
#include "sim/kernels.h"
#include "sim/simd.h"

namespace qdb {

namespace {

/// Compilation and replay counters. compile.*/fusion.* track the one-time
/// lowering work; the sim.gates.* family is shared with the interpreter so
/// per-kernel-class dashboards stay meaningful across execution modes.
struct CompiledCounters {
  obs::Counter* circuits = obs::GetCounter("compile.circuits");
  obs::Counter* source_gates = obs::GetCounter("compile.source_gates");
  obs::Counter* ops_emitted = obs::GetCounter("compile.ops_emitted");
  obs::Counter* cache_hits = obs::GetCounter("compile.cache_hits");
  obs::Counter* cache_misses = obs::GetCounter("compile.cache_misses");
  obs::Counter* cache_evictions = obs::GetCounter("compile.cache_evictions");
  obs::Gauge* cache_size = obs::GetGauge("compile.cache_size");
  obs::Counter* replays = obs::GetCounter("compile.replays");
  obs::CounterFamily* replays_by_qubits =
      obs::MetricsRegistry::Global().GetCounterFamily("compile.replays",
                                                      {"qubits"});
  obs::Counter* fused_1q1q = obs::GetCounter("fusion.fused_1q1q");
  obs::Counter* fused_diag = obs::GetCounter("fusion.fused_diag");
  obs::Counter* fused_1q2q = obs::GetCounter("fusion.fused_1q2q");
  obs::Counter* fused_2q2q = obs::GetCounter("fusion.fused_2q2q");
  obs::Counter* ops_eliminated = obs::GetCounter("fusion.ops_eliminated");
  obs::Counter* diagonal_1q = obs::GetCounter("sim.gates.diagonal_1q");
  obs::Counter* generic_1q = obs::GetCounter("sim.gates.generic_1q");
  obs::Counter* controlled_1q = obs::GetCounter("sim.gates.controlled_1q");
  obs::Counter* diagonal_2q = obs::GetCounter("sim.gates.diagonal_2q");
  obs::Counter* generic_2q = obs::GetCounter("sim.gates.generic_2q");
  obs::Counter* swap = obs::GetCounter("sim.gates.swap");
  obs::Counter* multi_controlled = obs::GetCounter("sim.gates.multi_controlled");
  obs::Counter* generic_kq = obs::GetCounter("sim.gates.generic_kq");
  obs::Counter* amplitude_touches = obs::GetCounter("sim.amplitude_touches");
};

CompiledCounters& Counters() {
  static CompiledCounters counters;
  return counters;
}

bool IsControlled2QForm(GateType type) {
  switch (type) {
    case GateType::kCY:
    case GateType::kCH:
    case GateType::kCRX:
    case GateType::kCRY:
    case GateType::kCRZ:
      return true;
    default:
      return false;
  }
}

/// Computes the kernel kind and payload for a bound arity-1/2 gate. Mirrors
/// the dispatch ladder of StateVectorSimulator::ApplyGate exactly, so a
/// program compiled without fusion issues the same kernel calls with the
/// same matrix entries as the interpreter.
void LowerBound(GateType type, const DVector& angles, CompiledOp* op) {
  const Matrix u = GateMatrix(type, angles);
  const int arity = GateArity(type);
  if (arity == 1) {
    if (IsDiagonalGate(type)) {
      op->kind = CompiledOpKind::k1QDiag;
      op->c = {u(0, 0), u(1, 1), Complex(0, 0), Complex(0, 0)};
    } else {
      op->kind = CompiledOpKind::k1QDense;
      op->c = {u(0, 0), u(0, 1), u(1, 0), u(1, 1)};
    }
    return;
  }
  QDB_CHECK_EQ(arity, 2);
  if (IsDiagonalGate(type)) {
    op->kind = CompiledOpKind::k2QDiag;
    op->c = {u(0, 0), u(1, 1), u(2, 2), u(3, 3)};
  } else if (IsControlled2QForm(type)) {
    op->kind = CompiledOpKind::kControlled1Q;
    op->c = {u(2, 2), u(2, 3), u(3, 2), u(3, 3)};
  } else {
    op->kind = CompiledOpKind::k2QDense;
    op->m = u;
  }
}

/// Lowers one gate (constant payloads baked, parametric gates kept symbolic)
/// and appends the resulting op, or nothing for identities.
void LowerGate(const Gate& gate, std::vector<CompiledOp>& out) {
  CompiledOp op;
  op.src = gate.type;
  switch (gate.type) {
    case GateType::kI:
      return;  // The interpreter skips identities too.
    case GateType::kMCX:
      op.kind = CompiledOpKind::kMCX;
      op.qubits.assign(gate.qubits.begin(), gate.qubits.end() - 1);
      op.q0 = gate.qubits.back();
      out.push_back(std::move(op));
      return;
    case GateType::kMCZ:
      op.kind = CompiledOpKind::kMCZ;
      op.qubits.assign(gate.qubits.begin(), gate.qubits.end() - 1);
      op.q0 = gate.qubits.back();
      out.push_back(std::move(op));
      return;
    case GateType::kSwap:
      op.kind = CompiledOpKind::kSwap;
      op.q0 = gate.qubits[0];
      op.q1 = gate.qubits[1];
      out.push_back(std::move(op));
      return;
    case GateType::kCX:
      op.kind = CompiledOpKind::kControlled1Q;
      op.q0 = gate.qubits[0];
      op.q1 = gate.qubits[1];
      op.c = {Complex(0, 0), Complex(1, 0), Complex(1, 0), Complex(0, 0)};
      out.push_back(std::move(op));
      return;
    case GateType::kCZ:
      op.kind = CompiledOpKind::k2QDiag;
      op.q0 = gate.qubits[0];
      op.q1 = gate.qubits[1];
      op.c = {Complex(1, 0), Complex(1, 0), Complex(1, 0), Complex(-1, 0)};
      out.push_back(std::move(op));
      return;
    default:
      break;
  }
  if (gate.qubits.size() > 2) {
    // CCX / CSwap: the interpreter's generic k-qubit fallback.
    op.kind = CompiledOpKind::kKQDense;
    op.qubits = gate.qubits;
    op.m = GateMatrix(gate.type, {});
    out.push_back(std::move(op));
    return;
  }
  op.q0 = gate.qubits[0];
  if (gate.qubits.size() == 2) op.q1 = gate.qubits[1];
  bool parametric = false;
  for (const ParamExpr& p : gate.params) parametric |= !p.is_constant();
  if (parametric) {
    // Thin angle → payload evaluator: kind is resolved at replay time from
    // the same LowerBound ladder, with angles bound from the parameter
    // vector. Stash a provisional kind so the op is not mistaken for a Nop.
    op.exprs = gate.params;
    op.kind = GateArity(gate.type) == 1 ? CompiledOpKind::k1QDense
                                        : CompiledOpKind::k2QDense;
  } else {
    DVector angles;
    angles.reserve(gate.params.size());
    for (const ParamExpr& p : gate.params) angles.push_back(p.offset);
    LowerBound(gate.type, angles, &op);
  }
  out.push_back(std::move(op));
}

// ---- Fusion helpers ---------------------------------------------------------

bool IsConst1Q(const CompiledOp& op) {
  return !op.parametric() && (op.kind == CompiledOpKind::k1QDense ||
                              op.kind == CompiledOpKind::k1QDiag);
}

bool IsConst2QClass(const CompiledOp& op) {
  if (op.parametric()) return false;
  switch (op.kind) {
    case CompiledOpKind::k2QDense:
    case CompiledOpKind::k2QDiag:
    case CompiledOpKind::kControlled1Q:
    case CompiledOpKind::kSwap:
      return true;
    default:
      return false;
  }
}

/// The op's full 4x4 matrix in its own (q0 = high bit, q1 = low bit) order.
Matrix To4x4(const CompiledOp& op) {
  switch (op.kind) {
    case CompiledOpKind::k2QDense:
      return op.m;
    case CompiledOpKind::k2QDiag:
      return Matrix::Diagonal({op.c[0], op.c[1], op.c[2], op.c[3]});
    case CompiledOpKind::kControlled1Q: {
      Matrix m = Matrix::Identity(4);
      m(2, 2) = op.c[0];
      m(2, 3) = op.c[1];
      m(3, 2) = op.c[2];
      m(3, 3) = op.c[3];
      return m;
    }
    case CompiledOpKind::kSwap: {
      Matrix m(4, 4);
      m(0, 0) = m(3, 3) = Complex(1, 0);
      m(1, 2) = m(2, 1) = Complex(1, 0);
      return m;
    }
    default:
      QDB_CHECK(false) << "To4x4 on a non-2Q op";
      return Matrix();
  }
}

/// Embeds a constant 1Q op into the 4x4 of a qubit pair: u ⊗ I when the op
/// acts on the pair's high qubit, I ⊗ u otherwise.
Matrix Expand1QTo4x4(const CompiledOp& op, bool on_high) {
  Matrix u(2, 2);
  if (op.kind == CompiledOpKind::k1QDiag) {
    u(0, 0) = op.c[0];
    u(1, 1) = op.c[1];
  } else {
    u(0, 0) = op.c[0];
    u(0, 1) = op.c[1];
    u(1, 0) = op.c[2];
    u(1, 1) = op.c[3];
  }
  Matrix out(4, 4);
  for (int r = 0; r < 4; ++r) {
    for (int col = 0; col < 4; ++col) {
      if (on_high) {
        if ((r & 1) == (col & 1)) out(r, col) = u(r >> 1, col >> 1);
      } else {
        if ((r >> 1) == (col >> 1)) out(r, col) = u(r & 1, col & 1);
      }
    }
  }
  return out;
}

/// Re-expresses a 4x4 written in (a, b) qubit order in (b, a) order:
/// M'(r, c) = M(sw(r), sw(c)) with sw exchanging the two index bits.
Matrix PermutePair(const Matrix& m) {
  static constexpr int kSw[4] = {0, 2, 1, 3};
  Matrix out(4, 4);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) out(r, c) = m(kSw[r], kSw[c]);
  }
  return out;
}

/// 2x2 product cur·prev over the array payloads (diagonal ops expand).
std::array<Complex, 4> Mul2x2(const CompiledOp& cur, const CompiledOp& prev) {
  auto dense = [](const CompiledOp& op) -> std::array<Complex, 4> {
    if (op.kind == CompiledOpKind::k1QDiag) {
      return {op.c[0], Complex(0, 0), Complex(0, 0), op.c[1]};
    }
    return op.c;
  };
  const std::array<Complex, 4> x = dense(cur);
  const std::array<Complex, 4> y = dense(prev);
  return {x[0] * y[0] + x[1] * y[2], x[0] * y[1] + x[1] * y[3],
          x[2] * y[0] + x[3] * y[2], x[2] * y[1] + x[3] * y[3]};
}

/// Folds a diagonal 1Q op into a diagonal 2Q payload in place.
void FoldDiag1QInto2QDiag(const CompiledOp& one_q, bool on_high,
                          std::array<Complex, 4>& quad) {
  const Complex d0 = one_q.c[0];
  const Complex d1 = one_q.c[1];
  if (on_high) {
    quad[0] *= d0;
    quad[1] *= d0;
    quad[2] *= d1;
    quad[3] *= d1;
  } else {
    quad[0] *= d0;
    quad[1] *= d1;
    quad[2] *= d0;
    quad[3] *= d1;
  }
}

/// The deterministic fusion pass: a single forward walk that greedily merges
/// each constant op into the latest op still touching its qubits. Parametric
/// ops, MCX/MCZ, and generic k-qubit ops act as barriers on their operands.
/// The pass is sequential and depends only on the op list, so fused programs
/// are identical regardless of thread count.
std::vector<CompiledOp> FusePass(std::vector<CompiledOp> in, int num_qubits,
                                 CompileStats& stats) {
  std::vector<CompiledOp> out;
  out.reserve(in.size());
  // prevs[i] = the previous last-toucher index of op i's operands at push
  // time, forming a per-qubit chain so absorbing an op can restore the
  // qubit's prior frontier.
  std::vector<std::array<int, 2>> prevs;
  prevs.reserve(in.size());
  std::vector<int> last(num_qubits, -1);

  auto push = [&](CompiledOp op, std::initializer_list<int> touched) {
    const int idx = static_cast<int>(out.size());
    std::array<int, 2> links = {-1, -1};
    int li = 0;
    for (int q : touched) {
      if (li < 2) links[li++] = last[q];
      last[q] = idx;
    }
    out.push_back(std::move(op));
    prevs.push_back(links);
  };

  for (CompiledOp& cur : in) {
    if (IsConst1Q(cur)) {
      const int q = cur.q0;
      const int p = last[q];
      if (p >= 0) {
        CompiledOp& prev = out[static_cast<size_t>(p)];
        if (IsConst1Q(prev)) {
          // Merge the pair into one 2x2 (diagonal iff both were diagonal).
          const bool both_diag = cur.kind == CompiledOpKind::k1QDiag &&
                                 prev.kind == CompiledOpKind::k1QDiag;
          const std::array<Complex, 4> merged = Mul2x2(cur, prev);
          if (both_diag) {
            prev.c = {merged[0], merged[3], Complex(0, 0), Complex(0, 0)};
          } else {
            prev.kind = CompiledOpKind::k1QDense;
            prev.c = merged;
          }
          prev.fused_gates += cur.fused_gates;
          ++stats.fused_1q1q;
          continue;
        }
        // A 1Q op commutes with everything after `prev` (nothing after it
        // touches q), so it may slide back and compose onto a 2Q-class op.
        if (IsConst2QClass(prev)) {
          const bool on_high = prev.q0 == q;
          if (cur.kind == CompiledOpKind::k1QDiag &&
              prev.kind == CompiledOpKind::k2QDiag) {
            FoldDiag1QInto2QDiag(cur, on_high, prev.c);
            ++stats.fused_diag;
          } else {
            prev.m = Expand1QTo4x4(cur, on_high) * To4x4(prev);
            prev.kind = CompiledOpKind::k2QDense;
            ++stats.fused_1q2q;
          }
          prev.fused_gates += cur.fused_gates;
          continue;
        }
      }
      push(std::move(cur), {q});
      continue;
    }

    if (IsConst2QClass(cur)) {
      const int a = cur.q0;
      const int b = cur.q1;
      // Absorb trailing constant 1Q ops on either operand: nothing between
      // them and `cur` touches their qubit, so they commute forward.
      bool dense = false;
      Matrix cur4;
      for (bool progressed = true; progressed;) {
        progressed = false;
        for (int side = 0; side < 2; ++side) {
          const int q = side == 0 ? a : b;
          const int pq = last[q];
          if (pq < 0 || !IsConst1Q(out[static_cast<size_t>(pq)])) continue;
          CompiledOp& one_q = out[static_cast<size_t>(pq)];
          const bool on_high = side == 0;
          if (!dense && cur.kind == CompiledOpKind::k2QDiag &&
              one_q.kind == CompiledOpKind::k1QDiag) {
            FoldDiag1QInto2QDiag(one_q, on_high, cur.c);
            ++stats.fused_diag;
          } else {
            if (!dense) {
              cur4 = To4x4(cur);
              dense = true;
            }
            cur4 = cur4 * Expand1QTo4x4(one_q, on_high);
            ++stats.fused_1q2q;
          }
          cur.fused_gates += one_q.fused_gates;
          last[q] = prevs[static_cast<size_t>(pq)][0];
          one_q.kind = CompiledOpKind::kNop;
          progressed = true;
        }
      }
      // Pair fusion: the previous op owns exactly this qubit pair and
      // nothing in between touches either qubit.
      const int p = last[a];
      if (p >= 0 && p == last[b]) {
        CompiledOp& prev = out[static_cast<size_t>(p)];
        const bool same_pair =
            IsConst2QClass(prev) && ((prev.q0 == a && prev.q1 == b) ||
                                     (prev.q0 == b && prev.q1 == a));
        if (same_pair) {
          const bool same_order = prev.q0 == a;
          if (!dense && cur.kind == CompiledOpKind::k2QDiag &&
              prev.kind == CompiledOpKind::k2QDiag) {
            static constexpr int kSw[4] = {0, 2, 1, 3};
            for (int i = 0; i < 4; ++i) {
              prev.c[i] *= cur.c[same_order ? i : kSw[i]];
            }
            ++stats.fused_diag;
          } else {
            Matrix cur_m = dense ? std::move(cur4) : To4x4(cur);
            if (!same_order) cur_m = PermutePair(cur_m);
            prev.m = cur_m * To4x4(prev);
            prev.kind = CompiledOpKind::k2QDense;
            ++stats.fused_2q2q;
          }
          prev.fused_gates += cur.fused_gates;
          continue;
        }
      }
      if (dense) {
        cur.kind = CompiledOpKind::k2QDense;
        cur.m = std::move(cur4);
      }
      push(std::move(cur), {a, b});
      continue;
    }

    // Barrier ops: parametric evaluators, MCX/MCZ, generic kQ. They pin the
    // frontier of every operand qubit.
    switch (cur.kind) {
      case CompiledOpKind::kMCX:
      case CompiledOpKind::kMCZ:
      case CompiledOpKind::kKQDense: {
        std::vector<int> touched = cur.qubits;
        if (cur.kind != CompiledOpKind::kKQDense) touched.push_back(cur.q0);
        const int idx = static_cast<int>(out.size());
        for (int q : touched) last[q] = idx;
        out.push_back(std::move(cur));
        prevs.push_back({-1, -1});
        break;
      }
      default: {  // Parametric 1Q/2Q.
        const int idx = static_cast<int>(out.size());
        last[cur.q0] = idx;
        if (GateArity(cur.src) == 2) last[cur.q1] = idx;
        out.push_back(std::move(cur));
        prevs.push_back({-1, -1});
        break;
      }
    }
  }

  // Compact the tombstones left by absorbed 1Q ops.
  std::vector<CompiledOp> compact;
  compact.reserve(out.size());
  for (CompiledOp& op : out) {
    if (op.kind != CompiledOpKind::kNop) compact.push_back(std::move(op));
  }
  return compact;
}

// ---- Cache-blocked execution ------------------------------------------------

/// Amplitude count per block: 2^16 amplitudes are 512 KiB per plane, 1 MiB
/// across both — an L2-resident working set, so a run of blockable ops
/// streams the state from memory once per run instead of once per op.
constexpr int kCacheBlockBits = 16;

/// True when every operand bit of `op` lies below the block boundary, so
/// the op maps each 2^kCacheBlockBits-amplitude block onto itself and can
/// be applied block-locally. Swap/MCX/MCZ/kQ kinds act as barriers.
bool IsBlockable(const CompiledOp& op, int num_qubits) {
  const auto below = [num_qubits](int q) {
    return (num_qubits - 1 - q) < kCacheBlockBits;
  };
  switch (op.kind) {
    case CompiledOpKind::k1QDense:
    case CompiledOpKind::k1QDiag:
      return below(op.q0);
    case CompiledOpKind::kControlled1Q:
    case CompiledOpKind::k2QDiag:
    case CompiledOpKind::k2QDense:
      return below(op.q0) && below(op.q1);
    default:
      return false;
  }
}

/// Applies one resolved, blockable op to the block-aligned amplitude range
/// [b0, b1). Pair/group subranges of a block are exactly the pairs/groups
/// whose indices fall inside it (all operand bits sit below the block
/// boundary), and the range kernels perform the identical per-element
/// arithmetic the full-state StateVector methods do — so blocked replay is
/// bit-identical to unblocked replay.
void ApplyOpToBlock(const CompiledOp& op, int num_qubits, double* re,
                    double* im, uint64_t b0, uint64_t b1,
                    simd::SimdLevel lvl) {
  const auto pos = [num_qubits](int q) { return num_qubits - 1 - q; };
  switch (op.kind) {
    case CompiledOpKind::k1QDense: {
      const uint64_t stride = uint64_t{1} << pos(op.q0);
      const double m[8] = {op.c[0].real(), op.c[0].imag(), op.c[1].real(),
                           op.c[1].imag(), op.c[2].real(), op.c[2].imag(),
                           op.c[3].real(), op.c[3].imag()};
      simd::Apply1QRange(lvl, re, im, b0 / 2, b1 / 2, stride, m);
      break;
    }
    case CompiledOpKind::k1QDiag: {
      const uint64_t mask = uint64_t{1} << pos(op.q0);
      const double d[4] = {op.c[0].real(), op.c[0].imag(), op.c[1].real(),
                           op.c[1].imag()};
      simd::Diag1QRange(lvl, re, im, b0, b1, mask, d);
      break;
    }
    case CompiledOpKind::kControlled1Q: {
      const uint64_t cmask = uint64_t{1} << pos(op.q0);
      const uint64_t stride = uint64_t{1} << pos(op.q1);
      const double m[8] = {op.c[0].real(), op.c[0].imag(), op.c[1].real(),
                           op.c[1].imag(), op.c[2].real(), op.c[2].imag(),
                           op.c[3].real(), op.c[3].imag()};
      simd::Controlled1QRange(lvl, re, im, b0 / 2, b1 / 2, stride, cmask, m);
      break;
    }
    case CompiledOpKind::k2QDiag: {
      const uint64_t amask = uint64_t{1} << pos(op.q0);
      const uint64_t bmask = uint64_t{1} << pos(op.q1);
      const double d[8] = {op.c[0].real(), op.c[0].imag(), op.c[1].real(),
                           op.c[1].imag(), op.c[2].real(), op.c[2].imag(),
                           op.c[3].real(), op.c[3].imag()};
      simd::Diag2QRange(lvl, re, im, b0, b1, amask, bmask, d);
      break;
    }
    case CompiledOpKind::k2QDense: {
      const uint64_t amask = uint64_t{1} << pos(op.q0);
      const uint64_t bmask = uint64_t{1} << pos(op.q1);
      const uint64_t lo_pos =
          std::min<uint64_t>(pos(op.q0), pos(op.q1));
      const uint64_t hi_pos =
          std::max<uint64_t>(pos(op.q0), pos(op.q1));
      const uint64_t lo_keep = (uint64_t{1} << lo_pos) - 1;
      const uint64_t mid_keep = ((uint64_t{1} << (hi_pos - 1)) - 1) & ~lo_keep;
      double mr[4][4], mi[4][4];
      for (int r = 0; r < 4; ++r) {
        for (int col = 0; col < 4; ++col) {
          const Complex entry = op.m(r, col);
          mr[r][col] = entry.real();
          mi[r][col] = entry.imag();
        }
      }
      simd::Apply2QRange(lvl, re, im, b0 / 4, b1 / 4, amask, bmask, lo_keep,
                         mid_keep, mr, mi);
      break;
    }
    default:
      QDB_CHECK(false) << "non-blockable op in a blocked run";
  }
}

/// Applies a run of blockable ops block by block: every block gets the full
/// run applied before the next block is touched, keeping it cache-resident
/// across the run. Blocks partition the state and each op maps a block onto
/// itself, so distributing blocks over the pool cannot change results — the
/// final value of every amplitude is the same op composition, computed with
/// the same elementary operations, as the op-by-op full-state walk.
void ExecuteBlockedRun(const std::vector<const CompiledOp*>& run,
                       StateVector& state) {
  const int n = state.num_qubits();
  double* re = state.reals();
  double* im = state.imags();
  const simd::SimdLevel lvl = simd::ActiveSimdLevel();
  const uint64_t block = uint64_t{1} << kCacheBlockBits;
  const size_t num_blocks = static_cast<size_t>(state.dim() >> kCacheBlockBits);
  ThreadPool::Global().RunTasks(num_blocks, [&](size_t blk) {
    const uint64_t b0 = static_cast<uint64_t>(blk) * block;
    for (const CompiledOp* op : run) {
      ApplyOpToBlock(*op, n, re, im, b0, b0 + block, lvl);
    }
  });
}

/// Per-op metric increments shared by the blocked and op-at-a-time replay
/// paths (mirrors the interpreter's tallies).
void CountOp(const CompiledOp& op, long dim, CompiledCounters& counters) {
  switch (op.kind) {
    case CompiledOpKind::kNop:
      break;
    case CompiledOpKind::k1QDense:
      counters.generic_1q->Increment();
      counters.amplitude_touches->Increment(dim);
      break;
    case CompiledOpKind::k1QDiag:
      counters.diagonal_1q->Increment();
      counters.amplitude_touches->Increment(dim);
      break;
    case CompiledOpKind::kControlled1Q:
      counters.controlled_1q->Increment();
      counters.amplitude_touches->Increment(dim / 2);
      break;
    case CompiledOpKind::k2QDiag:
      counters.diagonal_2q->Increment();
      counters.amplitude_touches->Increment(dim);
      break;
    case CompiledOpKind::k2QDense:
      counters.generic_2q->Increment();
      counters.amplitude_touches->Increment(dim);
      break;
    case CompiledOpKind::kSwap:
      counters.swap->Increment();
      counters.amplitude_touches->Increment(dim / 2);
      break;
    case CompiledOpKind::kMCX:
      counters.multi_controlled->Increment();
      counters.amplitude_touches->Increment(
          dim >> std::min<size_t>(op.qubits.size(), 62));
      break;
    case CompiledOpKind::kMCZ:
      counters.multi_controlled->Increment();
      counters.amplitude_touches->Increment(
          dim >> std::min<size_t>(op.qubits.size() + 1, 62));
      break;
    case CompiledOpKind::kKQDense:
      counters.generic_kq->Increment();
      counters.amplitude_touches->Increment(dim);
      break;
  }
}

}  // namespace

CompiledCircuit CompiledCircuit::Compile(const Circuit& circuit,
                                         const CompileOptions& options) {
  QDB_TRACE_SCOPE("CompiledCircuit::Compile", "compile");
  CompiledCircuit compiled;
  compiled.num_qubits_ = circuit.num_qubits();
  compiled.num_parameters_ = circuit.num_parameters();
  compiled.stats_.source_gates = circuit.size();

  std::vector<CompiledOp> ops;
  ops.reserve(circuit.size());
  for (const Gate& gate : circuit.gates()) LowerGate(gate, ops);
  compiled.stats_.lowered_ops = ops.size();

  if (options.fuse) {
    ops = FusePass(std::move(ops), circuit.num_qubits(), compiled.stats_);
  }
  compiled.stats_.emitted_ops = ops.size();
  compiled.ops_ = std::move(ops);

  CompiledCounters& counters = Counters();
  counters.circuits->Increment();
  counters.source_gates->Increment(
      static_cast<long>(compiled.stats_.source_gates));
  counters.ops_emitted->Increment(
      static_cast<long>(compiled.stats_.emitted_ops));
  counters.fused_1q1q->Increment(static_cast<long>(compiled.stats_.fused_1q1q));
  counters.fused_diag->Increment(static_cast<long>(compiled.stats_.fused_diag));
  counters.fused_1q2q->Increment(static_cast<long>(compiled.stats_.fused_1q2q));
  counters.fused_2q2q->Increment(static_cast<long>(compiled.stats_.fused_2q2q));
  counters.ops_eliminated->Increment(static_cast<long>(
      compiled.stats_.lowered_ops - compiled.stats_.emitted_ops));
  compiled.replays_by_qubits_ =
      counters.replays_by_qubits->With(StrCat(compiled.num_qubits_));
  return compiled;
}

Status CompiledCircuit::Execute(StateVector& state,
                                const DVector& params) const {
  if (state.num_qubits() != num_qubits_) {
    return Status::InvalidArgument(
        StrCat("state has ", state.num_qubits(),
               " qubits but compiled circuit has ", num_qubits_));
  }
  if (static_cast<int>(params.size()) < num_parameters_) {
    return Status::InvalidArgument(
        StrCat("compiled circuit references ", num_parameters_,
               " parameters but only ", params.size(), " were bound"));
  }
  QDB_TRACE_SCOPE("CompiledCircuit::Execute", "sim");
  CompiledCounters& counters = Counters();
  counters.replays->Increment();
  if (replays_by_qubits_ != nullptr) replays_by_qubits_->Increment();
  const long dim = static_cast<long>(state.dim());

  // Bind parametric ops up front so run detection sees resolved kinds. The
  // deque gives the bound copies stable addresses.
  std::deque<CompiledOp> bound_storage;
  std::vector<const CompiledOp*> resolved;
  resolved.reserve(ops_.size());
  DVector angles;
  for (const CompiledOp& op : ops_) {
    if (!op.parametric()) {
      resolved.push_back(&op);
      continue;
    }
    // Thin evaluator: bind the angles and resolve the payload through the
    // same lowering ladder the interpreter's dispatch follows.
    angles.clear();
    for (const ParamExpr& e : op.exprs) angles.push_back(e.Evaluate(params));
    CompiledOp bound;
    bound.q0 = op.q0;
    bound.q1 = op.q1;
    bound.src = op.src;
    LowerBound(op.src, angles, &bound);
    bound_storage.push_back(std::move(bound));
    resolved.push_back(&bound_storage.back());
  }

  // Cache blocking only pays off when the state exceeds a block; runs of
  // ≥ 2 consecutive blockable ops are replayed block-at-a-time so the
  // block's amplitudes stay L2-resident across the whole run.
  const bool can_block = state.dim() > (uint64_t{1} << kCacheBlockBits);
  std::vector<const CompiledOp*> run;
  size_t idx = 0;
  while (idx < resolved.size()) {
    const CompiledOp* op = resolved[idx];
    if (can_block && IsBlockable(*op, num_qubits_)) {
      size_t end = idx;
      while (end < resolved.size() &&
             IsBlockable(*resolved[end], num_qubits_)) {
        ++end;
      }
      if (end - idx >= 2) {
        run.assign(resolved.begin() + static_cast<ptrdiff_t>(idx),
                   resolved.begin() + static_cast<ptrdiff_t>(end));
        ExecuteBlockedRun(run, state);
        for (size_t i = idx; i < end; ++i) CountOp(*resolved[i], dim, counters);
        idx = end;
        continue;
      }
    }
    switch (op->kind) {
      case CompiledOpKind::kNop:
        break;
      case CompiledOpKind::k1QDense:
        state.Apply1Q(op->q0, op->c[0], op->c[1], op->c[2], op->c[3]);
        break;
      case CompiledOpKind::k1QDiag:
        state.ApplyDiagonal1Q(op->q0, op->c[0], op->c[1]);
        break;
      case CompiledOpKind::kControlled1Q:
        state.ApplyControlled1Q(op->q0, op->q1, op->c[0], op->c[1], op->c[2],
                                op->c[3]);
        break;
      case CompiledOpKind::k2QDiag:
        state.ApplyDiagonal2Q(op->q0, op->q1, op->c[0], op->c[1], op->c[2],
                              op->c[3]);
        break;
      case CompiledOpKind::k2QDense:
        state.Apply2Q(op->q0, op->q1, op->m);
        break;
      case CompiledOpKind::kSwap:
        state.ApplySwap(op->q0, op->q1);
        break;
      case CompiledOpKind::kMCX:
        state.ApplyMCX(op->qubits, op->q0);
        break;
      case CompiledOpKind::kMCZ:
        state.ApplyMCZ(op->qubits, op->q0);
        break;
      case CompiledOpKind::kKQDense:
        state.ApplyKQ(op->qubits, op->m);
        break;
    }
    CountOp(*op, dim, counters);
    ++idx;
  }
  return Status::OK();
}

CompilationCache& CompilationCache::Global() {
  static CompilationCache* cache = new CompilationCache(/*capacity=*/256);
  return *cache;
}

std::shared_ptr<const CompiledCircuit> CompilationCache::GetOrCompile(
    const Circuit& circuit, const CompileOptions& options) {
  std::string key = circuit.StructuralFingerprint();
  key.push_back(options.fuse ? '\1' : '\0');
  CompiledCounters& counters = Counters();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    counters.cache_hits->Increment();
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.program;
  }
  counters.cache_misses->Increment();
  ++misses_;
  auto program = std::make_shared<const CompiledCircuit>(
      CompiledCircuit::Compile(circuit, options));
  lru_.push_front(key);
  entries_[std::move(key)] = Entry{program, lru_.begin()};
  while (entries_.size() > capacity_) {
    counters.cache_evictions->Increment();
    ++evictions_;
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  counters.cache_size->Set(static_cast<double>(entries_.size()));
  return program;
}

void CompilationCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
  Counters().cache_size->Set(0.0);
}

CompilationCache::Stats CompilationCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.size = entries_.size();
  s.capacity = capacity_;
  return s;
}

size_t CompilationCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void CompilationCache::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<size_t>(capacity, 1);
  while (entries_.size() > capacity_) {
    Counters().cache_evictions->Increment();
    ++evictions_;
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  Counters().cache_size->Set(static_cast<double>(entries_.size()));
}

}  // namespace qdb
