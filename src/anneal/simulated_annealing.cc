#include "anneal/simulated_annealing.h"

#include <cmath>
#include <limits>

#include "anneal/solver_metrics.h"
#include "common/rng.h"
#include "obs/trace.h"

namespace qdb {

Result<SolveResult> SimulatedAnnealing(const IsingModel& model,
                                       const SaOptions& options) {
  if (options.num_sweeps < 1 || options.num_restarts < 1) {
    return Status::InvalidArgument("sweeps and restarts must be >= 1");
  }
  if (options.beta_initial <= 0.0 || options.beta_final < options.beta_initial) {
    return Status::InvalidArgument(
        "need 0 < beta_initial <= beta_final for an annealing ramp");
  }
  const int n = model.num_spins();
  const double scale = options.scale_to_coefficients
                           ? std::max(model.MaxAbsCoefficient(), 1e-12)
                           : 1.0;
  const double beta0 = options.beta_initial / scale;
  const double beta1 = options.beta_final / scale;
  const double ratio =
      options.num_sweeps > 1
          ? std::pow(beta1 / beta0, 1.0 / (options.num_sweeps - 1))
          : 1.0;

  QDB_TRACE_SCOPE("SimulatedAnnealing", "anneal");
  Rng rng(options.seed);
  SolveResult result;
  result.best_energy = std::numeric_limits<double>::infinity();

  for (int restart = 0; restart < options.num_restarts; ++restart) {
    std::vector<int8_t> spins(n);
    for (auto& s : spins) s = rng.Bernoulli(0.5) ? 1 : -1;
    double energy = model.Energy(spins);
    double beta = beta0;
    for (int sweep = 0; sweep < options.num_sweeps; ++sweep) {
      for (int i = 0; i < n; ++i) {
        const double delta = model.FlipDelta(spins, i);
        if (delta <= 0.0 || rng.Uniform() < std::exp(-beta * delta)) {
          spins[i] = -spins[i];
          energy += delta;
          ++result.moves_accepted;
        } else {
          ++result.moves_rejected;
        }
      }
      ++result.sweeps;
      if (energy < result.best_energy) {
        result.best_energy = energy;
        result.best_spins = spins;
      }
      beta *= ratio;
    }
  }
  RecordSolveMetrics("sa", result);
  return result;
}

}  // namespace qdb
