// Tests for graphs, generators, and the MaxCut Hamiltonian identities.

#include <gtest/gtest.h>

#include "anneal/exhaustive.h"
#include "ops/graph_hamiltonians.h"

namespace qdb {
namespace {

TEST(GraphTest, RingGraphStructure) {
  WeightedGraph g = RingGraph(5);
  EXPECT_EQ(g.num_nodes, 5);
  EXPECT_EQ(g.edges.size(), 5u);
  EXPECT_NEAR(g.TotalWeight(), 5.0, 1e-12);
}

TEST(GraphTest, CompleteGraphEdgeCount) {
  WeightedGraph g = CompleteGraph(6);
  EXPECT_EQ(g.edges.size(), 15u);
}

TEST(GraphTest, ErdosRenyiDensity) {
  Rng rng(3);
  WeightedGraph g = ErdosRenyiGraph(40, 0.5, rng);
  const double expected = 0.5 * 40 * 39 / 2;
  EXPECT_NEAR(static_cast<double>(g.edges.size()), expected, 80.0);
}

TEST(GraphTest, ErdosRenyiWeightRange) {
  Rng rng(5);
  WeightedGraph g = ErdosRenyiGraph(20, 0.8, rng, 2.0, 3.0);
  for (const auto& e : g.edges) {
    EXPECT_GE(e.weight, 2.0);
    EXPECT_LE(e.weight, 3.0);
  }
}

TEST(GraphTest, CutValueCountsCrossingEdges) {
  WeightedGraph g;
  g.num_nodes = 3;
  g.edges = {{0, 1, 1.0}, {1, 2, 2.0}, {0, 2, 4.0}};
  EXPECT_NEAR(g.CutValue({1, -1, 1}), 3.0, 1e-12);   // Edges 0-1, 1-2 cut.
  EXPECT_NEAR(g.CutValue({1, 1, 1}), 0.0, 1e-12);
  EXPECT_NEAR(g.CutValue({1, -1, -1}), 5.0, 1e-12);  // Edges 0-1, 0-2 cut.
}

TEST(MaxCutTest, EvenRingFullCut) {
  WeightedGraph g = RingGraph(6);
  EXPECT_NEAR(MaxCutBruteForce(g), 6.0, 1e-12);  // Alternating 2-coloring.
}

TEST(MaxCutTest, OddRingDropsOneEdge) {
  WeightedGraph g = RingGraph(5);
  EXPECT_NEAR(MaxCutBruteForce(g), 4.0, 1e-12);
}

TEST(MaxCutTest, CompleteGraphBalancedCut) {
  // K4: best cut splits 2/2 → 4 crossing edges.
  EXPECT_NEAR(MaxCutBruteForce(CompleteGraph(4)), 4.0, 1e-12);
}

TEST(MaxCutTest, IsingGroundStateEqualsMaxCut) {
  // Identity: cut(s) = (TotalWeight − E(s)) / 2 for the MaxCut Ising, so
  // the ground energy gives exactly the max cut.
  Rng rng(9);
  WeightedGraph g = ErdosRenyiGraph(8, 0.6, rng, 0.5, 2.0);
  IsingModel ising = MaxCutIsing(g);
  auto ground = ExhaustiveSolve(ising);
  ASSERT_TRUE(ground.ok());
  const double via_ising = (g.TotalWeight() - ground.value().best_energy) / 2.0;
  EXPECT_NEAR(via_ising, MaxCutBruteForce(g), 1e-9);
  // And the argmin spins realize that cut.
  EXPECT_NEAR(g.CutValue(ground.value().best_spins), MaxCutBruteForce(g),
              1e-9);
}

TEST(MaxCutTest, GreedyIsFeasibleAndBounded) {
  Rng rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    WeightedGraph g = ErdosRenyiGraph(10, 0.5, rng);
    const double greedy = MaxCutGreedy(g);
    const double optimal = MaxCutBruteForce(g);
    EXPECT_LE(greedy, optimal + 1e-9);
    if (!g.edges.empty()) {
      // A local optimum of single flips cuts at least half the weight.
      EXPECT_GE(greedy, g.TotalWeight() / 2.0 - 1e-9);
    }
  }
}

}  // namespace
}  // namespace qdb
