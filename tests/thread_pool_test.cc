// Tests for the shared worker pool: coverage, determinism of the chunked
// reduction, nested-call safety, and the global-pool configuration hooks.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

namespace qdb {
namespace {

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  const uint64_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(0, n, [&](uint64_t b, uint64_t e) {
    for (uint64_t i = b; i < e; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "element " << i;
  }
}

TEST(ThreadPoolTest, ParallelForEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](uint64_t, uint64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // A range below the minimum chunk width is one inline chunk.
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(0, 10, [&](uint64_t b, uint64_t e) {
    for (uint64_t i = b; i < e; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ThreadPoolTest, ChunkBoundariesDependOnlyOnRange) {
  // The determinism contract: identical ranges produce identical chunk
  // layouts regardless of how many lanes the pool has.
  const uint64_t n = 1 << 18;
  auto layout = [n](int threads) {
    ThreadPool pool(threads);
    std::vector<std::pair<uint64_t, uint64_t>> chunks(
        (n + ThreadPool::ChunkSize(n) - 1) / ThreadPool::ChunkSize(n));
    pool.ParallelForChunks(0, n, [&](uint64_t ci, uint64_t b, uint64_t e) {
      chunks[ci] = {b, e};
    });
    return chunks;
  };
  EXPECT_EQ(layout(1), layout(4));
  EXPECT_EQ(layout(2), layout(7));
}

TEST(ThreadPoolTest, ChunkSizeProperties) {
  EXPECT_EQ(ThreadPool::ChunkSize(1), 2048u);      // Floor applies.
  EXPECT_EQ(ThreadPool::ChunkSize(2048), 2048u);
  const uint64_t big = uint64_t{1} << 24;
  const uint64_t chunk = ThreadPool::ChunkSize(big);
  EXPECT_GE(chunk, 2048u);
  EXPECT_LE((big + chunk - 1) / chunk, 64u);        // At most 64 chunks.
}

TEST(ThreadPoolTest, RunTasksRunsEachIndexOnce) {
  ThreadPool pool(4);
  const size_t n = 257;
  std::vector<std::atomic<int>> hits(n);
  pool.RunTasks(n, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
  pool.RunTasks(0, [&](size_t) { FAIL() << "no tasks expected"; });
}

TEST(ThreadPoolTest, ParallelSumBitIdenticalAcrossThreadCounts) {
  const uint64_t n = 1 << 17;
  auto run = [n](int threads) {
    ThreadPool pool(threads);
    return ParallelSum<double>(pool, 0, n, [](uint64_t b, uint64_t e) {
      double acc = 0.0;
      for (uint64_t i = b; i < e; ++i) acc += 1.0 / (1.0 + i);
      return acc;
    });
  };
  const double serial = run(1);
  // Bit-identical, not just approximately equal.
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(4));
  EXPECT_EQ(serial, run(8));
}

TEST(ThreadPoolTest, NestedParallelCallsRunInlineWithoutDeadlock) {
  ThreadPool pool(4);
  const size_t outer = 8;
  const uint64_t inner = 50000;
  std::vector<uint64_t> sums(outer, 0);
  pool.RunTasks(outer, [&](size_t t) {
    // A nested call from a worker must not enqueue-and-wait (deadlock) —
    // it runs inline. From the caller lane it may still fan out; either
    // way the arithmetic below is per-task-local.
    std::atomic<uint64_t> local{0};
    pool.ParallelFor(0, inner, [&](uint64_t b, uint64_t e) {
      uint64_t part = 0;
      for (uint64_t i = b; i < e; ++i) part += i;
      local.fetch_add(part, std::memory_order_relaxed);
    });
    sums[t] = local.load();
  });
  const uint64_t expect = inner * (inner - 1) / 2;
  for (size_t t = 0; t < outer; ++t) EXPECT_EQ(sums[t], expect);
}

TEST(ThreadPoolTest, InWorkerFalseOnCallerThread) {
  EXPECT_FALSE(ThreadPool::InWorker());
}

TEST(ThreadPoolTest, SetGlobalThreadsResizesGlobalPool) {
  ThreadPool::SetGlobalThreads(3);
  EXPECT_EQ(ThreadPool::Global().size(), 3);
  ThreadPool::SetGlobalThreads(1);
  EXPECT_EQ(ThreadPool::Global().size(), 1);
}

TEST(ThreadPoolTest, SingleLanePoolSpawnsNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  bool saw_worker = false;
  pool.ParallelFor(0, 100000, [&](uint64_t, uint64_t) {
    saw_worker = saw_worker || ThreadPool::InWorker();
  });
  EXPECT_FALSE(saw_worker);  // Everything ran on the calling thread.
}

}  // namespace
}  // namespace qdb
