// E11 — Grover search over an unstructured key space.
//
// Regenerates the Grover figure: success probability vs iteration count
// (the sine-squared oscillation peaking at ⌊π/4·√N⌋) and the simulation
// cost of the search as the database grows. Expected shape: the optimal
// iteration count grows as √N while classical linear scan grows as N —
// the quadratic "database search" speedup the tutorial opens with.

#include <benchmark/benchmark.h>

#include <cmath>

#include "algo/grover.h"

namespace qdb {
namespace {

void BM_GroverSuccessCurve(benchmark::State& state) {
  // Fixed n = 8 (N = 256): sweep the iteration count across the first peak.
  const int iterations = static_cast<int>(state.range(0));
  const int n = 8;
  double success = 0.0;
  for (auto _ : state) {
    success = GroverSuccessProbability(n, {123}, iterations).ValueOrDie();
  }
  state.counters["iterations"] = iterations;
  state.counters["success_prob"] = success;
  const double theta = std::asin(1.0 / 16.0);
  state.counters["theory"] = std::pow(std::sin((2 * iterations + 1) * theta), 2);
}

BENCHMARK(BM_GroverSuccessCurve)
    ->DenseRange(0, 18, 2)
    ->Arg(12)  // The optimum ⌊π/4·16⌋ = 12.
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_GroverAtOptimalIterations(benchmark::State& state) {
  // Scaling series: success at the optimal count, and the √N iteration
  // growth, for n = 4…14.
  const int n = static_cast<int>(state.range(0));
  const uint64_t marked = (uint64_t{1} << n) / 3;
  const int iters = OptimalGroverIterations(n);
  double success = 0.0;
  for (auto _ : state) {
    success = GroverSuccessProbability(n, {marked}, iters).ValueOrDie();
  }
  state.counters["qubits"] = n;
  state.counters["db_size"] = static_cast<double>(uint64_t{1} << n);
  state.counters["optimal_iters"] = iters;
  state.counters["success_prob"] = success;
  state.counters["classical_expected_probes"] =
      static_cast<double>(uint64_t{1} << n) / 2.0;
}

BENCHMARK(BM_GroverAtOptimalIterations)
    ->DenseRange(4, 14, 2)
    ->Unit(benchmark::kMillisecond);

void BM_GroverMultipleMarked(benchmark::State& state) {
  // M marked of N=1024: optimal iterations shrink as √(N/M).
  const int m = static_cast<int>(state.range(0));
  const int n = 10;
  std::vector<uint64_t> marked;
  for (int i = 0; i < m; ++i) marked.push_back(37 * (i + 1) % 1024);
  const int iters = OptimalGroverIterations(n, m);
  double success = 0.0;
  for (auto _ : state) {
    success = GroverSuccessProbability(n, marked, iters).ValueOrDie();
  }
  state.counters["num_marked"] = m;
  state.counters["optimal_iters"] = iters;
  state.counters["success_prob"] = success;
}

BENCHMARK(BM_GroverMultipleMarked)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qdb

BENCHMARK_MAIN();
