#!/usr/bin/env bash
# Crash-recovery gate: SIGKILL serving_demo's journaled registry workload at
# seeded fault points — mid-journal-append, mid-compaction, mid-artifact-save
# — then warm-restart from the journal and verify, per run:
#
#   * no acknowledged registration is lost (every ACK SAVE not later removed
#     is recovered),
#   * no phantom is served (everything recovered was at least attempted),
#   * no removed model is resurrected (every ACK REMOVE stays gone),
#   * the server reaches ready and every recovered model answers one
#     inference.
#
# The verification itself lives in serving_demo --recover (it replays the
# workload's flushed TRY/ACK ledger); this script supplies the kill matrix.
# Each run is a fixed point:kind:probability:seed spec, so a failure here
# reproduces bit for bit with the printed QDB_FAULTS string. Run from the
# repo root:
#
#   ./scripts/crash_recovery.sh            # uses build/
#   BUILD_DIR=out ./scripts/crash_recovery.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
DEMO="$BUILD_DIR/examples/serving_demo"
ROUNDS="${ROUNDS:-80}"

if [[ ! -x "$DEMO" ]]; then
  echo "crash_recovery: $DEMO not built (cmake --build $BUILD_DIR)" >&2
  exit 1
fi

WORK_ROOT="$(mktemp -d /tmp/qdb_crash_recovery.XXXXXX)"
trap 'rm -rf "$WORK_ROOT"' EXIT

# Four fault shapes x six seeds = 24 seeded runs. Kill probabilities are
# per-evaluation, tuned so most (not all) workloads die mid-run; a run the
# fault misses is still a valid sample — recovery of a cleanly exited
# journal must also hold. The torn-write profile crashes nothing but leaves
# a poisoned, torn-tailed journal, exercising truncation on replay.
PROFILE_NAMES=(journal-append-kill artifact-save-kill compact-kill journal-torn-tail)
declare -A PROFILES=(
  [journal-append-kill]='store.journal.append:kill:0.05:SEED:0.5'
  [artifact-save-kill]='artifact.save:kill:0.04:SEED:0.5'
  [compact-kill]='store.journal.compact:kill:0.7:SEED:0.5'
  [journal-torn-tail]='store.journal.append:torn_write:0.08:SEED:0.5'
)
SEEDS=(3 7 11 19 23 31)

runs=0
kills=0
clean=0
for name in "${PROFILE_NAMES[@]}"; do
  for seed in "${SEEDS[@]}"; do
    spec="${PROFILES[$name]//SEED/$seed}"
    dir="$WORK_ROOT/$name-$seed"
    mkdir -p "$dir"
    runs=$((runs + 1))
    echo "== crash run $runs: $name seed=$seed  (QDB_FAULTS=$spec) =="

    status=0
    QDB_FAULTS="$spec" "$DEMO" \
      --journal-dir "$dir/journal" --crash-rounds "$ROUNDS" \
      --ack-log "$dir/ack.log" --seed "$seed" \
      > "$dir/workload.log" 2>&1 || status=$?
    if [[ "$status" -eq 137 ]]; then
      kills=$((kills + 1))
      echo "   workload: killed (exit 137)"
    elif [[ "$status" -eq 0 ]]; then
      clean=$((clean + 1))
      echo "   workload: completed (fault did not fire fatally)"
    else
      echo "crash_recovery FAILED: workload exited $status (expected 0 or 137)" >&2
      cat "$dir/workload.log" >&2
      exit 1
    fi

    # Recovery runs fault-free: the crash was the experiment, the restart
    # must be unconditional.
    if ! "$DEMO" --journal-dir "$dir/journal" --recover \
        --ack-log "$dir/ack.log" > "$dir/recover.log" 2>&1; then
      echo "crash_recovery FAILED: recovery after $name seed=$seed" >&2
      echo "--- ack ledger ---" >&2
      cat "$dir/ack.log" >&2 || true
      echo "--- recovery log ---" >&2
      cat "$dir/recover.log" >&2
      exit 1
    fi
    grep -E '^(recovery:|READY)' "$dir/recover.log" | sed 's/^/   /'
  done
done

# The matrix is only meaningful if it actually produced crashes: with these
# probabilities a kill-free sweep means the fault points regressed.
if [[ "$kills" -lt 5 ]]; then
  echo "crash_recovery FAILED: only $kills/$runs runs were killed —" \
       "kill fault points are not firing" >&2
  exit 1
fi

echo
echo "crash_recovery PASS: $runs runs ($kills killed, $clean completed)," \
     "every restart recovered to serving-ready"
