/// \file qasm.h
/// \brief OpenQASM 2.0 export — interoperability with Qiskit/Cirq
/// toolchains (the ecosystems the tutorial's audience already uses).

#ifndef QDB_CIRCUIT_QASM_H_
#define QDB_CIRCUIT_QASM_H_

#include <string>

#include "circuit/circuit.h"
#include "common/result.h"

namespace qdb {

/// \brief Renders a circuit as an OpenQASM 2.0 program (qelib1.inc gate
/// vocabulary). Requirements:
///  * all symbolic parameters must be bound (num_parameters() == 0) —
///    OpenQASM 2 has no parameter symbols; Bind() first;
///  * variadic kMCX/kMCZ are emitted natively only up to 2 controls
///    (cx/ccx and cz/h-ccx-h); wider ones return Unimplemented.
/// A trailing full-register measurement is appended when
/// `measure_all` is true.
Result<std::string> ToQasm(const Circuit& circuit, bool measure_all = false);

/// \brief Parses the OpenQASM 2.0 subset this library emits (qelib1 gate
/// names, one `qreg`, literal or `±pi/k` angles). `creg` declarations and
/// `measure` statements are accepted and ignored; `barrier`, custom gate
/// definitions, and classical control return Unimplemented.
Result<Circuit> ParseQasm(const std::string& source);

}  // namespace qdb

#endif  // QDB_CIRCUIT_QASM_H_
