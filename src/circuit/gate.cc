#include "circuit/gate.h"

#include <cmath>

#include "common/check.h"

namespace qdb {

double ParamExpr::Evaluate(const DVector& params) const {
  if (index < 0) return offset;
  QDB_CHECK_LT(static_cast<size_t>(index), params.size())
      << "parameter index out of range";
  return multiplier * params[index] + offset;
}

Gate Gate::WithNegatedParams() const {
  Gate g = *this;
  for (auto& p : g.params) {
    p.multiplier = -p.multiplier;
    p.offset = -p.offset;
  }
  return g;
}

const char* GateTypeName(GateType type) {
  switch (type) {
    case GateType::kI: return "id";
    case GateType::kX: return "x";
    case GateType::kY: return "y";
    case GateType::kZ: return "z";
    case GateType::kH: return "h";
    case GateType::kS: return "s";
    case GateType::kSdg: return "sdg";
    case GateType::kT: return "t";
    case GateType::kTdg: return "tdg";
    case GateType::kSX: return "sx";
    case GateType::kRX: return "rx";
    case GateType::kRY: return "ry";
    case GateType::kRZ: return "rz";
    case GateType::kPhase: return "p";
    case GateType::kU: return "u";
    case GateType::kCX: return "cx";
    case GateType::kCY: return "cy";
    case GateType::kCZ: return "cz";
    case GateType::kCH: return "ch";
    case GateType::kSwap: return "swap";
    case GateType::kCRX: return "crx";
    case GateType::kCRY: return "cry";
    case GateType::kCRZ: return "crz";
    case GateType::kCPhase: return "cp";
    case GateType::kRXX: return "rxx";
    case GateType::kRYY: return "ryy";
    case GateType::kRZZ: return "rzz";
    case GateType::kCCX: return "ccx";
    case GateType::kCSwap: return "cswap";
    case GateType::kMCX: return "mcx";
    case GateType::kMCZ: return "mcz";
  }
  return "?";
}

int GateArity(GateType type) {
  switch (type) {
    case GateType::kI:
    case GateType::kX:
    case GateType::kY:
    case GateType::kZ:
    case GateType::kH:
    case GateType::kS:
    case GateType::kSdg:
    case GateType::kT:
    case GateType::kTdg:
    case GateType::kSX:
    case GateType::kRX:
    case GateType::kRY:
    case GateType::kRZ:
    case GateType::kPhase:
    case GateType::kU:
      return 1;
    case GateType::kCX:
    case GateType::kCY:
    case GateType::kCZ:
    case GateType::kCH:
    case GateType::kSwap:
    case GateType::kCRX:
    case GateType::kCRY:
    case GateType::kCRZ:
    case GateType::kCPhase:
    case GateType::kRXX:
    case GateType::kRYY:
    case GateType::kRZZ:
      return 2;
    case GateType::kCCX:
    case GateType::kCSwap:
      return 3;
    case GateType::kMCX:
    case GateType::kMCZ:
      return 0;  // variadic
  }
  return 0;
}

int GateParamCount(GateType type) {
  switch (type) {
    case GateType::kRX:
    case GateType::kRY:
    case GateType::kRZ:
    case GateType::kPhase:
    case GateType::kCRX:
    case GateType::kCRY:
    case GateType::kCRZ:
    case GateType::kCPhase:
    case GateType::kRXX:
    case GateType::kRYY:
    case GateType::kRZZ:
      return 1;
    case GateType::kU:
      return 3;
    default:
      return 0;
  }
}

bool IsDiagonalGate(GateType type) {
  switch (type) {
    case GateType::kI:
    case GateType::kZ:
    case GateType::kS:
    case GateType::kSdg:
    case GateType::kT:
    case GateType::kTdg:
    case GateType::kRZ:
    case GateType::kPhase:
    case GateType::kCZ:
    case GateType::kCRZ:
    case GateType::kCPhase:
    case GateType::kRZZ:
    case GateType::kMCZ:
      return true;
    default:
      return false;
  }
}

namespace {

Matrix ControlledMatrix(const Matrix& u) {
  QDB_CHECK_EQ(u.rows(), 2u);
  Matrix c = Matrix::Identity(4);
  // Convention: qubits[0] (control) is the most significant index bit, so
  // the controlled block sits at rows/cols {2, 3}.
  c(2, 2) = u(0, 0);
  c(2, 3) = u(0, 1);
  c(3, 2) = u(1, 0);
  c(3, 3) = u(1, 1);
  return c;
}

Matrix Rx(double theta) {
  double c = std::cos(theta / 2), s = std::sin(theta / 2);
  return Matrix{{Complex(c, 0), Complex(0, -s)}, {Complex(0, -s), Complex(c, 0)}};
}

Matrix Ry(double theta) {
  double c = std::cos(theta / 2), s = std::sin(theta / 2);
  return Matrix{{Complex(c, 0), Complex(-s, 0)}, {Complex(s, 0), Complex(c, 0)}};
}

Matrix Rz(double theta) {
  Complex em = std::exp(Complex(0, -theta / 2));
  Complex ep = std::exp(Complex(0, theta / 2));
  return Matrix{{em, Complex(0, 0)}, {Complex(0, 0), ep}};
}

}  // namespace

Matrix GateMatrix(GateType type, const DVector& angles) {
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  QDB_CHECK_EQ(static_cast<int>(angles.size()), GateParamCount(type))
      << "wrong number of angles for gate " << GateTypeName(type);
  switch (type) {
    case GateType::kI:
      return Matrix::Identity(2);
    case GateType::kX:
      return Matrix{{{0, 0}, {1, 0}}, {{1, 0}, {0, 0}}};
    case GateType::kY:
      return Matrix{{{0, 0}, {0, -1}}, {{0, 1}, {0, 0}}};
    case GateType::kZ:
      return Matrix{{{1, 0}, {0, 0}}, {{0, 0}, {-1, 0}}};
    case GateType::kH:
      return Matrix{{{inv_sqrt2, 0}, {inv_sqrt2, 0}},
                    {{inv_sqrt2, 0}, {-inv_sqrt2, 0}}};
    case GateType::kS:
      return Matrix{{{1, 0}, {0, 0}}, {{0, 0}, {0, 1}}};
    case GateType::kSdg:
      return Matrix{{{1, 0}, {0, 0}}, {{0, 0}, {0, -1}}};
    case GateType::kT:
      return Matrix{{{1, 0}, {0, 0}},
                    {{0, 0}, {inv_sqrt2, inv_sqrt2}}};
    case GateType::kTdg:
      return Matrix{{{1, 0}, {0, 0}},
                    {{0, 0}, {inv_sqrt2, -inv_sqrt2}}};
    case GateType::kSX:
      // sqrt(X) = 1/2 [[1+i, 1-i], [1-i, 1+i]]
      return Matrix{{{0.5, 0.5}, {0.5, -0.5}}, {{0.5, -0.5}, {0.5, 0.5}}};
    case GateType::kRX:
      return Rx(angles[0]);
    case GateType::kRY:
      return Ry(angles[0]);
    case GateType::kRZ:
      return Rz(angles[0]);
    case GateType::kPhase: {
      Matrix m = Matrix::Identity(2);
      m(1, 1) = std::exp(Complex(0, angles[0]));
      return m;
    }
    case GateType::kU: {
      const double theta = angles[0], phi = angles[1], lambda = angles[2];
      const double c = std::cos(theta / 2), s = std::sin(theta / 2);
      Matrix m(2, 2);
      m(0, 0) = Complex(c, 0);
      m(0, 1) = -std::exp(Complex(0, lambda)) * s;
      m(1, 0) = std::exp(Complex(0, phi)) * s;
      m(1, 1) = std::exp(Complex(0, phi + lambda)) * c;
      return m;
    }
    case GateType::kCX:
      return ControlledMatrix(GateMatrix(GateType::kX, {}));
    case GateType::kCY:
      return ControlledMatrix(GateMatrix(GateType::kY, {}));
    case GateType::kCZ:
      return ControlledMatrix(GateMatrix(GateType::kZ, {}));
    case GateType::kCH:
      return ControlledMatrix(GateMatrix(GateType::kH, {}));
    case GateType::kSwap: {
      Matrix m(4, 4);
      m(0, 0) = m(3, 3) = Complex(1, 0);
      m(1, 2) = m(2, 1) = Complex(1, 0);
      return m;
    }
    case GateType::kCRX:
      return ControlledMatrix(Rx(angles[0]));
    case GateType::kCRY:
      return ControlledMatrix(Ry(angles[0]));
    case GateType::kCRZ:
      return ControlledMatrix(Rz(angles[0]));
    case GateType::kCPhase:
      return ControlledMatrix(GateMatrix(GateType::kPhase, angles));
    case GateType::kRXX: {
      const double c = std::cos(angles[0] / 2), s = std::sin(angles[0] / 2);
      Matrix m(4, 4);
      for (int i = 0; i < 4; ++i) m(i, i) = Complex(c, 0);
      m(0, 3) = m(3, 0) = Complex(0, -s);
      m(1, 2) = m(2, 1) = Complex(0, -s);
      return m;
    }
    case GateType::kRYY: {
      const double c = std::cos(angles[0] / 2), s = std::sin(angles[0] / 2);
      Matrix m(4, 4);
      for (int i = 0; i < 4; ++i) m(i, i) = Complex(c, 0);
      m(0, 3) = m(3, 0) = Complex(0, s);
      m(1, 2) = m(2, 1) = Complex(0, -s);
      return m;
    }
    case GateType::kRZZ: {
      Complex em = std::exp(Complex(0, -angles[0] / 2));
      Complex ep = std::exp(Complex(0, angles[0] / 2));
      return Matrix::Diagonal({em, ep, ep, em});
    }
    case GateType::kCCX: {
      Matrix m = Matrix::Identity(8);
      m(6, 6) = m(7, 7) = Complex(0, 0);
      m(6, 7) = m(7, 6) = Complex(1, 0);
      return m;
    }
    case GateType::kCSwap: {
      Matrix m = Matrix::Identity(8);
      m(5, 5) = m(6, 6) = Complex(0, 0);
      m(5, 6) = m(6, 5) = Complex(1, 0);
      return m;
    }
    case GateType::kMCX:
    case GateType::kMCZ:
      QDB_CHECK(false) << "GateMatrix does not support variadic gates";
  }
  QDB_CHECK(false) << "unreachable";
  return Matrix();
}

GateType AdjointType(GateType type) {
  switch (type) {
    case GateType::kS:
      return GateType::kSdg;
    case GateType::kSdg:
      return GateType::kS;
    case GateType::kT:
      return GateType::kTdg;
    case GateType::kTdg:
      return GateType::kT;
    default:
      return type;
  }
}

}  // namespace qdb
