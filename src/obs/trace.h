/// \file trace.h
/// \brief RAII trace spans recorded into a process-wide ring buffer, with a
/// Chrome trace-event (chrome://tracing / Perfetto) JSON exporter, and
/// request-scoped causal linkage via RequestContext.
///
/// Tracing is off by default. The enabled check is one relaxed atomic load,
/// so a QDB_TRACE_SCOPE in a hot path costs a single predictable branch when
/// tracing is disabled and records nothing. Span names and categories must
/// be string literals (or otherwise outlive the TraceLog): events store the
/// pointers, not copies.
///
/// Request scoping: a RequestContext is a (trace id, span id) pair minted at
/// a request boundary (e.g. InferenceServer::Submit) with no clock reads —
/// ids come from a process-wide SplitMix64 counter stream. A ContextGuard
/// installs a context as the calling thread's *ambient* context; every
/// TraceSpan constructed while an ambient context is active records its
/// trace id and parents itself under the innermost enclosing span, so the
/// existing QDB_TRACE_SCOPE sites in the simulator, thread pool, and kernel
/// layers join a request's causal tree automatically. ThreadPool propagates
/// the submitting thread's ambient context into its workers, so fan-out
/// stays linked across threads.

#ifndef QDB_OBS_TRACE_H_
#define QDB_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace qdb {
namespace obs {

/// \brief One completed span: a Chrome trace-event "X" (complete) event.
/// trace_id == 0 means the span ran outside any request context.
struct TraceEvent {
  const char* name = nullptr;      ///< Span name (string literal).
  const char* category = nullptr;  ///< Trace-event category (string literal).
  uint64_t thread_id = 0;          ///< Hash of the recording thread's id.
  int64_t start_us = 0;            ///< µs since the process trace epoch.
  int64_t duration_us = 0;         ///< Span duration in µs.
  uint64_t trace_id = 0;           ///< Request trace this span belongs to.
  uint64_t span_id = 0;            ///< This span's id within the trace.
  uint64_t parent_span_id = 0;     ///< Enclosing span (0 = root).
  /// Cross-trace link: a batch span records one link event per coalesced
  /// request, carrying that request's trace id here (0 = no link).
  uint64_t link_trace_id = 0;
};

/// True iff spans currently record events (one relaxed atomic load).
bool TracingEnabled();
void EnableTracing();
void DisableTracing();
/// Enables tracing iff the QDB_TRACE environment variable is set to
/// anything other than "" or "0".
void InitTracingFromEnv();

/// \brief A propagated request identity: which trace events belong to and
/// which span new child spans hang off. Cheap to mint (one relaxed atomic
/// fetch_add, no clock reads) and trivially copyable, so it rides along in
/// queue entries and across dispatcher threads.
struct RequestContext {
  uint64_t trace_id = 0;  ///< 0 = no context (events record unscoped).
  uint64_t span_id = 0;   ///< The span children should parent under.

  bool valid() const { return trace_id != 0; }

  /// Mints a fresh trace with a root span id. Ids are drawn from a
  /// process-wide SplitMix64 stream — deterministic order, no clock.
  static RequestContext NewRoot();
};

/// Allocates a fresh span id from the same stream as RequestContext ids.
uint64_t NewSpanId();

/// The calling thread's ambient context (invalid when none installed).
RequestContext CurrentContext();

/// \brief RAII installer of a thread's ambient RequestContext. Restores the
/// previous ambient context on destruction; used at request boundaries
/// (batch execution, pool-task fan-out) to extend the causal tree across
/// threads.
class ContextGuard {
 public:
  explicit ContextGuard(const RequestContext& context);
  ~ContextGuard();

  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  RequestContext previous_;
};

/// \brief Lock-guarded ring buffer of completed spans (process singleton).
///
/// When the buffer is full the oldest events are overwritten; dropped()
/// reports how many were lost so exporters can flag truncation.
class TraceLog {
 public:
  static TraceLog& Global();

  void Record(const TraceEvent& event);

  /// Buffered events, oldest first.
  std::vector<TraceEvent> Snapshot() const;
  size_t size() const;
  /// Events overwritten because the ring was full.
  size_t dropped() const;
  void Clear();

  /// Resizes the ring (discards buffered events). Default: 65536 events.
  void SetCapacity(size_t capacity);

  /// Writes the buffered events as Chrome trace-event JSON
  /// ({"traceEvents":[...]}), loadable in chrome://tracing and Perfetto.
  /// Request-scoped events carry args.trace / args.span / args.parent (hex)
  /// so one request's causal tree is greppable by trace id.
  Status WriteChromeTrace(const std::string& path) const;
  /// The same JSON as a string (exposed for tests and in-process use).
  std::string ChromeTraceJson() const;

 private:
  TraceLog();

  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t capacity_;
  size_t next_ = 0;     ///< Ring write cursor.
  size_t count_ = 0;    ///< Buffered events (<= capacity_).
  size_t dropped_ = 0;  ///< Overwritten events.
};

/// Microseconds since the process trace epoch (first use of the clock).
int64_t TraceNowMicros();

/// Records a completed span with explicit identity and timing — for spans
/// whose lifetime crosses threads or scopes (e.g. a request's root span,
/// started at Submit and recorded wherever the request resolves).
/// `link_trace_id` attaches a cross-trace link (batch → member). No-op when
/// tracing is disabled. `name`/`category` must be string literals.
void RecordSpan(const char* name, const char* category, int64_t start_us,
                int64_t duration_us, uint64_t trace_id, uint64_t span_id,
                uint64_t parent_span_id, uint64_t link_trace_id = 0);

/// \brief Scoped timer: records a TraceEvent from construction to
/// destruction iff tracing was enabled at construction time. While alive it
/// is the innermost ambient span: nested spans (same thread) and pool tasks
/// fanned out underneath parent to it.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  bool active_;
  int64_t start_us_ = 0;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_span_id_ = 0;
};

#define QDB_OBS_CONCAT_INNER(a, b) a##b
#define QDB_OBS_CONCAT(a, b) QDB_OBS_CONCAT_INNER(a, b)

/// Times the enclosing scope as a trace event. `name` and `category` must
/// be string literals. When tracing is disabled this is one relaxed load
/// and a branch.
#define QDB_TRACE_SCOPE(name, category)                              \
  ::qdb::obs::TraceSpan QDB_OBS_CONCAT(qdb_trace_span_, __LINE__) { \
    (name), (category)                                               \
  }

}  // namespace obs
}  // namespace qdb

#endif  // QDB_OBS_TRACE_H_
