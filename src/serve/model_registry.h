/// \file model_registry.h
/// \brief Versioned store of servable models: register, look up (latest or
/// pinned version), evict, pin, and persist to / restore from disk under a
/// byte budget.
///
/// Registration turns an artifact into a ServableModel (validating it and
/// precomputing its inference path) and assigns the next version when the
/// artifact does not pin one. Lookups hand out shared_ptr<const
/// ServableModel>, so evicting a model never invalidates requests already
/// holding it — the servable dies when its last in-flight request drops it.
///
/// The registry is internally sharded into *slices* (FNV-1a of the model
/// name, all versions of a name on one slice), so artifact loads, cold
/// starts, and budget bookkeeping on one slice never serialize lookups on
/// another — the registry-side counterpart of the server's sharded request
/// queues. Each slice runs its own store::MemoryBudget: models that were
/// loaded from (or saved to) an artifact file can be paged out under
/// memory pressure and are transparently reloaded on the next Lookup (a
/// *cold start*, reported via the store.cold_start_us histogram), so a
/// registry holding thousands of versions serves with bounded RAM. Models
/// registered purely from memory have nowhere to reload from and are never
/// paged out (the budget is soft for them), and pinned models are resident
/// by fiat.
///
/// With RegistryOptions::journal_dir set, the registry is *durable*: every
/// control-plane transition (register, promote-to-file-backed, pin, unpin,
/// evict, budget page-out) is recorded write-ahead in a
/// store::RegistryJournal, and construction replays the directory's
/// snapshot + journal, rebuilding every previously file-backed entry as a
/// page-out — resident on first Lookup (or prefetched via
/// AsyncModelLoader / InferenceServer::StartWarmup). Entries that were
/// never promoted to a file have no durable artifact and are dropped on
/// recovery (never served as phantoms). Use OpenJournaled to surface
/// replay errors; the plain constructor records them in recovery_report().

#ifndef QDB_SERVE_MODEL_REGISTRY_H_
#define QDB_SERVE_MODEL_REGISTRY_H_

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/retry.h"
#include "serve/model_artifact.h"
#include "serve/servable.h"
#include "store/binary_format.h"
#include "store/memory_budget.h"
#include "store/registry_journal.h"

namespace qdb {
namespace serve {

/// Retry policy LoadModel uses by default: a few quick attempts covering
/// transient read failures and torn reads that race an in-progress save
/// (the writer renames a complete file into place between attempts).
RetryPolicy DefaultArtifactLoadRetry();

/// One row of ModelRegistry::List.
struct ModelEntry {
  std::string name;
  int version = 0;
  ModelType type = ModelType::kVqcClassifier;
  int num_features = 0;
  bool resident = true;  ///< false = paged out, reloads on next Lookup.
  bool pinned = false;
};

/// Construction-time knobs for the registry's storage tier.
struct RegistryOptions {
  /// Independent lock+budget slices (clamped to >= 1). Pair with the
  /// server's shard count to split artifact-load contention.
  int num_slices = 1;
  /// Total resident-bytes budget across all slices; 0 = unlimited. Each
  /// slice enforces budget/num_slices independently.
  size_t store_budget_bytes = 0;
  /// Format SaveModel writes. Binary is the storage-tier default; readers
  /// accept both.
  store::ArtifactFormat save_format = store::ArtifactFormat::kBinary;
  /// Crash-recovery journal directory (store/registry_journal.h). Empty =
  /// no journal: registry state dies with the process. Non-empty: durable
  /// mutations are journaled write-ahead and construction warm-restarts
  /// from the directory's snapshot + journal.
  std::string journal_dir;
  /// Auto-compact the journal into a snapshot after this many appends;
  /// <= 0 never auto-compacts.
  long journal_compact_every = 1024;
};

/// What a journaled registry's recovery found (recovery_report()).
struct RecoveryReport {
  /// True when the journal opened and replay succeeded; the registry is
  /// journaling. False with open_status non-OK = recovery failed and the
  /// registry is running UN-journaled (OpenJournaled turns that into a
  /// construction error); false with open_status OK = journaling was never
  /// requested.
  bool journaled = false;
  Status open_status;
  long recovered_models = 0;    ///< Durable entries rebuilt as page-outs.
  long dropped_nondurable = 0;  ///< Journaled but never promoted: dropped.
  long replayed_records = 0;
  long stale_records = 0;  ///< Skipped as already folded into the snapshot.
  bool tail_truncated = false;
  uint64_t snapshot_sequence = 0;
  long recovery_us = 0;  ///< Replay + rebuild time (store.recovery_us).
};

/// Aggregated storage-tier state, also surfaced in InferenceServer::Statusz.
struct StoreStatus {
  size_t budget_bytes = 0;    ///< 0 = unlimited.
  size_t resident_bytes = 0;  ///< Sum of resident servables' estimates.
  size_t registered_models = 0;
  size_t resident_models = 0;
  size_t evicted_models = 0;  ///< Registered but paged out.
  long evictions = 0;         ///< Budget-driven page-outs since construction.
  long reloads = 0;           ///< Cold-start reloads since construction.
  int num_slices = 1;
};

/// \brief Thread-safe, sliced name → version → servable map with a
/// byte-budgeted residency policy.
class ModelRegistry {
 public:
  ModelRegistry() : ModelRegistry(RegistryOptions{}) {}
  explicit ModelRegistry(const RegistryOptions& options);

  /// Opens a journaled registry: requires options.journal_dir, and turns a
  /// failed journal open / replay into a construction error instead of the
  /// plain constructor's silently-unjournaled fallback.
  static Result<std::unique_ptr<ModelRegistry>> OpenJournaled(
      const RegistryOptions& options);

  /// Validates and loads `artifact`. version == 0 assigns (highest existing
  /// version) + 1; an explicitly pinned version that already exists fails
  /// with kAlreadyExists. Returns the loaded servable (with its assigned
  /// version and stamped circuit fingerprint).
  Result<std::shared_ptr<const ServableModel>> Register(ModelArtifact artifact);

  /// Looks up a model; version < 0 means "latest registered version". A
  /// paged-out model is reloaded from its artifact file on the spot (the
  /// cold-start path): the caller blocks for the reload, concurrent
  /// lookups of the same version wait for that one reload instead of
  /// stampeding the file, and — because the reload runs outside the slice
  /// lock — lookups of every other model proceed unaffected.
  Result<std::shared_ptr<const ServableModel>> Lookup(const std::string& name,
                                                      int version = -1) const;

  /// Removes one version, or every version when version < 0. Fails with
  /// kNotFound if nothing matched. In-flight requests holding the servable
  /// are unaffected.
  Status Evict(const std::string& name, int version = -1);

  /// Pins (or unpins) a version: pinned models are never paged out by the
  /// budget. kNotFound when the version is not registered.
  Status SetPinned(const std::string& name, int version, bool pinned);

  /// Every registered (name, version), sorted by name then version,
  /// including paged-out entries.
  std::vector<ModelEntry> List() const;

  /// Number of registered (name, version) pairs.
  size_t size() const;

  /// Serializes one registered model's artifact to `path` in
  /// options().save_format (crash-safe). On success the version becomes
  /// file-backed: it is now evictable under the budget and reloadable from
  /// `path`.
  Status SaveModel(const std::string& name, int version,
                   const std::string& path) const;

  /// Loads an artifact file (either format) and registers it. The file's
  /// version is kept if free, otherwise registration fails with
  /// kAlreadyExists; pass reassign_version to force "next version"
  /// semantics instead. The read is retried under `retry` so a load racing
  /// a crash-safe save (or an injected transient fault) settles on the
  /// complete artifact. The registered version is file-backed (evictable).
  Result<std::shared_ptr<const ServableModel>> LoadModel(
      const std::string& path, bool reassign_version = false,
      const RetryPolicy& retry = DefaultArtifactLoadRetry());

  /// Aggregated storage-tier counters across all slices.
  StoreStatus store_status() const;

  /// How the last construction's journal recovery went (all-zero defaults
  /// when journaling was never requested).
  const RecoveryReport& recovery_report() const { return recovery_; }

  /// The (name, version) pairs worth prefetching after a warm restart:
  /// recovered entries that were pinned or resident when last journaled.
  /// Empty for unjournaled registries.
  std::vector<std::pair<std::string, int>> RecoveredWarmSet() const {
    return recovered_warm_;
  }

  /// The journal (null when not journaling) — introspection only.
  const store::RegistryJournal* journal() const { return journal_.get(); }

  const RegistryOptions& options() const { return options_; }
  int num_slices() const { return static_cast<int>(slices_.size()); }

 private:
  struct Entry {
    /// Null when paged out; reloaded from artifact_path on demand.
    std::shared_ptr<const ServableModel> servable;
    /// Cached so List() works while paged out.
    ModelType type = ModelType::kVqcClassifier;
    int num_features = 0;
    /// Empty = in-memory only: never evictable, nowhere to reload from.
    std::string artifact_path;
    /// Identity the artifact *file* holds, recorded when the entry became
    /// file-backed. May lag the registered version (reassign_version loads
    /// and files stored with version 0); reloads validate against this,
    /// then serve under the registered (name, version).
    std::string file_name;
    int file_version = 0;
    size_t resident_bytes = 0;
    bool pinned = false;
    /// True while one Lookup reloads this entry off-lock; concurrent
    /// lookups of the same version wait on Slice::cv instead of stampeding
    /// the file or stalling the slice.
    bool loading = false;
  };
  struct Slice {
    explicit Slice(size_t budget_bytes) : budget(budget_bytes) {}
    mutable std::mutex mu;
    /// Signalled whenever a cold-start reload settles (install or failure)
    /// so waiters re-resolve their entry.
    mutable std::condition_variable cv;
    std::map<std::string, std::map<int, Entry>> models;
    store::MemoryBudget budget;
    long evictions = 0;
    long reloads = 0;
  };

  Slice& SliceFor(const std::string& name) const;
  /// Loads + validates + builds a servable for a paged-out entry. Runs
  /// WITHOUT the slice lock (file I/O, retry backoff, and circuit builds
  /// must not stall the slice); the caller holds the entry's loading latch.
  Result<std::shared_ptr<const ServableModel>> ColdStartLoad(
      const std::string& path, const std::string& name, int version,
      const std::string& file_name, int file_version) const;
  /// Pages out LRU victims until the slice fits its budget (protecting
  /// `protect_key`, the entry just touched). Slice lock held.
  void EnforceBudgetLocked(Slice& slice, const std::string& protect_key) const;
  /// Marks a registered version file-backed after a successful save/load.
  /// (`file_name`, `file_version`) is the identity stored in the file at
  /// `path`, which reloads are validated against. Journaled write-ahead
  /// (the promote event IS the durability point); a failed journal append
  /// leaves the entry in-memory-only and propagates the error.
  Status MarkFileBacked(const std::string& name, int version,
                        const std::string& path,
                        const std::string& file_name,
                        int file_version) const;
  void PublishGauges() const;

  /// Journals one event; OK no-op when not journaling.
  Status JournalAppend(store::JournalEvent event, const std::string& name,
                       int version, ModelType type, int num_features,
                       const std::string& path = std::string(),
                       const std::string& file_name = std::string(),
                       int file_version = 0) const;
  /// Opens options_.journal_dir, replays it, and rebuilds every durable
  /// entry as a file-backed page-out. Called once from the constructor;
  /// fills recovery_ (including the failure mode: open_status non-OK and
  /// the registry left un-journaled).
  void RecoverFromJournal();

  RegistryOptions options_;
  std::vector<std::unique_ptr<Slice>> slices_;
  /// Non-null = journaling. The journal has its own internal lock and
  /// never calls back into the registry, so appending while holding a
  /// slice lock cannot deadlock (lock order: slice.mu → journal.mu).
  std::unique_ptr<store::RegistryJournal> journal_;
  RecoveryReport recovery_;
  std::vector<std::pair<std::string, int>> recovered_warm_;
};

}  // namespace serve
}  // namespace qdb

#endif  // QDB_SERVE_MODEL_REGISTRY_H_
