/// \file graph_hamiltonians.h
/// \brief Weighted graphs, generators, and graph-problem Hamiltonians
/// (MaxCut) used by the QAOA and annealing experiments.

#ifndef QDB_OPS_GRAPH_HAMILTONIANS_H_
#define QDB_OPS_GRAPH_HAMILTONIANS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "ops/ising.h"

namespace qdb {

/// \brief An undirected weighted graph on nodes 0..n−1.
struct WeightedGraph {
  struct Edge {
    int u;
    int v;
    double weight;
  };

  int num_nodes = 0;
  std::vector<Edge> edges;

  /// Total weight of edges cut by the ±1 assignment (crossing edges).
  double CutValue(const std::vector<int8_t>& assignment) const;

  /// Sum of all edge weights.
  double TotalWeight() const;
};

/// Erdős–Rényi G(n, p) with each present edge weighted uniformly in
/// [min_weight, max_weight].
WeightedGraph ErdosRenyiGraph(int num_nodes, double edge_probability, Rng& rng,
                              double min_weight = 1.0, double max_weight = 1.0);

/// Cycle graph 0−1−...−(n−1)−0, unit weights.
WeightedGraph RingGraph(int num_nodes);

/// Complete graph with unit weights.
WeightedGraph CompleteGraph(int num_nodes);

/// \brief MaxCut as an Ising minimization: E(s) = Σ_{(u,v)} w_uv·s_u·s_v so
/// that cut(s) = (W − E(s) + offsetless terms)/2; concretely
/// cut(s) = (TotalWeight − Energy(s)) / 2 when the returned model has no
/// fields or offset. Minimizing energy maximizes the cut.
IsingModel MaxCutIsing(const WeightedGraph& graph);

/// Exact maximum cut by exhaustive search (n ≤ 24).
double MaxCutBruteForce(const WeightedGraph& graph);

/// Greedy local-move heuristic cut (starts all-+1, flips best-improvement
/// until local optimum) — the classical baseline in E6.
double MaxCutGreedy(const WeightedGraph& graph);

}  // namespace qdb

#endif  // QDB_OPS_GRAPH_HAMILTONIANS_H_
