/// \file inference_server.h
/// \brief The serving runtime: sharded bounded request queues, work-stealing
/// dispatcher threads that coalesce compatible requests into micro-batches,
/// per-tenant token-bucket quotas, admission control, per-request deadlines,
/// and a result cache.
///
/// Request lifecycle:
///
///   Submit ──▶ admission (tenant quota ──▶ resolve model, validate input,
///              cache lookup, breaker, shard-capacity check — overflow fails
///              fast with kUnavailable, quota exhaustion with
///              kResourceExhausted) ──▶ bounded shard queue (shard =
///              hash(model, version) % num_shards) ──▶ a dispatcher pops a
///              leader from its home shard — or steals a whole coalescible
///              batch from a backlogged shard when home is empty — and
///              coalesces every queued request for the same (model version,
///              request kind) for up to max_wait_us or max_batch_size ──▶
///              expired requests are cancelled with kDeadlineExceeded before
///              touching the simulator ──▶ one ServableModel::RunBatch
///              executes the whole micro-batch ──▶ promises resolve, results
///              enter the cache.
///
/// Sharding invariant: requests for one (model, version) always route to
/// one shard, so micro-batches still coalesce fully; independent models
/// land on independent mutexes, so Submit-side contention and dispatcher
/// queue scans split by num_shards instead of serializing on one lock.
///
/// Work-stealing invariant: a thief pops the victim's *front* leader and
/// drains compatible requests front-to-back exactly like the home
/// dispatcher would — a steal moves a whole coalescible batch and never
/// reorders requests within a (model, version, kind) stream. Stolen
/// batches close immediately (no coalescing window): a thief only exists
/// because some shard is backlogged while it is idle, so clearing work
/// beats waiting for stragglers. Per-stream dispatch order is audited at
/// batch-pop time; violations land in Stats::fifo_violations (always 0).
///
/// Batching invariant: a micro-batch only ever contains requests for one
/// servable (one model version) and one request kind, so the whole batch is
/// B parameter bindings of the same compiled circuit (or B points of one
/// CrossFromEncoded call). Dispatchers are dedicated threads — not pool
/// workers — so the batch execution itself still fans out across the shared
/// qdb::ThreadPool.
///
/// Multi-tenancy: InferenceRequest carries a `tenant` id; when
/// ServerOptions::enable_quotas is set, each tenant spends one token per
/// Submit from its token bucket (serve/tenant_quota.h) *before* any other
/// admission work. Quota rejections resolve with kResourceExhausted, land
/// in the dedicated Stats::quota_rejected terminal bucket, and never reach
/// the model registry, the circuit breakers, or a queue — an over-budget
/// tenant cannot poison breaker state or occupy shard capacity.
///
/// Shutdown is a graceful drain: admission stops (new Submits get
/// kUnavailable), dispatchers finish everything already queued across all
/// shards (work-stealing doubles as the drain path when dispatchers <
/// shards), then join.
///
/// Resilience: batch execution is retried under ServerOptions::retry for
/// transient (kUnavailable) failures, with deadline-aware backoff — a
/// request whose deadline cannot survive the next sleep resolves with
/// kDeadlineExceeded immediately. A per-servable circuit breaker
/// (fault/circuit_breaker.h) sheds load for a model whose batches keep
/// failing, and the degradation ladder kicks in under breaker-open or
/// queue pressure: bounded-staleness cache serving, shrunken coalescing
/// windows, and (inside ServableModel) compiled→interpreted fallback.

#ifndef QDB_SERVE_INFERENCE_SERVER_H_
#define QDB_SERVE_INFERENCE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/retry.h"
#include "fault/circuit_breaker.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "serve/model_registry.h"
#include "serve/result_cache.h"
#include "serve/servable.h"
#include "serve/tenant_quota.h"

namespace qdb {
namespace store {
class AsyncModelLoader;  // store/async_loader.h
}  // namespace store
namespace serve {

/// \brief Serving-runtime knobs.
struct ServerOptions {
  /// Maximum queued (admitted, not yet executing) requests across all
  /// shards; each shard is bounded by ceil(queue_capacity / num_shards) and
  /// a Submit landing on a full shard fails with kUnavailable.
  size_t queue_capacity = 256;
  /// Largest micro-batch a dispatcher will coalesce.
  size_t max_batch_size = 16;
  /// How long a dispatcher holds an under-full batch open waiting for
  /// compatible requests, measured from when the leader was popped.
  /// Stolen batches skip the window entirely.
  long max_wait_us = 200;
  /// Dispatcher threads. Dispatcher i's home shard is i % num_shards; for
  /// latency-sensitive multi-shard deployments run at least one dispatcher
  /// per shard (a shard with no home dispatcher is served by steals, which
  /// poll every steal_poll_us).
  int num_dispatchers = 1;
  /// Independent request-queue shards, each with its own mutex, condition
  /// variable, and bounded sub-queue. Requests route deterministically by
  /// hash(model, version) % num_shards (see InferenceServer::ShardFor), so
  /// one model's stream stays coalescible on one shard while different
  /// models stop contending on a single lock. 1 = the pre-sharding
  /// single-queue server, bit-compatible with its behavior.
  int num_shards = 1;
  /// How long an idle dispatcher waits on its empty home shard before
  /// scanning the other shards for stealable work.
  long steal_poll_us = 200;
  /// Result-cache entries; 0 disables the cache.
  size_t result_cache_capacity = 1024;

  /// Batch-execution retry for transient failures (default: retry
  /// kUnavailable up to 4 attempts with jittered exponential backoff).
  RetryPolicy retry;
  /// Seed for the backoff-jitter streams (per-batch streams are derived
  /// from it, so retry schedules are deterministic for a fixed seed).
  uint64_t retry_jitter_seed = 0x7E575EEDull;

  /// Per-servable circuit breakers on the admission path.
  bool enable_breaker = true;
  fault::CircuitBreakerOptions breaker;

  /// Per-tenant token-bucket quotas, checked before any other admission
  /// work. Off by default: every request admits regardless of tenant.
  bool enable_quotas = false;
  TenantQuotaOptions quota;

  /// Fresh-path cache TTL: entries older than this are only eligible for
  /// degraded (stale) serving. 0 = cache entries never go stale, which
  /// also disables stale serving (the fresh path already returns them).
  long result_cache_ttl_us = 0;
  /// Staleness bound for degraded serving under breaker-open or queue
  /// pressure; 0 = any age is acceptable when degraded.
  long max_stale_age_us = 0;

  /// Shard-fill fraction above which dispatchers shrink the batch
  /// coalescing window to max_wait_us / 4 (throughput over batch quality
  /// under pressure). <= 0 disables the shrink.
  double pressure_watermark = 0.5;

  /// Per-model SLO tracking: every terminal resolution records into an
  /// obs::SloTracker and burn rates surface as slo.* gauges (after a
  /// Statusz or SloReport call) and in Statusz().
  bool enable_slo = true;
  /// Default objective for models without an explicit SetObjective.
  obs::SloObjective slo;
  /// Burn-rate look-back windows, seconds, strictly increasing.
  std::vector<long> slo_windows_s = {300, 3600};

  /// Warm-restart admission gate: after StartWarmup, Submit sheds with
  /// kUnavailable (and Healthz reports the distinct "warming" state) until
  /// this fraction of the registry's recovered warm set is resident again.
  /// Clamped to [0, 1]. Warmup *completion* always opens admission, even
  /// when some prefetches failed — a warm set that cannot fully load must
  /// degrade to cold starts, not a permanently closed door.
  double warm_ready_fraction = 1.0;
};

/// \brief One inference request. `version` < 0 serves the latest registered
/// version; `timeout_us` > 0 sets a deadline relative to Submit — a request
/// still queued past it is cancelled with kDeadlineExceeded and never
/// reaches the simulator. `tenant` names the token bucket charged when
/// quotas are enabled (the empty id is a tenant like any other).
struct InferenceRequest {
  std::string model;
  int version = -1;
  RequestKind kind = RequestKind::kPredict;
  DVector input;
  long timeout_us = 0;
  std::string tenant;
};

/// \brief Per-request timing breakdown returned with the response. All
/// timings are wall-clock microseconds; trace_id is 0 when tracing was
/// disabled at Submit time (the timings are still filled in).
struct TraceSummary {
  uint64_t trace_id = 0;       ///< Grep key into the Chrome-trace export.
  long queue_wait_us = 0;      ///< Admission → dispatch.
  long exec_us = 0;            ///< Sum of execution attempts.
  long retry_backoff_us = 0;   ///< Sum of backoff sleeps the request rode.
  int attempts = 0;            ///< Execution attempts (0 = never executed).
  long total_us = 0;           ///< Submit → resolution.
};

/// \brief A completed inference plus serving metadata.
struct InferenceResponse {
  InferenceValue result;
  int model_version = 0;
  bool from_cache = false;
  /// True when the response came from the degradation ladder (e.g. a
  /// stale cache entry served while the model's breaker was open).
  bool degraded = false;
  /// Execution attempts the batch took (0 for cache hits, >1 = retried).
  int attempts = 0;
  /// Micro-batch size this request executed in (0 for cache hits).
  size_t batch_size = 0;
  /// Time from admission to dispatch (0 for cache hits).
  long queue_wait_us = 0;
  /// Where the time went (and the trace id to find the span tree).
  TraceSummary trace;
};

/// \brief Dynamic micro-batching inference server over a ModelRegistry.
///
/// Thread-safe: any number of client threads may Submit concurrently.
/// Requests admitted before Start() queue up and execute once started.
class InferenceServer {
 public:
  /// `registry` must outlive the server.
  explicit InferenceServer(ModelRegistry& registry,
                           const ServerOptions& options = {});
  /// Drains and joins (see Shutdown).
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Spawns the dispatcher threads. Fails with kFailedPrecondition if
  /// already started or already shut down.
  Status Start();

  /// Graceful drain: stops admission (subsequent Submits fail with
  /// kUnavailable), lets dispatchers finish every queued request on every
  /// shard, joins them. Requests admitted but never started (Start was not
  /// called) fail with kUnavailable. Idempotent.
  void Shutdown();

  /// Admits a request and returns a future for its response. Admission
  /// failures (quota exhaustion, unknown model, bad input, full shard,
  /// shut down) and cache hits resolve the future immediately.
  std::future<Result<InferenceResponse>> Submit(InferenceRequest request);

  /// Deterministic shard routing: requests for (model, version) live on
  /// shard ShardFor(model, version, num_shards). Exposed so tests and
  /// benchmarks can construct model sets with known shard placement.
  static size_t ShardFor(const std::string& model, int version,
                         size_t num_shards);

  /// Requests currently queued (admitted, not yet dispatched), summed
  /// across shards.
  size_t queue_depth() const;
  /// The deepest single shard queue — the signal a full shard cannot hide
  /// behind a healthy-looking average (Healthz degrades on it).
  size_t max_shard_depth() const;
  /// Per-shard queue depths, indexed by shard.
  std::vector<size_t> shard_depths() const;

  /// Monotonic serving tallies (process-lifetime metrics live in qdb::obs;
  /// these are per-server and race-free to read in tests). Every submitted
  /// request lands in exactly one terminal bucket:
  ///   submitted == completed + cache_hits + degraded + rejected
  ///                + quota_rejected + expired + failed.
  struct Stats {
    long submitted = 0;       ///< Admission attempts.
    long completed = 0;       ///< Futures resolved with an executed result.
    long cache_hits = 0;      ///< Resolved fresh from the result cache.
    long degraded = 0;        ///< Resolved stale via the degradation ladder.
    long rejected = 0;        ///< Terminal at admission (invalid, overflow,
                              ///< breaker shed, shut down).
    long quota_rejected = 0;  ///< Shed by a tenant token bucket.
    long expired = 0;         ///< Cancelled with kDeadlineExceeded.
    long failed = 0;          ///< Execution failed after retries.
    long batches = 0;         ///< Micro-batches executed successfully.
    long steals = 0;          ///< Batches a dispatcher stole off-shard.
    long fifo_violations = 0; ///< Per-stream dispatch-order audit failures
                              ///< (an invariant: always 0).
  };
  Stats stats() const;

  const ResultCache& result_cache() const { return result_cache_; }

  /// The circuit breaker guarding (model, version), or null if that pair
  /// has not been submitted to yet (or breakers are disabled).
  const fault::CircuitBreaker* breaker(const std::string& model,
                                       int version) const;

  /// The quota manager (null when options.enable_quotas is false).
  const TenantQuotaManager* quotas() const { return quotas_.get(); }

  /// The SLO tracker (null when options.enable_slo is false).
  const obs::SloTracker* slo_tracker() const { return slo_.get(); }

  /// Begins the warm-restart prefetch: snapshots the registry's recovered
  /// warm set (pinned or previously-resident models) and drives `loader`
  /// to re-resident each one off the request path. Until
  /// ceil(warm_ready_fraction × warm set) models are resident, Submit
  /// sheds with kUnavailable and Healthz reports "warming". OK no-op when
  /// the warm set is empty. Requires a started server; `loader` must be
  /// started and outlive the warmup (Shutdown joins the warmup thread).
  Status StartWarmup(store::AsyncModelLoader& loader);

  /// Warm-restart progress, for Statusz and the crash harness.
  struct WarmupStatus {
    bool active = false;    ///< Warmup thread still prefetching.
    bool admitting = true;  ///< Readiness gate open (no warmup = open).
    size_t target = 0;      ///< Warm-set size StartWarmup snapshotted.
    size_t ready = 0;       ///< Prefetches that made a model resident.
    size_t failed = 0;      ///< Prefetches that failed (degrade to cold).
  };
  WarmupStatus warmup_status() const;

  /// Human-readable introspection page: per-shard queue depths, stats
  /// buckets, per-tenant token-bucket state, breaker states, degradation
  /// tallies, cache stats, warm-restart progress, armed fault points with
  /// per-point trigger counts, per-model SLO burn rates, and the slowest
  /// recent request traces.
  std::string Statusz() const;

  /// OK while the server can make progress: started, not shut down, past
  /// the warm-restart readiness gate, no shard at capacity (a single full
  /// shard degrades health even when the total backlog looks fine), and no
  /// model in SLO breach. Otherwise the status message names the first
  /// failing condition.
  Status Healthz() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// A queued request: resolved servable + promise + timing + trace.
  struct Pending {
    std::shared_ptr<const ServableModel> servable;
    RequestKind kind = RequestKind::kPredict;
    DVector input;
    std::string cache_key;  ///< Empty when the cache is disabled.
    Clock::time_point admitted;
    Clock::time_point deadline;  ///< Clock::time_point::max() = none.
    /// Shard-local admission sequence number, for the FIFO dispatch audit.
    uint64_t seq = 0;
    /// Root trace context minted at Submit (invalid if tracing was off).
    obs::RequestContext ctx;
    int64_t submit_trace_us = 0;  ///< Root-span start (trace clock).
    long retry_backoff_us = 0;    ///< Backoff sleeps ridden so far.
    std::promise<Result<InferenceResponse>> promise;
  };

  /// One independent queue shard. `depth` mirrors queue.size() for
  /// lock-free introspection (queue_depth / Healthz / gauges); the
  /// authoritative capacity check happens under `mu`.
  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<Pending> queue;
    bool accepting = true;  ///< Cleared under `mu` by Shutdown.
    uint64_t enqueue_seq = 0;
    /// (servable, kind) → last dispatched seq, for the FIFO audit. Streams
    /// never migrate shards, so the map is consistent under `mu`.
    std::map<std::pair<const void*, int>, uint64_t> last_dispatched;
    /// Streams with an unclosed batch: a dispatcher coalescing inside its
    /// window releases `mu` to sleep, and a concurrent popper (home peer
    /// or thief) taking later same-stream arrivals would dispatch them
    /// out of order — so poppers skip open streams entirely.
    std::set<std::pair<const void*, int>> open_streams;
    std::atomic<size_t> depth{0};
  };

  void DispatcherLoop(size_t home_shard);
  /// Blocks until the home shard has work (then coalesces a batch with the
  /// usual window), a steal poll finds a backlogged victim shard (then
  /// returns the victim's front batch immediately), or the server is
  /// drained and stopping (then returns empty).
  std::vector<Pending> NextBatch(size_t home_shard);
  /// Pops the first leader whose stream is not already open plus every
  /// compatible queued request (same servable, same kind) from `shard`,
  /// whose lock is held via `lock`. `allow_window` keeps an under-full
  /// batch open up to max_wait_us (shrunk under shard pressure); stolen
  /// batches pass false. Returns empty when every queued request belongs
  /// to a stream another dispatcher is mid-window on.
  std::vector<Pending> PopBatchLocked(size_t shard_index,
                                      std::unique_lock<std::mutex>& lock,
                                      bool allow_window);
  /// Runs the batch with per-attempt fault injection, breaker outcome
  /// recording, and deadline-aware retry; resolves every promise.
  void ExecuteBatch(std::vector<Pending> batch);

  size_t per_shard_capacity() const {
    const size_t n = shards_.size();
    return (options_.queue_capacity + n - 1) / n;
  }
  /// Lazily creates the breaker for this servable's (name, version).
  fault::CircuitBreaker* BreakerFor(const ServableModel& servable);
  /// Resolves `pending` from a stale cache entry within max_stale_age_us,
  /// marking the response degraded. False when nothing stale is usable.
  bool TryServeStale(Pending& pending);
  /// Cancels every request in `live` whose deadline precedes `cutoff` with
  /// kDeadlineExceeded (`why` names the retry context for the message).
  void CancelExpired(std::vector<Pending>& live, Clock::time_point cutoff,
                     const char* why);

  /// Terminal accounting shared by every resolution path: labeled
  /// serve.requests / serve.latency_us children, SLO sample, and — when the
  /// request carries a trace — the outcome marker plus the root
  /// "serve.request" span. `outcome` must be a string literal.
  void RecordTerminal(const char* outcome, const std::string& model,
                      RequestKind kind, const obs::RequestContext& ctx,
                      int64_t submit_trace_us, long latency_us, bool ok);
  /// Publishes the aggregate and per-shard queue-depth gauges.
  void PublishDepth(size_t shard_index) const;

  ModelRegistry& registry_;
  const ServerOptions options_;
  ResultCache result_cache_;

  /// Shards are created once in the constructor and never resized, so the
  /// vector itself is safe to read without a lock.
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Lifecycle state (started / stopping / shut down). Leaf lock; never
  /// held while taking a shard lock.
  mutable std::mutex state_mu_;
  bool started_ = false;
  bool shut_down_ = false;
  std::atomic<bool> stopping_{false};
  std::vector<std::thread> dispatchers_;
  /// Warm-restart state. The thread is guarded by state_mu_ (StartWarmup /
  /// Shutdown); the gate and tallies are atomics so Submit's check is one
  /// relaxed load when no warmup ran.
  std::thread warmup_thread_;
  std::atomic<bool> warming_{false};
  std::atomic<bool> warm_admitting_{true};
  std::atomic<size_t> warm_target_{0};
  std::atomic<size_t> warm_ready_{0};
  std::atomic<size_t> warm_failed_{0};
  /// Dedicated wakeup for backoff sleeps: Shutdown notifies it so retrying
  /// dispatchers cut their sleeps short, and retry waits never consume a
  /// shard-cv notify meant to hand work to an idle dispatcher.
  std::mutex backoff_mu_;
  std::condition_variable shutdown_cv_;

  /// name:version → breaker; breakers are created on first submit and live
  /// for the server lifetime (an evicted model's breaker is just idle).
  mutable std::mutex breakers_mu_;
  std::map<std::string, std::unique_ptr<fault::CircuitBreaker>> breakers_;

  /// Per-batch jitter-stream discriminator for retry backoff.
  std::atomic<uint64_t> batch_seq_{0};

  /// Per-tenant token buckets (null when disabled).
  std::unique_ptr<TenantQuotaManager> quotas_;

  /// Per-model SLO burn tracking (null when disabled).
  std::unique_ptr<obs::SloTracker> slo_;

  // Stats tallies (guarded by stats_mu_ so Stats reads are consistent).
  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace serve
}  // namespace qdb

#endif  // QDB_SERVE_INFERENCE_SERVER_H_
