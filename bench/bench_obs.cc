// E19 — Observability overhead: what request-scoped tracing and dimensional
// metrics cost the serving hot path.
//
// Three layers, from microcosm to end to end:
//   * BM_LabeledMetricUpdate — the per-update cost of a labeled child,
//     resolved-once (the documented usage) vs re-looked-up per update, vs a
//     plain unlabeled counter. The resolved-pointer path must stay within
//     a few ns of the plain counter (one relaxed atomic add).
//   * BM_SpanRecording — QDB_TRACE_SCOPE cost with tracing disabled (one
//     relaxed load + branch) and enabled (two clock reads + a ring push),
//     with and without an ambient RequestContext.
//   * BM_ServingWithObservability — the E18 VQC serving workload with
//     tracing off vs on. Acceptance bar (gated in scripts/tier1.sh): the
//     traced req_per_s stays within 10% of the untraced baseline.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/labels.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/inference_server.h"
#include "serve/model_registry.h"
#include "serve/servable.h"
#include "variational/ansatz.h"

namespace qdb {
namespace obs {
namespace {

enum LabelMode { kPlainCounter = 0, kResolvedChild = 1, kLookupPerUpdate = 2 };

void BM_LabeledMetricUpdate(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  auto& registry = MetricsRegistry::Global();
  Counter* plain = registry.GetCounter("bench.obs.plain");
  CounterFamily* family =
      registry.GetCounterFamily("bench.obs.labeled", {"model", "outcome"});
  Counter* resolved = family->With("bench-model", "ok");
  for (auto _ : state) {
    switch (mode) {
      case kPlainCounter:
        plain->Increment();
        break;
      case kResolvedChild:
        resolved->Increment();
        break;
      case kLookupPerUpdate:
        family->With("bench-model", "ok")->Increment();
        break;
    }
  }
  state.SetLabel(mode == kPlainCounter     ? "plain_counter"
                 : mode == kResolvedChild  ? "resolved_child"
                                           : "lookup_per_update");
  state.counters["ns_per_update"] = benchmark::Counter(
      static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

BENCHMARK(BM_LabeledMetricUpdate)
    ->Arg(kPlainCounter)
    ->Arg(kResolvedChild)
    ->Arg(kLookupPerUpdate);

enum SpanMode { kTracingOff = 0, kTracingOn = 1, kTracingOnWithContext = 2 };

void BM_SpanRecording(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  TraceLog::Global().Clear();
  if (mode == kTracingOff) {
    DisableTracing();
  } else {
    EnableTracing();
  }
  RequestContext ctx;
  if (mode == kTracingOnWithContext) ctx = RequestContext::NewRoot();
  ContextGuard guard(ctx);
  for (auto _ : state) {
    QDB_TRACE_SCOPE("bench.obs.span", "bench");
    benchmark::ClobberMemory();
  }
  DisableTracing();
  TraceLog::Global().Clear();
  state.SetLabel(mode == kTracingOff ? "tracing_off"
                 : mode == kTracingOn ? "tracing_on"
                                      : "tracing_on_with_context");
  state.counters["ns_per_span"] = benchmark::Counter(
      static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

BENCHMARK(BM_SpanRecording)
    ->Arg(kTracingOff)
    ->Arg(kTracingOn)
    ->Arg(kTracingOnWithContext);

// ---- End to end: the E18 serving workload, observability off vs on ----------

constexpr int kQubits = 12;
constexpr int kClients = 8;
constexpr int kRequestsPerClient = 8;
constexpr int kTotalRequests = kClients * kRequestsPerClient;

serve::ModelArtifact SyntheticVqcArtifact() {
  Rng rng(31);
  serve::ModelArtifact a;
  a.type = serve::ModelType::kVqcClassifier;
  a.name = "bench-vqc";
  a.num_features = kQubits;
  a.encoding = VqcEncoding::kAngle;
  a.ansatz_layers = 2;
  a.entanglement = Entanglement::kLinear;
  a.feature_scale = 1.0;
  a.params.resize(RealAmplitudesParamCount(kQubits, a.ansatz_layers));
  for (auto& p : a.params) p = rng.Uniform(-0.5, 0.5);
  return a;
}

std::vector<DVector> MakeQueries(int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<DVector> queries(count, DVector(kQubits));
  for (auto& q : queries) {
    for (auto& v : q) v = rng.Uniform(0.0, M_PI);
  }
  return queries;
}

int RunClients(serve::InferenceServer& server, const std::string& model,
               const std::vector<DVector>& queries) {
  std::atomic<int> ok_count{0};
  std::vector<std::thread> clients;
  const int per_client = static_cast<int>(queries.size()) / kClients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::future<Result<serve::InferenceResponse>>> futures;
      for (int i = 0; i < per_client; ++i) {
        serve::InferenceRequest request;
        request.model = model;
        request.input = queries[c * per_client + i];
        futures.push_back(server.Submit(std::move(request)));
      }
      for (auto& f : futures) {
        if (f.get().ok()) ok_count.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  return ok_count.load();
}

enum ObsMode { kObservabilityOff = 0, kObservabilityOn = 1 };

void BM_ServingWithObservability(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  if (mode == kObservabilityOn) {
    TraceLog::Global().Clear();
    EnableTracing();
  } else {
    DisableTracing();
  }
  serve::ModelRegistry registry;
  if (!registry.Register(SyntheticVqcArtifact()).ok()) {
    state.SkipWithError("register failed");
    return;
  }
  serve::ServerOptions opts;
  opts.max_batch_size = 16;
  opts.max_wait_us = 100;
  opts.result_cache_capacity = 0;  // Measure the full execution path.
  serve::InferenceServer server(registry, opts);
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }
  std::vector<DVector> queries = MakeQueries(kTotalRequests, 43);
  for (auto _ : state) {
    if (RunClients(server, "bench-vqc", queries) != kTotalRequests) {
      state.SkipWithError("requests failed");
      DisableTracing();
      return;
    }
  }
  server.Shutdown();
  DisableTracing();
  TraceLog::Global().Clear();
  state.SetLabel(mode == kObservabilityOn ? "obs_on" : "obs_off");
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kTotalRequests),
      benchmark::Counter::kIsRate);
  state.counters["qubits"] = kQubits;
  state.counters["clients"] = kClients;
}

BENCHMARK(BM_ServingWithObservability)
    ->Arg(kObservabilityOff)
    ->Arg(kObservabilityOn)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace obs
}  // namespace qdb

BENCHMARK_MAIN();
