# Empty dependencies file for transactions_test.
# This may be replaced when dependencies are built.
