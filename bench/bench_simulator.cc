// E1 — Simulator scaling (foundation section).
//
// Regenerates the "cost of classical simulation" series: wall time and
// per-amplitude-gate throughput of the state-vector simulator on random
// dense circuits of depth 20, for n = 4…18 qubits. Expected shape: time
// grows as Θ(2^n) per gate (the exponential wall motivating quantum
// hardware), while ns/amplitude-op stays roughly flat.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "circuit/circuit.h"
#include "sim/compiled_circuit.h"
#include "sim/mps.h"
#include "sim/simd.h"
#include "sim/statevector_simulator.h"

namespace qdb {
namespace {

Circuit RandomDenseCircuit(int num_qubits, int depth, uint64_t seed) {
  Rng rng(seed);
  Circuit c(num_qubits);
  for (int layer = 0; layer < depth; ++layer) {
    for (int q = 0; q < num_qubits; ++q) {
      switch (rng.UniformInt(uint64_t{3})) {
        case 0: c.RX(q, rng.Uniform(-3.0, 3.0)); break;
        case 1: c.RY(q, rng.Uniform(-3.0, 3.0)); break;
        default: c.H(q); break;
      }
    }
    for (int q = layer % 2; q + 1 < num_qubits; q += 2) c.CX(q, q + 1);
  }
  return c;
}

void BM_StateVectorRandomCircuit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int depth = 20;
  Circuit c = RandomDenseCircuit(n, depth, 42);
  StateVectorSimulator sim;
  for (auto _ : state) {
    auto result = sim.Run(c);
    benchmark::DoNotOptimize(result);
  }
  const double amps = static_cast<double>(uint64_t{1} << n);
  const double amp_gate_ops = amps * static_cast<double>(c.size());
  state.counters["qubits"] = n;
  state.counters["gates"] = static_cast<double>(c.size());
  state.counters["ns_per_amp_gate"] = benchmark::Counter(
      amp_gate_ops, benchmark::Counter::kIsIterationInvariantRate |
                        benchmark::Counter::kInvert);
}

BENCHMARK(BM_StateVectorRandomCircuit)
    ->DenseRange(4, 18, 2)
    ->Unit(benchmark::kMillisecond);

// Compiled-vs-interpreted pair on the same random dense circuit: the
// interpreted variant forces per-gate dispatch; the compiled variant
// compiles once outside the timed loop and replays the fused program. The
// ratio of the two is the headline compilation speedup.
void BM_InterpretedRandomCircuit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Circuit c = RandomDenseCircuit(n, 20, 42);
  StateVectorSimulator sim;
  sim.set_execution_mode(ExecutionMode::kInterpreted);
  for (auto _ : state) {
    auto result = sim.Run(c);
    benchmark::DoNotOptimize(result);
  }
  state.counters["qubits"] = n;
  state.counters["gates"] = static_cast<double>(c.size());
}

BENCHMARK(BM_InterpretedRandomCircuit)
    ->DenseRange(4, 18, 2)
    ->Unit(benchmark::kMillisecond);

void BM_CompiledRandomCircuit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Circuit c = RandomDenseCircuit(n, 20, 42);
  const CompiledCircuit program = CompiledCircuit::Compile(c);
  for (auto _ : state) {
    StateVector psi(n);
    Status status = program.Execute(psi);
    benchmark::DoNotOptimize(status);
    benchmark::DoNotOptimize(psi);
  }
  state.counters["qubits"] = n;
  state.counters["gates"] = static_cast<double>(c.size());
  state.counters["compiled_ops"] = static_cast<double>(program.num_ops());
}

BENCHMARK(BM_CompiledRandomCircuit)
    ->DenseRange(4, 18, 2)
    ->Unit(benchmark::kMillisecond);

void BM_CircuitCompile(benchmark::State& state) {
  // The one-time cost the cache amortizes: lower + fuse, no execution.
  const int n = static_cast<int>(state.range(0));
  Circuit c = RandomDenseCircuit(n, 20, 42);
  for (auto _ : state) {
    CompiledCircuit program = CompiledCircuit::Compile(c);
    benchmark::DoNotOptimize(program);
  }
  state.counters["gates"] = static_cast<double>(c.size());
}

BENCHMARK(BM_CircuitCompile)->Arg(8)->Arg(16)->Unit(benchmark::kMicrosecond);

Circuit ShallowChainCircuit(int num_qubits, int depth, uint64_t seed) {
  // Brick-wall nearest-neighbor layers: entanglement grows with depth, not
  // width — the regime where MPS escapes the exponential wall.
  Rng rng(seed);
  Circuit c(num_qubits);
  for (int layer = 0; layer < depth; ++layer) {
    for (int q = 0; q < num_qubits; ++q) c.RY(q, rng.Uniform(-3.0, 3.0));
    for (int q = layer % 2; q + 1 < num_qubits; q += 2) {
      c.RZZ(q, q + 1, rng.Uniform(-1.0, 1.0));
    }
  }
  return c;
}

void BM_MpsChainCircuit(benchmark::State& state) {
  // The tensor-network contrast series: depth-6 nearest-neighbor circuits
  // at widths far beyond the state-vector simulator's reach; runtime grows
  // ~linearly in n at fixed depth instead of 2^n.
  const int n = static_cast<int>(state.range(0));
  Circuit c = ShallowChainCircuit(n, 6, 42);
  MpsSimulator sim({/*max_bond=*/32, 1e-12});
  double max_bond = 0.0, truncation = 0.0;
  for (auto _ : state) {
    auto result = sim.Run(c);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    max_bond = result.value().MaxBondDimension();
    truncation = result.value().truncation_weight();
  }
  state.counters["qubits"] = n;
  state.counters["max_bond"] = max_bond;
  state.counters["truncation_weight"] = truncation;
}

BENCHMARK(BM_MpsChainCircuit)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(96)
    ->Unit(benchmark::kMillisecond);

void BM_SingleQubitGateKernel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  StateVector psi(n);
  const Matrix h = GateMatrix(GateType::kH, {});
  for (auto _ : state) {
    psi.Apply1Q(0, h);
    benchmark::ClobberMemory();
  }
  state.counters["qubits"] = n;
  state.counters["amps_per_s"] = benchmark::Counter(
      static_cast<double>(uint64_t{1} << n),
      benchmark::Counter::kIsIterationInvariantRate);
}

BENCHMARK(BM_SingleQubitGateKernel)->DenseRange(10, 20, 2);

void BM_TwoQubitGateKernel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  StateVector psi(n);
  const Matrix rxx = GateMatrix(GateType::kRXX, {0.3});
  for (auto _ : state) {
    psi.Apply2Q(0, n - 1, rxx);
    benchmark::ClobberMemory();
  }
  state.counters["qubits"] = n;
  state.counters["amps_per_s"] = benchmark::Counter(
      static_cast<double>(uint64_t{1} << n),
      benchmark::Counter::kIsIterationInvariantRate);
}

BENCHMARK(BM_TwoQubitGateKernel)->DenseRange(10, 20, 2);

void BM_DiagonalGateKernel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  StateVector psi(n);
  for (auto _ : state) {
    psi.ApplyDiagonal1Q(0, Complex(1, 0), Complex(0, 1));
    benchmark::ClobberMemory();
  }
  state.counters["qubits"] = n;
  state.counters["amps_per_s"] = benchmark::Counter(
      static_cast<double>(uint64_t{1} << n),
      benchmark::Counter::kIsIterationInvariantRate);
}

BENCHMARK(BM_DiagonalGateKernel)->DenseRange(10, 20, 2);

void BM_ControlledGateKernel(benchmark::State& state) {
  // Control above target: the AVX2 per-run control test + vectorized pair
  // update path (the CX layout the brick circuits use).
  const int n = static_cast<int>(state.range(0));
  StateVector psi(n);
  for (auto _ : state) {
    psi.ApplyControlled1Q(0, 2, Complex(0, 0), Complex(1, 0), Complex(1, 0),
                          Complex(0, 0));
    benchmark::ClobberMemory();
  }
  state.counters["qubits"] = n;
  state.counters["amps_per_s"] = benchmark::Counter(
      static_cast<double>(uint64_t{1} << (n - 1)),
      benchmark::Counter::kIsIterationInvariantRate);
}

BENCHMARK(BM_ControlledGateKernel)->DenseRange(10, 20, 2);

void BM_GateKernelForcedScalar(benchmark::State& state) {
  // The same dense 1Q sweep as BM_SingleQubitGateKernel but pinned to the
  // scalar kernels; the ratio against it is the SIMD dispatch gain.
  const int n = static_cast<int>(state.range(0));
  if (!simd::SetActiveSimdLevel(simd::SimdLevel::kScalar)) {
    state.SkipWithError("cannot force scalar dispatch");
    return;
  }
  StateVector psi(n);
  const Matrix h = GateMatrix(GateType::kH, {});
  for (auto _ : state) {
    psi.Apply1Q(0, h);
    benchmark::ClobberMemory();
  }
  simd::ResetSimdLevel();
  state.counters["qubits"] = n;
  state.counters["amps_per_s"] = benchmark::Counter(
      static_cast<double>(uint64_t{1} << n),
      benchmark::Counter::kIsIterationInvariantRate);
}

BENCHMARK(BM_GateKernelForcedScalar)->DenseRange(10, 20, 2);

void BM_ProbabilityReduction(benchmark::State& state) {
  // ProbabilityOfOne = the masked norm² reduction (4-lane protocol).
  const int n = static_cast<int>(state.range(0));
  StateVector psi(n);
  const Matrix h = GateMatrix(GateType::kH, {});
  for (int q = 0; q < n; ++q) psi.Apply1Q(q, h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(psi.ProbabilityOfOne(1));
  }
  state.counters["qubits"] = n;
  state.counters["amps_per_s"] = benchmark::Counter(
      static_cast<double>(uint64_t{1} << n),
      benchmark::Counter::kIsIterationInvariantRate);
}

BENCHMARK(BM_ProbabilityReduction)->DenseRange(10, 20, 2);

void BM_MeasureQubit(benchmark::State& state) {
  // Fused collapse + kept-norm pass followed by the renormalizing divide.
  const int n = static_cast<int>(state.range(0));
  const Matrix h = GateMatrix(GateType::kH, {});
  Rng rng(17);
  for (auto _ : state) {
    state.PauseTiming();
    StateVector psi(n);
    for (int q = 0; q < n; ++q) psi.Apply1Q(q, h);
    state.ResumeTiming();
    benchmark::DoNotOptimize(psi.MeasureQubit(1, rng));
  }
  state.counters["qubits"] = n;
}

BENCHMARK(BM_MeasureQubit)->DenseRange(10, 18, 4)->Unit(benchmark::kMicrosecond);

void BM_SampleOnce(benchmark::State& state) {
  // CDF build + binary-search draw (was an O(2^n) scan per draw).
  const int n = static_cast<int>(state.range(0));
  StateVector psi(n);
  const Matrix h = GateMatrix(GateType::kH, {});
  for (int q = 0; q < n; ++q) psi.Apply1Q(q, h);
  Rng rng(23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(psi.SampleOnce(rng));
  }
  state.counters["qubits"] = n;
}

BENCHMARK(BM_SampleOnce)->DenseRange(10, 18, 4)->Unit(benchmark::kMicrosecond);

void BM_RunBatch(benchmark::State& state) {
  // Batched circuit execution across the shared ThreadPool (the Gram-matrix
  // and gradient fan-out path). Compare against batch_size sequential Run
  // calls; set QDB_THREADS to vary the pool width.
  const int n = 12;
  const int batch_size = static_cast<int>(state.range(0));
  std::vector<Circuit> circuits;
  circuits.reserve(batch_size);
  for (int k = 0; k < batch_size; ++k) {
    circuits.push_back(RandomDenseCircuit(n, 10, 100 + k));
  }
  StateVectorSimulator sim;
  for (auto _ : state) {
    auto result = sim.RunBatch(circuits);
    benchmark::DoNotOptimize(result);
  }
  state.counters["batch_size"] = batch_size;
  state.counters["circuits_per_s"] = benchmark::Counter(
      static_cast<double>(batch_size),
      benchmark::Counter::kIsIterationInvariantRate);
}

BENCHMARK(BM_RunBatch)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Unit(
    benchmark::kMillisecond);

void BM_PauliExpectation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  StateVector psi(n);
  const Matrix h = GateMatrix(GateType::kH, {});
  for (int q = 0; q < n; ++q) psi.Apply1Q(q, h);
  PauliString pauli(n);
  for (int q = 0; q < n; q += 2) pauli.set_op(q, PauliOp::kZ);
  for (int q = 1; q < n; q += 2) pauli.set_op(q, PauliOp::kX);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Expectation(psi, pauli));
  }
  state.counters["qubits"] = n;
}

BENCHMARK(BM_PauliExpectation)->DenseRange(10, 20, 2);

}  // namespace
}  // namespace qdb

BENCHMARK_MAIN();
