/// \file expectation.h
/// \brief E(θ) = ⟨ψ(θ)|H|ψ(θ)⟩ as a differentiable objective — the loss
/// plumbing shared by VQE, QAOA, and the variational classifier.

#ifndef QDB_AUTODIFF_EXPECTATION_H_
#define QDB_AUTODIFF_EXPECTATION_H_

#include <atomic>
#include <optional>
#include <vector>

#include "circuit/circuit.h"
#include "common/result.h"
#include "ops/pauli.h"
#include "sim/state_vector.h"
#include "sim/statevector_simulator.h"

namespace qdb {

/// \brief Evaluates (and differentiates, see parameter_shift.h) the
/// expectation of an observable after running a parameterized circuit.
///
/// The circuit starts from |0...0⟩ unless an initial state is set (e.g. an
/// amplitude-encoded data point). Evaluation counts are tracked so benches
/// can report circuit-execution budgets.
class ExpectationFunction {
 public:
  /// The observable width must match the circuit width.
  ExpectationFunction(Circuit circuit, PauliSum observable);

  // The atomic evaluation counter is not movable, so spell the moves out
  // (carrying the count over). Not thread-safe against concurrent use of
  // the moved-from object, like any move.
  ExpectationFunction(ExpectationFunction&& other) noexcept
      : circuit_(std::move(other.circuit_)),
        observable_(std::move(other.observable_)),
        initial_state_(std::move(other.initial_state_)),
        simulator_(std::move(other.simulator_)),
        evaluations_(other.evaluations_.load(std::memory_order_relaxed)) {}
  ExpectationFunction& operator=(ExpectationFunction&& other) noexcept {
    circuit_ = std::move(other.circuit_);
    observable_ = std::move(other.observable_);
    initial_state_ = std::move(other.initial_state_);
    simulator_ = std::move(other.simulator_);
    evaluations_.store(other.evaluations_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return *this;
  }

  /// Starts runs from `state` instead of |0...0⟩ (width must match).
  void set_initial_state(StateVector state);

  /// Execution-mode override for the underlying simulator: training loops
  /// and shift-rule batches re-execute one circuit structure, so compiled
  /// replay (the kAuto default) amortizes lowering across every evaluation.
  void set_execution_mode(ExecutionMode mode) {
    simulator_.set_execution_mode(mode);
  }

  const Circuit& circuit() const { return circuit_; }
  const PauliSum& observable() const { return observable_; }
  int num_parameters() const { return circuit_.num_parameters(); }

  /// E(θ). Fails if θ binds fewer parameters than the circuit references.
  Result<double> Evaluate(const DVector& params) const;

  /// E(θ) with one gate's angle expression additionally shifted: the
  /// `slot`-th angle of gate `gate_index` gets `delta` added to its offset.
  /// This is the primitive the parameter-shift rule is built on.
  Result<double> EvaluateWithShift(const DVector& params, size_t gate_index,
                                   size_t slot, double delta) const;

  /// One shifted evaluation of a batch: the `slot`-th angle of gate
  /// `gate_index` gets `delta` added to its offset.
  struct ShiftSpec {
    size_t gate_index = 0;
    size_t slot = 0;
    double delta = 0.0;
  };

  /// Evaluates every shifted circuit variant (all sharing `params`) as one
  /// StateVectorSimulator::RunBatch fan-out; entry i answers shifts[i].
  Result<DVector> EvaluateShiftBatch(const DVector& params,
                                     const std::vector<ShiftSpec>& shifts) const;

  /// Evaluates E(θ) for every parameter vector of the batch (one circuit,
  /// many θ) as one parallel fan-out; entry i answers params_list[i].
  Result<DVector> EvaluateBatch(const std::vector<DVector>& params_list) const;

  /// Total circuit executions performed through this object. Batched
  /// evaluations may update this from worker threads (the count is atomic).
  long evaluation_count() const {
    return evaluations_.load(std::memory_order_relaxed);
  }
  void reset_evaluation_count() {
    evaluations_.store(0, std::memory_order_relaxed);
  }

 private:
  Result<double> RunAndMeasure(const Circuit& circuit,
                               const DVector& params) const;

  /// The circuit with one angle offset shifted; Circuit exposes no mutable
  /// gate access by design, so the variant is reconstructed gate by gate.
  Result<Circuit> ShiftedCircuit(size_t gate_index, size_t slot,
                                 double delta) const;

  Circuit circuit_;
  PauliSum observable_;
  std::optional<StateVector> initial_state_;
  StateVectorSimulator simulator_;
  mutable std::atomic<long> evaluations_{0};
};

}  // namespace qdb

#endif  // QDB_AUTODIFF_EXPECTATION_H_
