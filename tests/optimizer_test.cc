// Tests for the classical optimizers on analytic objectives.

#include <gtest/gtest.h>

#include <cmath>

#include "optimize/adam.h"
#include "optimize/gradient_descent.h"
#include "optimize/nelder_mead.h"
#include "optimize/spsa.h"

namespace qdb {
namespace {

// f(x) = Σ (x_i − i)²: minimum 0 at x_i = i.
Result<double> Quadratic(const DVector& x) {
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - static_cast<double>(i);
    acc += d * d;
  }
  return acc;
}

Result<DVector> QuadraticGrad(const DVector& x) {
  DVector g(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    g[i] = 2.0 * (x[i] - static_cast<double>(i));
  }
  return g;
}

// Rosenbrock in 2D: hard for plain GD, good for Nelder-Mead/Adam.
Result<double> Rosenbrock(const DVector& x) {
  const double a = 1.0 - x[0];
  const double b = x[1] - x[0] * x[0];
  return a * a + 100.0 * b * b;
}

TEST(GradientDescentTest, MinimizesQuadratic) {
  GradientDescentOptions opts;
  opts.learning_rate = 0.1;
  opts.max_iterations = 500;
  auto result =
      MinimizeGradientDescent(Quadratic, QuadraticGrad, {5.0, -3.0, 8.0}, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().converged);
  EXPECT_NEAR(result.value().value, 0.0, 1e-8);
  EXPECT_NEAR(result.value().params[1], 1.0, 1e-4);
}

TEST(GradientDescentTest, MomentumAccelerates) {
  GradientDescentOptions plain;
  plain.learning_rate = 0.01;
  plain.max_iterations = 100;
  plain.gradient_tolerance = 1e-10;
  GradientDescentOptions momentum = plain;
  momentum.momentum = 0.9;
  auto slow = MinimizeGradientDescent(Quadratic, QuadraticGrad, {10.0}, plain);
  auto fast =
      MinimizeGradientDescent(Quadratic, QuadraticGrad, {10.0}, momentum);
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(fast.ok());
  EXPECT_LT(fast.value().value, slow.value().value);
}

TEST(GradientDescentTest, ValidatesOptions) {
  GradientDescentOptions bad_lr;
  bad_lr.learning_rate = 0.0;
  EXPECT_FALSE(
      MinimizeGradientDescent(Quadratic, QuadraticGrad, {1.0}, bad_lr).ok());
  GradientDescentOptions bad_momentum;
  bad_momentum.momentum = 1.0;
  EXPECT_FALSE(
      MinimizeGradientDescent(Quadratic, QuadraticGrad, {1.0}, bad_momentum)
          .ok());
}

TEST(GradientDescentTest, HistoryTracksDescent) {
  GradientDescentOptions opts;
  opts.learning_rate = 0.05;
  opts.max_iterations = 50;
  opts.gradient_tolerance = 0.0;
  auto result =
      MinimizeGradientDescent(Quadratic, QuadraticGrad, {4.0}, opts);
  ASSERT_TRUE(result.ok());
  const auto& h = result.value().history;
  ASSERT_GE(h.size(), 2u);
  EXPECT_LT(h.back(), h.front());
}

TEST(AdamTest, MinimizesQuadratic) {
  AdamOptions opts;
  opts.learning_rate = 0.2;
  opts.max_iterations = 400;
  auto result = MinimizeAdam(Quadratic, QuadraticGrad, {7.0, -2.0}, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().value, 0.0, 1e-6);
}

TEST(AdamTest, HandlesRosenbrockViaNumericGradient) {
  GradientFn grad = [](const DVector& x) -> Result<DVector> {
    DVector g(2);
    const double eps = 1e-7;
    for (int k = 0; k < 2; ++k) {
      DVector hi = x, lo = x;
      hi[k] += eps;
      lo[k] -= eps;
      g[k] = (Rosenbrock(hi).value() - Rosenbrock(lo).value()) / (2 * eps);
    }
    return g;
  };
  AdamOptions opts;
  opts.learning_rate = 0.05;
  opts.max_iterations = 3000;
  auto result = MinimizeAdam(Rosenbrock, grad, {-1.0, 1.0}, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().value, 1e-2);
}

TEST(AdamTest, ValidatesOptions) {
  AdamOptions bad;
  bad.beta1 = 1.0;
  EXPECT_FALSE(MinimizeAdam(Quadratic, QuadraticGrad, {1.0}, bad).ok());
}

TEST(NelderMeadTest, MinimizesQuadraticWithoutGradients) {
  NelderMeadOptions opts;
  opts.max_iterations = 2000;
  auto result = MinimizeNelderMead(Quadratic, {3.0, 3.0, 3.0}, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().value, 0.0, 1e-6);
}

TEST(NelderMeadTest, SolvesRosenbrock) {
  NelderMeadOptions opts;
  opts.max_iterations = 5000;
  auto result = MinimizeNelderMead(Rosenbrock, {-1.2, 1.0}, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().params[0], 1.0, 1e-3);
  EXPECT_NEAR(result.value().params[1], 1.0, 1e-3);
}

TEST(NelderMeadTest, RejectsEmptyInitial) {
  EXPECT_FALSE(MinimizeNelderMead(Quadratic, {}, {}).ok());
}

TEST(NelderMeadTest, ConvergedFlagOnFlatObjective) {
  Objective flat = [](const DVector&) -> Result<double> { return 1.0; };
  auto result = MinimizeNelderMead(flat, {0.0, 0.0}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().converged);
}

TEST(SpsaTest, MinimizesQuadraticApproximately) {
  SpsaOptions opts;
  opts.max_iterations = 800;
  opts.a = 0.4;
  auto result = MinimizeSpsa(Quadratic, {4.0, -4.0}, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().value, 0.05);
}

TEST(SpsaTest, RobustToNoisyObjective) {
  // SPSA's design point: stochastic objectives.
  Rng noise(99);
  Objective noisy = [&noise](const DVector& x) -> Result<double> {
    return Quadratic(x).value() + noise.Normal(0.0, 0.01);
  };
  SpsaOptions opts;
  opts.max_iterations = 600;
  auto result = MinimizeSpsa(noisy, {3.0}, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().value, 0.2);
}

TEST(SpsaTest, DeterministicBySeed) {
  SpsaOptions opts;
  opts.max_iterations = 50;
  auto a = MinimizeSpsa(Quadratic, {2.0, 2.0}, opts);
  auto b = MinimizeSpsa(Quadratic, {2.0, 2.0}, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().params, b.value().params);
}

TEST(SpsaTest, ValidatesGains) {
  SpsaOptions bad;
  bad.c = 0.0;
  EXPECT_FALSE(MinimizeSpsa(Quadratic, {1.0}, bad).ok());
}

TEST(OptimizerTest, ObjectiveErrorsPropagate) {
  Objective failing = [](const DVector&) -> Result<double> {
    return Status::Internal("boom");
  };
  GradientFn failing_grad = [](const DVector&) -> Result<DVector> {
    return Status::Internal("boom");
  };
  EXPECT_FALSE(
      MinimizeGradientDescent(failing, failing_grad, {1.0}, {}).ok());
  EXPECT_FALSE(MinimizeAdam(failing, failing_grad, {1.0}, {}).ok());
  EXPECT_FALSE(MinimizeNelderMead(failing, {1.0}, {}).ok());
  EXPECT_FALSE(MinimizeSpsa(failing, {1.0}, {}).ok());
}

}  // namespace
}  // namespace qdb
