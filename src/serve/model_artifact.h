/// \file model_artifact.h
/// \brief Trained-model artifacts for the serving layer: a self-contained,
/// serializable description of everything needed to rebuild a model's
/// inference path — VQC/VQR parameters plus their ansatz fingerprint,
/// fidelity-kernel SVMs with their support vectors, and QUBO solver
/// configurations.
///
/// Artifacts are plain data. Turning one into an executable model happens
/// in servable.h; registering, versioning, and persisting them happens in
/// model_registry.h. Two on-disk formats share one failure contract —
/// corrupted files fail kInvalidArgument and files written by a future
/// incompatible format fail kUnimplemented, never a silently wrong model:
/// the line-oriented text format here (format-version header, %.17g
/// doubles, trailing FNV-1a checksum) and the sectioned binary format in
/// store/binary_format.h. LoadFromFile sniffs the magic and reads either;
/// SaveToFile writes text, store::SaveArtifact picks the format.

#ifndef QDB_SERVE_MODEL_ARTIFACT_H_
#define QDB_SERVE_MODEL_ARTIFACT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "classical/svm.h"
#include "common/result.h"
#include "linalg/types.h"
#include "variational/ansatz.h"
#include "variational/vqc.h"
#include "variational/vqr.h"

namespace qdb {
namespace serve {

/// What kind of trained model an artifact describes.
enum class ModelType {
  kVqcClassifier,  ///< Variational classifier: sign⟨Z_0⟩ over ±1 labels.
  kVqrRegressor,   ///< Variational regressor: ⟨Z_0⟩ ∈ [−1, 1].
  kKernelSvm,      ///< Precomputed-kernel SVM over fidelity-kernel rows.
  kQuboConfig,     ///< Annealer/solver configuration (key-value pairs).
};

const char* ModelTypeName(ModelType type);

/// Feature-map family of a kernel-SVM artifact.
enum class KernelEncodingKind {
  kAngle,         ///< RY(scale·x_i) per qubit.
  kZZFeatureMap,  ///< IQP-style ZZ feature map.
};

/// One support vector of a kernel SVM: `coeff` = α_i·y_i, so the decision
/// value is Σ_i coeff_i·k(sv_i, x) + bias.
struct SupportVector {
  double coeff = 0.0;
  DVector features;
};

/// \brief A versioned, serializable trained-model artifact.
///
/// Only the fields relevant to `type` are meaningful; the rest keep their
/// defaults and are neither serialized nor compared.
struct ModelArtifact {
  ModelType type = ModelType::kVqcClassifier;
  std::string name;
  int version = 0;  ///< 0 = "assign the next version" at registration.
  int num_features = 0;

  // --- Variational models (kVqcClassifier / kVqrRegressor) -----------------
  VqcEncoding encoding = VqcEncoding::kAngle;  ///< VQC only.
  int ansatz_layers = 0;
  Entanglement entanglement = Entanglement::kLinear;  ///< VQC only.
  double feature_scale = 1.0;
  DVector params;
  /// FNV-1a hash of the StructuralFingerprint of the inference circuit the
  /// artifact's hyperparameters produce (with θ bound). Zero = unknown
  /// (filled in at registration); a nonzero mismatch at registration means
  /// the artifact was produced by an incompatible ansatz implementation and
  /// is rejected rather than served silently wrong.
  uint64_t circuit_fingerprint = 0;

  // --- Kernel SVM (kKernelSvm) ----------------------------------------------
  KernelEncodingKind kernel_encoding = KernelEncodingKind::kAngle;
  double kernel_scale = 1.0;  ///< Angle-encoding scale.
  int kernel_reps = 2;        ///< ZZ feature-map repetitions.
  double bias = 0.0;
  std::vector<SupportVector> support_vectors;

  // --- QUBO solver config (kQuboConfig) -------------------------------------
  /// Free-form ordered key-value pairs (solver name, sweeps, seeds, …).
  std::vector<std::pair<std::string, std::string>> config;

  /// Serializes to the on-disk text format (format version 1).
  std::string Serialize() const;
  /// Parses the text format; corrupted input (bad magic, unknown keys,
  /// truncation, checksum mismatch) and unsupported format versions return
  /// a non-OK Status.
  static Result<ModelArtifact> Deserialize(const std::string& text);

  Status SaveToFile(const std::string& path) const;
  static Result<ModelArtifact> LoadFromFile(const std::string& path);
};

/// Builds a serving artifact from a trained classifier. The artifact's
/// circuit_fingerprint is stamped from the model's inference circuit.
ModelArtifact MakeVqcArtifact(const VqcClassifier& model, std::string name);

/// Builds a serving artifact from a trained regressor.
ModelArtifact MakeVqrArtifact(const VqrRegressor& model, std::string name);

/// Builds a kernel-SVM artifact from a precomputed-kernel Svm trained on
/// `train` (the Gram matrix rows the SVM saw must correspond to `train`'s
/// ordering). Only support vectors (α_i > 0) are retained.
ModelArtifact MakeKernelSvmArtifact(const Svm& svm, const Dataset& train,
                                    KernelEncodingKind encoding,
                                    double kernel_scale, int kernel_reps,
                                    std::string name);

/// Builds a QUBO solver-config artifact from ordered key-value pairs.
ModelArtifact MakeQuboConfigArtifact(
    std::vector<std::pair<std::string, std::string>> config, std::string name);

/// FNV-1a over a byte string (exposed for fingerprint tests).
uint64_t Fnv1a64(const std::string& bytes);

}  // namespace serve
}  // namespace qdb

#endif  // QDB_SERVE_MODEL_ARTIFACT_H_
