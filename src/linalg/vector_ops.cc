#include "linalg/vector_ops.h"

#include <cmath>

#include "common/check.h"

namespace qdb {

Complex InnerProduct(const CVector& a, const CVector& b) {
  QDB_CHECK_EQ(a.size(), b.size());
  Complex acc(0.0, 0.0);
  for (size_t i = 0; i < a.size(); ++i) acc += std::conj(a[i]) * b[i];
  return acc;
}

double Norm(const CVector& v) {
  double acc = 0.0;
  for (const auto& x : v) acc += std::norm(x);
  return std::sqrt(acc);
}

double Norm(const DVector& v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

void Normalize(CVector& v) {
  double n = Norm(v);
  if (n == 0.0) return;
  for (auto& x : v) x /= n;
}

CVector Kron(const CVector& a, const CVector& b) {
  CVector out(a.size() * b.size());
  size_t idx = 0;
  for (const auto& x : a)
    for (const auto& y : b) out[idx++] = x * y;
  return out;
}

double Fidelity(const CVector& a, const CVector& b) {
  return std::norm(InnerProduct(a, b));
}

double Dot(const DVector& a, const DVector& b) {
  QDB_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

DVector Add(const DVector& a, const DVector& b) {
  QDB_CHECK_EQ(a.size(), b.size());
  DVector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

DVector Sub(const DVector& a, const DVector& b) {
  QDB_CHECK_EQ(a.size(), b.size());
  DVector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

DVector Scale(double s, const DVector& v) {
  DVector out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = s * v[i];
  return out;
}

double MaxAbsDiff(const DVector& a, const DVector& b) {
  QDB_CHECK_EQ(a.size(), b.size());
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

}  // namespace qdb
