#include "variational/vqr.h"

#include <cmath>

#include "autodiff/adjoint.h"
#include "autodiff/expectation.h"
#include "autodiff/parameter_shift.h"
#include "common/rng.h"
#include "common/strings.h"
#include "obs/trace.h"
#include "variational/ansatz.h"

namespace qdb {

Result<VqrRegressor> VqrRegressor::Train(const std::vector<DVector>& features,
                                         const DVector& targets,
                                         const VqrOptions& options) {
  if (features.size() < 2) {
    return Status::InvalidArgument("VQR needs at least two training samples");
  }
  if (targets.size() != features.size()) {
    return Status::InvalidArgument("feature/target count mismatch");
  }
  for (double y : targets) {
    if (y < -1.0 - 1e-9 || y > 1.0 + 1e-9) {
      return Status::InvalidArgument(
          StrCat("targets must lie in [-1, 1], got ", y));
    }
  }
  if (options.ansatz_layers < 1) {
    return Status::InvalidArgument("ansatz_layers must be >= 1");
  }
  const int d = static_cast<int>(features.front().size());
  for (const auto& x : features) {
    if (static_cast<int>(x.size()) != d) {
      return Status::InvalidArgument("inconsistent feature dimensions");
    }
  }

  QDB_TRACE_SCOPE("VqrRegressor::Train", "train");
  VqrRegressor model;
  model.options_ = options;
  model.num_features_ = d;

  const PauliSum observable =
      PauliSum(d).Add(1.0, PauliString::Single(d, 0, PauliOp::kZ));
  std::vector<ExpectationFunction> sample_fns;
  sample_fns.reserve(features.size());
  for (const auto& x : features) {
    sample_fns.emplace_back(
        DataReuploadingCircuit(x, options.ansatz_layers,
                               options.feature_scale),
        observable);
  }
  const int num_params = sample_fns.front().num_parameters();

  const double inv_n = 1.0 / static_cast<double>(features.size());
  Objective loss = [&](const DVector& theta) -> Result<double> {
    double acc = 0.0;
    for (size_t i = 0; i < sample_fns.size(); ++i) {
      QDB_ASSIGN_OR_RETURN(double value, sample_fns[i].Evaluate(theta));
      const double diff = value - targets[i];
      acc += diff * diff;
    }
    return acc * inv_n;
  };
  GradientFn grad = [&](const DVector& theta) -> Result<DVector> {
    DVector total(theta.size(), 0.0);
    for (size_t i = 0; i < sample_fns.size(); ++i) {
      double value = 0.0;
      DVector g;
      if (options.gradient == GradientMethod::kAdjoint) {
        QDB_ASSIGN_OR_RETURN(
            AdjointResult r,
            AdjointGradient(sample_fns[i].circuit(), observable, theta));
        value = r.value;
        g = std::move(r.gradient);
      } else {
        QDB_ASSIGN_OR_RETURN(value, sample_fns[i].Evaluate(theta));
        QDB_ASSIGN_OR_RETURN(g, ParameterShiftGradient(sample_fns[i], theta));
      }
      const double coeff = 2.0 * (value - targets[i]) * inv_n;
      for (size_t k = 0; k < total.size(); ++k) total[k] += coeff * g[k];
    }
    return total;
  };

  Rng rng(options.seed);
  DVector initial =
      rng.UniformVector(num_params, -options.init_scale, options.init_scale);
  QDB_ASSIGN_OR_RETURN(OptimizeResult opt,
                       MinimizeAdam(loss, grad, initial, options.adam));

  model.params_ = std::move(opt.params);
  model.loss_history_ = std::move(opt.history);
  model.gradient_norm_history_ = std::move(opt.gradient_norm_history);
  for (const auto& fn : sample_fns) {
    model.circuit_evaluations_ += fn.evaluation_count();
  }
  return model;
}

Result<double> VqrRegressor::Predict(const DVector& x) const {
  if (static_cast<int>(x.size()) != num_features_) {
    return Status::InvalidArgument("feature dimension mismatch");
  }
  const PauliSum observable =
      PauliSum(num_features_)
          .Add(1.0, PauliString::Single(num_features_, 0, PauliOp::kZ));
  ExpectationFunction fn(
      DataReuploadingCircuit(x, options_.ansatz_layers,
                             options_.feature_scale),
      observable);
  return fn.Evaluate(params_);
}

}  // namespace qdb
