/// \file join_order_qubo.h
/// \brief QUBO encoding of left-deep join ordering — the quantum-annealing
/// formulation (after Schönberger/Trummer-style encodings) evaluated in E7.
///
/// Variables x_{r,p} ∈ {0,1} place relation r at position p of a left-deep
/// order (n² variables). Validity is enforced by one-hot penalties per row
/// and per column. The C_out objective is not quadratic, so the encoding
/// minimizes the standard quadratic surrogate Σ_p log₂ card(prefix_p):
/// with y_{r,p} = Σ_{q≤p} x_{r,q} ("r placed by position p"), each prefix
/// log-cardinality is Σ_r log₂(card_r)·y_{r,p} + Σ_{(r,r')} log₂(sel)·y·y' —
/// linear + quadratic in x. Decoding repairs invalid assignments greedily
/// and reports the true C_out of the decoded permutation.

#ifndef QDB_DB_JOIN_ORDER_QUBO_H_
#define QDB_DB_JOIN_ORDER_QUBO_H_

#include <vector>

#include "common/result.h"
#include "db/query_graph.h"
#include "ops/qubo.h"

namespace qdb {

/// \brief Encoding options.
struct JoinOrderQuboOptions {
  /// One-hot penalty weight; ≤ 0 selects an automatic weight larger than
  /// the objective's dynamic range.
  double penalty_weight = -1.0;
};

/// \brief Builds and decodes the join-order QUBO for one query graph.
class JoinOrderQubo {
 public:
  static Result<JoinOrderQubo> Create(const JoinQueryGraph& graph,
                                      const JoinOrderQuboOptions& options = {});

  /// The QUBO over n² variables.
  const Qubo& qubo() const { return qubo_; }

  int num_relations() const { return num_relations_; }

  /// Variable index of x_{relation, position}.
  int VarIndex(int relation, int position) const;

  /// Decodes a bit assignment into a permutation. Valid one-hot rows and
  /// columns are honored; conflicts and gaps are repaired greedily (first
  /// unassigned relation into first free slot), so the result is always a
  /// valid left-deep order.
  std::vector<int> Decode(const std::vector<uint8_t>& bits) const;

  /// True when `bits` is a perfectly valid permutation matrix.
  bool IsValid(const std::vector<uint8_t>& bits) const;

  /// The penalty weight actually used.
  double penalty_weight() const { return penalty_; }

 private:
  JoinOrderQubo(int n, double penalty, Qubo qubo)
      : num_relations_(n), penalty_(penalty), qubo_(std::move(qubo)) {}

  int num_relations_;
  double penalty_;
  Qubo qubo_;
};

}  // namespace qdb

#endif  // QDB_DB_JOIN_ORDER_QUBO_H_
