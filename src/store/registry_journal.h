/// \file registry_journal.h
/// \brief Append-only, per-record-checksummed journal of model-registry
/// control-plane events, with snapshot compaction — the durability layer
/// that lets a ModelRegistry warm-restart after a crash.
///
/// Artifact *payloads* already survive power loss (binary_format.h writes
/// them crash-safely), but the registry that knows they exist — names,
/// versions, pins, residency — used to die with the process. The journal
/// records every durable control-plane transition write-ahead:
///
///   register       a (name, version) exists (not yet durable on its own)
///   promote        the version became file-backed: artifact path + the
///                  identity stored inside the file (this is the durability
///                  point — an entry never promoted cannot be rebuilt)
///   evict-to-disk  the budget paged the version out (a residency hint:
///                  recovery skips prefetching models that were already cold)
///   pin / unpin    residency-by-fiat toggles
///   remove         the version (or every version of the name) was evicted
///
/// On-disk layout in the journal directory (all integers little-endian):
///
///   journal.log       [ 0.. 8) magic "QDBJRNL1"
///                     [ 8..12) u32 format_version (1)
///                     [12..16) u32 reserved (0)
///                     then records, each:
///                       u32 payload_size
///                       u64 payload FNV-1a checksum
///                       payload: u32 event, u64 sequence, i32 version,
///                                u32 model_type, i32 num_features,
///                                i32 file_version, then name /
///                                artifact_path / file_name as
///                                u32-length-prefixed strings
///   manifest.snapshot "QDBMANI1" header, u64 last_sequence, the
///                     materialized entries, and a trailing whole-file
///                     FNV-1a checksum; written via AtomicWriteFile, so it
///                     is only ever absent or complete.
///
/// Replay is torn-tail-tolerant: records are applied in order until the
/// first short, oversized, or checksum-failing record, at which point the
/// tail is *truncated* — a crash mid-append loses at most the unacknowledged
/// record being written, never a prefix, and never resurrects damaged
/// bytes. Records whose sequence is <= the snapshot's last_sequence are
/// skipped as stale, which makes compaction crash-safe at every step: the
/// snapshot rename and the journal reset are separately atomic, and dying
/// between them just means the next replay skips the whole old journal.
///
/// Fault points: "store.journal.append" (scoped by model name; torn_write
/// persists a record prefix and poisons the journal like a crashed writer,
/// kill persists a prefix then SIGKILLs), "store.journal.replay" (scoped by
/// the directory; torn_write models a lost tail), and
/// "store.journal.compact" (the window between snapshot and journal reset).
/// Compaction's two file writes additionally run through "artifact.save"
/// with scopes "journal.snapshot" and "journal.reset".

#ifndef QDB_STORE_REGISTRY_JOURNAL_H_
#define QDB_STORE_REGISTRY_JOURNAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace qdb {
namespace store {

/// Control-plane transitions the journal records. Values are the on-disk
/// encoding — append-only, never renumber.
enum class JournalEvent : uint32_t {
  kRegister = 1,
  kPromote = 2,
  kEvictToDisk = 3,
  kPin = 4,
  kUnpin = 5,
  kRemove = 6,
};

const char* JournalEventName(JournalEvent event);

/// \brief One journal record. Callers fill everything but `sequence`,
/// which Append assigns monotonically.
struct JournalRecord {
  JournalEvent event = JournalEvent::kRegister;
  uint64_t sequence = 0;
  std::string name;
  /// For kRemove, version < 0 removes every version of `name`.
  int version = 0;
  /// serve::ModelType as its underlying value — the journal stays below the
  /// serve layer and never interprets it.
  uint32_t model_type = 0;
  int num_features = 0;
  std::string artifact_path;  ///< kPromote: where the artifact lives.
  std::string file_name;      ///< kPromote: identity stored in the file.
  int file_version = 0;       ///< kPromote: version stored in the file.
};

/// \brief The materialized state of one (name, version) after replay.
struct ManifestEntry {
  std::string name;
  int version = 0;
  uint32_t model_type = 0;
  int num_features = 0;
  /// Empty = registered but never promoted: there is no durable artifact to
  /// rebuild this entry from, and recovery must drop it (never serve a
  /// phantom).
  std::string artifact_path;
  std::string file_name;
  int file_version = 0;
  bool pinned = false;
  /// False once the budget paged the version out (and no later event made
  /// it resident again) — recovery's prefetch hint.
  bool hot = true;
};

/// \brief What Open's replay found and did.
struct JournalRecoveryStats {
  uint64_t snapshot_sequence = 0;  ///< 0 = no snapshot existed.
  long snapshot_entries = 0;
  long replayed_records = 0;  ///< Journal records applied (seq > snapshot).
  long stale_records = 0;     ///< Skipped: already folded into the snapshot.
  bool tail_truncated = false;
  size_t truncated_bytes = 0;  ///< Damaged tail bytes discarded.
};

struct JournalOptions {
  /// Append auto-compacts after this many records since the last snapshot;
  /// <= 0 compacts only on explicit Compact() calls.
  long compact_every = 1024;
  /// fsync the journal fd after every append. Control-plane rates are low;
  /// the fsync is what makes an acknowledged append survive power loss, not
  /// just process death (the page cache already survives SIGKILL).
  bool fsync_each_append = true;
};

/// \brief The journal itself. Thread-safe; one writer lock serializes
/// appends and compactions.
class RegistryJournal {
 public:
  /// Opens (creating if needed) the journal in `dir`: loads the snapshot if
  /// one exists, replays the journal's valid prefix, truncates any torn
  /// tail, and leaves the file open for appends. A corrupt *snapshot* fails
  /// with kInvalidArgument (it was written atomically, so damage is real
  /// corruption, not a crash artifact); a corrupt journal tail is expected
  /// crash debris and recovers silently.
  static Result<std::unique_ptr<RegistryJournal>> Open(
      const std::string& dir, const JournalOptions& options = {});

  ~RegistryJournal();

  RegistryJournal(const RegistryJournal&) = delete;
  RegistryJournal& operator=(const RegistryJournal&) = delete;

  /// Appends one record (assigning its sequence), fsyncs, and applies it to
  /// the in-memory manifest. Write-ahead contract: callers apply the
  /// mutation to their own state only after Append returns OK. A failed
  /// append burns a sequence number, which replay tolerates (sequences must
  /// be monotone, not dense). After an injected torn append the journal is
  /// poisoned — every later Append fails with kFailedPrecondition, exactly
  /// as if the process had died mid-write — and only a fresh Open recovers.
  Status Append(JournalRecord record);

  /// Folds the manifest into manifest.snapshot (atomic rename), then resets
  /// journal.log to an empty header (also an atomic rename). Crash-safe at
  /// every step; see the file comment. Auto-invoked by Append every
  /// options.compact_every records.
  Status Compact();

  /// The materialized state, sorted by (name, version).
  std::vector<ManifestEntry> Manifest() const;

  const JournalRecoveryStats& recovery_stats() const { return recovery_; }

  struct Stats {
    long appends = 0;      ///< Successful appends since Open.
    long compactions = 0;  ///< Successful compactions since Open.
    long records_since_compact = 0;
    uint64_t next_sequence = 1;
    bool poisoned = false;  ///< Torn append left the file mid-record.
  };
  Stats stats() const;

  const std::string& journal_path() const { return journal_path_; }
  const std::string& snapshot_path() const { return snapshot_path_; }

 private:
  RegistryJournal(std::string dir, const JournalOptions& options);

  /// Replays snapshot + journal into the manifest; called once by Open.
  Status Recover();
  Status CompactLocked();
  /// Applies one record to the materialized manifest map.
  void ApplyLocked(const JournalRecord& record);
  /// Serializes the manifest + last_sequence into snapshot bytes.
  std::string SerializeManifestLocked() const;

  const std::string dir_;
  const JournalOptions options_;
  const std::string journal_path_;
  const std::string snapshot_path_;

  mutable std::mutex mu_;
  int fd_ = -1;
  uint64_t next_sequence_ = 1;
  long records_since_compact_ = 0;
  long appends_ = 0;
  long compactions_ = 0;
  bool poisoned_ = false;
  std::map<std::pair<std::string, int>, ManifestEntry> manifest_;
  JournalRecoveryStats recovery_;
};

}  // namespace store
}  // namespace qdb

#endif  // QDB_STORE_REGISTRY_JOURNAL_H_
