/// \file swap_test.h
/// \brief The swap test: estimating |⟨ψ|φ⟩|² with one ancilla — the
/// hardware-realizable primitive behind fidelity kernels and quantum
/// distance subroutines.

#ifndef QDB_ALGO_SWAP_TEST_H_
#define QDB_ALGO_SWAP_TEST_H_

#include "circuit/circuit.h"
#include "common/result.h"
#include "common/rng.h"
#include "sim/state_vector.h"

namespace qdb {

/// \brief The swap-test circuit on 1 + 2n qubits: ancilla q0, register A =
/// q1..qn, register B = q_{n+1}..q_{2n}; H, CSWAPs, H. P(ancilla = 0) =
/// (1 + |⟨ψ_A|ψ_B⟩|²) / 2.
Circuit SwapTestCircuit(int register_qubits);

/// \brief Exact overlap |⟨ψ|φ⟩|² read from the swap-test circuit's ancilla
/// statistics (states must share a width).
Result<double> SwapTestOverlap(const StateVector& psi, const StateVector& phi);

/// \brief Shot-based estimate: runs the swap test `shots` times and inverts
/// the ancilla statistic; the estimate clamps to [0, 1].
Result<double> SwapTestOverlapSampled(const StateVector& psi,
                                      const StateVector& phi, int shots,
                                      Rng& rng);

}  // namespace qdb

#endif  // QDB_ALGO_SWAP_TEST_H_
