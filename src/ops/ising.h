/// \file ising.h
/// \brief Ising spin-glass model: fields h, couplings J, over s ∈ {−1,+1}^n.
///
/// E(s) = Σ_i h_i s_i + Σ_{i<j} J_ij s_i s_j + c. This is the native input
/// of the (simulated) quantum annealer and, via ToPauliSum(), the cost
/// Hamiltonian of QAOA.

#ifndef QDB_OPS_ISING_H_
#define QDB_OPS_ISING_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "linalg/types.h"
#include "ops/pauli.h"

namespace qdb {

class Qubo;

/// \brief An Ising instance with dense fields and sparse couplings.
class IsingModel {
 public:
  explicit IsingModel(int num_spins);

  int num_spins() const { return static_cast<int>(fields_.size()); }

  /// Adds `value` to the field h_i.
  void AddField(int i, double value);

  /// Adds `value` to the coupling J_ij (i ≠ j, stored with i < j).
  void AddCoupling(int i, int j, double value);

  /// Adds `value` to the constant offset.
  void AddOffset(double value);

  double field(int i) const;
  double offset() const { return offset_; }
  const std::map<std::pair<int, int>, double>& couplings() const {
    return couplings_;
  }

  /// Energy of a spin configuration (entries ±1).
  double Energy(const std::vector<int8_t>& spins) const;

  /// Energy change from flipping spin i: E(s') − E(s) = −2 s_i (h_i + Σ_j J_ij s_j).
  double FlipDelta(const std::vector<int8_t>& spins, int i) const;

  /// Neighbors of spin i with coupling strengths.
  const std::vector<std::pair<int, double>>& Neighbors(int i) const;

  /// Equivalent QUBO under s_i = 2 x_i − 1.
  Qubo ToQubo() const;

  /// Cost Hamiltonian Σ h_i Z_i + Σ J_ij Z_i Z_j + c·I as a PauliSum
  /// (spin +1 ↔ |0⟩ since Z|0⟩ = +|0⟩).
  PauliSum ToPauliSum() const;

  /// Largest |h| or |J| coefficient (used to scale annealing schedules).
  double MaxAbsCoefficient() const;

  std::string ToString() const;

 private:
  DVector fields_;
  std::map<std::pair<int, int>, double> couplings_;
  double offset_ = 0.0;
  std::vector<std::vector<std::pair<int, double>>> adjacency_;
};

/// Measurement map: converts a basis index (qubit 0 = MSB) to spins with
/// bit 0 ↔ s = +1 (the Z eigenvalue of |0⟩). Used when reading QAOA samples.
std::vector<int8_t> IndexToSpins(uint64_t index, int num_spins);

/// Algebraic map x = (1 + s) / 2 (s = +1 → x = 1), the inverse of the
/// substitution used by Qubo::ToIsing / IsingModel::ToQubo. Note this is a
/// *different* convention from IndexToSpins' measurement map.
std::vector<uint8_t> SpinsToBits(const std::vector<int8_t>& spins);

/// Algebraic map s = 2x − 1 (x = 1 → s = +1).
std::vector<int8_t> BitsToSpins(const std::vector<uint8_t>& bits);

}  // namespace qdb

#endif  // QDB_OPS_ISING_H_
