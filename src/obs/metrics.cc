#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "common/strings.h"

namespace qdb {
namespace obs {

namespace {

/// Escapes a metric name for embedding in a JSON string literal.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Formats a double as a JSON number (non-finite values become null, which
/// strict parsers reject as bare tokens otherwise).
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  return StrFormat("%.17g", v);
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  QDB_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    QDB_CHECK(bounds_[i - 1] < bounds_[i]) << "bounds must be increasing";
  }
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> requires C++20 library support; use a CAS
  // loop so the sum stays exact under concurrent observers everywhere.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

long Histogram::CountInBucket(size_t i) const {
  QDB_CHECK(i < counts_.size());
  return counts_[i].load(std::memory_order_relaxed);
}

double Histogram::ApproxQuantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  // Snapshot the counts once; concurrent Observe calls between loads can
  // only perturb the estimate by the in-flight samples.
  std::vector<long> counts(counts_.size());
  long total = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts[i]);
    if (next >= rank && counts[i] > 0) {
      if (i == bounds_.size()) return bounds_.back();  // Overflow bucket.
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac = (rank - cumulative) / static_cast<double>(counts[i]);
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return bounds_.back();
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

std::vector<double> MetricsRegistry::DefaultBounds() {
  return {1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6};
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

std::string MetricsRegistry::ExportText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += StrCat(name, " ", c->Value(), "\n");
  }
  for (const auto& [name, g] : gauges_) {
    out += StrCat(name, " ", g->Value(), "\n");
  }
  for (const auto& [name, h] : histograms_) {
    for (size_t i = 0; i < h->bounds().size(); ++i) {
      out += StrCat(name, "{le=\"", h->bounds()[i], "\"} ",
                    h->CountInBucket(i), "\n");
    }
    out += StrCat(name, "{le=\"+Inf\"} ",
                  h->CountInBucket(h->bounds().size()), "\n");
    out += StrCat(name, "_sum ", h->Sum(), "\n");
    out += StrCat(name, "_count ", h->TotalCount(), "\n");
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += StrCat("\"", JsonEscape(name), "\":", c->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += StrCat("\"", JsonEscape(name), "\":", JsonNumber(g->Value()));
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += StrCat("\"", JsonEscape(name), "\":{\"bounds\":[");
    for (size_t i = 0; i < h->bounds().size(); ++i) {
      if (i) out += ",";
      out += JsonNumber(h->bounds()[i]);
    }
    out += "],\"counts\":[";
    for (size_t i = 0; i <= h->bounds().size(); ++i) {
      if (i) out += ",";
      out += StrCat(h->CountInBucket(i));
    }
    out += StrCat("],\"sum\":", JsonNumber(h->Sum()),
                  ",\"count\":", h->TotalCount(), "}");
  }
  out += "}}";
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace obs
}  // namespace qdb
