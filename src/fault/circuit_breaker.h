/// \file circuit_breaker.h
/// \brief Per-dependency circuit breaker: closed → open on error-rate (or
/// slow-call-rate) over a sliding outcome window → timed half-open probes →
/// closed again after enough probe successes.
///
/// The serving dispatcher keeps one breaker per servable, so a poisoned
/// model version sheds fast with kUnavailable at admission instead of
/// clogging the request queue with work that will fail anyway. In the
/// serving admission ladder the breaker sits *after* tenant quotas
/// (serve/tenant_quota.h): a quota-shed request never reaches Allow(), so
/// an over-budget tenant can neither trip a model's breaker nor consume
/// its half-open probe slots. State transitions emit fault.breaker.*
/// metrics, a per-breaker state gauge (fault.breaker.state.<name>:
/// 0 closed, 1 open, 2 half-open), an open-duration histogram, and trace
/// spans.

#ifndef QDB_FAULT_CIRCUIT_BREAKER_H_
#define QDB_FAULT_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace qdb {
namespace obs {
class Gauge;
}  // namespace obs

namespace fault {

enum class BreakerState {
  kClosed,    ///< Healthy: everything passes, outcomes fill the window.
  kOpen,      ///< Shedding: Allow() fails until the cooldown elapses.
  kHalfOpen,  ///< Probing: a trickle of requests tests recovery.
};

const char* BreakerStateName(BreakerState state);

struct CircuitBreakerOptions {
  /// Sliding window of most-recent outcomes the failure rate is computed
  /// over.
  size_t window = 32;
  /// Outcomes required in the window before the breaker may open (avoids
  /// tripping on the first failure of a cold dependency).
  size_t min_samples = 8;
  /// Open when failures / outcomes >= this.
  double failure_threshold = 0.5;
  /// When > 0, a success slower than this counts as a failure in the
  /// window (latency-based tripping); the call still succeeds externally.
  long latency_threshold_us = 0;
  /// How long the breaker stays open before probing.
  long open_duration_us = 100000;
  /// Minimum spacing between half-open probes: lost or cancelled probes
  /// never wedge the breaker, another probe follows after the interval.
  long probe_interval_us = 10000;
  /// Consecutive probe successes required to close.
  int half_open_probes = 1;
};

/// \brief Thread-safe breaker state machine. Allow() is one mutex-guarded
/// check — admission-path cost, not simulator-path cost.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(std::string name,
                          const CircuitBreakerOptions& options = {});

  /// True when the request may proceed (and, in half-open, claims a probe
  /// slot); false means shed now with kUnavailable.
  bool Allow();

  /// Reports one completed call. latency_us participates in latency-based
  /// tripping when the option is set.
  void RecordSuccess(long latency_us = 0);
  void RecordFailure();

  BreakerState state() const;
  const std::string& name() const { return name_; }

  struct Stats {
    long allowed = 0;
    long shed = 0;
    long opened = 0;
    long closed = 0;
  };
  Stats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  // All transition helpers run with mu_ held.
  void OpenLocked(Clock::time_point now);
  void CloseLocked(Clock::time_point now);
  void HalfOpenLocked(Clock::time_point now);
  void PushOutcomeLocked(bool failure);
  void ResetWindowLocked();

  const std::string name_;
  const CircuitBreakerOptions options_;
  obs::Gauge* state_gauge_;

  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  /// Ring of recent outcomes (true = failure) and its failure count.
  std::vector<uint8_t> window_;
  size_t window_pos_ = 0;
  size_t window_count_ = 0;
  size_t window_failures_ = 0;
  Clock::time_point opened_at_{};
  Clock::time_point next_probe_at_{};
  int probe_successes_ = 0;
  Stats stats_;
};

}  // namespace fault
}  // namespace qdb

#endif  // QDB_FAULT_CIRCUIT_BREAKER_H_
