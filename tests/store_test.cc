// Tests for the qdb::store storage tier: the binary artifact format
// (round trips, bit-parity with the text format, byte-flip fuzzing,
// truncation), the text reader's single-pass checksum (every-offset
// truncation regression), the memory-budget eviction policy, the sliced
// registry's paged-out/reload-on-demand path, and the async loader's
// double-buffered promotion — including a chaos profile over store.read
// (StoreChaosTest, driven by scripts/chaos.sh via QDB_FAULTS).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "fault/fault_injector.h"
#include "serve/model_artifact.h"
#include "serve/model_registry.h"
#include "serve/servable.h"
#include "store/async_loader.h"
#include "store/binary_format.h"
#include "store/memory_budget.h"
#include "variational/ansatz.h"

namespace qdb {
namespace store {
namespace {

using serve::KernelEncodingKind;
using serve::ModelArtifact;
using serve::ModelRegistry;
using serve::ModelType;
using serve::RegistryOptions;
using serve::ServableModel;
using serve::StoreStatus;

std::string TempPath(const std::string& file) {
  return testing::TempDir() + "/" + file;
}

ModelArtifact TinyVqcArtifact(const std::string& name, int version = 0) {
  ModelArtifact a;
  a.type = ModelType::kVqcClassifier;
  a.name = name;
  a.version = version;
  a.num_features = 2;
  a.encoding = VqcEncoding::kAngle;
  a.ansatz_layers = 1;
  a.entanglement = Entanglement::kLinear;
  a.feature_scale = 0.8;
  const int count = RealAmplitudesParamCount(a.num_features, a.ansatz_layers);
  for (int i = 0; i < count; ++i) {
    a.params.push_back(0.3 + 0.17 * static_cast<double>(i));
  }
  return a;
}

ModelArtifact TinyKernelArtifact(const std::string& name,
                                 int num_features = 2, int num_svs = 3) {
  ModelArtifact a;
  a.type = ModelType::kKernelSvm;
  a.name = name;
  a.version = 1;
  a.num_features = num_features;
  a.kernel_encoding = KernelEncodingKind::kAngle;
  a.kernel_scale = 1.25;
  a.kernel_reps = 2;
  a.bias = -1.0 / 3.0;
  for (int i = 0; i < num_svs; ++i) {
    serve::SupportVector sv;
    sv.coeff = (i % 2 == 0 ? 1.0 : -1.0) * (0.5 + 0.25 * i);
    for (int f = 0; f < num_features; ++f) {
      sv.features.push_back(0.1 * (i + 1) + 0.01 * f);
    }
    a.support_vectors.push_back(std::move(sv));
  }
  return a;
}

// The adversarial qubo config: a key literally named "checksum", which the
// old last-occurrence-of-"checksum " scan could mistake for the trailer.
ModelArtifact AdversarialQuboArtifact(const std::string& name) {
  return serve::MakeQuboConfigArtifact(
      {{"solver", "parallel_tempering"},
       {"checksum", "deadbeefdeadbeef"},
       {"sweeps", "2000 with trailing words"}},
      name);
}

// ---- MemoryBudget (pure policy) --------------------------------------------

TEST(MemoryBudgetTest, UnlimitedNeverPlansEvictions) {
  MemoryBudget budget(0);
  budget.Add("a:1", 1000, /*evictable=*/true);
  EXPECT_FALSE(budget.over_budget());
  EXPECT_TRUE(budget.PlanEvictions().empty());
}

TEST(MemoryBudgetTest, PlansLeastRecentlyUsedFirst) {
  MemoryBudget budget(250);
  budget.Add("a:1", 100, true);
  budget.Add("b:1", 100, true);
  budget.Add("c:1", 100, true);
  budget.Touch("a:1");  // c is now LRU... no: order added a,b,c; touch a → b LRU
  const std::vector<std::string> plan = budget.PlanEvictions();
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0], "b:1");
}

TEST(MemoryBudgetTest, SkipsPinnedUnevictableAndProtected) {
  MemoryBudget budget(100);
  budget.Add("mem:1", 100, /*evictable=*/false);       // in-memory only
  budget.Add("pin:1", 100, /*evictable=*/true, true);  // pinned
  budget.Add("new:1", 100, /*evictable=*/true);
  // Everything is over budget, but only "new:1" could go — and it is
  // protected as the entry just loaded.
  EXPECT_TRUE(budget.over_budget());
  EXPECT_TRUE(budget.PlanEvictions("new:1").empty());
  const std::vector<std::string> plan = budget.PlanEvictions();
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0], "new:1");
}

TEST(MemoryBudgetTest, AddUpsertsAndDropReleases) {
  MemoryBudget budget(1000);
  budget.Add("a:1", 400, true);
  budget.Add("a:1", 100, true);  // re-add replaces, not accumulates
  EXPECT_EQ(budget.resident_bytes(), 100u);
  budget.Drop("a:1");
  EXPECT_EQ(budget.resident_bytes(), 0u);
  EXPECT_EQ(budget.resident_count(), 0u);
  budget.Drop("a:1");  // unknown key is a no-op
}

TEST(MemoryBudgetTest, StopsPlanningOnceUnderBudget) {
  MemoryBudget budget(150);
  budget.Add("a:1", 100, true);
  budget.Add("b:1", 100, true);
  budget.Add("c:1", 100, true);
  // 300 resident, budget 150: evicting the two oldest suffices.
  const std::vector<std::string> plan = budget.PlanEvictions();
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0], "a:1");
  EXPECT_EQ(plan[1], "b:1");
}

// ---- Binary format round trips ---------------------------------------------

TEST(BinaryFormatTest, VqcRoundTripIsExact) {
  ModelArtifact a = TinyVqcArtifact("binary-vqc", 7);
  a.params[0] = M_PI / 3.0;
  a.circuit_fingerprint = 0x1234567890abcdefull;
  auto b = DeserializeBinary(SerializeBinary(a));
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(b.value().type, a.type);
  EXPECT_EQ(b.value().name, a.name);
  EXPECT_EQ(b.value().version, 7);
  EXPECT_EQ(b.value().num_features, a.num_features);
  EXPECT_EQ(b.value().encoding, a.encoding);
  EXPECT_EQ(b.value().entanglement, a.entanglement);
  EXPECT_EQ(b.value().feature_scale, a.feature_scale);
  EXPECT_EQ(b.value().circuit_fingerprint, a.circuit_fingerprint);
  ASSERT_EQ(b.value().params.size(), a.params.size());
  for (size_t i = 0; i < a.params.size(); ++i) {
    EXPECT_EQ(b.value().params[i], a.params[i]) << i;
  }
}

TEST(BinaryFormatTest, KernelSvmRoundTripIsExact) {
  ModelArtifact a = TinyKernelArtifact("svm with spaces in name");
  a.support_vectors[1].features[0] = M_PI;
  auto b = DeserializeBinary(SerializeBinary(a));
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(b.value().name, a.name);
  EXPECT_EQ(b.value().kernel_encoding, a.kernel_encoding);
  EXPECT_EQ(b.value().kernel_scale, a.kernel_scale);
  EXPECT_EQ(b.value().kernel_reps, a.kernel_reps);
  EXPECT_EQ(b.value().bias, a.bias);
  ASSERT_EQ(b.value().support_vectors.size(), a.support_vectors.size());
  for (size_t i = 0; i < a.support_vectors.size(); ++i) {
    EXPECT_EQ(b.value().support_vectors[i].coeff,
              a.support_vectors[i].coeff);
    EXPECT_EQ(b.value().support_vectors[i].features,
              a.support_vectors[i].features);
  }
}

TEST(BinaryFormatTest, QuboConfigRoundTripKeepsOrderAndSpaces) {
  ModelArtifact a = AdversarialQuboArtifact("qubo-binary");
  auto b = DeserializeBinary(SerializeBinary(a));
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(b.value().type, ModelType::kQuboConfig);
  ASSERT_EQ(b.value().config.size(), 3u);
  EXPECT_EQ(b.value().config[1].first, "checksum");
  EXPECT_EQ(b.value().config[2].second, "2000 with trailing words");
}

// text → binary → text must be byte-identical: the binary format stores
// doubles as raw bits, and %.17g round-trips them exactly, so the
// re-serialized text file is the same file.
TEST(BinaryFormatTest, TextBinaryTextRoundTripIsBitIdentical) {
  std::vector<ModelArtifact> artifacts;
  artifacts.push_back(TinyVqcArtifact("parity-vqc", 3));
  artifacts.back().params[0] = M_PI / 7.0;
  artifacts.back().circuit_fingerprint = 0xfeedfacecafebeefull;
  ModelArtifact vqr = TinyVqcArtifact("parity-vqr", 2);
  vqr.type = ModelType::kVqrRegressor;
  artifacts.push_back(vqr);
  artifacts.push_back(TinyKernelArtifact("parity svm", 3, 4));
  artifacts.push_back(AdversarialQuboArtifact("parity-qubo"));
  for (const ModelArtifact& a : artifacts) {
    const std::string text_before = a.Serialize();
    auto through_binary = DeserializeBinary(SerializeBinary(a));
    ASSERT_TRUE(through_binary.ok())
        << a.name << ": " << through_binary.status();
    EXPECT_EQ(through_binary.value().Serialize(), text_before) << a.name;
  }
}

TEST(BinaryFormatTest, LoadFromFileSniffsBothFormats) {
  const ModelArtifact a = TinyKernelArtifact("sniff-model");
  const std::string binary_path = TempPath("qdb_store_sniff_binary.model");
  const std::string text_path = TempPath("qdb_store_sniff_text.model");
  ASSERT_TRUE(SaveArtifact(a, binary_path, ArtifactFormat::kBinary).ok());
  ASSERT_TRUE(SaveArtifact(a, text_path, ArtifactFormat::kText).ok());
  auto from_binary = ModelArtifact::LoadFromFile(binary_path);
  auto from_text = ModelArtifact::LoadFromFile(text_path);
  ASSERT_TRUE(from_binary.ok()) << from_binary.status();
  ASSERT_TRUE(from_text.ok()) << from_text.status();
  EXPECT_EQ(from_binary.value().Serialize(), from_text.value().Serialize());
}

// ---- Corruption: fuzz-lite byte flips and truncation -----------------------

// Flip every byte of the header, the section table, and every section
// payload (XOR 0xFF — always a real change); each corrupted image must
// fail with kInvalidArgument. Never a crash, never a silently wrong model.
TEST(BinaryFormatTest, EveryCheckedByteFlipFailsWithInvalidArgument) {
  for (const ModelArtifact& a :
       {TinyKernelArtifact("fuzz svm", 2, 3), TinyVqcArtifact("fuzz-vqc", 1),
        AdversarialQuboArtifact("fuzz-qubo")}) {
    const std::string bytes = SerializeBinary(a);
    ASSERT_TRUE(DeserializeBinary(bytes).ok());

    // Checked regions: [0, 64 + 32·section_count) plus each payload range
    // from the table. Alignment gaps between payloads are the only
    // unchecksummed bytes in the file.
    uint32_t section_count = 0;
    std::memcpy(&section_count, bytes.data() + 16, sizeof(section_count));
    ASSERT_GT(section_count, 0u);
    std::vector<std::pair<size_t, size_t>> regions;
    regions.emplace_back(0, 64 + 32 * static_cast<size_t>(section_count));
    for (uint32_t i = 0; i < section_count; ++i) {
      uint64_t offset = 0, size = 0;
      std::memcpy(&offset, bytes.data() + 64 + 32 * i + 8, sizeof(offset));
      std::memcpy(&size, bytes.data() + 64 + 32 * i + 16, sizeof(size));
      regions.emplace_back(static_cast<size_t>(offset),
                           static_cast<size_t>(offset + size));
    }

    size_t flipped = 0;
    for (const auto& [begin, end] : regions) {
      for (size_t i = begin; i < end; ++i) {
        std::string corrupted = bytes;
        corrupted[i] = static_cast<char>(corrupted[i] ^ 0xFF);
        const Result<ModelArtifact> result = DeserializeBinary(corrupted);
        ASSERT_FALSE(result.ok())
            << a.name << ": flip at byte " << i << " was accepted";
        EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
            << a.name << ": flip at byte " << i << " → " << result.status();
        ++flipped;
      }
    }
    EXPECT_GT(flipped, 100u) << a.name;
  }
}

TEST(BinaryFormatTest, EveryTruncationFailsWithInvalidArgument) {
  const std::string bytes = SerializeBinary(TinyKernelArtifact("trunc svm"));
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    const Result<ModelArtifact> result =
        DeserializeBinary(bytes.substr(0, cut));
    ASSERT_FALSE(result.ok()) << "prefix of " << cut << " bytes was accepted";
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
        << "prefix of " << cut << " bytes → " << result.status();
  }
}

// (type, payload) pairs from a serialized image's section table.
std::vector<std::pair<uint32_t, std::string>> ExtractSections(
    const std::string& bytes) {
  uint32_t count = 0;
  std::memcpy(&count, bytes.data() + 16, sizeof(count));
  std::vector<std::pair<uint32_t, std::string>> sections;
  for (uint32_t i = 0; i < count; ++i) {
    const size_t e = 64 + 32 * static_cast<size_t>(i);
    uint32_t type = 0;
    uint64_t offset = 0, size = 0;
    std::memcpy(&type, bytes.data() + e, sizeof(type));
    std::memcpy(&offset, bytes.data() + e + 8, sizeof(offset));
    std::memcpy(&size, bytes.data() + e + 16, sizeof(size));
    sections.emplace_back(type, bytes.substr(static_cast<size_t>(offset),
                                             static_cast<size_t>(size)));
  }
  return sections;
}

// Builds a format-v1 image from scratch (the writer's layout: 64 B header,
// 32 B table entries, 64-byte-aligned payloads, FNV-1a checksums) so tests
// can craft files the library writer would never emit.
std::string RebuildWithSections(
    const std::vector<std::pair<uint32_t, std::string>>& sections) {
  const size_t table_size = sections.size() * 32;
  size_t cursor = 64 + table_size;
  std::vector<size_t> offsets(sections.size());
  for (size_t i = 0; i < sections.size(); ++i) {
    cursor = (cursor + 63) / 64 * 64;
    offsets[i] = cursor;
    cursor += sections[i].second.size();
  }
  const uint64_t file_size = cursor;
  std::string out(64 + table_size, '\0');
  std::memcpy(&out[0], "QDBSTOR1", 8);
  const uint32_t version = 1;
  std::memcpy(&out[8], &version, sizeof(version));
  const uint32_t count = static_cast<uint32_t>(sections.size());
  std::memcpy(&out[16], &count, sizeof(count));
  std::memcpy(&out[24], &file_size, sizeof(file_size));
  for (size_t i = 0; i < sections.size(); ++i) {
    const size_t e = 64 + 32 * i;
    std::memcpy(&out[e], &sections[i].first, sizeof(uint32_t));
    const uint64_t offset = offsets[i], size = sections[i].second.size();
    std::memcpy(&out[e + 8], &offset, sizeof(offset));
    std::memcpy(&out[e + 16], &size, sizeof(size));
    const uint64_t checksum = serve::Fnv1a64(sections[i].second);
    std::memcpy(&out[e + 24], &checksum, sizeof(checksum));
  }
  const uint64_t header_checksum = serve::Fnv1a64(out);
  std::memcpy(&out[32], &header_checksum, sizeof(header_checksum));
  out.resize(file_size, '\0');
  for (size_t i = 0; i < sections.size(); ++i) {
    std::memcpy(&out[offsets[i]], sections[i].second.data(),
                sections[i].second.size());
  }
  return out;
}

// A crafted file repeating a *known* section passes every checksum but
// must still fail closed: a duplicate config section would append its
// entries twice, and duplicate meta/params/support-vector/fingerprint
// sections would silently overwrite earlier payloads. Unknown types may
// repeat (forward compatibility).
TEST(BinaryFormatTest, DuplicateKnownSectionIsRejected) {
  for (const ModelArtifact& a :
       {AdversarialQuboArtifact("dup-qubo"), TinyVqcArtifact("dup-vqc", 1),
        TinyKernelArtifact("dup svm")}) {
    const auto sections = ExtractSections(SerializeBinary(a));
    // Sanity: the test's builder reproduces a loadable image.
    ASSERT_TRUE(DeserializeBinary(RebuildWithSections(sections)).ok())
        << a.name;
    for (size_t i = 0; i < sections.size(); ++i) {
      auto dup = sections;
      dup.push_back(sections[i]);
      const Result<ModelArtifact> result =
          DeserializeBinary(RebuildWithSections(dup));
      ASSERT_FALSE(result.ok())
          << a.name << ": duplicated section type " << sections[i].first
          << " was accepted";
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
          << a.name << " → " << result.status();
    }
    auto with_unknown = sections;
    with_unknown.emplace_back(99u, std::string("future-payload"));
    with_unknown.emplace_back(99u, std::string("future-payload"));
    EXPECT_TRUE(DeserializeBinary(RebuildWithSections(with_unknown)).ok())
        << a.name << ": repeated unknown sections must stay readable";
  }
}

// A *structurally valid* file from a newer format version is a different
// failure than corruption: kUnimplemented, so callers can tell "damaged"
// from "too new".
TEST(BinaryFormatTest, FutureFormatVersionIsUnimplemented) {
  std::string bytes = SerializeBinary(TinyVqcArtifact("future"));
  uint32_t section_count = 0;
  std::memcpy(&section_count, bytes.data() + 16, sizeof(section_count));
  const uint32_t future_version = 2;
  std::memcpy(&bytes[8], &future_version, sizeof(future_version));
  // Re-stamp the header checksum the way the writer does: FNV-1a over
  // header + table with the checksum field zeroed.
  const size_t table_end = 64 + 32 * static_cast<size_t>(section_count);
  std::string prefix = bytes.substr(0, table_end);
  const uint64_t zero = 0;
  std::memcpy(&prefix[32], &zero, sizeof(zero));
  const uint64_t checksum = serve::Fnv1a64(prefix);
  std::memcpy(&bytes[32], &checksum, sizeof(checksum));
  const Result<ModelArtifact> result = DeserializeBinary(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

// Satellite regression for the text reader's single-pass checksum: a file
// cut at *any* byte offset must fail with kInvalidArgument — including
// cuts that leave a config key literally named "checksum" as the last
// line, which the old last-occurrence scan could misparse.
TEST(TextFormatTest, EveryTruncationFailsWithInvalidArgument) {
  for (const ModelArtifact& a :
       {TinyVqcArtifact("text-trunc", 1),
        AdversarialQuboArtifact("text-trunc-qubo")}) {
    const std::string text = a.Serialize();
    ASSERT_TRUE(ModelArtifact::Deserialize(text).ok());
    for (size_t cut = 0; cut < text.size(); ++cut) {
      const Result<ModelArtifact> result =
          ModelArtifact::Deserialize(text.substr(0, cut));
      ASSERT_FALSE(result.ok())
          << a.name << ": prefix of " << cut << " bytes was accepted";
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
          << a.name << ": prefix of " << cut << " bytes → " << result.status();
    }
  }
}

TEST(TextFormatTest, ChecksumNamedConfigKeyRoundTrips) {
  const ModelArtifact a = AdversarialQuboArtifact("checksum-key");
  auto b = ModelArtifact::Deserialize(a.Serialize());
  ASSERT_TRUE(b.ok()) << b.status();
  ASSERT_EQ(b.value().config.size(), 3u);
  EXPECT_EQ(b.value().config[1].first, "checksum");
}

// ---- Fault points -----------------------------------------------------------

class StoreFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultInjector::Global().DisarmAll(); }
  void TearDown() override { fault::FaultInjector::Global().DisarmAll(); }
};

TEST_F(StoreFaultTest, StoreReadErrorFailsTheLoad) {
  const std::string path = TempPath("qdb_store_read_fault.model");
  ASSERT_TRUE(
      SaveArtifact(TinyVqcArtifact("read-fault", 1), path,
                   ArtifactFormat::kBinary)
          .ok());
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kError;
  spec.probability = 1.0;
  spec.error_code = StatusCode::kUnavailable;
  fault::FaultInjector::Global().Arm("store.read", spec);
  const Result<ModelArtifact> result = LoadArtifact(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  fault::FaultInjector::Global().DisarmAll();
  EXPECT_TRUE(LoadArtifact(path).ok());
}

TEST_F(StoreFaultTest, TornReadOfBinaryArtifactFailsClosed) {
  const std::string path = TempPath("qdb_store_torn_read.model");
  ASSERT_TRUE(
      SaveArtifact(TinyKernelArtifact("torn-read"), path,
                   ArtifactFormat::kBinary)
          .ok());
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kTornWrite;  // on reads: keep a prefix only
  spec.probability = 1.0;
  spec.keep_fraction = 0.5;
  fault::FaultInjector::Global().Arm("store.read", spec);
  const Result<ModelArtifact> result = LoadArtifact(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ---- ServableModel::ResidentBytes ------------------------------------------

TEST(ResidentBytesTest, KernelServableIsDominatedByEncodedStates) {
  const int features = 4, svs = 3;
  auto servable =
      ServableModel::Create(TinyKernelArtifact("resident", features, svs));
  ASSERT_TRUE(servable.ok()) << servable.status();
  // Each pre-encoded support vector holds 2^features complex amplitudes.
  const size_t states_lower_bound =
      static_cast<size_t>(svs) * (1u << features) * sizeof(Complex);
  EXPECT_GE(servable.value()->ResidentBytes(), states_lower_bound);
  // And the estimate is not absurdly large for a tiny model.
  EXPECT_LT(servable.value()->ResidentBytes(), 1u << 20);
}

TEST(ResidentBytesTest, VqcServableCountsCompiledProgram) {
  auto servable = ServableModel::Create(TinyVqcArtifact("resident-vqc", 1));
  ASSERT_TRUE(servable.ok()) << servable.status();
  EXPECT_GT(servable.value()->ResidentBytes(), sizeof(ServableModel));
}

// ---- Registry: budget, eviction, reload-on-demand --------------------------

size_t OneModelBytes() {
  static const size_t bytes = [] {
    auto servable = ServableModel::Create(TinyVqcArtifact("sizer", 1));
    return servable.value()->ResidentBytes();
  }();
  return bytes;
}

TEST(RegistryBudgetTest, EvictsLruAndReloadsOnDemand) {
  RegistryOptions options;
  options.num_slices = 1;
  options.store_budget_bytes = 5 * OneModelBytes() / 2;  // fits ~2 models
  ModelRegistry registry(options);
  std::vector<std::string> names;
  for (int i = 0; i < 4; ++i) {
    const std::string name = StrCat("lru-", i);
    const std::string path = TempPath(StrCat("qdb_store_lru_", i, ".model"));
    ASSERT_TRUE(SaveArtifact(TinyVqcArtifact(name, 1), path,
                             ArtifactFormat::kBinary)
                    .ok());
    ASSERT_TRUE(registry.LoadModel(path).ok()) << name;
    names.push_back(name);
  }
  StoreStatus status = registry.store_status();
  EXPECT_EQ(status.registered_models, 4u);
  EXPECT_GT(status.evictions, 0);
  EXPECT_LT(status.resident_models, 4u);
  EXPECT_LE(status.resident_bytes, options.store_budget_bytes);
  // Every model still serves: paged-out versions reload on demand.
  for (const std::string& name : names) {
    auto servable = registry.Lookup(name);
    ASSERT_TRUE(servable.ok()) << name << ": " << servable.status();
    EXPECT_EQ(servable.value()->name(), name);
  }
  status = registry.store_status();
  EXPECT_GT(status.reloads, 0);
  EXPECT_EQ(status.registered_models, 4u);
}

TEST(RegistryBudgetTest, InMemoryRegistrationsAreNeverPagedOut) {
  RegistryOptions options;
  options.num_slices = 1;
  options.store_budget_bytes = 1;  // absurdly small
  ModelRegistry registry(options);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(registry.Register(TinyVqcArtifact(StrCat("mem-", i))).ok());
  }
  const StoreStatus status = registry.store_status();
  EXPECT_EQ(status.resident_models, 3u);  // soft budget: nowhere to reload
  EXPECT_EQ(status.evictions, 0);
  EXPECT_GT(status.resident_bytes, options.store_budget_bytes);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(registry.Lookup(StrCat("mem-", i)).ok());
  }
}

TEST(RegistryBudgetTest, SaveModelMakesTheVersionEvictable) {
  RegistryOptions options;
  options.num_slices = 1;
  options.store_budget_bytes = 1;
  ModelRegistry registry(options);
  ASSERT_TRUE(registry.Register(TinyVqcArtifact("durable")).ok());
  const std::string path = TempPath("qdb_store_durable.model");
  ASSERT_TRUE(registry.SaveModel("durable", 1, path).ok());
  // Now file-backed and over budget → paged out (it was the only entry,
  // protected at save time; the next registration triggers enforcement).
  ASSERT_TRUE(registry.Register(TinyVqcArtifact("pressure")).ok());
  StoreStatus status = registry.store_status();
  EXPECT_GT(status.evictions, 0);
  // The paged-out model reloads transparently — from the binary file
  // SaveModel wrote (the storage-tier default format).
  auto servable = registry.Lookup("durable", 1);
  ASSERT_TRUE(servable.ok()) << servable.status();
  EXPECT_EQ(servable.value()->name(), "durable");
  EXPECT_GT(registry.store_status().reloads, 0);
}

TEST(RegistryBudgetTest, PinnedVersionSurvivesMemoryPressure) {
  RegistryOptions options;
  options.num_slices = 1;
  options.store_budget_bytes = 1;
  ModelRegistry registry(options);
  const std::string pinned_path = TempPath("qdb_store_pinned.model");
  ASSERT_TRUE(SaveArtifact(TinyVqcArtifact("pinned-model", 1), pinned_path,
                           ArtifactFormat::kBinary)
                  .ok());
  ASSERT_TRUE(registry.LoadModel(pinned_path).ok());
  ASSERT_TRUE(registry.SetPinned("pinned-model", 1, true).ok());
  const std::string other_path = TempPath("qdb_store_pressure.model");
  ASSERT_TRUE(SaveArtifact(TinyVqcArtifact("pressure-model", 1), other_path,
                           ArtifactFormat::kBinary)
                  .ok());
  ASSERT_TRUE(registry.LoadModel(other_path).ok());
  bool pinned_resident = false;
  for (const serve::ModelEntry& row : registry.List()) {
    if (row.name == "pinned-model") {
      pinned_resident = row.resident;
      EXPECT_TRUE(row.pinned);
    }
  }
  EXPECT_TRUE(pinned_resident)
      << "a pinned version must never be paged out by the budget";
  EXPECT_EQ(registry.SetPinned("missing", 1, true).code(),
            StatusCode::kNotFound);
}

TEST(RegistryBudgetTest, ReloadRefusesRepurposedArtifactFile) {
  RegistryOptions options;
  options.num_slices = 1;
  options.store_budget_bytes = 1;
  ModelRegistry registry(options);
  const std::string path = TempPath("qdb_store_repurposed.model");
  ASSERT_TRUE(SaveArtifact(TinyVqcArtifact("original", 1), path,
                           ArtifactFormat::kBinary)
                  .ok());
  ASSERT_TRUE(registry.LoadModel(path).ok());
  // Page "original" out by loading another file-backed model.
  const std::string other = TempPath("qdb_store_repurposed_other.model");
  ASSERT_TRUE(SaveArtifact(TinyVqcArtifact("other", 1), other,
                           ArtifactFormat::kBinary)
                  .ok());
  ASSERT_TRUE(registry.LoadModel(other).ok());
  // Someone rewrites the artifact file with a different model.
  ASSERT_TRUE(SaveArtifact(TinyVqcArtifact("impostor", 1), path,
                           ArtifactFormat::kBinary)
                  .ok());
  const auto result = registry.Lookup("original", 1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition)
      << result.status();
}

// Regression: a model loaded with reassign_version registers under a new
// version while its file keeps the old one. The reload-identity check must
// compare against the *file's* identity, or the model becomes permanently
// unserveable the moment the budget pages it out.
TEST(RegistryBudgetTest, ReassignedVersionReloadsAfterEviction) {
  RegistryOptions options;
  options.num_slices = 1;
  options.store_budget_bytes = 1;
  ModelRegistry registry(options);
  const std::string path = TempPath("qdb_store_reassign.model");
  ASSERT_TRUE(SaveArtifact(TinyVqcArtifact("reassigned", 7), path,
                           ArtifactFormat::kBinary)
                  .ok());
  auto loaded = registry.LoadModel(path, /*reassign_version=*/true);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value()->version(), 1);  // reassigned: file still says 7
  // Page it out with another file-backed load.
  const std::string other = TempPath("qdb_store_reassign_other.model");
  ASSERT_TRUE(SaveArtifact(TinyVqcArtifact("reassign-other", 1), other,
                           ArtifactFormat::kBinary)
                  .ok());
  ASSERT_TRUE(registry.LoadModel(other).ok());
  const auto reloaded = registry.Lookup("reassigned", 1);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  // The reload serves under the *registered* identity, not the file's.
  EXPECT_EQ(reloaded.value()->name(), "reassigned");
  EXPECT_EQ(reloaded.value()->version(), 1);
}

// Same failure mode for a file stored with version 0: Register assigns
// version 1, the file keeps 0, and the reload must still match.
TEST(RegistryBudgetTest, VersionZeroFileReloadsAfterEviction) {
  RegistryOptions options;
  options.num_slices = 1;
  options.store_budget_bytes = 1;
  ModelRegistry registry(options);
  const std::string path = TempPath("qdb_store_v0_file.model");
  ASSERT_TRUE(SaveArtifact(TinyVqcArtifact("auto-versioned", 0), path,
                           ArtifactFormat::kBinary)
                  .ok());
  auto loaded = registry.LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value()->version(), 1);
  const std::string other = TempPath("qdb_store_v0_other.model");
  ASSERT_TRUE(SaveArtifact(TinyVqcArtifact("v0-other", 1), other,
                           ArtifactFormat::kBinary)
                  .ok());
  ASSERT_TRUE(registry.LoadModel(other).ok());
  const auto reloaded = registry.Lookup("auto-versioned", 1);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ(reloaded.value()->version(), 1);
}

// A missing artifact fails the cold start definitively, releases the
// per-entry loading latch (the next Lookup retries rather than hanging),
// leaves other models on the slice serving, and recovers once the file is
// back.
TEST(RegistryBudgetTest, FailedReloadReleasesTheLatchAndRecovers) {
  RegistryOptions options;
  options.num_slices = 1;
  options.store_budget_bytes = 1;
  ModelRegistry registry(options);
  const std::string a_path = TempPath("qdb_store_latch_a.model");
  const std::string b_path = TempPath("qdb_store_latch_b.model");
  ASSERT_TRUE(SaveArtifact(TinyVqcArtifact("latch-a", 1), a_path,
                           ArtifactFormat::kBinary)
                  .ok());
  ASSERT_TRUE(SaveArtifact(TinyVqcArtifact("latch-b", 1), b_path,
                           ArtifactFormat::kBinary)
                  .ok());
  ASSERT_TRUE(registry.LoadModel(a_path).ok());
  ASSERT_TRUE(registry.LoadModel(b_path).ok());  // pages latch-a out
  ASSERT_EQ(std::remove(a_path.c_str()), 0);
  for (int attempt = 0; attempt < 2; ++attempt) {
    const auto result = registry.Lookup("latch-a", 1);
    ASSERT_FALSE(result.ok()) << "attempt " << attempt;
    EXPECT_EQ(result.status().code(), StatusCode::kNotFound)
        << "attempt " << attempt << " → " << result.status();
  }
  // The rest of the slice is unaffected.
  EXPECT_TRUE(registry.Lookup("latch-b", 1).ok());
  // Restore the file: the same entry serves again.
  ASSERT_TRUE(SaveArtifact(TinyVqcArtifact("latch-a", 1), a_path,
                           ArtifactFormat::kBinary)
                  .ok());
  const auto recovered = registry.Lookup("latch-a", 1);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered.value()->name(), "latch-a");
}

TEST(RegistryBudgetTest, SlicesSplitTheBudgetIndependently) {
  RegistryOptions options;
  options.num_slices = 4;
  options.store_budget_bytes = 40 * OneModelBytes();
  ModelRegistry registry(options);
  EXPECT_EQ(registry.num_slices(), 4);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        registry.Register(TinyVqcArtifact(StrCat("sliced-", i))).ok());
  }
  EXPECT_EQ(registry.size(), 12u);
  EXPECT_EQ(registry.List().size(), 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_TRUE(registry.Lookup(StrCat("sliced-", i)).ok());
  }
  // Under-budget: no slice should have evicted anything.
  EXPECT_EQ(registry.store_status().evictions, 0);
}

// ---- Async loader -----------------------------------------------------------

TEST(AsyncLoaderTest, PrefetchPromotesWithoutInvalidatingInFlightRequests) {
  ModelRegistry registry;
  auto v1 = registry.Register(TinyVqcArtifact("rollout", 1));
  ASSERT_TRUE(v1.ok());
  const std::shared_ptr<const ServableModel> in_flight = v1.value();

  ModelArtifact next = TinyVqcArtifact("rollout", 2);
  next.params[0] += 0.25;  // a genuinely different version
  const std::string path = TempPath("qdb_store_rollout_v2.model");
  ASSERT_TRUE(SaveArtifact(next, path, ArtifactFormat::kBinary).ok());

  AsyncModelLoader loader(registry);
  ASSERT_TRUE(loader.Start().ok());
  AsyncModelLoader::LoadFuture future = loader.Prefetch(path);
  const Result<AsyncModelLoader::Servable> promoted = future.get();
  ASSERT_TRUE(promoted.ok()) << promoted.status();
  EXPECT_EQ(promoted.value()->version(), 2);

  // Double-buffered promotion: the latest lookup resolves to v2 while the
  // in-flight handle still serves v1 untouched.
  auto latest = registry.Lookup("rollout");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value()->version(), 2);
  EXPECT_EQ(in_flight->version(), 1);
  EXPECT_EQ(in_flight->artifact().params[0], v1.value()->artifact().params[0]);
  loader.Shutdown();
  const AsyncModelLoader::Stats stats = loader.stats();
  EXPECT_EQ(stats.submitted, 1);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.failed, 0);
}

TEST(AsyncLoaderTest, WarmAbsorbsTheColdStartOffTheRequestPath) {
  RegistryOptions options;
  options.num_slices = 1;
  options.store_budget_bytes = 1;
  ModelRegistry registry(options);
  const std::string a_path = TempPath("qdb_store_warm_a.model");
  const std::string b_path = TempPath("qdb_store_warm_b.model");
  ASSERT_TRUE(SaveArtifact(TinyVqcArtifact("warm-a", 1), a_path,
                           ArtifactFormat::kBinary)
                  .ok());
  ASSERT_TRUE(SaveArtifact(TinyVqcArtifact("warm-b", 1), b_path,
                           ArtifactFormat::kBinary)
                  .ok());
  ASSERT_TRUE(registry.LoadModel(a_path).ok());
  ASSERT_TRUE(registry.LoadModel(b_path).ok());  // pages warm-a out
  bool a_resident = true;
  for (const serve::ModelEntry& row : registry.List()) {
    if (row.name == "warm-a") a_resident = row.resident;
  }
  ASSERT_FALSE(a_resident) << "test setup: warm-a should be paged out";

  AsyncModelLoader loader(registry);
  ASSERT_TRUE(loader.Start().ok());
  const Result<AsyncModelLoader::Servable> warmed =
      loader.Warm("warm-a", 1).get();
  ASSERT_TRUE(warmed.ok()) << warmed.status();
  EXPECT_EQ(warmed.value()->name(), "warm-a");
  for (const serve::ModelEntry& row : registry.List()) {
    if (row.name == "warm-a") {
      EXPECT_TRUE(row.resident);
    }
  }
}

TEST(AsyncLoaderTest, FullQueueRejectsAndShutdownSettlesEverything) {
  ModelRegistry registry;
  AsyncLoaderOptions options;
  options.queue_capacity = 1;
  AsyncModelLoader loader(registry, options);
  // Not started: the first job waits in the queue, the second overflows.
  AsyncModelLoader::LoadFuture first = loader.Prefetch("/nonexistent/a");
  AsyncModelLoader::LoadFuture second = loader.Prefetch("/nonexistent/b");
  const Result<AsyncModelLoader::Servable> rejected = second.get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  loader.Shutdown();  // never started: queued job fails, future settles
  const Result<AsyncModelLoader::Servable> drained = first.get();
  ASSERT_FALSE(drained.ok());
  EXPECT_EQ(drained.status().code(), StatusCode::kUnavailable);
  // The overflow counts as rejected, not submitted/failed, so the books
  // balance: submitted == completed + failed once drained.
  const AsyncModelLoader::Stats stats = loader.stats();
  EXPECT_EQ(stats.submitted, 1);
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.completed, 0);
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(stats.submitted, stats.completed + stats.failed);
}

TEST(AsyncLoaderTest, PrefetchOfMissingFileResolvesWithError) {
  ModelRegistry registry;
  AsyncModelLoader loader(registry);
  ASSERT_TRUE(loader.Start().ok());
  const Result<AsyncModelLoader::Servable> result =
      loader.Prefetch(TempPath("qdb_store_never_written.model")).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  loader.Shutdown();
  EXPECT_EQ(loader.stats().failed, 1);
  // Post-shutdown enqueues are turned away and tallied as rejections.
  const Result<AsyncModelLoader::Servable> late =
      loader.Prefetch(TempPath("qdb_store_late.model")).get();
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(loader.stats().rejected, 1);
  EXPECT_EQ(loader.stats().submitted, 1);
}

// ---- Concurrency (runs under TSan in tier1) --------------------------------

TEST(StoreConcurrencyTest, LookupChurnUnderTinyBudgetIsRaceFree) {
  RegistryOptions options;
  options.num_slices = 2;
  options.store_budget_bytes = 3 * OneModelBytes();
  ModelRegistry registry(options);
  constexpr int kModels = 6;
  for (int i = 0; i < kModels; ++i) {
    const std::string path =
        TempPath(StrCat("qdb_store_churn_", i, ".model"));
    ASSERT_TRUE(SaveArtifact(TinyVqcArtifact(StrCat("churn-", i), 1), path,
                             ArtifactFormat::kBinary)
                    .ok());
    ASSERT_TRUE(registry.LoadModel(path).ok());
  }
  AsyncModelLoader loader(registry);
  ASSERT_TRUE(loader.Start().ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry, &failures, t] {
      for (int i = 0; i < 120; ++i) {
        const std::string name = StrCat("churn-", (t + i) % kModels);
        if (!registry.Lookup(name).ok()) failures.fetch_add(1);
      }
    });
  }
  threads.emplace_back([&registry, &failures] {
    for (int i = 0; i < 40; ++i) {
      if (!registry.SetPinned(StrCat("churn-", i % kModels), 1,
                              i % 2 == 0)
               .ok()) {
        failures.fetch_add(1);
      }
    }
  });
  std::vector<AsyncModelLoader::LoadFuture> warms;
  for (int i = 0; i < 24; ++i) {
    warms.push_back(loader.Warm(StrCat("churn-", i % kModels), 1));
  }
  for (auto& thread : threads) thread.join();
  for (auto& warm : warms) {
    if (!warm.get().ok()) failures.fetch_add(1);
  }
  loader.Shutdown();
  EXPECT_EQ(failures.load(), 0);
  const StoreStatus status = registry.store_status();
  EXPECT_EQ(status.registered_models, static_cast<size_t>(kModels));
  EXPECT_GT(status.reloads, 0);  // the tiny budget forced churn
}

// ---- Chaos profile (driven by scripts/chaos.sh) -----------------------------

// Under a store.read latency/error profile, every prefetch must settle
// with a definitive Status, promoted models must serve, and the run must
// replay identically when re-armed (the injector streams are seeded).
TEST(StoreChaosTest, PrefetchUnderReadFaultsEveryLoadTerminates) {
  const char* profile = std::getenv("QDB_FAULTS");
  if (profile == nullptr || profile[0] == '\0') {
    GTEST_SKIP() << "QDB_FAULTS not set; run via scripts/chaos.sh";
  }
  constexpr int kModels = 8;
  std::vector<std::string> paths;
  for (int i = 0; i < kModels; ++i) {
    const std::string path =
        TempPath(StrCat("qdb_store_chaos_", i, ".model"));
    ASSERT_TRUE(SaveArtifact(TinyVqcArtifact(StrCat("chaos-", i), 1), path,
                             ArtifactFormat::kBinary)
                    .ok());
    paths.push_back(path);
  }

  auto run_profile = [&](std::vector<bool>& outcomes) {
    fault::FaultInjector::Global().DisarmAll();
    ASSERT_TRUE(fault::FaultInjector::Global().ArmFromEnv().ok()) << profile;
    ASSERT_TRUE(fault::FaultInjector::Global().enabled());
    ModelRegistry registry;
    AsyncModelLoader loader(registry);
    ASSERT_TRUE(loader.Start().ok());
    std::vector<AsyncModelLoader::LoadFuture> futures;
    for (const std::string& path : paths) futures.push_back(
        loader.Prefetch(path));
    for (size_t i = 0; i < futures.size(); ++i) {
      const Result<AsyncModelLoader::Servable> result = futures[i].get();
      outcomes.push_back(result.ok());
      if (result.ok()) {
        // A promoted model must actually serve.
        EXPECT_TRUE(registry.Lookup(result.value()->name()).ok());
      } else {
        // Failures must be definitive, not hangs or corruption served as
        // success.
        EXPECT_NE(result.status().code(), StatusCode::kOk);
      }
    }
    loader.Shutdown();
    const AsyncModelLoader::Stats stats = loader.stats();
    EXPECT_EQ(stats.submitted, kModels);
    EXPECT_EQ(stats.completed + stats.failed, kModels);
    fault::FaultInjector::Global().DisarmAll();
  };

  std::vector<bool> first, second;
  run_profile(first);
  run_profile(second);
  // Seeded faults replay bit-for-bit: same profile, same outcomes.
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace store
}  // namespace qdb
