#include "classical/svm.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/strings.h"
#include "linalg/vector_ops.h"

namespace qdb {

double Svm::Kernel(const DVector& a, const DVector& b) const {
  switch (options_.kernel) {
    case SvmKernel::kLinear:
      return Dot(a, b);
    case SvmKernel::kRbf: {
      double dist_sq = 0.0;
      for (size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        dist_sq += d * d;
      }
      return std::exp(-options_.gamma * dist_sq);
    }
    case SvmKernel::kPrecomputed:
      QDB_CHECK(false) << "precomputed kernel has no feature-space form";
  }
  return 0.0;
}

Result<Svm> Svm::Train(const Dataset& data, const SvmOptions& options,
                       const Matrix* gram) {
  const size_t n = data.size();
  if (n < 2) {
    return Status::InvalidArgument("SVM needs at least two training samples");
  }
  if (data.labels.size() != n) {
    return Status::InvalidArgument("feature/label count mismatch");
  }
  bool has_pos = false, has_neg = false;
  for (int y : data.labels) {
    if (y == 1) has_pos = true;
    else if (y == -1) has_neg = true;
    else return Status::InvalidArgument("labels must be +1 or -1");
  }
  if (!has_pos || !has_neg) {
    return Status::InvalidArgument("training set needs both classes");
  }
  if (options.kernel == SvmKernel::kPrecomputed) {
    if (gram == nullptr) {
      return Status::InvalidArgument("precomputed kernel requires a Gram matrix");
    }
    if (gram->rows() != n || gram->cols() != n) {
      return Status::InvalidArgument(
          StrCat("Gram matrix must be ", n, "x", n, ", got ", gram->rows(),
                 "x", gram->cols()));
    }
  }
  if (options.c <= 0.0) {
    return Status::InvalidArgument("box constraint C must be positive");
  }

  Svm svm;
  svm.options_ = options;
  svm.train_features_ = data.features;
  svm.train_labels_ = data.labels;
  svm.alphas_.assign(n, 0.0);
  svm.bias_ = 0.0;

  // Cache the full kernel matrix (training sets here are small).
  std::vector<DVector> k(n, DVector(n));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const double v = options.kernel == SvmKernel::kPrecomputed
                           ? (*gram)(i, j).real()
                           : svm.Kernel(data.features[i], data.features[j]);
      k[i][j] = v;
      k[j][i] = v;
    }
  }

  auto decision = [&](size_t i) {
    double acc = svm.bias_;
    for (size_t j = 0; j < n; ++j) {
      if (svm.alphas_[j] > 0.0) {
        acc += svm.alphas_[j] * data.labels[j] * k[j][i];
      }
    }
    return acc;
  };

  // Simplified SMO (Platt; CS229 variant): pick violating i, random j ≠ i,
  // solve the 2-variable subproblem analytically.
  Rng rng(options.seed);
  const double c_box = options.c;
  const double tol = options.tolerance;
  int passes = 0;
  int iterations = 0;
  while (passes < options.max_passes && iterations < options.max_iterations) {
    ++iterations;
    int changed = 0;
    for (size_t i = 0; i < n; ++i) {
      const double yi = data.labels[i];
      const double ei = decision(i) - yi;
      const bool violates = (yi * ei < -tol && svm.alphas_[i] < c_box) ||
                            (yi * ei > tol && svm.alphas_[i] > 0.0);
      if (!violates) continue;
      size_t j = rng.UniformInt(static_cast<uint64_t>(n - 1));
      if (j >= i) ++j;
      const double yj = data.labels[j];
      const double ej = decision(j) - yj;
      const double ai_old = svm.alphas_[i];
      const double aj_old = svm.alphas_[j];
      double lo, hi;
      if (yi != yj) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(c_box, c_box + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - c_box);
        hi = std::min(c_box, ai_old + aj_old);
      }
      if (lo >= hi) continue;
      const double eta = 2.0 * k[i][j] - k[i][i] - k[j][j];
      if (eta >= 0.0) continue;
      double aj = aj_old - yj * (ei - ej) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::abs(aj - aj_old) < 1e-5) continue;
      const double ai = ai_old + yi * yj * (aj_old - aj);
      svm.alphas_[i] = ai;
      svm.alphas_[j] = aj;
      const double b1 = svm.bias_ - ei - yi * (ai - ai_old) * k[i][i] -
                        yj * (aj - aj_old) * k[i][j];
      const double b2 = svm.bias_ - ej - yi * (ai - ai_old) * k[i][j] -
                        yj * (aj - aj_old) * k[j][j];
      if (ai > 0.0 && ai < c_box) {
        svm.bias_ = b1;
      } else if (aj > 0.0 && aj < c_box) {
        svm.bias_ = b2;
      } else {
        svm.bias_ = (b1 + b2) / 2.0;
      }
      ++changed;
    }
    passes = changed == 0 ? passes + 1 : 0;
  }
  return svm;
}

Result<double> Svm::DecisionValue(const DVector& x) const {
  if (options_.kernel == SvmKernel::kPrecomputed) {
    return Status::FailedPrecondition(
        "precomputed-kernel SVM needs DecisionValueFromKernelRow");
  }
  if (static_cast<int>(x.size()) !=
      static_cast<int>(train_features_.front().size())) {
    return Status::InvalidArgument("feature dimension mismatch");
  }
  double acc = bias_;
  for (size_t j = 0; j < train_features_.size(); ++j) {
    if (alphas_[j] > 0.0) {
      acc += alphas_[j] * train_labels_[j] * Kernel(train_features_[j], x);
    }
  }
  return acc;
}

double Svm::DecisionValueFromKernelRow(const DVector& kernel_row) const {
  QDB_CHECK_EQ(kernel_row.size(), train_features_.size());
  double acc = bias_;
  for (size_t j = 0; j < kernel_row.size(); ++j) {
    if (alphas_[j] > 0.0) {
      acc += alphas_[j] * train_labels_[j] * kernel_row[j];
    }
  }
  return acc;
}

Result<int> Svm::Predict(const DVector& x) const {
  QDB_ASSIGN_OR_RETURN(double value, DecisionValue(x));
  return value >= 0.0 ? 1 : -1;
}

int Svm::PredictFromKernelRow(const DVector& kernel_row) const {
  return DecisionValueFromKernelRow(kernel_row) >= 0.0 ? 1 : -1;
}

int Svm::NumSupportVectors() const {
  int count = 0;
  for (double a : alphas_) {
    if (a > 1e-8) ++count;
  }
  return count;
}

}  // namespace qdb
