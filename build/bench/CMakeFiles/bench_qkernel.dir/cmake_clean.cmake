file(REMOVE_RECURSE
  "CMakeFiles/bench_qkernel.dir/bench_qkernel.cc.o"
  "CMakeFiles/bench_qkernel.dir/bench_qkernel.cc.o.d"
  "bench_qkernel"
  "bench_qkernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qkernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
