// Tests for the QFT and quantum phase estimation.

#include <gtest/gtest.h>

#include <cmath>

#include "algo/phase_estimation.h"
#include "sim/statevector_simulator.h"
#include "sim/unitary_simulator.h"

namespace qdb {
namespace {

TEST(QftTest, MatrixMatchesDftDefinition) {
  const int n = 3;
  const uint64_t dim = 8;
  auto u = CircuitUnitary(QftCircuit(n));
  ASSERT_TRUE(u.ok());
  const double inv_sqrt = 1.0 / std::sqrt(static_cast<double>(dim));
  for (uint64_t r = 0; r < dim; ++r) {
    for (uint64_t c = 0; c < dim; ++c) {
      const Complex expected =
          inv_sqrt * std::exp(Complex(0, 2.0 * M_PI * r * c / dim));
      EXPECT_NEAR(std::abs(u.value()(r, c) - expected), 0.0, 1e-10)
          << r << "," << c;
    }
  }
}

TEST(QftTest, InverseComposesToIdentity) {
  Circuit c = QftCircuit(4);
  c.Append(InverseQftCircuit(4));
  auto u = CircuitUnitary(c);
  ASSERT_TRUE(u.ok());
  EXPECT_TRUE(u.value().ApproxEqual(Matrix::Identity(16), 1e-9));
}

TEST(QpeTest, ExactlyRepresentablePhaseIsDeterministic) {
  // φ = 3/8 with 3 ancillas: the readout is exact.
  const double phase = 3.0 / 8.0;
  auto c = PhaseEstimationCircuit(phase, 3);
  ASSERT_TRUE(c.ok());
  StateVectorSimulator sim;
  auto state = sim.Run(c.value());
  ASSERT_TRUE(state.ok());
  // Expected outcome: ancilla register reads 3 (then the target qubit 1).
  const uint64_t expected_index = (3u << 1) | 1u;
  EXPECT_NEAR(state.value().Probability(expected_index), 1.0, 1e-9);
}

class QpePrecisionTest : public ::testing::TestWithParam<int> {};

TEST_P(QpePrecisionTest, EstimateWithinResolution) {
  const int t = GetParam();
  Rng rng(60 + t);
  const double phase = 0.31417;
  auto estimate = EstimatePhase(phase, t, /*shots=*/512, rng);
  ASSERT_TRUE(estimate.ok());
  const double resolution = 1.0 / static_cast<double>(uint64_t{1} << t);
  EXPECT_NEAR(estimate.value().estimated_phase, phase, 1.5 * resolution);
}

INSTANTIATE_TEST_SUITE_P(Precisions, QpePrecisionTest,
                         ::testing::Values(3, 4, 5, 6, 8));

TEST(QpeTest, HigherPrecisionTightensEstimate) {
  Rng rng(71);
  const double phase = 0.137;
  auto coarse = EstimatePhase(phase, 3, 512, rng);
  auto fine = EstimatePhase(phase, 8, 512, rng);
  ASSERT_TRUE(coarse.ok());
  ASSERT_TRUE(fine.ok());
  EXPECT_LE(std::abs(fine.value().estimated_phase - phase),
            std::abs(coarse.value().estimated_phase - phase) + 1e-12);
}

TEST(QpeTest, Validation) {
  EXPECT_FALSE(PhaseEstimationCircuit(0.1, 0).ok());
  EXPECT_FALSE(PhaseEstimationCircuit(0.1, 20).ok());
  Rng rng(1);
  EXPECT_FALSE(EstimatePhase(0.1, 4, 0, rng).ok());
}

}  // namespace
}  // namespace qdb
