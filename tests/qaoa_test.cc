// Tests for the QAOA driver.

#include <gtest/gtest.h>

#include <cmath>

#include "anneal/exhaustive.h"
#include "ops/graph_hamiltonians.h"
#include "sim/statevector_simulator.h"
#include "variational/qaoa.h"

namespace qdb {
namespace {

TEST(QaoaTest, CircuitLayout) {
  IsingModel ising(3);
  ising.AddCoupling(0, 1, 1.0);
  ising.AddCoupling(1, 2, 1.0);
  ising.AddField(0, 0.5);
  Qaoa qaoa(ising, /*layers=*/2);
  const Circuit& c = qaoa.circuit();
  EXPECT_EQ(c.num_qubits(), 3);
  EXPECT_EQ(c.num_parameters(), 4);  // 2 γ + 2 β.
  // Per layer: 1 RZ (field) + 2 RZZ + 3 RX; plus 3 initial H.
  EXPECT_EQ(c.size(), 3u + 2u * (1u + 2u + 3u));
}

TEST(QaoaTest, ZeroAnglesGiveUniformSuperpositionEnergy) {
  // At γ = β = 0 the state is |+⟩^n, where ⟨Z_i⟩ = ⟨Z_iZ_j⟩ = 0, so the
  // energy is exactly the offset.
  IsingModel ising(2);
  ising.AddCoupling(0, 1, 1.0);
  ising.AddField(0, 0.7);
  ising.AddOffset(1.25);
  Qaoa qaoa(ising, 1);
  auto e = qaoa.Energy({0.0, 0.0});
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e.value(), 1.25, 1e-10);
}

TEST(QaoaTest, SingleEdgeAnalyticOptimum) {
  // One ZZ coupling, p = 1: E(γ, β) = cos... the known optimum reaches
  // energy −1 at (γ, β) = (π/4, π/8)-equivalents; just check the driver
  // achieves ≤ −0.9.
  IsingModel ising(2);
  ising.AddCoupling(0, 1, 1.0);
  Qaoa qaoa(ising, 1);
  QaoaOptions opts;
  opts.restarts = 3;
  opts.nelder_mead.max_iterations = 300;
  auto result = qaoa.Optimize(opts);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LT(result.value().expected_energy, -0.9);
  EXPECT_NEAR(result.value().best_energy, -1.0, 1e-9);
}

TEST(QaoaTest, MaxCutRingApproximationImprovesWithDepth) {
  WeightedGraph ring = RingGraph(6);
  IsingModel ising = MaxCutIsing(ring);
  const double optimal_cut = 6.0;

  QaoaOptions opts;
  opts.restarts = 4;
  opts.seed = 5;
  opts.nelder_mead.max_iterations = 400;

  Qaoa shallow(ising, 1);
  auto r1 = shallow.Optimize(opts);
  ASSERT_TRUE(r1.ok());
  const double cut1 =
      (ring.TotalWeight() - r1.value().expected_energy) / 2.0;

  Qaoa deeper(ising, 3);
  auto r3 = deeper.Optimize(opts);
  ASSERT_TRUE(r3.ok());
  const double cut3 =
      (ring.TotalWeight() - r3.value().expected_energy) / 2.0;

  EXPECT_GT(cut1 / optimal_cut, 0.6);
  EXPECT_GT(cut3 / optimal_cut, cut1 / optimal_cut - 0.05);
  EXPECT_GT(cut3 / optimal_cut, 0.85);
}

TEST(QaoaTest, SampledSolutionIsGroundStateOnSmallInstance) {
  Rng rng(7);
  WeightedGraph g = ErdosRenyiGraph(5, 0.7, rng);
  IsingModel ising = MaxCutIsing(g);
  auto exact = ExhaustiveSolve(ising);
  ASSERT_TRUE(exact.ok());

  Qaoa qaoa(ising, 2);
  QaoaOptions opts;
  opts.restarts = 4;
  opts.sample_shots = 1024;
  opts.nelder_mead.max_iterations = 300;
  auto result = qaoa.Optimize(opts);
  ASSERT_TRUE(result.ok());
  // Sampling the optimized distribution should uncover the true optimum on
  // an instance this small.
  EXPECT_NEAR(result.value().best_energy, exact.value().best_energy, 1e-9);
}

TEST(QaoaTest, SampleBestReturnsValidSpins) {
  IsingModel ising(3);
  ising.AddCoupling(0, 1, 1.0);
  ising.AddCoupling(1, 2, -0.5);
  Qaoa qaoa(ising, 1);
  Rng rng(11);
  auto spins = qaoa.SampleBest({0.3, 0.7}, 64, rng);
  ASSERT_TRUE(spins.ok());
  ASSERT_EQ(spins.value().size(), 3u);
  for (int8_t s : spins.value()) EXPECT_TRUE(s == 1 || s == -1);
}

TEST(QaoaTest, EnergyMatchesDiagonalExpectation) {
  // Cross-check the PauliSum pathway against a direct diagonal computation.
  IsingModel ising(2);
  ising.AddCoupling(0, 1, 0.8);
  ising.AddField(1, -0.3);
  ising.AddOffset(0.1);
  Qaoa qaoa(ising, 1);
  const DVector params = {0.4, 0.9};
  auto via_driver = qaoa.Energy(params);
  ASSERT_TRUE(via_driver.ok());

  StateVectorSimulator sim;
  auto state = sim.Run(qaoa.circuit(), params);
  ASSERT_TRUE(state.ok());
  auto diag = ising.ToPauliSum().DiagonalValues();
  ASSERT_TRUE(diag.ok());
  double manual = 0.0;
  for (uint64_t i = 0; i < state.value().dim(); ++i) {
    manual += state.value().Probability(i) * diag.value()[i];
  }
  EXPECT_NEAR(via_driver.value(), manual, 1e-10);
}

}  // namespace
}  // namespace qdb
