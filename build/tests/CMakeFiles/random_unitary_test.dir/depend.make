# Empty dependencies file for random_unitary_test.
# This may be replaced when dependencies are built.
