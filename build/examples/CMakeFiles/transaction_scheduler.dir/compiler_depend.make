# Empty compiler generated dependencies file for transaction_scheduler.
# This may be replaced when dependencies are built.
