#include "db/query_graph.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/strings.h"

namespace qdb {

Result<JoinQueryGraph> JoinQueryGraph::Create(
    std::vector<double> cardinalities) {
  if (cardinalities.size() < 2) {
    return Status::InvalidArgument("a join query needs at least two relations");
  }
  for (double c : cardinalities) {
    if (c <= 0.0) {
      return Status::InvalidArgument("cardinalities must be positive");
    }
  }
  return JoinQueryGraph(std::move(cardinalities));
}

double JoinQueryGraph::cardinality(int relation) const {
  QDB_CHECK_GE(relation, 0);
  QDB_CHECK_LT(relation, num_relations());
  return cardinalities_[relation];
}

Status JoinQueryGraph::AddJoin(int a, int b, double selectivity) {
  if (a < 0 || a >= num_relations() || b < 0 || b >= num_relations()) {
    return Status::OutOfRange("relation index out of range");
  }
  if (a == b) {
    return Status::InvalidArgument("self-joins are not modeled");
  }
  if (selectivity <= 0.0 || selectivity > 1.0) {
    return Status::InvalidArgument(
        StrCat("selectivity must be in (0, 1], got ", selectivity));
  }
  if (HasEdge(a, b)) {
    return Status::AlreadyExists(
        StrCat("join edge (", a, ", ", b, ") already present"));
  }
  edges_.push_back({std::min(a, b), std::max(a, b), selectivity});
  return Status::OK();
}

double JoinQueryGraph::Selectivity(int a, int b) const {
  for (const auto& e : edges_) {
    if ((e.a == a && e.b == b) || (e.a == b && e.b == a)) return e.selectivity;
  }
  return 1.0;
}

bool JoinQueryGraph::HasEdge(int a, int b) const {
  for (const auto& e : edges_) {
    if ((e.a == a && e.b == b) || (e.a == b && e.b == a)) return true;
  }
  return false;
}

bool JoinQueryGraph::IsConnected() const {
  const int n = num_relations();
  std::vector<bool> seen(n, false);
  std::vector<int> stack = {0};
  seen[0] = true;
  int visited = 1;
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    for (const auto& e : edges_) {
      const int other = e.a == u ? e.b : (e.b == u ? e.a : -1);
      if (other >= 0 && !seen[other]) {
        seen[other] = true;
        ++visited;
        stack.push_back(other);
      }
    }
  }
  return visited == n;
}

std::vector<int> JoinQueryGraph::NeighborsOf(int relation) const {
  std::vector<int> out;
  for (const auto& e : edges_) {
    if (e.a == relation) out.push_back(e.b);
    if (e.b == relation) out.push_back(e.a);
  }
  return out;
}

std::string JoinQueryGraph::ToString() const {
  std::ostringstream os;
  os << "JoinQueryGraph(" << num_relations() << " relations)\n";
  for (int r = 0; r < num_relations(); ++r) {
    os << "  R" << r << ": |" << cardinalities_[r] << "|\n";
  }
  for (const auto& e : edges_) {
    os << "  R" << e.a << " ⋈ R" << e.b << " sel=" << e.selectivity << "\n";
  }
  return os.str();
}

namespace {

double LogUniform(Rng& rng, double lo, double hi) {
  return std::exp(rng.Uniform(std::log(lo), std::log(hi)));
}

}  // namespace

Result<JoinQueryGraph> RandomQuery(QueryShape shape, int num_relations,
                                   Rng& rng, double sel_min, double sel_max) {
  if (num_relations < 2) {
    return Status::InvalidArgument("need at least two relations");
  }
  if (sel_min <= 0.0 || sel_min > sel_max || sel_max > 1.0) {
    return Status::InvalidArgument("need 0 < sel_min <= sel_max <= 1");
  }
  std::vector<double> cards(num_relations);
  for (auto& c : cards) c = std::round(LogUniform(rng, 100.0, 100000.0));
  QDB_ASSIGN_OR_RETURN(JoinQueryGraph graph,
                       JoinQueryGraph::Create(std::move(cards)));
  auto sel = [&] { return LogUniform(rng, sel_min, sel_max); };
  switch (shape) {
    case QueryShape::kChain:
      for (int r = 0; r + 1 < num_relations; ++r) {
        QDB_RETURN_IF_ERROR(graph.AddJoin(r, r + 1, sel()));
      }
      break;
    case QueryShape::kStar:
      for (int r = 1; r < num_relations; ++r) {
        QDB_RETURN_IF_ERROR(graph.AddJoin(0, r, sel()));
      }
      break;
    case QueryShape::kCycle:
      if (num_relations < 3) {
        return Status::InvalidArgument("a cycle query needs >= 3 relations");
      }
      for (int r = 0; r < num_relations; ++r) {
        QDB_RETURN_IF_ERROR(graph.AddJoin(r, (r + 1) % num_relations, sel()));
      }
      break;
    case QueryShape::kClique:
      for (int a = 0; a < num_relations; ++a) {
        for (int b = a + 1; b < num_relations; ++b) {
          QDB_RETURN_IF_ERROR(graph.AddJoin(a, b, sel()));
        }
      }
      break;
  }
  return graph;
}

const char* QueryShapeName(QueryShape shape) {
  switch (shape) {
    case QueryShape::kChain: return "chain";
    case QueryShape::kStar: return "star";
    case QueryShape::kCycle: return "cycle";
    case QueryShape::kClique: return "clique";
  }
  return "?";
}

}  // namespace qdb
