#include "mitigation/zne.h"

#include <cmath>
#include <set>

#include "common/strings.h"

namespace qdb {

Result<Circuit> FoldCircuit(const Circuit& circuit, int scale) {
  if (scale < 1 || scale % 2 == 0) {
    return Status::InvalidArgument(
        StrCat("fold scale must be odd and >= 1, got ", scale));
  }
  Circuit folded = circuit;
  const Circuit inverse = circuit.Inverse();
  const int pairs = (scale - 1) / 2;
  for (int k = 0; k < pairs; ++k) {
    folded.Append(inverse);
    folded.Append(circuit);
  }
  return folded;
}

Result<double> RichardsonExtrapolate(const DVector& xs, const DVector& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    return Status::InvalidArgument(
        "Richardson extrapolation needs >= 2 matching points");
  }
  for (size_t i = 0; i < xs.size(); ++i) {
    for (size_t j = i + 1; j < xs.size(); ++j) {
      if (xs[i] == xs[j]) {
        return Status::InvalidArgument("extrapolation points must be distinct");
      }
    }
  }
  // Lagrange polynomial evaluated at x = 0.
  double result = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    double weight = 1.0;
    for (size_t j = 0; j < xs.size(); ++j) {
      if (j != i) weight *= xs[j] / (xs[j] - xs[i]);
    }
    result += weight * ys[i];
  }
  return result;
}

Result<ZneResult> ZeroNoiseExtrapolate(const Circuit& circuit,
                                       const PauliSum& observable,
                                       const DensitySimulator& simulator,
                                       const ZneOptions& options,
                                       const DVector& params) {
  if (options.scale_factors.size() < 2) {
    return Status::InvalidArgument("ZNE needs at least two scale factors");
  }
  std::set<int> distinct(options.scale_factors.begin(),
                         options.scale_factors.end());
  if (distinct.size() != options.scale_factors.size()) {
    return Status::InvalidArgument("ZNE scale factors must be distinct");
  }

  ZneResult result;
  DVector xs;
  for (int scale : options.scale_factors) {
    QDB_ASSIGN_OR_RETURN(Circuit folded, FoldCircuit(circuit, scale));
    QDB_ASSIGN_OR_RETURN(DensityMatrix rho, simulator.Run(folded, params));
    const double value = rho.ExpectationOf(observable);
    result.raw_values.push_back(value);
    xs.push_back(static_cast<double>(scale));
    if (scale == 1) result.unmitigated = value;
  }
  QDB_ASSIGN_OR_RETURN(result.mitigated,
                       RichardsonExtrapolate(xs, result.raw_values));
  return result;
}

}  // namespace qdb
