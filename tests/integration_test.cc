// Cross-module integration tests: full quantum-database pipelines.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "anneal/quantum_annealing.h"
#include "anneal/simulated_annealing.h"
#include "classical/metrics.h"
#include "classical/svm.h"
#include "db/join_order_dp.h"
#include "db/join_order_greedy.h"
#include "db/join_order_qubo.h"
#include "kernel/quantum_kernel.h"
#include "mitigation/readout.h"
#include "mitigation/zne.h"
#include "ops/graph_hamiltonians.h"
#include "sim/shot_estimator.h"
#include "sim/statevector_simulator.h"
#include "variational/qaoa.h"
#include "variational/vqc.h"

namespace qdb {
namespace {

TEST(IntegrationTest, QuantumAnnealedJoinOrderingPipeline) {
  // Full E7 pipeline: query graph → QUBO → SQA → decode → C_out, compared
  // against the DP optimum and greedy baseline.
  Rng rng(3);
  auto g = RandomQuery(QueryShape::kChain, 8, rng);
  ASSERT_TRUE(g.ok());
  auto enc = JoinOrderQubo::Create(g.value());
  ASSERT_TRUE(enc.ok());

  SqaOptions sqa_opts;
  sqa_opts.num_sweeps = 600;
  sqa_opts.num_replicas = 16;
  sqa_opts.num_restarts = 2;
  auto annealed = SimulatedQuantumAnnealing(enc.value().qubo().ToIsing(),
                                            sqa_opts);
  ASSERT_TRUE(annealed.ok());
  std::vector<int> order =
      enc.value().Decode(SpinsToBits(annealed.value().best_spins));
  const double quantum_cost = CostOfLeftDeepOrder(g.value(), order).value();

  auto dp = OptimalLeftDeepPlan(g.value());
  ASSERT_TRUE(dp.ok());
  // Sanity ordering: optimal ≤ annealed; annealed within 100× of optimal
  // (the QUBO optimizes a log surrogate, so exact parity is not promised).
  EXPECT_GE(quantum_cost, dp.value().cost - 1e-6);
  EXPECT_LT(quantum_cost, 100.0 * dp.value().cost + 1e-6);
}

TEST(IntegrationTest, QaoaSolvesQuboFromDatabaseProblem) {
  // A tiny transaction-scheduling QUBO solved through the gate-model path
  // (QUBO → Ising → QAOA), not just the annealer.
  Qubo qubo(4);
  // Two txns × two slots: one-hot per txn + conflict on shared slots.
  const double penalty = 4.0;
  for (int t = 0; t < 2; ++t) {
    qubo.AddOffset(penalty);
    for (int s = 0; s < 2; ++s) qubo.AddLinear(2 * t + s, -penalty);
    qubo.AddQuadratic(2 * t, 2 * t + 1, 2.0 * penalty);
  }
  qubo.AddQuadratic(0, 2, penalty);  // Conflict in slot 0.
  qubo.AddQuadratic(1, 3, penalty);  // Conflict in slot 1.

  Qaoa qaoa(qubo.ToIsing(), /*layers=*/2);
  QaoaOptions opts;
  opts.restarts = 4;
  opts.seed = 7;
  opts.nelder_mead.max_iterations = 300;
  auto result = qaoa.Optimize(opts);
  ASSERT_TRUE(result.ok());
  // Best sampled solution: each transaction in its own slot → energy 0.
  EXPECT_NEAR(result.value().best_energy, 0.0, 1e-9);
  std::vector<uint8_t> bits = SpinsToBits(result.value().best_spins);
  EXPECT_EQ(bits[0] + bits[1], 1);
  EXPECT_EQ(bits[2] + bits[3], 1);
  EXPECT_NE(bits[0], bits[2]);  // Different slots.
}

TEST(IntegrationTest, QuantumKernelSvmGeneralizes) {
  // E3 end-to-end: train/test split, ZZ kernel, precomputed SVM, held-out
  // accuracy must beat chance clearly on circles data.
  Rng rng(5);
  Dataset all = MakeCircles(60, 0.08, 0.5, rng);
  auto [train, test] = TrainTestSplit(all, 0.3, rng);
  MinMaxScale(train, test, 0.0, M_PI);  // Fit scale on train first...
  MinMaxScale(train, train, 0.0, M_PI);

  FidelityQuantumKernel kernel = MakeZZFeatureMapKernel(1);
  auto gram = kernel.GramMatrix(train.features);
  ASSERT_TRUE(gram.ok());
  SvmOptions opts;
  opts.kernel = SvmKernel::kPrecomputed;
  opts.c = 20.0;
  auto svm = Svm::Train(train, opts, &gram.value());
  ASSERT_TRUE(svm.ok());

  auto cross = kernel.CrossMatrix(test.features, train.features);
  ASSERT_TRUE(cross.ok());
  std::vector<int> preds;
  for (size_t i = 0; i < test.size(); ++i) {
    DVector row(train.size());
    for (size_t j = 0; j < train.size(); ++j) {
      row[j] = cross.value()(i, j).real();
    }
    preds.push_back(svm.value().PredictFromKernelRow(row));
  }
  EXPECT_GE(Accuracy(test.labels, preds), 0.7);
}

TEST(IntegrationTest, VqcGeneralizesToHeldOutMoons) {
  Rng rng(9);
  Dataset all = MakeMoons(40, 0.1, rng);
  auto [train, test] = TrainTestSplit(all, 0.25, rng);
  MinMaxScale(train, test, 0.0, M_PI);
  MinMaxScale(train, train, 0.0, M_PI);
  VqcOptions opts;
  opts.encoding = VqcEncoding::kReuploading;
  opts.ansatz_layers = 2;
  opts.adam.max_iterations = 80;
  opts.adam.learning_rate = 0.15;
  auto model = VqcClassifier::Train(train, opts);
  ASSERT_TRUE(model.ok());
  std::vector<int> preds;
  for (const auto& x : test.features) {
    auto p = model.value().Predict(x);
    ASSERT_TRUE(p.ok());
    preds.push_back(p.value());
  }
  EXPECT_GE(Accuracy(test.labels, preds), 0.7);
}

TEST(IntegrationTest, SqaMatchesSaOnMaxCutQuality) {
  // E12 sanity: both annealers should reach the same (optimal) cut on a
  // moderate instance; the interesting differences are in time-to-solution,
  // measured by the bench, not here.
  Rng rng(13);
  WeightedGraph g = ErdosRenyiGraph(12, 0.4, rng);
  IsingModel ising = MaxCutIsing(g);
  SaOptions sa_opts;
  sa_opts.num_sweeps = 1500;
  sa_opts.num_restarts = 3;
  auto sa = SimulatedAnnealing(ising, sa_opts);
  SqaOptions sqa_opts;
  sqa_opts.num_sweeps = 800;
  sqa_opts.num_replicas = 16;
  sqa_opts.num_restarts = 2;
  auto sqa = SimulatedQuantumAnnealing(ising, sqa_opts);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sqa.ok());
  EXPECT_NEAR(sa.value().best_energy, sqa.value().best_energy, 1e-9);
}

TEST(IntegrationTest, MitigatedNoisyReadoutPipeline) {
  // Full NISQ pipeline: noisy gates (ZNE) + noisy readout (confusion
  // inversion), each mitigation attacking its own error source.
  Circuit bell(2);
  bell.H(0).CX(0, 1);
  PauliSum zz(2);
  zz.Add(1.0, "ZZ");

  // Gate noise → ZNE.
  auto noise = NoiseModel::Depolarizing(0.005, 0.01);
  ASSERT_TRUE(noise.ok());
  DensitySimulator noisy_sim(noise.value());
  auto zne = ZeroNoiseExtrapolate(bell, zz, noisy_sim);
  ASSERT_TRUE(zne.ok());
  EXPECT_LT(std::abs(zne.value().mitigated - 1.0),
            std::abs(zne.value().unmitigated - 1.0));

  // Readout noise → confusion inversion on sampled counts.
  auto rho = noisy_sim.Run(bell);
  ASSERT_TRUE(rho.ok());
  Rng rng(3);
  auto counts = rho.value().SampleCounts(rng, 20000, /*readout_flip=*/0.08);
  auto mitigator = ReadoutMitigator::Create(2, 0.08, 0.08);
  ASSERT_TRUE(mitigator.ok());
  auto z0_raw = [&] {
    long acc = 0, total = 0;
    for (const auto& [outcome, count] : counts) {
      acc += (outcome & 0b10) ? -count : count;
      total += count;
    }
    return static_cast<double>(acc) / total;
  }();
  auto z0_mitigated = mitigator.value().MitigatedExpectationZ(counts, 0);
  ASSERT_TRUE(z0_mitigated.ok());
  // Bell state: ⟨Z0⟩ = 0; both estimates should be near 0, the mitigated
  // one at least as close despite the flips.
  EXPECT_LT(std::abs(z0_mitigated.value()), std::abs(z0_raw) + 0.02);
}

TEST(IntegrationTest, ShotEstimatedQaoaEnergyTracksExact) {
  // Hardware-realistic readout of a QAOA energy: grouped shot estimation
  // against the exact expectation.
  WeightedGraph ring = RingGraph(4);
  IsingModel ising = MaxCutIsing(ring);
  Qaoa qaoa(ising, 1);
  const DVector params = {0.4, 0.7};
  StateVectorSimulator sim;
  auto state = sim.Run(qaoa.circuit(), params);
  ASSERT_TRUE(state.ok());
  PauliSum cost = ising.ToPauliSum();
  const double exact = Expectation(state.value(), cost);
  Rng rng(7);
  auto sampled =
      EstimateExpectationGrouped(state.value(), cost, 20000, rng);
  ASSERT_TRUE(sampled.ok());
  EXPECT_NEAR(sampled.value().value, exact,
              5.0 * sampled.value().standard_error + 0.05);
}

TEST(IntegrationTest, GreedyVsDpVsAnnealerOrdering) {
  // Cost-ordering sanity across all three join-order solvers on stars.
  Rng rng(17);
  auto g = RandomQuery(QueryShape::kStar, 7, rng);
  ASSERT_TRUE(g.ok());
  auto dp = OptimalLeftDeepPlan(g.value());
  auto greedy = GreedyLeftDeepPlan(g.value());
  ASSERT_TRUE(dp.ok());
  ASSERT_TRUE(greedy.ok());

  auto enc = JoinOrderQubo::Create(g.value());
  ASSERT_TRUE(enc.ok());
  SaOptions opts;
  opts.num_sweeps = 1000;
  opts.num_restarts = 4;
  auto annealed = SimulatedAnnealing(enc.value().qubo().ToIsing(), opts);
  ASSERT_TRUE(annealed.ok());
  const double qcost = CostOfLeftDeepOrder(
      g.value(), enc.value().Decode(SpinsToBits(annealed.value().best_spins)))
                           .value();
  EXPECT_GE(greedy.value().cost, dp.value().cost - 1e-9);
  EXPECT_GE(qcost, dp.value().cost - 1e-9);
}

}  // namespace
}  // namespace qdb
