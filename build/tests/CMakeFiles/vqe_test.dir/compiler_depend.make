# Empty compiler generated dependencies file for vqe_test.
# This may be replaced when dependencies are built.
