// Tests for the multi-query optimization QUBO.

#include <gtest/gtest.h>

#include "anneal/exhaustive.h"
#include "anneal/simulated_annealing.h"
#include "db/mqo.h"

namespace qdb {
namespace {

MqoInstance HandInstance() {
  // Two queries, two plans each; sharing makes (q0p1, q1p1) jointly best.
  MqoInstance instance;
  instance.plan_costs = {{10.0, 12.0}, {20.0, 21.0}};
  instance.sharings.push_back({0, 1, 1, 1, 8.0});
  return instance;
}

TEST(MqoInstanceTest, SelectionCostHandComputed) {
  MqoInstance inst = HandInstance();
  EXPECT_NEAR(inst.SelectionCost({0, 0}), 30.0, 1e-12);
  EXPECT_NEAR(inst.SelectionCost({1, 1}), 12.0 + 21.0 - 8.0, 1e-12);
  EXPECT_NEAR(inst.SelectionCost({1, 0}), 32.0, 1e-12);
}

TEST(MqoInstanceTest, RandomGeneratorShape) {
  Rng rng(5);
  MqoInstance inst = RandomMqoInstance(4, 3, 0.2, rng);
  EXPECT_EQ(inst.num_queries(), 4);
  for (const auto& costs : inst.plan_costs) {
    EXPECT_EQ(costs.size(), 3u);
    for (double c : costs) {
      EXPECT_GE(c, 10.0);
      EXPECT_LE(c, 100.0);
    }
  }
  for (const auto& s : inst.sharings) {
    EXPECT_NE(s.query1, s.query2);
    EXPECT_GT(s.saving, 0.0);
  }
}

TEST(MqoTest, ExhaustiveFindsSharingOptimum) {
  MqoInstance inst = HandInstance();
  auto best = MqoExhaustiveCost(inst);
  ASSERT_TRUE(best.ok());
  EXPECT_NEAR(best.value(), 25.0, 1e-12);
}

TEST(MqoTest, CheapestPlanBaselineIgnoresSharing) {
  MqoInstance inst = HandInstance();
  // Pure greedy: picks (0, 0) at cost 30 even though (1, 1) costs 25.
  EXPECT_NEAR(MqoCheapestPlanCost(inst), 30.0, 1e-12);
  EXPECT_GE(MqoCheapestPlanCost(inst), MqoGreedyCost(inst) - 1e-12);
}

TEST(MqoTest, GreedyMissesSharingButImprovesLocally) {
  MqoInstance inst = HandInstance();
  const double greedy = MqoGreedyCost(inst);
  // Greedy starts at cheapest-per-query (0,0)=30; local moves: switching
  // q1 alone: (0,1) = 31; switching q0 alone: (1,0) = 32 → stuck at 30.
  EXPECT_NEAR(greedy, 30.0, 1e-12);
  EXPECT_GE(greedy, MqoExhaustiveCost(inst).value());
}

TEST(MqoQuboTest, GroundStateMatchesExhaustive) {
  Rng rng(7);
  for (int trial = 0; trial < 3; ++trial) {
    MqoInstance inst = RandomMqoInstance(3, 3, 0.3, rng);
    auto qubo = MqoQubo::Create(inst);
    ASSERT_TRUE(qubo.ok());
    auto ground = ExhaustiveSolveQubo(qubo.value().qubo());
    ASSERT_TRUE(ground.ok());
    std::vector<int> selection =
        qubo.value().Decode(SpinsToBits(ground.value().best_spins));
    auto exact = MqoExhaustiveCost(inst);
    ASSERT_TRUE(exact.ok());
    EXPECT_NEAR(inst.SelectionCost(selection), exact.value(), 1e-6);
    // QUBO energy at the ground state equals the MQO objective (offsets
    // cancel the satisfied one-hot penalties).
    EXPECT_NEAR(ground.value().best_energy, exact.value(), 1e-6);
  }
}

TEST(MqoQuboTest, DecodeRepairsMissingSelections) {
  MqoInstance inst = HandInstance();
  auto qubo = MqoQubo::Create(inst).value();
  std::vector<uint8_t> zeros(4, 0);
  std::vector<int> selection = qubo.Decode(zeros);
  EXPECT_EQ(selection[0], 0);  // Cheapest plan of query 0.
  EXPECT_EQ(selection[1], 0);
  std::vector<uint8_t> both(4, 1);  // Conflicts everywhere.
  selection = qubo.Decode(both);
  EXPECT_EQ(selection[0], 0);
  EXPECT_EQ(selection[1], 0);
}

TEST(MqoQuboTest, AnnealingSolvesModerateInstance) {
  Rng rng(11);
  MqoInstance inst = RandomMqoInstance(5, 3, 0.2, rng);
  auto qubo = MqoQubo::Create(inst);
  ASSERT_TRUE(qubo.ok());
  SaOptions opts;
  opts.num_sweeps = 2000;
  opts.num_restarts = 6;
  auto annealed = SimulatedAnnealing(qubo.value().qubo().ToIsing(), opts);
  ASSERT_TRUE(annealed.ok());
  std::vector<int> selection =
      qubo.value().Decode(SpinsToBits(annealed.value().best_spins));
  auto exact = MqoExhaustiveCost(inst);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(inst.SelectionCost(selection), exact.value(),
              0.10 * exact.value());
}

TEST(MqoQuboTest, Validation) {
  MqoInstance empty;
  EXPECT_FALSE(MqoQubo::Create(empty).ok());
  MqoInstance no_plans;
  no_plans.plan_costs = {{}};
  EXPECT_FALSE(MqoQubo::Create(no_plans).ok());
  MqoInstance self_share = HandInstance();
  self_share.sharings.push_back({0, 0, 0, 1, 1.0});
  EXPECT_FALSE(MqoQubo::Create(self_share).ok());
}

TEST(MqoTest, ExhaustiveRejectsHugeInstances) {
  MqoInstance big;
  big.plan_costs.assign(25, DVector(4, 1.0));  // 4^25 combinations.
  EXPECT_FALSE(MqoExhaustiveCost(big).ok());
}

}  // namespace
}  // namespace qdb
