# Empty dependencies file for bench_counting.
# This may be replaced when dependencies are built.
