#include "autodiff/parameter_shift.h"

#include <cmath>

#include "common/strings.h"

namespace qdb {
namespace {

enum class ShiftRule { kTwoTerm, kFourTerm, kUnsupported };

ShiftRule RuleFor(GateType type) {
  switch (type) {
    case GateType::kRX:
    case GateType::kRY:
    case GateType::kRZ:
    case GateType::kRXX:
    case GateType::kRYY:
    case GateType::kRZZ:
    case GateType::kPhase:
    case GateType::kCPhase:
      return ShiftRule::kTwoTerm;
    case GateType::kCRX:
    case GateType::kCRY:
    case GateType::kCRZ:
      return ShiftRule::kFourTerm;
    default:
      return ShiftRule::kUnsupported;
  }
}

}  // namespace

Result<DVector> ParameterShiftGradient(const ExpectationFunction& f,
                                       const DVector& params) {
  const Circuit& circuit = f.circuit();
  DVector grad(std::max<size_t>(params.size(), circuit.num_parameters()), 0.0);
  const double kHalfPi = M_PI / 2.0;
  const double kThreeHalfPi = 3.0 * M_PI / 2.0;
  // Coefficients of the four-term rule for generator eigenvalues {0, ±1/2}.
  const double kFourTermA = (std::sqrt(2.0) + 2.0) / 8.0;
  const double kFourTermB = (std::sqrt(2.0) - 2.0) / 8.0;

  for (size_t gi = 0; gi < circuit.gates().size(); ++gi) {
    const Gate& gate = circuit.gates()[gi];
    for (size_t slot = 0; slot < gate.params.size(); ++slot) {
      const ParamExpr& expr = gate.params[slot];
      if (expr.is_constant() || expr.multiplier == 0.0) continue;
      const ShiftRule rule = RuleFor(gate.type);
      double dangle = 0.0;
      switch (rule) {
        case ShiftRule::kTwoTerm: {
          QDB_ASSIGN_OR_RETURN(double plus,
                               f.EvaluateWithShift(params, gi, slot, kHalfPi));
          QDB_ASSIGN_OR_RETURN(double minus,
                               f.EvaluateWithShift(params, gi, slot, -kHalfPi));
          dangle = (plus - minus) / 2.0;
          break;
        }
        case ShiftRule::kFourTerm: {
          QDB_ASSIGN_OR_RETURN(double p1,
                               f.EvaluateWithShift(params, gi, slot, kHalfPi));
          QDB_ASSIGN_OR_RETURN(double m1,
                               f.EvaluateWithShift(params, gi, slot, -kHalfPi));
          QDB_ASSIGN_OR_RETURN(
              double p2, f.EvaluateWithShift(params, gi, slot, kThreeHalfPi));
          QDB_ASSIGN_OR_RETURN(
              double m2, f.EvaluateWithShift(params, gi, slot, -kThreeHalfPi));
          dangle = kFourTermA * (p1 - m1) + kFourTermB * (p2 - m2);
          break;
        }
        case ShiftRule::kUnsupported:
          return Status::Unimplemented(
              StrCat("parameter-shift rule not implemented for gate '",
                     GateTypeName(gate.type),
                     "' with symbolic parameters; bind it or use "
                     "FiniteDifferenceGradient"));
      }
      grad[expr.index] += expr.multiplier * dangle;
    }
  }
  return grad;
}

Result<DVector> FiniteDifferenceGradient(const ExpectationFunction& f,
                                         const DVector& params,
                                         double epsilon) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  DVector grad(params.size(), 0.0);
  DVector work = params;
  for (size_t k = 0; k < params.size(); ++k) {
    work[k] = params[k] + epsilon;
    QDB_ASSIGN_OR_RETURN(double plus, f.Evaluate(work));
    work[k] = params[k] - epsilon;
    QDB_ASSIGN_OR_RETURN(double minus, f.Evaluate(work));
    work[k] = params[k];
    grad[k] = (plus - minus) / (2.0 * epsilon);
  }
  return grad;
}

}  // namespace qdb
