/// \file kernels.h
/// \brief Range-based amplitude kernels over structure-of-arrays planes.
///
/// Every kernel operates on two raw double planes (re, im) holding the real
/// and imaginary amplitude components, over an *absolute* index subrange —
/// pair indices for dense 1Q, group indices for dense 2Q, element indices
/// for diagonals and reductions. Absolute ranges make the same kernel
/// serve three callers:
///   * StateVector methods chunking the full state across the ThreadPool,
///   * CompiledCircuit's cache-blocked executor applying a run of fused ops
///     block by block so the working set stays L2-resident,
///   * tests sweeping subranges directly.
///
/// ## Bit-identity contract
///
/// For any fixed subrange, the scalar and AVX2 implementations produce
/// bit-identical planes and bit-identical reduction values. Gate kernels
/// are element-independent, so it suffices that both paths use the same
/// products and the same left-to-right summation order per element (the
/// kernel TUs are built with -ffp-contract=off, and the AVX2 path uses only
/// mul/add/sub/div — never FMA — so neither path contracts).
///
/// Reductions additionally fix the *accumulation order* with a 4-lane
/// protocol shared by both paths: lane[(i - begin) & 3] accumulates element
/// i's value (0.0 for predicated-out elements — exact, since all summands
/// are non-negative), and the result is (l0 + l1) + (l2 + l3). The scalar
/// path keeps four named accumulators; the AVX2 path keeps them as the four
/// lanes of one vector register. Same lanes, same order, same bits.
///
/// Matrix entries arrive as interleaved {re, im} scalars so the complex
/// formulas below match the historical std::complex fast path exactly for
/// finite values: (a*b).re = ar*br - ai*bi, (a*b).im = ar*bi + ai*br, and
/// row updates sum left to right.

#ifndef QDB_SIM_KERNELS_H_
#define QDB_SIM_KERNELS_H_

#include <cstdint>

#include "sim/simd.h"

namespace qdb {
namespace simd {

// ---- Dense single-qubit -----------------------------------------------------

/// Applies the 2x2 unitary m = {m00r,m00i, m01r,m01i, m10r,m10i, m11r,m11i}
/// to amplitude pairs p in [pb, pe), where pair p addresses
/// i0 = ((p & ~(stride-1)) << 1) | (p & (stride-1)) and i1 = i0 + stride.
void Apply1QRange(SimdLevel level, double* re, double* im, uint64_t pb,
                  uint64_t pe, uint64_t stride, const double* m);

/// Apply1QRange restricted to pairs whose control bit is set:
/// acts only where (i0 & cmask) != 0.
void Controlled1QRange(SimdLevel level, double* re, double* im, uint64_t pb,
                       uint64_t pe, uint64_t stride, uint64_t cmask,
                       const double* m);

// ---- Diagonals --------------------------------------------------------------

/// a[i] *= (i & mask) ? d1 : d0 over elements [b, e);
/// d = {d0r, d0i, d1r, d1i}.
void Diag1QRange(SimdLevel level, double* re, double* im, uint64_t b,
                 uint64_t e, uint64_t mask, const double* d);

/// a[i] *= d[((i & amask) ? 2 : 0) | ((i & bmask) ? 1 : 0)] over [b, e);
/// d = {d0r, d0i, d1r, d1i, d2r, d2i, d3r, d3i}.
void Diag2QRange(SimdLevel level, double* re, double* im, uint64_t b,
                 uint64_t e, uint64_t amask, uint64_t bmask, const double* d);

// ---- Dense two-qubit --------------------------------------------------------

/// Applies the 4x4 unitary (split planes mr/mi) to amplitude groups
/// g in [gb, ge). Group g expands to its representative index
/// i = (g & lo_keep) | ((g & mid_keep) << 1) | ((g & ~(lo_keep|mid_keep)) << 2)
/// and touches {i, i|bmask, i|amask, i|amask|bmask} (a = high operand bit).
void Apply2QRange(SimdLevel level, double* re, double* im, uint64_t gb,
                  uint64_t ge, uint64_t amask, uint64_t bmask, uint64_t lo_keep,
                  uint64_t mid_keep, const double (*mr)[4],
                  const double (*mi)[4]);

// ---- Probability / norm reductions -----------------------------------------

/// out[i] = re[i]^2 + im[i]^2 for i in [b, e).
void NormsRange(SimdLevel level, const double* re, const double* im, uint64_t b,
                uint64_t e, double* out);

/// Σ_{i in [b,e)} re[i]^2 + im[i]^2, 4-lane accumulation protocol.
double NormSqRange(SimdLevel level, const double* re, const double* im,
                   uint64_t b, uint64_t e);

/// Σ over i in [b,e) with (i & mask) == mask of re[i]^2 + im[i]^2,
/// 4-lane accumulation protocol (masked-out elements contribute +0.0).
double MaskedNormSqRange(SimdLevel level, const double* re, const double* im,
                         uint64_t b, uint64_t e, uint64_t mask);

/// Measurement collapse fused with norm accumulation: zeroes every element
/// with (i & mask) != keep and returns Σ re^2 + im^2 over the kept branch
/// (4-lane protocol; rejected elements contribute +0.0).
double CollapseRange(SimdLevel level, double* re, double* im, uint64_t b,
                     uint64_t e, uint64_t mask, uint64_t keep);

/// re[i] /= divisor, im[i] /= divisor over [b, e). Division (not
/// reciprocal-multiply): IEEE division is correctly rounded, so scalar and
/// AVX2 agree bit for bit.
void DivRange(SimdLevel level, double* re, double* im, uint64_t b, uint64_t e,
              double divisor);

// ---- Per-level implementations (dispatch targets; exposed for tests) -------

void Apply1QRangeScalar(double* re, double* im, uint64_t pb, uint64_t pe,
                        uint64_t stride, const double* m);
void Controlled1QRangeScalar(double* re, double* im, uint64_t pb, uint64_t pe,
                             uint64_t stride, uint64_t cmask, const double* m);
void Diag1QRangeScalar(double* re, double* im, uint64_t b, uint64_t e,
                       uint64_t mask, const double* d);
void Diag2QRangeScalar(double* re, double* im, uint64_t b, uint64_t e,
                       uint64_t amask, uint64_t bmask, const double* d);
void Apply2QRangeScalar(double* re, double* im, uint64_t gb, uint64_t ge,
                        uint64_t amask, uint64_t bmask, uint64_t lo_keep,
                        uint64_t mid_keep, const double (*mr)[4],
                        const double (*mi)[4]);
void NormsRangeScalar(const double* re, const double* im, uint64_t b,
                      uint64_t e, double* out);
double NormSqRangeScalar(const double* re, const double* im, uint64_t b,
                         uint64_t e);
double MaskedNormSqRangeScalar(const double* re, const double* im, uint64_t b,
                               uint64_t e, uint64_t mask);
double CollapseRangeScalar(double* re, double* im, uint64_t b, uint64_t e,
                           uint64_t mask, uint64_t keep);
void DivRangeScalar(double* re, double* im, uint64_t b, uint64_t e,
                    double divisor);

void Apply1QRangeAvx2(double* re, double* im, uint64_t pb, uint64_t pe,
                      uint64_t stride, const double* m);
void Controlled1QRangeAvx2(double* re, double* im, uint64_t pb, uint64_t pe,
                           uint64_t stride, uint64_t cmask, const double* m);
void Diag1QRangeAvx2(double* re, double* im, uint64_t b, uint64_t e,
                     uint64_t mask, const double* d);
void Diag2QRangeAvx2(double* re, double* im, uint64_t b, uint64_t e,
                     uint64_t amask, uint64_t bmask, const double* d);
void Apply2QRangeAvx2(double* re, double* im, uint64_t gb, uint64_t ge,
                      uint64_t amask, uint64_t bmask, uint64_t lo_keep,
                      uint64_t mid_keep, const double (*mr)[4],
                      const double (*mi)[4]);
void NormsRangeAvx2(const double* re, const double* im, uint64_t b, uint64_t e,
                    double* out);
double NormSqRangeAvx2(const double* re, const double* im, uint64_t b,
                       uint64_t e);
double MaskedNormSqRangeAvx2(const double* re, const double* im, uint64_t b,
                             uint64_t e, uint64_t mask);
double CollapseRangeAvx2(double* re, double* im, uint64_t b, uint64_t e,
                         uint64_t mask, uint64_t keep);
void DivRangeAvx2(double* re, double* im, uint64_t b, uint64_t e,
                  double divisor);

}  // namespace simd
}  // namespace qdb

#endif  // QDB_SIM_KERNELS_H_
