/// \file types.h
/// \brief Shared scalar/vector typedefs and numeric tolerances for qdb.

#ifndef QDB_LINALG_TYPES_H_
#define QDB_LINALG_TYPES_H_

#include <complex>
#include <vector>

namespace qdb {

/// Complex amplitude scalar used throughout the simulators.
using Complex = std::complex<double>;

/// Dense complex vector (e.g. a quantum state's amplitudes).
using CVector = std::vector<Complex>;

/// Dense real vector (parameters, features, energies).
using DVector = std::vector<double>;

/// Default absolute tolerance for numeric comparisons of amplitudes,
/// unitarity residues, and eigenvalues.
inline constexpr double kDefaultTol = 1e-10;

/// Looser tolerance for iteratively computed quantities (eigensolver,
/// optimizer convergence).
inline constexpr double kLooseTol = 1e-8;

/// The imaginary unit.
inline constexpr Complex kI = Complex(0.0, 1.0);

}  // namespace qdb

#endif  // QDB_LINALG_TYPES_H_
