/// \file rng.h
/// \brief Deterministic pseudo-random number generation (xoshiro256**).
///
/// Every stochastic component of qdb takes an explicit 64-bit seed and
/// derives its randomness from this generator, so all experiments and tests
/// are reproducible bit-for-bit across runs on the same platform.

#ifndef QDB_COMMON_RNG_H_
#define QDB_COMMON_RNG_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace qdb {

/// \brief xoshiro256** generator (Blackman & Vigna), seeded via SplitMix64.
///
/// Satisfies the UniformRandomBitGenerator concept so it can drive
/// std::shuffle, but the canonical sampling helpers below avoid libstdc++
/// distribution objects whose streams differ across versions.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four 64-bit lanes by iterating SplitMix64 over `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Returns the next 64 random bits.
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// Returns a double uniform in [0, 1) with 53 bits of precision.
  double Uniform();

  /// Returns a double uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns an integer uniform in [0, n) using Lemire rejection; n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Returns an integer uniform in [lo, hi] inclusive; lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a standard normal sample (Box–Muller; caches the pair).
  double Normal();

  /// Returns a normal sample with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Returns true with probability p (p clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns `count` uniform doubles in [lo, hi).
  std::vector<double> UniformVector(size_t count, double lo, double hi);

  /// Fisher–Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Draws an index in [0, weights.size()) with probability proportional to
  /// weights[i]; weights must be non-negative with a positive sum.
  size_t Categorical(const std::vector<double>& weights);

  /// Spawns an independent generator seeded from this one's stream; use to
  /// give parallel or repeated sub-tasks decorrelated randomness.
  Rng Split();

 private:
  std::array<uint64_t, 4> state_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace qdb

#endif  // QDB_COMMON_RNG_H_
