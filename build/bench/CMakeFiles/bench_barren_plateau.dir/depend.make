# Empty dependencies file for bench_barren_plateau.
# This may be replaced when dependencies are built.
