#include "ops/ising.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "ops/qubo.h"

namespace qdb {

IsingModel::IsingModel(int num_spins)
    : fields_(static_cast<size_t>(num_spins), 0.0),
      adjacency_(static_cast<size_t>(num_spins)) {
  QDB_CHECK_GT(num_spins, 0);
}

void IsingModel::AddField(int i, double value) {
  QDB_CHECK_GE(i, 0);
  QDB_CHECK_LT(i, num_spins());
  fields_[i] += value;
}

void IsingModel::AddCoupling(int i, int j, double value) {
  QDB_CHECK_GE(i, 0);
  QDB_CHECK_LT(i, num_spins());
  QDB_CHECK_GE(j, 0);
  QDB_CHECK_LT(j, num_spins());
  QDB_CHECK_NE(i, j) << "Ising coupling needs distinct spins";
  if (i > j) std::swap(i, j);
  couplings_[{i, j}] += value;
  auto update = [value](std::vector<std::pair<int, double>>& list, int other) {
    for (auto& [n, w] : list) {
      if (n == other) {
        w += value;
        return true;
      }
    }
    return false;
  };
  if (!update(adjacency_[i], j)) adjacency_[i].push_back({j, value});
  if (!update(adjacency_[j], i)) adjacency_[j].push_back({i, value});
}

void IsingModel::AddOffset(double value) { offset_ += value; }

double IsingModel::field(int i) const {
  QDB_CHECK_GE(i, 0);
  QDB_CHECK_LT(i, num_spins());
  return fields_[i];
}

double IsingModel::Energy(const std::vector<int8_t>& spins) const {
  QDB_CHECK_EQ(static_cast<int>(spins.size()), num_spins());
  double e = offset_;
  for (int i = 0; i < num_spins(); ++i) e += fields_[i] * spins[i];
  for (const auto& [ij, v] : couplings_) {
    e += v * spins[ij.first] * spins[ij.second];
  }
  return e;
}

double IsingModel::FlipDelta(const std::vector<int8_t>& spins, int i) const {
  QDB_CHECK_EQ(static_cast<int>(spins.size()), num_spins());
  QDB_CHECK_GE(i, 0);
  QDB_CHECK_LT(i, num_spins());
  double local = fields_[i];
  for (const auto& [j, w] : adjacency_[i]) local += w * spins[j];
  return -2.0 * spins[i] * local;
}

const std::vector<std::pair<int, double>>& IsingModel::Neighbors(int i) const {
  QDB_CHECK_GE(i, 0);
  QDB_CHECK_LT(i, num_spins());
  return adjacency_[i];
}

Qubo IsingModel::ToQubo() const {
  // Substitute s_i = 2 x_i − 1.
  Qubo qubo(num_spins());
  qubo.AddOffset(offset_);
  for (int i = 0; i < num_spins(); ++i) {
    if (fields_[i] != 0.0) {
      qubo.AddLinear(i, 2.0 * fields_[i]);
      qubo.AddOffset(-fields_[i]);
    }
  }
  for (const auto& [ij, v] : couplings_) {
    if (v == 0.0) continue;
    qubo.AddQuadratic(ij.first, ij.second, 4.0 * v);
    qubo.AddLinear(ij.first, -2.0 * v);
    qubo.AddLinear(ij.second, -2.0 * v);
    qubo.AddOffset(v);
  }
  return qubo;
}

PauliSum IsingModel::ToPauliSum() const {
  PauliSum sum(num_spins());
  if (offset_ != 0.0) sum.Add(offset_, PauliString(num_spins()));
  for (int i = 0; i < num_spins(); ++i) {
    if (fields_[i] != 0.0) {
      sum.Add(fields_[i], PauliString::Single(num_spins(), i, PauliOp::kZ));
    }
  }
  for (const auto& [ij, v] : couplings_) {
    if (v == 0.0) continue;
    PauliString zz(num_spins());
    zz.set_op(ij.first, PauliOp::kZ);
    zz.set_op(ij.second, PauliOp::kZ);
    sum.Add(v, zz);
  }
  return sum;
}

double IsingModel::MaxAbsCoefficient() const {
  double best = 0.0;
  for (double h : fields_) best = std::max(best, std::abs(h));
  for (const auto& [ij, v] : couplings_) best = std::max(best, std::abs(v));
  return best;
}

std::string IsingModel::ToString() const {
  std::ostringstream os;
  os << "Ising(" << num_spins() << " spins, offset " << offset_ << ")\n";
  for (int i = 0; i < num_spins(); ++i) {
    if (fields_[i] != 0.0) os << "  " << fields_[i] << " s" << i << "\n";
  }
  for (const auto& [ij, v] : couplings_) {
    if (v != 0.0)
      os << "  " << v << " s" << ij.first << " s" << ij.second << "\n";
  }
  return os.str();
}

std::vector<int8_t> IndexToSpins(uint64_t index, int num_spins) {
  QDB_CHECK_GT(num_spins, 0);
  std::vector<int8_t> spins(num_spins);
  for (int q = 0; q < num_spins; ++q) {
    const bool bit = index & (uint64_t{1} << (num_spins - 1 - q));
    spins[q] = bit ? -1 : 1;  // |0⟩ has Z eigenvalue +1.
  }
  return spins;
}

std::vector<uint8_t> SpinsToBits(const std::vector<int8_t>& spins) {
  std::vector<uint8_t> bits(spins.size());
  for (size_t i = 0; i < spins.size(); ++i) {
    QDB_CHECK(spins[i] == 1 || spins[i] == -1);
    bits[i] = spins[i] > 0 ? 1 : 0;
  }
  return bits;
}

std::vector<int8_t> BitsToSpins(const std::vector<uint8_t>& bits) {
  std::vector<int8_t> spins(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    QDB_CHECK(bits[i] == 0 || bits[i] == 1);
    spins[i] = bits[i] ? 1 : -1;
  }
  return spins;
}

}  // namespace qdb
