#include "ops/graph_hamiltonians.h"

#include <algorithm>

#include "common/check.h"

namespace qdb {

double WeightedGraph::CutValue(const std::vector<int8_t>& assignment) const {
  QDB_CHECK_EQ(static_cast<int>(assignment.size()), num_nodes);
  double cut = 0.0;
  for (const auto& e : edges) {
    if (assignment[e.u] != assignment[e.v]) cut += e.weight;
  }
  return cut;
}

double WeightedGraph::TotalWeight() const {
  double total = 0.0;
  for (const auto& e : edges) total += e.weight;
  return total;
}

WeightedGraph ErdosRenyiGraph(int num_nodes, double edge_probability, Rng& rng,
                              double min_weight, double max_weight) {
  QDB_CHECK_GT(num_nodes, 0);
  QDB_CHECK_GE(edge_probability, 0.0);
  QDB_CHECK_LE(edge_probability, 1.0);
  QDB_CHECK_LE(min_weight, max_weight);
  WeightedGraph g;
  g.num_nodes = num_nodes;
  for (int u = 0; u < num_nodes; ++u) {
    for (int v = u + 1; v < num_nodes; ++v) {
      if (rng.Bernoulli(edge_probability)) {
        double w = min_weight == max_weight ? min_weight
                                            : rng.Uniform(min_weight, max_weight);
        g.edges.push_back({u, v, w});
      }
    }
  }
  return g;
}

WeightedGraph RingGraph(int num_nodes) {
  QDB_CHECK_GE(num_nodes, 3);
  WeightedGraph g;
  g.num_nodes = num_nodes;
  for (int u = 0; u < num_nodes; ++u) {
    g.edges.push_back({u, (u + 1) % num_nodes, 1.0});
  }
  return g;
}

WeightedGraph CompleteGraph(int num_nodes) {
  QDB_CHECK_GT(num_nodes, 0);
  WeightedGraph g;
  g.num_nodes = num_nodes;
  for (int u = 0; u < num_nodes; ++u) {
    for (int v = u + 1; v < num_nodes; ++v) g.edges.push_back({u, v, 1.0});
  }
  return g;
}

IsingModel MaxCutIsing(const WeightedGraph& graph) {
  QDB_CHECK_GT(graph.num_nodes, 0);
  IsingModel ising(graph.num_nodes);
  for (const auto& e : graph.edges) {
    // s_u·s_v = −1 exactly when the edge is cut, so minimizing Σ w·s_u·s_v
    // maximizes the cut: cut(s) = (TotalWeight − Energy(s)) / 2.
    ising.AddCoupling(e.u, e.v, e.weight);
  }
  return ising;
}

double MaxCutBruteForce(const WeightedGraph& graph) {
  QDB_CHECK_LE(graph.num_nodes, 24);
  const uint64_t half = uint64_t{1} << (graph.num_nodes - 1);
  double best = 0.0;
  std::vector<int8_t> assignment(graph.num_nodes);
  // Fix node 0 in partition +1 (cut is symmetric under global flip).
  for (uint64_t mask = 0; mask < half; ++mask) {
    assignment[0] = 1;
    for (int v = 1; v < graph.num_nodes; ++v) {
      assignment[v] = (mask >> (v - 1)) & 1 ? -1 : 1;
    }
    best = std::max(best, graph.CutValue(assignment));
  }
  return best;
}

double MaxCutGreedy(const WeightedGraph& graph) {
  std::vector<int8_t> assignment(graph.num_nodes, 1);
  double current = graph.CutValue(assignment);
  bool improved = true;
  while (improved) {
    improved = false;
    int best_node = -1;
    double best_value = current;
    for (int v = 0; v < graph.num_nodes; ++v) {
      assignment[v] = -assignment[v];
      double value = graph.CutValue(assignment);
      assignment[v] = -assignment[v];
      if (value > best_value + 1e-12) {
        best_value = value;
        best_node = v;
      }
    }
    if (best_node >= 0) {
      assignment[best_node] = -assignment[best_node];
      current = best_value;
      improved = true;
    }
  }
  return current;
}

}  // namespace qdb
