# Empty dependencies file for bench_gradients.
# This may be replaced when dependencies are built.
