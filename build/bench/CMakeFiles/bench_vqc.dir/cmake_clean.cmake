file(REMOVE_RECURSE
  "CMakeFiles/bench_vqc.dir/bench_vqc.cc.o"
  "CMakeFiles/bench_vqc.dir/bench_vqc.cc.o.d"
  "bench_vqc"
  "bench_vqc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vqc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
