#include "obs/slo.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"
#include "obs/labels.h"
#include "obs/metrics.h"

namespace qdb {
namespace obs {

namespace {

constexpr long kBucketsPerWindow = 60;

GaugeFamily* BurnRateFamily() {
  static GaugeFamily* family = MetricsRegistry::Global().GetGaugeFamily(
      "slo.burn_rate", {"model", "window"});
  return family;
}

GaugeFamily* ErrorRateFamily() {
  static GaugeFamily* family = MetricsRegistry::Global().GetGaugeFamily(
      "slo.error_rate", {"model", "window"});
  return family;
}

GaugeFamily* BreachedFamily() {
  static GaugeFamily* family =
      MetricsRegistry::Global().GetGaugeFamily("slo.breached", {"model"});
  return family;
}

std::string WindowLabel(long window_s) { return StrCat(window_s, "s"); }

}  // namespace

SloTracker::SloTracker(SloObjective default_objective,
                       std::vector<long> windows_s)
    : default_objective_(default_objective), windows_s_(std::move(windows_s)) {
  QDB_CHECK(!windows_s_.empty()) << "SloTracker needs at least one window";
  for (size_t i = 0; i < windows_s_.size(); ++i) {
    QDB_CHECK(windows_s_[i] > 0);
    if (i > 0) {
      QDB_CHECK(windows_s_[i - 1] < windows_s_[i])
          << "windows must be strictly increasing";
    }
  }
}

void SloTracker::SetObjective(const std::string& model,
                              SloObjective objective) {
  std::lock_guard<std::mutex> lock(mu_);
  ModelState& state = StateLocked(model);
  state.objective = objective;
  state.objective_set = true;
}

SloTracker::ModelState& SloTracker::StateLocked(const std::string& model) {
  auto it = models_.find(model);
  if (it != models_.end()) return it->second;
  ModelState state;
  state.objective = default_objective_;
  for (long window_s : windows_s_) {
    WindowRing ring;
    ring.window_s = window_s;
    ring.bucket_s = std::max<long>(1, window_s / kBucketsPerWindow);
    const size_t slots =
        static_cast<size_t>((window_s + ring.bucket_s - 1) / ring.bucket_s);
    ring.total.assign(slots, 0);
    ring.errors.assign(slots, 0);
    ring.slow.assign(slots, 0);
    ring.bucket_index.assign(slots, -1);
    state.rings.push_back(std::move(ring));
  }
  return models_.emplace(model, std::move(state)).first->second;
}

void SloTracker::RecordInRing(WindowRing& ring, int64_t now_us, bool error,
                              bool slow) {
  const int64_t bucket = now_us / (static_cast<int64_t>(ring.bucket_s) * 1000000);
  const size_t slot = static_cast<size_t>(bucket % ring.total.size());
  if (ring.bucket_index[slot] != bucket) {
    // The slot last held an aged-out bucket; recycle it.
    ring.bucket_index[slot] = bucket;
    ring.total[slot] = 0;
    ring.errors[slot] = 0;
    ring.slow[slot] = 0;
  }
  ++ring.total[slot];
  if (error) ++ring.errors[slot];
  if (slow) ++ring.slow[slot];
}

void SloTracker::Record(const std::string& model, long latency_us, bool ok,
                        int64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  ModelState& state = StateLocked(model);
  const bool slow = state.objective.latency_threshold_us > 0 &&
                    latency_us > state.objective.latency_threshold_us;
  for (WindowRing& ring : state.rings) {
    RecordInRing(ring, now_us, !ok, slow);
  }
}

SloWindowStatus SloTracker::SummarizeRing(const WindowRing& ring,
                                          int64_t now_us,
                                          const SloObjective& objective) {
  SloWindowStatus status;
  status.window_s = ring.window_s;
  const int64_t bucket_us = static_cast<int64_t>(ring.bucket_s) * 1000000;
  const int64_t now_bucket = now_us / bucket_us;
  const int64_t oldest =
      now_bucket - static_cast<int64_t>(ring.total.size()) + 1;
  for (size_t slot = 0; slot < ring.total.size(); ++slot) {
    const int64_t bucket = ring.bucket_index[slot];
    if (bucket < oldest || bucket > now_bucket) continue;  // Aged out.
    status.total += ring.total[slot];
    status.errors += ring.errors[slot];
    status.slow += ring.slow[slot];
  }
  if (status.total > 0) {
    status.error_rate =
        static_cast<double>(status.errors) / static_cast<double>(status.total);
    status.slow_rate =
        static_cast<double>(status.slow) / static_cast<double>(status.total);
    const double budget = std::max(1e-9, 1.0 - objective.availability);
    const double bad_rate = objective.latency_threshold_us > 0
                                ? std::max(status.error_rate, status.slow_rate)
                                : status.error_rate;
    status.burn_rate = bad_rate / budget;
  }
  return status;
}

SloModelStatus SloTracker::StatusLocked(const std::string& model,
                                        const ModelState& state,
                                        int64_t now_us) const {
  SloModelStatus status;
  status.model = model;
  status.objective = state.objective;
  bool any_samples = false;
  bool all_burning = true;
  for (const WindowRing& ring : state.rings) {
    SloWindowStatus window =
        SummarizeRing(ring, now_us, state.objective);
    if (window.total > 0) {
      any_samples = true;
      if (window.burn_rate < 1.0) all_burning = false;
    }
    status.windows.push_back(window);
  }
  status.breached = any_samples && all_burning;
  return status;
}

std::vector<SloModelStatus> SloTracker::Report(int64_t now_us) const {
  std::vector<SloModelStatus> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(models_.size());
    for (const auto& [model, state] : models_) {
      out.push_back(StatusLocked(model, state, now_us));
    }
  }
  for (const SloModelStatus& model : out) {
    for (const SloWindowStatus& window : model.windows) {
      const std::string label = WindowLabel(window.window_s);
      BurnRateFamily()->With(model.model, label)->Set(window.burn_rate);
      ErrorRateFamily()->With(model.model, label)->Set(window.error_rate);
    }
    BreachedFamily()->With(model.model)->Set(model.breached ? 1.0 : 0.0);
  }
  return out;
}

SloModelStatus SloTracker::ReportModel(const std::string& model,
                                       int64_t now_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(model);
  if (it == models_.end()) {
    SloModelStatus status;
    status.model = model;
    status.objective = default_objective_;
    return status;
  }
  return StatusLocked(model, it->second, now_us);
}

void SloTracker::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  models_.clear();
}

}  // namespace obs
}  // namespace qdb
