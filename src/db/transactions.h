/// \file transactions.h
/// \brief Conflict-aware transaction scheduling as QUBO (after
/// Bittner & Groppe, E9): assign transactions to execution slots so that
/// conflicting transactions never share a slot, preferring early slots
/// (a makespan proxy).

#ifndef QDB_DB_TRANSACTIONS_H_
#define QDB_DB_TRANSACTIONS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "ops/qubo.h"

namespace qdb {

/// \brief A scheduling instance: `num_transactions` transactions, pairwise
/// conflicts (e.g. overlapping write sets), `num_slots` sequential slots.
struct TxnScheduleInstance {
  int num_transactions = 0;
  int num_slots = 0;
  std::vector<std::pair<int, int>> conflicts;  ///< Unordered pairs.

  bool Conflicts(int t1, int t2) const;

  /// Number of conflicting pairs co-scheduled by `slots` (slots[t] ∈
  /// [0, num_slots)); 0 means the schedule is serializable as given.
  int ConflictViolations(const std::vector<int>& slots) const;

  /// Makespan: highest used slot index + 1.
  int Makespan(const std::vector<int>& slots) const;
};

/// \brief Random instance: each transaction pair conflicts with probability
/// `conflict_probability`.
TxnScheduleInstance RandomTxnInstance(int num_transactions, int num_slots,
                                      double conflict_probability, Rng& rng);

/// \brief QUBO over T·S variables x_{t,s}: one-hot per transaction,
/// `conflict` penalty per conflicting pair sharing a slot, and a small
/// linear preference s·w for early slots.
class TxnScheduleQubo {
 public:
  static Result<TxnScheduleQubo> Create(const TxnScheduleInstance& instance,
                                        double penalty_weight = -1.0);

  const Qubo& qubo() const { return qubo_; }
  int VarIndex(int transaction, int slot) const;

  /// Decodes into slots[t]; missing/multiple assignments are repaired to
  /// the first slot with no conflicts (or the least-conflicting slot).
  std::vector<int> Decode(const std::vector<uint8_t>& bits) const;

 private:
  TxnScheduleQubo(TxnScheduleInstance instance, Qubo qubo)
      : instance_(std::move(instance)), qubo_(std::move(qubo)) {}

  TxnScheduleInstance instance_;
  Qubo qubo_;
};

/// \brief Greedy first-fit baseline: transactions in index order take the
/// first conflict-free slot (falls back to the last slot when none fits —
/// violations then count against it).
std::vector<int> GreedyFirstFitSchedule(const TxnScheduleInstance& instance);

}  // namespace qdb

#endif  // QDB_DB_TRANSACTIONS_H_
