// Tests for the matrix-product-state simulator against the exact
// state-vector simulator.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "sim/mps.h"
#include "sim/statevector_simulator.h"

namespace qdb {
namespace {

Circuit RandomTwoLocalCircuit(int n, int gates, Rng& rng) {
  Circuit c(n);
  for (int g = 0; g < gates; ++g) {
    const int q = static_cast<int>(rng.UniformInt(uint64_t(n)));
    int q2 = static_cast<int>(rng.UniformInt(uint64_t(n - 1)));
    if (q2 >= q) ++q2;
    const double angle = rng.Uniform(-3.0, 3.0);
    switch (rng.UniformInt(uint64_t{9})) {
      case 0: c.H(q); break;
      case 1: c.RX(q, angle); break;
      case 2: c.RY(q, angle); break;
      case 3: c.T(q); break;
      case 4: c.CX(q, q2); break;
      case 5: c.CZ(q, q2); break;
      case 6: c.RZZ(q, q2, angle); break;
      case 7: c.CRY(q, q2, angle); break;
      default: c.Swap(q, q2); break;
    }
  }
  return c;
}

TEST(MpsTest, InitialStateIsAllZeros) {
  MpsState mps(4);
  EXPECT_NEAR(std::abs(mps.Amplitude(0) - Complex(1, 0)), 0.0, 1e-12);
  for (uint64_t i = 1; i < 16; ++i) {
    EXPECT_NEAR(std::abs(mps.Amplitude(i)), 0.0, 1e-12);
  }
  EXPECT_NEAR(mps.NormSquared(), 1.0, 1e-12);
  EXPECT_EQ(mps.MaxBondDimension(), 1);
}

TEST(MpsTest, SingleQubitGates) {
  MpsState mps(2);
  mps.Apply1Q(0, GateMatrix(GateType::kH, {}));
  EXPECT_NEAR(mps.Amplitude(0b00).real(), 1 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(mps.Amplitude(0b10).real(), 1 / std::sqrt(2.0), 1e-12);
  EXPECT_EQ(mps.MaxBondDimension(), 1);  // Product states stay χ = 1.
}

TEST(MpsTest, BellStateViaAdjacentCx) {
  MpsState mps(2);
  mps.Apply1Q(0, GateMatrix(GateType::kH, {}));
  ASSERT_TRUE(mps.Apply2QAdjacent(0, GateMatrix(GateType::kCX, {})).ok());
  EXPECT_NEAR(std::norm(mps.Amplitude(0b00)), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(mps.Amplitude(0b11)), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(mps.Amplitude(0b01)), 0.0, 1e-12);
  EXPECT_EQ(mps.MaxBondDimension(), 2);  // One ebit: χ = 2.
  EXPECT_EQ(mps.truncation_weight(), 0.0);
}

TEST(MpsTest, GhzAcrossLongChain) {
  const int n = 12;
  Circuit c(n);
  c.H(0);
  for (int q = 0; q + 1 < n; ++q) c.CX(q, q + 1);
  MpsSimulator sim({/*max_bond=*/4, 1e-12});
  auto mps = sim.Run(c);
  ASSERT_TRUE(mps.ok());
  EXPECT_NEAR(std::norm(mps.value().Amplitude(0)), 0.5, 1e-10);
  EXPECT_NEAR(std::norm(mps.value().Amplitude((uint64_t{1} << n) - 1)), 0.5,
              1e-10);
  EXPECT_EQ(mps.value().MaxBondDimension(), 2);  // GHZ is χ = 2 everywhere.
  EXPECT_EQ(mps.value().truncation_weight(), 0.0);
}

class MpsEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MpsEquivalenceTest, UntruncatedMatchesStateVector) {
  // Property: with a generous bond limit, MPS simulation reproduces the
  // exact amplitudes of arbitrary circuits, including non-adjacent gates.
  Rng rng(GetParam());
  const int n = 5;
  Circuit c = RandomTwoLocalCircuit(n, 30, rng);
  StateVectorSimulator exact_sim;
  auto exact = exact_sim.Run(c);
  ASSERT_TRUE(exact.ok());
  MpsSimulator mps_sim({/*max_bond=*/64, 1e-13});
  auto mps = mps_sim.Run(c);
  ASSERT_TRUE(mps.ok()) << mps.status();
  EXPECT_EQ(mps.value().truncation_weight(), 0.0);
  auto amps = mps.value().ToAmplitudes();
  ASSERT_TRUE(amps.ok());
  for (uint64_t i = 0; i < exact.value().dim(); ++i) {
    EXPECT_NEAR(std::abs(amps.value()[i] - exact.value().amplitude(i)), 0.0,
                1e-8)
        << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MpsEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(MpsTest, NonAdjacentGateRoutingRestoresOrder) {
  // CX(0, 3) on |1000⟩ must give |1001⟩ — and leave the other sites alone.
  MpsState mps(4);
  mps.Apply1Q(0, GateMatrix(GateType::kX, {}));
  Gate cx{GateType::kCX, {0, 3}, {}};
  ASSERT_TRUE(mps.ApplyGate(cx, {}).ok());
  EXPECT_NEAR(std::norm(mps.Amplitude(0b1001)), 1.0, 1e-10);
}

TEST(MpsTest, ReversedOperandOrder) {
  // CX(3, 0): control below target in site order.
  MpsState mps(4);
  mps.Apply1Q(3, GateMatrix(GateType::kX, {}));
  Gate cx{GateType::kCX, {3, 0}, {}};
  ASSERT_TRUE(mps.ApplyGate(cx, {}).ok());
  EXPECT_NEAR(std::norm(mps.Amplitude(0b1001)), 1.0, 1e-10);
}

TEST(MpsTest, TruncationDegradesGracefully) {
  // A volume-law random circuit at χ = 2 loses fidelity but keeps a valid
  // (sub-normalized) state, with the loss showing up in the norm.
  Rng rng(31);
  Circuit c = RandomTwoLocalCircuit(6, 40, rng);
  MpsSimulator tight({/*max_bond=*/2, 1e-12});
  auto mps = tight.Run(c);
  ASSERT_TRUE(mps.ok());
  EXPECT_GT(mps.value().truncation_weight(), 0.0);
  EXPECT_LT(mps.value().NormSquared(), 1.0 + 1e-9);
  EXPECT_GT(mps.value().NormSquared(), 0.0);
}

TEST(MpsTest, LargeChainBeyondStateVectorReach) {
  // 48 qubits: far beyond the 2^n simulator, trivial for MPS on a
  // low-entanglement circuit.
  const int n = 48;
  Circuit c(n);
  for (int q = 0; q < n; ++q) c.RY(q, 0.3 + 0.01 * q);
  for (int q = 0; q + 1 < n; ++q) c.CZ(q, q + 1);
  MpsSimulator sim({/*max_bond=*/8, 1e-12});
  auto mps = sim.Run(c);
  ASSERT_TRUE(mps.ok());
  EXPECT_NEAR(mps.value().NormSquared(), 1.0, 1e-9);
  EXPECT_LE(mps.value().MaxBondDimension(), 8);
  // Amplitude of |0…0⟩ = Π cos(θ_q/2) for the RY layer... after CZ phases
  // (which act trivially on the |0⟩ component): still the product.
  double expected = 1.0;
  for (int q = 0; q < n; ++q) expected *= std::cos((0.3 + 0.01 * q) / 2);
  EXPECT_NEAR(mps.value().Amplitude(0).real(), expected, 1e-9);
}

TEST(MpsTest, ThreeQubitGatesUnimplemented) {
  MpsState mps(3);
  Gate ccx{GateType::kCCX, {0, 1, 2}, {}};
  auto status = mps.ApplyGate(ccx, {});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnimplemented);
}

TEST(MpsTest, ParameterizedCircuitThroughSimulator) {
  Circuit c(3);
  c.RY(0, ParamExpr::Variable(0)).CX(0, 1).RZZ(1, 2, ParamExpr::Variable(1));
  MpsSimulator sim;
  EXPECT_FALSE(sim.Run(c, {0.5}).ok());  // Too few parameters.
  auto mps = sim.Run(c, {0.5, 1.1});
  ASSERT_TRUE(mps.ok());
  StateVectorSimulator exact;
  auto sv = exact.Run(c, {0.5, 1.1});
  ASSERT_TRUE(sv.ok());
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(std::abs(mps.value().Amplitude(i) - sv.value().amplitude(i)),
                0.0, 1e-9);
  }
}

}  // namespace
}  // namespace qdb
