#!/usr/bin/env bash
# Benchmark snapshot: runs the simulator-stack benchmarks that exercise the
# ThreadPool (E1 simulator, E3 quantum kernel, E4 gradients) plus the E18
# inference-serving and E19 observability-overhead suites, and writes one
# JSON file per suite at the repo root, for before/after comparison across
# PRs and QDB_THREADS settings:
#
#   ./scripts/bench_snapshot.sh                 # default pool width
#   QDB_THREADS=1 ./scripts/bench_snapshot.sh   # serial baseline
#
# Output: BENCH_simulator.json, BENCH_qkernel.json, BENCH_gradients.json,
#         BENCH_serve.json, BENCH_obs.json, BENCH_serve_scale.json,
#         BENCH_store.json (E21 storage tier).
#
# Snapshots must come from a Release (-O2, no sanitizers, NDEBUG) build —
# debug-build numbers are not comparable across PRs. The script refuses to
# record anything else; set QDB_BENCH_ALLOW_DEBUG=1 to override for local
# experiments (the output is then tagged so it cannot be mistaken for a
# trustworthy snapshot).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . -DQDB_BUILD_BENCHMARKS=ON -DCMAKE_BUILD_TYPE=Release \
  >/dev/null
build_type=$(grep -E '^CMAKE_BUILD_TYPE:' build/CMakeCache.txt |
  cut -d= -f2)
if [[ "${build_type}" != "Release" ]]; then
  if [[ "${QDB_BENCH_ALLOW_DEBUG:-0}" != "1" ]]; then
    echo "ERROR: build/ is configured as '${build_type:-unset}', not Release." >&2
    echo "Benchmark snapshots from non-Release builds are not comparable;" >&2
    echo "reconfigure with -DCMAKE_BUILD_TYPE=Release (or set" >&2
    echo "QDB_BENCH_ALLOW_DEBUG=1 to record a tagged, untrusted snapshot)." >&2
    exit 1
  fi
  echo "WARNING: recording from a '${build_type}' build; snapshots will be" >&2
  echo "tagged UNTRUSTED-${build_type} and must not be checked in." >&2
  tag="UNTRUSTED-${build_type}-"
else
  tag=""
fi

cmake --build build -j --target bench_simulator --target bench_qkernel \
  --target bench_gradients --target bench_serve --target bench_obs \
  --target bench_serve_scale --target bench_store

for suite in simulator qkernel gradients serve obs serve_scale store; do
  out="${tag}BENCH_${suite}.json"
  echo "== bench_${suite} -> ${out} =="
  "./build/bench/bench_${suite}" \
    --benchmark_format=json \
    --benchmark_out="${out}" \
    --benchmark_out_format=json
  # google-benchmark's context.library_build_type describes how the
  # *installed benchmark library* was compiled, not this repo. Stamp the
  # verified qdb build type so provenance survives in the snapshot itself.
  python3 - "${out}" "${build_type}" << 'PYEOF'
import json, sys
path, build_type = sys.argv[1], sys.argv[2]
with open(path) as f:
    doc = json.load(f)
doc.setdefault("context", {})["qdb_build_type"] = build_type
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
PYEOF
done

echo
echo "snapshot written: ${tag}BENCH_simulator.json ${tag}BENCH_qkernel.json ${tag}BENCH_gradients.json ${tag}BENCH_serve.json ${tag}BENCH_obs.json ${tag}BENCH_serve_scale.json ${tag}BENCH_store.json"
