// E12 — SA vs SQA (vs tabu) time-to-solution on hard spin glasses.
//
// Regenerates the thermal-vs-quantum annealing comparison of figure 2A:
// probability of reaching the exact ground state within a fixed sweep
// budget, on random ±J spin glasses and on tall-barrier ferromagnetic
// instances crafted so thermal hops are expensive but multi-spin
// (replica-coordinated) moves are cheap. Expected shape: on barrier
// instances SQA reaches the ground state with fewer sweeps than SA (the
// tunneling analogue); on unstructured glasses the two are comparable.

#include <benchmark/benchmark.h>

#include "anneal/exhaustive.h"
#include "anneal/parallel_tempering.h"
#include "anneal/quantum_annealing.h"
#include "anneal/simulated_annealing.h"
#include "anneal/tabu.h"
#include "common/rng.h"

namespace qdb {
namespace {

IsingModel RandomPmJGlass(int n, uint64_t seed) {
  Rng rng(seed);
  IsingModel m(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(0.6)) {
        m.AddCoupling(i, j, rng.Bernoulli(0.5) ? 1.0 : -1.0);
      }
    }
  }
  return m;
}

/// Two strongly-coupled ferromagnetic clusters with a weak frustrated link
/// and biased fields: the optimum needs one whole cluster flipped, a move
/// requiring a coordinated multi-spin transition (a "tunneling" event).
IsingModel BarrierInstance(int cluster_size) {
  const int n = 2 * cluster_size;
  IsingModel m(n);
  for (int c = 0; c < 2; ++c) {
    const int base = c * cluster_size;
    for (int i = 0; i < cluster_size; ++i) {
      for (int j = i + 1; j < cluster_size; ++j) {
        m.AddCoupling(base + i, base + j, -3.0);  // Rigid clusters.
      }
    }
  }
  // Antiferromagnetic bridge + fields pulling both clusters up, so the
  // (up, down) ground state opposes the field on one whole cluster —
  // reachable from (up, up) only through a coordinated multi-spin flip.
  m.AddCoupling(0, cluster_size, 2.0);
  for (int i = 0; i < n; ++i) m.AddField(i, -0.15);
  return m;
}

double GroundProbabilitySa(const IsingModel& model, double ground, int sweeps,
                           int trials) {
  int hits = 0;
  for (int t = 0; t < trials; ++t) {
    SaOptions opts;
    opts.num_sweeps = sweeps;
    opts.num_restarts = 1;
    opts.seed = 1000 + t;
    auto result = SimulatedAnnealing(model, opts);
    if (result.ok() && result.value().best_energy <= ground + 1e-9) ++hits;
  }
  return static_cast<double>(hits) / trials;
}

double GroundProbabilitySqa(const IsingModel& model, double ground, int sweeps,
                            int trials, bool global_moves) {
  int hits = 0;
  for (int t = 0; t < trials; ++t) {
    SqaOptions opts;
    opts.num_sweeps = sweeps;
    opts.num_replicas = 16;
    opts.num_restarts = 1;
    opts.seed = 2000 + t;
    opts.global_moves = global_moves;
    auto result = SimulatedQuantumAnnealing(model, opts);
    if (result.ok() && result.value().best_energy <= ground + 1e-9) ++hits;
  }
  return static_cast<double>(hits) / trials;
}

double GroundProbabilityPt(const IsingModel& model, double ground, int sweeps,
                           int trials) {
  int hits = 0;
  for (int t = 0; t < trials; ++t) {
    PtOptions opts;
    opts.num_sweeps = sweeps;
    opts.seed = 4000 + t;
    auto result = ParallelTempering(model, opts);
    if (result.ok() && result.value().best_energy <= ground + 1e-9) ++hits;
  }
  return static_cast<double>(hits) / trials;
}

void BM_AnnealersOnSpinGlass(benchmark::State& state) {
  const int sweeps = static_cast<int>(state.range(0));
  IsingModel model = RandomPmJGlass(14, 51);
  const double ground = ExhaustiveSolve(model).ValueOrDie().best_energy;
  const int trials = 20;
  double p_sa = 0.0, p_sqa = 0.0, p_pt = 0.0;
  for (auto _ : state) {
    p_sa = GroundProbabilitySa(model, ground, sweeps, trials);
    p_sqa = GroundProbabilitySqa(model, ground, sweeps, trials, true);
    p_pt = GroundProbabilityPt(model, ground, sweeps, trials);
  }
  state.SetLabel("pmJ-glass n=14");
  state.counters["sweeps"] = sweeps;
  state.counters["p_ground_sa"] = p_sa;
  state.counters["p_ground_sqa"] = p_sqa;
  state.counters["p_ground_pt"] = p_pt;
}

BENCHMARK(BM_AnnealersOnSpinGlass)
    ->Arg(3)
    ->Arg(10)
    ->Arg(30)
    ->Arg(100)
    ->Arg(300)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

void BM_AnnealersOnBarrier(benchmark::State& state) {
  const int sweeps = static_cast<int>(state.range(0));
  IsingModel model = BarrierInstance(6);
  const double ground = ExhaustiveSolve(model).ValueOrDie().best_energy;
  const int trials = 20;
  double p_sa = 0.0, p_sqa = 0.0, p_pt = 0.0;
  for (auto _ : state) {
    p_sa = GroundProbabilitySa(model, ground, sweeps, trials);
    p_sqa = GroundProbabilitySqa(model, ground, sweeps, trials, true);
    p_pt = GroundProbabilityPt(model, ground, sweeps, trials);
  }
  state.SetLabel("barrier clusters 2x6");
  state.counters["sweeps"] = sweeps;
  state.counters["p_ground_sa"] = p_sa;
  state.counters["p_ground_sqa"] = p_sqa;
  state.counters["p_ground_pt"] = p_pt;
}

BENCHMARK(BM_AnnealersOnBarrier)
    ->Arg(3)
    ->Arg(10)
    ->Arg(30)
    ->Arg(100)
    ->Arg(300)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

void BM_SqaGlobalMoveAblation(benchmark::State& state) {
  // Ablation called out in DESIGN.md: SQA with vs without the
  // replica-coordinated global moves on the barrier instance.
  const bool global_moves = state.range(0) != 0;
  IsingModel model = BarrierInstance(6);
  const double ground = ExhaustiveSolve(model).ValueOrDie().best_energy;
  double p = 0.0;
  for (auto _ : state) {
    p = GroundProbabilitySqa(model, ground, 100, 20, global_moves);
  }
  state.SetLabel(global_moves ? "with-global-moves" : "local-only");
  state.counters["p_ground"] = p;
}

BENCHMARK(BM_SqaGlobalMoveAblation)
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

void BM_TabuBaselineOnGlass(benchmark::State& state) {
  const int iterations = static_cast<int>(state.range(0));
  IsingModel model = RandomPmJGlass(14, 51);
  const double ground = ExhaustiveSolve(model).ValueOrDie().best_energy;
  const int trials = 20;
  double p = 0.0;
  for (auto _ : state) {
    int hits = 0;
    for (int t = 0; t < trials; ++t) {
      TabuOptions opts;
      opts.max_iterations = iterations;
      opts.num_restarts = 1;
      opts.seed = 3000 + t;
      auto result = TabuSearch(model, opts);
      if (result.ok() && result.value().best_energy <= ground + 1e-9) ++hits;
    }
    p = static_cast<double>(hits) / trials;
  }
  state.SetLabel("tabu");
  state.counters["iterations"] = iterations;
  state.counters["p_ground"] = p;
}

BENCHMARK(BM_TabuBaselineOnGlass)
    ->Arg(50)
    ->Arg(200)
    ->Arg(1000)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace
}  // namespace qdb

BENCHMARK_MAIN();
