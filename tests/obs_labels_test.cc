// Tests for dimensional metrics (obs/labels.h): labeled families, the
// cardinality cap and overflow routing, export rendering, Histogram::Merge,
// registry Reset, and concurrent first-touch behaviour (run under TSan in
// scripts/tier1.sh).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "obs/labels.h"
#include "obs/metrics.h"

namespace qdb {
namespace obs {
namespace {

TEST(LabeledFamilyTest, DistinctLabelSetsGetDistinctChildren) {
  LabeledFamily<Counter> family(
      "test.family", {"model", "outcome"}, 8,
      [] { return std::make_unique<Counter>(); });
  Counter* a_ok = family.With("a", "ok");
  Counter* a_err = family.With("a", "err");
  Counter* b_ok = family.With("b", "ok");
  EXPECT_NE(a_ok, a_err);
  EXPECT_NE(a_ok, b_ok);
  EXPECT_EQ(family.cardinality(), 3u);
  // Same tuple → same stable pointer.
  EXPECT_EQ(family.With("a", "ok"), a_ok);
  EXPECT_EQ(family.cardinality(), 3u);
  a_ok->Increment(5);
  EXPECT_EQ(family.With("a", "ok")->Value(), 5);
  EXPECT_EQ(family.With("a", "err")->Value(), 0);
}

TEST(LabeledFamilyTest, ValueJoinCannotCollideAcrossPositions) {
  LabeledFamily<Counter> family(
      "test.join", {"k1", "k2"}, 8,
      [] { return std::make_unique<Counter>(); });
  // ("ab", "c") and ("a", "bc") must be distinct children.
  Counter* first = family.With("ab", "c");
  Counter* second = family.With("a", "bc");
  EXPECT_NE(first, second);
  EXPECT_EQ(family.cardinality(), 2u);
}

TEST(LabeledFamilyTest, CardinalityCapRoutesToOverflowChild) {
  LabeledFamily<Counter> family(
      "test.capped", {"id"}, 2, [] { return std::make_unique<Counter>(); });
  Counter* c0 = family.With("0");
  Counter* c1 = family.With("1");
  Counter* over_a = family.With("2");
  Counter* over_b = family.With("3");
  EXPECT_NE(c0, c1);
  EXPECT_EQ(over_a, over_b);  // Both beyond the cap share the overflow child.
  EXPECT_NE(over_a, c0);
  EXPECT_EQ(family.cardinality(), 2u);
  EXPECT_EQ(family.overflowed(), 2);
  // Established children stay reachable after the cap is hit.
  EXPECT_EQ(family.With("0"), c0);
  EXPECT_EQ(family.overflowed(), 2);

  const auto children = family.Children();
  ASSERT_EQ(children.size(), 3u);
  EXPECT_EQ(children.back().values,
            std::vector<std::string>{kOverflowLabelValue});
}

TEST(LabeledFamilyTest, RegistryExportsLabeledChildren) {
  auto& registry = MetricsRegistry::Global();
  CounterFamily* counters = registry.GetCounterFamily(
      "labels_test.requests", {"model", "outcome"});
  counters->With("m1", "ok")->Increment(3);
  counters->With("m1", "err")->Increment();
  HistogramFamily* latency = registry.GetHistogramFamily(
      "labels_test.latency_us", {"model"}, {10.0, 100.0, 1000.0});
  latency->With("m1")->Observe(50.0);

  const std::string text = registry.ExportText();
  EXPECT_NE(text.find("labels_test.requests{model=\"m1\",outcome=\"ok\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("labels_test.requests{model=\"m1\",outcome=\"err\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("labels_test.latency_us{model=\"m1\",le=\"100\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("labels_test.latency_us_count{model=\"m1\"} 1"),
            std::string::npos);

  const std::string json = registry.ExportJson();
  EXPECT_NE(json.find("\"families\""), std::string::npos);
  EXPECT_NE(json.find("\"labels_test.requests\""), std::string::npos);
  EXPECT_NE(json.find("\"keys\":[\"model\",\"outcome\"]"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"labels\":{\"model\":\"m1\",\"outcome\":\"ok\"},"
                      "\"value\":3"),
            std::string::npos)
      << json;
  // Histogram children export derived quantiles for dashboards.
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(LabeledFamilyTest, GetFamilyReturnsSameInstanceAndChecksNothingElse) {
  auto& registry = MetricsRegistry::Global();
  CounterFamily* first =
      registry.GetCounterFamily("labels_test.idempotent", {"k"});
  CounterFamily* second =
      registry.GetCounterFamily("labels_test.idempotent", {"ignored"});
  EXPECT_EQ(first, second);
  EXPECT_EQ(second->keys(), std::vector<std::string>{"k"});
}

TEST(LabeledFamilyTest, RegistryResetZeroesChildrenButKeepsPointers) {
  auto& registry = MetricsRegistry::Global();
  CounterFamily* family =
      registry.GetCounterFamily("labels_test.reset", {"k"}, 1);
  Counter* child = family->With("a");
  child->Increment(7);
  family->With("b");  // Overflow.
  EXPECT_EQ(family->overflowed(), 1);
  registry.Reset();
  EXPECT_EQ(child->Value(), 0);
  EXPECT_EQ(family->overflowed(), 0);
  EXPECT_EQ(family->With("a"), child);  // Pointer stability across Reset.
}

TEST(HistogramMergeTest, MergeAddsBucketsTotalAndSum) {
  Histogram a({10.0, 100.0});
  Histogram b({10.0, 100.0});
  a.Observe(5.0);
  a.Observe(50.0);
  b.Observe(50.0);
  b.Observe(500.0);
  a.Merge(b);
  EXPECT_EQ(a.TotalCount(), 4);
  EXPECT_EQ(a.CountInBucket(0), 1);  // <= 10
  EXPECT_EQ(a.CountInBucket(1), 2);  // <= 100
  EXPECT_EQ(a.CountInBucket(2), 1);  // overflow
  EXPECT_DOUBLE_EQ(a.Sum(), 605.0);
  // b is untouched.
  EXPECT_EQ(b.TotalCount(), 2);
}

TEST(LabeledFamilyConcurrencyTest, ConcurrentFirstTouchOfSameLabelSet) {
  LabeledFamily<Counter> family(
      "test.race.same", {"k"}, 8, [] { return std::make_unique<Counter>(); });
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  std::atomic<Counter*> seen{nullptr};
  std::atomic<bool> mismatch{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        Counter* c = family.With("shared");
        Counter* expected = nullptr;
        if (!seen.compare_exchange_strong(expected, c) && expected != c) {
          mismatch.store(true);
        }
        c->Increment();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(family.cardinality(), 1u);
  EXPECT_EQ(family.With("shared")->Value(), kThreads * kIters);
}

TEST(LabeledFamilyConcurrencyTest, ConcurrentDistinctSetsRespectTheCap) {
  constexpr size_t kCap = 16;
  constexpr int kThreads = 8;
  constexpr int kSetsPerThread = 32;
  LabeledFamily<Counter> family(
      "test.race.distinct", {"k"}, kCap,
      [] { return std::make_unique<Counter>(); });
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&family, t] {
      for (int i = 0; i < kSetsPerThread; ++i) {
        // Overlapping label universes across threads: some first-touch
        // races on the same set, some purely distinct sets.
        family.With(StrCat("set-", (t % 2), "-", i))->Increment();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(family.cardinality(), kCap);
  // 2 universes × 32 sets = 64 distinct tuples; 16 got children, every
  // lookup of the rest overflowed.
  EXPECT_GT(family.overflowed(), 0);
  const auto children = family.Children();
  EXPECT_EQ(children.size(), kCap + 1);  // + overflow child.
  long total = 0;
  for (const auto& child : children) total += child.metric->Value();
  EXPECT_EQ(total, static_cast<long>(kThreads) * kSetsPerThread);
}

}  // namespace
}  // namespace obs
}  // namespace qdb
