// Tests for the qdb::serve subsystem: artifact (de)serialization incl.
// corruption and version-mismatch paths, the model registry, servable
// correctness against the training-side implementations, micro-batching,
// admission control, deadlines, graceful drain, and the result cache.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "classical/dataset.h"
#include "classical/svm.h"
#include "common/rng.h"
#include "common/strings.h"
#include "fault/fault_injector.h"
#include "kernel/quantum_kernel.h"
#include "serve/inference_server.h"
#include "serve/model_artifact.h"
#include "serve/model_registry.h"
#include "serve/result_cache.h"
#include "serve/servable.h"
#include "sim/statevector_simulator.h"
#include "variational/ansatz.h"
#include "variational/vqc.h"
#include "variational/vqr.h"

namespace qdb {
namespace serve {
namespace {

// A hand-built angle-encoded classifier artifact (no training needed).
ModelArtifact TinyVqcArtifact(const std::string& name,
                              VqcEncoding encoding = VqcEncoding::kAngle) {
  ModelArtifact a;
  a.type = ModelType::kVqcClassifier;
  a.name = name;
  a.num_features = 2;
  a.encoding = encoding;
  a.ansatz_layers = 1;
  a.entanglement = Entanglement::kLinear;
  a.feature_scale = 0.8;
  const int count = encoding == VqcEncoding::kReuploading
                        ? 2 * a.ansatz_layers * a.num_features
                        : RealAmplitudesParamCount(a.num_features,
                                                   a.ansatz_layers);
  for (int i = 0; i < count; ++i) {
    a.params.push_back(0.3 + 0.17 * static_cast<double>(i));
  }
  return a;
}

std::string TempPath(const std::string& file) {
  return testing::TempDir() + "/" + file;
}

// ---- Artifact serialization -------------------------------------------------

TEST(ModelArtifactTest, VqcRoundTripIsExact) {
  ModelArtifact a = TinyVqcArtifact("roundtrip");
  a.version = 7;
  a.params[0] = M_PI / 3.0;  // Exercise a non-terminating decimal.
  a.circuit_fingerprint = ArtifactCircuitFingerprint(a);
  auto b = ModelArtifact::Deserialize(a.Serialize());
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(b.value().type, a.type);
  EXPECT_EQ(b.value().name, a.name);
  EXPECT_EQ(b.value().version, 7);
  EXPECT_EQ(b.value().num_features, a.num_features);
  EXPECT_EQ(b.value().encoding, a.encoding);
  EXPECT_EQ(b.value().ansatz_layers, a.ansatz_layers);
  EXPECT_EQ(b.value().entanglement, a.entanglement);
  EXPECT_EQ(b.value().feature_scale, a.feature_scale);
  EXPECT_EQ(b.value().circuit_fingerprint, a.circuit_fingerprint);
  ASSERT_EQ(b.value().params.size(), a.params.size());
  for (size_t i = 0; i < a.params.size(); ++i) {
    // %.17g round-trips doubles bit-exactly.
    EXPECT_EQ(b.value().params[i], a.params[i]) << i;
  }
}

TEST(ModelArtifactTest, KernelSvmRoundTripIsExact) {
  ModelArtifact a;
  a.type = ModelType::kKernelSvm;
  a.name = "svm with spaces in name";
  a.num_features = 2;
  a.kernel_encoding = KernelEncodingKind::kZZFeatureMap;
  a.kernel_scale = 1.5;
  a.kernel_reps = 3;
  a.bias = -0.125;
  a.support_vectors.push_back({0.5, {0.1, 0.2}});
  a.support_vectors.push_back({-1.0 / 3.0, {M_PI, 2.0}});
  auto b = ModelArtifact::Deserialize(a.Serialize());
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(b.value().name, a.name);
  EXPECT_EQ(b.value().kernel_encoding, a.kernel_encoding);
  EXPECT_EQ(b.value().kernel_reps, 3);
  EXPECT_EQ(b.value().bias, a.bias);
  ASSERT_EQ(b.value().support_vectors.size(), 2u);
  EXPECT_EQ(b.value().support_vectors[1].coeff, -1.0 / 3.0);
  EXPECT_EQ(b.value().support_vectors[1].features[0], M_PI);
}

TEST(ModelArtifactTest, QuboConfigRoundTrip) {
  ModelArtifact a = MakeQuboConfigArtifact(
      {{"solver", "parallel_tempering"}, {"sweeps", "2000"}, {"seed", "17"}},
      "join-order-solver");
  auto b = ModelArtifact::Deserialize(a.Serialize());
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(b.value().type, ModelType::kQuboConfig);
  ASSERT_EQ(b.value().config.size(), 3u);
  EXPECT_EQ(b.value().config[0].first, "solver");
  EXPECT_EQ(b.value().config[0].second, "parallel_tempering");
  EXPECT_EQ(b.value().config[2].second, "17");
}

TEST(ModelArtifactTest, FileRoundTrip) {
  ModelArtifact a = TinyVqcArtifact("file-model");
  const std::string path = TempPath("qdb_serve_file_roundtrip.model");
  ASSERT_TRUE(a.SaveToFile(path).ok());
  auto b = ModelArtifact::LoadFromFile(path);
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(b.value().name, "file-model");
  EXPECT_EQ(b.value().params, a.params);
}

TEST(ModelArtifactTest, CorruptedFileIsRejected) {
  ModelArtifact a = TinyVqcArtifact("corrupt-me");
  std::string text = a.Serialize();
  // Flip the layer count: the checksum must catch the edit.
  const size_t pos = text.find("ansatz_layers 1");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 14] = '2';
  auto b = ModelArtifact::Deserialize(text);
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(b.status().message().find("checksum"), std::string::npos)
      << b.status();
}

TEST(ModelArtifactTest, TruncatedFileIsRejected) {
  ModelArtifact a = TinyVqcArtifact("truncate-me");
  std::string text = a.Serialize();
  auto b = ModelArtifact::Deserialize(text.substr(0, text.size() / 2));
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kInvalidArgument);
}

TEST(ModelArtifactTest, BadMagicIsRejected) {
  std::string body = "not-a-model format 1\nend\n";
  std::string text = body + "checksum " +
                     StrFormat("%016llx", static_cast<unsigned long long>(
                                              Fnv1a64(body))) +
                     "\n";
  auto b = ModelArtifact::Deserialize(text);
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(b.status().message().find("magic"), std::string::npos);
}

TEST(ModelArtifactTest, FutureFormatVersionIsRejected) {
  // A structurally valid file from "format 99": checksum passes, the
  // version gate must reject it.
  std::string body = "qdb-model-artifact format 99\ntype vqc\nend\n";
  std::string text = body + "checksum " +
                     StrFormat("%016llx", static_cast<unsigned long long>(
                                              Fnv1a64(body))) +
                     "\n";
  auto b = ModelArtifact::Deserialize(text);
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kUnimplemented);
  EXPECT_NE(b.status().message().find("format"), std::string::npos);
}

TEST(ModelArtifactTest, MissingFileIsNotFound) {
  auto b = ModelArtifact::LoadFromFile(TempPath("does_not_exist.model"));
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kNotFound);
}

// ---- Servable correctness ---------------------------------------------------

TEST(ServableTest, SymbolicCircuitMatchesBoundCircuit) {
  // The compiled symbolic-feature program must agree with the bound
  // (training-style) construction for every encoding that supports it.
  for (VqcEncoding encoding :
       {VqcEncoding::kAngle, VqcEncoding::kReuploading}) {
    ModelArtifact a = TinyVqcArtifact("symbolic", encoding);
    auto symbolic = BuildSymbolicInferenceCircuit(a);
    ASSERT_TRUE(symbolic.ok()) << symbolic.status();
    StateVectorSimulator sim;
    const DVector x = {0.7, 2.1};
    auto bound = BuildBoundInferenceCircuit(a, x);
    ASSERT_TRUE(bound.ok()) << bound.status();
    auto sym_state = sim.Run(symbolic.value(), x);
    auto bound_state = sim.Run(bound.value());
    ASSERT_TRUE(sym_state.ok() && bound_state.ok());
    EXPECT_NEAR(ExpectationZ(sym_state.value(), 0),
                ExpectationZ(bound_state.value(), 0), 1e-12)
        << "encoding " << static_cast<int>(encoding);
  }
}

TEST(ServableTest, ZzEncodingHasNoSymbolicCircuit) {
  ModelArtifact a = TinyVqcArtifact("zz", VqcEncoding::kZZFeatureMap);
  auto symbolic = BuildSymbolicInferenceCircuit(a);
  ASSERT_FALSE(symbolic.ok());
  // ...but it is still servable through the per-request bind path.
  auto servable = ServableModel::Create(a);
  ASSERT_TRUE(servable.ok()) << servable.status();
  auto out = servable.value()->RunBatch(RequestKind::kPredict, {{0.4, 1.3}});
  ASSERT_TRUE(out.ok()) << out.status();
  StateVectorSimulator sim;
  auto state = sim.Run(BuildBoundInferenceCircuit(a, {0.4, 1.3}).value());
  ASSERT_TRUE(state.ok());
  EXPECT_NEAR(out.value()[0].value, ExpectationZ(state.value(), 0), 1e-12);
}

TEST(ServableTest, ServedVqcMatchesTrainedModel) {
  Rng rng(11);
  Dataset data = MakeBlobs(12, 2, 3.0, 0.4, rng);
  MinMaxScale(data, data, 0.0, M_PI);
  VqcOptions opts;
  opts.ansatz_layers = 1;
  opts.adam.max_iterations = 5;
  auto model = VqcClassifier::Train(data, opts);
  ASSERT_TRUE(model.ok()) << model.status();

  auto servable =
      ServableModel::Create(MakeVqcArtifact(model.value(), "blobs"));
  ASSERT_TRUE(servable.ok()) << servable.status();
  auto out =
      servable.value()->RunBatch(RequestKind::kPredict, data.features);
  ASSERT_TRUE(out.ok()) << out.status();
  for (size_t i = 0; i < data.features.size(); ++i) {
    auto score = model.value().Score(data.features[i]);
    ASSERT_TRUE(score.ok());
    EXPECT_NEAR(out.value()[i].value, score.value(), 1e-9) << i;
    EXPECT_EQ(out.value()[i].label, score.value() < 0 ? -1 : 1) << i;
  }
}

TEST(ServableTest, ServedVqrMatchesTrainedModel) {
  std::vector<DVector> xs = {{0.1}, {0.9}, {1.7}, {2.5}};
  DVector ys = {-0.6, -0.2, 0.3, 0.7};
  VqrOptions opts;
  opts.ansatz_layers = 2;
  opts.adam.max_iterations = 5;
  auto model = VqrRegressor::Train(xs, ys, opts);
  ASSERT_TRUE(model.ok()) << model.status();

  auto servable =
      ServableModel::Create(MakeVqrArtifact(model.value(), "vqr"));
  ASSERT_TRUE(servable.ok()) << servable.status();
  auto out = servable.value()->RunBatch(RequestKind::kPredict, xs);
  ASSERT_TRUE(out.ok()) << out.status();
  for (size_t i = 0; i < xs.size(); ++i) {
    auto pred = model.value().Predict(xs[i]);
    ASSERT_TRUE(pred.ok());
    EXPECT_NEAR(out.value()[i].value, pred.value(), 1e-9) << i;
    EXPECT_EQ(out.value()[i].label, 0) << "regressors have no label";
  }
}

TEST(ServableTest, ServedKernelSvmMatchesDirectEvaluation) {
  Rng rng(13);
  Dataset data = MakeXor(8, 0.05, rng);
  MinMaxScale(data, data, 0.0, M_PI);
  FidelityQuantumKernel kernel = MakeAngleKernel();
  auto gram = kernel.GramMatrix(data.features);
  ASSERT_TRUE(gram.ok());
  SvmOptions svm_opts;
  svm_opts.kernel = SvmKernel::kPrecomputed;
  auto svm = Svm::Train(data, svm_opts, &gram.value());
  ASSERT_TRUE(svm.ok()) << svm.status();

  ModelArtifact artifact =
      MakeKernelSvmArtifact(svm.value(), data, KernelEncodingKind::kAngle,
                            /*kernel_scale=*/1.0, /*kernel_reps=*/2, "qsvm");
  auto servable = ServableModel::Create(artifact);
  ASSERT_TRUE(servable.ok()) << servable.status();

  const std::vector<DVector> queries = {{0.3, 2.8}, {2.9, 0.2}};
  auto out = servable.value()->RunBatch(RequestKind::kPredict, queries);
  ASSERT_TRUE(out.ok()) << out.status();
  auto cross = kernel.CrossMatrix(queries, data.features);
  ASSERT_TRUE(cross.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    DVector row(data.size());
    for (size_t j = 0; j < data.size(); ++j) {
      row[j] = cross.value()(i, j).real();
    }
    const double expect = svm.value().DecisionValueFromKernelRow(row);
    EXPECT_NEAR(out.value()[i].value, expect, 1e-9) << i;
  }

  // Kernel-row requests return the row against the support set only.
  auto rows = servable.value()->RunBatch(RequestKind::kKernelRow, queries);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value()[0].row.size(),
            servable.value()->artifact().support_vectors.size());
  for (double k : rows.value()[0].row) {
    EXPECT_GE(k, -1e-12);
    EXPECT_LE(k, 1.0 + 1e-12);
  }
}

TEST(ServableTest, FingerprintMismatchIsRejected) {
  ModelArtifact a = TinyVqcArtifact("wrong-ansatz");
  a.circuit_fingerprint = 0xdeadbeef;  // Not what this build produces.
  auto servable = ServableModel::Create(a);
  ASSERT_FALSE(servable.ok());
  EXPECT_EQ(servable.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ServableTest, WrongParameterCountIsRejected) {
  ModelArtifact a = TinyVqcArtifact("short-params");
  a.params.pop_back();
  auto servable = ServableModel::Create(a);
  ASSERT_FALSE(servable.ok());
  EXPECT_EQ(servable.status().code(), StatusCode::kInvalidArgument);
}

// ---- Registry ---------------------------------------------------------------

TEST(ModelRegistryTest, AssignsVersionsAndServesLatest) {
  ModelRegistry registry;
  auto v1 = registry.Register(TinyVqcArtifact("m"));
  ASSERT_TRUE(v1.ok()) << v1.status();
  EXPECT_EQ(v1.value()->version(), 1);
  ModelArtifact second = TinyVqcArtifact("m");
  second.params[0] += 0.5;
  auto v2 = registry.Register(second);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2.value()->version(), 2);

  auto latest = registry.Lookup("m");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value()->version(), 2);
  auto pinned = registry.Lookup("m", 1);
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(pinned.value()->version(), 1);
  EXPECT_EQ(registry.size(), 2u);

  // Explicit duplicate version is refused.
  ModelArtifact dup = TinyVqcArtifact("m");
  dup.version = 2;
  auto clash = registry.Register(dup);
  ASSERT_FALSE(clash.ok());
  EXPECT_EQ(clash.status().code(), StatusCode::kAlreadyExists);

  ASSERT_TRUE(registry.Evict("m", 1).ok());
  EXPECT_FALSE(registry.Lookup("m", 1).ok());
  EXPECT_TRUE(registry.Lookup("m").ok());
  ASSERT_TRUE(registry.Evict("m").ok());
  EXPECT_EQ(registry.Lookup("m").status().code(), StatusCode::kNotFound);
}

TEST(ModelRegistryTest, SaveAndLoadModel) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register(TinyVqcArtifact("persist")).ok());
  const std::string path = TempPath("qdb_serve_registry.model");
  ASSERT_TRUE(registry.SaveModel("persist", 1, path).ok());

  ModelRegistry fresh;
  auto loaded = fresh.LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value()->name(), "persist");
  EXPECT_EQ(loaded.value()->version(), 1);

  // Loading into the original registry again clashes on the version...
  auto clash = registry.LoadModel(path);
  ASSERT_FALSE(clash.ok());
  EXPECT_EQ(clash.status().code(), StatusCode::kAlreadyExists);
  // ...unless the caller asks for reassignment.
  auto reassigned = registry.LoadModel(path, /*reassign_version=*/true);
  ASSERT_TRUE(reassigned.ok()) << reassigned.status();
  EXPECT_EQ(reassigned.value()->version(), 2);
}

// ---- Result cache -----------------------------------------------------------

TEST(ResultCacheTest, LruEviction) {
  ResultCache cache(2);
  InferenceValue v;
  v.value = 1.0;
  cache.Insert("a", v);
  cache.Insert("b", v);
  ASSERT_TRUE(cache.Lookup("a").has_value());  // "a" is now most recent.
  cache.Insert("c", v);                        // Evicts "b".
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_FALSE(cache.Lookup("b").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.size, 2u);
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCache cache(0);
  InferenceValue v;
  cache.Insert("a", v);
  EXPECT_FALSE(cache.Lookup("a").has_value());
}

TEST(ResultCacheTest, KeyIsBitExact) {
  const std::string k1 = ResultCache::MakeKey("m", 1, RequestKind::kPredict,
                                              {0.1, 0.2});
  const std::string k2 = ResultCache::MakeKey("m", 1, RequestKind::kPredict,
                                              {0.1, 0.2000000000000001});
  const std::string k3 = ResultCache::MakeKey("m", 2, RequestKind::kPredict,
                                              {0.1, 0.2});
  EXPECT_NE(k1, k2);
  EXPECT_NE(k1, k3);
}

// ---- Inference server -------------------------------------------------------

class InferenceServerTest : public ::testing::Test {
 protected:
  void RegisterTiny(const std::string& name) {
    auto servable = registry_.Register(TinyVqcArtifact(name));
    ASSERT_TRUE(servable.ok()) << servable.status();
    servable_ = servable.value();
  }

  InferenceRequest Request(const std::string& model, DVector input,
                           long timeout_us = 0) {
    InferenceRequest r;
    r.model = model;
    r.input = std::move(input);
    r.timeout_us = timeout_us;
    return r;
  }

  ModelRegistry registry_;
  std::shared_ptr<const ServableModel> servable_;
};

TEST_F(InferenceServerTest, CoalescesQueuedRequestsIntoOneBatch) {
  RegisterTiny("m");
  ServerOptions opts;
  opts.max_batch_size = 8;
  opts.max_wait_us = 0;
  InferenceServer server(registry_, opts);
  // Submit before Start: everything queues, so the first dispatcher pass
  // must coalesce all six requests into a single micro-batch.
  std::vector<std::future<Result<InferenceResponse>>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(server.Submit(
        Request("m", {0.1 * static_cast<double>(i), 0.5})));
  }
  EXPECT_EQ(server.queue_depth(), 6u);
  ASSERT_TRUE(server.Start().ok());
  for (auto& f : futures) {
    auto response = f.get();
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response.value().batch_size, 6u);
    EXPECT_EQ(response.value().model_version, 1);
    EXPECT_FALSE(response.value().from_cache);
  }
  EXPECT_EQ(servable_->batch_executions(), 1);
  EXPECT_EQ(server.stats().completed, 6);
  EXPECT_EQ(server.stats().batches, 1);
}

TEST_F(InferenceServerTest, QueueOverflowFailsFastWithUnavailable) {
  RegisterTiny("m");
  ServerOptions opts;
  opts.queue_capacity = 2;
  InferenceServer server(registry_, opts);
  auto f1 = server.Submit(Request("m", {0.1, 0.2}));
  auto f2 = server.Submit(Request("m", {0.3, 0.4}));
  auto f3 = server.Submit(Request("m", {0.5, 0.6}));
  // The overflowing submit resolves immediately, before Start.
  auto rejected = f3.get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(server.stats().rejected, 1);

  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f2.get().ok());
}

TEST_F(InferenceServerTest, ExpiredDeadlineNeverReachesSimulator) {
  RegisterTiny("m");
  InferenceServer server(registry_);
  // 1µs deadline, and the dispatcher does not exist yet: by the time
  // Start() runs, the request is long expired.
  auto f = server.Submit(Request("m", {0.1, 0.2}, /*timeout_us=*/1));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(server.Start().ok());
  auto response = f.get();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  server.Shutdown();
  EXPECT_EQ(servable_->batch_executions(), 0)
      << "a cancelled request must not execute";
  EXPECT_EQ(server.stats().expired, 1);
}

TEST_F(InferenceServerTest, GracefulDrainCompletesAdmittedWork) {
  RegisterTiny("m");
  ServerOptions opts;
  opts.max_batch_size = 4;
  InferenceServer server(registry_, opts);
  ASSERT_TRUE(server.Start().ok());
  std::vector<std::future<Result<InferenceResponse>>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(server.Submit(
        Request("m", {0.05 * static_cast<double>(i), 1.0})));
  }
  server.Shutdown();  // Must drain, not drop.
  for (auto& f : futures) {
    auto response = f.get();
    ASSERT_TRUE(response.ok()) << response.status();
  }
  // After shutdown, admission fails with kUnavailable.
  auto late = server.Submit(Request("m", {0.0, 0.0})).get();
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
}

TEST_F(InferenceServerTest, ShutdownWithoutStartFailsQueuedRequests) {
  RegisterTiny("m");
  InferenceServer server(registry_);
  auto f = server.Submit(Request("m", {0.1, 0.2}));
  server.Shutdown();
  auto response = f.get();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(servable_->batch_executions(), 0);
}

TEST_F(InferenceServerTest, RepeatedQueryHitsResultCache) {
  RegisterTiny("m");
  InferenceServer server(registry_);
  ASSERT_TRUE(server.Start().ok());
  const DVector x = {0.25, 0.75};
  auto first = server.Submit(Request("m", x)).get();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first.value().from_cache);
  auto second = server.Submit(Request("m", x)).get();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().from_cache);
  EXPECT_EQ(second.value().result.value, first.value().result.value);
  EXPECT_EQ(servable_->batch_executions(), 1);
  EXPECT_EQ(server.stats().cache_hits, 1);
}

TEST_F(InferenceServerTest, AdmissionRejectsUnknownModelAndBadInput) {
  RegisterTiny("m");
  InferenceServer server(registry_);
  auto unknown = server.Submit(Request("nope", {0.1, 0.2})).get();
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  auto narrow = server.Submit(Request("m", {0.1})).get();
  ASSERT_FALSE(narrow.ok());
  EXPECT_EQ(narrow.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.queue_depth(), 0u) << "rejected work must not queue";
}

TEST_F(InferenceServerTest, ConcurrentClientsAllComplete) {
  RegisterTiny("m");
  ServerOptions opts;
  opts.max_batch_size = 8;
  opts.max_wait_us = 100;
  InferenceServer server(registry_, opts);
  ASSERT_TRUE(server.Start().ok());
  constexpr int kClients = 4;
  constexpr int kPerClient = 16;
  std::vector<std::thread> clients;
  std::atomic<int> ok_count{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const double a = 0.01 * static_cast<double>(c * kPerClient + i);
        auto response = server.Submit(Request("m", {a, 1.0 - a})).get();
        if (response.ok()) ok_count.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  server.Shutdown();
  EXPECT_EQ(ok_count.load(), kClients * kPerClient);
  const auto stats = server.stats();
  EXPECT_EQ(stats.completed + stats.cache_hits, kClients * kPerClient);
}

TEST_F(InferenceServerTest, ShutdownRaceNeverDropsPromises) {
  // Clients hammer Submit while another thread calls Shutdown: every future
  // must still resolve with a definitive Status (a dropped promise would
  // throw std::future_error(broken_promise) from .get()), and the terminal
  // buckets must exactly account for every admission attempt.
  for (int round = 0; round < 5; ++round) {
    RegisterTiny("m");
    ServerOptions opts;
    opts.max_batch_size = 4;
    opts.max_wait_us = 50;
    InferenceServer server(registry_, opts);
    ASSERT_TRUE(server.Start().ok());
    constexpr int kClients = 4;
    constexpr int kPerClient = 50;
    std::atomic<int> resolved{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int i = 0; i < kPerClient; ++i) {
          const double a = 0.001 * static_cast<double>(c * kPerClient + i);
          auto future = server.Submit(Request("m", {a, 1.0 - a}));
          (void)future.get();  // Throws on a broken promise → test aborts.
          resolved.fetch_add(1);
        }
      });
    }
    // Let the race land mid-traffic.
    std::this_thread::sleep_for(std::chrono::microseconds(200 * round));
    server.Shutdown();
    for (auto& t : clients) t.join();
    EXPECT_EQ(resolved.load(), kClients * kPerClient);
    const auto stats = server.stats();
    EXPECT_EQ(stats.submitted, kClients * kPerClient);
    EXPECT_EQ(stats.submitted, stats.completed + stats.cache_hits +
                                   stats.degraded + stats.rejected +
                                   stats.quota_rejected + stats.expired +
                                   stats.failed)
        << "every request must land in exactly one terminal bucket";
    EXPECT_EQ(stats.fifo_violations, 0);
  }
}

TEST_F(InferenceServerTest, DeadlineExpiresMidRetryStopsRetrying) {
  // Every dispatch attempt fails; the retry backoff (20ms) cannot fit the
  // 10ms request deadline, so the loop must cut immediately with
  // kDeadlineExceeded instead of burning through all 10 attempts (~180ms+)
  // on a result nobody will wait for.
  fault::FaultInjector::Global().DisarmAll();
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kError;
  spec.target = "m";
  fault::FaultInjector::Global().Arm("serve.dispatch", spec);
  RegisterTiny("m");
  ServerOptions opts;
  opts.max_wait_us = 0;
  opts.retry.max_attempts = 10;
  opts.retry.initial_backoff_us = 20000;
  opts.retry.decorrelated_jitter = false;
  InferenceServer server(registry_, opts);
  ASSERT_TRUE(server.Start().ok());
  const auto start = std::chrono::steady_clock::now();
  auto response =
      server.Submit(Request("m", {0.2, 0.8}, /*timeout_us=*/10000)).get();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  fault::FaultInjector::Global().DisarmAll();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(servable_->batch_executions(), 0)
      << "injected dispatch faults fire before the simulator runs";
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            100)
      << "the retry loop must stop at the deadline, not run all 10 attempts";
  server.Shutdown();
  EXPECT_EQ(server.stats().expired, 1);
}

// ---- Request-scoped tracing -------------------------------------------------

// Trace events for one request, split into the root "serve.request" span
// (exactly one per submitted request) and everything underneath it.
struct TraceTree {
  const obs::TraceEvent* root = nullptr;
  int root_count = 0;
  std::vector<const obs::TraceEvent*> children;
};

TraceTree TreeFor(const std::vector<obs::TraceEvent>& events,
                  uint64_t trace_id) {
  TraceTree tree;
  for (const auto& e : events) {
    if (e.trace_id != trace_id) continue;
    if (std::string(e.name) == "serve.request") {
      tree.root = &e;
      ++tree.root_count;
    } else {
      tree.children.push_back(&e);
    }
  }
  return tree;
}

TEST_F(InferenceServerTest, EveryRequestYieldsExactlyOneRootSpanTree) {
  RegisterTiny("m");
  obs::TraceLog::Global().Clear();
  obs::EnableTracing();
  ServerOptions opts;
  opts.max_batch_size = 8;
  opts.max_wait_us = 0;
  constexpr int kRequests = 6;
  std::vector<InferenceResponse> responses;
  {
    InferenceServer server(registry_, opts);
    // Submit before Start so all six coalesce into one micro-batch: the
    // batch then has to fan causal edges into six distinct request trees.
    std::vector<std::future<Result<InferenceResponse>>> futures;
    for (int i = 0; i < kRequests; ++i) {
      futures.push_back(
          server.Submit(Request("m", {0.1 * static_cast<double>(i), 0.5})));
    }
    ASSERT_TRUE(server.Start().ok());
    for (auto& f : futures) {
      auto response = f.get();
      ASSERT_TRUE(response.ok()) << response.status();
      responses.push_back(std::move(response.value()));
    }
    server.Shutdown();
  }
  obs::DisableTracing();
  const auto events = obs::TraceLog::Global().Snapshot();

  std::set<uint64_t> trace_ids;
  for (const auto& response : responses) {
    ASSERT_NE(response.trace.trace_id, 0u);
    trace_ids.insert(response.trace.trace_id);
    EXPECT_GE(response.trace.attempts, 1);
    // The summary's parts never exceed the end-to-end latency it reports.
    EXPECT_LE(response.trace.queue_wait_us + response.trace.exec_us,
              response.trace.total_us);
  }
  ASSERT_EQ(trace_ids.size(), responses.size()) << "trace ids must be unique";

  for (uint64_t trace_id : trace_ids) {
    const TraceTree tree = TreeFor(events, trace_id);
    ASSERT_EQ(tree.root_count, 1)
        << StrFormat("trace %016llx needs exactly one serve.request root",
                     static_cast<unsigned long long>(trace_id));
    EXPECT_EQ(tree.root->parent_span_id, 0u);
    EXPECT_FALSE(tree.children.empty());

    // Every non-root event hangs off a span recorded in the same trace —
    // the tree is causally connected, not a bag of events.
    std::set<uint64_t> span_ids{tree.root->span_id};
    for (const auto* child : tree.children) span_ids.insert(child->span_id);
    long accounted_us = 0;
    int queue_waits = 0;
    for (const auto* child : tree.children) {
      EXPECT_NE(child->parent_span_id, 0u) << child->name;
      EXPECT_TRUE(span_ids.count(child->parent_span_id))
          << child->name << " parents outside its trace";
      const std::string name = child->name;
      if (name == "serve.queue_wait" || name == "serve.attempt") {
        accounted_us += child->duration_us;
      }
      queue_waits += name == "serve.queue_wait" ? 1 : 0;
    }
    EXPECT_EQ(queue_waits, 1);
    // Queue wait and execution attempts are disjoint sub-intervals of the
    // root span, so their durations sum to at most the request latency.
    EXPECT_LE(accounted_us, tree.root->duration_us);
  }

  // The batch links every coalesced member's trace from the leader's tree.
  std::set<uint64_t> linked;
  for (const auto& e : events) {
    if (std::string(e.name) == "serve.batch.member") {
      EXPECT_NE(e.link_trace_id, 0u);
      linked.insert(e.link_trace_id);
    }
  }
  EXPECT_EQ(linked, trace_ids);
}

TEST_F(InferenceServerTest, RetryStormProducesOneCausallyLinkedTraceTree) {
  // Every dispatch attempt fails (injected), so one request rides the full
  // retry ladder to a terminal failure. Its trace must contain the whole
  // story: attempts, backoff sleeps, and the failure marker, all linked
  // under a single root span.
  fault::FaultInjector::Global().DisarmAll();
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kError;
  spec.target = "m";
  fault::FaultInjector::Global().Arm("serve.dispatch", spec);
  RegisterTiny("m");
  obs::TraceLog::Global().Clear();
  obs::EnableTracing();
  ServerOptions opts;
  opts.max_wait_us = 0;
  opts.retry.max_attempts = 3;
  opts.retry.initial_backoff_us = 200;
  opts.retry.decorrelated_jitter = false;
  opts.enable_breaker = false;  // Keep every attempt flowing.
  InferenceServer server(registry_, opts);
  ASSERT_TRUE(server.Start().ok());
  auto response = server.Submit(Request("m", {0.2, 0.8})).get();
  server.Shutdown();
  obs::DisableTracing();
  fault::FaultInjector::Global().DisarmAll();
  ASSERT_FALSE(response.ok());

  const auto events = obs::TraceLog::Global().Snapshot();
  // Exactly one root span in the whole log: the one failed request.
  uint64_t trace_id = 0;
  for (const auto& e : events) {
    if (std::string(e.name) == "serve.request") {
      EXPECT_EQ(trace_id, 0u) << "more than one root span recorded";
      trace_id = e.trace_id;
    }
  }
  ASSERT_NE(trace_id, 0u);
  const TraceTree tree = TreeFor(events, trace_id);
  ASSERT_EQ(tree.root_count, 1);
  int attempts = 0, backoffs = 0, failed_markers = 0;
  for (const auto* child : tree.children) {
    const std::string name = child->name;
    attempts += name == "serve.attempt" ? 1 : 0;
    backoffs += name == "serve.retry_backoff" ? 1 : 0;
    failed_markers += name == "serve.outcome.failed" ? 1 : 0;
    EXPECT_NE(child->parent_span_id, 0u) << name;
  }
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(backoffs, 2);  // Sleeps between attempts, not after the last.
  EXPECT_EQ(failed_markers, 1);
}

TEST_F(InferenceServerTest, QuboConfigModelsAreNotExecutable) {
  ASSERT_TRUE(registry_
                  .Register(MakeQuboConfigArtifact({{"solver", "sa"}},
                                                   "qubo-cfg"))
                  .ok());
  InferenceServer server(registry_);
  auto response = server.Submit(Request("qubo-cfg", {})).get();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace serve
}  // namespace qdb
