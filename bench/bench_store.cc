// E21 — Model storage tier: binary vs text artifact load latency, and
// budgeted serving under memory pressure.
// E22 — Warm restart: crash-recovery cost as a function of fleet size.
// BM_WarmRestart journals a fleet of K file-backed models (K = 8/64/256),
// then measures restart-to-first-inference: open the journaled registry
// (snapshot + journal replay, entries rebuilt as page-outs), cold-start one
// model, and run one prediction through it. The recovery_us counter
// isolates the replay+rebuild share of that wall time.
//
// Two questions. (1) What does the binary artifact format buy on the
// cold-start path? A 12-qubit kernel-SVM artifact with 128 support vectors
// is ~1.5k doubles; the text reader re-parses every one through strtod
// while the binary reader is a read + two checksum passes + memcpys into
// place. Headline result: binary load is >= 10x faster than text on the
// same artifact (speedup_vs_text counter on BM_ArtifactLoad/binary).
// (2) What happens when the registry's byte budget shrinks below the
// working set? BM_BudgetedServing holds 1000 file-backed model versions
// (40 names x 25 versions) and sweeps the budget from 100% of the working
// set down to 5%, driving lookups across all names. Every request must
// succeed at every budget point (failed_requests == 0 is asserted) — the
// tier pages models out and reloads them on demand — while the counters
// show the cost curve: evictions and reloads climb as the budget drops,
// resident_bytes stays bounded by the budget, and cold_start p99 (from the
// store.cold_start_us histogram) prices the misses.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "obs/obs.h"
#include "serve/model_artifact.h"
#include "serve/model_registry.h"
#include "serve/servable.h"
#include "store/binary_format.h"
#include "variational/ansatz.h"

namespace qdb {
namespace store {
namespace {

constexpr int kQubits = 12;
constexpr int kSupportVectors = 128;

serve::ModelArtifact LoadLatencyArtifact() {
  Rng rng(41);
  serve::ModelArtifact a;
  a.type = serve::ModelType::kKernelSvm;
  a.name = "bench-store-qsvm";
  a.version = 1;
  a.num_features = kQubits;
  a.kernel_encoding = serve::KernelEncodingKind::kAngle;
  a.kernel_scale = 1.0;
  a.bias = 0.05;
  for (int i = 0; i < kSupportVectors; ++i) {
    serve::SupportVector sv;
    sv.coeff = (i % 2 == 0 ? 1.0 : -1.0) / kSupportVectors;
    sv.features.resize(kQubits);
    for (auto& f : sv.features) f = rng.Uniform(0.0, M_PI);
    a.support_vectors.push_back(std::move(sv));
  }
  return a;
}

// Small variational artifacts for the fleet: the point of the budget sweep
// is entry count and churn, not per-model size.
serve::ModelArtifact FleetArtifact(const std::string& name, int version) {
  serve::ModelArtifact a;
  a.type = serve::ModelType::kVqcClassifier;
  a.name = name;
  a.version = version;
  a.num_features = 4;
  a.encoding = VqcEncoding::kAngle;
  a.ansatz_layers = 1;
  a.entanglement = Entanglement::kLinear;
  a.feature_scale = 0.9;
  a.params.assign(
      static_cast<size_t>(RealAmplitudesParamCount(4, 1)),
      0.1 * version + 0.01);
  return a;
}

enum LoadFormat { kText = 0, kBinary = 1 };

void BM_ArtifactLoad(benchmark::State& state) {
  const LoadFormat format = static_cast<LoadFormat>(state.range(0));
  const serve::ModelArtifact artifact = LoadLatencyArtifact();
  const std::string path =
      StrCat("/tmp/qdb_bench_store_load_", format == kText ? "text" : "bin",
             ".model");
  const ArtifactFormat disk_format =
      format == kText ? ArtifactFormat::kText : ArtifactFormat::kBinary;
  if (!SaveArtifact(artifact, path, disk_format).ok()) {
    state.SkipWithError("failed to write artifact");
    return;
  }
  for (auto _ : state) {
    auto loaded = serve::ModelArtifact::LoadFromFile(path);
    if (!loaded.ok()) {
      state.SkipWithError("load failed");
      return;
    }
    benchmark::DoNotOptimize(loaded.value().support_vectors.data());
  }
  state.SetLabel(format == kText ? "text" : "binary");
  state.counters["doubles_in_artifact"] = static_cast<double>(
      kSupportVectors * (kQubits + 1));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f != nullptr) {
    std::fseek(f, 0, SEEK_END);
    state.counters["file_bytes"] = static_cast<double>(std::ftell(f));
    std::fclose(f);
  }
}
BENCHMARK(BM_ArtifactLoad)
    ->Arg(kText)
    ->Arg(kBinary)
    ->Unit(benchmark::kMicrosecond);

// Budget sweep: Arg is the budget as a percentage of the fleet's working
// set (100 = everything fits, 5 = almost nothing does).
void BM_BudgetedServing(benchmark::State& state) {
  constexpr int kNames = 40;
  constexpr int kVersionsPerName = 25;  // 1000 versions total
  const int budget_percent = static_cast<int>(state.range(0));

  // Write the fleet once per process; reuse across budget points.
  static const std::vector<std::string>* const kPaths = [] {
    auto* paths = new std::vector<std::string>();
    for (int n = 0; n < kNames; ++n) {
      for (int v = 1; v <= kVersionsPerName; ++v) {
        const std::string path =
            StrCat("/tmp/qdb_bench_store_fleet_", n, "_", v, ".model");
        const Status saved = SaveArtifact(
            FleetArtifact(StrCat("fleet-", n), v), path,
            ArtifactFormat::kBinary);
        if (!saved.ok()) continue;
        paths->push_back(path);
      }
    }
    return paths;
  }();
  static const size_t kWorkingSetBytes = [] {
    auto servable =
        serve::ServableModel::Create(FleetArtifact("sizer", 1));
    return servable.ok() ? servable.value()->ResidentBytes() *
                               static_cast<size_t>(kNames * kVersionsPerName)
                         : 0;
  }();
  if (kPaths->size() != static_cast<size_t>(kNames * kVersionsPerName) ||
      kWorkingSetBytes == 0) {
    state.SkipWithError("fleet setup failed");
    return;
  }

  int64_t requests = 0;
  int64_t failed = 0;
  serve::StoreStatus status;
  double cold_p99_us = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    serve::RegistryOptions options;
    options.num_slices = 4;
    options.store_budget_bytes =
        kWorkingSetBytes * static_cast<size_t>(budget_percent) / 100;
    serve::ModelRegistry registry(options);
    for (const std::string& path : *kPaths) {
      if (!registry.LoadModel(path).ok()) {
        state.SkipWithError("fleet load failed");
        return;
      }
    }
    Rng rng(17);
    state.ResumeTiming();
    // Serve: mostly-latest traffic with a tail of pinned-version reads, the
    // access pattern version rollouts produce.
    for (int i = 0; i < 4000; ++i) {
      const int name_index = static_cast<int>(rng.Uniform(0.0, kNames));
      const std::string name = StrCat("fleet-", name_index % kNames);
      Result<std::shared_ptr<const serve::ServableModel>> servable =
          rng.Uniform(0.0, 1.0) < 0.9
              ? registry.Lookup(name)
              : registry.Lookup(
                    name, 1 + static_cast<int>(rng.Uniform(
                                  0.0, kVersionsPerName)) %
                                  kVersionsPerName);
      ++requests;
      if (!servable.ok()) ++failed;
    }
    state.PauseTiming();
    status = registry.store_status();
    obs::Histogram* cold = obs::GetHistogram("store.cold_start_us");
    if (cold->TotalCount() > 0) cold_p99_us = cold->ApproxQuantile(0.99);
    state.ResumeTiming();
  }
  if (failed != 0) {
    state.SkipWithError("budgeted serving dropped requests");
    return;
  }
  state.SetItemsProcessed(requests);
  state.counters["budget_percent"] = static_cast<double>(budget_percent);
  state.counters["budget_bytes"] = static_cast<double>(
      kWorkingSetBytes * static_cast<size_t>(budget_percent) / 100);
  state.counters["resident_bytes"] =
      static_cast<double>(status.resident_bytes);
  state.counters["resident_models"] =
      static_cast<double>(status.resident_models);
  state.counters["registered_models"] =
      static_cast<double>(status.registered_models);
  state.counters["evictions"] = static_cast<double>(status.evictions);
  state.counters["reloads"] = static_cast<double>(status.reloads);
  state.counters["failed_requests"] = static_cast<double>(failed);
  state.counters["cold_start_p99_us"] = cold_p99_us;
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(requests), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BudgetedServing)
    ->Arg(100)
    ->Arg(50)
    ->Arg(25)
    ->Arg(10)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond);

// E22 — restart-to-first-inference. Arg = journaled fleet size.
void BM_WarmRestart(benchmark::State& state) {
  const int num_models = static_cast<int>(state.range(0));
  const std::string dir = StrCat("/tmp/qdb_bench_store_restart_", num_models);
  (void)std::system(StrCat("rm -rf '", dir, "'").c_str());

  serve::RegistryOptions options;
  options.journal_dir = dir;
  {
    // The "previous process": journal a fleet of durable (saved) models,
    // every fourth one pinned, then die (scope exit — the journal needs no
    // clean shutdown, that is the point).
    serve::ModelRegistry registry(options);
    for (int i = 0; i < num_models; ++i) {
      const std::string name = StrCat("restart-", i);
      if (!registry.Register(FleetArtifact(name, 1)).ok() ||
          !registry.SaveModel(name, 1,
                              StrCat(dir, "/m", i, ".model")).ok()) {
        state.SkipWithError("fleet journaling failed");
        return;
      }
      if (i % 4 == 0 && !registry.SetPinned(name, 1, true).ok()) {
        state.SkipWithError("fleet pinning failed");
        return;
      }
    }
  }

  const DVector probe = {0.3, 0.8, 1.2, 0.5};
  long recovery_us = 0;
  long recovered = 0;
  for (auto _ : state) {
    auto opened = serve::ModelRegistry::OpenJournaled(options);
    if (!opened.ok()) {
      state.SkipWithError("journaled open failed");
      return;
    }
    auto servable = opened.value()->Lookup("restart-0", 1);
    if (!servable.ok()) {
      state.SkipWithError("recovered model did not cold-start");
      return;
    }
    auto value = servable.value()->RunBatch(serve::RequestKind::kPredict,
                                            {probe});
    if (!value.ok()) {
      state.SkipWithError("recovered model did not serve");
      return;
    }
    benchmark::DoNotOptimize(value.value().data());
    recovery_us = opened.value()->recovery_report().recovery_us;
    recovered = opened.value()->recovery_report().recovered_models;
  }
  if (recovered != num_models) {
    state.SkipWithError("recovery lost models");
    return;
  }
  state.counters["fleet_models"] = static_cast<double>(num_models);
  state.counters["recovered_models"] = static_cast<double>(recovered);
  state.counters["recovery_us"] = static_cast<double>(recovery_us);
}
BENCHMARK(BM_WarmRestart)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace store
}  // namespace qdb

BENCHMARK_MAIN();
