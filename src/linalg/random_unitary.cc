#include "linalg/random_unitary.h"

#include <cmath>

#include "linalg/vector_ops.h"

namespace qdb {

Matrix RandomUnitary(size_t n, Rng& rng) {
  QDB_CHECK_GT(n, 0u);
  // Ginibre ensemble: i.i.d. complex Gaussian entries.
  Matrix g(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j)
      g(i, j) = Complex(rng.Normal(), rng.Normal());

  // Modified Gram-Schmidt on columns → Q of the QR decomposition.
  Matrix q(n, n);
  for (size_t j = 0; j < n; ++j) {
    CVector col(n);
    for (size_t i = 0; i < n; ++i) col[i] = g(i, j);
    for (size_t k = 0; k < j; ++k) {
      Complex proj(0.0, 0.0);
      for (size_t i = 0; i < n; ++i) proj += std::conj(q(i, k)) * col[i];
      for (size_t i = 0; i < n; ++i) col[i] -= proj * q(i, k);
    }
    Normalize(col);
    for (size_t i = 0; i < n; ++i) q(i, j) = col[i];
  }

  // Mezzadri phase fix: multiply each column by the phase of the R diagonal
  // so the distribution is exactly Haar. R_jj = ⟨q_j, g_j⟩.
  for (size_t j = 0; j < n; ++j) {
    Complex rjj(0.0, 0.0);
    for (size_t i = 0; i < n; ++i) rjj += std::conj(q(i, j)) * g(i, j);
    double mag = std::abs(rjj);
    Complex phase = mag > 0 ? rjj / mag : Complex(1.0, 0.0);
    for (size_t i = 0; i < n; ++i) q(i, j) *= phase;
  }
  return q;
}

CVector RandomState(size_t n, Rng& rng) {
  QDB_CHECK_GT(n, 0u);
  CVector v(n);
  for (auto& x : v) x = Complex(rng.Normal(), rng.Normal());
  Normalize(v);
  return v;
}

Matrix RandomHermitian(size_t n, Rng& rng) {
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    a(i, i) = Complex(rng.Normal(), 0.0);
    for (size_t j = i + 1; j < n; ++j) {
      Complex v(rng.Normal(), rng.Normal());
      a(i, j) = v;
      a(j, i) = std::conj(v);
    }
  }
  return a;
}

}  // namespace qdb
