/// \file thread_pool.h
/// \brief Fixed-size worker pool with deterministic range partitioning — the
/// shared parallel substrate of the simulator stack.
///
/// Design goals, in priority order:
///  1. **Determinism.** Chunk boundaries are a pure function of the range
///     size (never of the worker count or of scheduling), and reductions
///     combine per-chunk partials in chunk-index order. A computation run
///     with QDB_THREADS=1 and QDB_THREADS=16 therefore produces
///     bit-identical floating-point results.
///  2. **Nested safety.** A parallel call issued from inside a pool worker
///     (e.g. a gate kernel running under RunBatch) executes its chunks
///     inline on that worker in chunk order — same arithmetic, no deadlock,
///     no oversubscription.
///  3. **Zero cost when serial.** With one configured thread the pool spawns
///     no workers and every entry point degenerates to a plain loop.
///
/// The global pool is sized from the QDB_THREADS environment variable
/// (falling back to std::thread::hardware_concurrency) on first use.

#ifndef QDB_COMMON_THREAD_POOL_H_
#define QDB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace qdb {

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers; the calling thread is the remaining
  /// lane. `num_threads` is clamped to [1, 256].
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool, built on first use from QDB_THREADS (a positive
  /// integer) or, when unset, from the hardware concurrency.
  static ThreadPool& Global();

  /// Rebuilds the global pool with `num_threads` lanes. Test-only: callers
  /// must ensure no parallel work is in flight.
  static void SetGlobalThreads(int num_threads);

  /// Total parallel lanes (workers + the calling thread); >= 1.
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// True iff the current thread is one of this process's pool workers (any
  /// pool). Parallel entry points use this to fall back to inline execution.
  static bool InWorker();

  /// Deterministic chunk width for a range of `range` elements: ranges are
  /// cut into at most 64 chunks of at least 2048 elements. Exposed so
  /// reductions can size their partial buffers identically.
  static uint64_t ChunkSize(uint64_t range);

  /// Runs `body(chunk_index, chunk_begin, chunk_end)` over [begin, end)
  /// split into ChunkSize-wide chunks. Chunks are claimed dynamically by the
  /// caller and up to size()-1 workers; blocks until all chunks finished.
  /// `body` must not throw, and distinct chunks must touch disjoint data
  /// (or only perform atomic updates).
  void ParallelForChunks(
      uint64_t begin, uint64_t end,
      const std::function<void(uint64_t, uint64_t, uint64_t)>& body);

  /// ParallelForChunks without the chunk index, for element-wise work.
  void ParallelFor(uint64_t begin, uint64_t end,
                   const std::function<void(uint64_t, uint64_t)>& body);

  /// Runs `task(i)` for each i in [0, count) with dynamic assignment across
  /// the caller and workers; blocks until all tasks finished. Intended for
  /// coarse tasks (whole circuit executions), not per-element loops.
  void RunTasks(size_t count, const std::function<void(size_t)>& task);

  /// Fan-out ops currently queued and not yet claimed by a lane — a backlog
  /// indicator for callers that feed the pool from outside (e.g. the serving
  /// dispatchers), mirroring the pool.queue_depth gauge.
  size_t PendingOps() const;

 private:
  struct Op;  // Shared state of one ParallelForChunks / RunTasks call.

  void WorkerLoop();
  void Enqueue(int copies, const std::shared_ptr<Op>& op);

  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Op>> queue_;
  bool stop_ = false;
};

/// Sums `fn(chunk_begin, chunk_end)` over [begin, end) with the pool's
/// deterministic chunking; partials are combined in chunk order, so the
/// result is bit-identical for any worker count. T must be value-initialized
/// to zero and support +=.
template <typename T, typename ChunkFn>
T ParallelSum(ThreadPool& pool, uint64_t begin, uint64_t end, ChunkFn&& fn) {
  const uint64_t range = end > begin ? end - begin : 0;
  if (range == 0) return T{};
  const uint64_t chunk = ThreadPool::ChunkSize(range);
  const uint64_t num_chunks = (range + chunk - 1) / chunk;
  std::vector<T> partials(num_chunks);
  pool.ParallelForChunks(begin, end,
                         [&](uint64_t ci, uint64_t b, uint64_t e) {
                           partials[ci] = fn(b, e);
                         });
  T total{};
  for (uint64_t ci = 0; ci < num_chunks; ++ci) total += partials[ci];
  return total;
}

}  // namespace qdb

#endif  // QDB_COMMON_THREAD_POOL_H_
