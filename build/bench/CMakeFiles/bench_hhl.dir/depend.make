# Empty dependencies file for bench_hhl.
# This may be replaced when dependencies are built.
