/// \file density_simulator.h
/// \brief Noisy circuit execution on density matrices: gate, then attached
/// Kraus channels per operand qubit — the NISQ-hardware substitute.

#ifndef QDB_SIM_DENSITY_SIMULATOR_H_
#define QDB_SIM_DENSITY_SIMULATOR_H_

#include "circuit/circuit.h"
#include "common/result.h"
#include "sim/density_matrix.h"
#include "sim/noise.h"

namespace qdb {

/// \brief Runs circuits under a NoiseModel, producing exact mixed states.
///
/// Cost is O(4^n) per gate, so this simulator targets n ≲ 10 — ample for
/// the noise-impact experiments (E14). The noiseless state-vector simulator
/// remains the default substrate everywhere else.
class DensitySimulator {
 public:
  explicit DensitySimulator(NoiseModel noise = {}) : noise_(std::move(noise)) {}

  const NoiseModel& noise() const { return noise_; }

  /// Runs `circuit` from |0...0⟩⟨0...0| with `params` bound.
  Result<DensityMatrix> Run(const Circuit& circuit,
                            const DVector& params = {}) const;

  /// Runs `circuit` on an existing state (in place).
  Status RunInPlace(const Circuit& circuit, DensityMatrix& rho,
                    const DVector& params = {}) const;

 private:
  Status ApplyGateWithNoise(const Gate& gate, const DVector& angles,
                            DensityMatrix& rho) const;

  NoiseModel noise_;
};

}  // namespace qdb

#endif  // QDB_SIM_DENSITY_SIMULATOR_H_
