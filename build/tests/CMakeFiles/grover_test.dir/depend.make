# Empty dependencies file for grover_test.
# This may be replaced when dependencies are built.
