# Empty dependencies file for bench_grover.
# This may be replaced when dependencies are built.
