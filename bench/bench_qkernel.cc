// E3 — Quantum kernel methods vs classical kernels.
//
// Regenerates the quantum-kernel table: held-out accuracy and
// kernel-target alignment of the fidelity kernel (angle and ZZ feature
// maps) against a classical RBF SVM, on circles and XOR. Expected shape:
// the ZZ feature-map kernel is competitive with RBF on these sets (neither
// dominates — the tutorial's point is feasibility, not supremacy), and
// higher kernel alignment tracks higher test accuracy.

#include <benchmark/benchmark.h>

#include <cmath>

#include "classical/metrics.h"
#include "classical/svm.h"
#include "kernel/alignment.h"
#include "kernel/quantum_kernel.h"

namespace qdb {
namespace {

enum DatasetKind { kCircles = 0, kXor = 1 };
enum KernelKind { kAngle = 0, kZZ = 1, kClassicalRbf = 2 };

const char* Name(int dataset, int kernel) {
  static std::string label;
  label = std::string(dataset == kCircles ? "circles" : "xor") + "/" +
          (kernel == kAngle ? "angle" : kernel == kZZ ? "zz" : "rbf");
  return label.c_str();
}

struct SplitData {
  Dataset train;
  Dataset test;
};

SplitData PrepareSplit(int kind, uint64_t seed) {
  Rng rng(seed);
  Dataset all = kind == kCircles ? MakeCircles(56, 0.08, 0.5, rng)
                                 : MakeXor(56, 0.15, rng);
  auto [train, test] = TrainTestSplit(all, 0.25, rng);
  MinMaxScale(train, test, 0.0, M_PI);
  MinMaxScale(train, train, 0.0, M_PI);
  return {std::move(train), std::move(test)};
}

void BM_KernelSvm(benchmark::State& state) {
  const int dataset = static_cast<int>(state.range(0));
  const int kernel_kind = static_cast<int>(state.range(1));
  SplitData data = PrepareSplit(dataset, 11);

  double test_acc = 0.0, alignment = 0.0;
  for (auto _ : state) {
    if (kernel_kind == kClassicalRbf) {
      SvmOptions opts;
      opts.kernel = SvmKernel::kRbf;
      opts.gamma = 2.0;
      opts.c = 20.0;
      auto svm = Svm::Train(data.train, opts);
      if (!svm.ok()) {
        state.SkipWithError(svm.status().ToString().c_str());
        return;
      }
      std::vector<int> preds;
      for (const auto& x : data.test.features) {
        preds.push_back(svm.value().Predict(x).ValueOrDie());
      }
      test_acc = Accuracy(data.test.labels, preds);
      alignment = 0.0;  // Reported only for the quantum kernels.
    } else {
      FidelityQuantumKernel kernel = kernel_kind == kAngle
                                         ? MakeAngleKernel()
                                         : MakeZZFeatureMapKernel(2);
      auto gram = kernel.GramMatrix(data.train.features);
      if (!gram.ok()) {
        state.SkipWithError(gram.status().ToString().c_str());
        return;
      }
      alignment =
          CenteredKernelAlignment(gram.value(), data.train.labels).ValueOrDie();
      SvmOptions opts;
      opts.kernel = SvmKernel::kPrecomputed;
      opts.c = 20.0;
      auto svm = Svm::Train(data.train, opts, &gram.value());
      if (!svm.ok()) {
        state.SkipWithError(svm.status().ToString().c_str());
        return;
      }
      auto cross = kernel.CrossMatrix(data.test.features, data.train.features);
      if (!cross.ok()) {
        state.SkipWithError(cross.status().ToString().c_str());
        return;
      }
      std::vector<int> preds;
      for (size_t i = 0; i < data.test.size(); ++i) {
        DVector row(data.train.size());
        for (size_t j = 0; j < data.train.size(); ++j) {
          row[j] = cross.value()(i, j).real();
        }
        preds.push_back(svm.value().PredictFromKernelRow(row));
      }
      test_acc = Accuracy(data.test.labels, preds);
    }
  }
  state.SetLabel(Name(dataset, kernel_kind));
  state.counters["test_acc"] = test_acc;
  state.counters["alignment"] = alignment;
}

BENCHMARK(BM_KernelSvm)
    ->ArgsProduct({{kCircles, kXor}, {kAngle, kZZ, kClassicalRbf}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_GramMatrixCost(benchmark::State& state) {
  // Cost series: Gram-matrix construction time vs training-set size (the
  // O(m²) classical overhead of quantum kernel methods the tutorial warns
  // about).
  const int m = static_cast<int>(state.range(0));
  Rng rng(13);
  Dataset data = MakeCircles(m, 0.08, 0.5, rng);
  MinMaxScale(data, data, 0.0, M_PI);
  FidelityQuantumKernel kernel = MakeZZFeatureMapKernel(2);
  for (auto _ : state) {
    auto gram = kernel.GramMatrix(data.features);
    benchmark::DoNotOptimize(gram);
  }
  state.counters["samples"] = m;
  state.counters["kernel_entries"] = static_cast<double>(m) * m;
}

BENCHMARK(BM_GramMatrixCost)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_GramMatrixCompiledVsInterpreted(benchmark::State& state) {
  // The same Gram fill with the encoding circuits interpreted per gate
  // (mode 0) vs compiled+fused (mode 1). Each data point bakes its features
  // into a distinct circuit, so the win here comes from fusion shrinking
  // the number of state sweeps, not from cache replay.
  const int m = 48;
  const bool compiled = state.range(0) != 0;
  Rng rng(13);
  Dataset data = MakeCircles(m, 0.08, 0.5, rng);
  MinMaxScale(data, data, 0.0, M_PI);
  FidelityQuantumKernel kernel = MakeZZFeatureMapKernel(2);
  kernel.set_execution_mode(compiled ? ExecutionMode::kCompiled
                                     : ExecutionMode::kInterpreted);
  for (auto _ : state) {
    auto gram = kernel.GramMatrix(data.features);
    benchmark::DoNotOptimize(gram);
  }
  state.SetLabel(compiled ? "compiled" : "interpreted");
  state.counters["samples"] = m;
}

BENCHMARK(BM_GramMatrixCompiledVsInterpreted)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qdb

BENCHMARK_MAIN();
