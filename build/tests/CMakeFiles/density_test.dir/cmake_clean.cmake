file(REMOVE_RECURSE
  "CMakeFiles/density_test.dir/density_test.cc.o"
  "CMakeFiles/density_test.dir/density_test.cc.o.d"
  "density_test"
  "density_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/density_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
