// Inference serving end to end: train two quantum models, package them as
// artifacts, publish them through the model registry, and drive the
// inference server with concurrent closed-loop clients.
//
// The flow mirrors a database deployment: an offline job trains a model
// (here a VQC and a quantum-kernel SVM on the moons dataset), persists it
// as a versioned artifact, and a serving process loads the artifact and
// answers prediction requests — coalescing concurrent requests into
// micro-batches over one pre-compiled circuit and memoizing repeated
// inputs in an LRU result cache.
//
// Load shape: --clients N (default 8) concurrent closed-loop clients;
// --seconds S runs each client for a wall-clock duration instead of the
// default fixed 32 requests; --shards / --dispatchers size the sharded
// serving runtime. Multi-tenancy: clients carry alternating tenant ids,
// and --quota-rate R (tokens/s, with --quota-burst B) arms per-tenant
// token buckets — over-budget tenants see "resource exhausted" rejections
// counted separately from real failures.
//
// Storage tier: --store-budget-mb M caps the registry's resident model
// bytes (0 = unlimited); least-recently-served file-backed models are
// paged out and transparently reloaded on their next request, and the
// final report (and --statusz) shows budget, residency, evictions,
// reloads, and cold-start latency. --registry-slices K spreads models
// over K independently locked registry slices, each owning 1/K of the
// budget.
//
// Observability: run with QDB_TRACE=1 (or pass --trace-out trace.json) to
// capture a Chrome trace-event timeline with per-request span trees;
// --statusz prints the server introspection page (per-shard queues,
// per-tenant token buckets, breakers, SLO burn rates, slowest traces)
// before shutdown; --metrics-out metrics.json dumps the full registry —
// including the labeled serve.requests{model,kind,outcome},
// serve.latency_us{model,outcome}, serve.shard.depth{shard}, and
// serve.quota.rejected{tenant} families — as JSON.
//
// Chaos: set QDB_FAULTS to arm seeded fault points across the stack (see
// fault/fault_injector.h for the grammar and scripts/chaos.sh for the
// canonical profiles), e.g.
//
//   QDB_FAULTS="serve.dispatch:error:0.2:1337" ./serving_demo
//
// and watch the retry/breaker/degradation machinery absorb the injected
// failures.
//
// Crash recovery (scripts/crash_recovery.sh drives both modes):
//
//   --journal-dir D --crash-rounds N [--ack-log F] [--seed S]
//     runs a registry mutation workload (register, save, pin, remove) over
//     a journaled registry, writing a flushed TRY/ACK line per durable
//     operation to the ack log. Arm a kill fault (e.g.
//     QDB_FAULTS="store.journal.append:kill:0.05:7:0.5") and the process
//     dies mid-write with exit 137; the ack log records exactly which
//     operations were acknowledged before death.
//
//   --journal-dir D --recover [--ack-log F]
//     warm-restarts from the journal, prints one RECOVERED line per
//     surviving model, starts the server, prefetches the warm set
//     (StartWarmup) until Healthz reports ready, serves one inference per
//     recovered model, and — when an ack log is given — verifies the
//     recovery against it: every acknowledged save (not later removed) is
//     present, every acknowledged remove is absent, and nothing is served
//     that was never attempted. Exits non-zero on any violation.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <future>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "classical/svm.h"
#include "common/strings.h"
#include "common/timer.h"
#include "fault/fault_injector.h"
#include "obs/obs.h"
#include "serve/inference_server.h"
#include "serve/model_registry.h"
#include "store/async_loader.h"
#include "variational/ansatz.h"
#include "variational/vqc.h"

namespace {

const char* ParseFlagValue(int argc, char** argv, const char* flag) {
  const size_t flag_len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
      return argv[i + 1];
    }
    if (std::strncmp(argv[i], flag, flag_len) == 0 &&
        argv[i][flag_len] == '=') {
      return argv[i] + flag_len + 1;
    }
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

long ParseLongFlag(int argc, char** argv, const char* flag,
                   long default_value) {
  const char* value = ParseFlagValue(argc, argv, flag);
  return value != nullptr ? std::atol(value) : default_value;
}

double ParseDoubleFlag(int argc, char** argv, const char* flag,
                       double default_value) {
  const char* value = ParseFlagValue(argc, argv, flag);
  return value != nullptr ? std::atof(value) : default_value;
}

// ---- Crash-recovery modes (scripts/crash_recovery.sh) ----------------------

// A registrable VQC artifact small enough that a crash round is dominated by
// journal/artifact I/O (the thing under test), not training.
qdb::serve::ModelArtifact TinyCrashArtifact(const std::string& name,
                                            qdb::Rng& rng) {
  qdb::serve::ModelArtifact a;
  a.type = qdb::serve::ModelType::kVqcClassifier;
  a.name = name;
  a.num_features = 2;
  a.encoding = qdb::VqcEncoding::kAngle;
  a.ansatz_layers = 1;
  a.entanglement = qdb::Entanglement::kLinear;
  a.feature_scale = 0.8;
  const int count =
      qdb::RealAmplitudesParamCount(a.num_features, a.ansatz_layers);
  for (int i = 0; i < count; ++i) {
    a.params.push_back(rng.Uniform(-1.5, 1.5));
  }
  return a;
}

// One TRY/ACK line, flushed to the kernel before returning so a SIGKILL on
// the very next instruction cannot lose it. TRY precedes the operation, ACK
// follows success; the recovery verifier reasons about the gap.
void AckLine(std::FILE* ack, const char* what, const std::string& name,
             int version) {
  if (ack == nullptr) return;
  std::fprintf(ack, "%s %s %d\n", what, name.c_str(), version);
  std::fflush(ack);
}

// Registry mutation workload under an armed kill fault. Exit 0 = workload
// completed (the fault never fired — still a valid harness sample); exit 137
// = SIGKILL mid-operation, which is the point.
int RunCrashWorkload(const std::string& journal_dir,
                     const std::string& ack_path, long rounds, long seed) {
  using namespace qdb;
  std::FILE* ack = nullptr;
  if (!ack_path.empty()) {
    ack = std::fopen(ack_path.c_str(), "a");
    if (ack == nullptr) {
      std::printf("cannot open ack log %s\n", ack_path.c_str());
      return 1;
    }
  }
  serve::RegistryOptions opts;
  opts.journal_dir = journal_dir;
  // Small compaction interval so the harness's kill points land inside the
  // snapshot -> journal-reset window, not just mid-append.
  opts.journal_compact_every = 16;
  serve::ModelRegistry registry(opts);
  if (!registry.recovery_report().journaled) {
    std::printf("journal open failed: %s\n",
                registry.recovery_report().open_status.ToString().c_str());
    return 1;
  }

  Rng rng(static_cast<uint64_t>(seed));
  const char* kNames[] = {"crash-a", "crash-b", "crash-c",
                          "crash-d", "crash-e", "crash-f"};
  // Versions this process saved and has not removed, per name.
  std::map<std::string, std::vector<int>> live;
  for (long round = 0; round < rounds; ++round) {
    const std::string name = kNames[rng.UniformInt(0, 5)];
    const double roll = rng.Uniform();
    auto& versions = live[name];
    if (roll < 0.70 || versions.empty()) {
      // Register a fresh version and promote it to file-backed (the
      // durability point). ACK SAVE only after SaveModel returns OK.
      auto servable = registry.Register(TinyCrashArtifact(name, rng));
      if (!servable.ok()) continue;
      const int version = servable.value()->version();
      const std::string path =
          qdb::StrCat(journal_dir, "/art_", name, "_v", version, ".model");
      AckLine(ack, "TRY SAVE", name, version);
      if (auto s = registry.SaveModel(name, version, path); !s.ok()) {
        continue;  // No ack: the save may or may not have become durable.
      }
      AckLine(ack, "ACK SAVE", name, version);
      versions.push_back(version);
    } else if (roll < 0.85) {
      const int version =
          versions[static_cast<size_t>(rng.UniformInt(
              static_cast<int64_t>(0), static_cast<int64_t>(versions.size()) - 1))];
      const bool pin = rng.Uniform() < 0.5;
      AckLine(ack, pin ? "TRY PIN" : "TRY UNPIN", name, version);
      if (registry.SetPinned(name, version, pin).ok()) {
        AckLine(ack, pin ? "ACK PIN" : "ACK UNPIN", name, version);
      }
    } else {
      // Remove one version, or occasionally every version of the name.
      const bool all = rng.Uniform() < 0.25;
      const int version =
          all ? -1 : versions[static_cast<size_t>(rng.UniformInt(
              static_cast<int64_t>(0), static_cast<int64_t>(versions.size()) - 1))];
      AckLine(ack, "TRY REMOVE", name, version);
      if (registry.Evict(name, version).ok()) {
        AckLine(ack, "ACK REMOVE", name, version);
        if (all) {
          versions.clear();
        } else {
          versions.erase(std::find(versions.begin(), versions.end(), version));
        }
      }
    }
  }
  const auto* journal = registry.journal();
  const auto jstats = journal->stats();
  std::printf("crash workload complete: %ld rounds, %ld journal appends, "
              "%ld compactions\n",
              rounds, jstats.appends, jstats.compactions);
  if (ack != nullptr) std::fclose(ack);
  return 0;
}

// The acknowledged-operation ledger, replayed in log order so
// save/remove/save sequences on a re-used (name, version) resolve to the
// final state.
struct AckLedger {
  std::set<std::pair<std::string, int>> must_present;  ///< ACK SAVE, live.
  std::set<std::pair<std::string, int>> must_absent;   ///< ACK REMOVE final.
  std::set<std::pair<std::string, int>> try_saved;     ///< Any TRY SAVE.
  /// TRY REMOVE without ACK: presence is legitimately ambiguous.
  std::set<std::pair<std::string, int>> uncertain;
};

AckLedger ReplayAckLog(const std::string& path) {
  AckLedger ledger;
  std::ifstream in(path);
  std::string op, what, name;
  int version = 0;
  while (in >> op >> what >> name >> version) {
    const bool is_try = op == "TRY";
    if (what == "SAVE") {
      const std::pair<std::string, int> key{name, version};
      if (is_try) {
        ledger.try_saved.insert(key);
      } else {
        ledger.must_present.insert(key);
        ledger.must_absent.erase(key);
        ledger.uncertain.erase(key);
      }
    } else if (what == "REMOVE") {
      // version < 0 removes every version of the name.
      auto matches = [&](const std::pair<std::string, int>& key) {
        return key.first == name && (version < 0 || key.second == version);
      };
      std::vector<std::pair<std::string, int>> hit;
      for (const auto& key : ledger.must_present) {
        if (matches(key)) hit.push_back(key);
      }
      for (const auto& key : hit) {
        ledger.must_present.erase(key);
        if (is_try) {
          ledger.uncertain.insert(key);
        } else {
          ledger.must_absent.insert(key);
        }
      }
      if (!is_try) {
        // An acked remove settles any earlier try-remove ambiguity too:
        // the key is now definitely gone.
        for (auto it = ledger.uncertain.begin();
             it != ledger.uncertain.end();) {
          if (matches(*it)) {
            ledger.must_absent.insert(*it);
            it = ledger.uncertain.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
    // PIN/UNPIN lines do not affect presence.
  }
  return ledger;
}

// Warm restart + verification. Non-zero exit on any lost acknowledged save,
// any resurrected removed model, any phantom, or a server that never
// reaches ready.
int RunRecovery(const std::string& journal_dir, const std::string& ack_path) {
  using namespace qdb;
  serve::RegistryOptions opts;
  opts.journal_dir = journal_dir;
  opts.journal_compact_every = 16;
  auto opened = serve::ModelRegistry::OpenJournaled(opts);
  if (!opened.ok()) {
    std::printf("recovery failed: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  serve::ModelRegistry& registry = *opened.value();
  const serve::RecoveryReport& report = registry.recovery_report();
  std::printf("recovery: %ld models in %ld us (replayed %ld records, %ld "
              "stale, snapshot seq %llu%s, dropped %ld non-durable)\n",
              report.recovered_models, report.recovery_us,
              report.replayed_records, report.stale_records,
              static_cast<unsigned long long>(report.snapshot_sequence),
              report.tail_truncated ? ", tail truncated" : "",
              report.dropped_nondurable);
  std::set<std::pair<std::string, int>> recovered;
  for (const auto& entry : registry.List()) {
    recovered.insert({entry.name, entry.version});
    std::printf("RECOVERED %s %d\n", entry.name.c_str(), entry.version);
  }

  int violations = 0;
  if (!ack_path.empty()) {
    const AckLedger ledger = ReplayAckLog(ack_path);
    for (const auto& [name, version] : ledger.must_present) {
      if (recovered.count({name, version}) == 0) {
        std::printf("VIOLATION lost acknowledged save: %s v%d\n",
                    name.c_str(), version);
        ++violations;
      }
    }
    for (const auto& [name, version] : ledger.must_absent) {
      if (recovered.count({name, version}) != 0) {
        std::printf("VIOLATION resurrected removed model: %s v%d\n",
                    name.c_str(), version);
        ++violations;
      }
    }
    for (const auto& [name, version] : recovered) {
      if (ledger.try_saved.count({name, version}) == 0) {
        std::printf("VIOLATION phantom model: %s v%d was never saved\n",
                    name.c_str(), version);
        ++violations;
      }
    }
  }

  // Warm restart: prefetch the recovered warm set off the request path and
  // hold admission until the server reports ready.
  serve::ServerOptions server_opts;
  server_opts.max_batch_size = 8;
  server_opts.max_wait_us = 200;
  serve::InferenceServer server(registry, server_opts);
  if (auto s = server.Start(); !s.ok()) {
    std::printf("server start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  store::AsyncModelLoader loader(registry);
  if (auto s = loader.Start(); !s.ok()) {
    std::printf("loader start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (auto s = server.StartWarmup(loader); !s.ok()) {
    std::printf("warmup start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  Timer warm_wall;
  Status health = server.Healthz();
  while (!health.ok() && warm_wall.Seconds() < 30.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    health = server.Healthz();
  }
  if (!health.ok()) {
    std::printf("VIOLATION server never became ready: %s\n",
                health.ToString().c_str());
    ++violations;
  } else {
    // Every recovered model must actually serve — a manifest entry whose
    // artifact cannot be loaded is as lost as a missing one.
    for (const auto& [name, version] : recovered) {
      serve::InferenceRequest request;
      request.model = name;
      request.version = version;
      request.input = {0.4, 0.9};
      request.timeout_us = 5'000'000;
      auto response = server.Submit(std::move(request)).get();
      if (!response.ok()) {
        std::printf("VIOLATION recovered model %s v%d does not serve: %s\n",
                    name.c_str(), version,
                    response.status().ToString().c_str());
        ++violations;
      }
    }
  }
  const auto warm = server.warmup_status();
  loader.Shutdown();
  server.Shutdown();
  if (violations > 0) {
    std::printf("FAILED: %d violations\n", violations);
    return 1;
  }
  std::printf("READY models=%zu warm_ready=%zu warm_failed=%zu\n",
              recovered.size(), warm.ready, warm.failed);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qdb;

  obs::InitTracingFromEnv();
  const char* trace_out = ParseFlagValue(argc, argv, "--trace-out");
  const char* metrics_out = ParseFlagValue(argc, argv, "--metrics-out");
  const bool show_statusz = HasFlag(argc, argv, "--statusz");
  if (trace_out != nullptr) obs::EnableTracing();

  // Chaos opt-in: arm any fault points listed in QDB_FAULTS (no-op unset).
  if (auto s = fault::FaultInjector::Global().ArmFromEnv(); !s.ok()) {
    std::printf("bad QDB_FAULTS: %s\n", s.ToString().c_str());
    return 1;
  }
  for (const auto& point : fault::FaultInjector::Global().ArmedPoints()) {
    std::printf("chaos: fault point '%s' armed\n", point.c_str());
  }

  // ---- Crash-recovery harness modes (see scripts/crash_recovery.sh) -------
  const long crash_rounds = ParseLongFlag(argc, argv, "--crash-rounds", 0);
  const bool recover_mode = HasFlag(argc, argv, "--recover");
  if (crash_rounds > 0 || recover_mode) {
    const char* journal_dir = ParseFlagValue(argc, argv, "--journal-dir");
    if (journal_dir == nullptr) {
      std::printf("--crash-rounds/--recover require --journal-dir\n");
      return 1;
    }
    const char* ack_log = ParseFlagValue(argc, argv, "--ack-log");
    const std::string ack_path = ack_log != nullptr ? ack_log : "";
    if (recover_mode) return RunRecovery(journal_dir, ack_path);
    return RunCrashWorkload(journal_dir, ack_path, crash_rounds,
                            ParseLongFlag(argc, argv, "--seed", 1));
  }

  // ---- Offline: train and package ------------------------------------------
  Rng rng(17);
  Dataset all = MakeMoons(48, 0.12, rng);
  auto [train, test] = TrainTestSplit(all, 0.25, rng);
  MinMaxScale(train, test, 0.0, M_PI);
  MinMaxScale(train, train, 0.0, M_PI);

  VqcOptions vqc_opts;
  vqc_opts.adam.max_iterations = 80;
  auto vqc = VqcClassifier::Train(train, vqc_opts);
  if (!vqc.ok()) {
    std::printf("VQC training failed: %s\n", vqc.status().ToString().c_str());
    return 1;
  }

  FidelityQuantumKernel kernel = MakeAngleKernel();
  auto gram = kernel.GramMatrix(train.features);
  if (!gram.ok()) return 1;
  SvmOptions svm_opts;
  svm_opts.kernel = SvmKernel::kPrecomputed;
  auto svm = Svm::Train(train, svm_opts, &gram.value());
  if (!svm.ok()) {
    std::printf("SVM training failed: %s\n", svm.status().ToString().c_str());
    return 1;
  }

  // Persist the VQC artifact and load it back — the registry round-trips
  // models through the same on-disk format a warehouse deployment would use.
  // --store-budget-mb arms the storage tier's byte budget; file-backed
  // models beyond it are paged out and reload on demand.
  serve::RegistryOptions registry_opts;
  registry_opts.store_budget_bytes = static_cast<size_t>(std::max(
      0l, ParseLongFlag(argc, argv, "--store-budget-mb", 0))) * (1u << 20);
  registry_opts.num_slices = static_cast<int>(
      std::max(1l, ParseLongFlag(argc, argv, "--registry-slices", 1)));
  serve::ModelRegistry registry(registry_opts);
  serve::ModelArtifact vqc_artifact =
      serve::MakeVqcArtifact(vqc.value(), "moons-vqc");
  const std::string artifact_path = "/tmp/qdb_moons_vqc.model";
  if (auto s = vqc_artifact.SaveToFile(artifact_path); !s.ok()) {
    std::printf("save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto loaded = registry.LoadModel(artifact_path);
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  auto svm_servable = registry.Register(serve::MakeKernelSvmArtifact(
      svm.value(), train, serve::KernelEncodingKind::kAngle,
      /*kernel_scale=*/1.0, /*kernel_reps=*/2, "moons-qsvm"));
  if (!svm_servable.ok()) {
    std::printf("register failed: %s\n",
                svm_servable.status().ToString().c_str());
    return 1;
  }
  std::printf("registry: %zu models\n", registry.size());
  for (const auto& entry : registry.List()) {
    std::printf("  %-12s v%d  %s\n", entry.name.c_str(), entry.version,
                serve::ModelTypeName(entry.type));
  }

  // ---- Online: serve under concurrent load ---------------------------------
  const int num_clients = static_cast<int>(
      std::max(1l, ParseLongFlag(argc, argv, "--clients", 8)));
  const double run_seconds =
      ParseDoubleFlag(argc, argv, "--seconds", 0.0);  // 0 = fixed count.
  const int requests_per_client = static_cast<int>(
      std::max(1l, ParseLongFlag(argc, argv, "--requests-per-client", 32)));
  const double quota_rate =
      ParseDoubleFlag(argc, argv, "--quota-rate", 0.0);  // 0 = quotas off.

  serve::ServerOptions opts;
  opts.max_batch_size = 16;
  opts.max_wait_us = 500;
  opts.num_shards = static_cast<int>(
      std::max(1l, ParseLongFlag(argc, argv, "--shards", 1)));
  opts.num_dispatchers = static_cast<int>(std::max(
      1l, ParseLongFlag(argc, argv, "--dispatchers", opts.num_shards)));
  if (quota_rate > 0.0) {
    opts.enable_quotas = true;
    opts.quota.default_spec.rate_per_s = quota_rate;
    opts.quota.default_spec.burst =
        ParseDoubleFlag(argc, argv, "--quota-burst", 16.0);
  }
  serve::InferenceServer server(registry, opts);
  if (auto s = server.Start(); !s.ok()) {
    std::printf("server start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::atomic<int> submitted{0}, correct{0}, failed{0}, quota_rejected{0};
  Timer wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      Rng client_rng(100 + c);
      // Fixed-count mode runs each client for requests_per_client
      // requests; --seconds runs a wall-clock duration instead.
      Timer client_wall;
      for (int i = 0;
           run_seconds > 0.0 ? client_wall.Seconds() < run_seconds
                             : i < requests_per_client;
           ++i) {
        // Closed loop: each client picks a test point (some repeats, so the
        // result cache sees realistic reuse) and alternates models. Clients
        // split across two tenants so --quota-rate shows per-tenant
        // shedding in Statusz and the quota.* metric families.
        const size_t idx = client_rng.UniformInt(0, test.size() - 1);
        serve::InferenceRequest request;
        request.model = (i % 2 == 0) ? "moons-vqc" : "moons-qsvm";
        request.tenant = (c % 2 == 0) ? "tenant-even" : "tenant-odd";
        request.input = test.features[idx];
        request.timeout_us = 2'000'000;
        submitted.fetch_add(1);
        auto response = server.Submit(std::move(request)).get();
        if (!response.ok()) {
          if (response.status().code() == StatusCode::kResourceExhausted) {
            quota_rejected.fetch_add(1);
          } else {
            failed.fetch_add(1);
          }
          continue;
        }
        if (response.value().result.label == test.labels[idx]) {
          correct.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const double elapsed_s = wall.Seconds();
  // Introspection snapshot before shutdown so queue/breaker/SLO state shows
  // the live server, not the drained one.
  if (show_statusz) {
    std::printf("\n%s", server.Statusz().c_str());
    const auto health = server.Healthz();
    std::printf("healthz: %s\n", health.ToString().c_str());
  }
  server.Shutdown();

  const auto stats = server.stats();
  const auto cache = server.result_cache().stats();
  const int total = submitted.load();
  std::printf("\nserved %d requests from %d clients in %.3fs  (%.0f req/s)\n",
              total, num_clients, elapsed_s, total / elapsed_s);
  std::printf("  shards          %d  (dispatchers %d)\n", opts.num_shards,
              opts.num_dispatchers);
  const int answered = total - failed.load() - quota_rejected.load();
  std::printf("  accuracy        %.3f\n",
              answered > 0 ? static_cast<double>(correct.load()) / answered
                           : 0.0);
  std::printf("  batches         %llu  (avg batch %.2f)\n",
              static_cast<unsigned long long>(stats.batches),
              stats.batches ? static_cast<double>(stats.completed) /
                                  static_cast<double>(stats.batches)
                            : 0.0);
  std::printf("  cache           %llu hits / %llu misses  (%zu entries)\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses), cache.size);
  std::printf("  rejected        %llu,  expired %llu,  failed %d\n",
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.expired), failed.load());
  if (opts.enable_quotas) {
    std::printf("  quota rejected  %llu  (tenant buckets at %.1f/s, burst"
                " %.1f)\n",
                static_cast<unsigned long long>(stats.quota_rejected),
                opts.quota.default_spec.rate_per_s,
                opts.quota.default_spec.burst);
  }

  // Latency profile straight from the serve.* metrics the server exports.
  // A non-empty overflow bucket means the top quantiles are clamped to the
  // histogram's last bound; flag them so they are not read as estimates.
  if (auto* wait = obs::GetHistogram("serve.queue_wait_us")) {
    std::printf("  queue wait µs   p50 %.0f   p90 %.0f   p99 %.0f%s\n",
                wait->ApproxQuantile(0.50), wait->ApproxQuantile(0.90),
                wait->ApproxQuantile(0.99),
                wait->OverflowCount() > 0 ? "  [clamped]" : "");
    if (wait->OverflowCount() > 0) {
      std::printf("                  (%ld samples above last bound %.0f)\n",
                  wait->OverflowCount(), wait->bounds().back());
    }
  }
  if (auto* batch = obs::GetHistogram("serve.batch_size")) {
    std::printf("  batch size      p50 %.1f   p90 %.1f%s\n",
                batch->ApproxQuantile(0.50), batch->ApproxQuantile(0.90),
                batch->OverflowCount() > 0 ? "  [clamped]" : "");
  }

  // Storage-tier residency: what the byte budget did to the model fleet.
  const serve::StoreStatus store = registry.store_status();
  if (store.budget_bytes > 0) {
    std::printf("  store budget    %.1f MiB  (resident %.1f MiB, %zu/%zu "
                "models, %lld evictions, %lld reloads)\n",
                static_cast<double>(store.budget_bytes) / (1u << 20),
                static_cast<double>(store.resident_bytes) / (1u << 20),
                store.resident_models, store.registered_models,
                static_cast<long long>(store.evictions),
                static_cast<long long>(store.reloads));
    if (auto* cold = obs::GetHistogram("store.cold_start_us");
        cold != nullptr && cold->TotalCount() > 0) {
      std::printf("  cold start µs   p50 %.0f   p99 %.0f%s\n",
                  cold->ApproxQuantile(0.50), cold->ApproxQuantile(0.99),
                  cold->OverflowCount() > 0 ? "  [clamped]" : "");
    }
  }

  if (trace_out != nullptr) {
    if (auto s = obs::TraceLog::Global().WriteChromeTrace(trace_out); s.ok()) {
      std::printf("\ntrace written to %s\n", trace_out);
    }
  }
  if (metrics_out != nullptr) {
    if (auto s = obs::WriteMetricsJson(metrics_out); s.ok()) {
      std::printf("metrics written to %s\n", metrics_out);
    } else {
      std::printf("metrics write failed: %s\n", s.ToString().c_str());
    }
  }
  return failed.load() == 0 ? 0 : 1;
}
