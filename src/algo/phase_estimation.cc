#include "algo/phase_estimation.h"

#include <cmath>
#include <map>

#include "common/strings.h"
#include "sim/statevector_simulator.h"

namespace qdb {

Circuit QftCircuit(int num_qubits) {
  QDB_CHECK_GE(num_qubits, 1);
  Circuit c(num_qubits);
  // Standard textbook QFT: H then controlled phases with halving angles,
  // finished by reversing the qubit order.
  for (int q = 0; q < num_qubits; ++q) {
    c.H(q);
    for (int k = q + 1; k < num_qubits; ++k) {
      c.CP(k, q, M_PI / static_cast<double>(uint64_t{1} << (k - q)));
    }
  }
  for (int q = 0; q < num_qubits / 2; ++q) c.Swap(q, num_qubits - 1 - q);
  return c;
}

Circuit InverseQftCircuit(int num_qubits) {
  return QftCircuit(num_qubits).Inverse();
}

Result<Circuit> PhaseEstimationCircuit(double phase, int precision_qubits) {
  if (precision_qubits < 1 || precision_qubits > 16) {
    return Status::InvalidArgument(
        StrCat("precision_qubits must be in [1, 16], got ", precision_qubits));
  }
  const int t = precision_qubits;
  Circuit c(t + 1);
  const int target = t;
  c.X(target);  // Eigenstate |1⟩ of P(2πφ).
  for (int q = 0; q < t; ++q) c.H(q);
  // Ancilla q (MSB of the readout) controls U^{2^{t−1−q}}.
  for (int q = 0; q < t; ++q) {
    const uint64_t power = uint64_t{1} << (t - 1 - q);
    c.CP(q, target, 2.0 * M_PI * phase * static_cast<double>(power));
  }
  // Inverse QFT on the ancilla register (qubits 0..t−1).
  Circuit iqft = InverseQftCircuit(t);
  std::vector<int> mapping(t);
  for (int q = 0; q < t; ++q) mapping[q] = q;
  c.AppendMapped(iqft, mapping);
  return c;
}

Result<PhaseEstimate> EstimatePhase(double phase, int precision_qubits,
                                    int shots, Rng& rng) {
  if (shots < 1) {
    return Status::InvalidArgument("shots must be >= 1");
  }
  QDB_ASSIGN_OR_RETURN(Circuit c,
                       PhaseEstimationCircuit(phase, precision_qubits));
  StateVectorSimulator sim;
  QDB_ASSIGN_OR_RETURN(StateVector state, sim.Run(c));
  auto counts = state.SampleCounts(rng, shots);

  // Aggregate over the ancilla register (drop the target qubit, the LSB).
  std::map<uint64_t, int> readings;
  for (const auto& [outcome, count] : counts) {
    readings[outcome >> 1] += count;
  }
  PhaseEstimate best;
  int best_count = -1;
  for (const auto& [reading, count] : readings) {
    if (count > best_count) {
      best_count = count;
      best.raw_outcome = reading;
    }
  }
  best.estimated_phase = static_cast<double>(best.raw_outcome) /
                         static_cast<double>(uint64_t{1} << precision_qubits);
  best.top_probability = static_cast<double>(best_count) / shots;
  return best;
}

}  // namespace qdb
