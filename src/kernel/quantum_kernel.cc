#include "kernel/quantum_kernel.h"

#include "common/check.h"
#include "common/thread_pool.h"
#include "encoding/encodings.h"
#include "linalg/vector_ops.h"
#include "obs/obs.h"
#include "sim/statevector_simulator.h"

namespace qdb {

namespace {

/// Gram / cross-matrix construction counters: how many kernel entries were
/// computed and how many encoding circuits were simulated to get them.
struct KernelCounters {
  obs::Counter* circuit_runs = obs::GetCounter("kernel.circuit_runs");
  obs::Counter* entries = obs::GetCounter("kernel.entries_computed");
};

KernelCounters& Counters() {
  static KernelCounters counters;
  return counters;
}

}  // namespace

FidelityQuantumKernel::FidelityQuantumKernel(EncodingFn encoder)
    : encoder_(std::move(encoder)) {
  QDB_CHECK(encoder_ != nullptr);
}

Result<CVector> FidelityQuantumKernel::EncodedState(const DVector& x) const {
  if (x.empty()) {
    return Status::InvalidArgument("cannot encode an empty feature vector");
  }
  Circuit circuit = encoder_(x);
  QDB_ASSIGN_OR_RETURN(StateVector state, simulator_.Run(circuit));
  Counters().circuit_runs->Increment();
  return state.ToAmplitudes();
}

Result<double> FidelityQuantumKernel::Evaluate(const DVector& x,
                                               const DVector& y) const {
  QDB_ASSIGN_OR_RETURN(CVector phi_x, EncodedState(x));
  QDB_ASSIGN_OR_RETURN(CVector phi_y, EncodedState(y));
  if (phi_x.size() != phi_y.size()) {
    return Status::InvalidArgument("encoded states have different widths");
  }
  Counters().entries->Increment();
  return Fidelity(phi_x, phi_y);
}

Result<std::vector<CVector>> FidelityQuantumKernel::EncodedStates(
    const std::vector<DVector>& xs) const {
  std::vector<Circuit> circuits;
  circuits.reserve(xs.size());
  for (const auto& x : xs) {
    if (x.empty()) {
      return Status::InvalidArgument("cannot encode an empty feature vector");
    }
    circuits.push_back(encoder_(x));
  }
  std::vector<CVector> states(xs.size());
  QDB_RETURN_IF_ERROR(simulator_.RunBatchReduce(
      circuits, {}, nullptr, [&states](size_t i, StateVector&& state) {
        states[i] = state.ToAmplitudes();
        return Status::OK();
      }));
  Counters().circuit_runs->Increment(static_cast<long>(xs.size()));
  for (size_t i = 1; i < states.size(); ++i) {
    if (states[i].size() != states.front().size()) {
      return Status::InvalidArgument("encoded states have different widths");
    }
  }
  return states;
}

Result<Matrix> FidelityQuantumKernel::GramMatrix(
    const std::vector<DVector>& xs) const {
  if (xs.empty()) {
    return Status::InvalidArgument("empty data set");
  }
  QDB_TRACE_SCOPE("FidelityQuantumKernel::GramMatrix", "kernel");
  QDB_ASSIGN_OR_RETURN(std::vector<CVector> states, EncodedStates(xs));
  Matrix gram(xs.size(), xs.size());
  // Row-wise fan-out: task i owns every (i, j) pair with j > i, so writes
  // are disjoint and the result is identical at any thread count.
  ThreadPool::Global().RunTasks(xs.size(), [&](size_t i) {
    gram(i, i) = Complex(1.0, 0.0);
    for (size_t j = i + 1; j < xs.size(); ++j) {
      const double k = Fidelity(states[i], states[j]);
      gram(i, j) = Complex(k, 0.0);
      gram(j, i) = Complex(k, 0.0);
    }
  });
  // Off-diagonal upper triangle was computed; the diagonal is free.
  Counters().entries->Increment(
      static_cast<long>(xs.size() * (xs.size() - 1) / 2));
  return gram;
}

Result<Matrix> FidelityQuantumKernel::CrossMatrix(
    const std::vector<DVector>& test, const std::vector<DVector>& train) const {
  if (test.empty() || train.empty()) {
    return Status::InvalidArgument("empty data set");
  }
  QDB_TRACE_SCOPE("FidelityQuantumKernel::CrossMatrix", "kernel");
  // One batch over train ∪ test so every encoding circuit fans out together.
  std::vector<DVector> points = train;
  points.insert(points.end(), test.begin(), test.end());
  QDB_ASSIGN_OR_RETURN(std::vector<CVector> states, EncodedStates(points));
  Matrix cross(test.size(), train.size());
  ThreadPool::Global().RunTasks(test.size(), [&](size_t i) {
    const CVector& phi = states[train.size() + i];
    for (size_t j = 0; j < train.size(); ++j) {
      cross(i, j) = Complex(Fidelity(phi, states[j]), 0.0);
    }
  });
  Counters().entries->Increment(
      static_cast<long>(test.size() * train.size()));
  return cross;
}

Result<Matrix> FidelityQuantumKernel::CrossFromEncoded(
    const std::vector<DVector>& test,
    const std::vector<CVector>& ref_states) const {
  if (test.empty() || ref_states.empty()) {
    return Status::InvalidArgument("empty data set");
  }
  QDB_TRACE_SCOPE("FidelityQuantumKernel::CrossFromEncoded", "kernel");
  QDB_ASSIGN_OR_RETURN(std::vector<CVector> states, EncodedStates(test));
  for (const auto& ref : ref_states) {
    if (ref.size() != states.front().size()) {
      return Status::InvalidArgument(
          "pre-encoded reference states have a different width than the "
          "encoded test points");
    }
  }
  Matrix cross(test.size(), ref_states.size());
  ThreadPool::Global().RunTasks(test.size(), [&](size_t i) {
    for (size_t j = 0; j < ref_states.size(); ++j) {
      cross(i, j) = Complex(Fidelity(states[i], ref_states[j]), 0.0);
    }
  });
  Counters().entries->Increment(
      static_cast<long>(test.size() * ref_states.size()));
  return cross;
}

FidelityQuantumKernel MakeAngleKernel(double scale) {
  return FidelityQuantumKernel([scale](const DVector& x) {
    return AngleEncoding(x, RotationAxis::kY, scale);
  });
}

FidelityQuantumKernel MakeZZFeatureMapKernel(int reps) {
  return FidelityQuantumKernel(
      [reps](const DVector& x) { return ZZFeatureMap(x, reps); });
}

FidelityQuantumKernel MakeAmplitudeKernel() {
  return FidelityQuantumKernel([](const DVector& x) {
    auto circuit = AmplitudeEncoding(x);
    QDB_CHECK(circuit.ok()) << circuit.status().ToString();
    return std::move(circuit).value();
  });
}

}  // namespace qdb
