file(REMOVE_RECURSE
  "CMakeFiles/bench_encodings.dir/bench_encodings.cc.o"
  "CMakeFiles/bench_encodings.dir/bench_encodings.cc.o.d"
  "bench_encodings"
  "bench_encodings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_encodings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
