#include "db/transactions.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"

namespace qdb {

bool TxnScheduleInstance::Conflicts(int t1, int t2) const {
  for (const auto& [a, b] : conflicts) {
    if ((a == t1 && b == t2) || (a == t2 && b == t1)) return true;
  }
  return false;
}

int TxnScheduleInstance::ConflictViolations(
    const std::vector<int>& slots) const {
  QDB_CHECK_EQ(static_cast<int>(slots.size()), num_transactions);
  int violations = 0;
  for (const auto& [a, b] : conflicts) {
    if (slots[a] == slots[b]) ++violations;
  }
  return violations;
}

int TxnScheduleInstance::Makespan(const std::vector<int>& slots) const {
  QDB_CHECK_EQ(static_cast<int>(slots.size()), num_transactions);
  int highest = -1;
  for (int s : slots) highest = std::max(highest, s);
  return highest + 1;
}

TxnScheduleInstance RandomTxnInstance(int num_transactions, int num_slots,
                                      double conflict_probability, Rng& rng) {
  QDB_CHECK_GE(num_transactions, 1);
  QDB_CHECK_GE(num_slots, 1);
  TxnScheduleInstance instance;
  instance.num_transactions = num_transactions;
  instance.num_slots = num_slots;
  for (int a = 0; a < num_transactions; ++a) {
    for (int b = a + 1; b < num_transactions; ++b) {
      if (rng.Bernoulli(conflict_probability)) {
        instance.conflicts.push_back({a, b});
      }
    }
  }
  return instance;
}

int TxnScheduleQubo::VarIndex(int transaction, int slot) const {
  QDB_CHECK_GE(transaction, 0);
  QDB_CHECK_LT(transaction, instance_.num_transactions);
  QDB_CHECK_GE(slot, 0);
  QDB_CHECK_LT(slot, instance_.num_slots);
  return transaction * instance_.num_slots + slot;
}

Result<TxnScheduleQubo> TxnScheduleQubo::Create(
    const TxnScheduleInstance& instance, double penalty_weight) {
  if (instance.num_transactions < 1 || instance.num_slots < 1) {
    return Status::InvalidArgument("instance needs transactions and slots");
  }
  const int t_count = instance.num_transactions;
  const int s_count = instance.num_slots;
  // Early-slot preference: weight s per slot index; its maximum total is
  // bounded by T·(S−1), so penalties above that dominate.
  const double slot_weight = 1.0;
  const double penalty =
      penalty_weight > 0.0
          ? penalty_weight
          : slot_weight * t_count * std::max(s_count - 1, 1) + 1.0;

  TxnScheduleQubo sched(instance, Qubo(t_count * s_count));
  Qubo& qubo = sched.qubo_;

  // Early-slot preference (linear).
  for (int t = 0; t < t_count; ++t) {
    for (int s = 1; s < s_count; ++s) {
      qubo.AddLinear(sched.VarIndex(t, s), slot_weight * s);
    }
  }
  // One-hot per transaction.
  for (int t = 0; t < t_count; ++t) {
    qubo.AddOffset(penalty);
    for (int s = 0; s < s_count; ++s) {
      qubo.AddLinear(sched.VarIndex(t, s), -penalty);
      for (int s2 = s + 1; s2 < s_count; ++s2) {
        qubo.AddQuadratic(sched.VarIndex(t, s), sched.VarIndex(t, s2),
                          2.0 * penalty);
      }
    }
  }
  // Conflicting transactions must not share a slot.
  for (const auto& [a, b] : instance.conflicts) {
    if (a < 0 || a >= t_count || b < 0 || b >= t_count || a == b) {
      return Status::InvalidArgument(
          StrCat("bad conflict pair (", a, ", ", b, ")"));
    }
    for (int s = 0; s < s_count; ++s) {
      qubo.AddQuadratic(sched.VarIndex(a, s), sched.VarIndex(b, s), penalty);
    }
  }
  return sched;
}

std::vector<int> TxnScheduleQubo::Decode(
    const std::vector<uint8_t>& bits) const {
  QDB_CHECK_EQ(static_cast<int>(bits.size()), qubo_.num_vars());
  const int t_count = instance_.num_transactions;
  const int s_count = instance_.num_slots;
  std::vector<int> slots(t_count, -1);
  for (int t = 0; t < t_count; ++t) {
    int chosen = -1;
    bool conflict = false;
    for (int s = 0; s < s_count; ++s) {
      if (bits[t * s_count + s]) {
        if (chosen >= 0) conflict = true;
        chosen = s;
      }
    }
    if (chosen >= 0 && !conflict) slots[t] = chosen;
  }
  // Repair: place each unassigned transaction into its least-conflicting
  // (then earliest) slot given the current partial schedule.
  for (int t = 0; t < t_count; ++t) {
    if (slots[t] >= 0) continue;
    int best_slot = 0;
    int best_conflicts = t_count + 1;
    for (int s = 0; s < s_count; ++s) {
      int conflicts_here = 0;
      for (int other = 0; other < t_count; ++other) {
        if (other != t && slots[other] == s && instance_.Conflicts(t, other)) {
          ++conflicts_here;
        }
      }
      if (conflicts_here < best_conflicts) {
        best_conflicts = conflicts_here;
        best_slot = s;
      }
    }
    slots[t] = best_slot;
  }
  return slots;
}

std::vector<int> GreedyFirstFitSchedule(const TxnScheduleInstance& instance) {
  std::vector<int> slots(instance.num_transactions, -1);
  for (int t = 0; t < instance.num_transactions; ++t) {
    int placed = -1;
    for (int s = 0; s < instance.num_slots && placed < 0; ++s) {
      bool clash = false;
      for (int other = 0; other < t && !clash; ++other) {
        clash = slots[other] == s && instance.Conflicts(t, other);
      }
      if (!clash) placed = s;
    }
    slots[t] = placed >= 0 ? placed : instance.num_slots - 1;
  }
  return slots;
}

}  // namespace qdb
