# Empty compiler generated dependencies file for graph_hamiltonians_test.
# This may be replaced when dependencies are built.
