# Empty dependencies file for qaoa_test.
# This may be replaced when dependencies are built.
