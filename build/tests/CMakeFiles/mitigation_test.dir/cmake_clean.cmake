file(REMOVE_RECURSE
  "CMakeFiles/mitigation_test.dir/mitigation_test.cc.o"
  "CMakeFiles/mitigation_test.dir/mitigation_test.cc.o.d"
  "mitigation_test"
  "mitigation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitigation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
