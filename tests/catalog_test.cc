// Tests for the relational catalog.

#include <gtest/gtest.h>

#include "db/catalog.h"

namespace qdb {
namespace {

TEST(CatalogTest, AddAndRetrieveTables) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("orders", 1e6).ok());
  ASSERT_TRUE(catalog.AddTable("customers", 5e4).ok());
  EXPECT_EQ(catalog.num_tables(), 2u);
  auto t = catalog.GetTable("orders");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().cardinality, 1e6);
  EXPECT_EQ(catalog.TableIndex("customers").value(), 1);
}

TEST(CatalogTest, RejectsDuplicatesAndBadInput) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("t", 10).ok());
  EXPECT_EQ(catalog.AddTable("t", 20).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog.AddTable("", 10).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(catalog.AddTable("u", 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(catalog.AddTable("v", -5).code(), StatusCode::kInvalidArgument);
}

TEST(CatalogTest, UnknownTableIsNotFound) {
  Catalog catalog;
  EXPECT_EQ(catalog.GetTable("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.TableIndex("nope").status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, SelectivityDefaultsToOne) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("a", 10).ok());
  ASSERT_TRUE(catalog.AddTable("b", 20).ok());
  auto s = catalog.GetSelectivity("a", "b");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value(), 1.0);
}

TEST(CatalogTest, SelectivityIsSymmetric) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("a", 10).ok());
  ASSERT_TRUE(catalog.AddTable("b", 20).ok());
  ASSERT_TRUE(catalog.SetSelectivity("a", "b", 0.01).ok());
  EXPECT_EQ(catalog.GetSelectivity("b", "a").value(), 0.01);
  EXPECT_EQ(catalog.GetSelectivity("a", "b").value(), 0.01);
}

TEST(CatalogTest, BuildJoinGraphBridgesToOptimizer) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("orders", 1e5).ok());
  ASSERT_TRUE(catalog.AddTable("customers", 1e3).ok());
  ASSERT_TRUE(catalog.AddTable("items", 1e4).ok());
  ASSERT_TRUE(catalog.SetSelectivity("orders", "customers", 1e-3).ok());
  ASSERT_TRUE(catalog.SetSelectivity("orders", "items", 1e-4).ok());
  auto graph = catalog.BuildJoinGraph(
      {{"orders", "customers"}, {"orders", "items"}});
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_EQ(graph.value().num_relations(), 3);
  EXPECT_EQ(graph.value().edges().size(), 2u);
  EXPECT_NEAR(graph.value().cardinality(0), 1e5, 1e-6);
  EXPECT_NEAR(graph.value().Selectivity(0, 1), 1e-3, 1e-12);
  EXPECT_TRUE(graph.value().IsConnected());
}

TEST(CatalogTest, BuildJoinGraphValidation) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("only", 10).ok());
  EXPECT_EQ(catalog.BuildJoinGraph({}).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(catalog.AddTable("other", 20).ok());
  EXPECT_EQ(catalog.BuildJoinGraph({{"only", "ghost"}}).status().code(),
            StatusCode::kNotFound);
  // Duplicate join pairs surface the graph's AlreadyExists error.
  ASSERT_TRUE(catalog.SetSelectivity("only", "other", 0.5).ok());
  auto dup = catalog.BuildJoinGraph(
      {{"only", "other"}, {"other", "only"}});
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, SelectivityValidation) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("a", 10).ok());
  ASSERT_TRUE(catalog.AddTable("b", 20).ok());
  EXPECT_FALSE(catalog.SetSelectivity("a", "a", 0.5).ok());
  EXPECT_FALSE(catalog.SetSelectivity("a", "b", 0.0).ok());
  EXPECT_FALSE(catalog.SetSelectivity("a", "b", 1.5).ok());
  EXPECT_FALSE(catalog.SetSelectivity("a", "c", 0.5).ok());
}

}  // namespace
}  // namespace qdb
