# Empty dependencies file for qubo_ising_test.
# This may be replaced when dependencies are built.
