#include "store/registry_journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/strings.h"
#include "fault/fault_injector.h"
#include "obs/obs.h"
#include "store/binary_format.h"

namespace qdb {
namespace store {

namespace {

constexpr char kJournalMagic[8] = {'Q', 'D', 'B', 'J', 'R', 'N', 'L', '1'};
constexpr char kSnapshotMagic[8] = {'Q', 'D', 'B', 'M', 'A', 'N', 'I', '1'};
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kFileHeaderSize = 16;  // magic + u32 version + u32 reserved
constexpr size_t kRecordHeaderSize = 12;  // u32 payload_size + u64 checksum
/// A record is a handful of scalars plus three short strings; anything near
/// this cap is garbage masquerading as a size field.
constexpr uint32_t kMaxRecordPayload = 1u << 20;
constexpr uint64_t kMaxManifestEntries = 1ull << 24;
constexpr uint32_t kMaxNameBytes = 1u << 16;

uint64_t Fnv1a(const char* data, size_t n) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

template <typename T>
void Put(std::string& out, T v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

// Bounds-checked scalar read; false = out of range.
template <typename T>
bool Get(const std::string& bytes, size_t offset, T& v) {
  if (offset + sizeof(T) > bytes.size() || offset + sizeof(T) < offset) {
    return false;
  }
  std::memcpy(&v, bytes.data() + offset, sizeof(T));
  return true;
}

void PutString(std::string& out, const std::string& s) {
  Put<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out.append(s);
}

bool GetString(const std::string& bytes, size_t& offset, std::string& s) {
  uint32_t n = 0;
  if (!Get(bytes, offset, n)) return false;
  offset += sizeof(uint32_t);
  if (n > kMaxNameBytes || offset + n > bytes.size()) return false;
  s.assign(bytes, offset, n);
  offset += n;
  return true;
}

std::string FileHeaderBytes() {
  std::string out;
  out.reserve(kFileHeaderSize);
  out.append(kJournalMagic, sizeof(kJournalMagic));
  Put<uint32_t>(out, kFormatVersion);
  Put<uint32_t>(out, 0u);
  return out;
}

std::string EncodeRecord(const JournalRecord& record) {
  std::string payload;
  payload.reserve(48 + record.name.size() + record.artifact_path.size() +
                  record.file_name.size());
  Put<uint32_t>(payload, static_cast<uint32_t>(record.event));
  Put<uint64_t>(payload, record.sequence);
  Put<int32_t>(payload, record.version);
  Put<uint32_t>(payload, record.model_type);
  Put<int32_t>(payload, record.num_features);
  Put<int32_t>(payload, record.file_version);
  PutString(payload, record.name);
  PutString(payload, record.artifact_path);
  PutString(payload, record.file_name);

  std::string out;
  out.reserve(kRecordHeaderSize + payload.size());
  Put<uint32_t>(out, static_cast<uint32_t>(payload.size()));
  Put<uint64_t>(out, Fnv1a(payload.data(), payload.size()));
  out.append(payload);
  return out;
}

bool DecodePayload(const std::string& payload, JournalRecord& record) {
  size_t offset = 0;
  uint32_t event = 0;
  if (!Get(payload, offset, event)) return false;
  offset += sizeof(uint32_t);
  if (event < static_cast<uint32_t>(JournalEvent::kRegister) ||
      event > static_cast<uint32_t>(JournalEvent::kRemove)) {
    return false;
  }
  record.event = static_cast<JournalEvent>(event);
  if (!Get(payload, offset, record.sequence)) return false;
  offset += sizeof(uint64_t);
  int32_t version = 0;
  if (!Get(payload, offset, version)) return false;
  offset += sizeof(int32_t);
  record.version = version;
  if (!Get(payload, offset, record.model_type)) return false;
  offset += sizeof(uint32_t);
  int32_t num_features = 0;
  if (!Get(payload, offset, num_features)) return false;
  offset += sizeof(int32_t);
  record.num_features = num_features;
  int32_t file_version = 0;
  if (!Get(payload, offset, file_version)) return false;
  offset += sizeof(int32_t);
  record.file_version = file_version;
  if (!GetString(payload, offset, record.name)) return false;
  if (!GetString(payload, offset, record.artifact_path)) return false;
  if (!GetString(payload, offset, record.file_name)) return false;
  return offset == payload.size() && !record.name.empty();
}

/// store.journal.* metric handles, resolved once.
struct JournalMetrics {
  obs::Counter* appends = obs::GetCounter("store.journal.appends");
  obs::Counter* bytes = obs::GetCounter("store.journal.bytes");
  obs::Counter* compactions = obs::GetCounter("store.journal.compactions");
  obs::Counter* compact_failures =
      obs::GetCounter("store.journal.compact_failures");
  obs::Counter* replayed = obs::GetCounter("store.journal.replayed");
  obs::Counter* truncated_tails =
      obs::GetCounter("store.journal.truncated_tails");
  obs::Gauge* manifest_entries =
      obs::GetGauge("store.journal.manifest_entries");
};

JournalMetrics& Metrics() {
  static JournalMetrics metrics;
  return metrics;
}

Status PosixError(const char* what, const std::string& path) {
  return Status::Internal(
      StrCat(what, " '", path, "': ", std::strerror(errno)));
}

}  // namespace

const char* JournalEventName(JournalEvent event) {
  switch (event) {
    case JournalEvent::kRegister: return "register";
    case JournalEvent::kPromote: return "promote";
    case JournalEvent::kEvictToDisk: return "evict_to_disk";
    case JournalEvent::kPin: return "pin";
    case JournalEvent::kUnpin: return "unpin";
    case JournalEvent::kRemove: return "remove";
  }
  return "unknown";
}

RegistryJournal::RegistryJournal(std::string dir,
                                 const JournalOptions& options)
    : dir_(std::move(dir)),
      options_(options),
      journal_path_(StrCat(dir_, "/journal.log")),
      snapshot_path_(StrCat(dir_, "/manifest.snapshot")) {}

RegistryJournal::~RegistryJournal() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<RegistryJournal>> RegistryJournal::Open(
    const std::string& dir, const JournalOptions& options) {
  if (dir.empty()) {
    return Status::InvalidArgument("journal directory must not be empty");
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return PosixError("cannot create journal directory", dir);
  }
  std::unique_ptr<RegistryJournal> journal(
      new RegistryJournal(dir, options));
  QDB_RETURN_IF_ERROR(journal->Recover());
  return journal;
}

Status RegistryJournal::Recover() {
  std::lock_guard<std::mutex> lock(mu_);

  // 1. The snapshot, if one exists. It was written with AtomicWriteFile, so
  // it is either absent or was complete at rename time — a checksum failure
  // here is bit rot or tampering, not crash debris, and fails closed.
  {
    std::ifstream in(snapshot_path_, std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      const std::string bytes = buffer.str();
      if (bytes.size() < kFileHeaderSize + 2 * sizeof(uint64_t) ||
          std::memcmp(bytes.data(), kSnapshotMagic,
                      sizeof(kSnapshotMagic)) != 0) {
        return Status::InvalidArgument(
            StrCat("registry snapshot '", snapshot_path_,
                   "' is corrupted (bad magic or truncated)"));
      }
      uint64_t stored_checksum = 0;
      Get(bytes, bytes.size() - sizeof(uint64_t), stored_checksum);
      if (Fnv1a(bytes.data(), bytes.size() - sizeof(uint64_t)) !=
          stored_checksum) {
        return Status::InvalidArgument(StrCat(
            "registry snapshot '", snapshot_path_, "' failed its checksum"));
      }
      size_t offset = sizeof(kSnapshotMagic);
      uint32_t format = 0, reserved = 0;
      Get(bytes, offset, format);
      offset += sizeof(uint32_t);
      Get(bytes, offset, reserved);
      offset += sizeof(uint32_t);
      if (format != kFormatVersion) {
        return Status::Unimplemented(
            StrCat("registry snapshot format ", format, " is not supported"));
      }
      uint64_t last_sequence = 0, count = 0;
      if (!Get(bytes, offset, last_sequence)) {
        return Status::InvalidArgument("registry snapshot truncated");
      }
      offset += sizeof(uint64_t);
      if (!Get(bytes, offset, count) || count > kMaxManifestEntries) {
        return Status::InvalidArgument(
            "registry snapshot has an implausible entry count");
      }
      offset += sizeof(uint64_t);
      for (uint64_t i = 0; i < count; ++i) {
        ManifestEntry entry;
        int32_t version = 0, num_features = 0, file_version = 0;
        uint8_t pinned = 0, hot = 0;
        if (!GetString(bytes, offset, entry.name) ||
            !Get(bytes, offset, version) ||
            !Get(bytes, offset + 4, entry.model_type) ||
            !Get(bytes, offset + 8, num_features)) {
          return Status::InvalidArgument("registry snapshot entry truncated");
        }
        offset += 12;
        entry.version = version;
        entry.num_features = num_features;
        if (!GetString(bytes, offset, entry.artifact_path) ||
            !GetString(bytes, offset, entry.file_name)) {
          return Status::InvalidArgument("registry snapshot entry truncated");
        }
        if (!Get(bytes, offset, file_version) ||
            !Get(bytes, offset + 4, pinned) ||
            !Get(bytes, offset + 5, hot)) {
          return Status::InvalidArgument("registry snapshot entry truncated");
        }
        offset += 6;
        entry.file_version = file_version;
        entry.pinned = pinned != 0;
        entry.hot = hot != 0;
        manifest_[{entry.name, entry.version}] = std::move(entry);
      }
      recovery_.snapshot_sequence = last_sequence;
      recovery_.snapshot_entries = static_cast<long>(manifest_.size());
      next_sequence_ = last_sequence + 1;
    }
  }

  // 2. The journal: replay the valid prefix, truncate crash debris. The
  // "store.journal.replay" fault point (scoped by the directory) lets chaos
  // runs fail, stall, or tear the replay read itself.
  std::string bytes;
  bool file_exists = false;
  {
    double keep_fraction = 1.0;
    if (fault::FaultInjector::Global().enabled()) {
      if (std::optional<fault::FaultSpec> fired =
              fault::FaultInjector::Global().Sample("store.journal.replay",
                                                    dir_)) {
        switch (fired->kind) {
          case fault::FaultKind::kError:
            return Status(fired->error_code,
                          StrCat("injected fault at 'store.journal.replay' "
                                 "for '", dir_, "'"));
          case fault::FaultKind::kLatency:
            std::this_thread::sleep_for(
                std::chrono::microseconds(fired->latency_us));
            break;
          case fault::FaultKind::kTornWrite:
            keep_fraction = fired->keep_fraction;
            break;
          case fault::FaultKind::kKill:
            fault::KillProcess();
          case fault::FaultKind::kSpuriousWake:
            break;
        }
      }
    }
    std::ifstream in(journal_path_, std::ios::binary);
    if (in) {
      file_exists = true;
      std::ostringstream buffer;
      buffer << in.rdbuf();
      bytes = buffer.str();
      if (keep_fraction < 1.0) {
        bytes.resize(static_cast<size_t>(
            static_cast<double>(bytes.size()) * keep_fraction));
      }
    }
  }

  size_t valid_end = 0;
  if (!file_exists || bytes.size() < kFileHeaderSize) {
    // Fresh directory, or a crash during the very first header write: start
    // a new journal. (A short file cannot hold even one record, so nothing
    // acknowledged can be lost here.)
    QDB_RETURN_IF_ERROR(AtomicWriteFile(journal_path_, FileHeaderBytes(),
                                        "journal.reset"));
    valid_end = kFileHeaderSize;
  } else {
    if (std::memcmp(bytes.data(), kJournalMagic, sizeof(kJournalMagic)) !=
        0) {
      // A full-size header that is not ours is a real foreign file — wiping
      // it would destroy someone's data.
      return Status::InvalidArgument(StrCat(
          "'", journal_path_, "' exists but is not a registry journal"));
    }
    uint32_t format = 0;
    Get(bytes, sizeof(kJournalMagic), format);
    if (format != kFormatVersion) {
      return Status::Unimplemented(
          StrCat("registry journal format ", format, " is not supported"));
    }
    valid_end = kFileHeaderSize;
    size_t offset = kFileHeaderSize;
    uint64_t max_sequence = next_sequence_ - 1;
    for (;;) {
      if (offset + kRecordHeaderSize > bytes.size()) break;  // Torn header.
      uint32_t payload_size = 0;
      uint64_t checksum = 0;
      Get(bytes, offset, payload_size);
      Get(bytes, offset + sizeof(uint32_t), checksum);
      if (payload_size > kMaxRecordPayload ||
          offset + kRecordHeaderSize + payload_size > bytes.size()) {
        break;  // Torn or garbage tail.
      }
      const std::string payload =
          bytes.substr(offset + kRecordHeaderSize, payload_size);
      if (Fnv1a(payload.data(), payload.size()) != checksum) break;
      JournalRecord record;
      if (!DecodePayload(payload, record)) break;
      // The record is intact. Stale records (folded into the snapshot
      // already) are skipped; this is what makes a crash between the
      // snapshot rename and the journal reset harmless.
      if (record.sequence > recovery_.snapshot_sequence) {
        ApplyLocked(record);
        ++recovery_.replayed_records;
        Metrics().replayed->Increment();
      } else {
        ++recovery_.stale_records;
      }
      max_sequence = std::max(max_sequence, record.sequence);
      offset += kRecordHeaderSize + payload_size;
      valid_end = offset;
    }
    next_sequence_ = max_sequence + 1;
    if (valid_end < bytes.size()) {
      // Torn tail: physically truncate so the next append lands directly
      // after the last valid record — appending past garbage would hide it
      // behind valid-looking records and corrupt the *next* replay.
      recovery_.tail_truncated = true;
      recovery_.truncated_bytes = bytes.size() - valid_end;
      Metrics().truncated_tails->Increment();
      if (::truncate(journal_path_.c_str(),
                     static_cast<off_t>(valid_end)) != 0) {
        return PosixError("cannot truncate torn journal tail of",
                          journal_path_);
      }
    }
  }

  fd_ = ::open(journal_path_.c_str(), O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) return PosixError("cannot open journal", journal_path_);
  Metrics().manifest_entries->Set(static_cast<double>(manifest_.size()));
  return Status::OK();
}

void RegistryJournal::ApplyLocked(const JournalRecord& record) {
  const std::pair<std::string, int> key(record.name, record.version);
  switch (record.event) {
    case JournalEvent::kRegister: {
      auto it = manifest_.find(key);
      if (it != manifest_.end()) {
        // A duplicate register (a racing insert that lost) must not clobber
        // the durable fields of the entry that won.
        it->second.hot = true;
        break;
      }
      ManifestEntry entry;
      entry.name = record.name;
      entry.version = record.version;
      entry.model_type = record.model_type;
      entry.num_features = record.num_features;
      manifest_[key] = std::move(entry);
      break;
    }
    case JournalEvent::kPromote: {
      ManifestEntry& entry = manifest_[key];
      entry.name = record.name;
      entry.version = record.version;
      entry.model_type = record.model_type;
      entry.num_features = record.num_features;
      entry.artifact_path = record.artifact_path;
      entry.file_name = record.file_name;
      entry.file_version = record.file_version;
      entry.hot = true;
      break;
    }
    case JournalEvent::kEvictToDisk: {
      auto it = manifest_.find(key);
      if (it != manifest_.end()) it->second.hot = false;
      break;
    }
    case JournalEvent::kPin: {
      auto it = manifest_.find(key);
      if (it != manifest_.end()) it->second.pinned = true;
      break;
    }
    case JournalEvent::kUnpin: {
      auto it = manifest_.find(key);
      if (it != manifest_.end()) it->second.pinned = false;
      break;
    }
    case JournalEvent::kRemove: {
      if (record.version < 0) {
        auto it = manifest_.lower_bound({record.name, INT32_MIN});
        while (it != manifest_.end() && it->first.first == record.name) {
          it = manifest_.erase(it);
        }
      } else {
        manifest_.erase(key);
      }
      break;
    }
  }
}

Status RegistryJournal::Append(JournalRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (poisoned_) {
    return Status::FailedPrecondition(
        "registry journal is in a simulated-crash state (torn append); "
        "reopen the journal to recover");
  }
  if (record.name.empty()) {
    return Status::InvalidArgument("journal record has no model name");
  }
  record.sequence = next_sequence_++;
  const std::string bytes = EncodeRecord(record);

  // Fault point "store.journal.append", scoped by the model name. An
  // injected error fails the append before any byte lands (the caller must
  // not apply its mutation — write-ahead both ways). torn_write persists a
  // record prefix and then poisons the journal: the process "crashed" with
  // a half-written record, and only a reopen (which truncates the tail)
  // recovers. kill persists the prefix and then actually dies.
  size_t write_bytes = bytes.size();
  bool kill_after_write = false;
  bool poison_after_write = false;
  if (fault::FaultInjector::Global().enabled()) {
    if (std::optional<fault::FaultSpec> fired =
            fault::FaultInjector::Global().Sample("store.journal.append",
                                                  record.name)) {
      switch (fired->kind) {
        case fault::FaultKind::kError:
          return Status(fired->error_code,
                        StrCat("injected fault at 'store.journal.append' "
                               "for '", record.name, "'"));
        case fault::FaultKind::kLatency:
          std::this_thread::sleep_for(
              std::chrono::microseconds(fired->latency_us));
          break;
        case fault::FaultKind::kTornWrite:
          poison_after_write = true;
          write_bytes = static_cast<size_t>(
              static_cast<double>(bytes.size()) * fired->keep_fraction);
          break;
        case fault::FaultKind::kKill:
          kill_after_write = true;
          write_bytes = static_cast<size_t>(
              static_cast<double>(bytes.size()) * fired->keep_fraction);
          break;
        case fault::FaultKind::kSpuriousWake:
          break;
      }
    }
  }

  size_t written = 0;
  while (written < write_bytes) {
    const ssize_t n =
        ::write(fd_, bytes.data() + written, write_bytes - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A partial OS-level write leaves a torn record on disk exactly like
      // a crash would; poison so later appends cannot bury it.
      poisoned_ = written > 0;
      return PosixError("failed appending to journal", journal_path_);
    }
    written += static_cast<size_t>(n);
  }
  if (options_.fsync_each_append && ::fsync(fd_) != 0) {
    poisoned_ = true;
    return PosixError("failed syncing journal", journal_path_);
  }
  if (kill_after_write) fault::KillProcess();
  if (poison_after_write) {
    poisoned_ = true;
    return Status::Internal(StrCat(
        "injected torn journal append: only ", write_bytes, " of ",
        bytes.size(), " bytes of the '", record.name,
        "' record were persisted before the simulated crash"));
  }

  ApplyLocked(record);
  ++appends_;
  ++records_since_compact_;
  Metrics().appends->Increment();
  Metrics().bytes->Increment(static_cast<long>(bytes.size()));
  Metrics().manifest_entries->Set(static_cast<double>(manifest_.size()));

  if (options_.compact_every > 0 &&
      records_since_compact_ >= options_.compact_every) {
    // The append itself succeeded and is durable; a failed auto-compaction
    // must not retroactively fail it. The journal just keeps growing until
    // a later compaction succeeds.
    if (Status compacted = CompactLocked(); !compacted.ok()) {
      Metrics().compact_failures->Increment();
    }
  }
  return Status::OK();
}

std::string RegistryJournal::SerializeManifestLocked() const {
  std::string out;
  out.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  Put<uint32_t>(out, kFormatVersion);
  Put<uint32_t>(out, 0u);
  Put<uint64_t>(out, next_sequence_ - 1);
  Put<uint64_t>(out, static_cast<uint64_t>(manifest_.size()));
  for (const auto& [key, entry] : manifest_) {
    PutString(out, entry.name);
    Put<int32_t>(out, entry.version);
    Put<uint32_t>(out, entry.model_type);
    Put<int32_t>(out, entry.num_features);
    PutString(out, entry.artifact_path);
    PutString(out, entry.file_name);
    Put<int32_t>(out, entry.file_version);
    Put<uint8_t>(out, entry.pinned ? 1 : 0);
    Put<uint8_t>(out, entry.hot ? 1 : 0);
  }
  Put<uint64_t>(out, Fnv1a(out.data(), out.size()));
  return out;
}

Status RegistryJournal::CompactLocked() {
  // Step 1: atomically publish the snapshot. It carries last_sequence, so
  // once it is in place every record currently in the journal is stale.
  QDB_RETURN_IF_ERROR(AtomicWriteFile(
      snapshot_path_, SerializeManifestLocked(), "journal.snapshot"));

  // The crash window chaos cares about most: snapshot durable, journal not
  // yet reset. Recovery must treat the whole old journal as stale.
  QDB_RETURN_IF_ERROR(
      fault::MaybeInject("store.journal.compact", dir_));

  // Step 2: atomically replace the journal with an empty header. The open
  // fd still points at the old inode, so close first and reopen after.
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  const Status reset =
      AtomicWriteFile(journal_path_, FileHeaderBytes(), "journal.reset");
  fd_ = ::open(journal_path_.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd_ < 0) {
    poisoned_ = true;  // No fd: nothing can be appended safely anymore.
    return PosixError("cannot reopen journal after compaction",
                      journal_path_);
  }
  QDB_RETURN_IF_ERROR(reset);

  records_since_compact_ = 0;
  ++compactions_;
  Metrics().compactions->Increment();
  return Status::OK();
}

Status RegistryJournal::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  if (poisoned_) {
    return Status::FailedPrecondition(
        "registry journal is in a simulated-crash state (torn append); "
        "reopen the journal to recover");
  }
  return CompactLocked();
}

std::vector<ManifestEntry> RegistryJournal::Manifest() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ManifestEntry> out;
  out.reserve(manifest_.size());
  for (const auto& [key, entry] : manifest_) out.push_back(entry);
  return out;  // Map order is already (name, version).
}

RegistryJournal::Stats RegistryJournal::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.appends = appends_;
  stats.compactions = compactions_;
  stats.records_since_compact = records_since_compact_;
  stats.next_sequence = next_sequence_;
  stats.poisoned = poisoned_;
  return stats;
}

}  // namespace store
}  // namespace qdb
