// Tests for error mitigation: zero-noise extrapolation and readout
// confusion inversion.

#include <gtest/gtest.h>

#include <cmath>

#include "mitigation/readout.h"
#include "mitigation/zne.h"
#include "sim/statevector_simulator.h"
#include "sim/unitary_simulator.h"

namespace qdb {
namespace {

TEST(FoldTest, ScaleOnePassesThrough) {
  Circuit c(2);
  c.H(0).CX(0, 1);
  auto folded = FoldCircuit(c, 1);
  ASSERT_TRUE(folded.ok());
  EXPECT_EQ(folded.value().size(), c.size());
}

TEST(FoldTest, FoldingPreservesUnitary) {
  Circuit c(2);
  c.H(0).CRY(0, 1, 0.7).RZZ(0, 1, 0.3).T(1);
  for (int scale : {3, 5}) {
    auto folded = FoldCircuit(c, scale);
    ASSERT_TRUE(folded.ok());
    EXPECT_EQ(folded.value().size(), c.size() * scale);
    Matrix u_orig = CircuitUnitary(c).ValueOrDie();
    Matrix u_folded = CircuitUnitary(folded.value()).ValueOrDie();
    EXPECT_TRUE(u_orig.ApproxEqual(u_folded, 1e-9)) << "scale " << scale;
  }
}

TEST(FoldTest, RejectsEvenOrNonPositiveScales) {
  Circuit c(1);
  c.H(0);
  EXPECT_FALSE(FoldCircuit(c, 0).ok());
  EXPECT_FALSE(FoldCircuit(c, 2).ok());
  EXPECT_FALSE(FoldCircuit(c, -3).ok());
}

TEST(RichardsonTest, ExactForPolynomials) {
  // Data from y = 2 − 3x + x²: three points recover y(0) = 2 exactly.
  DVector xs = {1.0, 3.0, 5.0};
  DVector ys;
  for (double x : xs) ys.push_back(2.0 - 3.0 * x + x * x);
  auto r = RichardsonExtrapolate(xs, ys);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), 2.0, 1e-10);
}

TEST(RichardsonTest, Validation) {
  EXPECT_FALSE(RichardsonExtrapolate({1.0}, {2.0}).ok());
  EXPECT_FALSE(RichardsonExtrapolate({1.0, 1.0}, {2.0, 3.0}).ok());
  EXPECT_FALSE(RichardsonExtrapolate({1.0, 2.0}, {2.0}).ok());
}

TEST(ZneTest, RecoversGhzWitnessUnderDepolarizingNoise) {
  // The canonical demo: a GHZ witness decays under noise; ZNE pulls the
  // estimate most of the way back to the ideal value 1.0.
  Circuit ghz(3);
  ghz.H(0).CX(0, 1).CX(1, 2);
  PauliSum witness(3);
  PauliString xxx(3);
  for (int q = 0; q < 3; ++q) xxx.set_op(q, PauliOp::kX);
  witness.Add(1.0, xxx);

  auto noise = NoiseModel::Depolarizing(0.004, 0.008);
  ASSERT_TRUE(noise.ok());
  DensitySimulator sim(noise.value());
  auto zne = ZeroNoiseExtrapolate(ghz, witness, sim);
  ASSERT_TRUE(zne.ok()) << zne.status();

  EXPECT_LT(zne.value().unmitigated, 0.98);  // Noise visibly bites.
  const double raw_error = std::abs(zne.value().unmitigated - 1.0);
  const double mitigated_error = std::abs(zne.value().mitigated - 1.0);
  EXPECT_LT(mitigated_error, raw_error / 3.0);  // ≥3x improvement.
  // Raw values decay monotonically with the fold scale.
  const auto& raw = zne.value().raw_values;
  ASSERT_EQ(raw.size(), 3u);
  EXPECT_GT(raw[0], raw[1]);
  EXPECT_GT(raw[1], raw[2]);
}

TEST(ZneTest, NoiselessIsFixedPoint) {
  Circuit c(2);
  c.H(0).CX(0, 1);
  PauliSum zz(2);
  zz.Add(1.0, "ZZ");
  DensitySimulator noiseless;
  auto zne = ZeroNoiseExtrapolate(c, zz, noiseless);
  ASSERT_TRUE(zne.ok());
  EXPECT_NEAR(zne.value().mitigated, 1.0, 1e-9);
  EXPECT_NEAR(zne.value().unmitigated, 1.0, 1e-9);
}

TEST(ZneTest, Validation) {
  Circuit c(1);
  c.H(0);
  PauliSum z(1);
  z.Add(1.0, "Z");
  DensitySimulator sim;
  ZneOptions too_few;
  too_few.scale_factors = {1};
  EXPECT_FALSE(ZeroNoiseExtrapolate(c, z, sim, too_few).ok());
  ZneOptions duplicate;
  duplicate.scale_factors = {1, 1, 3};
  EXPECT_FALSE(ZeroNoiseExtrapolate(c, z, sim, duplicate).ok());
  ZneOptions even;
  even.scale_factors = {1, 2};
  EXPECT_FALSE(ZeroNoiseExtrapolate(c, z, sim, even).ok());
}

TEST(ReadoutTest, Validation) {
  EXPECT_FALSE(ReadoutMitigator::Create(0, 0.1, 0.1).ok());
  EXPECT_FALSE(ReadoutMitigator::Create(2, 0.6, 0.5).ok());
  EXPECT_FALSE(ReadoutMitigator::Create(2, -0.1, 0.1).ok());
  EXPECT_TRUE(ReadoutMitigator::Create(2, 0.05, 0.1).ok());
}

TEST(ReadoutTest, InvertsKnownConfusionExactly) {
  // Feed the *expected* corrupted distribution of |0⟩ through the
  // mitigator: it must return the clean one.
  const double p01 = 0.1, p10 = 0.05;
  auto mitigator = ReadoutMitigator::Create(1, p01, p10);
  ASSERT_TRUE(mitigator.ok());
  // True state |0⟩ → measured 0 with 1−p01, measured 1 with p01.
  std::map<uint64_t, int> counts = {{0, 9000}, {1, 1000}};  // p01 = 0.1.
  auto probs = mitigator.value().MitigateCounts(counts);
  ASSERT_TRUE(probs.ok());
  EXPECT_NEAR(probs.value()[0], 1.0, 1e-9);
  EXPECT_NEAR(probs.value()[1], 0.0, 1e-9);
}

TEST(ReadoutTest, RestoresSampledNoisyDistribution) {
  // End-to-end: Bell state sampled with a 10% symmetric readout flip; the
  // mitigated ⟨Z₀Z₁⟩-ish marginals get close to ideal.
  Circuit bell(2);
  bell.H(0).CX(0, 1);
  StateVectorSimulator sim;
  StateVector psi = sim.Run(bell).ValueOrDie();
  Rng rng(7);
  const double flip = 0.1;
  std::map<uint64_t, int> noisy_counts;
  for (int s = 0; s < 40000; ++s) {
    uint64_t outcome = psi.SampleOnce(rng);
    for (int q = 0; q < 2; ++q) {
      if (rng.Bernoulli(flip)) outcome ^= uint64_t{1} << (1 - q);
    }
    ++noisy_counts[outcome];
  }
  auto mitigator = ReadoutMitigator::Create(2, flip, flip);
  ASSERT_TRUE(mitigator.ok());
  auto probs = mitigator.value().MitigateCounts(noisy_counts);
  ASSERT_TRUE(probs.ok());
  EXPECT_NEAR(probs.value()[0b00], 0.5, 0.02);
  EXPECT_NEAR(probs.value()[0b11], 0.5, 0.02);
  EXPECT_NEAR(probs.value()[0b01], 0.0, 0.02);
  // Unmitigated, P(01) would sit near flip·(1−flip)·... ≈ 0.09.
  double raw01 = noisy_counts[0b01] / 40000.0;
  EXPECT_GT(raw01, 0.05);
}

TEST(ReadoutTest, MitigatedExpectationZ) {
  auto mitigator = ReadoutMitigator::Create(1, 0.2, 0.2);
  ASSERT_TRUE(mitigator.ok());
  // True |0⟩ read through 20% symmetric flips: P(read 1) = 0.2,
  // raw ⟨Z⟩ = 0.6; mitigation restores 1.0.
  std::map<uint64_t, int> counts = {{0, 8000}, {1, 2000}};
  auto z = mitigator.value().MitigatedExpectationZ(counts, 0);
  ASSERT_TRUE(z.ok());
  EXPECT_NEAR(z.value(), 1.0, 1e-9);
}

TEST(ReadoutTest, CountValidation) {
  auto mitigator = ReadoutMitigator::Create(2, 0.1, 0.1);
  ASSERT_TRUE(mitigator.ok());
  EXPECT_FALSE(mitigator.value().MitigateCounts({}).ok());
  EXPECT_FALSE(mitigator.value().MitigateCounts({{9, 10}}).ok());
  EXPECT_FALSE(mitigator.value().MitigateCounts({{0, -5}}).ok());
  EXPECT_FALSE(
      mitigator.value().MitigatedExpectationZ({{0, 10}}, 5).ok());
}

}  // namespace
}  // namespace qdb
