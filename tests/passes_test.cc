// Tests for the circuit optimization passes: gates shrink, semantics hold.

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/passes.h"
#include "common/rng.h"
#include "sim/unitary_simulator.h"

namespace qdb {
namespace {

TEST(PassesTest, RemoveIdentitiesDropsIdAndZeroRotations) {
  Circuit c(2);
  c.I(0).H(0).RX(1, 0.0).RZ(0, 1e-15).CX(0, 1);
  Circuit out = RemoveIdentities(c);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(out.gates()[0].type, GateType::kH);
  EXPECT_EQ(out.gates()[1].type, GateType::kCX);
}

TEST(PassesTest, RemoveIdentitiesKeepsSymbolicZero) {
  Circuit c(1);
  c.RX(0, ParamExpr::Variable(0));  // Symbolic: must never be dropped.
  EXPECT_EQ(RemoveIdentities(c).size(), 1u);
}

TEST(PassesTest, CancelAdjacentSelfInverses) {
  Circuit c(2);
  c.H(0).H(0).X(1).X(1).CX(0, 1).CX(0, 1);
  EXPECT_EQ(CancelAdjacentInverses(c).size(), 0u);
}

TEST(PassesTest, CancelSAndSdg) {
  Circuit c(1);
  c.S(0).Sdg(0).T(0).Tdg(0);
  EXPECT_EQ(CancelAdjacentInverses(c).size(), 0u);
}

TEST(PassesTest, CancelOppositeRotations) {
  Circuit c(1);
  c.RX(0, 0.7).RX(0, -0.7);
  EXPECT_EQ(CancelAdjacentInverses(c).size(), 0u);
}

TEST(PassesTest, RemoveIdentitiesDropsZeroMultiplierSymbolic) {
  Circuit c(1);
  // RX(0·t0 + 0) is the identity for every parameter vector; RX(0·t0 + 0.4)
  // and RX(1·t0 + 0) are not.
  c.RX(0, ParamExpr::Affine(0, 0.0, 0.0))
      .RX(0, ParamExpr::Affine(0, 0.0, 0.4))
      .RX(0, ParamExpr::Variable(0));
  Circuit out = RemoveIdentities(c);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NEAR(out.gates()[0].params[0].offset, 0.4, 1e-15);
}

TEST(PassesTest, CancelNegatedSymbolicRotations) {
  Circuit c(1);
  // RZ(2t0 + 0.3) followed by RZ(−2t0 − 0.3): angle sum ≡ 0 for all t0.
  c.RZ(0, ParamExpr::Affine(0, 2.0, 0.3))
      .RZ(0, ParamExpr::Affine(0, -2.0, -0.3));
  EXPECT_EQ(CancelAdjacentInverses(c).size(), 0u);
}

TEST(PassesTest, NoCancelForMismatchedSymbolicRotations) {
  // Different parameter slots, or non-negated multipliers, must survive.
  Circuit c(1);
  c.RZ(0, ParamExpr::Affine(0, 2.0, 0.0)).RZ(0, ParamExpr::Affine(1, -2.0, 0.0));
  EXPECT_EQ(CancelAdjacentInverses(c).size(), 2u);
  Circuit d(1);
  d.RZ(0, ParamExpr::Affine(0, 2.0, 0.0)).RZ(0, ParamExpr::Affine(0, 2.0, 0.0));
  EXPECT_EQ(CancelAdjacentInverses(d).size(), 2u);
}

TEST(PassesTest, InverseCircuitCancelsSymbolically) {
  // c · c⁻¹ built with symbolic parameters collapses to nothing — the
  // pattern ansatz-adjoint constructions produce.
  Circuit c(2);
  c.RY(0, ParamExpr::Variable(0)).RZZ(0, 1, ParamExpr::Variable(1)).H(1);
  Circuit round_trip = c;
  round_trip.Append(c.Inverse());
  EXPECT_EQ(CancelAdjacentInverses(round_trip).size(), 0u);
}

TEST(PassesTest, NoCancellationAcrossInterveningGate) {
  Circuit c(2);
  c.H(0).CX(0, 1).H(0);  // CX touches qubit 0 between the Hs.
  EXPECT_EQ(CancelAdjacentInverses(c).size(), 3u);
}

TEST(PassesTest, CancellationCascades) {
  Circuit c(1);
  c.X(0).H(0).H(0).X(0);  // Inner pair exposes the outer pair.
  EXPECT_EQ(CancelAdjacentInverses(c).size(), 0u);
}

TEST(PassesTest, SymmetricGateCancelsWithSwappedOperands) {
  Circuit c(2);
  c.CZ(0, 1).CZ(1, 0);
  EXPECT_EQ(CancelAdjacentInverses(c).size(), 0u);
  Circuit d(2);
  d.CX(0, 1).CX(1, 0);  // CX is directional: must NOT cancel.
  EXPECT_EQ(CancelAdjacentInverses(d).size(), 2u);
}

TEST(PassesTest, MergeRotations) {
  Circuit c(1);
  c.RZ(0, 0.25).RZ(0, 0.5);
  Circuit out = MergeRotations(c);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out.gates()[0].params[0].offset, 0.75, 1e-15);
}

TEST(PassesTest, MergeToZeroRemovesGate) {
  Circuit c(1);
  c.RY(0, 0.4).RY(0, -0.4);
  EXPECT_EQ(MergeRotations(c).size(), 0u);
}

TEST(PassesTest, MergeRzzOnSwappedOperands) {
  Circuit c(2);
  c.RZZ(0, 1, 0.2).RZZ(1, 0, 0.3);
  Circuit out = MergeRotations(c);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out.gates()[0].params[0].offset, 0.5, 1e-15);
}

TEST(PassesTest, SymbolicRotationsNotMerged) {
  Circuit c(1);
  c.RZ(0, ParamExpr::Variable(0)).RZ(0, ParamExpr::Variable(0));
  EXPECT_EQ(MergeRotations(c).size(), 2u);
}

TEST(PassesTest, GateCounts) {
  Circuit c(2);
  c.H(0).H(1).CX(0, 1).RZ(0, 0.1);
  auto counts = GateCounts(c);
  EXPECT_EQ(counts["h"], 2);
  EXPECT_EQ(counts["cx"], 1);
  EXPECT_EQ(counts["rz"], 1);
}

class PassEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PassEquivalenceTest, OptimizePreservesUnitary) {
  // Property: the full pipeline never changes the implemented unitary, even
  // on circuits dense with cancellation opportunities.
  Rng rng(GetParam());
  Circuit c(3);
  for (int g = 0; g < 40; ++g) {
    const int q = static_cast<int>(rng.UniformInt(uint64_t{3}));
    int q2 = static_cast<int>(rng.UniformInt(uint64_t{2}));
    if (q2 >= q) ++q2;
    switch (rng.UniformInt(uint64_t{8})) {
      case 0: c.H(q); break;
      case 1: c.X(q); break;
      case 2: c.S(q); break;
      case 3: c.Sdg(q); break;
      case 4: c.RZ(q, rng.Uniform(-1.0, 1.0)); break;
      case 5: c.RZ(q, 0.0); break;
      case 6: c.CX(q, q2); break;
      default: c.CZ(q, q2); break;
    }
  }
  Circuit optimized = OptimizeCircuit(c);
  EXPECT_LE(optimized.size(), c.size());
  auto u_orig = CircuitUnitary(c);
  auto u_opt = CircuitUnitary(optimized);
  ASSERT_TRUE(u_orig.ok());
  ASSERT_TRUE(u_opt.ok());
  EXPECT_TRUE(u_orig.value().ApproxEqual(u_opt.value(), 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PassEquivalenceTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99,
                                           111));

TEST(PassesTest, OptimizeShrinksRedundantCircuit) {
  Circuit c(2);
  c.H(0).H(0).RZ(1, 0.3).RZ(1, -0.3).CX(0, 1).CX(0, 1).I(0);
  EXPECT_EQ(OptimizeCircuit(c).size(), 0u);
}

}  // namespace
}  // namespace qdb
