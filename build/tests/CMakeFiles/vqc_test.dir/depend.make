# Empty dependencies file for vqc_test.
# This may be replaced when dependencies are built.
