#include "sim/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace qdb {
namespace simd {

namespace {

/// Sentinel for "not resolved yet" in the cached level.
constexpr int kUnresolved = -1;

std::atomic<int> g_level{kUnresolved};

bool EnvForcesScalar() {
  const char* env = std::getenv("QDB_SIMD");
  if (env == nullptr) return false;
  return std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
         std::strcmp(env, "scalar") == 0;
}

SimdLevel Resolve() {
  if (EnvForcesScalar()) return SimdLevel::kScalar;
  return CpuSupportsAvx2() ? SimdLevel::kAvx2 : SimdLevel::kScalar;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool CpuSupportsAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

SimdLevel ActiveSimdLevel() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level == kUnresolved) {
    // Benign race: every thread resolves to the same value.
    level = static_cast<int>(Resolve());
    g_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(level);
}

bool SetActiveSimdLevel(SimdLevel level) {
  if (level == SimdLevel::kAvx2 && !CpuSupportsAvx2()) return false;
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
  return true;
}

void ResetSimdLevel() { g_level.store(kUnresolved, std::memory_order_relaxed); }

}  // namespace simd
}  // namespace qdb
