file(REMOVE_RECURSE
  "CMakeFiles/pauli_test.dir/pauli_test.cc.o"
  "CMakeFiles/pauli_test.dir/pauli_test.cc.o.d"
  "pauli_test"
  "pauli_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pauli_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
