// Tests for the annealing substrate: SA, SQA, tabu, exhaustive.

#include <gtest/gtest.h>

#include "anneal/exhaustive.h"
#include "anneal/quantum_annealing.h"
#include "anneal/simulated_annealing.h"
#include "anneal/tabu.h"
#include "common/rng.h"
#include "ops/graph_hamiltonians.h"

namespace qdb {
namespace {

IsingModel FerromagneticChain(int n, double j = -1.0) {
  IsingModel m(n);
  for (int i = 0; i + 1 < n; ++i) m.AddCoupling(i, i + 1, j);
  return m;
}

IsingModel RandomSpinGlass(int n, Rng& rng) {
  IsingModel m(n);
  for (int i = 0; i < n; ++i) m.AddField(i, rng.Uniform(-0.5, 0.5));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(0.5)) m.AddCoupling(i, j, rng.Uniform(-1.0, 1.0));
    }
  }
  return m;
}

TEST(ExhaustiveTest, FerromagneticChainGroundState) {
  IsingModel m = FerromagneticChain(6);
  auto result = ExhaustiveSolve(m);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().best_energy, -5.0, 1e-12);
  // All spins aligned (either orientation).
  for (size_t i = 1; i < result.value().best_spins.size(); ++i) {
    EXPECT_EQ(result.value().best_spins[i], result.value().best_spins[0]);
  }
}

TEST(ExhaustiveTest, QuboVariantMatchesIsing) {
  Rng rng(3);
  IsingModel m = RandomSpinGlass(6, rng);
  Qubo q = m.ToQubo();
  auto ising_result = ExhaustiveSolve(m);
  auto qubo_result = ExhaustiveSolveQubo(q);
  ASSERT_TRUE(ising_result.ok());
  ASSERT_TRUE(qubo_result.ok());
  EXPECT_NEAR(ising_result.value().best_energy,
              qubo_result.value().best_energy, 1e-9);
}

TEST(ExhaustiveTest, RejectsHugeInstances) {
  IsingModel m(27);
  m.AddCoupling(0, 1, 1.0);
  EXPECT_FALSE(ExhaustiveSolve(m).ok());
}

class SolverGroundStateTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverGroundStateTest, SaFindsGroundStateOfSmallGlass) {
  Rng rng(GetParam());
  IsingModel m = RandomSpinGlass(8, rng);
  auto exact = ExhaustiveSolve(m);
  ASSERT_TRUE(exact.ok());
  SaOptions opts;
  opts.num_sweeps = 400;
  opts.num_restarts = 4;
  opts.seed = GetParam() * 13 + 1;
  auto sa = SimulatedAnnealing(m, opts);
  ASSERT_TRUE(sa.ok());
  EXPECT_NEAR(sa.value().best_energy, exact.value().best_energy, 1e-9);
}

TEST_P(SolverGroundStateTest, SqaFindsGroundStateOfSmallGlass) {
  Rng rng(100 + GetParam());
  IsingModel m = RandomSpinGlass(8, rng);
  auto exact = ExhaustiveSolve(m);
  ASSERT_TRUE(exact.ok());
  SqaOptions opts;
  opts.num_sweeps = 300;
  opts.num_replicas = 12;
  opts.num_restarts = 2;
  opts.seed = GetParam() * 17 + 3;
  auto sqa = SimulatedQuantumAnnealing(m, opts);
  ASSERT_TRUE(sqa.ok());
  EXPECT_NEAR(sqa.value().best_energy, exact.value().best_energy, 1e-9);
}

TEST_P(SolverGroundStateTest, TabuFindsGroundStateOfSmallGlass) {
  Rng rng(200 + GetParam());
  IsingModel m = RandomSpinGlass(8, rng);
  auto exact = ExhaustiveSolve(m);
  ASSERT_TRUE(exact.ok());
  TabuOptions opts;
  opts.max_iterations = 800;
  opts.num_restarts = 6;
  opts.tenure = 8;
  opts.seed = GetParam() * 19 + 7;
  auto tabu = TabuSearch(m, opts);
  ASSERT_TRUE(tabu.ok());
  EXPECT_NEAR(tabu.value().best_energy, exact.value().best_energy, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverGroundStateTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(SaTest, DeterministicBySeed) {
  Rng rng(5);
  IsingModel m = RandomSpinGlass(10, rng);
  SaOptions opts;
  opts.num_sweeps = 100;
  auto a = SimulatedAnnealing(m, opts);
  auto b = SimulatedAnnealing(m, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().best_spins, b.value().best_spins);
}

TEST(SaTest, ValidatesOptions) {
  IsingModel m = FerromagneticChain(3);
  SaOptions bad_sweeps;
  bad_sweeps.num_sweeps = 0;
  EXPECT_FALSE(SimulatedAnnealing(m, bad_sweeps).ok());
  SaOptions bad_beta;
  bad_beta.beta_initial = 5.0;
  bad_beta.beta_final = 1.0;
  EXPECT_FALSE(SimulatedAnnealing(m, bad_beta).ok());
}

TEST(SqaTest, ValidatesOptions) {
  IsingModel m = FerromagneticChain(3);
  SqaOptions bad_replicas;
  bad_replicas.num_replicas = 1;
  EXPECT_FALSE(SimulatedQuantumAnnealing(m, bad_replicas).ok());
  SqaOptions bad_gamma;
  bad_gamma.gamma_initial = 0.1;
  bad_gamma.gamma_final = 1.0;
  EXPECT_FALSE(SimulatedQuantumAnnealing(m, bad_gamma).ok());
  SqaOptions bad_beta;
  bad_beta.beta = 0.0;
  EXPECT_FALSE(SimulatedQuantumAnnealing(m, bad_beta).ok());
}

TEST(SqaTest, GlobalMovesToggleStillSolves) {
  IsingModel m = FerromagneticChain(6);
  SqaOptions opts;
  opts.global_moves = false;
  opts.num_sweeps = 400;
  auto result = SimulatedQuantumAnnealing(m, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().best_energy, -5.0, 1e-9);
}

TEST(TabuTest, ValidatesOptions) {
  IsingModel m = FerromagneticChain(3);
  TabuOptions bad;
  bad.tenure = -1;
  EXPECT_FALSE(TabuSearch(m, bad).ok());
}

TEST(TabuTest, EscapesLocalOptimaViaTenure) {
  // A frustrated triangle plus chain has local optima; tabu with tenure
  // should still reach the exhaustive optimum.
  IsingModel m(6);
  m.AddCoupling(0, 1, 1.0);
  m.AddCoupling(1, 2, 1.0);
  m.AddCoupling(0, 2, 1.0);  // Frustration.
  m.AddCoupling(2, 3, -1.0);
  m.AddCoupling(3, 4, 1.0);
  m.AddCoupling(4, 5, -1.0);
  auto exact = ExhaustiveSolve(m);
  ASSERT_TRUE(exact.ok());
  TabuOptions opts;
  opts.max_iterations = 300;
  opts.tenure = 5;
  auto result = TabuSearch(m, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().best_energy, exact.value().best_energy, 1e-9);
}

TEST(AnnealersTest, SolversAgreeOnMaxCut) {
  Rng rng(31);
  WeightedGraph g = ErdosRenyiGraph(10, 0.5, rng);
  IsingModel ising = MaxCutIsing(g);
  auto exact = ExhaustiveSolve(ising);
  ASSERT_TRUE(exact.ok());
  SaOptions sa_opts;
  sa_opts.num_sweeps = 500;
  sa_opts.num_restarts = 3;
  auto sa = SimulatedAnnealing(ising, sa_opts);
  ASSERT_TRUE(sa.ok());
  EXPECT_NEAR(sa.value().best_energy, exact.value().best_energy, 1e-9);
  EXPECT_NEAR(g.CutValue(sa.value().best_spins), MaxCutBruteForce(g), 1e-9);
}

}  // namespace
}  // namespace qdb
