/// \file servable.h
/// \brief Executable form of a model artifact: the inference circuit is
/// compiled once at load time and replayed for every request batch.
///
/// This is where "same model version ⇒ same compiled circuit" becomes
/// literal. For angle / re-uploading variational models the features enter
/// the circuit as affine parameter expressions (θ is baked in as constants),
/// so one CompiledCircuit serves every request and a batch of B inputs is B
/// parameter bindings of one fused kernel program — no per-request circuit
/// construction, no fingerprint hashing, no compilation-cache traffic. ZZ
/// feature maps are nonlinear in the features (RZZ angles are products), so
/// they fall back to per-request bound circuits through the batched
/// simulator. Kernel-SVM servables encode their support vectors once and
/// answer each request with one encoding circuit plus m state overlaps,
/// instead of the m + 1 circuits a from-scratch CrossMatrix would run.

#ifndef QDB_SERVE_SERVABLE_H_
#define QDB_SERVE_SERVABLE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "common/result.h"
#include "kernel/quantum_kernel.h"
#include "serve/model_artifact.h"
#include "sim/compiled_circuit.h"

namespace qdb {
namespace serve {

/// What a request asks of a model.
enum class RequestKind {
  kPredict,    ///< Score / label / decision value for one feature vector.
  kKernelRow,  ///< Kernel row k(sv_i, x) against the model's support set.
};

const char* RequestKindName(RequestKind kind);

/// One inference result. `value` is ⟨Z_0⟩ for variational models and the
/// SVM decision value for kernel models; `label` is its sign (±1, ties to
/// +1) for classifiers and 0 for regressors; `row` is filled for
/// kKernelRow requests only.
struct InferenceValue {
  double value = 0.0;
  int label = 0;
  DVector row;
};

/// \brief An immutable, executable model: artifact + whatever precomputed
/// state its inference path needs. Safe to share across threads; the
/// registry hands out shared_ptr<const ServableModel> so eviction never
/// invalidates in-flight requests.
class ServableModel {
 public:
  /// Validates the artifact (parameter counts, support-vector widths,
  /// circuit fingerprint) and precomputes the inference path: compiles the
  /// symbolic serving circuit, or encodes the support-vector states. A
  /// nonzero artifact fingerprint that does not match this build's circuit
  /// construction fails with kFailedPrecondition — an artifact from an
  /// incompatible ansatz implementation must not be served silently wrong.
  static Result<std::shared_ptr<const ServableModel>> Create(
      ModelArtifact artifact);

  const ModelArtifact& artifact() const { return artifact_; }
  const std::string& name() const { return artifact_.name; }
  int version() const { return artifact_.version; }
  ModelType type() const { return artifact_.type; }
  int num_features() const { return artifact_.num_features; }

  /// Cheap admission-time check that `input` is executable (width, kind
  /// supported by this model type) so malformed requests are rejected
  /// before they occupy queue space.
  Status ValidateInput(RequestKind kind, const DVector& input) const;

  /// Executes one homogeneous micro-batch; returns one value per input in
  /// order. Deterministic for a fixed input set at any thread count.
  Result<std::vector<InferenceValue>> RunBatch(
      RequestKind kind, const std::vector<DVector>& inputs) const;

  /// Number of RunBatch calls that reached the simulator — lets tests
  /// assert that cancelled or cached work never executed.
  long batch_executions() const {
    return batch_executions_.load(std::memory_order_relaxed);
  }

  /// Estimated resident heap footprint of this servable — the artifact's
  /// payload, the compiled program, and the pre-encoded support-vector
  /// states (2^num_features amplitudes each, usually the dominant term for
  /// kernel models). The storage tier's memory budget charges this
  /// estimate; it deliberately counts owned allocations, not malloc
  /// overhead, so it is a stable lower bound.
  size_t ResidentBytes() const;

 private:
  ServableModel() = default;

  Result<std::vector<InferenceValue>> RunVariational(
      const std::vector<DVector>& inputs) const;
  /// Compiled symbolic-program path (program_ must be non-null).
  Status RunCompiled(const std::vector<DVector>& inputs,
                     std::vector<InferenceValue>& out) const;
  /// Interpreted per-request-bound-circuit path: the ZZ default, and the
  /// degradation fallback when the compiled path faults.
  Status RunInterpreted(const std::vector<DVector>& inputs,
                        std::vector<InferenceValue>& out) const;
  Result<std::vector<InferenceValue>> RunKernel(
      RequestKind kind, const std::vector<DVector>& inputs) const;

  ModelArtifact artifact_;
  /// Compiled symbolic-feature program (angle / re-uploading / VQR); null
  /// for the ZZ per-request-bind path and non-variational types.
  std::shared_ptr<const CompiledCircuit> program_;
  /// Kernel-SVM state: the encoder and the pre-encoded support vectors.
  std::optional<FidelityQuantumKernel> kernel_;
  std::vector<CVector> sv_states_;
  mutable std::atomic<long> batch_executions_{0};
};

/// The inference circuit with features symbolic at parameter indices
/// [0, num_features) and trained θ baked in as constants — executable for
/// any feature vector via one parameter binding. Fails for ZZ-encoded
/// models (feature products are not affine) and non-variational types.
Result<Circuit> BuildSymbolicInferenceCircuit(const ModelArtifact& artifact);

/// The inference circuit fully bound to a concrete feature vector — works
/// for every variational artifact, matching the training-time construction
/// gate for gate.
Result<Circuit> BuildBoundInferenceCircuit(const ModelArtifact& artifact,
                                           const DVector& x);

/// FNV-1a hash of the structural fingerprint of the artifact's inference
/// circuit (bound to a zero feature vector, so it covers encoding, layout,
/// and the trained parameters). Returns 0 for non-variational artifacts
/// and for artifacts whose circuit cannot be built.
uint64_t ArtifactCircuitFingerprint(const ModelArtifact& artifact);

}  // namespace serve
}  // namespace qdb

#endif  // QDB_SERVE_SERVABLE_H_
