# Empty compiler generated dependencies file for bench_qaoa_maxcut.
# This may be replaced when dependencies are built.
