#include "db/join_order_dp.h"

#include <limits>

#include "common/strings.h"

namespace qdb {

Result<DpPlanResult> OptimalLeftDeepPlan(const JoinQueryGraph& graph) {
  const int n = graph.num_relations();
  if (n > 20) {
    return Status::InvalidArgument(
        StrCat("left-deep DP limited to 20 relations, got ", n));
  }
  const uint64_t full = (uint64_t{1} << n) - 1;
  const double inf = std::numeric_limits<double>::infinity();
  // dp[S] = cheapest C_out of a left-deep prefix joining exactly set S;
  // parent[S] = last relation appended to reach S.
  std::vector<double> dp(full + 1, inf);
  std::vector<int> parent(full + 1, -1);
  for (int r = 0; r < n; ++r) {
    dp[uint64_t{1} << r] = 0.0;  // C_out counts no cost for a base scan.
    parent[uint64_t{1} << r] = r;
  }
  DpPlanResult result;
  for (uint64_t s = 1; s <= full; ++s) {
    if (dp[s] == inf || __builtin_popcountll(s) < 1) continue;
    ++result.subproblems;
    // Appending any absent relation keeps the plan left-deep.
    for (int r = 0; r < n; ++r) {
      const uint64_t bit = uint64_t{1} << r;
      if (s & bit) continue;
      const uint64_t next = s | bit;
      const double cost = dp[s] + SubsetCardinality(graph, next);
      if (cost < dp[next]) {
        dp[next] = cost;
        parent[next] = r;
      }
    }
  }
  result.cost = dp[full];
  // Reconstruct the order by walking parents backward.
  result.order.resize(n);
  uint64_t s = full;
  for (int k = n - 1; k >= 0; --k) {
    const int r = parent[s];
    result.order[k] = r;
    s &= ~(uint64_t{1} << r);
  }
  return result;
}

Result<double> OptimalBushyCost(const JoinQueryGraph& graph) {
  const int n = graph.num_relations();
  if (n > 16) {
    return Status::InvalidArgument(
        StrCat("bushy DP limited to 16 relations, got ", n));
  }
  const uint64_t full = (uint64_t{1} << n) - 1;
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dp(full + 1, inf);
  for (int r = 0; r < n; ++r) dp[uint64_t{1} << r] = 0.0;

  for (uint64_t s = 1; s <= full; ++s) {
    if (__builtin_popcountll(s) < 2) continue;
    // Enumerate proper subsets s1 ⊂ s; consider each unordered split once.
    const double join_card = SubsetCardinality(graph, s);
    for (uint64_t s1 = (s - 1) & s; s1 > 0; s1 = (s1 - 1) & s) {
      const uint64_t s2 = s & ~s1;
      if (s1 < s2) continue;  // Symmetric split: handle one orientation.
      if (dp[s1] == inf || dp[s2] == inf) continue;
      const double cost = dp[s1] + dp[s2] + join_card;
      if (cost < dp[s]) dp[s] = cost;
    }
  }
  return dp[full];
}

}  // namespace qdb
