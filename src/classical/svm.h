/// \file svm.h
/// \brief C-SVM trained by simplified SMO, with linear, RBF, and
/// precomputed (quantum) kernels — the classical backbone of E2/E3 and the
/// consumer of fidelity kernel matrices.

#ifndef QDB_CLASSICAL_SVM_H_
#define QDB_CLASSICAL_SVM_H_

#include <cstdint>
#include <vector>

#include "classical/dataset.h"
#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/types.h"

namespace qdb {

/// Kernel selector.
enum class SvmKernel {
  kLinear,       ///< k(x, y) = x·y
  kRbf,          ///< k(x, y) = exp(−γ‖x−y‖²)
  kPrecomputed,  ///< caller supplies the Gram matrix (e.g. quantum kernel)
};

/// \brief SVM hyperparameters.
struct SvmOptions {
  SvmKernel kernel = SvmKernel::kRbf;
  double c = 1.0;        ///< Box constraint.
  double gamma = 1.0;    ///< RBF width.
  double tolerance = 1e-3;
  int max_passes = 10;   ///< SMO passes without change before stopping.
  int max_iterations = 2000;
  uint64_t seed = 23;
};

/// \brief A trained support-vector classifier.
class Svm {
 public:
  /// Trains on `data`; with kPrecomputed, `gram` must be the n x n kernel
  /// matrix of the training set (symmetric PSD expected).
  static Result<Svm> Train(const Dataset& data, const SvmOptions& options,
                           const Matrix* gram = nullptr);

  /// Decision value Σ α_i y_i k(x_i, x) + b for a raw feature vector
  /// (kLinear / kRbf only).
  Result<double> DecisionValue(const DVector& x) const;

  /// Decision value when the caller supplies k(x_i, x) for every training
  /// point (any kernel, required for kPrecomputed).
  double DecisionValueFromKernelRow(const DVector& kernel_row) const;

  /// sign(DecisionValue); ties break to +1.
  Result<int> Predict(const DVector& x) const;
  int PredictFromKernelRow(const DVector& kernel_row) const;

  /// Number of support vectors (α_i > 0).
  int NumSupportVectors() const;

  const DVector& alphas() const { return alphas_; }
  double bias() const { return bias_; }

 private:
  Svm() = default;

  double Kernel(const DVector& a, const DVector& b) const;

  SvmOptions options_;
  std::vector<DVector> train_features_;
  std::vector<int> train_labels_;
  DVector alphas_;
  double bias_ = 0.0;
};

}  // namespace qdb

#endif  // QDB_CLASSICAL_SVM_H_
