#include "db/cost_model.h"

#include "common/check.h"
#include "common/strings.h"

namespace qdb {

std::unique_ptr<JoinTree> JoinTree::Leaf(int relation) {
  QDB_CHECK_GE(relation, 0);
  auto node = std::make_unique<JoinTree>();
  node->relation = relation;
  return node;
}

std::unique_ptr<JoinTree> JoinTree::Join(std::unique_ptr<JoinTree> left,
                                         std::unique_ptr<JoinTree> right) {
  QDB_CHECK(left != nullptr);
  QDB_CHECK(right != nullptr);
  auto node = std::make_unique<JoinTree>();
  node->left = std::move(left);
  node->right = std::move(right);
  return node;
}

uint64_t JoinTree::RelationMask() const {
  if (IsLeaf()) return uint64_t{1} << relation;
  uint64_t mask = 0;
  if (left) mask |= left->RelationMask();
  if (right) mask |= right->RelationMask();
  return mask;
}

double SubsetCardinality(const JoinQueryGraph& graph, uint64_t mask) {
  double card = 1.0;
  for (int r = 0; r < graph.num_relations(); ++r) {
    if (mask & (uint64_t{1} << r)) card *= graph.cardinality(r);
  }
  for (const auto& e : graph.edges()) {
    if ((mask & (uint64_t{1} << e.a)) && (mask & (uint64_t{1} << e.b))) {
      card *= e.selectivity;
    }
  }
  return card;
}

namespace {

Status AccumulateCost(const JoinQueryGraph& graph, const JoinTree& tree,
                      double* cost) {
  if (tree.IsLeaf()) {
    if (tree.relation >= graph.num_relations()) {
      return Status::OutOfRange(
          StrCat("relation ", tree.relation, " not in the query graph"));
    }
    return Status::OK();
  }
  if (!tree.left || !tree.right) {
    return Status::InvalidArgument("inner join node missing a child");
  }
  QDB_RETURN_IF_ERROR(AccumulateCost(graph, *tree.left, cost));
  QDB_RETURN_IF_ERROR(AccumulateCost(graph, *tree.right, cost));
  const uint64_t left_mask = tree.left->RelationMask();
  const uint64_t right_mask = tree.right->RelationMask();
  if (left_mask & right_mask) {
    return Status::InvalidArgument("join tree repeats a base relation");
  }
  *cost += SubsetCardinality(graph, left_mask | right_mask);
  return Status::OK();
}

}  // namespace

Result<double> CostOfTree(const JoinQueryGraph& graph, const JoinTree& tree) {
  double cost = 0.0;
  QDB_RETURN_IF_ERROR(AccumulateCost(graph, tree, &cost));
  return cost;
}

Result<double> CostOfLeftDeepOrder(const JoinQueryGraph& graph,
                                   const std::vector<int>& order) {
  const int n = graph.num_relations();
  if (static_cast<int>(order.size()) != n) {
    return Status::InvalidArgument(
        StrCat("order has ", order.size(), " entries for ", n, " relations"));
  }
  uint64_t seen = 0;
  for (int r : order) {
    if (r < 0 || r >= n) {
      return Status::OutOfRange(StrCat("relation ", r, " out of range"));
    }
    if (seen & (uint64_t{1} << r)) {
      return Status::InvalidArgument(StrCat("relation ", r, " repeated"));
    }
    seen |= uint64_t{1} << r;
  }
  double cost = 0.0;
  uint64_t mask = uint64_t{1} << order[0];
  for (int k = 1; k < n; ++k) {
    mask |= uint64_t{1} << order[k];
    cost += SubsetCardinality(graph, mask);
  }
  return cost;
}

}  // namespace qdb
