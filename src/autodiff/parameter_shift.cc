#include "autodiff/parameter_shift.h"

#include <cmath>

#include "common/strings.h"

namespace qdb {
namespace {

enum class ShiftRule { kTwoTerm, kFourTerm, kUnsupported };

ShiftRule RuleFor(GateType type) {
  switch (type) {
    case GateType::kRX:
    case GateType::kRY:
    case GateType::kRZ:
    case GateType::kRXX:
    case GateType::kRYY:
    case GateType::kRZZ:
    case GateType::kPhase:
    case GateType::kCPhase:
      return ShiftRule::kTwoTerm;
    case GateType::kCRX:
    case GateType::kCRY:
    case GateType::kCRZ:
      return ShiftRule::kFourTerm;
    default:
      return ShiftRule::kUnsupported;
  }
}

}  // namespace

Result<DVector> ParameterShiftGradient(const ExpectationFunction& f,
                                       const DVector& params) {
  const Circuit& circuit = f.circuit();
  DVector grad(std::max<size_t>(params.size(), circuit.num_parameters()), 0.0);
  const double kHalfPi = M_PI / 2.0;
  const double kThreeHalfPi = 3.0 * M_PI / 2.0;
  // Coefficients of the four-term rule for generator eigenvalues {0, ±1/2}.
  const double kFourTermA = (std::sqrt(2.0) + 2.0) / 8.0;
  const double kFourTermB = (std::sqrt(2.0) - 2.0) / 8.0;

  // Pass 1: collect every shifted evaluation the rules call for, in gate
  // order, so the whole gradient runs as one parallel batch.
  struct Term {
    size_t grad_index;
    double multiplier;
    ShiftRule rule;
    size_t first_job;  ///< Index of this term's first entry in `jobs`.
  };
  std::vector<ExpectationFunction::ShiftSpec> jobs;
  std::vector<Term> terms;
  for (size_t gi = 0; gi < circuit.gates().size(); ++gi) {
    const Gate& gate = circuit.gates()[gi];
    for (size_t slot = 0; slot < gate.params.size(); ++slot) {
      const ParamExpr& expr = gate.params[slot];
      if (expr.is_constant() || expr.multiplier == 0.0) continue;
      const ShiftRule rule = RuleFor(gate.type);
      if (rule == ShiftRule::kUnsupported) {
        return Status::Unimplemented(
            StrCat("parameter-shift rule not implemented for gate '",
                   GateTypeName(gate.type),
                   "' with symbolic parameters; bind it or use "
                   "FiniteDifferenceGradient"));
      }
      terms.push_back({static_cast<size_t>(expr.index), expr.multiplier, rule,
                       jobs.size()});
      jobs.push_back({gi, slot, kHalfPi});
      jobs.push_back({gi, slot, -kHalfPi});
      if (rule == ShiftRule::kFourTerm) {
        jobs.push_back({gi, slot, kThreeHalfPi});
        jobs.push_back({gi, slot, -kThreeHalfPi});
      }
    }
  }
  if (jobs.empty()) return grad;

  QDB_ASSIGN_OR_RETURN(DVector values, f.EvaluateShiftBatch(params, jobs));

  // Pass 2: combine in term order — the arithmetic and its sequence match
  // the serial rule exactly, so results are thread-count independent.
  for (const Term& term : terms) {
    const size_t j = term.first_job;
    double dangle = 0.0;
    switch (term.rule) {
      case ShiftRule::kTwoTerm:
        dangle = (values[j] - values[j + 1]) / 2.0;
        break;
      case ShiftRule::kFourTerm:
        dangle = kFourTermA * (values[j] - values[j + 1]) +
                 kFourTermB * (values[j + 2] - values[j + 3]);
        break;
      case ShiftRule::kUnsupported:
        break;  // Rejected in pass 1.
    }
    grad[term.grad_index] += term.multiplier * dangle;
  }
  return grad;
}

Result<DVector> FiniteDifferenceGradient(const ExpectationFunction& f,
                                         const DVector& params,
                                         double epsilon) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  DVector grad(params.size(), 0.0);
  if (params.empty()) return grad;
  // One batch of 2·P perturbed parameter vectors: entries 2k / 2k+1 are the
  // +ε / −ε variants of parameter k.
  std::vector<DVector> variants;
  variants.reserve(2 * params.size());
  for (size_t k = 0; k < params.size(); ++k) {
    variants.push_back(params);
    variants.back()[k] = params[k] + epsilon;
    variants.push_back(params);
    variants.back()[k] = params[k] - epsilon;
  }
  QDB_ASSIGN_OR_RETURN(DVector values, f.EvaluateBatch(variants));
  for (size_t k = 0; k < params.size(); ++k) {
    grad[k] = (values[2 * k] - values[2 * k + 1]) / (2.0 * epsilon);
  }
  return grad;
}

}  // namespace qdb
