/// \file matrix.h
/// \brief Dense row-major complex matrix with the operations the simulators
/// and observables need: product, adjoint, Kronecker product, trace,
/// unitarity/Hermiticity predicates.

#ifndef QDB_LINALG_MATRIX_H_
#define QDB_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>

#include "common/check.h"
#include "linalg/types.h"

namespace qdb {

/// \brief Dense complex matrix, row-major storage.
///
/// Sized at construction; element access is bounds-checked via QDB_CHECK in
/// debug semantics (always on — the hot simulator paths do not go through
/// Matrix, they use specialized amplitude kernels).
class Matrix {
 public:
  /// Constructs an empty 0x0 matrix.
  Matrix() = default;

  /// Constructs a zero-initialized rows x cols matrix.
  Matrix(size_t rows, size_t cols);

  /// Constructs from nested initializer lists; all rows must have equal
  /// length.
  Matrix(std::initializer_list<std::initializer_list<Complex>> rows);

  /// Returns the n x n identity.
  static Matrix Identity(size_t n);

  /// Returns a rows x cols matrix of zeros.
  static Matrix Zero(size_t rows, size_t cols);

  /// Returns the n x n diagonal matrix with the given diagonal entries.
  static Matrix Diagonal(const CVector& diag);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  /// Element access (bounds-checked).
  Complex& operator()(size_t r, size_t c) {
    QDB_CHECK_LT(r, rows_);
    QDB_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  const Complex& operator()(size_t r, size_t c) const {
    QDB_CHECK_LT(r, rows_);
    QDB_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  /// Raw row-major storage (size rows()*cols()).
  const CVector& data() const { return data_; }
  CVector& data() { return data_; }

  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(const Matrix& other) const;
  Matrix operator*(Complex scalar) const;
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(Complex scalar);

  /// Matrix-vector product; v.size() must equal cols().
  CVector Apply(const CVector& v) const;

  /// Conjugate transpose.
  Matrix Adjoint() const;

  /// Plain transpose (no conjugation).
  Matrix Transpose() const;

  /// Element-wise complex conjugate.
  Matrix Conjugate() const;

  /// Kronecker (tensor) product: (this ⊗ other).
  Matrix Kron(const Matrix& other) const;

  /// Sum of diagonal entries; requires a square matrix.
  Complex Trace() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Returns true if this is square and A†A = I within `tol`.
  bool IsUnitary(double tol = kDefaultTol) const;

  /// Returns true if this is square and A = A† within `tol`.
  bool IsHermitian(double tol = kDefaultTol) const;

  /// Returns true if both shapes match and all entries agree within `tol`.
  bool ApproxEqual(const Matrix& other, double tol = kDefaultTol) const;

  /// Returns true if this equals `other` up to a global phase e^{iφ}.
  bool EqualUpToGlobalPhase(const Matrix& other, double tol = 1e-9) const;

  /// Multi-line human-readable rendering (for debugging and tests).
  std::string ToString(int precision = 4) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  CVector data_;
};

inline Matrix operator*(Complex scalar, const Matrix& m) { return m * scalar; }

}  // namespace qdb

#endif  // QDB_LINALG_MATRIX_H_
