#include "obs/metrics.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"
#include "common/strings.h"
#include "obs/labels.h"

namespace qdb {
namespace obs {

namespace {

/// Escapes a metric name for embedding in a JSON string literal.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Formats a double as a JSON number (non-finite values become null, which
/// strict parsers reject as bare tokens otherwise).
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  return StrFormat("%.17g", v);
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  QDB_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    QDB_CHECK(bounds_[i - 1] < bounds_[i]) << "bounds must be increasing";
  }
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> requires C++20 library support; use a CAS
  // loop so the sum stays exact under concurrent observers everywhere.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

long Histogram::CountInBucket(size_t i) const {
  QDB_CHECK(i < counts_.size());
  return counts_[i].load(std::memory_order_relaxed);
}

double Histogram::ApproxQuantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  // Snapshot the counts once; concurrent Observe calls between loads can
  // only perturb the estimate by the in-flight samples.
  std::vector<long> counts(counts_.size());
  long total = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts[i]);
    if (next >= rank && counts[i] > 0) {
      if (i == bounds_.size()) return bounds_.back();  // Overflow bucket.
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac = (rank - cumulative) / static_cast<double>(counts[i]);
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return bounds_.back();
}

void Histogram::Merge(const Histogram& other) {
  QDB_CHECK(bounds_ == other.bounds_)
      << "Histogram::Merge requires identical bounds";
  long other_total = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const long n = other.counts_[i].load(std::memory_order_relaxed);
    counts_[i].fetch_add(n, std::memory_order_relaxed);
    other_total += n;
  }
  total_.fetch_add(other_total, std::memory_order_relaxed);
  const double other_sum = other.sum_.load(std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + other_sum,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

namespace {

/// At-exit metrics dump, armed by the QDB_METRICS_OUT environment variable:
/// a failing test or chaos run leaves its full registry as JSON for
/// post-mortem. A path ending in '/' (or naming an existing directory) gets
/// a per-process "metrics.<pid>.json" so parallel test binaries don't
/// clobber each other.
void DumpMetricsAtExit() {
  const char* env = std::getenv("QDB_METRICS_OUT");
  if (env == nullptr || env[0] == '\0') return;
  std::string path = env;
  struct stat st {};
  const bool is_dir = path.back() == '/' ||
                      (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode));
  if (is_dir) {
    if (path.back() != '/') path += '/';
    path += StrFormat("metrics.%d.json", static_cast<int>(::getpid()));
  }
  const std::string json = MetricsRegistry::Global().ExportJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  static const bool dump_armed = [] {
    const char* env = std::getenv("QDB_METRICS_OUT");
    if (env != nullptr && env[0] != '\0') std::atexit(DumpMetricsAtExit);
    return true;
  }();
  (void)dump_armed;
  return *registry;
}

std::vector<double> MetricsRegistry::DefaultBounds() {
  return {1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6};
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

LabeledFamily<Counter>* MetricsRegistry::GetCounterFamily(
    const std::string& name, std::vector<std::string> keys,
    size_t max_cardinality) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counter_families_[name];
  if (!slot) {
    slot = std::make_unique<LabeledFamily<Counter>>(
        name, std::move(keys),
        max_cardinality > 0 ? max_cardinality : kDefaultLabelCardinality,
        [] { return std::make_unique<Counter>(); });
  }
  return slot.get();
}

LabeledFamily<Gauge>* MetricsRegistry::GetGaugeFamily(
    const std::string& name, std::vector<std::string> keys,
    size_t max_cardinality) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauge_families_[name];
  if (!slot) {
    slot = std::make_unique<LabeledFamily<Gauge>>(
        name, std::move(keys),
        max_cardinality > 0 ? max_cardinality : kDefaultLabelCardinality,
        [] { return std::make_unique<Gauge>(); });
  }
  return slot.get();
}

LabeledFamily<Histogram>* MetricsRegistry::GetHistogramFamily(
    const std::string& name, std::vector<std::string> keys,
    std::vector<double> bounds, size_t max_cardinality) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histogram_families_[name];
  if (!slot) {
    slot = std::make_unique<LabeledFamily<Histogram>>(
        name, std::move(keys),
        max_cardinality > 0 ? max_cardinality : kDefaultLabelCardinality,
        [bounds = std::move(bounds)] {
          return std::make_unique<Histogram>(bounds);
        });
  }
  return slot.get();
}

std::string FormatLabels(const std::vector<std::string>& keys,
                         const std::vector<std::string>& values) {
  QDB_CHECK(keys.size() == values.size());
  std::string out = "{";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i) out += ",";
    out += StrCat(keys[i], "=\"", values[i], "\"");
  }
  out += "}";
  return out;
}

namespace {

/// "k="v",k2="v2"" — label pairs without the surrounding braces, so
/// histogram children can append their own le="..." dimension.
std::string LabelPairs(const std::vector<std::string>& keys,
                       const std::vector<std::string>& values) {
  std::string out;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i) out += ",";
    out += StrCat(keys[i], "=\"", values[i], "\"");
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::ExportText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += StrCat(name, " ", c->Value(), "\n");
  }
  for (const auto& [name, family] : counter_families_) {
    for (const auto& child : family->Children()) {
      out += StrCat(name, FormatLabels(family->keys(), child.values), " ",
                    child.metric->Value(), "\n");
    }
  }
  for (const auto& [name, g] : gauges_) {
    out += StrCat(name, " ", g->Value(), "\n");
  }
  for (const auto& [name, family] : gauge_families_) {
    for (const auto& child : family->Children()) {
      out += StrCat(name, FormatLabels(family->keys(), child.values), " ",
                    child.metric->Value(), "\n");
    }
  }
  for (const auto& [name, h] : histograms_) {
    for (size_t i = 0; i < h->bounds().size(); ++i) {
      out += StrCat(name, "{le=\"", h->bounds()[i], "\"} ",
                    h->CountInBucket(i), "\n");
    }
    out += StrCat(name, "{le=\"+Inf\"} ",
                  h->CountInBucket(h->bounds().size()), "\n");
    out += StrCat(name, "_sum ", h->Sum(), "\n");
    out += StrCat(name, "_count ", h->TotalCount(), "\n");
    out += StrCat(name, "_overflow ", h->OverflowCount(), "\n");
  }
  for (const auto& [name, family] : histogram_families_) {
    for (const auto& child : family->Children()) {
      const std::string pairs = LabelPairs(family->keys(), child.values);
      const Histogram* h = child.metric;
      for (size_t i = 0; i < h->bounds().size(); ++i) {
        out += StrCat(name, "{", pairs, ",le=\"", h->bounds()[i], "\"} ",
                      h->CountInBucket(i), "\n");
      }
      out += StrCat(name, "{", pairs, ",le=\"+Inf\"} ",
                    h->CountInBucket(h->bounds().size()), "\n");
      out += StrCat(name, "_sum{", pairs, "} ", h->Sum(), "\n");
      out += StrCat(name, "_count{", pairs, "} ", h->TotalCount(), "\n");
      out += StrCat(name, "_overflow{", pairs, "} ", h->OverflowCount(), "\n");
    }
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += StrCat("\"", JsonEscape(name), "\":", c->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += StrCat("\"", JsonEscape(name), "\":", JsonNumber(g->Value()));
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += StrCat("\"", JsonEscape(name), "\":{\"bounds\":[");
    for (size_t i = 0; i < h->bounds().size(); ++i) {
      if (i) out += ",";
      out += JsonNumber(h->bounds()[i]);
    }
    out += "],\"counts\":[";
    for (size_t i = 0; i <= h->bounds().size(); ++i) {
      if (i) out += ",";
      out += StrCat(h->CountInBucket(i));
    }
    out += StrCat("],\"sum\":", JsonNumber(h->Sum()),
                  ",\"count\":", h->TotalCount(),
                  ",\"overflow\":", h->OverflowCount(), "}");
  }
  out += "},\"families\":{";
  first = true;
  const auto emit_family_header = [&](const std::string& name,
                                      const char* type, const auto& family) {
    if (!first) out += ",";
    first = false;
    out += StrCat("\"", JsonEscape(name), "\":{\"type\":\"", type,
                  "\",\"keys\":[");
    const auto& keys = family->keys();
    for (size_t i = 0; i < keys.size(); ++i) {
      if (i) out += ",";
      out += StrCat("\"", JsonEscape(keys[i]), "\"");
    }
    out += StrCat("],\"max_cardinality\":", family->max_cardinality(),
                  ",\"overflowed\":", family->overflowed(),
                  ",\"children\":[");
  };
  const auto emit_labels = [&](const std::vector<std::string>& keys,
                               const std::vector<std::string>& values) {
    out += "{\"labels\":{";
    for (size_t i = 0; i < keys.size(); ++i) {
      if (i) out += ",";
      out += StrCat("\"", JsonEscape(keys[i]), "\":\"", JsonEscape(values[i]),
                    "\"");
    }
    out += "},";
  };
  for (const auto& [name, family] : counter_families_) {
    emit_family_header(name, "counter", family);
    bool first_child = true;
    for (const auto& child : family->Children()) {
      if (!first_child) out += ",";
      first_child = false;
      emit_labels(family->keys(), child.values);
      out += StrCat("\"value\":", child.metric->Value(), "}");
    }
    out += "]}";
  }
  for (const auto& [name, family] : gauge_families_) {
    emit_family_header(name, "gauge", family);
    bool first_child = true;
    for (const auto& child : family->Children()) {
      if (!first_child) out += ",";
      first_child = false;
      emit_labels(family->keys(), child.values);
      out += StrCat("\"value\":", JsonNumber(child.metric->Value()), "}");
    }
    out += "]}";
  }
  for (const auto& [name, family] : histogram_families_) {
    emit_family_header(name, "histogram", family);
    bool first_child = true;
    for (const auto& child : family->Children()) {
      if (!first_child) out += ",";
      first_child = false;
      emit_labels(family->keys(), child.values);
      const Histogram* h = child.metric;
      out += "\"bounds\":[";
      for (size_t i = 0; i < h->bounds().size(); ++i) {
        if (i) out += ",";
        out += JsonNumber(h->bounds()[i]);
      }
      out += "],\"counts\":[";
      for (size_t i = 0; i <= h->bounds().size(); ++i) {
        if (i) out += ",";
        out += StrCat(h->CountInBucket(i));
      }
      out += StrCat("],\"sum\":", JsonNumber(h->Sum()),
                    ",\"count\":", h->TotalCount(),
                    ",\"overflow\":", h->OverflowCount(),
                    ",\"p50\":", JsonNumber(h->ApproxQuantile(0.5)),
                    ",\"p99\":", JsonNumber(h->ApproxQuantile(0.99)), "}");
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
  for (auto& [name, f] : counter_families_) f->ResetAll();
  for (auto& [name, f] : gauge_families_) f->ResetAll();
  for (auto& [name, f] : histogram_families_) f->ResetAll();
}

}  // namespace obs
}  // namespace qdb
