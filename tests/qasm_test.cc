// Tests for OpenQASM 2.0 export.

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/qasm.h"
#include "common/rng.h"
#include "sim/unitary_simulator.h"

namespace qdb {
namespace {

TEST(QasmTest, HeaderAndRegisters) {
  Circuit c(3);
  c.H(0);
  auto qasm = ToQasm(c);
  ASSERT_TRUE(qasm.ok());
  EXPECT_NE(qasm.value().find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(qasm.value().find("include \"qelib1.inc\";"), std::string::npos);
  EXPECT_NE(qasm.value().find("qreg q[3];"), std::string::npos);
  EXPECT_EQ(qasm.value().find("creg"), std::string::npos);
}

TEST(QasmTest, MeasureAllAppendsClassicalRegister) {
  Circuit c(2);
  c.H(0).CX(0, 1);
  auto qasm = ToQasm(c, /*measure_all=*/true);
  ASSERT_TRUE(qasm.ok());
  EXPECT_NE(qasm.value().find("creg c[2];"), std::string::npos);
  EXPECT_NE(qasm.value().find("measure q -> c;"), std::string::npos);
}

TEST(QasmTest, StandardGateSpellings) {
  Circuit c(3);
  c.X(0).Sdg(1).T(2).CX(0, 1).CZ(1, 2).Swap(0, 2).CCX(0, 1, 2);
  auto qasm = ToQasm(c);
  ASSERT_TRUE(qasm.ok());
  const std::string& text = qasm.value();
  EXPECT_NE(text.find("x q[0];"), std::string::npos);
  EXPECT_NE(text.find("sdg q[1];"), std::string::npos);
  EXPECT_NE(text.find("t q[2];"), std::string::npos);
  EXPECT_NE(text.find("cx q[0],q[1];"), std::string::npos);
  EXPECT_NE(text.find("cz q[1],q[2];"), std::string::npos);
  EXPECT_NE(text.find("swap q[0],q[2];"), std::string::npos);
  EXPECT_NE(text.find("ccx q[0],q[1],q[2];"), std::string::npos);
}

TEST(QasmTest, RotationAnglesAreEmittedPrecisely) {
  Circuit c(1);
  c.RX(0, 0.5).RZ(0, -2.25);
  auto qasm = ToQasm(c);
  ASSERT_TRUE(qasm.ok());
  EXPECT_NE(qasm.value().find("rx(0.5) q[0];"), std::string::npos);
  EXPECT_NE(qasm.value().find("rz(-2.25) q[0];"), std::string::npos);
}

TEST(QasmTest, PhaseGatesMapToU1Family) {
  Circuit c(2);
  c.P(0, 0.25).CP(0, 1, 0.5);
  c.U(1, ParamExpr::Constant(0.1), ParamExpr::Constant(0.2),
      ParamExpr::Constant(0.3));
  auto qasm = ToQasm(c);
  ASSERT_TRUE(qasm.ok());
  EXPECT_NE(qasm.value().find("u1(0.25) q[0];"), std::string::npos);
  EXPECT_NE(qasm.value().find("cu1(0.5) q[0],q[1];"), std::string::npos);
  EXPECT_NE(qasm.value().find("u3(0.1,0.2,0.3) q[1];"), std::string::npos);
}

TEST(QasmTest, RyyDecomposesViaRzz) {
  Circuit c(2);
  c.RYY(0, 1, 0.7);
  auto qasm = ToQasm(c);
  ASSERT_TRUE(qasm.ok());
  EXPECT_NE(qasm.value().find("rx(pi/2) q[0];"), std::string::npos);
  EXPECT_NE(qasm.value().find("rzz(0.7) q[0],q[1];"), std::string::npos);
  EXPECT_NE(qasm.value().find("rx(-pi/2) q[1];"), std::string::npos);
}

TEST(QasmTest, SmallMultiControlledGates) {
  Circuit c(4);
  c.MCX({0}, 1);
  c.MCX({0, 1}, 2);
  c.MCZ({0}, 1);
  c.MCZ({0, 1}, 2);
  auto qasm = ToQasm(c);
  ASSERT_TRUE(qasm.ok());
  EXPECT_NE(qasm.value().find("cx q[0],q[1];"), std::string::npos);
  EXPECT_NE(qasm.value().find("ccx q[0],q[1],q[2];"), std::string::npos);
  EXPECT_NE(qasm.value().find("cz q[0],q[1];"), std::string::npos);
  EXPECT_NE(qasm.value().find("h q[2];"), std::string::npos);  // CCZ form.
}

TEST(QasmTest, WideMcxUnsupported) {
  Circuit c(5);
  c.MCX({0, 1, 2}, 4);
  auto qasm = ToQasm(c);
  ASSERT_FALSE(qasm.ok());
  EXPECT_EQ(qasm.status().code(), StatusCode::kUnimplemented);
}

TEST(QasmTest, UnboundParametersRejected) {
  Circuit c(1);
  c.RX(0, ParamExpr::Variable(0));
  auto qasm = ToQasm(c);
  ASSERT_FALSE(qasm.ok());
  EXPECT_EQ(qasm.status().code(), StatusCode::kFailedPrecondition);
  // Binding first makes it exportable.
  EXPECT_TRUE(ToQasm(c.Bind({0.5})).ok());
}

TEST(QasmParseTest, ParsesBellProgram) {
  const std::string source =
      "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\n"
      "h q[0];\ncx q[0],q[1];\nmeasure q -> c;\n";
  auto circuit = ParseQasm(source);
  ASSERT_TRUE(circuit.ok()) << circuit.status();
  EXPECT_EQ(circuit.value().num_qubits(), 2);
  ASSERT_EQ(circuit.value().size(), 2u);
  EXPECT_EQ(circuit.value().gates()[0].type, GateType::kH);
  EXPECT_EQ(circuit.value().gates()[1].type, GateType::kCX);
}

TEST(QasmParseTest, ParsesAnglesIncludingPiForms) {
  const std::string source =
      "qreg q[1];\nrx(0.5) q[0];\nrz(-pi/2) q[0];\nu1(pi) q[0];\n";
  auto circuit = ParseQasm(source);
  ASSERT_TRUE(circuit.ok()) << circuit.status();
  ASSERT_EQ(circuit.value().size(), 3u);
  EXPECT_NEAR(circuit.value().gates()[0].params[0].offset, 0.5, 1e-15);
  EXPECT_NEAR(circuit.value().gates()[1].params[0].offset, -M_PI / 2, 1e-15);
  EXPECT_NEAR(circuit.value().gates()[2].params[0].offset, M_PI, 1e-15);
}

TEST(QasmParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseQasm("h q[0];").ok());               // No qreg.
  EXPECT_FALSE(ParseQasm("qreg q[2];\nh q[0]").ok());    // Missing ';'.
  EXPECT_FALSE(ParseQasm("qreg q[2];\nfoo q[0];").ok()); // Unknown gate.
  EXPECT_FALSE(ParseQasm("qreg q[2];\nh q[7];").ok());   // Out of range.
  EXPECT_FALSE(ParseQasm("qreg q[2];\nrx(0.1 q[0];").ok());  // Unbalanced.
  auto barrier = ParseQasm("qreg q[2];\nbarrier q[0],q[1];");
  ASSERT_FALSE(barrier.ok());
  EXPECT_EQ(barrier.status().code(), StatusCode::kUnimplemented);
}

TEST(QasmParseTest, IgnoresComments) {
  const std::string source =
      "// header comment\nqreg q[1];\nh q[0]; // trailing\n";
  auto circuit = ParseQasm(source);
  ASSERT_TRUE(circuit.ok());
  EXPECT_EQ(circuit.value().size(), 1u);
}

class QasmRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QasmRoundTripTest, ExportParseIsUnitarilyIdentical) {
  // Property: ToQasm → ParseQasm reproduces the exact unitary for random
  // circuits over the exportable gate set.
  Rng rng(GetParam());
  Circuit original(3);
  for (int g = 0; g < 25; ++g) {
    const int q = static_cast<int>(rng.UniformInt(uint64_t{3}));
    int q2 = static_cast<int>(rng.UniformInt(uint64_t{2}));
    if (q2 >= q) ++q2;
    const double angle = rng.Uniform(-3.0, 3.0);
    switch (rng.UniformInt(uint64_t{12})) {
      case 0: original.H(q); break;
      case 1: original.X(q); break;
      case 2: original.Sdg(q); break;
      case 3: original.T(q); break;
      case 4: original.RX(q, angle); break;
      case 5: original.RY(q, angle); break;
      case 6: original.P(q, angle); break;
      case 7: original.CX(q, q2); break;
      case 8: original.CZ(q, q2); break;
      case 9: original.RZZ(q, q2, angle); break;
      case 10: original.CRY(q, q2, angle); break;
      default: original.RYY(q, q2, angle); break;
    }
  }
  auto qasm = ToQasm(original);
  ASSERT_TRUE(qasm.ok());
  auto parsed = ParseQasm(qasm.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  Matrix u_original = CircuitUnitary(original).ValueOrDie();
  Matrix u_parsed = CircuitUnitary(parsed.value()).ValueOrDie();
  EXPECT_TRUE(u_original.ApproxEqual(u_parsed, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QasmRoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(QasmParseTest, FuzzedGarbageNeverCrashes) {
  // Robustness: random byte soup and truncations must yield an error (or a
  // parse), never a crash or a check failure.
  Rng rng(99);
  const std::string alphabet = "qregch x[];(),.0123456789-pi/u\n\t ";
  for (int trial = 0; trial < 300; ++trial) {
    std::string source = "qreg q[3];\n";
    const int len = static_cast<int>(rng.UniformInt(uint64_t{120}));
    for (int i = 0; i < len; ++i) {
      source.push_back(alphabet[rng.UniformInt(alphabet.size())]);
    }
    auto result = ParseQasm(source);  // Outcome irrelevant; no crash.
    if (result.ok()) {
      EXPECT_EQ(result.value().num_qubits(), 3);
    }
  }
}

TEST(QasmParseTest, TruncatedRealProgramsErrorCleanly) {
  Circuit c(3);
  c.H(0).CX(0, 1).RZZ(1, 2, 0.7).CCX(0, 1, 2);
  std::string full = ToQasm(c).ValueOrDie();
  for (size_t cut = 1; cut < full.size(); cut += 7) {
    auto result = ParseQasm(full.substr(0, cut));
    if (result.ok()) {
      EXPECT_LE(result.value().size(), c.size());
    }
  }
}

TEST(QasmTest, EveryLineEndsWithSemicolon) {
  Circuit c(2);
  c.H(0).CX(0, 1).RZ(1, 0.3).Swap(0, 1);
  auto qasm = ToQasm(c, true);
  ASSERT_TRUE(qasm.ok());
  std::istringstream lines(qasm.value());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_EQ(line.back(), ';') << line;
  }
}

}  // namespace
}  // namespace qdb
