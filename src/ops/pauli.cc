#include "ops/pauli.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/strings.h"

namespace qdb {

Matrix PauliMatrix(PauliOp op) {
  switch (op) {
    case PauliOp::kI:
      return Matrix::Identity(2);
    case PauliOp::kX:
      return Matrix{{{0, 0}, {1, 0}}, {{1, 0}, {0, 0}}};
    case PauliOp::kY:
      return Matrix{{{0, 0}, {0, -1}}, {{0, 1}, {0, 0}}};
    case PauliOp::kZ:
      return Matrix{{{1, 0}, {0, 0}}, {{0, 0}, {-1, 0}}};
  }
  QDB_CHECK(false) << "unreachable";
  return Matrix();
}

PauliString::PauliString(int num_qubits)
    : ops_(static_cast<size_t>(num_qubits), PauliOp::kI) {
  QDB_CHECK_GT(num_qubits, 0);
}

Result<PauliString> PauliString::Parse(const std::string& label) {
  if (label.empty()) {
    return Status::InvalidArgument("empty Pauli label");
  }
  PauliString out(static_cast<int>(label.size()));
  for (size_t i = 0; i < label.size(); ++i) {
    switch (label[i]) {
      case 'I': out.ops_[i] = PauliOp::kI; break;
      case 'X': out.ops_[i] = PauliOp::kX; break;
      case 'Y': out.ops_[i] = PauliOp::kY; break;
      case 'Z': out.ops_[i] = PauliOp::kZ; break;
      default:
        return Status::InvalidArgument(
            StrCat("invalid Pauli character '", label[i], "' in \"", label,
                   "\""));
    }
  }
  return out;
}

PauliString PauliString::Single(int num_qubits, int qubit, PauliOp op) {
  PauliString out(num_qubits);
  out.set_op(qubit, op);
  return out;
}

PauliOp PauliString::op(int qubit) const {
  QDB_CHECK_GE(qubit, 0);
  QDB_CHECK_LT(static_cast<size_t>(qubit), ops_.size());
  return ops_[qubit];
}

void PauliString::set_op(int qubit, PauliOp op) {
  QDB_CHECK_GE(qubit, 0);
  QDB_CHECK_LT(static_cast<size_t>(qubit), ops_.size());
  ops_[qubit] = op;
}

int PauliString::Weight() const {
  int w = 0;
  for (auto op : ops_) {
    if (op != PauliOp::kI) ++w;
  }
  return w;
}

bool PauliString::IsDiagonal() const {
  for (auto op : ops_) {
    if (op == PauliOp::kX || op == PauliOp::kY) return false;
  }
  return true;
}

std::string PauliString::ToString() const {
  static const char kNames[] = {'I', 'X', 'Y', 'Z'};
  std::string out;
  out.reserve(ops_.size());
  for (auto op : ops_) out.push_back(kNames[static_cast<int>(op)]);
  return out;
}

Matrix PauliString::ToMatrix() const {
  Matrix out = PauliMatrix(ops_[0]);
  for (size_t q = 1; q < ops_.size(); ++q) out = out.Kron(PauliMatrix(ops_[q]));
  return out;
}

PauliSum::PauliSum(int num_qubits) : num_qubits_(num_qubits) {
  QDB_CHECK_GT(num_qubits, 0);
}

PauliSum& PauliSum::Add(double coefficient, const PauliString& pauli) {
  QDB_CHECK_EQ(pauli.num_qubits(), num_qubits_);
  terms_.push_back(PauliTerm{coefficient, pauli});
  return *this;
}

PauliSum& PauliSum::Add(double coefficient, const std::string& label) {
  auto parsed = PauliString::Parse(label);
  QDB_CHECK(parsed.ok()) << parsed.status().ToString();
  return Add(coefficient, parsed.value());
}

PauliSum PauliSum::operator+(const PauliSum& other) const {
  QDB_CHECK_EQ(num_qubits_, other.num_qubits_);
  PauliSum out = *this;
  for (const auto& t : other.terms_) out.terms_.push_back(t);
  return out;
}

PauliSum PauliSum::operator*(double scale) const {
  PauliSum out = *this;
  for (auto& t : out.terms_) t.coefficient *= scale;
  return out;
}

PauliSum PauliSum::Simplified(double tol) const {
  std::map<PauliString, double> acc;
  for (const auto& t : terms_) acc[t.pauli] += t.coefficient;
  PauliSum out(num_qubits_);
  for (const auto& [pauli, coeff] : acc) {
    if (std::abs(coeff) > tol) out.Add(coeff, pauli);
  }
  return out;
}

bool PauliSum::IsDiagonal() const {
  return std::all_of(terms_.begin(), terms_.end(),
                     [](const PauliTerm& t) { return t.pauli.IsDiagonal(); });
}

Matrix PauliSum::ToMatrix() const {
  const size_t dim = size_t{1} << num_qubits_;
  Matrix out(dim, dim);
  for (const auto& t : terms_) {
    Matrix m = t.pauli.ToMatrix();
    m *= Complex(t.coefficient, 0.0);
    out += m;
  }
  return out;
}

Result<DVector> PauliSum::DiagonalValues() const {
  if (!IsDiagonal()) {
    return Status::FailedPrecondition(
        "DiagonalValues requires an I/Z-only PauliSum");
  }
  const size_t dim = size_t{1} << num_qubits_;
  DVector diag(dim, 0.0);
  for (const auto& t : terms_) {
    // Precompute which qubits carry Z; the diagonal entry flips sign per
    // set bit at a Z position. Qubit 0 = most significant index bit.
    uint64_t zmask = 0;
    for (int q = 0; q < num_qubits_; ++q) {
      if (t.pauli.op(q) == PauliOp::kZ) {
        zmask |= uint64_t{1} << (num_qubits_ - 1 - q);
      }
    }
    for (size_t i = 0; i < dim; ++i) {
      int parity = __builtin_popcountll(i & zmask) & 1;
      diag[i] += parity ? -t.coefficient : t.coefficient;
    }
  }
  return diag;
}

std::string PauliSum::ToString() const {
  if (terms_.empty()) return "0";
  std::ostringstream os;
  for (size_t i = 0; i < terms_.size(); ++i) {
    if (i > 0) os << " + ";
    os << ToStringPrecise(terms_[i].coefficient, 6) << "*"
       << terms_[i].pauli.ToString();
  }
  return os.str();
}

}  // namespace qdb
