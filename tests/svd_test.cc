// Tests for the SVD built on the Hermitian eigensolver.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/random_unitary.h"
#include "linalg/svd.h"

namespace qdb {
namespace {

Matrix RandomComplex(size_t rows, size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      m(i, j) = Complex(rng.Normal(), rng.Normal());
    }
  }
  return m;
}

TEST(SvdTest, DiagonalMatrix) {
  Matrix d = Matrix::Diagonal({Complex(3, 0), Complex(1, 0)});
  auto svd = Svd(d);
  ASSERT_TRUE(svd.ok());
  ASSERT_EQ(svd.value().rank(), 2u);
  EXPECT_NEAR(svd.value().singular_values[0], 3.0, 1e-10);
  EXPECT_NEAR(svd.value().singular_values[1], 1.0, 1e-10);
}

TEST(SvdTest, RejectsEmptyMatrix) {
  EXPECT_FALSE(Svd(Matrix()).ok());
}

TEST(SvdTest, ZeroMatrixHasRankZero) {
  auto svd = Svd(Matrix(3, 2));
  ASSERT_TRUE(svd.ok());
  EXPECT_EQ(svd.value().rank(), 0u);
}

class SvdPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(SvdPropertyTest, ReconstructsAndIsOrthonormal) {
  const auto& [rows, cols, seed] = GetParam();
  Rng rng(seed);
  Matrix a = RandomComplex(rows, cols, rng);
  auto svd = Svd(a);
  ASSERT_TRUE(svd.ok()) << svd.status();
  const auto& result = svd.value();
  // Reconstruction.
  EXPECT_TRUE(result.Reconstruct().ApproxEqual(a, 1e-7))
      << rows << "x" << cols;
  // Orthonormal columns: U†U = V†V = I_r.
  Matrix utu = result.u.Adjoint() * result.u;
  Matrix vtv = result.v.Adjoint() * result.v;
  EXPECT_TRUE(utu.ApproxEqual(Matrix::Identity(result.rank()), 1e-8));
  EXPECT_TRUE(vtv.ApproxEqual(Matrix::Identity(result.rank()), 1e-8));
  // Descending σ.
  for (size_t i = 1; i < result.rank(); ++i) {
    EXPECT_LE(result.singular_values[i],
              result.singular_values[i - 1] + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdPropertyTest,
    ::testing::Values(std::make_tuple(2, 2, 1ull), std::make_tuple(4, 4, 2ull),
                      std::make_tuple(6, 3, 3ull), std::make_tuple(3, 6, 4ull),
                      std::make_tuple(8, 8, 5ull), std::make_tuple(1, 5, 6ull),
                      std::make_tuple(5, 1, 7ull)));

TEST(SvdTest, LowRankMatrixDetected) {
  // Rank-1 outer product.
  Rng rng(9);
  Matrix u = RandomComplex(5, 1, rng);
  Matrix v = RandomComplex(1, 4, rng);
  Matrix a = u * v;
  auto svd = Svd(a, 1e-9);
  ASSERT_TRUE(svd.ok());
  EXPECT_EQ(svd.value().rank(), 1u);
}

TEST(SvdTest, SingularValuesOfUnitaryAreOnes) {
  Rng rng(11);
  Matrix q = RandomUnitary(5, rng);
  auto svd = Svd(q);
  ASSERT_TRUE(svd.ok());
  ASSERT_EQ(svd.value().rank(), 5u);
  for (double s : svd.value().singular_values) EXPECT_NEAR(s, 1.0, 1e-8);
}

TEST(TruncatedSvdTest, KeepsLargestAndReportsDiscardedWeight) {
  Matrix d = Matrix::Diagonal({Complex(4, 0), Complex(2, 0), Complex(1, 0)});
  double discarded = 0.0;
  auto svd = TruncatedSvd(d, 1, &discarded);
  ASSERT_TRUE(svd.ok());
  ASSERT_EQ(svd.value().rank(), 1u);
  EXPECT_NEAR(svd.value().singular_values[0], 4.0, 1e-10);
  EXPECT_NEAR(discarded, 4.0 + 1.0, 1e-9);  // 2² + 1².
}

TEST(TruncatedSvdTest, NoTruncationWhenRankFits) {
  Rng rng(13);
  Matrix a = RandomComplex(4, 4, rng);
  double discarded = -1.0;
  auto svd = TruncatedSvd(a, 10, &discarded);
  ASSERT_TRUE(svd.ok());
  EXPECT_EQ(discarded, 0.0);
  EXPECT_TRUE(svd.value().Reconstruct().ApproxEqual(a, 1e-7));
}

TEST(TruncatedSvdTest, BestRankKApproximationError) {
  // Eckart–Young: the rank-k SVD truncation error (Frobenius) equals the
  // root of the discarded squared singular values.
  Rng rng(15);
  Matrix a = RandomComplex(6, 6, rng);
  double discarded = 0.0;
  auto svd = TruncatedSvd(a, 3, &discarded);
  ASSERT_TRUE(svd.ok());
  Matrix error = a - svd.value().Reconstruct();
  EXPECT_NEAR(error.FrobeniusNorm(), std::sqrt(discarded), 1e-7);
}

TEST(TruncatedSvdTest, RejectsZeroRank) {
  EXPECT_FALSE(TruncatedSvd(Matrix::Identity(2), 0).ok());
}

}  // namespace
}  // namespace qdb
