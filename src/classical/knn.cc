#include "classical/knn.h"

#include <algorithm>
#include <numeric>

#include "common/strings.h"

namespace qdb {

Result<KnnClassifier> KnnClassifier::Create(Dataset training_data, int k) {
  if (training_data.size() == 0) {
    return Status::InvalidArgument("kNN needs a non-empty training set");
  }
  if (k < 1 || static_cast<size_t>(k) > training_data.size()) {
    return Status::InvalidArgument(
        StrCat("k must be in [1, ", training_data.size(), "], got ", k));
  }
  for (int y : training_data.labels) {
    if (y != 1 && y != -1) {
      return Status::InvalidArgument("labels must be +1 or -1");
    }
  }
  return KnnClassifier(std::move(training_data), k);
}

Result<int> KnnClassifier::Predict(const DVector& x) const {
  if (static_cast<int>(x.size()) != data_.num_features()) {
    return Status::InvalidArgument("feature dimension mismatch");
  }
  const size_t n = data_.size();
  DVector dist_sq(n);
  for (size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (size_t j = 0; j < x.size(); ++j) {
      const double d = data_.features[i][j] - x[j];
      acc += d * d;
    }
    dist_sq[i] = acc;
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + k_, order.end(),
                    [&](size_t a, size_t b) { return dist_sq[a] < dist_sq[b]; });
  // Weighted vote: closest neighbors carry slightly more weight so even-k
  // ties resolve deterministically toward the nearer class.
  double vote = 0.0;
  for (int r = 0; r < k_; ++r) {
    const size_t idx = order[r];
    vote += data_.labels[idx] / (1.0 + dist_sq[idx]);
  }
  return vote >= 0.0 ? 1 : -1;
}

}  // namespace qdb
