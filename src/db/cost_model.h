/// \file cost_model.h
/// \brief The C_out cost model: cost of a plan = sum of intermediate join
/// result cardinalities (the standard analytical model of the join-ordering
/// literature).

#ifndef QDB_DB_COST_MODEL_H_
#define QDB_DB_COST_MODEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "db/query_graph.h"

namespace qdb {

/// \brief A (possibly bushy) join tree node: either a base relation leaf or
/// an inner join of two subtrees.
struct JoinTree {
  int relation = -1;  ///< Leaf: base relation index; inner: −1.
  std::unique_ptr<JoinTree> left;
  std::unique_ptr<JoinTree> right;

  static std::unique_ptr<JoinTree> Leaf(int relation);
  static std::unique_ptr<JoinTree> Join(std::unique_ptr<JoinTree> left,
                                        std::unique_ptr<JoinTree> right);
  bool IsLeaf() const { return relation >= 0; }

  /// Set of base relations in this subtree, as a bitmask.
  uint64_t RelationMask() const;
};

/// \brief Cardinality of joining the set of relations in `mask`: product of
/// base cardinalities times the selectivities of every join edge internal
/// to the set (independence assumption).
double SubsetCardinality(const JoinQueryGraph& graph, uint64_t mask);

/// \brief C_out of a join tree: Σ over inner nodes of the node's result
/// cardinality.
Result<double> CostOfTree(const JoinQueryGraph& graph, const JoinTree& tree);

/// \brief C_out of a left-deep plan given as a relation order: the cost of
/// (((R_{o0} ⋈ R_{o1}) ⋈ R_{o2}) ⋈ ...). `order` must be a permutation of
/// 0..n−1.
Result<double> CostOfLeftDeepOrder(const JoinQueryGraph& graph,
                                   const std::vector<int>& order);

}  // namespace qdb

#endif  // QDB_DB_COST_MODEL_H_
