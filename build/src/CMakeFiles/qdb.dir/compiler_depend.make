# Empty compiler generated dependencies file for qdb.
# This may be replaced when dependencies are built.
